(* Hierarchical link sharing with adaptive (TCP) traffic — a compact
   version of the paper's §5.2 experiment.

     dune exec examples/link_sharing.exe

   Two departments share a 20 Mbps link 60/40. Each runs one long-lived
   TCP flow; department A also hosts an on/off CBR "backup job" that
   claims 6 Mbps for one second in the middle of the run. The example
   prints each flow's bandwidth (50 ms exponential averaging) so you can
   watch the TCP flows converge to the hierarchical fair shares, dip when
   the backup job runs — with department B's flow UNAFFECTED, the whole
   point of hierarchical sharing — and recover afterwards. *)

module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree

let mbps = Engine.Units.mbps
let segment = Engine.Units.bits_of_kilobytes 1.5

let spec =
  CT.node "uplink" ~rate:(mbps 20.0)
    [
      CT.node "dept-A" ~rate:(mbps 12.0)
        [
          CT.leaf "A/tcp" ~rate:(mbps 6.0) ~queue_capacity_bits:(8.0 *. segment);
          CT.leaf "A/backup" ~rate:(mbps 6.0);
        ];
      CT.leaf "B/tcp" ~rate:(mbps 8.0) ~queue_capacity_bits:(8.0 *. segment);
    ]

let () =
  let sim = Sim.create () in
  let meters =
    [ ("A/tcp", Stats.Bandwidth_meter.create ()); ("B/tcp", Stats.Bandwidth_meter.create ()) ]
  in
  let tcps = Hashtbl.create 4 in
  let h =
    Hier.create ~sim ~spec
      ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus)
      ~on_depart:(fun pkt ~leaf t ->
        (match List.assoc_opt leaf meters with
        | Some meter ->
          Stats.Bandwidth_meter.add meter ~time:t ~bits:pkt.Net.Packet.size_bits
        | None -> ());
        match Hashtbl.find_opt tcps leaf with
        | Some tcp -> Tcp.Tcp_reno.on_segment_delivered tcp ~mark:pkt.Net.Packet.mark
        | None -> ())
      ()
  in
  (* one TCP per department *)
  List.iter
    (fun name ->
      let leaf = Hier.leaf_id h name in
      let send ~mark ~size_bits =
        let before = Hier.drops h in
        ignore (Hier.inject ~mark h ~leaf ~size_bits);
        if Hier.drops h > before then `Dropped else `Queued
      in
      Hashtbl.replace tcps name
        (Tcp.Tcp_reno.create ~sim ~send ~segment_bits:segment ~ack_delay:0.002 ()))
    [ "A/tcp"; "B/tcp" ];
  (* the backup job: 6 Mbps CBR during [1.0, 2.0] *)
  let backup = Hier.leaf_id h "A/backup" in
  ignore
    (Traffic.Source.cbr ~sim
       ~emit:(fun ~size_bits -> ignore (Hier.inject h ~leaf:backup ~size_bits))
       ~rate:(mbps 6.0) ~packet_bits:segment ~start:1.0 ~stop_at:2.0 ());
  Sim.run ~until:3.0 sim;

  Format.printf "bandwidth (Mbps), 50 ms exponential averaging:@.";
  Format.printf "%6s %8s %8s@." "t(s)" "A/tcp" "B/tcp";
  let series name = Stats.Bandwidth_meter.series (List.assoc name meters) ~until:3.0 in
  let a = series "A/tcp" and b = series "B/tcp" in
  List.iter2
    (fun (t, ra) (_, rb) ->
      (* print every 4th window to keep the table readable *)
      if Float.rem (t +. 1e-9) 0.2 < 0.05 then
        Format.printf "%6.2f %8.2f %8.2f@." t (ra /. 1e6) (rb /. 1e6))
    a b;
  Format.printf
    "@.expected shape: A/tcp ~12 Mbps before t=1 (inherits A/backup's idle@.\
     share), ~6 during the backup job, ~12 after; B/tcp stays ~8 throughout@."
