(* Extending the library: plug a custom one-level discipline into the
   H-PFQ machinery.

     dune exec examples/custom_policy.exe

   Any value of type Sched.Sched_intf.t can serve as a building block for
   the hierarchy (paper §4's point: H-PFQ is parameterised by its one-level
   servers). Here we implement STRICT PRIORITY — sessions added earlier
   always win — in ~40 lines, mount it at one node of a tree whose other
   node runs WF2Q+, and show the consequence the paper's theory predicts:
   priority gives the favoured session minimal delay but provides NO
   worst-case fairness, so the starved sibling's service can lag
   arbitrarily (unbounded WFI). *)

module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree

(* A strict-priority discipline conforming to Sched.Sched_intf.t. *)
let strict_priority ~rate:_ : Sched.Sched_intf.t =
  let backlogged = Hashtbl.create 8 in
  let count = ref 0 in
  let pool = Sched.Session_pool.create ~name:"StrictPriority" ~recycle:false () in
  let observer : Sched.Sched_intf.observer option ref = ref None in
  let select ~now:_ =
    (* smallest session index wins: linear scan is fine for an example *)
    let best = ref None in
    for s = Sched.Session_pool.slot_count pool - 1 downto 0 do
      if Hashtbl.mem backlogged s then best := Some s
    done;
    !best
  in
  let open_session ~rate:_ = Sched.Session_pool.handle pool (Sched.Session_pool.alloc pool) in
  let close_session ~now:_ ~policy:_ h =
    Sched.Session_pool.free pool (Sched.Session_pool.resolve pool h)
  in
  {
    Sched.Sched_intf.name = "StrictPriority";
    add_session = (fun ~rate -> Sched.Session_handle.slot (open_session ~rate));
    open_session;
    close_session;
    session_of_handle = (fun h -> Sched.Session_pool.resolve pool h);
    live_sessions = (fun () -> Sched.Session_pool.live_count pool);
    arrive = (fun ~now:_ ~session:_ ~size_bits:_ -> ());
    backlog =
      (fun ~now:_ ~session ~head_bits:_ ->
        Hashtbl.replace backlogged session ();
        incr count);
    requeue = (fun ~now:_ ~session:_ ~head_bits:_ -> ());
    set_idle =
      (fun ~now:_ ~session ->
        Hashtbl.remove backlogged session;
        decr count);
    select;
    virtual_time = (fun ~now -> now);
    backlogged_count = (fun () -> !count);
    set_observer = (fun o -> observer := o);
  }

let spec =
  CT.node "link" ~rate:1.0
    [
      CT.node "prio-class" ~rate:0.5
        [ CT.leaf "urgent" ~rate:0.25; CT.leaf "bulk" ~rate:0.25 ];
      CT.leaf "other" ~rate:0.5;
    ]

let () =
  let sim = Sim.create () in
  let delays = Hashtbl.create 4 in
  let record leaf d =
    let cur = Option.value (Hashtbl.find_opt delays leaf) ~default:0.0 in
    Hashtbl.replace delays leaf (Float.max cur d)
  in
  (* WF2Q+ everywhere except the priority class *)
  let make_policy ~level:_ ~name ~rate =
    if String.equal name "prio-class" then strict_priority ~rate
    else Hpfq.Disciplines.wf2q_plus.Sched.Sched_intf.make ~rate
  in
  let h =
    Hier.create ~sim ~spec ~make_policy
      ~on_depart:(fun pkt ~leaf t -> record leaf (t -. pkt.Net.Packet.arrival))
      ()
  in
  let inject name =
    let leaf = Hier.leaf_id h name in
    fun () -> ignore (Hier.inject h ~leaf ~size_bits:1.0)
  in
  let urgent = inject "urgent" and bulk = inject "bulk" and other = inject "other" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 50 do
           bulk ();
           other ()
         done));
  (* urgent packets arrive sparsely while bulk is backlogged *)
  for k = 1 to 10 do
    ignore (Sim.schedule sim ~at:(float_of_int k *. 3.0) (fun () -> urgent ()))
  done;
  Sim.run sim;
  let get name = Option.value (Hashtbl.find_opt delays name) ~default:0.0 in
  Format.printf "max delays with StrictPriority at the prio-class node:@.";
  Format.printf "  urgent: %.2f  bulk: %.2f  other: %.2f@." (get "urgent") (get "bulk")
    (get "other");
  Format.printf
    "@.urgent beats WF2Q+'s bound (no queueing behind bulk), but bulk's@.\
     service lag is unbounded — exactly the WFI trade-off of §3.2. The@.\
     'other' class is untouched either way: hierarchy isolates it.@.";
  (* contrast: same tree, WF2Q+ everywhere *)
  Hashtbl.reset delays;
  let sim = Sim.create () in
  let h =
    Hier.create ~sim ~spec
      ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus)
      ~on_depart:(fun pkt ~leaf t -> record leaf (t -. pkt.Net.Packet.arrival))
      ()
  in
  let inject name =
    let leaf = Hier.leaf_id h name in
    fun () -> ignore (Hier.inject h ~leaf ~size_bits:1.0)
  in
  let urgent = inject "urgent" and bulk = inject "bulk" and other = inject "other" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 50 do
           bulk ();
           other ()
         done));
  for k = 1 to 10 do
    ignore (Sim.schedule sim ~at:(float_of_int k *. 3.0) (fun () -> urgent ()))
  done;
  Sim.run sim;
  Format.printf "@.same workload, H-WF2Q+ everywhere:@.";
  Format.printf "  urgent: %.2f  bulk: %.2f  other: %.2f@." (get "urgent") (get "bulk")
    (get "other")
