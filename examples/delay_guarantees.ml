(* Delay guarantees for leaky-bucket-constrained sessions (paper §3, Thm 4,
   Cor 2).

     dune exec examples/delay_guarantees.exe

   A video-conferencing-style session reserves 2 Mbps with a 4-packet burst
   allowance inside a three-level corporate hierarchy. Every other class is
   flooded by greedy traffic. We drive the session with its worst-case
   conforming arrival pattern, compare the measured maximum delay against
   the analytical bound, and show how the picture changes when the
   hierarchy is built from WFQ instead of WF2Q+. *)

module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree

let mbps = Engine.Units.mbps
let packet = Engine.Units.bits_of_kilobytes 1.5
let sigma = 4.0 *. packet

let spec =
  CT.node "campus-link" ~rate:(mbps 100.0)
    [
      CT.node "engineering" ~rate:(mbps 50.0)
        [
          CT.node "interactive" ~rate:(mbps 10.0)
            [
              CT.leaf "video-call" ~rate:(mbps 2.0);
              CT.leaf "ssh" ~rate:(mbps 8.0);
            ];
          CT.leaf "builds" ~rate:(mbps 40.0);
        ];
      CT.leaf "dorms" ~rate:(mbps 25.0);
      CT.leaf "guests" ~rate:(mbps 25.0);
    ]

let run factory =
  let sim = Sim.create () in
  let delays = Stats.Delay_stats.create () in
  let h =
    Hier.create ~sim ~spec ~make_policy:(Hier.uniform factory)
      ~on_depart:(fun pkt ~leaf t ->
        if String.equal leaf "video-call" then
          Stats.Delay_stats.record delays ~time:t ~delay:(t -. pkt.Net.Packet.arrival))
      ()
  in
  let emit_to name =
    let leaf = Hier.leaf_id h name in
    fun ~size_bits -> ignore (Hier.inject h ~leaf ~size_bits)
  in
  (* the measured session: greediest (sigma, rho)-conforming arrivals *)
  ignore
    (Traffic.Source.leaky_bucket_greedy ~sim ~emit:(emit_to "video-call")
       ~sigma_bits:sigma ~rho:(mbps 2.0) ~packet_bits:packet ~stop_at:3.0 ());
  (* everything else floods *)
  List.iter
    (fun name ->
      ignore
        (Traffic.Source.greedy ~sim ~emit:(emit_to name) ~packet_bits:packet
           ~backlog_packets:200 ~stop_at:3.0 ()))
    [ "ssh"; "builds"; "dorms"; "guests" ];
  Sim.run ~until:4.0 sim;
  delays

let () =
  Format.printf "Hierarchy:@.%a@." CT.pp spec;
  let bound =
    match Hpfq.Theory.hier_delay_bound ~tree:spec ~leaf:"video-call" ~sigma ~l_max:packet with
    | Ok b -> b
    | Error e -> failwith e
  in
  Format.printf
    "video-call: sigma = 4 packets, rho = 2 Mbps; Corollary-2 bound = %a@.@."
    Engine.Units.pp_time bound;
  Format.printf "%-10s %12s %12s %12s  %s@." "policy" "mean" "p99" "max" "within bound?";
  List.iter
    (fun factory ->
      let delays = run factory in
      let max_d = Stats.Delay_stats.max_delay delays in
      Format.printf "%-10s %12.3f %12.3f %12.3f  %s@."
        factory.Sched.Sched_intf.kind
        (Stats.Delay_stats.mean delays *. 1e3)
        (Stats.Delay_stats.percentile delays 99.0 *. 1e3)
        (max_d *. 1e3)
        (if max_d <= bound then "yes" else "NO (exceeds WF2Q+ bound)"))
    [
      Hpfq.Disciplines.wf2q_plus;
      Hpfq.Disciplines.wfq;
      Hpfq.Disciplines.scfq;
      Hpfq.Disciplines.drr;
    ];
  Format.printf
    "@.(delays in ms; the bound is guaranteed only for H-WF2Q+ — Theorem 4)@."
