(* End-to-end guarantees across a multi-hop path.

     dune exec examples/multihop.exe

   A voice-like flow reserves 64 kbps through three H-WF2Q+ switches, each
   saturated by local best-effort traffic. We drive the flow with its
   worst-case conforming burst pattern and compare the measured end-to-end
   delay against the composed per-hop bound — the deployment scenario the
   paper's introduction motivates (guaranteed real-time service end to end,
   with link-sharing at every switch). *)

module Sim = Engine.Simulator
module P = Netgraph.Pipeline
module CT = Hpfq.Class_tree

let kbps = Engine.Units.kbps
let mbps = Engine.Units.mbps
let voice_packet = 1600.0 (* 200-byte voice frames *)

let switch name =
  CT.node name ~rate:(mbps 2.0)
    [
      CT.leaf (name ^ "/voice") ~rate:(kbps 64.0);
      CT.node (name ^ "/data") ~rate:(mbps 2.0 -. kbps 64.0)
        [
          CT.leaf (name ^ "/web") ~rate:(mbps 1.0);
          CT.leaf (name ^ "/bulk") ~rate:(mbps 2.0 -. kbps 64.0 -. mbps 1.0);
        ];
    ]

let () =
  let sim = Sim.create () in
  let delays = Stats.Delay_stats.create () in
  let hops = [ ("edge", switch "edge"); ("core", switch "core"); ("exit", switch "exit") ] in
  let p =
    P.create ~sim ~hops
      ~make_policy:(Hpfq.Hier.uniform Hpfq.Disciplines.wf2q_plus)
      ~propagation_delay:0.002
      ~on_deliver:(fun ~flow:_ _ ~injected ~delivered ->
        Stats.Delay_stats.record delays ~time:delivered ~delay:(delivered -. injected))
      ()
  in
  P.add_flow p ~name:"voice" ~route:[ "edge/voice"; "core/voice"; "exit/voice" ];
  (* the flow: greedy conformant with a 3-frame burst allowance *)
  let sigma = 3.0 *. voice_packet in
  ignore
    (Traffic.Source.leaky_bucket_greedy ~sim
       ~emit:(fun ~size_bits -> P.inject p ~flow:"voice" ~size_bits)
       ~sigma_bits:sigma ~rho:(kbps 64.0) ~packet_bits:voice_packet ~stop_at:10.0 ());
  (* every switch saturated with local best-effort, 1500 B packets *)
  let data_packet = Engine.Units.bits_of_kilobytes 1.5 in
  List.iter
    (fun (hop, _) ->
      let server = P.hop_server p hop in
      List.iter
        (fun cls ->
          let leaf = Hpfq.Hier.leaf_id server (hop ^ "/" ^ cls) in
          ignore
            (Traffic.Source.greedy ~sim
               ~emit:(fun ~size_bits ->
                 ignore (Hpfq.Hier.inject server ~leaf ~size_bits))
               ~packet_bits:data_packet ~backlog_packets:64 ~top_up_every:0.2
               ~stop_at:10.0 ()))
        [ "web"; "bulk" ])
    hops;
  Sim.run ~until:12.0 sim;
  let bound =
    match P.end_to_end_bound p ~flow:"voice" ~sigma ~l_max:data_packet with
    | Ok b -> b
    | Error e -> failwith e
  in
  Format.printf "voice frames delivered end-to-end: %d@." (Stats.Delay_stats.count delays);
  Format.printf "end-to-end delay: mean %a, p99 %a, max %a@."
    Engine.Units.pp_time (Stats.Delay_stats.mean delays)
    Engine.Units.pp_time (Stats.Delay_stats.percentile delays 99.0)
    Engine.Units.pp_time (Stats.Delay_stats.max_delay delays);
  Format.printf "composed per-hop bound: %a — %s@." Engine.Units.pp_time bound
    (if Stats.Delay_stats.max_delay delays <= bound then "holds" else "VIOLATED")
