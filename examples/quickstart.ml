(* Quickstart: build an H-WF2Q+ server, push packets through a small
   link-sharing tree, and watch guarantees hold.

     dune exec examples/quickstart.exe

   The tree is the paper's introduction example in miniature: one agency
   with a real-time and a best-effort subclass, sharing a link with a
   second agency. We flood the best-effort class and the second agency,
   then send sparse real-time packets and print their delays. *)

module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree

let mbps = Engine.Units.mbps
let packet = Engine.Units.bits_of_kilobytes 1.5 (* 1500-byte packets *)

let () =
  (* 1. Describe the class hierarchy. Rates are absolute; children must not
     reserve more than their parent. *)
  let spec =
    CT.node "link" ~rate:(mbps 10.0)
      [
        CT.node "agency-A" ~rate:(mbps 5.0)
          [
            CT.leaf "A/realtime" ~rate:(mbps 4.0);
            CT.leaf "A/besteffort" ~rate:(mbps 1.0);
          ];
        CT.leaf "agency-B" ~rate:(mbps 5.0);
      ]
  in
  Format.printf "Hierarchy:@.%a@." CT.pp spec;

  (* 2. Create the simulator and the hierarchical server. Every interior
     node runs WF2Q+ (H-WF2Q+); swap the factory to compare disciplines. *)
  let sim = Sim.create () in
  let delays = ref [] in
  let server =
    Hier.create ~sim ~spec
      ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus)
      ~on_depart:(fun pkt ~leaf t ->
        if String.equal leaf "A/realtime" then
          delays := (t -. pkt.Net.Packet.arrival) :: !delays)
      ()
  in

  (* 3. Wire traffic sources to leaves. *)
  let emit_to name =
    let leaf = Hier.leaf_id server name in
    fun ~size_bits -> ignore (Hier.inject server ~leaf ~size_bits)
  in
  (* best-effort and agency B flood the link... *)
  ignore
    (Traffic.Source.greedy ~sim ~emit:(emit_to "A/besteffort") ~packet_bits:packet
       ~backlog_packets:100 ~stop_at:2.0 ());
  ignore
    (Traffic.Source.greedy ~sim ~emit:(emit_to "agency-B") ~packet_bits:packet
       ~backlog_packets:100 ~stop_at:2.0 ());
  (* ...while the real-time class sends one packet every 10 ms *)
  ignore
    (Traffic.Source.cbr ~sim ~emit:(emit_to "A/realtime") ~rate:(mbps 1.2)
       ~packet_bits:packet ~stop_at:2.0 ());

  (* 4. Run and report. *)
  Sim.run ~until:2.5 sim;
  let n = List.length !delays in
  let max_d = List.fold_left Float.max 0.0 !delays in
  let sum = List.fold_left ( +. ) 0.0 !delays in
  Format.printf "real-time packets delivered: %d@." n;
  Format.printf "mean delay: %a, max delay: %a@." Engine.Units.pp_time
    (sum /. float_of_int (max 1 n))
    Engine.Units.pp_time max_d;

  (* Under H-WF2Q+ the real-time class is isolated from both floods: its
     delay stays near one packet time at its guaranteed 4 Mbps plus the
     per-level packet times of Corollary 2. *)
  let bound =
    match
      Hpfq.Theory.hier_delay_bound ~tree:spec ~leaf:"A/realtime"
        ~sigma:packet ~l_max:packet
    with
    | Ok b -> b
    | Error e -> failwith e
  in
  Format.printf "Corollary-2 delay bound: %a — %s@." Engine.Units.pp_time bound
    (if max_d <= bound then "holds" else "VIOLATED");
  Format.printf "link served %a of traffic@." Engine.Units.pp_rate
    (Hier.departed_bits server ~node:"link" /. 2.5)
