(* hpfq-sim: command-line driver for the paper's experiments.

   Subcommands mirror the per-experiment index in DESIGN.md:
     fig2          service-order walkthrough (GPS / WFQ / WF2Q / WF2Q+ / SCFQ)
     trace         structured packet/virtual-time trace of a paper hierarchy
     delay         Figs. 4-7: RT-1 delay under a chosen H-PFQ discipline
     link-sharing  Figs. 8-9: TCP sessions vs ideal H-GPS
     wfi           T-WFI probe sweep over the number of sessions
     replay        trace replay (CSV/binary/synthetic) with burst-drained departures
     churn         session open/close lifecycle bench + virtual-time soak
     tree          print the paper hierarchies with shares
     custom        run a user tree file (hpfq syntax) saturated, vs H-GPS
   Each command can dump CSV series for external plotting. *)

open Cmdliner

let discipline_conv =
  let parse s =
    match Hpfq.Disciplines.find s with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown discipline %S (try: %s)" s
              (String.concat ", "
                 (List.map
                    (fun f -> f.Sched.Sched_intf.kind)
                    Hpfq.Disciplines.all))))
  in
  let print fmt f = Format.pp_print_string fmt f.Sched.Sched_intf.kind in
  Arg.conv (parse, print)

let discipline_arg =
  Arg.(
    value
    & opt discipline_conv Hpfq.Disciplines.wf2q_plus
    & info [ "d"; "discipline" ] ~docv:"NAME" ~doc:"One-level discipline to build the hierarchy from.")

let csv_arg =
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PATH" ~doc:"Dump series to CSV.")

let backend_conv =
  let parse s =
    match Engine.Simulator.backend_of_string s with
    | Ok b -> Ok b
    | Error e -> Error (`Msg e)
  in
  let print fmt b = Format.pp_print_string fmt (Engine.Simulator.backend_name b) in
  Arg.conv (parse, print)

let event_set_arg =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "event-set" ] ~docv:"heap|calendar"
        ~doc:
          "Pending-event-set backend for every simulator this run creates \
           (default: calendar, or the HPFQ_EVENT_SET environment variable).")

(* experiments build their simulators internally, so the knob sets the
   process-wide default rather than threading a parameter through each *)
let set_event_set = Option.iter Engine.Simulator.set_default_backend

let hier_engine_conv =
  let parse s =
    match Hpfq.Hier_engine.choice_of_string s with
    | Ok c -> Ok c
    | Error e -> Error (`Msg e)
  in
  let print fmt c = Format.pp_print_string fmt (Hpfq.Hier_engine.choice_to_string c) in
  Arg.conv (parse, print)

let hier_engine_arg =
  Arg.(
    value
    & opt hier_engine_conv `Auto
    & info [ "hier-engine" ] ~docv:"generic|flat|auto|subtree"
        ~doc:
          "Hierarchy engine: $(b,generic) composes one-level policies per \
           node, $(b,flat) is the monomorphic flattened H-WF2Q+ fast path \
           (bit-identical schedules), $(b,subtree) partitions the root's \
           child subtrees over worker domains with epoch-batched root sync \
           (see --shards/--epoch). $(b,auto) picks flat for WF2Q+ and \
           generic otherwise.")

(* [`Subtree] knobs. Like --event-set, the experiment drivers build their
   engines internally, so these set the process-wide defaults that
   Hier_engine.create falls back on; they only matter with
   --hier-engine subtree. *)
let subtree_shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Subtree engine: root-child subtree shards (default: one per root \
           child; clamped to the root's child count).")

let subtree_epoch_arg =
  Arg.(
    value & opt int 1
    & info [ "epoch" ] ~docv:"K"
        ~doc:
          "Subtree engine: integrate staged arrivals at the root every \
           $(docv) departures. $(docv)=1 is bit-identical to the flat \
           engine; $(docv)>1 trades exactness for throughput with \
           per-session service lag at most ($(docv)-1)*l_max/r.")

let subtree_workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch-workers" ] ~docv:"N"
        ~doc:
          "Subtree engine: worker domains flushing shard mailboxes at each \
           sync (default: cores-1; 0 runs the flushes inline, still \
           bit-identical for a given epoch).")

let set_subtree_config shards epoch workers =
  Hpfq.Hier_engine.set_default_subtree_config ?shards ?workers ~epoch ()

let subtree_term =
  Term.(
    const set_subtree_config $ subtree_shards_arg $ subtree_epoch_arg
    $ subtree_workers_arg)

let horizon_arg default =
  Arg.(value & opt float default & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Simulated time.")

let seed_arg = Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

(* -- worker pool --------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for sweep/grid work (default: $(b,HPFQ_JOBS), or \
           1). Results are bit-identical for any $(docv); commands with a \
           single simulation ignore it.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Log a line as sweep tasks complete (rate-limited, stderr).")

(* evaluated once per command invocation: installs the (off-by-default)
   progress reporter before any worker spawns, then builds the pool *)
let make_pool jobs progress =
  if progress then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Parallel.Pool.log_src (Some Logs.Info)
  end;
  match jobs with
  | Some jobs -> Parallel.Pool.create ~jobs ()
  | None -> Parallel.Pool.create ()

let pool_term = Term.(const make_pool $ jobs_arg $ progress_arg)

(* -- fig2 ---------------------------------------------------------------- *)

let fig2_cmd =
  let run () =
    let result = Experiments.Fig2_walkthrough.run () in
    Experiments.Fig2_walkthrough.render Format.std_formatter result
  in
  Cmd.v (Cmd.info "fig2" ~doc:"Service order walkthrough (paper Fig. 2).")
    Term.(const run $ const ())

(* -- trace --------------------------------------------------------------- *)

let trace_cmd =
  let run event_set engine discipline horizon out format capacity metrics_out =
    set_event_set event_set;
    let spec = Experiments.Paper_hierarchies.fig3 in
    let sim = Engine.Simulator.create () in
    let h = Hpfq.Hier_engine.create ~sim ~spec ~factory:discipline ~engine () in
    let trace = Obs.Trace.attach_engine ~capacity h in
    Obs.Trace.attach_sim trace sim;
    (* deterministic saturation: every leaf keeps a fixed backlog topped up
       on a fixed schedule, so the same command always emits the same trace *)
    let packet = 8.0 *. 1024.0 *. 8.0 in
    List.iter
      (fun (name, _) ->
        let leaf = Hpfq.Hier_engine.leaf_id h name in
        ignore
          (Traffic.Source.greedy ~sim
             ~emit:(fun ~size_bits ->
               ignore (Hpfq.Hier_engine.inject h ~leaf ~size_bits))
             ~packet_bits:packet ~backlog_packets:8 ~top_up_every:0.25
             ~stop_at:horizon ()))
      (Hpfq.Class_tree.leaves spec);
    Engine.Simulator.run ~until:horizon sim;
    (match format with
    | "jsonl" -> Obs.Trace.write_jsonl trace ~path:out
    | "csv" -> Obs.Trace.write_csv trace ~path:out
    | f -> invalid_arg (Printf.sprintf "unknown trace format %S (jsonl|csv)" f));
    let scheduled, fired, cancelled = Obs.Trace.sim_counters trace in
    Printf.printf "wrote %s: %d events retained, %d dropped by the ring\n" out
      (Obs.Recorder.length (Obs.Trace.recorder trace))
      (Obs.Recorder.dropped (Obs.Trace.recorder trace));
    Printf.printf "event loop: %d scheduled, %d fired, %d cancelled\n" scheduled fired
      cancelled;
    let st = Engine.Simulator.stats sim in
    Printf.printf
      "event set: backend=%s pending=%d garbage=%d capacity=%d pool=%d \
       compactions=%d resizes=%d\n"
      (Engine.Simulator.backend_name st.Engine.Simulator.stat_backend)
      st.Engine.Simulator.live st.Engine.Simulator.cancelled_in_set
      st.Engine.Simulator.set_capacity st.Engine.Simulator.pool_capacity
      st.Engine.Simulator.compactions st.Engine.Simulator.resizes;
    Option.iter
      (fun path ->
        Stats.Report.to_csv (Obs.Trace.metrics_report trace) ~path;
        Printf.printf "wrote %s\n" path)
      metrics_out
  in
  let out_arg =
    Arg.(
      value
      & opt string "trace.jsonl"
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Trace output file.")
  in
  let format_arg =
    Arg.(
      value
      & opt string "jsonl"
      & info [ "format" ] ~docv:"jsonl|csv" ~doc:"Trace output format.")
  in
  let capacity_arg =
    Arg.(
      value
      & opt int 262144
      & info [ "capacity" ] ~docv:"N" ~doc:"Event ring capacity (oldest dropped beyond).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH" ~doc:"Also dump per-node metric counters as CSV.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the Fig. 3 hierarchy saturated and dump the structured \
          packet/virtual-time event trace.")
    Term.(
      const run $ event_set_arg $ hier_engine_arg $ discipline_arg
      $ horizon_arg 0.5 $ out_arg $ format_arg $ capacity_arg $ metrics_arg)

(* -- delay --------------------------------------------------------------- *)

let delay_cmd =
  let run event_set () engine pool discipline scenario_id horizon seed replications csv =
    set_event_set event_set;
    if replications < 1 then
      invalid_arg (Printf.sprintf "replications must be >= 1, got %d" replications);
    let scenario =
      match scenario_id with
      | 1 -> Experiments.Delay_experiment.S1_constant_and_trains
      | 2 -> Experiments.Delay_experiment.S2_overloaded_poisson
      | 3 -> Experiments.Delay_experiment.S3_overload_and_trains
      | n -> invalid_arg (Printf.sprintf "scenario must be 1..3, got %d" n)
    in
    let results =
      if replications = 1 then
        (* the historical single-run path: same seed → same output as ever *)
        [
          Experiments.Delay_experiment.run ~engine ~factory:discipline ~scenario
            ~horizon ~seed ();
        ]
      else
        Experiments.Delay_experiment.run_sweep ~pool ~engine
          ~factories:[ discipline ] ~scenario ~horizon ~seed ~replications ()
    in
    List.iter
      (fun r -> print_endline (Experiments.Delay_experiment.summary_row r))
      results;
    Printf.printf "Cor.2 delay bound for RT-1 under H-WF2Q+: %.3f ms\n"
      (Experiments.Delay_experiment.rt1_delay_bound *. 1e3);
    Option.iter
      (fun path ->
        let result = List.hd results in
        Stats.Csv.write_named_series ~path
          ~series:
            [
              ( "delay",
                Stats.Delay_stats.series_max_over_windows result.Experiments.Delay_experiment.delays
                  ~window:0.05 );
              ("lag", Stats.Service_curve.lag_series result.lag);
            ];
        Printf.printf "wrote %s\n" path)
      csv
  in
  let scenario_arg =
    Arg.(value & opt int 1 & info [ "s"; "scenario" ] ~docv:"1|2|3" ~doc:"Traffic scenario.")
  in
  let replications_arg =
    Arg.(
      value & opt int 1
      & info [ "replications" ] ~docv:"K"
          ~doc:
            "Replications with independent (seed-derived) arrival streams, \
             fanned out on the worker pool; the CSV dump uses the first.")
  in
  Cmd.v (Cmd.info "delay" ~doc:"RT-1 delay experiment (paper Figs. 4-7).")
    Term.(
      const run $ event_set_arg $ subtree_term $ hier_engine_arg $ pool_term
      $ discipline_arg $ scenario_arg $ horizon_arg 10.0 $ seed_arg
      $ replications_arg $ csv_arg)

(* -- link-sharing -------------------------------------------------------- *)

let link_sharing_cmd =
  let run event_set () engine pool discipline horizon csv =
    set_event_set event_set;
    let result =
      Experiments.Link_sharing.run ~pool ~engine ~factory:discipline ~horizon ()
    in
    Experiments.Link_sharing.summary Format.std_formatter result;
    Option.iter
      (fun path ->
        let series =
          List.map (fun (l, s) -> ("measured:" ^ l, s)) result.Experiments.Link_sharing.measured
          @ List.map (fun (l, s) -> ("ideal:" ^ l, s)) result.Experiments.Link_sharing.ideal
        in
        Stats.Csv.write_named_series ~path ~series;
        Printf.printf "wrote %s\n" path)
      csv
  in
  Cmd.v (Cmd.info "link-sharing" ~doc:"Hierarchical link sharing with TCP (paper Figs. 8-9).")
    Term.(
      const run $ event_set_arg $ subtree_term $ hier_engine_arg $ pool_term
      $ discipline_arg
      $ horizon_arg Experiments.Paper_hierarchies.fig8_horizon $ csv_arg)

(* -- wfi ----------------------------------------------------------------- *)

let wfi_cmd =
  let run event_set pool ns =
    set_event_set event_set;
    Printf.printf "%-12s %6s %14s %18s\n" "discipline" "N" "measured T-WFI" "WF2Q+ bound";
    (* the whole discipline × N grid goes through the pool at once, so -j
       covers all of it; sweep_grid's factory-major order matches the
       sequential print order this command has always used *)
    List.iter
      (fun (m : Experiments.Wfi_probe.measurement) ->
        Printf.printf "%-12s %6d %14.3f %18.3f\n" m.discipline m.n m.measured_twfi
          m.wf2q_plus_bound)
      (Experiments.Wfi_probe.sweep_grid ~pool ~factories:Hpfq.Disciplines.pfq ~ns ())
  in
  let ns_arg =
    Arg.(value & opt (list int) [ 4; 8; 16; 32; 64 ] & info [ "n" ] ~docv:"N,..." ~doc:"Session counts.")
  in
  Cmd.v (Cmd.info "wfi" ~doc:"Empirical worst-case fair index sweep.")
    Term.(const run $ event_set_arg $ pool_term $ ns_arg)

(* -- custom -------------------------------------------------------------- *)

let custom_cmd =
  let run event_set () engine pool discipline tree_file horizon =
    set_event_set event_set;
    match Hpfq.Tree_syntax.parse_file tree_file with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
    | Ok spec ->
      Format.printf "Running all-leaves-saturated workload on:@.%a@."
        Hpfq.Class_tree.pp spec;
      let leaves = Hpfq.Class_tree.leaves spec in
      (* snapshot the event-set choice before any worker spawns; the
         packet and fluid halves are independent, so they fan out on the
         pool like Link_sharing.run *)
      let config = Engine.Simulator.snapshot_config () in
      let run_packet () =
        let sim = Engine.Simulator.create_configured config in
        let h = Hpfq.Hier_engine.create ~sim ~spec ~factory:discipline ~engine () in
        let packet = 8.0 *. 1024.0 *. 8.0 in
        List.iter
          (fun (name, _) ->
            let leaf = Hpfq.Hier_engine.leaf_id h name in
            ignore
              (Traffic.Source.greedy ~sim
                 ~emit:(fun ~size_bits ->
                   ignore (Hpfq.Hier_engine.inject h ~leaf ~size_bits))
                 ~packet_bits:packet
                 ~backlog_packets:
                   (max 8 (int_of_float (Hpfq.Class_tree.rate spec *. 0.5 /. packet)))
                 ~top_up_every:0.25 ~stop_at:horizon ()))
          leaves;
        Engine.Simulator.run ~until:horizon sim;
        List.map
          (fun (name, _) -> (name, Hpfq.Hier_engine.departed_bits h ~node:name))
          leaves
      in
      let run_fluid () =
        let fluid = Fluid.Hgps.create ~spec () in
        List.iter
          (fun (name, _) ->
            Fluid.Hgps.set_persistent fluid ~at:0.0
              ~leaf:(Fluid.Hgps.leaf_id fluid name) true)
          leaves;
        Fluid.Hgps.advance fluid ~to_:horizon;
        List.map (fun (name, _) -> (name, Fluid.Hgps.served_bits fluid ~node:name)) leaves
      in
      let halves =
        Parallel.Pool.map pool ~tasks:2 ~f:(fun i ->
            if i = 0 then run_packet () else run_fluid ())
      in
      Format.printf "@.%-20s %14s %14s@." "leaf" "measured" "H-GPS ideal";
      List.iter2
        (fun (name, measured) (_, ideal) ->
          Format.printf "%-20s %10.3f Mbps %10.3f Mbps@." name
            (measured /. horizon /. 1e6) (ideal /. horizon /. 1e6))
        halves.(0) halves.(1)
  in
  let tree_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "tree" ] ~docv:"FILE" ~doc:"Class hierarchy in hpfq tree syntax.")
  in
  Cmd.v
    (Cmd.info "custom"
       ~doc:"Saturate every leaf of a user-defined hierarchy and compare shares to H-GPS.")
    Term.(
      const run $ event_set_arg $ subtree_term $ hier_engine_arg $ pool_term
      $ discipline_arg $ tree_arg $ horizon_arg 2.0)

(* -- shard --------------------------------------------------------------- *)

let shard_cmd =
  let run event_set engine pool links shards rounds flows_per_link overload seed
      observe json metrics_out =
    set_event_set event_set;
    let workers = Parallel.Pool.jobs pool in
    let workload =
      {
        (Shard.Device.default_workload ~rounds) with
        Shard.Device.flows_per_link;
        overload;
        seed;
      }
    in
    let t =
      Shard.Device.create ~workers ?shards ~engine ~workload ~observe ~links ()
    in
    let r = Shard.Device.run t in
    (* everything on stdout is a pure function of the workload — the CI
       smoke diffs -j2 against -j1 — so wall clock AND geometry (worker
       count, shard ownership) go to stderr *)
    Printf.printf "links=%d rounds=%d flows/link=%d overload=%g seed=%Ld\n"
      (Shard.Device.links t) rounds flows_per_link overload seed;
    let stdout_report =
      (* Device.report minus the geometry-dependent shard-owner column *)
      let rep = Shard.Device.report r in
      let drop_shard = function
        | link :: _shard :: rest -> link :: rest
        | row -> row
      in
      Stats.Report.make ~name:(Stats.Report.name rep)
        ~columns:(drop_shard (Stats.Report.columns rep))
        ~rows:(fun () -> List.map drop_shard (Stats.Report.rows rep))
    in
    print_string (Stats.Report.to_string stdout_report);
    print_string (Stats.Report.to_string (Shard.Device.sim_report r));
    Option.iter
      (fun path ->
        match Shard.Device.metrics_report r with
        | Some m ->
          Stats.Report.to_csv m ~path;
          Printf.printf "wrote %s\n" path
        | None -> prerr_endline "--metrics requires --observe")
      metrics_out;
    Printf.printf "device_hash %s\n" (Shard.Device.hash_hex r.Shard.Device.device_hash);
    Option.iter
      (fun path ->
        let module Json = Bench_kit.Json in
        let row_json (lr : Shard.Device.link_result) =
          Json.Obj
            [
              ("link", Json.Num (float_of_int lr.Shard.Device.link));
              ("shard", Json.Num (float_of_int lr.Shard.Device.shard));
              ("pkts", Json.Num (float_of_int lr.Shard.Device.departed_pkts));
              ("bits", Json.Num lr.Shard.Device.departed_bits);
              ("drops", Json.Num (float_of_int lr.Shard.Device.drops));
              ("events", Json.Num (float_of_int lr.Shard.Device.events));
              ("final_s", Json.Num lr.Shard.Device.final_time);
              ("trace_hash", Json.Str (Shard.Device.hash_hex lr.Shard.Device.trace_hash));
            ]
        in
        let report_rows rep =
          Json.Arr
            (List.map
               (fun row -> Json.Arr (List.map (fun c -> Json.Str c) row))
               (Stats.Report.rows rep))
        in
        Json.to_file path
          (Json.Obj
             ([
                ("schema", Json.Str "hpfq-sim-shard-v1");
                ("links", Json.Num (float_of_int (Shard.Device.links t)));
                ("shards", Json.Num (float_of_int (Shard.Device.shards t)));
                ("workers", Json.Num (float_of_int workers));
                ("rounds", Json.Num (float_of_int rounds));
                ("flows_per_link", Json.Num (float_of_int flows_per_link));
                ("seed", Json.Str (Int64.to_string seed));
                ("total_pkts", Json.Num (float_of_int r.Shard.Device.total_pkts));
                ("total_bits", Json.Num r.Shard.Device.total_bits);
                ("total_drops", Json.Num (float_of_int r.Shard.Device.total_drops));
                ("total_events", Json.Num (float_of_int r.Shard.Device.total_events));
                ("wall_s", Json.Num r.Shard.Device.wall_s);
                ("device_hash", Json.Str (Shard.Device.hash_hex r.Shard.Device.device_hash));
                ("per_link", Json.Arr (Array.to_list (Array.map row_json r.Shard.Device.per_link)));
                ("sim_report", report_rows (Shard.Device.sim_report r));
              ]
             @
             match Shard.Device.metrics_report r with
             | Some m -> [ ("metrics", report_rows m) ]
             | None -> []));
        Printf.printf "wrote %s\n" path)
      json;
    Printf.eprintf "wall %.3f s, %.0f pkts/s aggregate over %d worker(s)\n"
      r.Shard.Device.wall_s
      (float_of_int r.Shard.Device.total_pkts /. r.Shard.Device.wall_s)
      workers
  in
  let links_arg =
    Arg.(value & opt int 64 & info [ "links" ] ~docv:"N" ~doc:"Output links (ports) in the device.")
  in
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"Mailbox shards links are partitioned over (default: one per worker).")
  in
  let rounds_arg =
    Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc:"Ingress router rounds.")
  in
  let flows_arg =
    Arg.(
      value & opt int 4
      & info [ "flows-per-link" ] ~docv:"N" ~doc:"Average flow population per link.")
  in
  let overload_arg =
    Arg.(
      value & opt float 1.2
      & info [ "overload" ] ~docv:"X"
          ~doc:"Offered load / link capacity; > 1 exercises queue caps and drops.")
  in
  let observe_arg =
    Arg.(
      value & flag
      & info [ "observe" ] ~doc:"Attach per-link traces and keep per-node metrics.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH" ~doc:"Dump totals, per-link rows and merged reports as JSON.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"PATH"
          ~doc:"Dump the merged per-link node metrics as CSV (needs --observe).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run the sharded multi-port device: N links, each an independent \
          H-WF2Q+ instance, fanned over -j worker domains behind the batched \
          ingress router. Stdout is bit-identical for any -j.")
    Term.(
      const run $ event_set_arg $ hier_engine_arg $ pool_term $ links_arg
      $ shards_arg $ rounds_arg $ flows_arg $ overload_arg $ seed_arg
      $ observe_arg $ json_arg $ metrics_arg)

(* -- replay -------------------------------------------------------------- *)

let replay_cmd =
  let run event_set () engine trace_file tree_file burst seed duration mean_pkts
      headroom save =
    set_event_set event_set;
    if burst < 1 then begin
      Printf.eprintf "error: --burst-max must be >= 1\n";
      exit 1
    end;
    let user_spec =
      Option.map
        (fun f ->
          match Hpfq.Tree_syntax.parse_file f with
          | Ok s -> s
          | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 1)
        tree_file
    in
    let trace =
      match trace_file with
      | Some path -> (
        try Traffic.Trace.load_any ~path
        with Failure e | Sys_error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1)
      | None ->
        (* synthesize an internet mix over the hierarchy's leaves (or a
           default 64-leaf balanced tree when none was given) *)
        let leaves =
          match user_spec with
          | Some spec -> List.map fst (Hpfq.Class_tree.leaves spec)
          | None -> List.init 64 (Printf.sprintf "leaf%d")
        in
        Traffic.Trace.internet_mix ~seed ~leaves ~duration
          ~mean_pkts_per_leaf:mean_pkts ()
    in
    if trace = [] then begin
      Printf.eprintf "error: empty trace\n";
      exit 1
    end;
    let spec =
      match user_spec with
      | Some spec -> spec (* user rates as given *)
      | None ->
        (* one leaf per distinct trace flow, equal shares, link sized to
           [headroom] x the trace's offered load *)
        let names =
          List.sort_uniq String.compare
            (List.map (fun e -> e.Traffic.Trace.leaf) trace)
        in
        let span =
          Float.max 1e-9
            (List.fold_left (fun a e -> Float.max a e.Traffic.Trace.time) 0.0 trace)
        in
        let total_bits =
          List.fold_left (fun a e -> a +. e.Traffic.Trace.size_bits) 0.0 trace
        in
        let rate = headroom *. total_bits /. span in
        let share = rate /. float_of_int (List.length names) in
        Hpfq.Class_tree.node "root" ~rate
          (List.map (fun n -> Hpfq.Class_tree.leaf n ~rate:share) names)
    in
    Option.iter
      (fun path ->
        if Filename.check_suffix path ".csv" then Traffic.Trace.save ~path trace
        else Traffic.Trace.save_binary ~path trace;
        Printf.printf "wrote %s\n" path)
      save;
    let r = Experiments.Replay_bench.measure ~engine ~spec ~trace ~burst () in
    (* stdout is a pure function of the workload — the hash must match at
       every --burst-max and on every machine; wall clock goes to stderr *)
    Printf.printf "arrivals=%d departures=%d burst_max=%d\n"
      r.Experiments.Replay_bench.arrivals r.departures burst;
    Printf.printf "depart_hash %s\n" r.depart_hash;
    Printf.eprintf "wall %.3f s, %.0f pkts/s over %d leaves\n"
      (float_of_int r.departures /. r.pkts_per_sec)
      r.pkts_per_sec
      (List.length (Hpfq.Class_tree.leaves spec))
  in
  let trace_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Trace to replay, CSV or HPFQTRC2 binary (sniffed by magic). \
             Without it a synthetic internet mix is generated from --seed.")
  in
  let tree_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "tree" ] ~docv:"FILE"
          ~doc:
            "Class hierarchy in hpfq tree syntax (rates taken as given; \
             trace events naming unknown leaves are skipped). Default: one \
             equal-share leaf per trace flow, link sized by --headroom.")
  in
  let burst_arg =
    Arg.(
      value & opt int 8
      & info [ "burst-max" ] ~docv:"N"
          ~doc:
            "Burst-drain cap: consecutive departures one simulator event may \
             execute while the link stays backlogged. The departure hash is \
             identical at every setting.")
  in
  let duration_arg =
    Arg.(
      value & opt float 1.0
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Horizon of the generated trace (ignored with --trace).")
  in
  let mean_pkts_arg =
    Arg.(
      value & opt float 64.0
      & info [ "mean-pkts" ] ~docv:"N"
          ~doc:"Mean packets per leaf of the generated trace (ignored with --trace).")
  in
  let headroom_arg =
    Arg.(
      value & opt float 1.25
      & info [ "headroom" ] ~docv:"X"
          ~doc:"Link rate / offered load for the default hierarchy (ignored with --tree).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"PATH"
          ~doc:
            "Also write the replayed trace: CSV when $(docv) ends in .csv, \
             HPFQTRC2 binary otherwise.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a packet trace (or a generated internet mix) through an \
          H-WF2Q+ hierarchy with burst-drained departures, printing the \
          deterministic departure hash.")
    Term.(
      const run $ event_set_arg $ subtree_term $ hier_engine_arg $ trace_arg
      $ tree_arg $ burst_arg $ seed_arg $ duration_arg $ mean_pkts_arg
      $ headroom_arg $ save_arg)

(* -- churn --------------------------------------------------------------- *)

let churn_cmd =
  let run quick out soak_packets =
    ignore (Experiments.Churn_bench.run ~quick ~out ());
    match soak_packets with
    | None -> ()
    | Some n ->
      Printf.printf "\nsoak: virtual-time drift after %d packets at rate 0.3\n" n;
      List.iter
        (fun r ->
          Printf.printf "  %-10s v_end=%.6f drift=%.3e exact=%b\n"
            r.Experiments.Churn_bench.s_engine r.s_v_end r.s_drift r.s_exact)
        (Experiments.Churn_bench.soak ~packets:n ())
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Shrink the grid to smoke-test scale (10^4 sessions).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_churn.json"
      & info [ "out" ] ~docv:"PATH" ~doc:"Where to write the JSON report.")
  in
  let soak_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "soak" ] ~docv:"PKTS"
          ~doc:
            "Also run the long-horizon virtual-time soak for PKTS packets, \
             diffing fixed-point against float drift.")
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Session-lifecycle benchmark: open/close/reopen churn at 10^5-10^6 \
          concurrent sessions on the fixed-point and float WF2Q+ engines.")
    Term.(const run $ quick_arg $ out_arg $ soak_arg)

(* -- tree ---------------------------------------------------------------- *)

let tree_cmd =
  let run () =
    Format.printf "Fig. 3 hierarchy:@.%a@." Hpfq.Class_tree.pp
      Experiments.Paper_hierarchies.fig3;
    Format.printf "Fig. 8 hierarchy:@.%a@." Hpfq.Class_tree.pp
      Experiments.Paper_hierarchies.fig8
  in
  Cmd.v (Cmd.info "tree" ~doc:"Print the paper's class hierarchies.")
    Term.(const run $ const ())

let () =
  Shard.Subtree.register ();
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "hpfq-sim" ~version:"1.0.0"
             ~doc:"Reproduction driver for Bennett & Zhang, SIGCOMM'96.")
          [
            fig2_cmd; trace_cmd; delay_cmd; link_sharing_cmd; wfi_cmd; shard_cmd;
            replay_cmd; churn_cmd; tree_cmd; custom_cmd;
          ]))
