#!/bin/sh
# Smoke-check the perf harness: run it at quick (tiny-iteration) settings
# and verify the emitted JSON carries every key the perf-regression
# tooling diffs between PRs. The same check runs in-process from
# test/test_bench_smoke.ml as part of `dune runtest`.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_hotpath_quick.json
rm -f "$out"

# Benches and guards build in the release profile: the dev profile passes
# -opaque, which discards cross-module inlining info and so defeats every
# [@inline] on the float hot paths (boxed args/returns roughly double the
# measured minor words per packet). Committed baselines are release-profile
# numbers; measuring a dev build against them would trip the allocation
# ceilings spuriously.
dune build --profile release bench/main.exe
dune exec --profile release bench/main.exe -- perf-quick

[ -f "$out" ] || { echo "check_bench: $out was not produced" >&2; exit 1; }

for key in schema one_level hier pkts_per_sec ns_per_select minor_words_per_pkt; do
  grep -q "\"$key\"" "$out" || {
    echo "check_bench: $out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($out)"

# Same drill for the event-set churn suite: quick run, then verify the
# report shape the events-guard diffs.
events_out=BENCH_events_quick.json
rm -f "$events_out"

dune exec --profile release bench/main.exe -- events-quick

[ -f "$events_out" ] || { echo "check_bench: $events_out was not produced" >&2; exit 1; }

for key in schema headline rows ratios events_per_sec minor_words_per_event calendar_over_heap; do
  grep -q "\"$key\"" "$events_out" || {
    echo "check_bench: $events_out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($events_out)"

# Tracing-disabled overhead guard: with no observer installed, the scheduler
# hot path must stay within HPFQ_PERF_TOL (default 5%) of the committed
# perf baseline — the observability layer is free unless switched on.
# The committed headline minor_words_per_pkt is additionally a hard
# allocation ceiling: the fresh one-level measurement may not exceed it
# by more than HPFQ_WORDS_TOL (default 10% — allocation is deterministic
# per packet, the band only absorbs ring-growth amortisation noise).
# Skipped when no baseline has been committed yet.
if [ -f BENCH_hotpath.json ]; then
  dune exec --profile release bench/main.exe -- perf-guard
else
  echo "check_bench: no BENCH_hotpath.json baseline; skipping perf-guard"
fi

# Event-set regression guard: the calendar headline (cancel-heavy, 64k
# pending) must stay within HPFQ_EVENTS_TOL (default 20%) of the committed
# BENCH_events.json, and the fresh calendar/heap speedup must clear
# HPFQ_EVENTS_RATIO (default 1.0). Skipped when no baseline is committed.
if [ -f BENCH_events.json ]; then
  dune exec --profile release bench/main.exe -- events-guard
else
  echo "check_bench: no BENCH_events.json baseline; skipping events-guard"
fi

# Hierarchy engine A/B: quick generic-vs-flat run, then verify the report
# shape the hier-guard reads.
hier_out=BENCH_hier_quick.json
rm -f "$hier_out"

dune exec --profile release bench/main.exe -- hier-quick

[ -f "$hier_out" ] || { echo "check_bench: $hier_out was not produced" >&2; exit 1; }

for key in schema headline rows speedups flat_pkts_per_sec generic_pkts_per_sec flat_over_generic; do
  grep -q "\"$key\"" "$hier_out" || {
    echo "check_bench: $hier_out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($hier_out)"

# Hierarchy engine guard: the flat Fig. 3 headline must stay within
# HPFQ_HIER_TOL (default 20%) of the committed BENCH_hier.json, the
# fresh flat/generic speedup must clear HPFQ_HIER_RATIO (default 1.0 —
# flat must never be slower), and the fresh flat allocation rate must
# stay under the committed flat_minor_words_per_pkt ceiling plus
# HPFQ_WORDS_TOL (default 10%). Skipped when no baseline is committed.
if [ -f BENCH_hier.json ]; then
  dune exec --profile release bench/main.exe -- hier-guard
else
  echo "check_bench: no BENCH_hier.json baseline; skipping hier-guard"
fi

# Trace replay across the burst_max ladder: quick internet-mix run (the
# run itself fails if any rung's departure hash diverges — the burst-drain
# determinism contract), then verify the report shape the replay-guard
# reads.
replay_out=BENCH_replay_quick.json
rm -f "$replay_out"

dune exec --profile release bench/main.exe -- replay-quick

[ -f "$replay_out" ] || { echo "check_bench: $replay_out was not produced" >&2; exit 1; }

for key in schema workload headline rows burst_max depart_hash batched_pkts_per_sec per_packet_pkts_per_sec speedup; do
  grep -q "\"$key\"" "$replay_out" || {
    echo "check_bench: $replay_out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($replay_out)"

# Replay guard: the batched headline must stay within HPFQ_REPLAY_TOL
# (default 20%) of the committed BENCH_replay.json, the fresh
# batched/per-packet speedup must clear HPFQ_REPLAY_RATIO (default 1.0 —
# batching must never lose), the fresh batched allocation rate must stay
# under the committed batched_minor_words_per_pkt ceiling plus
# HPFQ_WORDS_TOL (default 10%), and both fresh departure hashes must
# equal the committed one (no tolerance: the schedule is
# machine-independent). Skipped when no baseline is committed.
if [ -f BENCH_replay.json ]; then
  dune exec --profile release bench/main.exe -- replay-guard
else
  echo "check_bench: no BENCH_replay.json baseline; skipping replay-guard"
fi

# Session-lifecycle churn: quick run of the open/close grid, then verify
# the report shape the churn-guard reads.
churn_out=BENCH_churn_quick.json
rm -f "$churn_out"

dune exec --profile release bench/main.exe -- churn-quick

[ -f "$churn_out" ] || { echo "check_bench: $churn_out was not produced" >&2; exit 1; }

for key in schema headline rows sessions ramp_opens_per_sec churn_events_per_sec floor_events_per_sec; do
  grep -q "\"$key\"" "$churn_out" || {
    echo "check_bench: $churn_out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($churn_out)"

# Lifecycle guard: the fixed-point engine's churn headline at 10^6 open
# sessions must stay within HPFQ_CHURN_TOL (default 20%) of the committed
# BENCH_churn.json AND above the absolute HPFQ_CHURN_FLOOR (default 1e5
# open/close events/s — the acceptance number). Skipped when no baseline
# is committed.
if [ -f BENCH_churn.json ]; then
  dune exec --profile release bench/main.exe -- churn-guard
else
  echo "check_bench: no BENCH_churn.json baseline; skipping churn-guard"
fi

# Multicore sweep scaling: quick run of the -j ladder, then verify the
# report shape the parallel-guard reads.
parallel_out=BENCH_parallel_quick.json
rm -f "$parallel_out"

dune exec --profile release bench/main.exe -- parallel-quick

[ -f "$parallel_out" ] || { echo "check_bench: $parallel_out was not produced" >&2; exit 1; }

for key in schema cores rows jobs wall_s speedup expected_floor; do
  grep -q "\"$key\"" "$parallel_out" || {
    echo "check_bench: $parallel_out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($parallel_out)"

# Scaling guard: every ladder rung within the host's core budget must
# clear its cores-aware speedup floor, loosened by HPFQ_PARALLEL_TOL
# (default 25%); oversubscribed rungs are informational. Every rung must
# also reproduce the -j1 results bit-for-bit (the pool's determinism
# contract) — that part holds on any host. Skipped when no baseline is
# committed.
if [ -f BENCH_parallel.json ]; then
  dune exec --profile release bench/main.exe -- parallel-guard
else
  echo "check_bench: no BENCH_parallel.json baseline; skipping parallel-guard"
fi

# Sharded multi-port device: quick run of the links x jobs grid, then
# verify the report shape the shard-guard reads.
shard_out=BENCH_shard_quick.json
rm -f "$shard_out"

dune exec --profile release bench/main.exe -- shard-quick

[ -f "$shard_out" ] || { echo "check_bench: $shard_out was not produced" >&2; exit 1; }

for key in schema cores rows links jobs pkts_per_sec speedup expected_floor device_hash; do
  grep -q "\"$key\"" "$shard_out" || {
    echo "check_bench: $shard_out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($shard_out)"

# Device scaling guard: every (links, jobs) cell within the host's core
# budget must clear the cores-aware speedup floor, loosened by
# HPFQ_SHARD_TOL (default 25%); oversubscribed cells are informational.
# Every cell must also reproduce the -j1 device hash bit-for-bit (the
# device's determinism contract) — that part holds on any host. Skipped
# when no baseline is committed.
if [ -f BENCH_shard.json ]; then
  dune exec --profile release bench/main.exe -- shard-guard
else
  echo "check_bench: no BENCH_shard.json baseline; skipping shard-guard"
fi

# Subtree-sharded hierarchy: quick run of the shards x epoch grid (the
# run itself fails if any epoch=1 cell's departure hash diverges from
# the sequential Hier_flat reference, or any epoch>1 cell is not
# worker-count invariant), then verify the report shape the
# hiershard-guard reads.
hiershard_out=BENCH_hiershard_quick.json
rm -f "$hiershard_out"

dune exec --profile release bench/main.exe -- hiershard-quick

[ -f "$hiershard_out" ] || { echo "check_bench: $hiershard_out was not produced" >&2; exit 1; }

for key in schema cores rows shards epoch workers pkts_per_sec ratio_vs_flat depart_hash; do
  grep -q "\"$key\"" "$hiershard_out" || {
    echo "check_bench: $hiershard_out is missing key \"$key\"" >&2
    exit 1
  }
done

echo "check_bench: OK ($hiershard_out)"

# Subtree sharding guard: every (shards, epoch) cell whose coordinator +
# workers fit the host's cores must keep its throughput within
# HPFQ_HIERSHARD_TOL (default 35%) of the sequential flat reference;
# oversubscribed cells are informational. The epoch=1 exactness and
# epoch>1 worker-invariance hash contracts are enforced by the run
# itself on any host. Skipped when no baseline is committed.
if [ -f BENCH_hiershard.json ]; then
  dune exec --profile release bench/main.exe -- hiershard-guard
else
  echo "check_bench: no BENCH_hiershard.json baseline; skipping hiershard-guard"
fi

# Committed-baseline shape check: every BENCH_*.json baseline that IS
# committed must still carry the keys its guard diffs. A refactor that
# regenerates a baseline with a silently-renamed or dropped key would
# otherwise turn the guard into a no-op — make that a hard, named
# failure here instead.
check_committed_keys() {
  file=$1; shift
  [ -f "$file" ] || return 0
  for key in "$@"; do
    grep -q "\"$key\"" "$file" || {
      echo "check_bench: committed baseline $file is missing required key \"$key\"" >&2
      exit 1
    }
  done
  echo "check_bench: committed $file carries all required keys"
}

check_committed_keys BENCH_hotpath.json schema one_level hier pkts_per_sec ns_per_select minor_words_per_pkt
check_committed_keys BENCH_events.json schema headline rows ratios events_per_sec minor_words_per_event calendar_over_heap
check_committed_keys BENCH_hier.json schema headline rows speedups flat_pkts_per_sec generic_pkts_per_sec flat_over_generic flat_minor_words_per_pkt
check_committed_keys BENCH_replay.json schema workload headline rows burst_max depart_hash batched_pkts_per_sec per_packet_pkts_per_sec speedup batched_minor_words_per_pkt
check_committed_keys BENCH_churn.json schema headline rows sessions ramp_opens_per_sec churn_events_per_sec floor_events_per_sec
check_committed_keys BENCH_parallel.json schema cores rows jobs wall_s speedup expected_floor
check_committed_keys BENCH_shard.json schema cores rows links jobs pkts_per_sec speedup expected_floor device_hash
check_committed_keys BENCH_hiershard.json schema cores rows shards epoch workers pkts_per_sec ratio_vs_flat depart_hash
