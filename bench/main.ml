(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation (see DESIGN.md's per-experiment index) and runs the
   complexity microbenchmarks backing the O(log N) claim.

     dune exec bench/main.exe            run everything
     dune exec bench/main.exe -- ID...   run selected ids:
       fig2 fig4 fig5 fig6 fig7 fig9 wfi bounds complexity heaps refclock e2e
     plus extras outside the default set:
       perf-quick perf-headline trace-overhead perf-guard

   Absolute numbers are this simulator's, not the 1996 testbed's; the
   shapes (who wins, by what factor, where crossovers fall) are the
   reproduction targets recorded in EXPERIMENTS.md. *)

let section title =
  Printf.printf "\n================ %s ================\n%!" title

(* ------------------------------------------------------------------ *)
(* FIG2: service order walkthrough                                     *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "FIG2: GPS vs WFQ vs WF2Q vs WF2Q+ service order";
  Experiments.Fig2_walkthrough.render Format.std_formatter
    (Experiments.Fig2_walkthrough.run ())

(* ------------------------------------------------------------------ *)
(* FIG4/6/7: RT-1 delay under the three scenarios                      *)
(* ------------------------------------------------------------------ *)

let delay_disciplines =
  [
    Hpfq.Disciplines.wf2q_plus;
    Hpfq.Disciplines.wfq;
    Hpfq.Disciplines.scfq;
    Hpfq.Disciplines.sfq;
  ]

let delay_figure ~id ~scenario () =
  section
    (Printf.sprintf "%s: RT-1 delay, %s" id
       (Experiments.Delay_experiment.scenario_name scenario));
  let results =
    List.map
      (fun factory ->
        Experiments.Delay_experiment.run ~factory ~scenario ~horizon:12.0 ())
      delay_disciplines
  in
  List.iter (fun r -> print_endline (Experiments.Delay_experiment.summary_row r)) results;
  Printf.printf "Cor.2 delay bound for RT-1 (H-WF2Q+): %.3f ms\n"
    (Experiments.Delay_experiment.rt1_delay_bound *. 1e3);
  (* the figure itself: max delay per 0.5 s window for the headline pair *)
  (match results with
  | wf2qp :: wfq :: _ ->
    let series r =
      Stats.Delay_stats.series_max_over_windows
        r.Experiments.Delay_experiment.delays ~window:0.5
    in
    let s1 = series wf2qp and s2 = series wfq in
    Printf.printf "%8s %14s %14s\n" "t(s)" "H-WF2Q+ (ms)" "H-WFQ (ms)";
    List.iter2
      (fun (t, d1) (_, d2) -> Printf.printf "%8.1f %14.3f %14.3f\n" t (d1 *. 1e3) (d2 *. 1e3))
      s1
      (if List.length s2 = List.length s1 then s2
       else List.filteri (fun i _ -> i < List.length s1) s2)
  | _ -> ())

let fig4 = delay_figure ~id:"FIG4" ~scenario:Experiments.Delay_experiment.S1_constant_and_trains
let fig6 = delay_figure ~id:"FIG6" ~scenario:Experiments.Delay_experiment.S2_overloaded_poisson
let fig7 = delay_figure ~id:"FIG7" ~scenario:Experiments.Delay_experiment.S3_overload_and_trains

(* ------------------------------------------------------------------ *)
(* FIG5: service lag (arrivals vs service) close-up                    *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "FIG5: RT-1 arrivals vs service (max lag, packets)";
  Printf.printf "%-12s %10s %14s\n" "discipline" "max lag" "delay bound ok";
  List.iter
    (fun factory ->
      let r =
        Experiments.Delay_experiment.run ~factory
          ~scenario:Experiments.Delay_experiment.S1_constant_and_trains ~horizon:12.0 ()
      in
      let ok =
        Stats.Delay_stats.max_delay r.delays
        <= Experiments.Delay_experiment.rt1_delay_bound +. 1e-9
      in
      Printf.printf "%-12s %10.1f %14s\n" r.discipline
        (Stats.Service_curve.max_lag r.lag)
        (if ok then "yes" else "NO"))
    delay_disciplines;
  (* close-up: lag trajectory around the worst spike under H-WFQ *)
  let r =
    Experiments.Delay_experiment.run ~factory:Hpfq.Disciplines.wfq
      ~scenario:Experiments.Delay_experiment.S1_constant_and_trains ~horizon:12.0 ()
  in
  let lags = Stats.Service_curve.lag_series r.lag in
  let t_peak, _ =
    List.fold_left (fun (bt, bl) (t, l) -> if l > bl then (t, l) else (bt, bl)) (0.0, -1.0) lags
  in
  Printf.printf "\nH-WFQ lag close-up around t=%.3f s:\n%8s %10s\n" t_peak "t(s)" "lag(pkt)";
  List.iter
    (fun (t, l) ->
      if Float.abs (t -. t_peak) <= 0.05 then Printf.printf "%8.4f %10.1f\n" t l)
    lags

(* ------------------------------------------------------------------ *)
(* FIG9: hierarchical link sharing vs ideal H-GPS                      *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "FIG9: link-sharing bandwidth vs ideal H-GPS";
  let r = Experiments.Link_sharing.run () in
  Experiments.Link_sharing.summary Format.std_formatter r;
  (* aggregate tracking error over the measured window (paper: curves
     "track very closely") *)
  let errs =
    List.concat_map
      (fun interval ->
        if interval.Experiments.Link_sharing.t0 >= 0.5 then
          List.map
            (fun (row : Experiments.Link_sharing.interval_row) ->
              Float.abs (row.measured -. row.ideal) /. Float.max 1.0 row.ideal)
            interval.Experiments.Link_sharing.rows
        else [])
      r.Experiments.Link_sharing.intervals
  in
  let mean_err = List.fold_left ( +. ) 0.0 errs /. float_of_int (List.length errs) in
  Printf.printf "mean |measured-ideal|/ideal over all phases: %.1f%%\n" (mean_err *. 100.0)

(* ------------------------------------------------------------------ *)
(* WFI: worst-case fair index sweep (Theorem 3/4 + WFQ's N-growth)     *)
(* ------------------------------------------------------------------ *)

let wfi () =
  section "WFI: measured T-WFI vs N (unit link, unit packets)";
  let ns = [ 4; 8; 16; 32; 64; 128 ] in
  Printf.printf "%-12s" "discipline";
  List.iter (fun n -> Printf.printf " N=%-8d" n) ns;
  Printf.printf "  (WF2Q+ bound: %.1f)\n"
    (let m = Experiments.Wfi_probe.measure ~factory:Hpfq.Disciplines.wf2q_plus ~n:4 () in
     m.wf2q_plus_bound);
  List.iter
    (fun factory ->
      Printf.printf "%-12s" factory.Sched.Sched_intf.kind;
      List.iter
        (fun n ->
          let m = Experiments.Wfi_probe.measure ~factory ~n () in
          Printf.printf " %-10.1f" m.measured_twfi)
        ns;
      print_newline ())
    Hpfq.Disciplines.pfq

(* ------------------------------------------------------------------ *)
(* BOUNDS: Theorem 4(3) / Corollary 2 delay bounds, adversarial load   *)
(* ------------------------------------------------------------------ *)

let bounds () =
  section "BOUNDS: leaky-bucket session delay vs Cor.2 bound (H-WF2Q+)";
  (* a (sigma, rho)-constrained session inside the Fig. 3 tree, greedy
     conforming source, everything else saturated *)
  let module H = Experiments.Paper_hierarchies in
  let sigma = H.rt1_sigma_bits in
  let bound = Experiments.Delay_experiment.rt1_delay_bound in
  Printf.printf "%-12s %14s %14s %8s\n" "discipline" "max delay(ms)" "bound(ms)" "within";
  List.iter
    (fun factory ->
      let sim = Engine.Simulator.create () in
      let delays = Stats.Delay_stats.create () in
      let h =
        Hpfq.Hier.create ~sim ~spec:H.fig3
          ~make_policy:(Hpfq.Hier.uniform factory)
          ~on_depart:(fun pkt ~leaf t ->
            if leaf = "RT-1" then
              Stats.Delay_stats.record delays ~time:t ~delay:(t -. pkt.Net.Packet.arrival))
          ()
      in
      let emit_to name =
        let leaf = Hpfq.Hier.leaf_id h name in
        fun ~size_bits -> ignore (Hpfq.Hier.inject h ~leaf ~size_bits)
      in
      ignore
        (Traffic.Source.leaky_bucket_greedy ~sim ~emit:(emit_to "RT-1") ~sigma_bits:sigma
           ~rho:H.rt1_rate ~packet_bits:H.fig3_packet_bits ~stop_at:6.0 ());
      ignore
        (Traffic.Source.greedy ~sim ~emit:(emit_to "BE-1") ~packet_bits:H.fig3_packet_bits
           ~backlog_packets:64 ~stop_at:6.0 ());
      for i = 1 to 10 do
        ignore
          (Traffic.Source.greedy ~sim
             ~emit:(emit_to (Printf.sprintf "CS-%d" i))
             ~packet_bits:H.fig3_packet_bits ~backlog_packets:16 ~stop_at:6.0 ());
        ignore
          (Traffic.Source.greedy ~sim
             ~emit:(emit_to (Printf.sprintf "PS-%d" i))
             ~packet_bits:H.fig3_packet_bits ~backlog_packets:16 ~stop_at:6.0 ())
      done;
      Engine.Simulator.run ~until:8.0 sim;
      let max_delay = Stats.Delay_stats.max_delay delays in
      Printf.printf "%-12s %14.3f %14.3f %8s\n" factory.Sched.Sched_intf.kind
        (max_delay *. 1e3) (bound *. 1e3)
        (if max_delay <= bound +. 1e-9 then "yes" else "NO"))
    delay_disciplines

(* ------------------------------------------------------------------ *)
(* COMPLEXITY: per-operation cost vs number of sessions (bechamel)     *)
(* ------------------------------------------------------------------ *)

(* A policy instance with [n] perpetually backlogged sessions; each staged
   operation is one full scheduling cycle: select + arrive + requeue. *)
let loaded_policy factory n =
  let policy = factory.Sched.Sched_intf.make ~rate:1.0 in
  let rate = 1.0 /. float_of_int n in
  for _ = 1 to n do
    ignore (policy.Sched.Sched_intf.add_session ~rate)
  done;
  let now = ref 0.0 in
  for i = 0 to n - 1 do
    policy.Sched.Sched_intf.arrive ~now:0.0 ~session:i ~size_bits:1.0;
    policy.Sched.Sched_intf.backlog ~now:0.0 ~session:i ~head_bits:1.0
  done;
  fun () ->
    match policy.Sched.Sched_intf.select ~now:!now with
    | None -> ()
    | Some s ->
      now := !now +. 1.0;
      policy.Sched.Sched_intf.arrive ~now:!now ~session:s ~size_bits:1.0;
      policy.Sched.Sched_intf.requeue ~now:!now ~session:s ~head_bits:1.0

let run_bechamel tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      results []
  in
  List.sort compare rows

let complexity () =
  section "COMPLEXITY: ns per scheduling cycle vs N (O(log N) claim)";
  let sizes = [ 16; 64; 256; 1024; 4096 ] in
  let factories =
    [ Hpfq.Disciplines.wf2q_plus; Hpfq.Disciplines.wfq; Hpfq.Disciplines.scfq;
      Hpfq.Disciplines.drr ]
  in
  let tests =
    List.concat_map
      (fun factory ->
        List.map
          (fun n ->
            Bechamel.Test.make
              ~name:(Printf.sprintf "%s/N=%d" factory.Sched.Sched_intf.kind n)
              (Bechamel.Staged.stage (loaded_policy factory n)))
          sizes)
      factories
  in
  let grouped = Bechamel.Test.make_grouped ~name:"cycle" tests in
  let rows = run_bechamel grouped in
  List.iter (fun (name, ns) -> Printf.printf "%-28s %10.1f ns/cycle\n" name ns) rows;
  print_endline
    "(WF2Q+ should grow ~log N; exact-GPS WFQ may show super-log growth; DRR is O(1))"

let heaps () =
  section "HEAPS: push+pop cost, binary vs pairing vs indexed";
  let sizes = [ 256; 4096 ] in
  let tests =
    List.concat_map
      (fun n ->
        let seeds = Array.init n (fun i -> float_of_int ((i * 7919) mod 104729)) in
        [
          Bechamel.Test.make
            ~name:(Printf.sprintf "binary/N=%d" n)
            (Bechamel.Staged.stage (fun () ->
                 let h = Prioq.Binary_heap.create ~cmp:compare ~dummy:0.0 () in
                 Array.iter (Prioq.Binary_heap.push h) seeds;
                 while not (Prioq.Binary_heap.is_empty h) do
                   ignore (Prioq.Binary_heap.pop h)
                 done));
          Bechamel.Test.make
            ~name:(Printf.sprintf "pairing/N=%d" n)
            (Bechamel.Staged.stage (fun () ->
                 let h = Prioq.Pairing_heap.create ~cmp:compare in
                 Array.iter (Prioq.Pairing_heap.push h) seeds;
                 while not (Prioq.Pairing_heap.is_empty h) do
                   ignore (Prioq.Pairing_heap.pop h)
                 done));
          Bechamel.Test.make
            ~name:(Printf.sprintf "indexed/N=%d" n)
            (Bechamel.Staged.stage (fun () ->
                 let h = Prioq.Indexed_heap.create n in
                 Array.iteri (fun k p -> Prioq.Indexed_heap.add h ~key:k ~prio:p) seeds;
                 while not (Prioq.Indexed_heap.is_empty h) do
                   ignore (Prioq.Indexed_heap.pop_min h)
                 done));
        ])
      sizes
  in
  let rows = run_bechamel (Bechamel.Test.make_grouped ~name:"heap" tests) in
  List.iter (fun (name, ns) -> Printf.printf "%-24s %12.1f ns/full-cycle\n" name ns) rows

(* ------------------------------------------------------------------ *)
(* REFCLOCK: ablation — root policy on real vs reference time          *)
(* ------------------------------------------------------------------ *)

let refclock () =
  section "REFCLOCK ablation: root clock real-time vs reference-time";
  let module H = Experiments.Paper_hierarchies in
  List.iter
    (fun root_clock ->
      let sim = Engine.Simulator.create () in
      let delays = Stats.Delay_stats.create () in
      let h =
        Hpfq.Hier.create ~sim ~spec:H.fig3
          ~make_policy:(Hpfq.Hier.uniform Hpfq.Disciplines.wf2q_plus)
          ~root_clock
          ~on_depart:(fun pkt ~leaf t ->
            if leaf = "RT-1" then
              Stats.Delay_stats.record delays ~time:t ~delay:(t -. pkt.Net.Packet.arrival))
          ()
      in
      let emit_to name =
        let leaf = Hpfq.Hier.leaf_id h name in
        fun ~size_bits -> ignore (Hpfq.Hier.inject h ~leaf ~size_bits)
      in
      (* idle gaps at the root are where the two clocks differ: drive RT-1
         alone with sparse on/off traffic *)
      ignore
        (Traffic.Source.on_off ~sim ~emit:(emit_to "RT-1") ~peak_rate:(4.0 *. H.rt1_rate)
           ~packet_bits:H.fig3_packet_bits ~on_duration:0.025 ~off_duration:0.075
           ~start:0.2 ~stop_at:6.0 ());
      ignore
        (Traffic.Source.cbr ~sim ~emit:(emit_to "PS-1") ~rate:H.ps_rate
           ~packet_bits:H.fig3_packet_bits ~stop_at:6.0 ());
      Engine.Simulator.run ~until:8.0 sim;
      Printf.printf "root_clock=%-15s max RT-1 delay = %.3f ms over %d pkts\n"
        (match root_clock with `Real_time -> "real-time" | `Reference_time -> "reference")
        (Stats.Delay_stats.max_delay delays *. 1e3)
        (Stats.Delay_stats.count delays))
    [ `Real_time; `Reference_time ]

(* ------------------------------------------------------------------ *)
(* E2E: end-to-end delay across chained H-PFQ servers                  *)
(* ------------------------------------------------------------------ *)

let e2e () =
  section "E2E: worst end-to-end delay vs hop count (guaranteed flow, saturated hops)";
  let hop_spec name =
    Hpfq.Class_tree.node name ~rate:1.0
      [
        Hpfq.Class_tree.leaf (name ^ "/flow") ~rate:0.4;
        Hpfq.Class_tree.leaf (name ^ "/cross") ~rate:0.6;
      ]
  in
  Printf.printf "%-8s %-10s %14s %14s %8s\n" "hops" "discipline" "measured" "bound" "within";
  List.iter
    (fun n_hops ->
      List.iter
        (fun factory ->
          let sim = Engine.Simulator.create () in
          let worst = ref 0.0 in
          let hops =
            List.init n_hops (fun k ->
                let name = Printf.sprintf "h%d" k in
                (name, hop_spec name))
          in
          let p =
            Netgraph.Pipeline.create ~sim ~hops
              ~make_policy:(Hpfq.Hier.uniform factory)
              ~propagation_delay:0.01
              ~on_deliver:(fun ~flow:_ _ ~injected ~delivered ->
                worst := Float.max !worst (delivered -. injected))
              ()
          in
          Netgraph.Pipeline.add_flow p ~name:"f"
            ~route:(List.init n_hops (fun k -> Printf.sprintf "h%d/flow" k));
          let sigma = 3.0 in
          ignore
            (Traffic.Source.leaky_bucket_greedy ~sim
               ~emit:(fun ~size_bits -> Netgraph.Pipeline.inject p ~flow:"f" ~size_bits)
               ~sigma_bits:sigma ~rho:0.4 ~packet_bits:1.0 ~stop_at:40.0 ());
          List.iteri
            (fun k _ ->
              let server = Netgraph.Pipeline.hop_server p (Printf.sprintf "h%d" k) in
              let leaf = Hpfq.Hier.leaf_id server (Printf.sprintf "h%d/cross" k) in
              ignore
                (Traffic.Source.greedy ~sim
                   ~emit:(fun ~size_bits ->
                     ignore (Hpfq.Hier.inject server ~leaf ~size_bits))
                   ~packet_bits:1.0 ~backlog_packets:30 ~top_up_every:15.0
                   ~stop_at:40.0 ()))
            hops;
          Engine.Simulator.run ~until:80.0 sim;
          let bound =
            match Netgraph.Pipeline.end_to_end_bound p ~flow:"f" ~sigma ~l_max:1.0 with
            | Ok b -> b
            | Error e -> failwith e
          in
          Printf.printf "%-8d %-10s %14.3f %14.3f %8s\n" n_hops
            factory.Sched.Sched_intf.kind !worst bound
            (if !worst <= bound +. 1e-9 then "yes" else "NO"))
        [ Hpfq.Disciplines.wf2q_plus; Hpfq.Disciplines.wfq ])
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* PERF: hot-path throughput baseline (see lib/bench_kit/perf.ml)      *)
(* ------------------------------------------------------------------ *)

(* Grid-style benches fan their cells out on HPFQ_JOBS workers (default 1:
   committed baselines are sequential; parallel runs are only comparable
   with other runs at the same -j). Guards always measure sequentially. *)
let env_pool () = Parallel.Pool.create ()

let perf () = Bench_kit.Perf.run ~pool:(env_pool ()) ()
let perf_quick () =
  Bench_kit.Perf.run ~pool:(env_pool ()) ~quick:true ~out:"BENCH_hotpath_quick.json" ()

(* ------------------------------------------------------------------ *)
(* EVENTS: pending-set churn, slot heap vs calendar queue             *)
(* ------------------------------------------------------------------ *)

let events () = ignore (Bench_kit.Events.run ~pool:(env_pool ()) ())
let events_quick () =
  ignore
    (Bench_kit.Events.run ~pool:(env_pool ()) ~quick:true
       ~out:"BENCH_events_quick.json" ())

let events_guard () =
  section "EVENTS-GUARD: churn headline vs BENCH_events.json";
  match Bench_kit.Events.guard () with
  | Error e ->
    Printf.eprintf "events-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf
      "baseline %16.0f events/sec\n\
       fresh    %16.0f events/sec\n\
       ratio    %16.3f (tolerance -%.0f%%)\n\
       speedup  %15.2fx calendar/heap (floor %.2fx)\n"
      g.Bench_kit.Events.baseline_eps g.fresh_eps g.perf_ratio (g.tol *. 100.0)
      g.speedup g.min_speedup;
    if g.within then print_endline "events-guard: OK"
    else begin
      Printf.eprintf
        "events-guard: FAIL — churn headline regressed beyond %.0f%% or the \
         calendar fell under %.2fx the heap\n"
        (g.tol *. 100.0) g.min_speedup;
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* HIER: hierarchy engine A/B, generic vs flat                        *)
(* ------------------------------------------------------------------ *)

let hier () = ignore (Experiments.Hier_bench.run ~pool:(env_pool ()) ())
let hier_quick () =
  ignore
    (Experiments.Hier_bench.run ~pool:(env_pool ()) ~quick:true
       ~out:"BENCH_hier_quick.json" ())

let hier_guard () =
  section "HIER-GUARD: Fig. 3 flat headline vs BENCH_hier.json";
  match Experiments.Hier_bench.guard () with
  | Error e ->
    Printf.eprintf "hier-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf
      "baseline %16.0f pkts/sec (flat)\n\
       fresh    %16.0f pkts/sec (flat)\n\
       ratio    %16.3f (tolerance -%.0f%%)\n\
       speedup  %15.2fx flat/generic (floor %.2fx)\n\
       words/pkt %14.3f flat vs %.3f generic\n"
      g.Experiments.Hier_bench.baseline_pps g.fresh_pps g.perf_ratio
      (g.tol *. 100.0) g.speedup g.min_speedup g.flat_words g.generic_words;
    (match g.baseline_flat_words with
    | Some b ->
      Printf.printf "ceiling  %16.3f flat words/pkt (+%.0f%% band)\n"
        (b *. (1.0 +. g.words_tol))
        (g.words_tol *. 100.0)
    | None ->
      print_endline "ceiling  baseline has no flat words key; gate vacuous");
    if g.within then print_endline "hier-guard: OK"
    else begin
      Printf.eprintf
        "hier-guard: FAIL — flat headline regressed beyond %.0f%%, the flat \
         engine fell under %.2fx the generic one, or flat allocation exceeds \
         its committed ceiling by more than %.0f%%\n"
        (g.tol *. 100.0) g.min_speedup (g.words_tol *. 100.0);
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* REPLAY: internet-mix trace replay across the burst_max ladder      *)
(* ------------------------------------------------------------------ *)

let replay () = ignore (Experiments.Replay_bench.run ())
let replay_quick () =
  ignore (Experiments.Replay_bench.run ~quick:true ~out:"BENCH_replay_quick.json" ())

let replay_guard () =
  section "REPLAY-GUARD: batched replay headline vs BENCH_replay.json";
  match Experiments.Replay_bench.guard () with
  | Error e ->
    Printf.eprintf "replay-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf
      "baseline %16.0f pkts/sec (batched)\n\
       fresh    %16.0f pkts/sec (batched)\n\
       ratio    %16.3f (tolerance -%.0f%%)\n\
       speedup  %15.2fx batched/per-packet (floor %.2fx)\n\
       hash     %16s\n"
      g.Experiments.Replay_bench.baseline_pps g.fresh_pps g.perf_ratio
      (g.tol *. 100.0) g.speedup g.min_speedup
      (if g.hash_ok then "OK" else "MISMATCH");
    (match g.baseline_words with
    | Some b ->
      Printf.printf "words/pkt %15.2f batched vs %.2f ceiling (+%.0f%% band)\n"
        g.fresh_words
        (b *. (1.0 +. g.words_tol))
        (g.words_tol *. 100.0)
    | None ->
      Printf.printf
        "words/pkt %15.2f batched (baseline has no ceiling; gate vacuous)\n"
        g.fresh_words);
    if g.within then print_endline "replay-guard: OK"
    else begin
      Printf.eprintf
        "replay-guard: FAIL — departure hash diverged from the committed \
         baseline, the batched headline regressed beyond %.0f%%, batching \
         fell under %.2fx the per-packet path, or batched allocation exceeds \
         its committed ceiling by more than %.0f%%\n"
        (g.tol *. 100.0) g.min_speedup (g.words_tol *. 100.0);
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* CHURN: session lifecycle at 10^5-10^6 sessions; vtime soak         *)
(* ------------------------------------------------------------------ *)

let churn () = ignore (Experiments.Churn_bench.run ())
let churn_quick () =
  ignore (Experiments.Churn_bench.run ~quick:true ~out:"BENCH_churn_quick.json" ())

let churn_guard () =
  section "CHURN-GUARD: lifecycle headline vs BENCH_churn.json";
  match Experiments.Churn_bench.guard () with
  | Error e ->
    Printf.eprintf "churn-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf
      "baseline %16.0f events/sec\n\
       fresh    %16.0f events/sec\n\
       ratio    %16.3f (tolerance -%.0f%%)\n\
       floor    %16.0f events/sec\n"
      g.Experiments.Churn_bench.baseline_eps g.fresh_eps g.perf_ratio
      (g.tol *. 100.0) g.floor;
    if g.within then print_endline "churn-guard: OK"
    else begin
      Printf.eprintf
        "churn-guard: FAIL — churn headline regressed beyond %.0f%% or fell \
         under the %.0f events/sec floor\n"
        (g.tol *. 100.0) g.floor;
      exit 1
    end

let soak () =
  section "SOAK: long-horizon virtual-time drift, fixed vs float";
  let packets =
    match Sys.getenv_opt "HPFQ_SOAK" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1_000_000_000)
    | None -> 10_000_000
  in
  let results = Experiments.Churn_bench.soak ~packets () in
  Printf.printf "%-10s %12s %20s %16s %6s\n" "engine" "packets" "v_end" "drift" "exact";
  List.iter
    (fun (r : Experiments.Churn_bench.soak_result) ->
      Printf.printf "%-10s %12d %20.6f %16.3e %6b\n" r.s_engine r.s_packets
        r.s_v_end r.s_drift r.s_exact)
    results

(* ------------------------------------------------------------------ *)
(* PARALLEL: wfi sweep scaling vs worker count                        *)
(* ------------------------------------------------------------------ *)

let parallel () = ignore (Experiments.Parallel_bench.run ())
let parallel_quick () =
  ignore
    (Experiments.Parallel_bench.run ~quick:true ~out:"BENCH_parallel_quick.json" ())

let parallel_guard () =
  section "PARALLEL-GUARD: sweep scaling vs cores-aware floor";
  match Experiments.Parallel_bench.guard () with
  | Error e ->
    Printf.eprintf "parallel-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf "cores=%d tolerance=%.0f%%\n%6s %10s %14s %6s\n" g.g_cores
      (g.Experiments.Parallel_bench.g_tol *. 100.0) "jobs" "speedup" "floor(1-tol)" "ok";
    List.iter
      (fun (r : Experiments.Parallel_bench.guard_row) ->
        Printf.printf "%6d %9.2fx %13.2fx %6s\n" r.g_jobs r.g_speedup r.g_floor
          (if not r.g_enforced then "info" else if r.g_ok then "yes" else "NO"))
      g.g_rows;
    if g.g_within then print_endline "parallel-guard: OK"
    else begin
      Printf.eprintf
        "parallel-guard: FAIL — sweep speedup fell below the cores-aware floor\n";
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* SHARD: multi-port device scaling vs worker count                   *)
(* ------------------------------------------------------------------ *)

let shard () = ignore (Experiments.Shard_bench.run ())
let shard_quick () =
  ignore (Experiments.Shard_bench.run ~quick:true ~out:"BENCH_shard_quick.json" ())

let shard_guard () =
  section "SHARD-GUARD: device scaling vs cores-aware floor";
  match Experiments.Shard_bench.guard () with
  | Error e ->
    Printf.eprintf "shard-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf "cores=%d tolerance=%.0f%%\n%7s %6s %10s %14s %6s\n" g.g_cores
      (g.Experiments.Shard_bench.g_tol *. 100.0) "links" "jobs" "speedup"
      "floor(1-tol)" "ok";
    List.iter
      (fun (r : Experiments.Shard_bench.guard_row) ->
        Printf.printf "%7d %6d %9.2fx %13.2fx %6s\n" r.g_links r.g_jobs
          r.g_speedup r.g_floor
          (if not r.g_enforced then "info" else if r.g_ok then "yes" else "NO"))
      g.g_rows;
    if g.g_within then print_endline "shard-guard: OK"
    else begin
      Printf.eprintf
        "shard-guard: FAIL — device speedup fell below the cores-aware floor\n";
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* HIERSHARD: one wide hierarchy, subtree shards x root-sync epoch    *)
(* ------------------------------------------------------------------ *)

let hiershard () = ignore (Experiments.Hiershard_bench.run ())
let hiershard_quick () =
  ignore
    (Experiments.Hiershard_bench.run ~quick:true ~out:"BENCH_hiershard_quick.json" ())

let hiershard_guard () =
  section "HIERSHARD-GUARD: subtree sharding vs cores-aware floor";
  match Experiments.Hiershard_bench.guard () with
  | Error e ->
    Printf.eprintf "hiershard-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf "cores=%d tolerance=%.0f%%\n%7s %6s %8s %10s %14s %6s\n" g.g_cores
      (g.Experiments.Hiershard_bench.g_tol *. 100.0) "shards" "epoch" "workers"
      "ratio" "floor(1-tol)" "ok";
    List.iter
      (fun (r : Experiments.Hiershard_bench.guard_row) ->
        Printf.printf "%7d %6d %8d %9.2fx %13.2fx %6s\n" r.g_shards r.g_epoch
          r.g_workers r.g_ratio r.g_floor
          (if not r.g_enforced then "info" else if r.g_ok then "yes" else "NO"))
      g.g_rows;
    if g.g_within then print_endline "hiershard-guard: OK"
    else begin
      Printf.eprintf
        "hiershard-guard: FAIL — sharded throughput fell below the cores-aware floor\n";
      exit 1
    end

(* ------------------------------------------------------------------ *)
(* TRACE-OVERHEAD: cost of the observer hook, off and on              *)
(* ------------------------------------------------------------------ *)

(* The observability contract (Sched_intf): observer = None must be a single
   load+branch per operation. Three variants of the one-level WF2Q+ cycle:
   never-installed, installed-then-removed (must match never-installed), and
   an active observer recording into the obs ring buffer (the real price of
   tracing, paid only when asked for). *)
let trace_overhead () =
  section "TRACE-OVERHEAD: one-level WF2Q+ cycle, observer off vs on";
  let n = 4096 and iters = 200_000 in
  let factory = Hpfq.Disciplines.wf2q_plus in
  let run name setup =
    let policy, cycle = Bench_kit.Perf.loaded_policy_with factory n in
    setup policy;
    let wall, minor = Bench_kit.Perf.time_loop cycle ~iters in
    let pps = float_of_int iters /. wall in
    Printf.printf "%-24s %16.0f pkts/sec %10.3f words/pkt\n" name pps
      (minor /. float_of_int iters);
    pps
  in
  let never = run "never installed" (fun _ -> ()) in
  let disabled =
    run "installed then removed" (fun p ->
        p.Sched.Sched_intf.set_observer (Some Sched.Sched_intf.null_observer);
        p.Sched.Sched_intf.set_observer None)
  in
  let recorder = Obs.Recorder.create ~capacity:(1 lsl 16) () in
  let record kind ~now ~vtime ~session ~bits =
    Obs.Recorder.record recorder ~kind ~node:0 ~session ~time:now ~vtime ~bits
  in
  let ring_observer =
    {
      Sched.Sched_intf.on_arrive =
        (fun ~now ~vtime ~session ~size_bits ->
          record Obs.Event.Arrive ~now ~vtime ~session ~bits:size_bits);
      on_backlog =
        (fun ~now ~vtime ~session ~head_bits ->
          record Obs.Event.Backlog ~now ~vtime ~session ~bits:head_bits);
      on_requeue =
        (fun ~now ~vtime ~session ~head_bits ->
          record Obs.Event.Requeue ~now ~vtime ~session ~bits:head_bits);
      on_idle =
        (fun ~now ~vtime ~session ->
          record Obs.Event.Idle ~now ~vtime ~session ~bits:0.0);
      on_select =
        (fun ~now ~vtime ~session ->
          record Obs.Event.Select ~now ~vtime ~session ~bits:0.0);
    }
  in
  let active =
    run "active ring recorder" (fun p ->
        p.Sched.Sched_intf.set_observer (Some ring_observer))
  in
  Printf.printf "\nremoved-observer overhead vs never-installed: %+.2f%%\n"
    ((never /. disabled -. 1.0) *. 100.0);
  Printf.printf "active tracing cost vs never-installed:       %+.2f%%\n"
    ((never /. active -. 1.0) *. 100.0);
  Printf.printf "(ring retained %d events, dropped %d)\n"
    (Obs.Recorder.length recorder) (Obs.Recorder.dropped recorder);
  (* Same question end to end for the flattened hierarchy engine: the
     saturated Fig. 3 run with no observers installed vs with the full
     structured trace attached to every node (Hier_flat pays the same
     load+branch-per-op contract as the one-level policies). *)
  Printf.printf "\nHier_flat end-to-end (Fig. 3 saturated), observer off vs on:\n";
  let module H = Experiments.Paper_hierarchies in
  let pkt = H.fig3_packet_bits in
  let target = 100_000 in
  let run_fig3 name trace_it =
    let sim = Engine.Simulator.create () in
    let departs = ref 0 in
    let h = ref None in
    let reinject = Hashtbl.create 32 in
    let hier =
      Hpfq.Hier_engine.create ~sim ~spec:H.fig3
        ~factory:Hpfq.Disciplines.wf2q_plus ~engine:`Flat
        ~on_depart:(fun _pkt ~leaf _t ->
          incr departs;
          match Hashtbl.find_opt reinject leaf with
          | Some id ->
            ignore (Hpfq.Hier_engine.inject (Option.get !h) ~leaf:id ~size_bits:pkt)
          | None -> ())
        ()
    in
    h := Some hier;
    if trace_it then
      ignore (Obs.Trace.attach_engine ~capacity:(1 lsl 16) hier);
    List.iter
      (fun (name, id) ->
        Hashtbl.replace reinject name id;
        Hpfq.Hier_engine.inject_many hier ~leaf:id ~size_bits:pkt ~count:2)
      (Hpfq.Hier_engine.leaf_ids hier);
    let horizon = float_of_int target *. pkt /. Hpfq.Class_tree.rate H.fig3 in
    let t0 = Unix.gettimeofday () in
    Engine.Simulator.run ~until:horizon sim;
    let wall = Unix.gettimeofday () -. t0 in
    let pps = float_of_int !departs /. wall in
    Printf.printf "%-24s %16.0f pkts/sec\n" name pps;
    pps
  in
  let flat_off = run_fig3 "no observers" false in
  let flat_on = run_fig3 "full structured trace" true in
  Printf.printf "active tracing cost on Hier_flat:             %+.2f%%\n"
    ((flat_off /. flat_on -. 1.0) *. 100.0)

(* ------------------------------------------------------------------ *)
(* PERF-GUARD: fresh headline vs the committed baseline               *)
(* ------------------------------------------------------------------ *)

let perf_guard () =
  section "PERF-GUARD: tracing-disabled hot path vs BENCH_hotpath.json";
  match Bench_kit.Perf.guard () with
  | Error e ->
    Printf.eprintf "perf-guard: %s\n" e;
    exit 1
  | Ok g ->
    Printf.printf
      "baseline %16.0f pkts/sec\nfresh    %16.0f pkts/sec\nratio    %16.3f (tolerance -%.0f%%)\n"
      g.Bench_kit.Perf.baseline_pps g.fresh_pps g.ratio (g.tol *. 100.0);
    (match g.baseline_words with
    | Some b ->
      Printf.printf "words/pkt %15.2f fresh vs %.2f ceiling (+%.0f%% band)\n"
        g.fresh_words
        (b *. (1.0 +. g.words_tol))
        (g.words_tol *. 100.0)
    | None ->
      Printf.printf
        "words/pkt %15.2f fresh (baseline has no ceiling; gate vacuous)\n"
        g.fresh_words);
    if g.within then print_endline "perf-guard: OK"
    else begin
      Printf.eprintf
        "perf-guard: FAIL — untraced hot path is more than %.0f%% below the \
         committed baseline, or allocates more than %.0f%% above its committed \
         minor-words ceiling\n"
        (g.tol *. 100.0) (g.words_tol *. 100.0);
      exit 1
    end

(* ------------------------------------------------------------------ *)

let all_benches =
  [
    ("fig2", fig2);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig9", fig9);
    ("wfi", wfi);
    ("bounds", bounds);
    ("complexity", complexity);
    ("heaps", heaps);
    ("refclock", refclock);
    ("e2e", e2e);
    ("perf", perf);
    ("events", events);
    ("hier", hier);
    ("churn", churn);
  ]

(* runnable by id but not part of the no-argument "run everything" set *)
let perf_headline () =
  Printf.printf "headline_pkts_per_sec %.0f\n%!" (Bench_kit.Perf.headline ())

let extra_benches =
  [
    ("perf-quick", perf_quick);
    ("perf-headline", perf_headline);
    ("trace-overhead", trace_overhead);
    ("perf-guard", perf_guard);
    ("events-quick", events_quick);
    ("events-guard", events_guard);
    ("hier-quick", hier_quick);
    ("hier-guard", hier_guard);
    ("replay", replay);
    ("replay-quick", replay_quick);
    ("replay-guard", replay_guard);
    ("churn-quick", churn_quick);
    ("churn-guard", churn_guard);
    ("soak", soak);
    ("parallel", parallel);
    ("parallel-quick", parallel_quick);
    ("parallel-guard", parallel_guard);
    ("shard", shard);
    ("shard-quick", shard_quick);
    ("shard-guard", shard_guard);
    ("hiershard", hiershard);
    ("hiershard-quick", hiershard_quick);
    ("hiershard-guard", hiershard_guard);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map fst all_benches
  in
  List.iter
    (fun id ->
      match List.assoc_opt id (all_benches @ extra_benches) with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown bench %S; available: %s\n" id
          (String.concat " " (List.map fst (all_benches @ extra_benches)));
        exit 1)
    requested
