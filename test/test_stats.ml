(* Measurement instruments. *)

let feq = Alcotest.float 1e-9

module D = Stats.Delay_stats

let test_delay_summary () =
  let d = D.create () in
  List.iteri (fun i x -> D.record d ~time:(float_of_int i) ~delay:x) [ 1.0; 3.0; 2.0; 4.0 ];
  Alcotest.(check int) "count" 4 (D.count d);
  Alcotest.check feq "mean" 2.5 (D.mean d);
  Alcotest.check feq "max" 4.0 (D.max_delay d);
  Alcotest.check feq "min" 1.0 (D.min_delay d);
  Alcotest.check feq "p50" 2.0 (D.percentile d 50.0);
  Alcotest.check feq "p100" 4.0 (D.percentile d 100.0);
  Alcotest.check (Alcotest.float 1e-6) "stddev" (sqrt 1.25) (D.stddev d)

let test_delay_empty () =
  let d = D.create () in
  Alcotest.check feq "empty mean" 0.0 (D.mean d);
  Alcotest.check feq "empty max" 0.0 (D.max_delay d);
  Alcotest.(check bool) "percentile on empty raises" true
    (try
       ignore (D.percentile d 50.0);
       false
     with Invalid_argument _ -> true)

let test_delay_windows () =
  let d = D.create () in
  D.record d ~time:0.1 ~delay:1.0;
  D.record d ~time:0.4 ~delay:3.0;
  D.record d ~time:1.2 ~delay:2.0;
  let series = D.series_max_over_windows d ~window:1.0 in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "max per window"
    [ (0.0, 3.0); (1.0, 2.0) ]
    series

module B = Stats.Bandwidth_meter

let test_bandwidth_constant_rate () =
  let m = B.create ~window:0.1 ~alpha:1.0 () in
  (* 10 bits per 0.1s window = 100 bps, constant; offset the sample times
     off the bin edges so float rounding cannot move events across bins *)
  for k = 0 to 99 do
    B.add m ~time:((float_of_int k +. 0.5) *. 0.01) ~bits:1.0
  done;
  let series = B.series m ~until:1.0 in
  Alcotest.(check int) "10 windows" 10 (List.length series);
  List.iter (fun (_, r) -> Alcotest.check feq "flat 100 bps" 100.0 r) series

let test_bandwidth_ewma_decay () =
  let m = B.create ~window:0.1 ~alpha:0.5 () in
  B.add m ~time:0.05 ~bits:10.0; (* only the first window has traffic *)
  B.add m ~time:0.95 ~bits:0.001;
  let series = B.series m ~until:0.4 in
  match series with
  | (_, r1) :: (_, r2) :: (_, r3) :: _ ->
    Alcotest.check feq "first window half of inst" 50.0 r1;
    Alcotest.check feq "decays" 25.0 r2;
    Alcotest.check feq "decays again" 12.5 r3
  | _ -> Alcotest.fail "expected 3+ windows"

let test_bandwidth_average () =
  let m = B.create () in
  B.add m ~time:1.0 ~bits:50.0;
  B.add m ~time:2.0 ~bits:50.0;
  Alcotest.check feq "average over [0,4)" 25.0 (B.average_rate m ~from_:0.0 ~until:4.0)

module S = Stats.Service_curve

let test_service_curve_lag () =
  let c = S.create () in
  S.on_arrival c ~time:0.0 ~units:3.0;
  Alcotest.check feq "lag after arrivals" 3.0 (S.lag c);
  S.on_service c ~time:1.0 ~units:1.0;
  S.on_service c ~time:2.0 ~units:1.0;
  Alcotest.check feq "lag shrinks" 1.0 (S.lag c);
  Alcotest.check feq "max lag remembered" 3.0 (S.max_lag c);
  Alcotest.(check int) "lag series length" 3 (List.length (S.lag_series c));
  Alcotest.check feq "totals" 3.0 (S.arrived_total c);
  Alcotest.check feq "served" 2.0 (S.served_total c)

module H = Stats.Histogram

let test_histogram () =
  let h = H.create ~bin_width:1.0 in
  List.iter (H.add h) [ 0.1; 0.9; 1.5; 2.2; 2.8; 2.9 ];
  Alcotest.(check (list (pair (float 1e-9) Alcotest.int)))
    "bins" [ (0.0, 2); (1.0, 1); (2.0, 3) ] (H.bins h);
  Alcotest.(check (option (pair (float 1e-9) Alcotest.int))) "mode" (Some (2.0, 3))
    (H.mode_bin h);
  match H.cumulative h with
  | (_, f1) :: _ -> Alcotest.check feq "cdf first" (2.0 /. 6.0) f1
  | [] -> Alcotest.fail "empty cdf"

let test_csv_roundtrip () =
  let path = Filename.temp_file "hpfq" ".csv" in
  Stats.Csv.write ~path ~header:[ "a"; "b" ] ~rows:[ [ 1.0; 2.0 ]; [ 3.0; 4.5 ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "csv content" [ "a,b"; "1,2"; "3,4.5" ] lines

let () =
  Alcotest.run "stats"
    [
      ( "delay",
        [
          Alcotest.test_case "summary" `Quick test_delay_summary;
          Alcotest.test_case "empty" `Quick test_delay_empty;
          Alcotest.test_case "windows" `Quick test_delay_windows;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "constant rate" `Quick test_bandwidth_constant_rate;
          Alcotest.test_case "ewma decay" `Quick test_bandwidth_ewma_decay;
          Alcotest.test_case "average" `Quick test_bandwidth_average;
        ] );
      ("service_curve", [ Alcotest.test_case "lag" `Quick test_service_curve_lag ]);
      ("histogram", [ Alcotest.test_case "bins/cdf" `Quick test_histogram ]);
      ("csv", [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip ]);
    ]
