(* Smoke test for the perf harness: run it at quick settings, re-parse the
   emitted JSON and validate the schema the perf-regression tooling relies
   on ([bench/check_bench.sh] does the same from the shell). *)

module Json = Bench_kit.Json
module Perf = Bench_kit.Perf

let test_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      Perf.run ~quick:true ~out ();
      let report = Json.of_file out in
      (match Perf.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid report: %s" (String.concat "; " problems));
      (* spot-check the metrics are sane, not just present *)
      let get name j =
        match Json.member name j with
        | Some v -> v
        | None -> Alcotest.failf "missing field %S" name
      in
      let get_float name j =
        match Json.to_float (get name j) with
        | Some f -> f
        | None -> Alcotest.failf "field %S is not a number" name
      in
      let rows =
        match Json.to_list (get "one_level" report) with
        | Some rows -> rows
        | None -> Alcotest.fail "one_level is not an array"
      in
      Alcotest.(check bool) "has one-level rows" true (rows <> []);
      List.iter
        (fun row ->
          if get_float "pkts_per_sec" row <= 0.0 then
            Alcotest.fail "pkts_per_sec not positive";
          if get_float "ns_per_select" row <= 0.0 then
            Alcotest.fail "ns_per_select not positive")
        rows)

let test_json_roundtrip () =
  let t =
    Json.Obj
      [
        ("schema", Json.Str "x");
        ("xs", Json.Arr [ Json.Num 1.5; Json.Bool true; Json.Null ]);
        ("nan_becomes_null", Json.Num Float.nan);
      ]
  in
  let s = Json.to_string t in
  let t' = Json.of_string s in
  Alcotest.(check string) "schema survives"
    "x"
    (match Json.member "schema" t' with Some (Json.Str s) -> s | _ -> "?");
  Alcotest.(check bool) "nan serialized as null" true
    (Json.member "nan_becomes_null" t' = Some Json.Null)

let () =
  Alcotest.run "bench_smoke"
    [
      ( "perf",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "quick run emits valid report" `Quick
            test_quick_run_emits_valid_report;
        ] );
    ]
