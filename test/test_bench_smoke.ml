(* Smoke test for the perf harness: run it at quick settings, re-parse the
   emitted JSON and validate the schema the perf-regression tooling relies
   on ([bench/check_bench.sh] does the same from the shell). *)

module Json = Bench_kit.Json
module Perf = Bench_kit.Perf
module Events = Bench_kit.Events

let test_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      Perf.run ~quick:true ~out ();
      let report = Json.of_file out in
      (match Perf.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid report: %s" (String.concat "; " problems));
      (* spot-check the metrics are sane, not just present *)
      let get name j =
        match Json.member name j with
        | Some v -> v
        | None -> Alcotest.failf "missing field %S" name
      in
      let get_float name j =
        match Json.to_float (get name j) with
        | Some f -> f
        | None -> Alcotest.failf "field %S is not a number" name
      in
      let rows =
        match Json.to_list (get "one_level" report) with
        | Some rows -> rows
        | None -> Alcotest.fail "one_level is not an array"
      in
      Alcotest.(check bool) "has one-level rows" true (rows <> []);
      List.iter
        (fun row ->
          if get_float "pkts_per_sec" row <= 0.0 then
            Alcotest.fail "pkts_per_sec not positive";
          if get_float "ns_per_select" row <= 0.0 then
            Alcotest.fail "ns_per_select not positive")
        rows)

let test_json_roundtrip () =
  let t =
    Json.Obj
      [
        ("schema", Json.Str "x");
        ("xs", Json.Arr [ Json.Num 1.5; Json.Bool true; Json.Null ]);
        ("nan_becomes_null", Json.Num Float.nan);
      ]
  in
  let s = Json.to_string t in
  let t' = Json.of_string s in
  Alcotest.(check string) "schema survives"
    "x"
    (match Json.member "schema" t' with Some (Json.Str s) -> s | _ -> "?");
  Alcotest.(check bool) "nan serialized as null" true
    (Json.member "nan_becomes_null" t' = Some Json.Null)

(* -- event-set churn suite ------------------------------------------------ *)

let test_events_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_events_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = Events.run ~quick:true ~out () in
      (* quick grid: 4 distributions x 1 size x 2 backends *)
      Alcotest.(check int) "row count" 8 (List.length rows);
      List.iter
        (fun r ->
          if r.Events.events_per_sec <= 0.0 then
            Alcotest.fail "events_per_sec not positive";
          if r.Events.fired <= 0 then Alcotest.fail "nothing fired")
        rows;
      let report = Json.of_file out in
      match Events.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid events report: %s" (String.concat "; " problems))

let fake_events_report eps =
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-events-v1");
      ( "headline",
        Json.Obj
          [
            ("workload", Json.Str "cancel_heavy_n65536");
            ("calendar_events_per_sec", Json.Num eps);
          ] );
    ]

let test_events_guard_verdicts () =
  let with_baseline eps f =
    let path = Filename.temp_file "bench_events_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Json.to_file path (fake_events_report eps);
        f path)
  in
  let run_guard path =
    Events.guard ~baseline:path ~tol:0.05 ~min_speedup:0.0 ~n:256 ~events:4_000 ()
  in
  with_baseline 1.0 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "beats trivial baseline" true g.Events.within
      | Error e -> Alcotest.failf "events guard errored: %s" e);
  with_baseline 1e15 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "loses to absurd baseline" false g.Events.within
      | Error e -> Alcotest.failf "events guard errored: %s" e);
  match Events.guard ~baseline:"/nonexistent/BENCH_events.json" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* -- hierarchy engine A/B suite ------------------------------------------- *)

module Hbench = Experiments.Hier_bench

let test_hier_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_hier_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = Hbench.run ~quick:true ~out () in
      (* quick grid: 2 topologies x 2 engines *)
      Alcotest.(check int) "row count" 4 (List.length rows);
      List.iter
        (fun r ->
          if r.Hbench.pkts_per_sec <= 0.0 then
            Alcotest.fail "pkts_per_sec not positive")
        rows;
      List.iter
        (fun engine ->
          Alcotest.(check bool)
            (Printf.sprintf "fig3 has a %s row" (Hbench.engine_name engine))
            true
            (List.exists
               (fun r -> r.Hbench.topology = "fig3" && r.Hbench.engine = engine)
               rows))
        [ Hbench.Generic; Hbench.Flat ];
      let report = Json.of_file out in
      match Hbench.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid hier report: %s" (String.concat "; " problems))

let fake_hier_report pps =
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-hier-v1");
      ( "headline",
        Json.Obj
          [
            ("workload", Json.Str "fig3_saturated");
            ("flat_pkts_per_sec", Json.Num pps);
          ] );
    ]

let test_hier_guard_verdicts () =
  let with_baseline pps f =
    let path = Filename.temp_file "bench_hier_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Json.to_file path (fake_hier_report pps);
        f path)
  in
  let run_guard path =
    Hbench.guard ~baseline:path ~tol:0.05 ~min_speedup:0.0 ~target_pkts:500 ()
  in
  with_baseline 1.0 (fun path ->
      match run_guard path with
      | Ok g -> Alcotest.(check bool) "beats trivial baseline" true g.Hbench.within
      | Error e -> Alcotest.failf "hier guard errored: %s" e);
  with_baseline 1e15 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "loses to absurd baseline" false g.Hbench.within
      | Error e -> Alcotest.failf "hier guard errored: %s" e);
  match Hbench.guard ~baseline:"/nonexistent/BENCH_hier.json" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* -- trace-replay suite ---------------------------------------------------- *)

module Rbench = Experiments.Replay_bench

let test_replay_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_replay_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = Rbench.run ~quick:true ~out () in
      (* ladder: 1, 2, 8, 64, unbounded *)
      Alcotest.(check int) "row count" 5 (List.length rows);
      List.iter
        (fun r ->
          if r.Rbench.pkts_per_sec <= 0.0 then
            Alcotest.fail "pkts_per_sec not positive";
          if r.Rbench.departures <> r.Rbench.arrivals then
            Alcotest.fail "trace did not fully drain")
        rows;
      (* run () itself fails on divergence; assert the invariant where a
         reader looks first: one distinct hash across the whole ladder *)
      Alcotest.(check int) "one distinct departure hash" 1
        (List.length
           (List.sort_uniq compare (List.map (fun r -> r.Rbench.depart_hash) rows)));
      let report = Json.of_file out in
      match Rbench.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid replay report: %s" (String.concat "; " problems))

let test_replay_guard_verdicts () =
  let with_file f =
    let path = Filename.temp_file "bench_replay_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () -> f path)
  in
  (* a real quick run as its own baseline: the hashes match by
     construction, so the guard must pass outright *)
  with_file (fun path ->
      ignore (Rbench.run ~quick:true ~out:path ());
      (match Rbench.guard ~baseline:path ~tol:0.99 ~min_speedup:0.0 ~quick:true () with
      | Ok g ->
        Alcotest.(check bool) "hash matches its own run" true g.Rbench.hash_ok;
        Alcotest.(check bool) "passes against its own run" true g.Rbench.within
      | Error e -> Alcotest.failf "replay guard errored: %s" e);
      (* doctor the committed hash: the gate must fire with no tolerance *)
      let doctored =
        Json.Obj
          [
            ("schema", Json.Str "hpfq-bench-replay-v1");
            ( "headline",
              Json.Obj
                [
                  ("batched_pkts_per_sec", Json.Num 1.0);
                  ("depart_hash", Json.Str "ffffffffffffffff");
                ] );
          ]
      in
      Json.to_file path doctored;
      match Rbench.guard ~baseline:path ~tol:0.99 ~min_speedup:0.0 ~quick:true () with
      | Ok g ->
        Alcotest.(check bool) "doctored hash detected" false g.Rbench.hash_ok;
        Alcotest.(check bool) "doctored hash fails the gate" false g.Rbench.within
      | Error e -> Alcotest.failf "replay guard errored: %s" e);
  match Rbench.guard ~baseline:"/nonexistent/BENCH_replay.json" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* -- session-lifecycle churn suite ---------------------------------------- *)

module Cbench = Experiments.Churn_bench

let test_churn_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_churn_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = Cbench.run ~quick:true ~out () in
      (* quick grid: 1 session count x 2 engines *)
      Alcotest.(check int) "row count" 2 (List.length rows);
      List.iter
        (fun r ->
          if r.Cbench.churn_events_per_sec <= 0.0 then
            Alcotest.fail "churn_events_per_sec not positive";
          if r.Cbench.ramp_opens_per_sec <= 0.0 then
            Alcotest.fail "ramp_opens_per_sec not positive";
          (* the loop repays every close with a reopen *)
          Alcotest.(check int) "live sessions conserved" r.Cbench.sessions
            r.Cbench.live_after)
        rows;
      let report = Json.of_file out in
      match Cbench.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid churn report: %s" (String.concat "; " problems))

let fake_churn_report eps =
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-churn-v1");
      ( "headline",
        Json.Obj
          [
            ("workload", Json.Str "idle-open/backlog/close-drop/reopen churn");
            ("churn_events_per_sec", Json.Num eps);
          ] );
    ]

let test_churn_guard_verdicts () =
  let with_baseline eps f =
    let path = Filename.temp_file "bench_churn_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Json.to_file path (fake_churn_report eps);
        f path)
  in
  let run_guard ?(floor = 0.0) path =
    Cbench.guard ~baseline:path ~tol:0.05 ~floor ~sessions:1_000 ~iters:5_000 ()
  in
  with_baseline 1.0 (fun path ->
      match run_guard path with
      | Ok g -> Alcotest.(check bool) "beats trivial baseline" true g.Cbench.within
      | Error e -> Alcotest.failf "churn guard errored: %s" e);
  with_baseline 1e15 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "loses to absurd baseline" false g.Cbench.within
      | Error e -> Alcotest.failf "churn guard errored: %s" e);
  with_baseline 1.0 (fun path ->
      match run_guard ~floor:1e15 path with
      | Ok g ->
        Alcotest.(check bool) "absolute floor gates independently" false
          g.Cbench.within
      | Error e -> Alcotest.failf "churn guard errored: %s" e);
  match Cbench.guard ~baseline:"/nonexistent/BENCH_churn.json" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* -- multicore scaling suite ---------------------------------------------- *)

module Pbench = Experiments.Parallel_bench

let test_parallel_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_parallel_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = Pbench.run ~quick:true ~out () in
      Alcotest.(check (list int))
        "one row per ladder rung" Pbench.jobs_ladder
        (List.map (fun r -> r.Pbench.jobs) rows);
      (match List.find_opt (fun r -> r.Pbench.jobs = 1) rows with
      | Some r ->
        Alcotest.(check (float 1e-9)) "-j1 speedup is 1 by definition" 1.0 r.Pbench.speedup
      | None -> Alcotest.fail "no -j1 rung");
      List.iter
        (fun r ->
          if r.Pbench.wall_s <= 0.0 then Alcotest.fail "wall clock not positive")
        rows;
      let report = Json.of_file out in
      match Pbench.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid parallel report: %s" (String.concat "; " problems))

let fake_parallel_report () =
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-parallel-v1");
      ("cores", Json.Num 8.0);
      ( "rows",
        Json.Arr
          [
            Json.Obj
              [
                ("jobs", Json.Num 1.0);
                ("wall_s", Json.Num 1.0);
                ("speedup", Json.Num 1.0);
                ("expected_floor", Json.Num 1.0);
              ];
          ] );
    ]

let test_parallel_guard_verdicts () =
  let with_baseline json f =
    let path = Filename.temp_file "bench_parallel_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Json.to_file path json;
        f path)
  in
  with_baseline (fake_parallel_report ()) (fun path ->
      match Pbench.guard ~baseline:path ~tol:0.5 ~quick:true () with
      | Ok g ->
        Alcotest.(check int)
          "one verdict per rung"
          (List.length Pbench.jobs_ladder)
          (List.length g.Pbench.g_rows);
        (* rungs beyond the host's cores are context, not gates *)
        List.iter
          (fun r ->
            if r.Pbench.g_jobs > g.Pbench.g_cores then
              Alcotest.(check bool)
                "oversubscribed rung not enforced" false r.Pbench.g_enforced)
          g.Pbench.g_rows;
        Alcotest.(check bool)
          "healthy pool clears the cores-aware floor" true g.Pbench.g_within
      | Error e -> Alcotest.failf "parallel guard errored: %s" e);
  with_baseline (Json.Obj [ ("schema", Json.Str "hpfq-bench-parallel-v1") ])
    (fun path ->
      match Pbench.guard ~baseline:path ~quick:true () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "schema-invalid baseline should be an error");
  match Pbench.guard ~baseline:"/nonexistent/BENCH_parallel.json" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* -- sharded device suite ------------------------------------------------- *)

module Sbench = Experiments.Shard_bench

let test_shard_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_shard_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = Sbench.run ~quick:true ~out () in
      Alcotest.(check int)
        "one row per (links, jobs) cell"
        (List.length (Sbench.links_grid ~quick:true) * List.length (Sbench.jobs_ladder ()))
        (List.length rows);
      (match List.find_opt (fun r -> r.Sbench.jobs = 1) rows with
      | Some r ->
        Alcotest.(check (float 1e-9)) "-j1 speedup is 1 by definition" 1.0 r.Sbench.speedup
      | None -> Alcotest.fail "no -j1 rung");
      List.iter
        (fun r ->
          if r.Sbench.pkts_per_sec <= 0.0 then
            Alcotest.fail "pkts_per_sec not positive";
          if r.Sbench.pkts <= 0 then Alcotest.fail "no packets departed")
        rows;
      (* the suite itself enforces this, but assert it where a reader
         looks first: every rung of one grid point shares one hash *)
      List.iter
        (fun links ->
          let hashes =
            List.filter_map
              (fun r -> if r.Sbench.links = links then Some r.Sbench.device_hash else None)
              rows
          in
          Alcotest.(check int)
            (Printf.sprintf "links=%d: one distinct hash" links)
            1
            (List.length (List.sort_uniq Int64.compare hashes)))
        (Sbench.links_grid ~quick:true);
      let report = Json.of_file out in
      match Sbench.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid shard report: %s" (String.concat "; " problems))

let fake_shard_report () =
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-shard-v1");
      ("cores", Json.Num 8.0);
      ( "rows",
        Json.Arr
          [
            Json.Obj
              [
                ("links", Json.Num 16.0);
                ("jobs", Json.Num 1.0);
                ("pkts_per_sec", Json.Num 1.0);
                ("speedup", Json.Num 1.0);
                ("expected_floor", Json.Num 1.0);
                ("device_hash", Json.Str "0000000000000000");
              ];
          ] );
    ]

let test_shard_guard_verdicts () =
  let with_baseline json f =
    let path = Filename.temp_file "bench_shard_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Json.to_file path json;
        f path)
  in
  with_baseline (fake_shard_report ()) (fun path ->
      match Sbench.guard ~baseline:path ~tol:0.5 ~quick:true () with
      | Ok g ->
        Alcotest.(check int)
          "one verdict per (links, jobs) cell"
          (List.length (Sbench.links_grid ~quick:true) * List.length (Sbench.jobs_ladder ()))
          (List.length g.Sbench.g_rows);
        List.iter
          (fun r ->
            if r.Sbench.g_jobs > g.Sbench.g_cores then
              Alcotest.(check bool)
                "oversubscribed rung not enforced" false r.Sbench.g_enforced)
          g.Sbench.g_rows;
        Alcotest.(check bool)
          "healthy device clears the cores-aware floor" true g.Sbench.g_within
      | Error e -> Alcotest.failf "shard guard errored: %s" e);
  with_baseline (Json.Obj [ ("schema", Json.Str "hpfq-bench-shard-v1") ])
    (fun path ->
      match Sbench.guard ~baseline:path ~quick:true () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "schema-invalid baseline should be an error");
  match Sbench.guard ~baseline:"/nonexistent/BENCH_shard.json" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* -- subtree-sharded hierarchy suite -------------------------------------- *)

module Hsb = Experiments.Hiershard_bench

let test_hiershard_quick_run_emits_valid_report () =
  let out = Filename.temp_file "bench_hiershard_smoke" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rows = Hsb.run ~quick:true ~out () in
      Alcotest.(check int)
        "one row per (shards, epoch) cell"
        (List.length (Hsb.shards_ladder ()) * List.length (Hsb.epoch_ladder ()))
        (List.length rows);
      List.iter
        (fun r ->
          if r.Hsb.pkts_per_sec <= 0.0 then
            Alcotest.fail "pkts_per_sec not positive";
          if r.Hsb.pkts <= 0 then Alcotest.fail "no packets departed";
          Alcotest.(check bool)
            "exact flag marks exactly the epoch=1 rows"
            (r.Hsb.epoch = 1)
            r.Hsb.exact)
        rows;
      (* the suite itself enforces exactness vs the flat reference; assert
         the visible consequences: one hash across all epoch=1 cells, and
         each epoch's hash independent of the shard count *)
      List.iter
        (fun epoch ->
          let hashes =
            List.filter_map
              (fun r ->
                if r.Hsb.epoch = epoch then Some r.Hsb.depart_hash else None)
              rows
          in
          Alcotest.(check int)
            (Printf.sprintf "epoch=%d: one distinct hash across shard counts" epoch)
            1
            (List.length (List.sort_uniq Int64.compare hashes)))
        (Hsb.epoch_ladder ());
      let report = Json.of_file out in
      match Hsb.validate report with
      | Ok () -> ()
      | Error problems ->
        Alcotest.failf "invalid hiershard report: %s" (String.concat "; " problems))

let fake_hiershard_report () =
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-hiershard-v1");
      ("cores", Json.Num 8.0);
      ("flat_pkts_per_sec", Json.Num 1.0);
      ("flat_depart_hash", Json.Str "0000000000000000");
      ( "rows",
        Json.Arr
          [
            Json.Obj
              [
                ("shards", Json.Num 16.0);
                ("epoch", Json.Num 1.0);
                ("workers", Json.Num 0.0);
                ("pkts_per_sec", Json.Num 1.0);
                ("ratio_vs_flat", Json.Num 1.0);
                ("depart_hash", Json.Str "0000000000000000");
              ];
          ] );
    ]

let test_hiershard_guard_verdicts () =
  let with_baseline json f =
    let path = Filename.temp_file "bench_hiershard_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Json.to_file path json;
        f path)
  in
  with_baseline (fake_hiershard_report ()) (fun path ->
      match Hsb.guard ~baseline:path ~tol:0.5 ~quick:true () with
      | Ok g ->
        Alcotest.(check int)
          "one verdict per (shards, epoch) cell"
          (List.length (Hsb.shards_ladder ()) * List.length (Hsb.epoch_ladder ()))
          (List.length g.Hsb.g_rows);
        List.iter
          (fun r ->
            if r.Hsb.g_workers + 1 > g.Hsb.g_cores then
              Alcotest.(check bool)
                "oversubscribed cell not enforced" false r.Hsb.g_enforced)
          g.Hsb.g_rows;
        Alcotest.(check bool)
          "healthy sharding clears the cores-aware floor" true g.Hsb.g_within
      | Error e -> Alcotest.failf "hiershard guard errored: %s" e);
  with_baseline (Json.Obj [ ("schema", Json.Str "hpfq-bench-hiershard-v1") ])
    (fun path ->
      match Hsb.guard ~baseline:path ~quick:true () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "schema-invalid baseline should be an error");
  match Hsb.guard ~baseline:"/nonexistent/BENCH_hiershard.json" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* -- perf-regression guard ------------------------------------------------ *)

let fake_report ?words pps =
  let words_field =
    match words with
    | Some w -> [ ("minor_words_per_pkt", Json.Num w) ]
    | None -> []
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-hotpath-v1");
      ( "headline",
        Json.Obj
          ([
             ("workload", Json.Str "one_level_wf2q_plus_n4096");
             ("pkts_per_sec", Json.Num pps);
           ]
          @ words_field) );
    ]

let test_headline_of_report () =
  (match Perf.headline_of_report (fake_report 123.0) with
  | Ok pps -> Alcotest.(check (float 1e-9)) "extracted" 123.0 pps
  | Error e -> Alcotest.failf "unexpected error: %s" e);
  (match Perf.headline_of_report (Json.Obj [ ("schema", Json.Str "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing headline should be an error");
  (match Perf.headline_of_report (fake_report (-1.0)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-positive headline should be an error");
  (match Perf.headline_words_of_report (fake_report ~words:12.5 1.0) with
  | Some w -> Alcotest.(check (float 1e-9)) "words extracted" 12.5 w
  | None -> Alcotest.fail "words key should be extracted");
  match Perf.headline_words_of_report (fake_report 1.0) with
  | None -> ()
  | Some _ -> Alcotest.fail "absent words key should be None"

(* The guard itself, at smoke scale: any real measurement beats a 1 pkt/sec
   baseline and loses to an absurd one; a missing baseline is a setup error,
   not a perf verdict. *)
let test_guard_verdicts () =
  let with_baseline ?words pps f =
    let path = Filename.temp_file "bench_guard" ".json" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Json.to_file path (fake_report ?words pps);
        f path)
  in
  let run_guard path =
    Perf.guard ~baseline:path ~tol:0.05 ~words_tol:0.1 ~n:64 ~iters:2_000
      ~runs:1 ()
  in
  with_baseline 1.0 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "beats trivial baseline" true g.Perf.within;
        Alcotest.(check bool)
          "no words key: ceiling vacuous" true g.Perf.words_within
      | Error e -> Alcotest.failf "guard errored: %s" e);
  with_baseline 1e15 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "loses to absurd baseline" false g.Perf.within
      | Error e -> Alcotest.failf "guard errored: %s" e);
  (* allocation tier: a generous committed ceiling passes, a sub-word one
     (no real cycle allocates under 1e-6 words/pkt more than 10% of that)
     must flip the overall verdict even though the pps gate passes *)
  with_baseline ~words:1e9 1.0 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "generous ceiling passes" true g.Perf.words_within;
        Alcotest.(check bool) "overall verdict passes" true g.Perf.within
      | Error e -> Alcotest.failf "guard errored: %s" e);
  with_baseline ~words:1e-6 1.0 (fun path ->
      match run_guard path with
      | Ok g ->
        Alcotest.(check bool) "tight ceiling trips" false g.Perf.words_within;
        Alcotest.(check bool)
          "words breach fails the guard" false g.Perf.within
      | Error e -> Alcotest.failf "guard errored: %s" e);
  match Perf.guard ~baseline:"/nonexistent/BENCH.json" ~tol:0.05 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing baseline should be an error"

(* Tracing-disabled overhead, the deterministic half: installing and then
   removing an observer must leave the cycle's allocation behaviour exactly
   as if one had never been installed (Sched_intf contract: set_observer
   must not wrap the operation closures). Wall-clock comparisons live in
   `bench/main.exe -- trace-overhead` / `perf-guard`, where the environment
   is controlled; an alcotest run only checks the allocation-free claim. *)
let test_tracing_disabled_allocates_nothing () =
  let factory = Hpfq.Disciplines.wf2q_plus in
  let iters = 10_000 in
  let measure setup =
    let policy, cycle = Perf.loaded_policy_with factory 64 in
    setup policy;
    let _, minor = Perf.time_loop cycle ~iters in
    minor
  in
  let never = measure (fun _ -> ()) in
  let disabled =
    measure (fun p ->
        p.Sched.Sched_intf.set_observer (Some Sched.Sched_intf.null_observer);
        p.Sched.Sched_intf.set_observer None)
  in
  Alcotest.(check (float 0.0))
    "removed observer allocates exactly like never-installed" never disabled

let () =
  Alcotest.run "bench_smoke"
    [
      ( "perf",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "quick run emits valid report" `Quick
            test_quick_run_emits_valid_report;
        ] );
      ( "events",
        [
          Alcotest.test_case "quick run emits valid report" `Quick
            test_events_quick_run_emits_valid_report;
          Alcotest.test_case "guard verdicts" `Quick test_events_guard_verdicts;
        ] );
      ( "hier",
        [
          Alcotest.test_case "quick run emits valid report" `Quick
            test_hier_quick_run_emits_valid_report;
          Alcotest.test_case "guard verdicts" `Quick test_hier_guard_verdicts;
        ] );
      ( "replay",
        [
          Alcotest.test_case "quick run emits valid report" `Quick
            test_replay_quick_run_emits_valid_report;
          Alcotest.test_case "guard verdicts" `Quick test_replay_guard_verdicts;
        ] );
      ( "churn",
        [
          Alcotest.test_case "quick run emits valid report" `Quick
            test_churn_quick_run_emits_valid_report;
          Alcotest.test_case "guard verdicts" `Quick test_churn_guard_verdicts;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "quick run emits valid report" `Quick
            test_parallel_quick_run_emits_valid_report;
          Alcotest.test_case "guard verdicts" `Quick test_parallel_guard_verdicts;
        ] );
      ( "shard",
        [
          Alcotest.test_case "quick run emits valid report" `Quick
            test_shard_quick_run_emits_valid_report;
          Alcotest.test_case "guard verdicts" `Quick test_shard_guard_verdicts;
        ] );
      ( "hiershard",
        [
          Alcotest.test_case "quick run emits valid report" `Quick
            test_hiershard_quick_run_emits_valid_report;
          Alcotest.test_case "guard verdicts" `Quick test_hiershard_guard_verdicts;
        ] );
      ( "guard",
        [
          Alcotest.test_case "headline extraction" `Quick test_headline_of_report;
          Alcotest.test_case "guard verdicts" `Quick test_guard_verdicts;
          Alcotest.test_case "tracing disabled allocates nothing" `Quick
            test_tracing_disabled_allocates_nothing;
        ] );
    ]
