(* Multi-hop pipelines of H-PFQ servers: forwarding, ordering, end-to-end
   delay bounds. *)

module Sim = Engine.Simulator
module P = Netgraph.Pipeline
module CT = Hpfq.Class_tree

let hop_spec name =
  CT.node name ~rate:1.0
    [ CT.leaf (name ^ "/guaranteed") ~rate:0.4; CT.leaf (name ^ "/cross") ~rate:0.6 ]

let three_hops = [ ("h0", hop_spec "h0"); ("h1", hop_spec "h1"); ("h2", hop_spec "h2") ]

let make_pipeline ?(on_deliver = fun ~flow:_ _ ~injected:_ ~delivered:_ -> ()) sim =
  let p =
    P.create ~sim ~hops:three_hops
      ~make_policy:(Hpfq.Hier.uniform Hpfq.Disciplines.wf2q_plus)
      ~propagation_delay:0.01 ~on_deliver ()
  in
  P.add_flow p ~name:"f"
    ~route:[ "h0/guaranteed"; "h1/guaranteed"; "h2/guaranteed" ];
  p

let test_delivery_and_order () =
  let sim = Sim.create () in
  let deliveries = ref [] in
  let p =
    make_pipeline sim ~on_deliver:(fun ~flow:_ pkt ~injected ~delivered ->
        deliveries := (pkt.Net.Packet.size_bits, injected, delivered) :: !deliveries)
  in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         List.iter (fun size -> P.inject p ~flow:"f" ~size_bits:size) [ 1.0; 2.0; 3.0 ]));
  Sim.run sim;
  let deliveries = List.rev !deliveries in
  Alcotest.(check int) "all delivered" 3 (List.length deliveries);
  Alcotest.(check int) "counter" 3 (P.delivered p ~flow:"f");
  Alcotest.(check int) "none in flight" 0 (P.in_flight p ~flow:"f");
  (* FIFO end-to-end: sizes come out in injection order *)
  Alcotest.(check (list (float 1e-9))) "order preserved" [ 1.0; 2.0; 3.0 ]
    (List.map (fun (s, _, _) -> s) deliveries);
  (* minimum latency: 3 transmissions + 2 propagation hops *)
  (match deliveries with
  | (size, injected, delivered) :: _ ->
    Alcotest.(check bool) "latency >= store-and-forward floor" true
      (delivered -. injected >= (3.0 *. size) +. 0.02 -. 1e-9)
  | [] -> ());
  (* per-hop servers accounted the flow's bits *)
  Alcotest.(check (float 1e-6)) "hop served bits" 6.0
    (Hpfq.Hier.departed_bits (P.hop_server p "h1") ~node:"h1/guaranteed")

let test_e2e_bound_under_cross_traffic () =
  let sim = Sim.create () in
  let worst = ref 0.0 in
  let p =
    make_pipeline sim ~on_deliver:(fun ~flow:_ _ ~injected ~delivered ->
        worst := Float.max !worst (delivered -. injected))
  in
  (* conformant flow: sigma = 3 packets, rho = guaranteed 0.4 *)
  let sigma = 3.0 in
  ignore
    (Traffic.Source.leaky_bucket_greedy ~sim
       ~emit:(fun ~size_bits -> P.inject p ~flow:"f" ~size_bits)
       ~sigma_bits:sigma ~rho:0.4 ~packet_bits:1.0 ~stop_at:60.0 ());
  (* every hop's cross-traffic leaf saturated *)
  List.iter
    (fun hop ->
      let server = P.hop_server p hop in
      let leaf = Hpfq.Hier.leaf_id server (hop ^ "/cross") in
      ignore
        (Traffic.Source.greedy ~sim
           ~emit:(fun ~size_bits -> ignore (Hpfq.Hier.inject server ~leaf ~size_bits))
           ~packet_bits:1.0 ~backlog_packets:40 ~top_up_every:20.0 ~stop_at:60.0 ()))
    [ "h0"; "h1"; "h2" ];
  Sim.run ~until:90.0 sim;
  match P.end_to_end_bound p ~flow:"f" ~sigma ~l_max:1.0 with
  | Error e -> Alcotest.fail e
  | Ok bound ->
    Alcotest.(check bool)
      (Printf.sprintf "measured %.3f <= bound %.3f" !worst bound)
      true
      (!worst > 0.0 && !worst <= bound +. 1e-9)

let test_flow_validation () =
  let sim = Sim.create () in
  let p = make_pipeline sim in
  Alcotest.(check bool) "wrong route length rejected" true
    (try
       P.add_flow p ~name:"g" ~route:[ "h0/cross" ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "leaf reuse rejected" true
    (try
       P.add_flow p ~name:"g"
         ~route:[ "h0/guaranteed"; "h1/cross"; "h2/cross" ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown flow rejected" true
    (try
       P.inject p ~flow:"nope" ~size_bits:1.0;
       false
     with Invalid_argument _ -> true)

let test_cross_traffic_stays_local () =
  (* packets injected directly into a hop's cross leaf must not be
     forwarded downstream *)
  let sim = Sim.create () in
  let delivered_to_sink = ref 0 in
  let p =
    make_pipeline sim ~on_deliver:(fun ~flow:_ _ ~injected:_ ~delivered:_ ->
        incr delivered_to_sink)
  in
  let h1 = P.hop_server p "h1" in
  let cross = Hpfq.Hier.leaf_id h1 "h1/cross" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         ignore (Hpfq.Hier.inject h1 ~leaf:cross ~size_bits:1.0)));
  Sim.run sim;
  Alcotest.(check int) "local traffic not delivered to the flow sink" 0
    !delivered_to_sink;
  Alcotest.(check (float 1e-9)) "but transmitted locally" 1.0
    (Hpfq.Hier.departed_bits h1 ~node:"h1/cross")

let () =
  Alcotest.run "netgraph"
    [
      ( "pipeline",
        [
          Alcotest.test_case "delivery and order" `Quick test_delivery_and_order;
          Alcotest.test_case "e2e bound under cross traffic" `Quick
            test_e2e_bound_under_cross_traffic;
          Alcotest.test_case "flow validation" `Quick test_flow_validation;
          Alcotest.test_case "cross traffic stays local" `Quick
            test_cross_traffic_stays_local;
        ] );
    ]
