(* Fluid GPS / H-GPS reference systems against hand-computed scenarios. *)

module Gps = Fluid.Gps
module Hgps = Fluid.Hgps
module CT = Hpfq.Class_tree

let feq = Alcotest.float 1e-6

(* Fig. 2's fluid timeline: finish times 2k for p1^k (k<=10), 21 for p1^11,
   20 for each other session's packet. *)
let test_fig2_gps_finish_times () =
  let finishes = Hashtbl.create 32 in
  let g =
    Gps.create ~rate:1.0
      ~session_rates:(0.5 :: List.init 10 (fun _ -> 0.05))
      ~on_packet_finish:(fun pkt t ->
        Hashtbl.replace finishes (pkt.Net.Packet.flow, pkt.Net.Packet.seq) t)
      ()
  in
  for _ = 1 to 11 do
    ignore (Gps.arrive g ~at:0.0 ~session:0 ~size_bits:1.0)
  done;
  for s = 1 to 10 do
    ignore (Gps.arrive g ~at:0.0 ~session:s ~size_bits:1.0)
  done;
  Gps.advance g ~to_:25.0;
  for k = 1 to 10 do
    Alcotest.check feq
      (Printf.sprintf "p1^%d finishes at %d" k (2 * k))
      (2.0 *. float_of_int k)
      (Hashtbl.find finishes (0, k))
  done;
  Alcotest.check feq "p1^11 finishes at 21" 21.0 (Hashtbl.find finishes (0, 11));
  for s = 1 to 10 do
    Alcotest.check feq
      (Printf.sprintf "p%d^1 finishes at 20" (s + 1))
      20.0
      (Hashtbl.find finishes (s, 1))
  done

(* Eq. 3: a backlogged session receives at least its guaranteed rate. *)
let test_gps_guaranteed_rate () =
  let g = Gps.create ~rate:1.0 ~session_rates:[ 0.3; 0.7 ] () in
  ignore (Gps.arrive g ~at:0.0 ~session:0 ~size_bits:100.0);
  ignore (Gps.arrive g ~at:0.0 ~session:1 ~size_bits:100.0);
  Gps.advance g ~to_:10.0;
  Alcotest.check feq "session 0 gets 3" 3.0 (Gps.served_bits g ~session:0);
  Alcotest.check feq "session 1 gets 7" 7.0 (Gps.served_bits g ~session:1)

(* Excess redistribution: an idle session's share flows to the backlogged
   ones in proportion. *)
let test_gps_excess_redistribution () =
  let g = Gps.create ~rate:1.0 ~session_rates:[ 0.5; 0.25; 0.25 ] () in
  ignore (Gps.arrive g ~at:0.0 ~session:1 ~size_bits:100.0);
  ignore (Gps.arrive g ~at:0.0 ~session:2 ~size_bits:100.0);
  Gps.advance g ~to_:10.0;
  Alcotest.check feq "equal split of whole link" 5.0 (Gps.served_bits g ~session:1);
  Alcotest.check feq "equal split of whole link (2)" 5.0 (Gps.served_bits g ~session:2)

(* The §2.2 H-GPS example, including the future-arrival effect that breaks
   Property 1: A2's rate collapses from 0.8 to 0.05 when A1 wakes up. *)
let hgps_spec =
  CT.node "link" ~rate:1.0
    [
      CT.node "A" ~rate:0.8 [ CT.leaf "A1" ~rate:0.75; CT.leaf "A2" ~rate:0.05 ];
      CT.leaf "B" ~rate:0.2;
    ]

let test_hgps_section22 () =
  let h = Hgps.create ~spec:hgps_spec () in
  let a1 = Hgps.leaf_id h "A1" and a2 = Hgps.leaf_id h "A2" and b = Hgps.leaf_id h "B" in
  Hgps.set_persistent h ~at:0.0 ~leaf:a2 true;
  Hgps.set_persistent h ~at:0.0 ~leaf:b true;
  Hgps.advance h ~to_:1.0;
  (* A1 idle: A2 takes all of A's 80% *)
  Alcotest.check feq "A2 rate 0.8 before A1 wakes" 0.8 (Hgps.served_bits h ~node:"A2");
  Alcotest.check feq "B rate 0.2" 0.2 (Hgps.served_bits h ~node:"B");
  Hgps.set_persistent h ~at:1.0 ~leaf:a1 true;
  Hgps.advance h ~to_:2.0;
  Alcotest.check feq "A1 gets 0.75 after waking" 0.75
    (Hgps.served_bits h ~node:"A1");
  Alcotest.check feq "A2 collapses to 0.05" (0.8 +. 0.05)
    (Hgps.served_bits h ~node:"A2");
  Alcotest.check feq "B unaffected" 0.4 (Hgps.served_bits h ~node:"B");
  Alcotest.check feq "interior node W" (0.75 +. 0.85) (Hgps.served_bits h ~node:"A")

(* The paper's §2.2 numeric example of packet finish times: A2 packets
   finish at 1.25, 2.5, ... until A1's arrival at t=1 changes their pace. *)
let test_hgps_property1_violation () =
  let finishes = ref [] in
  let h =
    Hgps.create ~spec:hgps_spec
      ~on_packet_finish:(fun pkt t -> finishes := (pkt.Net.Packet.flow, pkt.Net.Packet.seq, t) :: !finishes)
      ()
  in
  let a1 = Hgps.leaf_id h "A1" and a2 = Hgps.leaf_id h "A2" and b = Hgps.leaf_id h "B" in
  (* A2 and B heavily backlogged with unit packets from t=0 *)
  for _ = 1 to 30 do
    ignore (Hgps.arrive h ~at:0.0 ~leaf:a2 ~size_bits:1.0)
  done;
  for _ = 1 to 10 do
    ignore (Hgps.arrive h ~at:0.0 ~leaf:b ~size_bits:1.0)
  done;
  Hgps.advance h ~to_:1.0;
  (* before A1 arrives: A2 at 80% -> first packet finish 1.25 (not yet) *)
  (* A1's packets arrive at t=1 *)
  for _ = 1 to 50 do
    ignore (Hgps.arrive h ~at:1.0 ~leaf:a1 ~size_bits:1.0)
  done;
  Hgps.advance h ~to_:30.0;
  let finish flow seq =
    let _, _, t = List.find (fun (f, s, _) -> f = flow && s = seq) !finishes in
    t
  in
  (* B's pacing is untouched by A1's arrival: p_B^k finishes at 5k *)
  Alcotest.check feq "B p1 at 5" 5.0 (finish b 1);
  Alcotest.check feq "B p2 at 10" 10.0 (finish b 2);
  (* A2 packet 1 was served 80% of the way by t=1 (0.8 bits), then crawls at
     0.05: finishes at 1 + 0.2/0.05 = 5 *)
  Alcotest.check feq "A2 p1 slowed by A1's arrival" 5.0 (finish a2 1);
  (* before the A1 arrival it was on pace to finish at 1.25 — the relative
     order with B's packets changed due to a FUTURE arrival *)
  Alcotest.(check bool) "A2 p2 far behind" true (finish a2 2 > 20.0)

(* Conservation: fluid served by root = sum over leaves; also equals
   elapsed busy time * rate. *)
let test_hgps_conservation () =
  let h = Hgps.create ~spec:hgps_spec () in
  let a1 = Hgps.leaf_id h "A1" and b = Hgps.leaf_id h "B" in
  for _ = 1 to 5 do
    ignore (Hgps.arrive h ~at:0.0 ~leaf:a1 ~size_bits:1.0);
    ignore (Hgps.arrive h ~at:0.0 ~leaf:b ~size_bits:1.0)
  done;
  Hgps.advance h ~to_:100.0;
  let total = Hgps.served_bits h ~node:"link" in
  Alcotest.check feq "all fluid served" 10.0 total;
  let by_leaf =
    Hgps.served_bits h ~node:"A1" +. Hgps.served_bits h ~node:"A2"
    +. Hgps.served_bits h ~node:"B"
  in
  Alcotest.check feq "root = sum of leaves" total by_leaf;
  Alcotest.(check bool) "drained" false (Hgps.busy h)

(* A packet-mode leaf empties and its bandwidth flows to its sibling. *)
let test_hgps_drain_redistribution () =
  let h = Hgps.create ~spec:hgps_spec () in
  let a2 = Hgps.leaf_id h "A2" and b = Hgps.leaf_id h "B" in
  ignore (Hgps.arrive h ~at:0.0 ~leaf:a2 ~size_bits:4.0);
  Hgps.set_persistent h ~at:0.0 ~leaf:b true;
  (* A2 alone in A: drains at 0.8 -> empty at t=5; B at 0.2 until then *)
  Hgps.advance h ~to_:5.0;
  Alcotest.check feq "B at guaranteed rate while A busy" 1.0 (Hgps.served_bits h ~node:"B");
  Hgps.advance h ~to_:10.0;
  Alcotest.check feq "B takes the whole link after" 6.0 (Hgps.served_bits h ~node:"B")

let () =
  Alcotest.run "fluid"
    [
      ( "gps",
        [
          Alcotest.test_case "fig2 finish times" `Quick test_fig2_gps_finish_times;
          Alcotest.test_case "guaranteed rate" `Quick test_gps_guaranteed_rate;
          Alcotest.test_case "excess redistribution" `Quick test_gps_excess_redistribution;
        ] );
      ( "hgps",
        [
          Alcotest.test_case "section 2.2 shares" `Quick test_hgps_section22;
          Alcotest.test_case "property-1 violation" `Quick test_hgps_property1_violation;
          Alcotest.test_case "conservation" `Quick test_hgps_conservation;
          Alcotest.test_case "drain redistribution" `Quick test_hgps_drain_redistribution;
        ] );
    ]
