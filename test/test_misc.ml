(* API corners not covered elsewhere: introspection counters, pretty
   printers, growable vectors, fluid instantaneous rates. *)

let test_simulator_counters () =
  let sim = Engine.Simulator.create () in
  for i = 1 to 5 do
    ignore (Engine.Simulator.schedule sim ~at:(float_of_int i) ignore)
  done;
  Alcotest.(check int) "pending" 5 (Engine.Simulator.pending sim);
  Alcotest.(check bool) "step" true (Engine.Simulator.step sim);
  Alcotest.(check int) "fired" 1 (Engine.Simulator.events_processed sim);
  Engine.Simulator.run sim;
  Alcotest.(check int) "all fired" 5 (Engine.Simulator.events_processed sim);
  Alcotest.(check bool) "no more steps" false (Engine.Simulator.step sim)

let test_units_pp () =
  let time = Format.asprintf "%a" Engine.Units.pp_time 0.0025 in
  Alcotest.(check string) "ms rendering" "2.5 ms" time;
  let rate = Format.asprintf "%a" Engine.Units.pp_rate 44.44e6 in
  Alcotest.(check string) "Mbps rendering" "44.44 Mbps" rate;
  let micro = Format.asprintf "%a" Engine.Units.pp_time 1.5e-5 in
  Alcotest.(check string) "us rendering" "15 us" micro

let test_vec () =
  let v = Sched.Vec.create () in
  Alcotest.(check int) "push returns index" 0 (Sched.Vec.push v "a");
  Alcotest.(check int) "second index" 1 (Sched.Vec.push v "b");
  Sched.Vec.set v 0 "z";
  Alcotest.(check string) "get after set" "z" (Sched.Vec.get v 0);
  Alcotest.(check int) "length" 2 (Sched.Vec.length v);
  let acc = Sched.Vec.fold_left (fun acc x -> acc ^ x) "" v in
  Alcotest.(check string) "fold order" "zb" acc;
  Alcotest.(check bool) "bounds checked" true
    (try
       ignore (Sched.Vec.get v 5);
       false
     with Invalid_argument _ -> true)

let test_hgps_current_rate () =
  let spec =
    Hpfq.Class_tree.node "root" ~rate:1.0
      [ Hpfq.Class_tree.leaf "a" ~rate:0.3; Hpfq.Class_tree.leaf "b" ~rate:0.7 ]
  in
  let fluid = Fluid.Hgps.create ~spec () in
  Alcotest.(check (float 1e-9)) "idle rate" 0.0 (Fluid.Hgps.current_rate fluid ~node:"a");
  let a = Fluid.Hgps.leaf_id fluid "a" in
  Fluid.Hgps.set_persistent fluid ~at:0.0 ~leaf:a true;
  Alcotest.(check (float 1e-9)) "lone leaf takes the link" 1.0
    (Fluid.Hgps.current_rate fluid ~node:"a");
  let b = Fluid.Hgps.leaf_id fluid "b" in
  Fluid.Hgps.set_persistent fluid ~at:1.0 ~leaf:b true;
  Alcotest.(check (float 1e-9)) "now split 30/70" 0.3
    (Fluid.Hgps.current_rate fluid ~node:"a");
  Alcotest.(check bool) "busy" true (Fluid.Hgps.busy fluid)

let test_heap_aux_operations () =
  let h = Prioq.Binary_heap.create ~cmp:compare ~dummy:0 () in
  List.iter (Prioq.Binary_heap.push h) [ 3; 1; 2 ];
  let seen = ref 0 in
  Prioq.Binary_heap.iter_unordered (fun x -> seen := !seen + x) h;
  Alcotest.(check int) "iter visits all" 6 !seen;
  let p = Prioq.Pairing_heap.create ~cmp:compare in
  List.iter (Prioq.Pairing_heap.push p) [ 5; 4 ];
  Prioq.Pairing_heap.clear p;
  Alcotest.(check bool) "pairing clear" true (Prioq.Pairing_heap.is_empty p);
  let ih = Prioq.Indexed_heap.create 4 in
  Prioq.Indexed_heap.add ih ~key:1 ~prio:2.0;
  Prioq.Indexed_heap.add_or_update ih ~key:1 ~prio:1.0;
  Prioq.Indexed_heap.add_or_update ih ~key:2 ~prio:3.0;
  Alcotest.(check (option (float 1e-9))) "prio_of" (Some 1.0)
    (Prioq.Indexed_heap.prio_of ih 1);
  let visited = ref [] in
  Prioq.Indexed_heap.iter (fun k p -> visited := (k, p) :: !visited) ih;
  Alcotest.(check int) "iter count" 2 (List.length !visited);
  Prioq.Indexed_heap.clear ih;
  Alcotest.(check bool) "cleared" true (Prioq.Indexed_heap.is_empty ih);
  Alcotest.(check bool) "invariant after clear" true (Prioq.Indexed_heap.check_invariant ih)

let test_packet_pp_and_reset () =
  Net.Packet.reset_uid_counter ();
  let p = Net.Packet.make ~flow:3 ~seq:7 ~size_bits:100.0 ~arrival:1.5 () in
  Alcotest.(check int) "uid restarts" 1 p.Net.Packet.uid;
  let rendered = Format.asprintf "%a" Net.Packet.pp p in
  Alcotest.(check string) "pp" "p_3^7(100b@1.5)" rendered

let test_disciplines_find () =
  Alcotest.(check bool) "find case-insensitive" true
    (Hpfq.Disciplines.find "wf2q+" <> None);
  Alcotest.(check bool) "find WFQ" true (Hpfq.Disciplines.find "WFQ" <> None);
  Alcotest.(check bool) "unknown" true (Hpfq.Disciplines.find "cbq" = None);
  Alcotest.(check int) "registry size" 11 (List.length Hpfq.Disciplines.all)

let () =
  Alcotest.run "misc"
    [
      ( "api",
        [
          Alcotest.test_case "simulator counters" `Quick test_simulator_counters;
          Alcotest.test_case "units pp" `Quick test_units_pp;
          Alcotest.test_case "vec" `Quick test_vec;
          Alcotest.test_case "hgps current rate" `Quick test_hgps_current_rate;
          Alcotest.test_case "heap aux ops" `Quick test_heap_aux_operations;
          Alcotest.test_case "packet pp" `Quick test_packet_pp_and_reset;
          Alcotest.test_case "disciplines registry" `Quick test_disciplines_find;
        ] );
    ]
