(* Flat H-WF2Q+ engine: lockstep differential against the generic [Hier]
   reference, engine-facade selection, and the batched-arrival surface.

   The flat engine promises *bit-identical* behaviour to
   [Hier.create ~make_policy:(Hier.uniform wf2q_plus)] — same departure
   order and times, same per-node W_n / T_n / V clocks, same observer
   stamps. Every comparison below is exact float equality, no tolerance. *)

module Q = QCheck
module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module HF = Hpfq.Hier_flat
module HE = Hpfq.Hier_engine
module CT = Hpfq.Class_tree

let wf2q_plus = Hpfq.Disciplines.wf2q_plus

(* ---- random trees (depth <= 6, fan-out <= 8) + arrival programs ---- *)

type scenario = {
  spec : CT.t;
  leaves : string list;
  packets : (float * int * float) list; (* (time, leaf index, size_bits) *)
  root_ref : bool; (* drive the root on `Reference_time *)
}

let scenario_gen rng =
  let budget = ref 48 in
  let fresh = ref 0 in
  let rec gen ~depth rate =
    decr budget;
    let name =
      let id = !fresh in
      incr fresh;
      Printf.sprintf "n%d" id
    in
    let leaf () =
      let cap =
        if Random.State.int rng 6 = 0 then Some (1.0 +. Random.State.float rng 6.0)
        else None
      in
      CT.leaf ?queue_capacity_bits:cap name ~rate
    in
    if depth >= 5 || !budget <= 0 || (depth > 0 && Random.State.int rng 3 = 0) then
      leaf ()
    else begin
      let k = min (1 + Random.State.int rng 8) (max 1 !budget) in
      let weights = Array.init k (fun _ -> 0.2 +. Random.State.float rng 0.8) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      (* children sum to strictly less than the parent so validate passes
         whatever the float rounding *)
      let scale = 0.999 *. rate /. total in
      CT.node name ~rate
        (List.init k (fun i -> gen ~depth:(depth + 1) (weights.(i) *. scale)))
    end
  in
  (* force an interior root: [gen] at depth 0 never returns a leaf *)
  let spec = gen ~depth:0 1.0 in
  let leaves = List.map fst (CT.leaves spec) in
  let n_packets = 1 + Random.State.int rng 120 in
  let packets =
    List.init n_packets (fun _ ->
        ( Random.State.float rng 12.0,
          Random.State.int rng (List.length leaves),
          0.1 +. Random.State.float rng 1.9 ))
  in
  { spec; leaves; packets; root_ref = Random.State.int rng 4 = 0 }

let print_scenario s =
  Format.asprintf "root_ref=%b@ %a@ packets=[%s]" s.root_ref CT.pp s.spec
    (String.concat "; "
       (List.map (fun (t, l, z) -> Printf.sprintf "(%h,%d,%h)" t l z) s.packets))

let rec node_names spec =
  CT.name spec :: List.concat_map node_names (CT.children spec)

let rec interior_names spec =
  if CT.is_leaf spec then []
  else CT.name spec :: List.concat_map interior_names (CT.children spec)

(* Everything observable through the public surface, with exact floats:
   departures in order, drops, and per-node W_n / T_n / V at the end. *)
let replay engine s =
  let sim = Sim.create () in
  let log = ref [] in
  let on_depart pkt ~leaf t = log := (leaf, pkt.Net.Packet.seq, t) :: !log in
  let root_clock = if s.root_ref then `Reference_time else `Real_time in
  let h =
    match engine with
    | `Generic ->
      HE.Generic
        (Hier.create ~sim ~spec:s.spec ~make_policy:(Hier.uniform wf2q_plus)
           ~root_clock ~on_depart ())
    | `Flat -> HE.Flat (HF.create ~sim ~spec:s.spec ~root_clock ~on_depart ())
  in
  let ids = Array.of_list (List.map (HE.leaf_id h) s.leaves) in
  List.iter
    (fun (at, leaf, size) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             ignore (HE.inject h ~leaf:ids.(leaf) ~size_bits:size))))
    s.packets;
  Sim.run sim;
  let clocks =
    List.map
      (fun n -> (n, HE.departed_bits h ~node:n, HE.ref_time h ~node:n))
      (node_names s.spec)
  in
  let vtimes =
    List.map (fun n -> (n, HE.node_virtual_time h ~node:n)) (interior_names s.spec)
  in
  (List.rev !log, HE.drops h, clocks, vtimes)

let prop_lockstep =
  Q.Test.make ~count:500 ~name:"flat engine replays generic bit-for-bit"
    (Q.make scenario_gen ~print:print_scenario)
    (fun s -> replay `Generic s = replay `Flat s)

(* ---- observer-stamp parity: identical event streams ---- *)

let fig3ish =
  CT.node "link" ~rate:1.0
    [
      CT.node "A" ~rate:0.6 [ CT.leaf "a1" ~rate:0.4; CT.leaf "a2" ~rate:0.2 ];
      CT.node "B" ~rate:0.4
        [ CT.leaf "b1" ~rate:0.2; CT.leaf "b2" ~rate:0.1; CT.leaf "b3" ~rate:0.1 ];
    ]

let traced_events engine =
  let sim = Sim.create () in
  let h =
    match engine with
    | `Generic ->
      HE.Generic
        (Hier.create ~sim ~spec:fig3ish ~make_policy:(Hier.uniform wf2q_plus) ())
    | `Flat -> HE.Flat (HF.create ~sim ~spec:fig3ish ())
  in
  let trace = Obs.Trace.attach_engine h in
  let leaves = Array.of_list (List.map snd (HE.leaf_ids h)) in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         Array.iteri
           (fun i leaf ->
             for _ = 1 to 3 + i do
               ignore (HE.inject h ~leaf ~size_bits:(1.0 +. (0.25 *. float_of_int i)))
             done)
           leaves));
  ignore
    (Sim.schedule sim ~at:7.5 (fun () ->
         ignore (HE.inject h ~leaf:leaves.(0) ~size_bits:0.5)));
  Sim.run sim;
  Obs.Trace.events trace

let test_trace_parity () =
  let g = traced_events `Generic and f = traced_events `Flat in
  Alcotest.(check int) "same event count" (List.length g) (List.length f);
  (* [compare] rather than [=]: link-level events stamp vtime = NaN *)
  Alcotest.(check bool) "identical event streams" true (compare g f = 0)

(* ---- deep chain (depth 8) golden regression ---- *)

let deep_spec =
  let rec chain k inner =
    if k = 0 then inner else chain (k - 1) (CT.node (Printf.sprintf "c%d" k) ~rate:1.0 [ inner ])
  in
  CT.node "root" ~rate:1.0
    [
      chain 6
        (CT.node "c7" ~rate:1.0 [ CT.leaf "x" ~rate:0.75; CT.leaf "y" ~rate:0.25 ]);
    ]

let deep_run engine =
  let sim = Sim.create () in
  let log = ref [] in
  let on_depart _ ~leaf t = log := (leaf, t) :: !log in
  let h =
    match engine with
    | `Generic ->
      HE.Generic
        (Hier.create ~sim ~spec:deep_spec ~make_policy:(Hier.uniform wf2q_plus)
           ~on_depart ())
    | `Flat -> HE.Flat (HF.create ~sim ~spec:deep_spec ~on_depart ())
  in
  let x = HE.leaf_id h "x" and y = HE.leaf_id h "y" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 4 do
           ignore (HE.inject h ~leaf:x ~size_bits:1.0)
         done;
         for _ = 1 to 2 do
           ignore (HE.inject h ~leaf:y ~size_bits:1.5)
         done));
  ignore
    (Sim.schedule sim ~at:8.25 (fun () -> ignore (HE.inject h ~leaf:y ~size_bits:0.5)));
  Sim.run sim;
  List.rev !log

(* The WF2Q+ schedule for this program, pinned from the audited generic
   engine: x (share 0.75) and y (share 0.25) interleave by eligible finish
   tags, and the depth-6 interior chain must be transparent (single-child
   nodes add no scheduling freedom). *)
let deep_golden =
  [
    ("x", 1.0);
    ("y", 2.5);
    ("x", 3.5);
    ("x", 4.5);
    ("x", 5.5);
    ("y", 7.0);
    ("y", 8.75);
  ]

let test_deep_chain_golden () =
  let pairs = Alcotest.(list (pair string (float 1e-9))) in
  Alcotest.check pairs "generic matches golden" deep_golden (deep_run `Generic);
  Alcotest.check pairs "flat matches golden" deep_golden (deep_run `Flat);
  Alcotest.(check bool) "flat = generic exactly" true
    (deep_run `Generic = deep_run `Flat)

(* ---- Wf2q_plus_stamped spot-check at the root ---- *)

(* On a one-level tree the flat engine's root is a standalone WF2Q+; the
   per-packet-stamped ablation (independent implementation of the same
   fluid system) must schedule every packet within one max-packet
   transmission time of it (the bound test_wf2q_plus pins for the pair). *)
let test_stamped_root_spot_check () =
  let spec =
    CT.node "root" ~rate:1.0
      [ CT.leaf "s0" ~rate:0.5; CT.leaf "s1" ~rate:0.3; CT.leaf "s2" ~rate:0.2 ]
  in
  let run mk =
    let sim = Sim.create () in
    let log = ref [] in
    let on_depart pkt ~leaf t = log := ((leaf, pkt.Net.Packet.seq), t) :: !log in
    let h = mk sim on_depart in
    let leaves = List.map snd (HE.leaf_ids h) in
    ignore
      (Sim.schedule sim ~at:0.0 (fun () ->
           List.iter
             (fun leaf ->
               for _ = 1 to 6 do
                 ignore (HE.inject h ~leaf ~size_bits:1.0)
               done)
             leaves));
    Sim.run sim;
    List.rev !log
  in
  let flat = run (fun sim on_depart -> HE.Flat (HF.create ~sim ~spec ~on_depart ())) in
  let stamped =
    run (fun sim on_depart ->
        HE.Generic
          (Hier.create ~sim ~spec
             ~make_policy:(Hier.uniform Hpfq.Wf2q_plus_stamped.factory)
             ~on_depart ()))
  in
  let by_key log = List.sort compare log in
  let max_pkt_time = 1.0 /. 1.0 in
  List.iter2
    (fun (k1, t1) (k2, t2) ->
      Alcotest.(check (pair string int)) "same packets served" k1 k2;
      Alcotest.(check bool)
        (Printf.sprintf "within one packet time (%.3f vs %.3f)" t1 t2)
        true
        (Float.abs (t1 -. t2) <= max_pkt_time +. 1e-9))
    (by_key flat) (by_key stamped)

(* ---- surface: leaf_id errors, facade selection, inject_many ---- *)

let test_flat_leaf_lookup () =
  let sim = Sim.create () in
  let h = HF.create ~sim ~spec:fig3ish () in
  Alcotest.(check string) "leaf roundtrip" "b2" (HF.leaf_name h (HF.leaf_id h "b2"));
  Alcotest.(check int) "five leaves" 5 (List.length (HF.leaf_ids h));
  Alcotest.(check bool) "interior name is Invalid_argument" true
    (try
       ignore (HF.leaf_id h "A");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown name is Not_found" true
    (try
       ignore (HF.leaf_id h "zzz");
       false
     with Not_found -> true)

let test_engine_selection () =
  let sim = Sim.create () in
  let mk ?engine factory =
    HE.create ~sim ~spec:fig3ish ~factory ?engine ()
  in
  Alcotest.(check bool) "auto picks flat for WF2Q+" true
    (HE.kind (mk wf2q_plus) = `Flat);
  Alcotest.(check bool) "auto falls back to generic for WFQ" true
    (HE.kind (mk Hpfq.Disciplines.wfq) = `Generic);
  Alcotest.(check bool) "generic can be forced" true
    (HE.kind (mk ~engine:`Generic wf2q_plus) = `Generic);
  Alcotest.(check bool) "flat rejects non-WF2Q+" true
    (try
       ignore (mk ~engine:`Flat Hpfq.Disciplines.wfq);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (result string string)) "choice parser" (Ok "flat")
    (Result.map HE.choice_to_string (HE.choice_of_string "flat"));
  Alcotest.(check bool) "choice parser rejects junk" true
    (Result.is_error (HE.choice_of_string "fast"))

let test_inject_many () =
  let run inject_fn =
    let sim = Sim.create () in
    let log = ref [] in
    let h =
      HF.create ~sim ~spec:fig3ish
        ~on_depart:(fun pkt ~leaf t -> log := (leaf, pkt.Net.Packet.seq, t) :: !log)
        ()
    in
    let a1 = HF.leaf_id h "a1" and b1 = HF.leaf_id h "b1" in
    ignore
      (Sim.schedule sim ~at:0.0 (fun () ->
           inject_fn h ~leaf:a1 ~size_bits:1.0 ~count:10;
           inject_fn h ~leaf:b1 ~size_bits:0.5 ~count:4));
    Sim.run sim;
    List.rev !log
  in
  let looped =
    run (fun h ~leaf ~size_bits ~count ->
        for _ = 1 to count do
          ignore (HF.inject h ~leaf ~size_bits)
        done)
  in
  let batched = run (fun h ~leaf ~size_bits ~count -> HF.inject_many h ~leaf ~size_bits ~count) in
  Alcotest.(check (list (triple string int (float 0.0))))
    "inject_many = repeated inject" looped batched

let test_flat_rejects_leaf_root () =
  let sim = Sim.create () in
  Alcotest.(check bool) "bare-leaf spec rejected" true
    (try
       ignore (HF.create ~sim ~spec:(CT.leaf "only" ~rate:1.0) ());
       false
     with Invalid_argument _ -> true)

let () =
  let seeded = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xf1a7; 42 |]) in
  Alcotest.run "hier_flat"
    [
      ("lockstep", [ seeded prop_lockstep ]);
      ( "parity",
        [
          Alcotest.test_case "trace event streams identical" `Quick test_trace_parity;
          Alcotest.test_case "deep chain golden" `Quick test_deep_chain_golden;
          Alcotest.test_case "stamped root spot check" `Quick
            test_stamped_root_spot_check;
        ] );
      ( "surface",
        [
          Alcotest.test_case "leaf lookup errors" `Quick test_flat_leaf_lookup;
          Alcotest.test_case "engine selection" `Quick test_engine_selection;
          Alcotest.test_case "inject_many" `Quick test_inject_many;
          Alcotest.test_case "leaf root rejected" `Quick test_flat_rejects_leaf_root;
        ] );
    ]
