(* Session lifecycle and fixed-point virtual time.

   1. Differential: random open/close/arrive/select programs replayed on
      the float WF2Q+ engine and the fixed-point one must produce
      bit-identical traces — same slots from the freelist, same departure
      order, same final virtual time. Programs are built from dyadic
      quantities (power-of-two session rates, integer packet sizes, time
      steps in units of 2^-10), so every stamp eq. 27-29 computes is
      exactly representable in both domains and equality is exact, no
      tolerance.
   2. Handle hygiene: freelist reuse recycles slots, generation tags make
      stale handles raise rather than alias the next tenant.
   3. Close-under-backlog: the [`Drain]/[`Drop] contract on every
      registered discipline, on the packet Server, and in lockstep on
      both hierarchy engines under random churn.
   4. Soak smoke: the long-horizon drift harness — fixed-point V is
      exactly n times the per-packet step where float V has measurable
      rounding error.
   5. Flow_table.Sessions: open-on-first-arrival at the device ingress. *)

module Q = QCheck
module Intf = Sched.Sched_intf
module Handle = Sched.Session_handle
module Sim = Engine.Simulator
module HE = Hpfq.Hier_engine
module CT = Hpfq.Class_tree

let float_engine = Hpfq.Disciplines.wf2q_plus
let fixed_engine = Hpfq.Disciplines.wf2q_plus_fixed

(* ---- 1. fixed vs float differential over random lifecycle programs ---- *)

type op =
  | Open of int (* rate selector *)
  | Close of int * bool (* victim selector, [true] = `Drop *)
  | Arrive of int * int (* session selector, size in bits *)
  | Select
  | Step of int (* dt in units of 2^-10 server seconds *)

(* power-of-two rates: L/r_i is dyadic, so float stamps are exact *)
let rates = [| 0.5; 0.25; 0.125; 0.0625 |]

let op_gen =
  let open Q.Gen in
  frequency
    [
      (3, map (fun i -> Open i) (int_bound 1000));
      (2, map2 (fun i drop -> Close (i, drop)) (int_bound 1000) bool);
      (6, map2 (fun i z -> Arrive (i, z)) (int_bound 1000) (int_range 1 4));
      (6, return Select);
      (3, map (fun d -> Step d) (int_range 0 8));
    ]

let program_gen = Q.Gen.list_size (Q.Gen.int_range 10 150) op_gen

let print_op = function
  | Open i -> Printf.sprintf "Open %d" i
  | Close (i, d) -> Printf.sprintf "Close (%d, %b)" i d
  | Arrive (i, z) -> Printf.sprintf "Arrive (%d, %d)" i z
  | Select -> "Select"
  | Step d -> Printf.sprintf "Step %d" d

let print_program ops = String.concat "; " (List.map print_op ops)

type live = {
  h : Handle.t;
  slot : int;
  mutable queue : int list; (* packet sizes, head first *)
  mutable draining : bool;
}

(* Replay a program against one engine, producing the observable trace.
   Session targeting is by position in the harness's live list, so both
   replays aim the same ops at the same sessions as long as the engines
   have agreed so far — any divergence ends up in the trace. *)
let replay factory ops =
  let p = factory.Intf.make ~rate:1.0 in
  let trace = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> trace := s :: !trace) fmt in
  let live = ref [] in
  let now = ref 0.0 in
  let pick xs seed =
    match List.length xs with 0 -> None | n -> Some (List.nth xs (seed mod n))
  in
  let serve_one () =
    match p.Intf.select ~now:!now with
    | None -> emit "sel:none"
    | Some s -> (
      match List.find_opt (fun l -> l.slot = s) !live with
      | None -> emit "sel:unknown:%d" s
      | Some l -> (
        match l.queue with
        | [] -> emit "sel:empty:%d" s
        | z :: rest ->
          emit "dep:%d:%d" l.slot z;
          l.queue <- rest;
          (match rest with
          | z' :: _ -> p.Intf.requeue ~now:!now ~session:s ~head_bits:(float_of_int z')
          | [] ->
            (* set_idle frees a draining session's slot *)
            p.Intf.set_idle ~now:!now ~session:s;
            if l.draining then live := List.filter (fun l' -> l' != l) !live)))
  in
  List.iter
    (fun op ->
      match op with
      | Open seed ->
        if List.length !live < 48 then begin
          let h = p.Intf.open_session ~rate:rates.(seed mod Array.length rates) in
          let slot = p.Intf.session_of_handle h in
          emit "open:%d" slot;
          live := !live @ [ { h; slot; queue = []; draining = false } ]
        end
      | Close (seed, drop) -> (
        match pick (List.filter (fun l -> not l.draining) !live) seed with
        | None -> ()
        | Some l ->
          emit "close:%d:%c" l.slot (if drop then 'x' else 'd');
          p.Intf.close_session ~now:!now ~policy:(if drop then `Drop else `Drain) l.h;
          if drop || l.queue = [] then live := List.filter (fun l' -> l' != l) !live
          else l.draining <- true)
      | Arrive (seed, z) -> (
        match pick (List.filter (fun l -> not l.draining) !live) seed with
        | None -> ()
        | Some l ->
          p.Intf.arrive ~now:!now ~session:l.slot ~size_bits:(float_of_int z);
          if l.queue = [] then
            p.Intf.backlog ~now:!now ~session:l.slot ~head_bits:(float_of_int z);
          l.queue <- l.queue @ [ z ])
      | Select -> serve_one ()
      | Step d -> now := !now +. (float_of_int d /. 1024.0))
    ops;
  (* flush: every queued packet must still come out, in the same order *)
  let backlog = List.fold_left (fun acc l -> acc + List.length l.queue) 0 !live in
  for _ = 1 to backlog do
    serve_one ()
  done;
  emit "final:v=%h live=%d backlogged=%d" (p.Intf.virtual_time ~now:!now)
    (p.Intf.live_sessions ()) (p.Intf.backlogged_count ());
  List.rev !trace

let prop_fixed_float_differential =
  Q.Test.make ~count:400
    ~name:"fixed-point WF2Q+ replays float WF2Q+ bit-for-bit under churn"
    (Q.make program_gen ~print:print_program)
    (fun ops -> replay float_engine ops = replay fixed_engine ops)

(* the same trace equality for the stamped (observer-ready) variant, which
   shares the float reference semantics *)
let prop_stamped_differential =
  Q.Test.make ~count:150
    ~name:"stamped WF2Q+ replays float WF2Q+ bit-for-bit under churn"
    (Q.make program_gen ~print:print_program)
    (fun ops ->
      replay float_engine ops = replay Hpfq.Disciplines.wf2q_plus_per_packet ops)

(* ---- 2. handle hygiene: freelist reuse + generation staleness ---- *)

let raises_stale f =
  match f () with
  | _ -> false
  | exception Sched.Session_pool.Stale_handle _ -> true

let test_freelist_reuse_and_staleness () =
  List.iter
    (fun factory ->
      let kind = factory.Intf.kind in
      let p = factory.Intf.make ~rate:1.0 in
      let h1 = p.Intf.open_session ~rate:0.5 in
      let s1 = p.Intf.session_of_handle h1 in
      p.Intf.close_session ~now:0.0 ~policy:`Drop h1;
      Alcotest.(check bool)
        (kind ^ ": closed handle is stale") true
        (raises_stale (fun () -> p.Intf.session_of_handle h1));
      let h2 = p.Intf.open_session ~rate:0.25 in
      (* the GPS-exact disciplines run a recycle:false pool (their fluid
         clock state cannot be re-initialised per slot); everyone else
         must reuse the freed slot *)
      let recycles = not (List.mem kind [ "WFQ"; "WF2Q" ]) in
      Alcotest.(check int)
        (kind
        ^ if recycles then ": freelist recycles the slot"
          else ": non-recycling pool extends the arena")
        (if recycles then s1 else s1 + 1)
        (p.Intf.session_of_handle h2);
      Alcotest.(check bool) (kind ^ ": handles differ by generation") false
        (Handle.equal h1 h2);
      Alcotest.(check bool)
        (kind ^ ": stale handle still stale after reuse") true
        (raises_stale (fun () -> p.Intf.session_of_handle h1));
      Alcotest.(check bool)
        (kind ^ ": close through a stale handle is refused") true
        (raises_stale (fun () -> p.Intf.close_session ~now:0.0 ~policy:`Drop h1));
      Alcotest.(check int) (kind ^ ": one live session") 1 (p.Intf.live_sessions ()))
    Hpfq.Disciplines.all

(* ---- 3. close-under-backlog: `Drain serves out, `Drop retracts ---- *)

let test_close_backlogged_all_disciplines () =
  List.iter
    (fun factory ->
      let kind = factory.Intf.kind in
      (* `Drop: the closed session must never be selected again *)
      let p, hs =
        Hpfq.Schedulers.make ~rate:1.0 ~initial_sessions:[| 0.5; 0.25 |] factory
      in
      let s0 = p.Intf.session_of_handle hs.(0) in
      let s1 = p.Intf.session_of_handle hs.(1) in
      p.Intf.arrive ~now:0.0 ~session:s0 ~size_bits:1.0;
      p.Intf.backlog ~now:0.0 ~session:s0 ~head_bits:1.0;
      p.Intf.arrive ~now:0.0 ~session:s1 ~size_bits:1.0;
      p.Intf.backlog ~now:0.0 ~session:s1 ~head_bits:1.0;
      (* the GPS-exact disciplines cannot retract fluid service already
         granted: the contract lets them reject `Drop-of-backlogged with
         Invalid_argument instead (deterministically — heaps intact) *)
      (match p.Intf.close_session ~now:0.0 ~policy:`Drop hs.(0) with
      | () ->
        Alcotest.(check int) (kind ^ ": drop removes from backlog") 1
          (p.Intf.backlogged_count ());
        Alcotest.(check int) (kind ^ ": drop frees the slot") 1
          (p.Intf.live_sessions ());
        (match p.Intf.select ~now:0.0 with
        | Some s when s = s1 -> p.Intf.set_idle ~now:1.0 ~session:s1
        | Some s -> Alcotest.failf "%s: selected dropped session %d" kind s
        | None -> Alcotest.failf "%s: work-conservation lost after drop" kind);
        Alcotest.(check bool) (kind ^ ": nothing left to select") true
          (p.Intf.select ~now:1.0 = None)
      | exception Invalid_argument _ ->
        Alcotest.(check int)
          (kind ^ ": rejected drop left the backlog intact") 2
          (p.Intf.backlogged_count ());
        Alcotest.(check int)
          (kind ^ ": rejected drop left both sessions live") 2
          (p.Intf.live_sessions ()));
      (* `Drain: the session keeps its schedule place until it empties *)
      let p, hs =
        Hpfq.Schedulers.make ~rate:1.0 ~initial_sessions:[| 0.5 |] factory
      in
      let s0 = p.Intf.session_of_handle hs.(0) in
      p.Intf.arrive ~now:0.0 ~session:s0 ~size_bits:1.0;
      p.Intf.backlog ~now:0.0 ~session:s0 ~head_bits:1.0;
      p.Intf.close_session ~now:0.0 ~policy:`Drain hs.(0);
      Alcotest.(check int) (kind ^ ": draining session stays live") 1
        (p.Intf.live_sessions ());
      (match p.Intf.select ~now:0.0 with
      | Some s when s = s0 -> p.Intf.set_idle ~now:1.0 ~session:s0
      | Some s -> Alcotest.failf "%s: selected unknown session %d" kind s
      | None -> Alcotest.failf "%s: draining session not served" kind);
      Alcotest.(check int) (kind ^ ": slot freed once drained") 0
        (p.Intf.live_sessions ());
      Alcotest.(check bool) (kind ^ ": drained handle is stale") true
        (raises_stale (fun () -> p.Intf.session_of_handle hs.(0))))
    Hpfq.Disciplines.all

let test_server_close_under_backlog () =
  let sim = Sim.create () in
  let departed = ref [] in
  let dropped = ref [] in
  let srv, hs =
    Hpfq.Schedulers.server ~sim ~rate:1.0 ~initial_sessions:[| 0.5; 0.25 |]
      ~on_depart:(fun p t -> departed := (p.Net.Packet.flow, t) :: !departed)
      ~on_drop:(fun p t -> dropped := (p.Net.Packet.flow, t) :: !dropped)
      Hpfq.Disciplines.wf2q_plus ()
  in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         (* three packets each; close 0 `Drain and 1 `Drop mid-backlog *)
         for _ = 1 to 3 do
           ignore (Hpfq.Server.inject_handle srv ~handle:hs.(0) ~size_bits:1.0);
           ignore (Hpfq.Server.inject_handle srv ~handle:hs.(1) ~size_bits:1.0)
         done));
  ignore
    (Sim.schedule sim ~at:0.5 (fun () ->
         Hpfq.Server.close_session srv ~policy:`Drain hs.(0);
         Hpfq.Server.close_session srv ~policy:`Drop hs.(1)));
  Sim.run sim;
  let flows_out = List.map fst !departed in
  (* session 0 drains all three packets; session 1 loses everything not
     already committed to the link *)
  Alcotest.(check int) "session 0 drained in full" 3
    (List.length (List.filter (fun f -> f = 0) flows_out));
  Alcotest.(check int) "session 1's packets all accounted for" 3
    (List.length (List.filter (fun (f, _) -> f = 1) !dropped)
    + List.length (List.filter (fun f -> f = 1) flows_out));
  Alcotest.(check bool) "session 1 dropped at least one packet" true
    (List.exists (fun (f, _) -> f = 1) !dropped);
  Alcotest.(check int) "both slots freed" 0 (Hpfq.Server.live_sessions srv);
  Alcotest.(check bool) "server link went idle" false (Hpfq.Server.busy srv)

let test_server_wire_packet_finishes () =
  (* a `Drop close must not abort the packet already on the link *)
  let sim = Sim.create () in
  let departed = ref 0 in
  let srv, hs =
    Hpfq.Schedulers.server ~sim ~rate:1.0 ~initial_sessions:[| 0.5 |]
      ~on_depart:(fun _ _ -> incr departed)
      Hpfq.Disciplines.wf2q_plus ()
  in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         ignore (Hpfq.Server.inject_handle srv ~handle:hs.(0) ~size_bits:4.0)));
  ignore
    (Sim.schedule sim ~at:1.0 (fun () ->
         (* mid-transmission: the packet departs at t=4 regardless *)
         Hpfq.Server.close_session srv ~policy:`Drop hs.(0);
         Alcotest.(check bool) "link still busy through the close" true
           (Hpfq.Server.busy srv)));
  Sim.run sim;
  Alcotest.(check int) "committed packet still departed" 1 !departed;
  Alcotest.(check int) "slot freed at departure" 0 (Hpfq.Server.live_sessions srv)

(* ---- hierarchy engines: lockstep under leaf churn ---- *)

type churn_scenario = {
  spec : CT.t;
  leaves : string list;
  packets : (float * int * float) list;
  churn : (float * int * [ `Close_drop | `Close_drain | `Reopen ]) list;
}

let churn_scenario_gen rng =
  let k = 2 + Random.State.int rng 4 in
  let spec =
    CT.node "root" ~rate:1.0
      (List.init k (fun g ->
           let gr = 0.999 /. float_of_int k in
           CT.node
             (Printf.sprintf "g%d" g)
             ~rate:gr
             (List.init 2 (fun l ->
                  CT.leaf (Printf.sprintf "g%d-l%d" g l) ~rate:(0.499 *. gr)))))
  in
  let leaves = List.map fst (CT.leaves spec) in
  let n_leaves = List.length leaves in
  let packets =
    List.init
      (20 + Random.State.int rng 100)
      (fun _ ->
        ( Random.State.float rng 10.0,
          Random.State.int rng n_leaves,
          0.1 +. Random.State.float rng 1.9 ))
  in
  let churn =
    List.init
      (Random.State.int rng 12)
      (fun _ ->
        let action =
          match Random.State.int rng 3 with
          | 0 -> `Close_drop
          | 1 -> `Close_drain
          | _ -> `Reopen
        in
        (Random.State.float rng 10.0, Random.State.int rng n_leaves, action))
  in
  { spec; leaves; packets; churn }

let print_churn_scenario s =
  Format.asprintf "%a@ packets=[%s]@ churn=[%s]" CT.pp s.spec
    (String.concat "; "
       (List.map (fun (t, l, z) -> Printf.sprintf "(%h,%d,%h)" t l z) s.packets))
    (String.concat "; "
       (List.map
          (fun (t, l, a) ->
            Printf.sprintf "(%h,%d,%s)" t l
              (match a with
              | `Close_drop -> "drop"
              | `Close_drain -> "drain"
              | `Reopen -> "reopen"))
          s.churn))

(* Both engines replay the same arrival + churn program; ops gate on the
   engine's own leaf_state, so any behavioural divergence surfaces as a
   trace difference. *)
let replay_churn engine s =
  let sim = Sim.create () in
  let log = ref [] in
  let drops = ref [] in
  let h =
    HE.create ~sim ~spec:s.spec ~factory:Hpfq.Disciplines.wf2q_plus ~engine
      ~on_depart:(fun pkt ~leaf t -> log := (leaf, pkt.Net.Packet.seq, t) :: !log)
      ~on_drop:(fun pkt ~leaf t -> drops := (leaf, pkt.Net.Packet.seq, t) :: !drops)
      ()
  in
  let ids = Array.of_list (List.map (HE.leaf_id h) s.leaves) in
  List.iter
    (fun (at, leaf, size) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             if HE.leaf_state h ~leaf:ids.(leaf) = `Open then
               ignore (HE.inject h ~leaf:ids.(leaf) ~size_bits:size))))
    s.packets;
  List.iter
    (fun (at, leaf, action) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             let id = ids.(leaf) in
             match action with
             | `Close_drop ->
               if HE.leaf_state h ~leaf:id = `Open then
                 HE.close_leaf h ~leaf:id ~policy:`Drop
             | `Close_drain ->
               if HE.leaf_state h ~leaf:id = `Open then
                 HE.close_leaf h ~leaf:id ~policy:`Drain
             | `Reopen ->
               if HE.leaf_state h ~leaf:id = `Closed then HE.reopen_leaf h ~leaf:id)))
    s.churn;
  Sim.run sim;
  let states =
    List.map (fun (name, id) -> (name, HE.leaf_state h ~leaf:id))
      (List.combine s.leaves (Array.to_list ids))
  in
  let clocks =
    List.map
      (fun n -> (n, HE.departed_bits h ~node:n))
      (List.map fst (CT.leaves s.spec))
  in
  (List.rev !log, List.rev !drops, HE.drops h, states, clocks)

let prop_hier_lockstep_churn =
  Q.Test.make ~count:300
    ~name:"flat engine replays generic bit-for-bit under leaf churn"
    (Q.make churn_scenario_gen ~print:print_churn_scenario)
    (fun s -> replay_churn `Generic s = replay_churn `Flat s)

let test_hier_drop_close_retracts () =
  (* deterministic pin of the committed-head retract: close a leaf whose
     head is committed up the tree but not on the wire; its packets drop
     and the sibling takes over immediately on both engines *)
  List.iter
    (fun engine ->
      let sim = Sim.create () in
      let log = ref [] in
      let spec =
        CT.node "root" ~rate:1.0
          [ CT.leaf "a" ~rate:0.499; CT.leaf "b" ~rate:0.499 ]
      in
      let h =
        HE.create ~sim ~spec ~factory:Hpfq.Disciplines.wf2q_plus ~engine
          ~on_depart:(fun _ ~leaf t -> log := (leaf, t) :: !log)
          ()
      in
      let a = HE.leaf_id h "a" and b = HE.leaf_id h "b" in
      ignore
        (Sim.schedule sim ~at:0.0 (fun () ->
             HE.inject_many h ~leaf:a ~size_bits:1.0 ~count:4;
             HE.inject_many h ~leaf:b ~size_bits:1.0 ~count:4));
      ignore
        (Sim.schedule sim ~at:1.5 (fun () -> HE.close_leaf h ~leaf:a ~policy:`Drop));
      Sim.run sim;
      let a_out = List.length (List.filter (fun (l, _) -> l = "a") !log) in
      let b_out = List.length (List.filter (fun (l, _) -> l = "b") !log) in
      Alcotest.(check int) "b drained in full" 4 b_out;
      Alcotest.(check bool) "a stopped at the close" true (a_out < 4);
      Alcotest.(check int) "a's queue was dropped" (4 - a_out) (HE.drops h);
      Alcotest.(check bool) "a reads closed" true (HE.leaf_state h ~leaf:a = `Closed);
      (* reopen: fresh stamps, serviceable again *)
      HE.reopen_leaf h ~leaf:a;
      Alcotest.(check bool) "a reads open again" true
        (HE.leaf_state h ~leaf:a = `Open);
      ignore
        (Sim.schedule sim
           ~at:(Sim.now sim +. 0.1)
           (fun () -> HE.inject_many h ~leaf:a ~size_bits:1.0 ~count:2));
      Sim.run sim;
      let a_after =
        List.length (List.filter (fun (l, _) -> l = "a") !log) - a_out
      in
      Alcotest.(check int) "reopened leaf served" 2 a_after)
    [ `Generic; `Flat ]

(* ---- 4. soak smoke: drift after 10^7 packets ---- *)

let test_soak_smoke () =
  let packets =
    match Sys.getenv_opt "HPFQ_SOAK" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 10_000_000)
    | None -> 10_000_000
  in
  let results = Experiments.Churn_bench.soak ~packets () in
  let find e = List.find (fun r -> r.Experiments.Churn_bench.s_engine = e) results in
  let fx = find "WF2Q+fx" and fl = find "WF2Q+" in
  Alcotest.(check bool) "fixed-point drift is provably zero" true
    fx.Experiments.Churn_bench.s_exact;
  Alcotest.(check (float 0.0)) "fixed-point drift is zero" 0.0 fx.s_drift;
  Alcotest.(check bool) "float engine accumulates measurable drift" true
    (Float.abs fl.s_drift > 0.0)

(* ---- 5. Flow_table.Sessions: open-on-first-arrival ---- *)

let test_flow_sessions () =
  let policy = Hpfq.Wf2q_plus.make ~rate:1.0 in
  let t = Shard.Flow_table.Sessions.create ~policy ~default_rate:0.01 () in
  Alcotest.(check bool) "unknown before first arrival" false
    (Shard.Flow_table.Sessions.known t ~flow:7);
  let h1 = Shard.Flow_table.Sessions.handle t ~flow:7 in
  Alcotest.(check bool) "known after first arrival" true
    (Shard.Flow_table.Sessions.known t ~flow:7);
  Alcotest.(check bool) "second arrival reuses the session" true
    (Handle.equal h1 (Shard.Flow_table.Sessions.handle t ~flow:7));
  ignore (Shard.Flow_table.Sessions.handle t ~flow:8);
  Alcotest.(check int) "one session per distinct flow" 2
    (Shard.Flow_table.Sessions.live t);
  Shard.Flow_table.Sessions.close t ~policy:`Drop ~now:0.0 ~flow:7;
  Alcotest.(check bool) "close forgets the mapping" false
    (Shard.Flow_table.Sessions.known t ~flow:7);
  Shard.Flow_table.Sessions.close t ~policy:`Drop ~now:0.0 ~flow:7;
  (* re-arrival opens a fresh generation *)
  let h2 = Shard.Flow_table.Sessions.handle t ~flow:7 in
  Alcotest.(check bool) "reopened session is a fresh generation" false
    (Handle.equal h1 h2);
  Alcotest.(check bool) "old handle is stale" true
    (raises_stale (fun () -> policy.Intf.session_of_handle h1));
  Alcotest.(check int) "policy live count matches the table" 2
    (policy.Intf.live_sessions ())

(* ---- Schedulers facade error paths: bad specs must raise, not
   half-construct ---- *)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_facade_error_paths () =
  (* unknown discipline kind: the error names the kind and the known ones *)
  (match Hpfq.Schedulers.of_kind ~rate:1.0 "no-such-discipline" with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "unknown kind named in the error" true
      (let contains s sub =
         let n = String.length sub in
         let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       contains msg "no-such-discipline" && contains msg "WF2Q+")
  | _ -> Alcotest.fail "unknown kind must raise");
  (* every registered kind still resolves (case-insensitively) *)
  List.iter
    (fun kind ->
      let p, _ = Hpfq.Schedulers.of_kind ~rate:1.0 (String.lowercase_ascii kind) in
      Alcotest.(check int)
        (kind ^ ": resolved and constructed") 0 (p.Intf.live_sessions ()))
    (Hpfq.Schedulers.kinds ());
  (* non-positive link rate, on every constructor *)
  Alcotest.(check bool) "make rejects rate 0" true
    (raises_invalid (fun () ->
         Hpfq.Schedulers.make ~rate:0.0 Hpfq.Disciplines.wf2q_plus));
  Alcotest.(check bool) "make rejects negative rate" true
    (raises_invalid (fun () ->
         Hpfq.Schedulers.make ~rate:(-1.0) Hpfq.Disciplines.wf2q_plus));
  Alcotest.(check bool) "of_kind rejects rate 0" true
    (raises_invalid (fun () -> Hpfq.Schedulers.of_kind ~rate:0.0 "WF2Q+"));
  Alcotest.(check bool) "server rejects rate 0" true
    (raises_invalid (fun () ->
         Hpfq.Schedulers.server ~sim:(Sim.create ()) ~rate:0.0
           Hpfq.Disciplines.wf2q_plus ()));
  (* non-positive session rate inside initial_sessions *)
  Alcotest.(check bool) "zero session rate rejected" true
    (raises_invalid (fun () ->
         Hpfq.Schedulers.make ~rate:1.0 ~initial_sessions:[| 0.5; 0.0 |]
           Hpfq.Disciplines.wf2q_plus));
  (* guaranteed rates beyond the link's capacity: rejected up front, with
     nothing constructed (no sessions leak into a half-built policy) *)
  Alcotest.(check bool) "oversubscribed initial_sessions rejected" true
    (raises_invalid (fun () ->
         Hpfq.Schedulers.make ~rate:1.0 ~initial_sessions:[| 0.75; 0.5 |]
           Hpfq.Disciplines.wf2q_plus));
  Alcotest.(check bool) "oversubscribed server rejected" true
    (raises_invalid (fun () ->
         Hpfq.Schedulers.server ~sim:(Sim.create ()) ~rate:1.0
           ~initial_sessions:[| 0.75; 0.5 |] Hpfq.Disciplines.wf2q_plus ()));
  (* exactly-full is admissible, on every discipline *)
  List.iter
    (fun factory ->
      let p, hs =
        Hpfq.Schedulers.make ~rate:1.0 ~initial_sessions:[| 0.5; 0.5 |] factory
      in
      Alcotest.(check int)
        (factory.Intf.kind ^ ": full subscription admitted")
        2 (Array.length hs);
      Alcotest.(check int)
        (factory.Intf.kind ^ ": both sessions live")
        2 (p.Intf.live_sessions ()))
    Hpfq.Disciplines.all

let () =
  Alcotest.run "lifecycle"
    [
      ( "facade",
        [
          Alcotest.test_case "constructor error paths" `Quick
            test_facade_error_paths;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fixed_float_differential; prop_stamped_differential ] );
      ( "handles",
        [
          Alcotest.test_case "freelist reuse + generation staleness" `Quick
            test_freelist_reuse_and_staleness;
        ] );
      ( "close",
        [
          Alcotest.test_case "close under backlog, every discipline" `Quick
            test_close_backlogged_all_disciplines;
          Alcotest.test_case "server drain/drop" `Quick test_server_close_under_backlog;
          Alcotest.test_case "server wire packet finishes" `Quick
            test_server_wire_packet_finishes;
          Alcotest.test_case "hier drop close retracts committed head" `Quick
            test_hier_drop_close_retracts;
        ] );
      ( "hier-churn",
        List.map QCheck_alcotest.to_alcotest [ prop_hier_lockstep_churn ] );
      ( "soak", [ Alcotest.test_case "fixed vs float drift" `Slow test_soak_smoke ] );
      ( "flow-table",
        [ Alcotest.test_case "open-on-first-arrival" `Quick test_flow_sessions ] );
    ]
