(* WF2Q+ unit tests: the virtual-time function of eq. 27 and the stamp
   discipline of eqs. 28-29, exercised directly through the policy
   interface (no simulator). *)

module P = Sched.Sched_intf

let feq = Alcotest.float 1e-9

let make_two () =
  let p = Hpfq.Wf2q_plus.make ~rate:1.0 in
  let a = p.P.add_session ~rate:0.5 in
  let b = p.P.add_session ~rate:0.5 in
  (p, a, b)

let test_first_selection () =
  let p, a, b = make_two () in
  p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
  p.P.backlog ~now:0.0 ~session:b ~head_bits:2.0;
  (* F_a = 2, F_b = 4: SEFF picks a *)
  Alcotest.(check (option int)) "smallest finish first" (Some a) (p.P.select ~now:0.0)

let test_eligibility_blocks_lead () =
  let p, a, b = make_two () in
  p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
  p.P.backlog ~now:0.0 ~session:b ~head_bits:1.0;
  Alcotest.(check (option int)) "a first (tie -> smaller id)" (Some a) (p.P.select ~now:0.0);
  (* a's next packet: S=2 > V=1 -> not eligible; b (S=0) must win even
     though both have F within range *)
  p.P.requeue ~now:1.0 ~session:a ~head_bits:1.0;
  Alcotest.(check (option int)) "SEFF blocks the leader" (Some b) (p.P.select ~now:1.0)

let test_v_jumps_to_min_start () =
  let p, a, _b = make_two () in
  (* serve a long burst on a so its F races ahead *)
  p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
  ignore (p.P.select ~now:0.0);
  p.P.requeue ~now:1.0 ~session:a ~head_bits:1.0;
  ignore (p.P.select ~now:1.0);
  p.P.set_idle ~now:2.0 ~session:a;
  (* system idle; a returns much later with stale V. Its stamp chains from
     F (=4) but the max-with-Smin term must lift V to S so it is served
     immediately (work conservation). *)
  p.P.backlog ~now:2.5 ~session:a ~head_bits:1.0;
  Alcotest.(check (option int)) "lifted V keeps SEFF work-conserving" (Some a)
    (p.P.select ~now:2.5)

let test_stamp_chaining_busy () =
  let p, a, b = make_two () in
  p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
  p.P.backlog ~now:0.0 ~session:b ~head_bits:1.0;
  ignore (p.P.select ~now:0.0);
  (* busy-branch requeue: S = F_prev, independent of V *)
  p.P.requeue ~now:1.0 ~session:a ~head_bits:1.0;
  ignore (p.P.select ~now:1.0);
  (* now b was served; with V = 2 after two services, a is eligible again *)
  p.P.requeue ~now:2.0 ~session:b ~head_bits:1.0;
  Alcotest.(check (option int)) "alternation continues" (Some a) (p.P.select ~now:2.0)

let test_real_time_advance () =
  (* standalone semantics: V gains the idle gap via the +tau term *)
  let p, a, _ = make_two () in
  p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
  ignore (p.P.select ~now:0.0);
  p.P.set_idle ~now:1.0 ~session:a;
  let v_at_10 = p.P.virtual_time ~now:10.0 in
  Alcotest.check feq "V advanced with real time" 10.0 v_at_10

let test_select_empty () =
  let p, _, _ = make_two () in
  Alcotest.(check (option int)) "no backlog, no pick" None (p.P.select ~now:0.0)

let test_errors () =
  let p, a, _ = make_two () in
  p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
  Alcotest.(check bool) "double backlog rejected" true
    (try
       p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
       false
     with Invalid_argument _ -> true);
  p.P.set_idle ~now:0.0 ~session:a;
  Alcotest.(check bool) "double idle rejected" true
    (try
       p.P.set_idle ~now:0.0 ~session:a;
       false
     with Invalid_argument _ -> true)

(* Rate differentiation: over a long backlogged run, service converges to
   the rate ratio (3:1). *)
let test_rate_ratio () =
  let p = Hpfq.Wf2q_plus.make ~rate:1.0 in
  let a = p.P.add_session ~rate:0.75 in
  let b = p.P.add_session ~rate:0.25 in
  p.P.backlog ~now:0.0 ~session:a ~head_bits:1.0;
  p.P.backlog ~now:0.0 ~session:b ~head_bits:1.0;
  let served = [| 0; 0 |] in
  let now = ref 0.0 in
  for _ = 1 to 400 do
    match p.P.select ~now:!now with
    | Some s ->
      served.(s) <- served.(s) + 1;
      now := !now +. 1.0;
      p.P.requeue ~now:!now ~session:s ~head_bits:1.0
    | None -> Alcotest.fail "starved"
  done;
  Alcotest.(check int) "3:1 split" 300 served.(a);
  Alcotest.(check int) "3:1 split (b)" 100 served.(b)

(* The B-WFI of Theorem 4 holds on the adversarial probe workload for a
   range of rate splits. *)
let test_bwfi_bound_various_rates () =
  List.iter
    (fun r0 ->
      let sim = Engine.Simulator.create () in
      let probe_delay = ref nan in
      let server = ref None in
      let sent = ref false in
      let deps = ref 0 in
      let n = 10 in
      let srv =
        Hpfq.Server.create ~sim ~rate:1.0
          ~policy:(Hpfq.Wf2q_plus.make ~rate:1.0)
          ~on_depart:(fun pkt t ->
            if pkt.Net.Packet.flow = 0 then
              if !sent then begin
                if Float.is_nan !probe_delay then probe_delay := t -. pkt.Net.Packet.arrival
              end
              else begin
                incr deps;
                if !deps = n then begin
                  sent := true;
                  ignore (Hpfq.Server.inject (Option.get !server) ~session:0 ~size_bits:1.0)
                end
              end)
          ()
      in
      server := Some srv;
      ignore (Hpfq.Server.add_session srv ~rate:r0 ());
      let bg_rate = (1.0 -. r0) /. float_of_int n in
      let bgs = List.init n (fun _ -> Hpfq.Server.add_session srv ~rate:bg_rate ()) in
      ignore
        (Engine.Simulator.schedule sim ~at:0.0 (fun () ->
             for _ = 1 to n do
               ignore (Hpfq.Server.inject srv ~session:0 ~size_bits:1.0)
             done;
             List.iter
               (fun s ->
                 for _ = 1 to 6 * n do
                   ignore (Hpfq.Server.inject srv ~session:s ~size_bits:1.0)
                 done)
               bgs));
      Engine.Simulator.run sim;
      let bwfi = Hpfq.Theory.bwfi_wf2q ~l_i_max:1.0 ~l_max:1.0 ~r_i:r0 ~r:1.0 in
      let bound = (1.0 /. r0) +. Hpfq.Theory.twfi_of_bwfi ~bwfi ~r_i:r0 in
      Alcotest.(check bool)
        (Printf.sprintf "T-WFI bound holds at r0=%.2f (delay %.3f <= %.3f)" r0
           !probe_delay bound)
        true
        ((not (Float.is_nan !probe_delay)) && !probe_delay <= bound +. 1e-9))
    [ 0.2; 0.5; 0.8 ]

let () =
  Alcotest.run "wf2q_plus"
    [
      ( "virtual-time",
        [
          Alcotest.test_case "first selection" `Quick test_first_selection;
          Alcotest.test_case "eligibility blocks leader" `Quick test_eligibility_blocks_lead;
          Alcotest.test_case "V jumps to min start" `Quick test_v_jumps_to_min_start;
          Alcotest.test_case "stamp chaining" `Quick test_stamp_chaining_busy;
          Alcotest.test_case "real-time advance" `Quick test_real_time_advance;
        ] );
      ( "interface",
        [
          Alcotest.test_case "select on empty" `Quick test_select_empty;
          Alcotest.test_case "protocol errors" `Quick test_errors;
        ] );
      ( "guarantees",
        [
          Alcotest.test_case "rate ratio" `Quick test_rate_ratio;
          Alcotest.test_case "B-WFI bound across rates" `Quick test_bwfi_bound_various_rates;
        ] );
    ]
