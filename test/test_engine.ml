(* Discrete-event simulator and RNG. *)

module Sim = Engine.Simulator
module Rng = Engine.Rng
module Units = Engine.Units

let test_event_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~at:2.0 (fun () -> log := 2 :: !log));
  ignore (Sim.schedule sim ~at:1.0 (fun () -> log := 1 :: !log));
  ignore (Sim.schedule sim ~at:3.0 (fun () -> log := 3 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "fires in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-12)) "clock at last event" 3.0 (Sim.now sim)

let test_fifo_tie_break () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.schedule sim ~at:1.0 (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "same-time events fire FIFO" (List.init 10 Fun.id)
    (List.rev !log)

let test_schedule_from_handler () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~at:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Sim.schedule_after sim ~delay:0.5 (fun () -> log := "b" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested scheduling" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-12)) "time" 1.5 (Sim.now sim)

let test_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule sim ~at:1.0 (fun () -> fired := true) in
  Alcotest.(check int) "pending" 1 (Sim.pending sim);
  Sim.cancel sim ev;
  Alcotest.(check int) "pending after cancel" 0 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check bool) "cancelled event did not fire" false !fired

let test_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.schedule sim ~at:(float_of_int i) (fun () -> incr count))
  done;
  Sim.run ~until:5.5 sim;
  Alcotest.(check int) "only events <= horizon" 5 !count;
  Alcotest.(check (float 1e-12)) "clock advanced to horizon" 5.5 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check int) "remaining drain" 10 !count

let test_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule sim ~at:2.0 ignore);
  Sim.run sim;
  Alcotest.(check bool) "scheduling in the past raises" true
    (try
       ignore (Sim.schedule sim ~at:1.0 ignore);
       false
     with Invalid_argument _ -> true)

(* Regression for the pooled event loop: 10k schedules with heavy random
   cancellation (including stale cancels of already-fired events, which must
   be no-ops even after their pool slot is reused) interleaved with bounded
   [run ~until] drains. Checks [pending]/[events_processed] accounting and
   clock monotonicity throughout. *)
let test_cancel_churn () =
  let sim = Sim.create () in
  let rng = Random.State.make [| 0xC0FFEE |] in
  let n = 10_000 in
  let ids = Array.make n None in
  let fired = Array.make n false in
  let cancelled = Array.make n false in
  let fired_count = ref 0 in
  let cancelled_count = ref 0 in
  let last_time = ref 0.0 in
  let monotone = ref true in
  for i = 0 to n - 1 do
    let at = Sim.now sim +. Random.State.float rng 5.0 in
    ids.(i) <-
      Some
        (Sim.schedule sim ~at (fun () ->
             if Sim.now sim < !last_time then monotone := false;
             last_time := Sim.now sim;
             fired.(i) <- true;
             incr fired_count));
    (* cancel a random earlier (or this) event: live, already-cancelled and
       already-fired ids are all fair game *)
    if Random.State.int rng 100 < 40 then begin
      let j = Random.State.int rng (i + 1) in
      match ids.(j) with
      | None -> ()
      | Some id ->
        let before = Sim.pending sim in
        Sim.cancel sim id;
        let after = Sim.pending sim in
        if fired.(j) || cancelled.(j) then begin
          if after <> before then
            Alcotest.failf "stale/duplicate cancel of %d changed pending" j
        end
        else begin
          if after <> before - 1 then
            Alcotest.failf "cancel of live event %d did not drop pending" j;
          cancelled.(j) <- true;
          incr cancelled_count
        end
    end;
    (* periodically drain a bounded window so schedule/cancel interleave
       with firing and slot reuse *)
    if i mod 100 = 99 then Sim.run ~until:(Sim.now sim +. 1.0) sim
  done;
  Sim.run sim;
  Alcotest.(check int) "nothing pending after full drain" 0 (Sim.pending sim);
  Alcotest.(check int) "fired = scheduled - cancelled" (n - !cancelled_count)
    !fired_count;
  Alcotest.(check int) "events_processed counts every fire" !fired_count
    (Sim.events_processed sim);
  Alcotest.(check bool) "clock monotone across drains" true !monotone;
  let partitioned = ref true in
  for i = 0 to n - 1 do
    (* every event either fired or was (effectively) cancelled, never both *)
    if cancelled.(i) = fired.(i) then partitioned := false
  done;
  Alcotest.(check bool) "fired xor cancelled for every event" true !partitioned

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  let xs = List.init 100 (fun _ -> Rng.uniform a) in
  let ys = List.init 100 (fun _ -> Rng.uniform b) in
  Alcotest.(check bool) "same seed, same stream" true (xs = ys);
  let c = Rng.create 43L in
  let zs = List.init 100 (fun _ -> Rng.uniform c) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs)

let test_rng_ranges () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng in
    if u < 0.0 || u >= 1.0 then Alcotest.fail "uniform out of range";
    let i = Rng.int rng 10 in
    if i < 0 || i >= 10 then Alcotest.fail "int out of range";
    let e = Rng.exponential rng ~mean:2.0 in
    if e < 0.0 then Alcotest.fail "exponential negative"
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 11L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "empirical mean within 5%" true
    (Float.abs (mean -. 3.0) < 0.15)

let test_rng_split_independent () =
  let parent = Rng.create 5L in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.uniform parent) in
  let ys = List.init 50 (fun _ -> Rng.uniform child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_units () =
  Alcotest.(check (float 1e-9)) "mbps" 1.0e6 (Units.mbps 1.0);
  Alcotest.(check (float 1e-9)) "ms" 0.001 (Units.ms 1.0);
  Alcotest.(check (float 1e-9)) "bytes" 800.0 (Units.bits_of_bytes 100.0);
  Alcotest.(check (float 1e-9)) "8KB packet" 65536.0 (Units.bits_of_kilobytes 8.0);
  Alcotest.(check (float 1e-12)) "transmission time" 0.065536
    (Units.transmission_time ~bits:65536.0 ~rate:1.0e6)

let () =
  Alcotest.run "engine"
    [
      ( "simulator",
        [
          Alcotest.test_case "event order" `Quick test_event_order;
          Alcotest.test_case "FIFO tie break" `Quick test_fifo_tie_break;
          Alcotest.test_case "nested scheduling" `Quick test_schedule_from_handler;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "past rejected" `Quick test_past_rejected;
          Alcotest.test_case "cancel churn (pooled loop)" `Quick test_cancel_churn;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        ] );
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
    ]
