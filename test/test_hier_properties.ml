(* Hierarchy-level property tests: randomized trees and dynamic (bursty,
   non-saturated) workloads, for every discipline used as a building block. *)

module Q = QCheck
module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree

(* random 2-3 level tree plus a packet script over its leaves *)
let scenario_gen =
  let open Q.Gen in
  let* layout = list_size (int_range 2 4) (int_range 1 3) in
  (* layout.(i) = number of leaves under group i (1 leaf -> group collapses
     to a bare leaf at level 1, exercising mixed depths) *)
  let n_leaves = List.fold_left ( + ) 0 layout in
  let* packets =
    list_size (int_range 1 80)
      (let* leaf = int_range 0 (n_leaves - 1) in
       let* at = float_bound_inclusive 8.0 in
       let* size = float_range 0.1 2.0 in
       return (at, leaf, size))
  in
  return (layout, packets)

let build_tree layout =
  let leaf_names = ref [] in
  let n_groups = List.length layout in
  let group_rate = 1.0 /. float_of_int n_groups in
  let groups =
    List.mapi
      (fun gi n_leaves ->
        let names = List.init n_leaves (fun li -> Printf.sprintf "g%d-l%d" gi li) in
        leaf_names := !leaf_names @ names;
        if n_leaves = 1 then CT.leaf (List.hd names) ~rate:group_rate
        else
          CT.node (Printf.sprintf "g%d" gi) ~rate:group_rate
            (List.map
               (fun name -> CT.leaf name ~rate:(group_rate /. float_of_int n_leaves))
               names))
      layout
  in
  (CT.node "root" ~rate:1.0 groups, !leaf_names)

let run_hier factory (layout, packets) =
  let spec, leaf_names = build_tree layout in
  let sim = Sim.create () in
  let departures = ref [] in
  let h =
    Hier.create ~sim ~spec ~make_policy:(Hier.uniform factory)
      ~on_depart:(fun pkt ~leaf t -> departures := (pkt, leaf, t) :: !departures)
      ()
  in
  let ids = Array.of_list (List.map (fun n -> Hier.leaf_id h n) leaf_names) in
  List.iter
    (fun (at, leaf, size) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             ignore (Hier.inject h ~leaf:ids.(leaf mod Array.length ids) ~size_bits:size))))
    packets;
  Sim.run sim;
  (List.rev !departures, h)

(* 1. Completeness + work conservation through arbitrary hierarchies. *)
let prop_hier_dynamic factory =
  Q.Test.make ~count:40
    ~name:("H-" ^ factory.Sched.Sched_intf.kind ^ ": dynamic tree completeness + work conservation")
    (Q.make scenario_gen)
    (fun ((_, packets) as scenario) ->
      let departures, h = run_hier factory scenario in
      let complete = List.length departures = List.length packets in
      (* a work-conserving unit-rate server finishes exactly when a single
         FIFO queue over the same arrivals would *)
      let arrivals = List.sort compare (List.map (fun (t, _, z) -> (t, z)) packets) in
      let expected_finish =
        List.fold_left (fun clock (t, z) -> Float.max clock t +. z) 0.0 arrivals
      in
      let last =
        List.fold_left (fun acc (_, _, t) -> Float.max acc t) 0.0 departures
      in
      complete
      && Float.abs (last -. expected_finish) < 1e-6
      && Hier.drops h = 0)

(* 2. Per-leaf FIFO through the hierarchy. *)
let prop_hier_leaf_fifo factory =
  Q.Test.make ~count:40
    ~name:("H-" ^ factory.Sched.Sched_intf.kind ^ ": per-leaf FIFO")
    (Q.make scenario_gen)
    (fun scenario ->
      let departures, _ = run_hier factory scenario in
      let last_seq = Hashtbl.create 8 in
      List.for_all
        (fun (pkt, leaf, _) ->
          let prev = Option.value (Hashtbl.find_opt last_seq leaf) ~default:0 in
          Hashtbl.replace last_seq leaf pkt.Net.Packet.seq;
          pkt.Net.Packet.seq > prev)
        departures)

(* 3. Finite leaf queues: conservation with drops accounted. *)
let prop_hier_drop_conservation =
  Q.Test.make ~count:40 ~name:"H-WF2Q+: injected = departed + dropped (finite queues)"
    (Q.make scenario_gen)
    (fun (layout, packets) ->
      let spec, leaf_names = build_tree layout in
      (* shrink every leaf queue to 3 bits *)
      let rec cap node =
        match node with
        | CT.Leaf { name; rate; _ } -> CT.leaf name ~rate ~queue_capacity_bits:3.0
        | CT.Node { name; rate; children } -> CT.node name ~rate (List.map cap children)
      in
      let spec = cap spec in
      let sim = Sim.create () in
      let departed = ref 0 and dropped = ref 0 in
      let h =
        Hier.create ~sim ~spec
          ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus)
          ~on_depart:(fun _ ~leaf:_ _ -> incr departed)
          ~on_drop:(fun _ ~leaf:_ _ -> incr dropped)
          ()
      in
      let ids = Array.of_list (List.map (fun n -> Hier.leaf_id h n) leaf_names) in
      List.iter
        (fun (at, leaf, size) ->
          ignore
            (Sim.schedule sim ~at (fun () ->
                 ignore
                   (Hier.inject h ~leaf:ids.(leaf mod Array.length ids) ~size_bits:size))))
        packets;
      Sim.run sim;
      !departed + !dropped = List.length packets && Hier.drops h = !dropped)

(* 4. Hierarchical isolation: traffic inside one group never changes the
   departure times of another group's packets when both groups are within
   their guarantees (deterministic check over a random scenario pair). *)
let prop_group_isolation =
  Q.Test.make ~count:30 ~name:"H-WF2Q+: sibling-group traffic does not starve a paced group"
    (Q.make Q.Gen.(int_range 1 30))
    (fun burst ->
      (* group A: paced CBR within its 0.5 share; group B: bursts [burst]
         packets at t=0. A's packets must all meet their per-packet bound
         whatever B does. *)
      let spec =
        CT.node "root" ~rate:1.0
          [
            CT.node "A" ~rate:0.5 [ CT.leaf "a" ~rate:0.5 ];
            CT.node "B" ~rate:0.5 [ CT.leaf "b" ~rate:0.5 ];
          ]
      in
      let sim = Sim.create () in
      let worst = ref 0.0 in
      let h =
        Hier.create ~sim ~spec ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus)
          ~on_depart:(fun pkt ~leaf t ->
            if String.equal leaf "a" then
              worst := Float.max !worst (t -. pkt.Net.Packet.arrival))
          ()
      in
      let a = Hier.leaf_id h "a" and b = Hier.leaf_id h "b" in
      (* a: one unit packet every 4 time units (1/8 of capacity) *)
      for k = 0 to 9 do
        ignore
          (Sim.schedule sim
             ~at:(float_of_int k *. 4.0)
             (fun () -> ignore (Hier.inject h ~leaf:a ~size_bits:1.0)))
      done;
      ignore
        (Sim.schedule sim ~at:0.0 (fun () ->
             for _ = 1 to burst do
               ignore (Hier.inject h ~leaf:b ~size_bits:1.0)
             done));
      Sim.run sim;
      (* Cor. 2 for a: sigma/r + L/r_A + L/r_root = 1/0.5... the packet is
         alone in its queue: bound = L/r_a + L/r_A + L/r = 2 + 2 + 1 *)
      !worst <= 5.0 +. 1e-9)

let suite =
  List.map QCheck_alcotest.to_alcotest
    ([ prop_hier_drop_conservation; prop_group_isolation ]
    @ List.concat_map
        (fun factory -> [ prop_hier_dynamic factory; prop_hier_leaf_fifo factory ])
        Hpfq.Disciplines.all)

let () = Alcotest.run "hier_properties" [ ("qcheck", suite) ]
