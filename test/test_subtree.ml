(* Subtree-sharded H-WF2Q+ engine: epoch = 1 lockstep differential against
   [Hier_flat], epoch > 1 determinism across worker and shard counts, the
   (k-1) * l_max / r service-lag bound as a measurement, and the facade /
   validation surface.

   The engine promises *bit-identical* behaviour to [Hier_flat.create] at
   [epoch = 1] — same departure order and times, same drops, same per-node
   W_n / T_n / V clocks — at any shard/worker count. Every epoch = 1
   comparison below is exact structural equality, no tolerance. *)

module Q = QCheck
module Sim = Engine.Simulator
module HF = Hpfq.Hier_flat
module HE = Hpfq.Hier_engine
module CT = Hpfq.Class_tree
module ST = Shard.Subtree

let wf2q_plus = Hpfq.Disciplines.wf2q_plus

(* ---- random trees + arrival programs (test_hier_flat's generator with a
   forced fan-out >= 2 at the root, so the shard partition is non-trivial) *)

type scenario = {
  spec : CT.t;
  leaves : string list;
  packets : (float * int * float) list; (* (time, leaf index, size_bits) *)
  root_ref : bool; (* drive the root on `Reference_time *)
}

let scenario_gen rng =
  let budget = ref 48 in
  let fresh = ref 0 in
  let rec gen ~depth rate =
    decr budget;
    let name =
      let id = !fresh in
      incr fresh;
      Printf.sprintf "n%d" id
    in
    let leaf () =
      let cap =
        if Random.State.int rng 6 = 0 then Some (1.0 +. Random.State.float rng 6.0)
        else None
      in
      CT.leaf ?queue_capacity_bits:cap name ~rate
    in
    if depth >= 5 || !budget <= 0 || (depth > 0 && Random.State.int rng 3 = 0) then
      leaf ()
    else begin
      let k =
        let k = min (1 + Random.State.int rng 8) (max 1 !budget) in
        if depth = 0 then max 2 k else k
      in
      let weights = Array.init k (fun _ -> 0.2 +. Random.State.float rng 0.8) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let scale = 0.999 *. rate /. total in
      CT.node name ~rate
        (List.init k (fun i -> gen ~depth:(depth + 1) (weights.(i) *. scale)))
    end
  in
  let spec = gen ~depth:0 1.0 in
  let leaves = List.map fst (CT.leaves spec) in
  let n_packets = 1 + Random.State.int rng 120 in
  let packets =
    List.init n_packets (fun _ ->
        ( Random.State.float rng 12.0,
          Random.State.int rng (List.length leaves),
          0.1 +. Random.State.float rng 1.9 ))
  in
  { spec; leaves; packets; root_ref = Random.State.int rng 4 = 0 }

let print_scenario s =
  Format.asprintf "root_ref=%b@ %a@ packets=[%s]" s.root_ref CT.pp s.spec
    (String.concat "; "
       (List.map (fun (t, l, z) -> Printf.sprintf "(%h,%d,%h)" t l z) s.packets))

let rec node_names spec =
  CT.name spec :: List.concat_map node_names (CT.children spec)

let rec interior_names spec =
  if CT.is_leaf spec then []
  else CT.name spec :: List.concat_map interior_names (CT.children spec)

(* Everything observable through the public surface, with exact floats:
   departures in order, the drop log in order, and per-node W_n / T_n / V
   at the end. *)
type observed = {
  o_departs : (string * int * float) list;
  o_drop_log : (string * int * float) list;
  o_drops : int;
  o_clocks : (string * float * float) list;
  o_vtimes : (string * float) list;
}

let run_observed s ~mk ~leaf_id ~inject ~observe =
  let sim = Sim.create () in
  let dep = ref [] and drp = ref [] in
  let on_depart pkt ~leaf t = dep := (leaf, pkt.Net.Packet.seq, t) :: !dep in
  let on_drop pkt ~leaf t = drp := (leaf, pkt.Net.Packet.seq, t) :: !drp in
  let root_clock = if s.root_ref then `Reference_time else `Real_time in
  let h = mk sim ~root_clock ~on_depart ~on_drop in
  let ids = Array.of_list (List.map (leaf_id h) s.leaves) in
  List.iter
    (fun (at, leaf, size) ->
      ignore
        (Sim.schedule sim ~at (fun () -> inject h ~leaf:ids.(leaf) ~size_bits:size)))
    s.packets;
  Sim.run sim;
  let drops, clocks, vtimes = observe h in
  {
    o_departs = List.rev !dep;
    o_drop_log = List.rev !drp;
    o_drops = drops;
    o_clocks = clocks;
    o_vtimes = vtimes;
  }

let replay_flat s =
  run_observed s
    ~mk:(fun sim ~root_clock ~on_depart ~on_drop ->
      HF.create ~sim ~spec:s.spec ~root_clock ~on_depart ~on_drop ())
    ~leaf_id:HF.leaf_id
    ~inject:(fun h ~leaf ~size_bits -> ignore (HF.inject h ~leaf ~size_bits))
    ~observe:(fun h ->
      ( HF.drops h,
        List.map
          (fun n -> (n, HF.departed_bits h ~node:n, HF.ref_time h ~node:n))
          (node_names s.spec),
        List.map (fun n -> (n, HF.node_virtual_time h ~node:n)) (interior_names s.spec)
      ))

let replay_subtree ?(epoch = 1) ~shards ~workers s =
  let engine = ref None in
  let r =
    run_observed s
      ~mk:(fun sim ~root_clock ~on_depart ~on_drop ->
        let t =
          ST.create ~sim ~spec:s.spec ~root_clock ~on_depart ~on_drop ~shards
            ~workers ~epoch ()
        in
        engine := Some t;
        t)
      ~leaf_id:ST.leaf_id
      ~inject:(fun h ~leaf ~size_bits -> ignore (ST.inject h ~leaf ~size_bits))
      ~observe:(fun h ->
        ( ST.drops h,
          List.map
            (fun n -> (n, ST.departed_bits h ~node:n, ST.ref_time h ~node:n))
            (node_names s.spec),
          List.map (fun n -> (n, ST.node_virtual_time h ~node:n)) (interior_names s.spec)
        ))
  in
  Option.iter ST.shutdown !engine;
  r

(* ---- epoch = 1: bit-identical to the flat engine at every shard/worker
   count tested ---- *)

let prop_lockstep =
  Q.Test.make ~count:320
    ~name:"subtree engine at epoch=1 replays flat bit-for-bit (shards 1/2/3)"
    (Q.make scenario_gen ~print:print_scenario)
    (fun s ->
      let reference = replay_flat s in
      List.for_all
        (fun (shards, workers) -> replay_subtree ~shards ~workers s = reference)
        [ (1, 0); (2, 0); (3, 2) ])

(* ---- epoch > 1: with the partition fixed, worker count is invisible;
   with the partition varied, only the drop-callback grouping may move
   (drops are accounted per shard at the sync) ---- *)

let prop_epoch_worker_invariance =
  Q.Test.make ~count:120
    ~name:"epoch>1 schedules are bit-identical across worker counts"
    (Q.make scenario_gen ~print:print_scenario)
    (fun s ->
      List.for_all
        (fun epoch ->
          replay_subtree ~epoch ~shards:2 ~workers:0 s
          = replay_subtree ~epoch ~shards:2 ~workers:2 s)
        [ 2; 5 ])

let sort_drop_log o = { o with o_drop_log = List.sort compare o.o_drop_log }

let prop_epoch_shard_invariance =
  Q.Test.make ~count:120
    ~name:"epoch>1 schedules are shard-count invariant (drop log as a set)"
    (Q.make scenario_gen ~print:print_scenario)
    (fun s ->
      sort_drop_log (replay_subtree ~epoch:4 ~shards:1 ~workers:0 s)
      = sort_drop_log (replay_subtree ~epoch:4 ~shards:3 ~workers:0 s))

(* ---- the (k-1) * l_max / r lag bound, measured ----

   Shallow trees with substantial leaf shares (so the bound is as tight as
   it gets) and a heavily overloaded arrival burst (so arrivals land while
   the link transmits and really get staged), no queue caps (so both
   engines serve the same packet set). Every packet must depart no later
   than the sequential schedule plus the session's
   [Theory.epoch_lag_bound]. *)

let lag_scenario rng =
  let k = 2 + Random.State.int rng 3 in
  let weights = Array.init k (fun _ -> 0.5 +. Random.State.float rng 0.5) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let scale = 0.999 /. total in
  let child i =
    let r = weights.(i) *. scale in
    if Random.State.int rng 3 = 0 then
      let a = 0.4 +. Random.State.float rng 0.2 in
      CT.node (Printf.sprintf "c%d" i) ~rate:r
        [
          CT.leaf (Printf.sprintf "c%dx" i) ~rate:(a *. 0.999 *. r);
          CT.leaf (Printf.sprintf "c%dy" i) ~rate:((1.0 -. a) *. 0.999 *. r);
        ]
    else CT.leaf (Printf.sprintf "c%d" i) ~rate:r
  in
  let spec = CT.node "root" ~rate:1.0 (List.init k child) in
  let leaves = List.map fst (CT.leaves spec) in
  let n_packets = 80 + Random.State.int rng 120 in
  let packets =
    List.init n_packets (fun _ ->
        ( Random.State.float rng 4.0,
          Random.State.int rng (List.length leaves),
          0.1 +. Random.State.float rng 1.9 ))
  in
  { spec; leaves; packets; root_ref = false }

let by_key departs =
  List.sort compare (List.map (fun (l, q, t) -> ((l, q), t)) departs)

let test_epoch_lag_bound () =
  let rng = Random.State.make [| 0x1a9; 0xb0d |] in
  let scenarios = List.init 10 (fun _ -> lag_scenario rng) in
  let staged_syncs = ref 0 in
  List.iter
    (fun epoch ->
      (* one epoch value also runs with a worker domain, so the pooled
         flush path is under the bound too *)
      let workers = if epoch = 8 then 1 else 0 in
      List.iter
        (fun s ->
          let rates = CT.leaves s.spec in
          let l_max =
            List.fold_left (fun a (_, _, z) -> Float.max a z) 0.0 s.packets
          in
          let seq = replay_flat s in
          let sim = Sim.create () in
          let dep = ref [] in
          let t =
            ST.create ~sim ~spec:s.spec ~shards:2 ~workers ~epoch
              ~on_depart:(fun pkt ~leaf t ->
                dep := (leaf, pkt.Net.Packet.seq, t) :: !dep)
              ()
          in
          let ids = Array.of_list (List.map (ST.leaf_id t) s.leaves) in
          List.iter
            (fun (at, leaf, size) ->
              ignore
                (Sim.schedule sim ~at (fun () ->
                     ignore (ST.inject t ~leaf:ids.(leaf) ~size_bits:size))))
            s.packets;
          Sim.run sim;
          staged_syncs := !staged_syncs + ST.sync_rounds t;
          Alcotest.(check int) "no drops without queue caps" 0 (ST.drops t);
          ST.shutdown t;
          let seq_d = by_key seq.o_departs and ep_d = by_key (List.rev !dep) in
          Alcotest.(check int) "same departure count" (List.length seq_d)
            (List.length ep_d);
          List.iter2
            (fun ((leaf, q), t_seq) ((leaf', q'), t_ep) ->
              Alcotest.(check (pair string int)) "same packet set" (leaf, q)
                (leaf', q');
              let rate = List.assoc leaf rates in
              let bound = Hpfq.Theory.epoch_lag_bound ~epoch ~l_max ~rate in
              if t_ep -. t_seq > bound +. 1e-9 then
                Alcotest.failf
                  "epoch=%d leaf=%s seq#%d late by %.6f > bound %.6f (rate %.4f)"
                  epoch leaf q (t_ep -. t_seq) bound rate)
            seq_d ep_d)
        scenarios)
    [ 2; 8; 64 ];
  (* the measurement is vacuous if nothing was ever staged *)
  Alcotest.(check bool) "staged syncs occurred" true (!staged_syncs > 0)

(* ---- construction validation, partition, observers ---- *)

let fig3ish =
  CT.node "link" ~rate:1.0
    [
      CT.node "A" ~rate:0.6 [ CT.leaf "a1" ~rate:0.4; CT.leaf "a2" ~rate:0.2 ];
      CT.node "B" ~rate:0.4
        [ CT.leaf "b1" ~rate:0.2; CT.leaf "b2" ~rate:0.1; CT.leaf "b3" ~rate:0.1 ];
    ]

let raises_invalid f =
  try
    ignore (f ());
    false
  with Invalid_argument _ -> true

let test_create_validation () =
  let sim = Sim.create () in
  let mk ?shards ?workers ?epoch ?mailbox_capacity () =
    ST.create ~sim ~spec:fig3ish ?shards ?workers ?epoch ?mailbox_capacity ()
  in
  Alcotest.(check bool) "epoch 0 rejected" true (raises_invalid (mk ~epoch:0));
  Alcotest.(check bool) "shards 0 rejected" true (raises_invalid (mk ~shards:0));
  Alcotest.(check bool) "workers -1 rejected" true (raises_invalid (mk ~workers:(-1)));
  Alcotest.(check bool) "mailbox 0 rejected" true
    (raises_invalid (mk ~mailbox_capacity:0));
  Alcotest.(check bool) "leaf root rejected" true
    (raises_invalid (fun () ->
         ST.create ~sim ~spec:(CT.leaf "only" ~rate:1.0) ()))

let test_partition () =
  let sim = Sim.create () in
  let t = ST.create ~sim ~spec:fig3ish ~shards:8 () in
  Alcotest.(check int) "shards clamp to root children" 2 (ST.shards t);
  Alcotest.(check int) "epoch default" 1 (ST.epoch t);
  Alcotest.(check int) "workers default" 0 (ST.workers t);
  Alcotest.(check int) "sync_rounds starts at 0" 0 (ST.sync_rounds t);
  Alcotest.(check string) "node 0 is the root" (ST.root_name t) (ST.node_name t 0);
  Alcotest.(check int) "root is coordinator-owned" (-1) (ST.node_shard t 0);
  for id = 1 to ST.node_count t - 1 do
    let s = ST.node_shard t id in
    if s < 0 || s >= ST.shards t then
      Alcotest.failf "node %d (%s) landed on shard %d" id (ST.node_name t id) s
  done;
  (* subtree-contiguous: a node shares its non-root parent's shard *)
  ST.iter_interior t (fun ~id ~name:_ ~level:_ ~children ->
      Array.iter
        (fun c ->
          if id <> 0 && ST.node_shard t c <> ST.node_shard t id then
            Alcotest.failf "node %d not on parent %d's shard" c id)
        children)

let test_observer_gate () =
  let sim = Sim.create () in
  let observer = Sched.Sched_intf.null_observer in
  let t1 = ST.create ~sim ~spec:fig3ish ~epoch:1 () in
  ST.set_node_observer t1 ~node:"A" (Some observer);
  ST.set_node_observer t1 ~node:"A" None;
  let t2 = ST.create ~sim ~spec:fig3ish ~epoch:4 () in
  Alcotest.(check bool) "observer rejected at epoch>1" true
    (raises_invalid (fun () -> ST.set_node_observer t2 ~node:"A" (Some observer)));
  ST.set_node_observer t2 ~node:"A" None (* clearing is always allowed *)

let test_lag_bound_formula () =
  let b = Hpfq.Theory.epoch_lag_bound in
  Alcotest.(check (float 0.0)) "epoch 1 is exact" 0.0 (b ~epoch:1 ~l_max:2.0 ~rate:0.5);
  Alcotest.(check (float 1e-12)) "(k-1) l_max / r" 16.0 (b ~epoch:5 ~l_max:2.0 ~rate:0.5);
  Alcotest.(check bool) "epoch 0 rejected" true
    (raises_invalid (fun () -> b ~epoch:0 ~l_max:1.0 ~rate:1.0));
  Alcotest.(check bool) "l_max 0 rejected" true
    (raises_invalid (fun () -> b ~epoch:2 ~l_max:0.0 ~rate:1.0));
  Alcotest.(check bool) "rate 0 rejected" true
    (raises_invalid (fun () -> b ~epoch:2 ~l_max:1.0 ~rate:0.0))

(* ---- the Hier_engine facade ----

   Registration order matters in this file: the unregistered-error test
   must run before anything calls [ST.register], and alcotest runs cases
   in declaration order. *)

let test_unregistered () =
  let sim = Sim.create () in
  Alcotest.(check bool) "subtree choice parses" true
    (HE.choice_of_string "subtree" = Ok `Subtree);
  Alcotest.(check bool) "unregistered builder is Invalid_argument" true
    (raises_invalid (fun () ->
         HE.create ~sim ~spec:fig3ish ~factory:wf2q_plus ~engine:`Subtree ()))

let test_facade () =
  ST.register ();
  let sim = Sim.create () in
  let log = ref [] in
  let h =
    HE.create ~sim ~spec:fig3ish ~factory:wf2q_plus ~engine:`Subtree ~shards:2
      ~epoch:1
      ~on_depart:(fun pkt ~leaf t -> log := (leaf, pkt.Net.Packet.seq, t) :: !log)
      ()
  in
  Alcotest.(check bool) "kind is `Subtree" true (HE.kind h = `Subtree);
  Alcotest.(check bool) "kind_name self-describes" true
    (String.length (HE.kind_name h) >= 7
    && String.sub (HE.kind_name h) 0 7 = "subtree");
  Alcotest.(check bool) "generic projection is None" true (HE.generic h = None);
  Alcotest.(check bool) "flat projection is None" true (HE.flat h = None);
  let a1 = HE.leaf_id h "a1" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         HE.inject_many h ~leaf:a1 ~size_bits:1.0 ~count:3));
  Sim.run sim;
  Alcotest.(check int) "three departures through the facade" 3 (List.length !log);
  Alcotest.(check bool) "non-WF2Q+ rejected" true
    (raises_invalid (fun () ->
         HE.create ~sim ~spec:fig3ish ~factory:Hpfq.Disciplines.wfq
           ~engine:`Subtree ()));
  Alcotest.(check bool) "trace attach rejected" true
    (raises_invalid (fun () -> Obs.Trace.attach_engine h))

let test_schedulers_and_default_config () =
  ST.register ();
  let sim = Sim.create () in
  let h =
    Hpfq.Schedulers.hier ~sim ~spec:fig3ish ~engine:`Subtree ~shards:2 ~epoch:3 ()
  in
  Alcotest.(check string) "knobs reach the engine" "subtree(shards=2,epoch=3,workers=0)"
    (HE.kind_name h);
  (* the process-wide default (the CLI's --shards/--epoch) fills omitted knobs *)
  HE.set_default_subtree_config ~shards:2 ~epoch:2 ();
  let d = HE.create ~sim ~spec:fig3ish ~factory:wf2q_plus ~engine:`Subtree () in
  Alcotest.(check string) "defaults fill omitted knobs"
    "subtree(shards=2,epoch=2,workers=0)" (HE.kind_name d);
  HE.set_default_subtree_config ();
  let e = HE.create ~sim ~spec:fig3ish ~factory:wf2q_plus ~engine:`Subtree () in
  Alcotest.(check string) "reset restores epoch 1"
    "subtree(shards=2,epoch=1,workers=0)" (HE.kind_name e);
  Alcotest.(check bool) "default config validates epoch" true
    (raises_invalid (fun () -> HE.set_default_subtree_config ~epoch:0 ()))

let () =
  let seeded = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5b7; 96 |]) in
  Alcotest.run "subtree"
    [
      ( "facade",
        [
          Alcotest.test_case "unregistered error" `Quick test_unregistered;
          Alcotest.test_case "registered dispatch" `Quick test_facade;
          Alcotest.test_case "schedulers + default config" `Quick
            test_schedulers_and_default_config;
        ] );
      ("lockstep", [ seeded prop_lockstep ]);
      ( "epoch",
        [
          seeded prop_epoch_worker_invariance;
          seeded prop_epoch_shard_invariance;
          Alcotest.test_case "lag bound measured" `Quick test_epoch_lag_bound;
          Alcotest.test_case "lag bound formula" `Quick test_lag_bound_formula;
        ] );
      ( "surface",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "partition" `Quick test_partition;
          Alcotest.test_case "observer gate" `Quick test_observer_gate;
        ] );
    ]
