(* Pending-set backends: slot heap vs calendar queue.

   The two backends must be observationally identical through the
   Simulator API — same fire order, same clocks, same pending counts —
   under any interleaving of schedule / cancel / step / run~until. The
   lockstep qcheck property below drives both through the same random op
   sequence and compares full traces; the unit tests pin the run~until
   horizon semantics, cancelled-top reclamation, compaction triggering
   and the calendar's resize / far-future behaviour. *)

module Sim = Engine.Simulator

(* ---- lockstep differential property ---- *)

type op =
  | Schedule of float (* delay from now *)
  | Chain of float * float (* handler schedules a follow-up: exercises
                              the calendar's rewind-on-add path *)
  | Cancel of int (* index into ids issued so far (stale ids included) *)
  | Step
  | Run_until of float (* horizon = now + delay *)

let op_to_string = function
  | Schedule d -> Printf.sprintf "sched %h" d
  | Chain (a, b) -> Printf.sprintf "chain %h %h" a b
  | Cancel k -> Printf.sprintf "cancel#%d" k
  | Step -> "step"
  | Run_until d -> Printf.sprintf "until +%h" d

let print_ops ops = String.concat "; " (List.map op_to_string ops)

(* Everything observable: each fire (tag, time) interleaved with the
   (clock, pending) snapshot taken after every op. Identical op replay
   must yield identical traces on both backends. *)
type entry = Fired of int * float | After of int * float * int

let run_trace backend ops =
  let sim = Sim.create ~backend () in
  let log = ref [] in
  let ids = ref [] in
  let tags = ref 0 in
  let fresh_tag () =
    let t = !tags in
    incr tags;
    t
  in
  let log_fire tag = log := Fired (tag, Sim.now sim) :: !log in
  let sched d =
    let tag = fresh_tag () in
    ids := Sim.schedule_after sim ~delay:d (fun () -> log_fire tag) :: !ids
  in
  let sched_chain d1 d2 =
    let tag = fresh_tag () in
    ids :=
      Sim.schedule_after sim ~delay:d1 (fun () ->
          log_fire tag;
          let tag2 = fresh_tag () in
          ids :=
            Sim.schedule_after sim ~delay:d2 (fun () -> log_fire tag2) :: !ids)
      :: !ids
  in
  List.iteri
    (fun i op ->
      (match op with
      | Schedule d -> sched d
      | Chain (d1, d2) -> sched_chain d1 d2
      | Cancel k -> (
        match !ids with
        | [] -> ()
        | l -> Sim.cancel sim (List.nth l (k mod List.length l)))
      | Step -> ignore (Sim.step sim)
      | Run_until d -> Sim.run ~until:(Sim.now sim +. d) sim);
      log := After (i, Sim.now sim, Sim.pending sim) :: !log)
    ops;
  Sim.run sim;
  (List.rev !log, Sim.now sim, Sim.events_processed sim)

let gen_delay =
  QCheck.Gen.frequency
    [
      (6, QCheck.Gen.map (fun u -> 2.0 *. u) (QCheck.Gen.float_bound_inclusive 1.0));
      (1, QCheck.Gen.return 0.0) (* exact ties: FIFO tie-break *);
      ( 1,
        QCheck.Gen.map
          (fun u -> 1000.0 *. u)
          (QCheck.Gen.float_bound_inclusive 1.0) );
    ]

let gen_op ~cancel_weight =
  QCheck.Gen.frequency
    [
      (5, QCheck.Gen.map (fun d -> Schedule d) gen_delay);
      (2, QCheck.Gen.map2 (fun a b -> Chain (a, b)) gen_delay gen_delay);
      (cancel_weight, QCheck.Gen.map (fun k -> Cancel k) QCheck.Gen.nat);
      (2, QCheck.Gen.return Step);
      (1, QCheck.Gen.map (fun d -> Run_until d) gen_delay);
    ]

let gen_ops ~cancel_weight ~max_len =
  QCheck.Gen.list_size
    (QCheck.Gen.int_range 0 max_len)
    (gen_op ~cancel_weight)

let lockstep name ~count ~cancel_weight ~max_len =
  QCheck.Test.make ~name ~count
    (QCheck.make (gen_ops ~cancel_weight ~max_len) ~print:print_ops)
    (fun ops ->
      run_trace Sim.Slot_heap ops = run_trace Sim.Calendar ops)

let prop_lockstep =
  lockstep "heap and calendar replay identically" ~count:300 ~cancel_weight:2
    ~max_len:120

(* heavier cancel mix over longer sequences: drives compaction and the
   calendar's cancelled-head reclamation through the same lockstep check *)
let prop_lockstep_churn =
  lockstep "lockstep under cancel churn" ~count:80 ~cancel_weight:8 ~max_len:400

(* ---- unit tests, parameterized by backend ---- *)

let both name f =
  [
    Alcotest.test_case (name ^ " (heap)") `Quick (fun () -> f Sim.Slot_heap);
    Alcotest.test_case (name ^ " (calendar)") `Quick (fun () -> f Sim.Calendar);
  ]

(* run ~until boundary: an event exactly at the horizon fires, the next
   representable instant after it does not, and the clock lands on the
   horizon even when nothing fires. *)
let test_until_boundary backend =
  let sim = Sim.create ~backend () in
  let fired = ref [] in
  let tag t () = fired := t :: !fired in
  ignore (Sim.schedule sim ~at:1.0 (tag "early"));
  ignore (Sim.schedule sim ~at:5.0 (tag "horizon"));
  ignore (Sim.schedule sim ~at:(Float.succ 5.0) (tag "after"));
  Sim.run ~until:5.0 sim;
  Alcotest.(check (list string))
    "events at or before the horizon fire" [ "early"; "horizon" ]
    (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock = horizon" 5.0 (Sim.now sim);
  Alcotest.(check int) "strictly-later event still pending" 1 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check (list string))
    "drain fires the rest"
    [ "early"; "horizon"; "after" ]
    (List.rev !fired);
  Alcotest.(check (float 0.0)) "clock at last event" (Float.succ 5.0)
    (Sim.now sim)

let test_until_empty backend =
  let sim = Sim.create ~backend () in
  Sim.run ~until:3.0 sim;
  Alcotest.(check (float 0.0)) "clock advances with no events" 3.0 (Sim.now sim)

(* a cancelled earliest event must be skipped and its structure entry
   reclaimed by the peek, not merely ignored *)
let test_cancelled_top_reclaimed backend =
  let sim = Sim.create ~backend () in
  let count = ref 0 in
  let first = Sim.schedule sim ~at:1.0 (fun () -> incr count) in
  for i = 2 to 10 do
    ignore (Sim.schedule sim ~at:(float_of_int i) (fun () -> incr count))
  done;
  Sim.cancel sim first;
  let st = Sim.stats sim in
  Alcotest.(check int) "cancelled entry still in structure" 1
    st.Sim.cancelled_in_set;
  Sim.run ~until:1.5 sim;
  Alcotest.(check int) "nothing fired before 2.0" 0 !count;
  Alcotest.(check (float 0.0)) "clock = horizon" 1.5 (Sim.now sim);
  let st = Sim.stats sim in
  Alcotest.(check int) "peek reclaimed the cancelled top" 0
    st.Sim.cancelled_in_set;
  Sim.run sim;
  Alcotest.(check int) "survivors all fired" 9 !count

let test_compaction_trigger backend =
  let sim = Sim.create ~backend () in
  let ids =
    Array.init 256 (fun i ->
        Sim.schedule sim ~at:(float_of_int (i + 1)) ignore)
  in
  (* cancel 3 of every 4: cancelled (192) overtakes live (64) well past
     the compaction threshold *)
  Array.iteri (fun i id -> if i mod 4 <> 0 then Sim.cancel sim id) ids;
  let st = Sim.stats sim in
  Alcotest.(check bool) "compaction ran" true (st.Sim.compactions >= 1);
  Alcotest.(check bool) "garbage bounded by live population" true
    (st.Sim.cancelled_in_set <= st.Sim.live);
  Alcotest.(check int) "live = pending" (Sim.pending sim) st.Sim.live;
  Sim.run sim;
  Alcotest.(check int) "only survivors fired" 64 (Sim.events_processed sim)

let test_stats_backend backend =
  let sim = Sim.create ~backend () in
  let st = Sim.stats sim in
  Alcotest.(check string)
    "stats names the backend"
    (Sim.backend_name backend)
    (Sim.backend_name st.Sim.stat_backend)

(* stale ids: cancel after fire is a no-op, and must not kill an
   unrelated event that reused the slot (generation check) *)
let test_stale_cancel backend =
  let sim = Sim.create ~backend () in
  Sim.cancel sim Sim.stale_id;
  let fired = ref 0 in
  let old_id = Sim.schedule sim ~at:1.0 (fun () -> incr fired) in
  Sim.run sim;
  Alcotest.(check int) "fired once" 1 !fired;
  let fresh = ref false in
  ignore (Sim.schedule sim ~at:2.0 (fun () -> fresh := true));
  Sim.cancel sim old_id;
  (* the new event reuses the freed slot; the stale id must not match *)
  Alcotest.(check int) "stale cancel is a no-op" 1 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check bool) "slot-reusing event survived" true !fresh

(* a far-future outlier (clamped virtual bucket, direct-search path on the
   calendar) must not disturb near-term ordering, and must fire last *)
let test_far_future backend =
  let sim = Sim.create ~backend () in
  let log = ref [] in
  ignore (Sim.schedule sim ~at:1.0e12 (fun () -> log := "far" :: !log));
  for i = 1 to 50 do
    ignore
      (Sim.schedule sim ~at:(float_of_int i) (fun () -> log := "near" :: !log))
  done;
  Sim.run ~until:100.0 sim;
  Alcotest.(check int) "near events fired" 50 (List.length !log);
  ignore (Sim.schedule sim ~at:200.0 (fun () -> log := "late" :: !log));
  Sim.run sim;
  (* log is newest-first: the outlier fired last, preceded by the late add *)
  Alcotest.(check (list string))
    "outlier fires last" [ "far"; "late" ]
    (match !log with a :: b :: _ -> [ a; b ] | _ -> []);
  Alcotest.(check int) "every event fired" 52 (List.length !log);
  Alcotest.(check (float 0.0)) "clock at outlier" 1.0e12 (Sim.now sim)

let test_calendar_resizes () =
  let sim = Sim.create ~backend:Sim.Calendar () in
  for i = 1 to 1000 do
    ignore (Sim.schedule sim ~at:(0.01 *. float_of_int i) ignore)
  done;
  let st = Sim.stats sim in
  Alcotest.(check bool) "grew past the initial bucket count" true
    (st.Sim.set_capacity > 16 && st.Sim.resizes >= 1);
  Sim.run sim;
  Alcotest.(check int) "all fired" 1000 (Sim.events_processed sim);
  let st' = Sim.stats sim in
  Alcotest.(check bool) "shrank while draining" true
    (st'.Sim.resizes > st.Sim.resizes)

let suite_qcheck =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xe5e7; 31 |]))
    [ prop_lockstep; prop_lockstep_churn ]

let () =
  Alcotest.run "event_set"
    [
      ("lockstep", suite_qcheck);
      ( "run-until",
        both "horizon boundary" test_until_boundary
        @ both "empty horizon" test_until_empty
        @ both "cancelled top reclaimed" test_cancelled_top_reclaimed );
      ( "occupancy",
        both "compaction trigger" test_compaction_trigger
        @ both "stats backend" test_stats_backend
        @ both "stale cancel" test_stale_cancel );
      ( "calendar",
        both "far-future outlier" test_far_future
        @ [ Alcotest.test_case "adaptive resize" `Quick test_calendar_resizes ]
      );
    ]
