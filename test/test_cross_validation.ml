(* Cross-validation suites: independent implementations of the same
   mathematical objects must agree.

   1. Gps_clock (lazy virtual-time tracker used by WFQ/WF2Q) vs Fluid.Gps
      (event-driven fluid integrator): Property 1 — the relative finish
      order fixed by virtual stamps equals the fluid system's actual finish
      order.
   2. Hier (packet H-PFQ) vs Fluid.Hgps (ideal H-GPS): per-node cumulative
      service on saturated random trees differs by at most a few packets
      (the B-WFI promise, eq. 11). *)

module Q = QCheck
module Sim = Engine.Simulator
module CT = Hpfq.Class_tree

(* ---------- 1. Property 1: stamp order = fluid finish order ---------- *)

let arrivals_gen =
  let open Q.Gen in
  let* n = int_range 2 5 in
  let* packets =
    list_size (int_range 3 40)
      (let* session = int_range 0 (n - 1) in
       let* at = float_bound_inclusive 3.0 in
       let* size = float_range 0.2 2.0 in
       return (at, session, size))
  in
  return (n, packets)

let prop_property1 =
  Q.Test.make ~count:80 ~name:"Property 1: virtual finish order = fluid finish order"
    (Q.make arrivals_gen)
    (fun (n, packets) ->
      let rates = List.init n (fun _ -> 1.0 /. float_of_int n) in
      (* independent implementation A: lazy virtual-time tracker *)
      let clock = Sched.Gps_clock.create ~rate:1.0 in
      List.iter (fun r -> ignore (Sched.Gps_clock.add_session clock ~rate:r)) rates;
      (* independent implementation B: fluid integrator *)
      let finishes = Hashtbl.create 64 in
      let fluid =
        Fluid.Gps.create ~rate:1.0 ~session_rates:rates
          ~on_packet_finish:(fun pkt t ->
            Hashtbl.replace finishes (pkt.Net.Packet.flow, pkt.Net.Packet.seq) t)
          ()
      in
      let sorted = List.stable_sort compare packets in
      let seqs = Array.make n 0 in
      let stamped =
        List.map
          (fun (at, session, size) ->
            let epoch = Sched.Gps_clock.epoch clock ~now:at in
            let _, finish =
              Sched.Gps_clock.on_arrival clock ~now:at ~session ~size_bits:size
            in
            ignore (Fluid.Gps.arrive fluid ~at ~session ~size_bits:size);
            seqs.(session) <- seqs.(session) + 1;
            ((session, seqs.(session)), epoch, finish))
          sorted
      in
      Fluid.Gps.advance fluid ~to_:1000.0;
      (* within each epoch, sorting by virtual finish must equal sorting by
         fluid finish time (ties broken identically) *)
      let by_epoch = Hashtbl.create 8 in
      List.iter
        (fun (key, epoch, vf) ->
          let cur = Option.value (Hashtbl.find_opt by_epoch epoch) ~default:[] in
          Hashtbl.replace by_epoch epoch ((key, vf) :: cur))
        stamped;
      Hashtbl.fold
        (fun _epoch entries ok ->
          ok
          &&
          let virtual_order =
            List.stable_sort (fun (_, a) (_, b) -> compare a b) entries
            |> List.map fst
          in
          let fluid_order =
            List.stable_sort
              (fun (k1, _) (k2, _) ->
                compare (Hashtbl.find finishes k1) (Hashtbl.find finishes k2))
              entries
            |> List.map fst
          in
          (* allow permutations among (near-)simultaneous fluid finishers *)
          let rec agree vs fs =
            match (vs, fs) with
            | [], [] -> true
            | v :: vs', f :: fs' ->
              (v = f
               || Float.abs (Hashtbl.find finishes v -. Hashtbl.find finishes f) < 1e-9)
              && agree vs' fs'
            | _ -> false
          in
          agree virtual_order fluid_order)
        by_epoch true)

(* ---------- 2. H-WF2Q+ tracks fluid H-GPS per node ---------- *)

let tree_gen =
  let open Q.Gen in
  (* a random 3-level tree: root -> 2-3 groups -> 2-3 leaves each *)
  let* group_count = int_range 2 3 in
  let* groups =
    list_repeat group_count
      (let* leaf_count = int_range 2 3 in
       let* weights = list_repeat leaf_count (float_range 0.2 1.0) in
       let* group_weight = float_range 0.2 1.0 in
       return (group_weight, weights))
  in
  return groups

let build_tree groups =
  let total_group = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 groups in
  let leaves = ref [] in
  let nodes =
    List.mapi
      (fun gi (gw, weights) ->
        let group_rate = gw /. total_group in
        let total_leaf = List.fold_left ( +. ) 0.0 weights in
        let children =
          List.mapi
            (fun li w ->
              let name = Printf.sprintf "g%d-l%d" gi li in
              leaves := name :: !leaves;
              CT.leaf name ~rate:(group_rate *. w /. total_leaf))
            weights
        in
        CT.node (Printf.sprintf "g%d" gi) ~rate:group_rate children)
      groups
  in
  (CT.node "root" ~rate:1.0 nodes, List.rev !leaves)

let prop_hier_tracks_fluid =
  Q.Test.make ~count:40 ~name:"saturated H-WF2Q+ tracks H-GPS per node (B-WFI)"
    (Q.make tree_gen)
    (fun groups ->
      let spec, leaves = build_tree groups in
      let horizon = 200.0 in
      (* packet system: every leaf continuously backlogged with unit packets *)
      let sim = Sim.create () in
      let h =
        Hpfq.Hier.create ~sim ~spec
          ~make_policy:(Hpfq.Hier.uniform Hpfq.Disciplines.wf2q_plus) ()
      in
      List.iter
        (fun name ->
          let leaf = Hpfq.Hier.leaf_id h name in
          ignore
            (Sim.schedule sim ~at:0.0 (fun () ->
                 for _ = 1 to int_of_float horizon + 16 do
                   ignore (Hpfq.Hier.inject h ~leaf ~size_bits:1.0)
                 done)))
        leaves;
      Sim.run ~until:horizon sim;
      (* fluid system: same leaves persistent *)
      let fluid = Fluid.Hgps.create ~spec () in
      List.iter
        (fun name ->
          Fluid.Hgps.set_persistent fluid ~at:0.0 ~leaf:(Fluid.Hgps.leaf_id fluid name) true)
        leaves;
      Fluid.Hgps.advance fluid ~to_:horizon;
      (* every node's cumulative service within a few packets of fluid *)
      let tolerance = 4.0 (* packets; B-WFI of a 3-level tree with L=1 *) in
      let rec check node =
        let name = CT.name node in
        let packet_w = Hpfq.Hier.departed_bits h ~node:name in
        let fluid_w = Fluid.Hgps.served_bits fluid ~node:name in
        Float.abs (packet_w -. fluid_w) <= tolerance
        && List.for_all check (CT.children node)
      in
      check spec)

(* ---------- 3. Server vs Hier on shared one-level workload across all
   disciplines (spot equivalence beyond WF2Q+) ---------- *)

let prop_flat_equivalence_all_disciplines =
  let factories =
    [ Hpfq.Disciplines.wfq; Hpfq.Disciplines.scfq; Hpfq.Disciplines.virtual_clock ]
  in
  List.map
    (fun factory ->
      Q.Test.make ~count:25
        ~name:("flat Hier = Server for " ^ factory.Sched.Sched_intf.kind)
        (Q.make arrivals_gen)
        (fun (n, packets) ->
          let rates = List.init n (fun _ -> 1.0 /. float_of_int n) in
          let run_server () =
            let sim = Sim.create () in
            let log = ref [] in
            let server =
              Hpfq.Server.create ~sim ~rate:1.0
                ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
                ~on_depart:(fun p t -> log := (p.Net.Packet.flow, p.Net.Packet.seq, t) :: !log)
                ()
            in
            List.iter (fun r -> ignore (Hpfq.Server.add_session server ~rate:r ())) rates;
            List.iter
              (fun (at, s, z) ->
                ignore
                  (Sim.schedule sim ~at (fun () ->
                       ignore (Hpfq.Server.inject server ~session:s ~size_bits:z))))
              packets;
            Sim.run sim;
            List.rev !log
          in
          let run_hier () =
            let sim = Sim.create () in
            let log = ref [] in
            let spec =
              CT.node "link" ~rate:1.0
                (List.mapi (fun i r -> CT.leaf (string_of_int i) ~rate:r) rates)
            in
            let h =
              Hpfq.Hier.create ~sim ~spec ~make_policy:(Hpfq.Hier.uniform factory)
                ~on_depart:(fun p ~leaf t ->
                  log := (int_of_string leaf, p.Net.Packet.seq, t) :: !log)
                ()
            in
            let ids = Array.init n (fun i -> Hpfq.Hier.leaf_id h (string_of_int i)) in
            List.iter
              (fun (at, s, z) ->
                ignore
                  (Sim.schedule sim ~at (fun () ->
                       ignore (Hpfq.Hier.inject h ~leaf:ids.(s) ~size_bits:z))))
              packets;
            Sim.run sim;
            List.rev !log
          in
          run_server () = run_hier ()))
    factories

let suite =
  List.map QCheck_alcotest.to_alcotest
    ([ prop_property1; prop_hier_tracks_fluid ] @ prop_flat_equivalence_all_disciplines)

let () = Alcotest.run "cross_validation" [ ("qcheck", suite) ]
