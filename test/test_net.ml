(* Packet and FIFO primitives. *)

let mk ?(flow = 0) ?(seq = 1) ?(bits = 100.0) ?(at = 0.0) () =
  Net.Packet.make ~flow ~seq ~size_bits:bits ~arrival:at ()

let test_packet_uid_unique () =
  let a = mk () and b = mk () in
  Alcotest.(check bool) "uids differ" true (a.Net.Packet.uid <> b.Net.Packet.uid)

let test_packet_rejects_empty () =
  Alcotest.(check bool) "zero size rejected" true
    (try
       ignore (mk ~bits:0.0 ());
       false
     with Invalid_argument _ -> true)

(* Fifos hold pool handles; each test gets its own arena. *)
let alloc pool ?(seq = 1) ?(bits = 100.0) () =
  Net.Packet_pool.alloc pool ~flow:0 ~seq ~size_bits:bits ~arrival:0.0

let test_fifo_order_and_accounting () =
  let pool = Net.Packet_pool.create () in
  let q = Net.Fifo.create ~pool () in
  let p1 = alloc pool ~seq:1 ~bits:100.0 () in
  let p2 = alloc pool ~seq:2 ~bits:50.0 () in
  Alcotest.(check bool) "push1" true (Net.Fifo.push q p1);
  Alcotest.(check bool) "push2" true (Net.Fifo.push q p2);
  Alcotest.(check (float 1e-9)) "bits" 150.0 (Net.Fifo.bits q);
  Alcotest.(check int) "length" 2 (Net.Fifo.length q);
  let p = Net.Fifo.pop_exn q in
  Alcotest.(check int) "FIFO order" 1 (Net.Packet_pool.seq pool p);
  Alcotest.(check (float 1e-9)) "bits after pop" 50.0 (Net.Fifo.bits q)

let test_fifo_drop_tail () =
  let pool = Net.Packet_pool.create () in
  let q = Net.Fifo.create ~capacity_bits:120.0 ~pool () in
  Alcotest.(check bool) "fits" true (Net.Fifo.push q (alloc pool ~bits:100.0 ()));
  Alcotest.(check bool)
    "overflow dropped" false
    (Net.Fifo.push q (alloc pool ~bits:100.0 ()));
  Alcotest.(check int) "drop count" 1 (Net.Fifo.drops q);
  Alcotest.(check int) "queue intact" 1 (Net.Fifo.length q);
  Alcotest.(check bool)
    "small one still fits" true
    (Net.Fifo.push q (alloc pool ~bits:20.0 ()))

let test_fifo_clear () =
  let pool = Net.Packet_pool.create () in
  let q = Net.Fifo.create ~pool () in
  ignore (Net.Fifo.push q (alloc pool ()));
  Net.Fifo.clear q;
  Alcotest.(check bool) "empty" true (Net.Fifo.is_empty q);
  Alcotest.(check (float 1e-9)) "bits zero" 0.0 (Net.Fifo.bits q)

let test_fifo_empty_raises () =
  let pool = Net.Packet_pool.create () in
  let q = Net.Fifo.create ~pool () in
  Alcotest.(check bool) "pop_exn raises" true
    (try
       ignore (Net.Fifo.pop_exn q);
       false
     with Queue.Empty -> true);
  Alcotest.(check bool) "peek_exn raises" true
    (try
       ignore (Net.Fifo.peek_exn q);
       false
     with Queue.Empty -> true)

let test_fifo_ring_growth () =
  (* push enough to force several ring doublings past the initial capacity,
     interleaved with pops so the ring wraps *)
  let pool = Net.Packet_pool.create () in
  let q = Net.Fifo.create ~pool () in
  let n = 1000 in
  let popped = ref 0 in
  for i = 1 to n do
    ignore (Net.Fifo.push q (alloc pool ~seq:i ~bits:1.0 ()) : bool);
    if i mod 3 = 0 then begin
      incr popped;
      let p = Net.Fifo.pop_exn q in
      Alcotest.(check int) "wrap order" !popped (Net.Packet_pool.seq pool p);
      Net.Packet_pool.free pool p
    end
  done;
  Alcotest.(check int) "length" (n - !popped) (Net.Fifo.length q);
  for i = !popped + 1 to n do
    let p = Net.Fifo.pop_exn q in
    Alcotest.(check int) "drain order" i (Net.Packet_pool.seq pool p);
    Net.Packet_pool.free pool p
  done;
  Alcotest.(check bool) "empty" true (Net.Fifo.is_empty q);
  Alcotest.(check (float 1e-9)) "bits zero" 0.0 (Net.Fifo.bits q)

let () =
  Alcotest.run "net"
    [
      ( "packet",
        [
          Alcotest.test_case "uid unique" `Quick test_packet_uid_unique;
          Alcotest.test_case "rejects empty" `Quick test_packet_rejects_empty;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order and accounting" `Quick test_fifo_order_and_accounting;
          Alcotest.test_case "drop tail" `Quick test_fifo_drop_tail;
          Alcotest.test_case "clear" `Quick test_fifo_clear;
          Alcotest.test_case "empty raises" `Quick test_fifo_empty_raises;
          Alcotest.test_case "ring growth and wrap" `Quick test_fifo_ring_growth;
        ] );
    ]
