(* Packet and FIFO primitives. *)

let mk ?(flow = 0) ?(seq = 1) ?(bits = 100.0) ?(at = 0.0) () =
  Net.Packet.make ~flow ~seq ~size_bits:bits ~arrival:at ()

let test_packet_uid_unique () =
  let a = mk () and b = mk () in
  Alcotest.(check bool) "uids differ" true (a.Net.Packet.uid <> b.Net.Packet.uid)

let test_packet_rejects_empty () =
  Alcotest.(check bool) "zero size rejected" true
    (try
       ignore (mk ~bits:0.0 ());
       false
     with Invalid_argument _ -> true)

let test_fifo_order_and_accounting () =
  let q = Net.Fifo.create () in
  let p1 = mk ~seq:1 ~bits:100.0 () and p2 = mk ~seq:2 ~bits:50.0 () in
  Alcotest.(check bool) "push1" true (Net.Fifo.push q p1);
  Alcotest.(check bool) "push2" true (Net.Fifo.push q p2);
  Alcotest.(check (float 1e-9)) "bits" 150.0 (Net.Fifo.bits q);
  Alcotest.(check int) "length" 2 (Net.Fifo.length q);
  (match Net.Fifo.pop q with
  | Some p -> Alcotest.(check int) "FIFO order" 1 p.Net.Packet.seq
  | None -> Alcotest.fail "pop");
  Alcotest.(check (float 1e-9)) "bits after pop" 50.0 (Net.Fifo.bits q)

let test_fifo_drop_tail () =
  let q = Net.Fifo.create ~capacity_bits:120.0 () in
  Alcotest.(check bool) "fits" true (Net.Fifo.push q (mk ~bits:100.0 ()));
  Alcotest.(check bool) "overflow dropped" false (Net.Fifo.push q (mk ~bits:100.0 ()));
  Alcotest.(check int) "drop count" 1 (Net.Fifo.drops q);
  Alcotest.(check int) "queue intact" 1 (Net.Fifo.length q);
  Alcotest.(check bool) "small one still fits" true (Net.Fifo.push q (mk ~bits:20.0 ()))

let test_fifo_clear () =
  let q = Net.Fifo.create () in
  ignore (Net.Fifo.push q (mk ()));
  Net.Fifo.clear q;
  Alcotest.(check bool) "empty" true (Net.Fifo.is_empty q);
  Alcotest.(check (float 1e-9)) "bits zero" 0.0 (Net.Fifo.bits q)

let () =
  Alcotest.run "net"
    [
      ( "packet",
        [
          Alcotest.test_case "uid unique" `Quick test_packet_uid_unique;
          Alcotest.test_case "rejects empty" `Quick test_packet_rejects_empty;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order and accounting" `Quick test_fifo_order_and_accounting;
          Alcotest.test_case "drop tail" `Quick test_fifo_drop_tail;
          Alcotest.test_case "clear" `Quick test_fifo_clear;
        ] );
    ]
