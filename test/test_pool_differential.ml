(* Pooled-vs-boxed packet-plane differential (the tentpole's determinism
   proof): the zero-allocation pooled plane must be *byte-equal* to the
   boxed plane it replaced -- same departure order and times, same drop
   log, same per-node W_n / T_n / V clocks -- on random trees with
   bursts, drop-tail overflow and leaf churn.

   The oracle is a verbatim pre-pool snapshot of [Net.Fifo] (a boxed
   [Packet.t Queue.t]) and of the generic [Hier] engine built on it,
   embedded below as [Bfifo] / [Bhier]. Every pooled engine -- generic,
   flat, and the subtree-sharded engine at epoch = 1 -- replays each
   scenario against that oracle with exact structural equality. *)

module Q = QCheck
module Sim = Engine.Simulator
module CT = Hpfq.Class_tree
module HG = Hpfq.Hier
module HF = Hpfq.Hier_flat
module ST = Shard.Subtree

let wf2q_plus = Hpfq.Disciplines.wf2q_plus

(* ---- the boxed oracle: pre-pool Fifo and Hier, frozen ---- *)

module Bfifo = struct
  [@@@ocaml.warning "-32"]

  type t = {
    q : Net.Packet.t Queue.t;
    capacity_bits : float;
    mutable bits : float;
    mutable drops : int;
  }
  
  let create ?(capacity_bits = infinity) () =
    if capacity_bits <= 0.0 then invalid_arg "Fifo.create: capacity must be positive";
    { q = Queue.create (); capacity_bits; bits = 0.0; drops = 0 }
  
  let push t p =
    if t.bits +. p.Net.Packet.size_bits > t.capacity_bits then begin
      t.drops <- t.drops + 1;
      false
    end
    else begin
      Queue.push p t.q;
      t.bits <- t.bits +. p.Net.Packet.size_bits;
      true
    end
  
  let pop t =
    match Queue.take_opt t.q with
    | None -> None
    | Some p ->
      t.bits <- t.bits -. p.Net.Packet.size_bits;
      if Queue.is_empty t.q then t.bits <- 0.0;
      Some p
  
  let peek t = Queue.peek_opt t.q
  let peek_exn t = Queue.peek t.q
  
  let drop_head t =
    let p = Queue.pop t.q in
    t.bits <- t.bits -. p.Net.Packet.size_bits;
    if Queue.is_empty t.q then t.bits <- 0.0
  let length t = Queue.length t.q
  let bits t = t.bits
  let is_empty t = Queue.is_empty t.q
  let drops t = t.drops
  
  let clear t =
    Queue.clear t.q;
    t.bits <- 0.0
end

module Bhier = struct
  [@@@ocaml.warning "-32-69"]

  module Class_tree = Hpfq.Class_tree
  open Sched

  
  let log_src = Logs.Src.create "test.boxed.hier" ~doc:"H-PFQ hierarchical server"
  
  module Log = (val Logs.src_log log_src : Logs.LOG)
  
  type leaf = int
  
  type kind =
    | Leaf_node of { fifo : Bfifo.t; mutable next_seq : int }
    | Interior of { policy : Sched_intf.t }
  
  (* Leaf lifecycle: [`Draining] keeps its schedule place until the queue
     empties; [`Drop_pending] is a `Drop close requested while the leaf's
     head was on the wire — it completes at that packet's departure. *)
  type lifecycle = [ `Open | `Draining | `Drop_pending | `Closed ]
  
  type node = {
    id : int;
    name : string;
    mutable rate : float;
    level : int;
    parent : int; (* -1 for root *)
    mutable children : int array;
    kind : kind;
    mutable session_in_parent : int;
    mutable handle_in_parent : Session_handle.t;
    mutable lifecycle : lifecycle;
    mutable busy : bool;
    mutable logical : Net.Packet.t option; (* Q_n: head of this subtree *)
    mutable active_child : int;               (* node id, -1 when none *)
  }
  
  type t = {
    sim : Engine.Simulator.t;
    nodes : node array;
    (* Per-node reference clocks T_n and work counters W_n live in plain
       float arrays indexed by node id, not in the (mixed) node records:
       both are written on every packet along the whole leaf-to-root path,
       and mutable floats in a mixed record would box on each store. *)
    tn : float array;                         (* reference time T_n, post-dated *)
    departed_bits : float array;              (* W_n(0, now) *)
    (* Each leaf's leaf-to-root path (leaf first, root last), precomputed at
       create: the W_n credit walk in [complete_transmission] runs once per
       transmitted packet, and an array iteration beats re-deriving the path
       by parent-chasing recursion every time. Interior ids hold [||]. *)
    paths : int array array;
    root : int;
    by_name : (string, int) Hashtbl.t;
    leaf_list : (string * int) list;
    root_clock : [ `Real_time | `Reference_time ];
    mutable on_depart : Net.Packet.t -> leaf:string -> float -> unit;
    mutable on_drop : Net.Packet.t -> leaf:string -> float -> unit;
    mutable on_transmit_start : Net.Packet.t -> leaf:string -> float -> unit;
    mutable link_busy : bool;
    mutable drops : int;
    (* The single packet on the wire (the link serves one packet at a time),
       plus a preallocated completion callback so steady-state transmission
       scheduling allocates nothing per packet. *)
    mutable in_flight : Net.Packet.t option;
    mutable complete_cb : unit -> unit;
    (* Burst-drain state (see Server): while a drain activation runs
       ([in_batch]), [start_transmission] records its commitment here
       instead of scheduling the completion event — [in_flight] already
       carries the committed packet, so only the due time needs a slot. *)
    mutable burst_max : int;
    mutable in_batch : bool;
    mutable batch_has : bool;
    mutable batch_due : float;
  }
  
  let uniform factory ~level:_ ~name:_ ~rate = factory.Sched_intf.make ~rate
  
  let nop_leaf_cb _ ~leaf:_ _ = ()
  
  let is_root t n = n.id = t.root
  
  (* "now" as seen by node [n]'s own policy: its reference time, except that
     the root may run on real time (see .mli). *)
  let node_now t n =
    if is_root t n && t.root_clock = `Real_time then Engine.Simulator.now t.sim
    else t.tn.(n.id)
  
  let policy_of n =
    match n.kind with
    | Interior { policy } -> policy
    | Leaf_node _ -> invalid_arg "Hier: leaf has no policy"
  
  (* -- The three pseudocode procedures ------------------------------------ *)
  
  let rec restart_node t n =
    let policy = policy_of n in
    let now = node_now t n in
    match policy.Sched_intf.select ~now with
    | Some session ->
      let child = t.nodes.(n.children.(session)) in
      let pkt =
        match child.logical with
        | Some p -> p
        | None -> invalid_arg "Hier: policy selected a child with empty logical queue"
      in
      n.active_child <- child.id;
      n.logical <- Some pkt;
      (* RESTART-NODE line 13: post-date this node's reference clock *)
      t.tn.(n.id) <- t.tn.(n.id) +. (pkt.Net.Packet.size_bits /. n.rate);
      let was_busy = n.busy in
      n.busy <- true;
      if is_root t n then start_transmission t
      else begin
        let q = t.nodes.(n.parent) in
        let q_now = node_now t q in
        let bits = pkt.Net.Packet.size_bits in
        (* the committed head is a fresh logical packet in the parent's system *)
        (policy_of q).Sched_intf.arrive ~now:q_now ~session:n.session_in_parent ~size_bits:bits;
        if was_busy then
          (* line 8: s_n <- f_n *)
          (policy_of q).Sched_intf.requeue ~now:q_now ~session:n.session_in_parent ~head_bits:bits
        else
          (* line 9: s_n <- max(f_n, V_q) *)
          (policy_of q).Sched_intf.backlog ~now:q_now ~session:n.session_in_parent ~head_bits:bits;
        (* line 17: keep restarting upward while the parent has no head *)
        if q.logical = None then restart_node t q
      end
    | None ->
      n.active_child <- -1;
      let was_busy = n.busy in
      n.busy <- false;
      if not (is_root t n) then begin
        let q = t.nodes.(n.parent) in
        if was_busy then
          (policy_of q).Sched_intf.set_idle ~now:(node_now t q) ~session:n.session_in_parent;
        if was_busy && q.logical = None then restart_node t q
      end
  
  and start_transmission t =
    if not t.link_busy then begin
      let root = t.nodes.(t.root) in
      match root.logical with
      | None -> ()
      | Some pkt ->
        t.link_busy <- true;
        (* reuse [root.logical]'s option cell and the preallocated callback:
           no closure or option allocation per transmitted packet *)
        t.in_flight <- root.logical;
        if t.on_transmit_start != nop_leaf_cb then
          t.on_transmit_start pkt ~leaf:t.nodes.(pkt.Net.Packet.flow).name
            (Engine.Simulator.now t.sim);
        let duration = pkt.Net.Packet.size_bits /. root.rate in
        (* [now +. duration] is the exact float [schedule_after ~delay]
           computes — batched and per-packet fire times must agree bitwise. *)
        let due = Engine.Simulator.now t.sim +. duration in
        if t.in_batch then begin
          t.batch_has <- true;
          t.batch_due <- due
        end
        else ignore (Engine.Simulator.schedule t.sim ~at:due t.complete_cb)
    end
  
  (* One event activation drains up to [burst_max] consecutive departures.
     The next departure runs inline only when it would have been the very
     next event anyway: within the burst cap, not past the horizon of the
     enclosing [run ~until] ([<=]: an event exactly at the horizon fires),
     and strictly before the earliest pending event (at equal times the
     pending event carries the smaller schedule seq and wins the FIFO
     tie-break, so it must fire first). *)
  and drain t pkt0 =
    let sim = t.sim in
    let steps = ref 1 in
    let pkt = ref pkt0 in
    let continue = ref true in
    while !continue do
      t.in_batch <- true;
      t.batch_has <- false;
      complete_transmission t !pkt;
      t.in_batch <- false;
      if not t.batch_has then continue := false
      else begin
        let due = t.batch_due in
        if
          !steps < t.burst_max
          && due <= Engine.Simulator.run_horizon sim
          && due < Engine.Simulator.peek_time sim
        then begin
          Engine.Simulator.advance_clock sim ~to_:due;
          incr steps;
          match t.in_flight with
          | Some p ->
            t.in_flight <- None;
            pkt := p
          | None -> invalid_arg "Hier: drain lost the in-flight packet"
        end
        else begin
          ignore (Engine.Simulator.schedule sim ~at:due t.complete_cb);
          continue := false
        end
      end
    done
  
  and complete_transmission t pkt =
    t.link_busy <- false;
    let now = Engine.Simulator.now t.sim in
    (* account W_n along the transmitted packet's precomputed leaf-to-root path *)
    let leaf = t.nodes.(pkt.Net.Packet.flow) in
    let path = t.paths.(leaf.id) in
    let bits = pkt.Net.Packet.size_bits in
    for k = 0 to Array.length path - 1 do
      t.departed_bits.(path.(k)) <- t.departed_bits.(path.(k)) +. bits
    done;
    t.on_depart pkt ~leaf:leaf.name now;
    reset_path t
  
  (* RESET-PATH: walk down the active path clearing logical queues, dequeue
     the transmitted packet at its leaf, then restart upward. *)
  and reset_path t =
    let rec descend n =
      n.logical <- None;
      match n.kind with
      | Interior _ ->
        let c = n.active_child in
        n.active_child <- -1;
        if c < 0 then invalid_arg "Hier: reset_path lost the active child";
        descend t.nodes.(c)
      | Leaf_node { fifo; _ } ->
        (match Bfifo.pop fifo with
        | Some _served -> ()
        | None -> invalid_arg "Hier: transmitted packet missing from its leaf queue");
        let q = t.nodes.(n.parent) in
        let q_now = node_now t q in
        (match n.lifecycle with
        | `Drop_pending ->
          (* a `Drop close was deferred while this leaf's head held the wire:
             discard the rest of the queue and finish the close now *)
          drop_queue t n fifo;
          (policy_of q).Sched_intf.set_idle ~now:q_now ~session:n.session_in_parent;
          (policy_of q).Sched_intf.close_session ~now:q_now ~policy:`Drop
            n.handle_in_parent;
          n.lifecycle <- `Closed
        | `Open | `Draining | `Closed -> (
          match Bfifo.peek fifo with
          | Some next ->
            n.logical <- Some next;
            (policy_of q).Sched_intf.requeue ~now:q_now ~session:n.session_in_parent
              ~head_bits:next.Net.Packet.size_bits
          | None ->
            (* a draining leaf's pool slot frees inside the policy's set_idle *)
            (policy_of q).Sched_intf.set_idle ~now:q_now ~session:n.session_in_parent;
            if n.lifecycle = `Draining then n.lifecycle <- `Closed));
        restart_node t q
    in
    descend t.nodes.(t.root)
  
  and drop_queue t n fifo =
    let now = Engine.Simulator.now t.sim in
    let rec loop () =
      match Bfifo.pop fifo with
      | Some p ->
        t.drops <- t.drops + 1;
        t.on_drop p ~leaf:n.name now;
        loop ()
      | None -> ()
    in
    loop ()
  
  let create ~sim ~spec ~make_policy ?(root_clock = `Real_time) ?on_depart ?on_drop
      ?(burst_max = 1) () =
    let on_depart = Option.value on_depart ~default:nop_leaf_cb in
    let on_drop = Option.value on_drop ~default:nop_leaf_cb in
    if burst_max < 1 then invalid_arg "Hier.create: burst_max must be >= 1";
    (match Class_tree.validate spec with
    | Ok () -> ()
    | Error errors ->
      invalid_arg ("Hier.create: invalid tree: " ^ String.concat "; " errors));
    let nodes = ref [] in
    let counter = ref 0 in
    let by_name = Hashtbl.create 16 in
    let leaf_list = ref [] in
    let rec build ~level ~parent spec =
      let id = !counter in
      incr counter;
      let name = Class_tree.name spec and rate = Class_tree.rate spec in
      let kind =
        match spec with
        | Class_tree.Leaf { queue_capacity_bits; _ } ->
          leaf_list := (name, id) :: !leaf_list;
          Leaf_node
            { fifo = Bfifo.create ?capacity_bits:queue_capacity_bits (); next_seq = 1 }
        | Class_tree.Node _ -> Interior { policy = make_policy ~level ~name ~rate }
      in
      let n =
        {
          id;
          name;
          rate;
          level;
          parent;
          children = [||];
          kind;
          session_in_parent = -1;
          handle_in_parent = Session_handle.of_int_unsafe (-1);
          lifecycle = `Open;
          busy = false;
          logical = None;
          active_child = -1;
        }
      in
      nodes := n :: !nodes;
      Hashtbl.replace by_name name id;
      let child_ids =
        List.map (fun c -> (build ~level:(level + 1) ~parent:id c).id) (Class_tree.children spec)
      in
      n.children <- Array.of_list child_ids;
      n
    in
    let root_node = build ~level:0 ~parent:(-1) spec in
    let arr = Array.make !counter root_node in
    List.iter (fun n -> arr.(n.id) <- n) !nodes;
    (* register each child as a session of its parent's policy *)
    Array.iter
      (fun n ->
        match n.kind with
        | Interior { policy } ->
          Array.iter
            (fun cid ->
              let child = arr.(cid) in
              let h = policy.Sched_intf.open_session ~rate:child.rate in
              child.handle_in_parent <- h;
              child.session_in_parent <- policy.Sched_intf.session_of_handle h)
            n.children
        | Leaf_node _ -> ())
      arr;
    Log.info (fun m ->
        m "created H-PFQ server: %d nodes, %d leaves, root rate %a" !counter
          (List.length !leaf_list) Engine.Units.pp_rate root_node.rate);
    let paths = Array.make !counter [||] in
    Array.iter
      (fun n ->
        match n.kind with
        | Interior _ -> ()
        | Leaf_node _ ->
          let path = Array.make (n.level + 1) n.id in
          let m = ref n in
          for k = 0 to n.level do
            path.(k) <- !m.id;
            if !m.parent >= 0 then m := arr.(!m.parent)
          done;
          paths.(n.id) <- path)
      arr;
    let t =
      {
        sim;
        nodes = arr;
        tn = Array.make !counter 0.0;
        departed_bits = Array.make !counter 0.0;
        paths;
        root = root_node.id;
        by_name;
        leaf_list = List.rev !leaf_list;
        root_clock;
        on_depart;
        on_drop;
        on_transmit_start = nop_leaf_cb;
        link_busy = false;
        drops = 0;
        in_flight = None;
        complete_cb = ignore;
        burst_max;
        in_batch = false;
        batch_has = false;
        batch_due = 0.0;
      }
    in
    t.complete_cb <-
      (fun () ->
        match t.in_flight with
        | Some pkt ->
          t.in_flight <- None;
          drain t pkt
        | None -> invalid_arg "Hier: transmission completed with nothing in flight");
    t
  
  (* -- Public operations --------------------------------------------------- *)
  
  let leaf_id t name =
    match Hashtbl.find_opt t.by_name name with
    | Some id -> (
      match t.nodes.(id).kind with
      | Leaf_node _ -> id
      | Interior _ ->
        invalid_arg
          (Printf.sprintf "Hier.leaf_id: %S is an interior node, not a leaf" name))
    | None -> raise Not_found
  
  let leaf_name t id = t.nodes.(id).name
  let leaf_ids t = t.leaf_list
  let unsafe_leaf_of_int (id : int) : leaf = id
  
  (* -- Leaf lifecycle ------------------------------------------------------ *)
  
  let leaf_state t ~leaf =
    match t.nodes.(leaf).lifecycle with
    | `Open -> `Open
    | `Draining | `Drop_pending -> `Closing
    | `Closed -> `Closed
  
  (* CLOSE-LEAF. The subtle case is [`Drop] of a backlogged leaf whose head
     has already been committed up the tree: the head reference may sit in
     the logical queue of every ancestor on the path (the chain built by
     RESTART-NODE line 12). Retract deterministically:
  
     + the packet on the wire is never recalled — that close defers to the
       packet's departure (handled by RESET-PATH);
     + otherwise, erase the committed chain top-down-stopping ancestors keep
       their heads (the walk stops at the first ancestor that committed a
       different packet), close the parent's session (which removes it from
       the parent's eligible/waiting structures), and RESTART the parent:
       the normal restart cascade re-selects a head at every cleared
       ancestor, issuing requeue/set_idle upward exactly as RESET-PATH does
       after a departure. *)
  let close_leaf t ~leaf ~policy =
    let n = t.nodes.(leaf) in
    let fifo =
      match n.kind with
      | Leaf_node { fifo; _ } -> fifo
      | Interior _ -> invalid_arg "Hier.close_leaf: not a leaf"
    in
    (match n.lifecycle with
    | `Open -> ()
    | `Draining | `Drop_pending | `Closed ->
      invalid_arg "Hier.close_leaf: leaf already closed or closing");
    let q = t.nodes.(n.parent) in
    let qp = policy_of q in
    let q_now = node_now t q in
    match n.logical with
    | None ->
      (* idle leaf: the parent's slot frees immediately *)
      qp.Sched_intf.close_session ~now:q_now ~policy n.handle_in_parent;
      n.lifecycle <- `Closed
    | Some pkt -> (
      match policy with
      | `Drain ->
        qp.Sched_intf.close_session ~now:q_now ~policy:`Drain n.handle_in_parent;
        n.lifecycle <- `Draining
      | `Drop ->
        let on_wire =
          t.link_busy && (match t.in_flight with Some p -> p == pkt | None -> false)
        in
        if on_wire then n.lifecycle <- `Drop_pending
        else begin
          drop_queue t n fifo;
          n.logical <- None;
          (* erase the committed chain: every ancestor whose logical head IS
             this packet committed it via RESTART-NODE *)
          let rec clear_up m =
            match m.logical with
            | Some p when p == pkt ->
              m.logical <- None;
              m.active_child <- -1;
              if not (is_root t m) then clear_up t.nodes.(m.parent)
            | Some _ | None -> ()
          in
          clear_up q;
          qp.Sched_intf.close_session ~now:q_now ~policy:`Drop n.handle_in_parent;
          n.lifecycle <- `Closed;
          (* if the parent lost its committed head, the restart cascade
             repairs it and every cleared ancestor above it *)
          if q.logical = None then restart_node t q
        end)
  
  let reopen_leaf ?rate t ~leaf =
    let n = t.nodes.(leaf) in
    (match n.kind with
    | Leaf_node _ -> ()
    | Interior _ -> invalid_arg "Hier.reopen_leaf: not a leaf");
    (match n.lifecycle with
    | `Closed -> ()
    | `Open -> invalid_arg "Hier.reopen_leaf: leaf is open"
    | `Draining | `Drop_pending -> invalid_arg "Hier.reopen_leaf: close still in progress");
    (match rate with
    | Some r ->
      if r <= 0.0 then invalid_arg "Hier.reopen_leaf: rate must be positive";
      n.rate <- r
    | None -> ());
    let q = t.nodes.(n.parent) in
    let qp = policy_of q in
    let h = qp.Sched_intf.open_session ~rate:n.rate in
    let slot = qp.Sched_intf.session_of_handle h in
    (* the policy may hand back any free slot (or, without recycling, a brand
       new one); keep the parent's slot -> child map in sync *)
    if slot >= Array.length q.children then begin
      let grown = Array.make (slot + 1) (-1) in
      Array.blit q.children 0 grown 0 (Array.length q.children);
      q.children <- grown
    end;
    q.children.(slot) <- n.id;
    n.session_in_parent <- slot;
    n.handle_in_parent <- h;
    n.lifecycle <- `Open
  
  let inject ?(mark = 0) t ~leaf ~size_bits =
    let n = t.nodes.(leaf) in
    match n.kind with
    | Interior _ -> invalid_arg "Hier.inject: not a leaf"
    | Leaf_node _ when n.lifecycle <> `Open ->
      invalid_arg "Hier.inject: leaf is closed"
    | Leaf_node l ->
      let now = Engine.Simulator.now t.sim in
      let pkt =
        Net.Packet.make ~mark ~flow:leaf ~seq:l.next_seq ~size_bits ~arrival:now ()
      in
      l.next_seq <- l.next_seq + 1;
      if not (Bfifo.push l.fifo pkt) then begin
        t.drops <- t.drops + 1;
        Log.debug (fun m ->
            m "drop at leaf %s: %g bits, queue %g bits full" n.name size_bits
              (Bfifo.bits l.fifo));
        t.on_drop pkt ~leaf:n.name now;
        pkt
      end
      else begin
        let q = t.nodes.(n.parent) in
        let q_now = node_now t q in
        (policy_of q).Sched_intf.arrive ~now:q_now ~session:n.session_in_parent ~size_bits;
        (match n.logical with
        | Some _ -> () (* ARRIVE lines 2-3: subtree already has a head *)
        | None ->
          n.logical <- Some pkt;
          (policy_of q).Sched_intf.backlog ~now:q_now ~session:n.session_in_parent
            ~head_bits:size_bits;
          if not q.busy then restart_node t q);
        pkt
      end
  
  (* Batched arrival: [count] same-size packets stamped with a single clock
     read. The clock cannot move during injection, so the result is
     bit-identical to [count] separate injects — only the per-packet lookup
     and stamp overhead is hoisted. *)
  let inject_many ?(mark = 0) t ~leaf ~size_bits ~count =
    if count < 0 then invalid_arg "Hier.inject_many: negative count";
    let n = t.nodes.(leaf) in
    match n.kind with
    | Interior _ -> invalid_arg "Hier.inject_many: not a leaf"
    | Leaf_node _ when n.lifecycle <> `Open ->
      invalid_arg "Hier.inject_many: leaf is closed"
    | Leaf_node l ->
      let now = Engine.Simulator.now t.sim in
      for _ = 1 to count do
        let pkt =
          Net.Packet.make ~mark ~flow:leaf ~seq:l.next_seq ~size_bits ~arrival:now ()
        in
        l.next_seq <- l.next_seq + 1;
        if not (Bfifo.push l.fifo pkt) then begin
          t.drops <- t.drops + 1;
          t.on_drop pkt ~leaf:n.name now
        end
        else begin
          let q = t.nodes.(n.parent) in
          let q_now = node_now t q in
          (policy_of q).Sched_intf.arrive ~now:q_now ~session:n.session_in_parent
            ~size_bits;
          match n.logical with
          | Some _ -> ()
          | None ->
            n.logical <- Some pkt;
            (policy_of q).Sched_intf.backlog ~now:q_now ~session:n.session_in_parent
              ~head_bits:size_bits;
            if not q.busy then restart_node t q
        end
      done
  
  let set_burst_max t n =
    if n < 1 then invalid_arg "Hier.set_burst_max: burst_max must be >= 1";
    t.burst_max <- n
  
  let burst_max t = t.burst_max
  
  let queue_bits t ~leaf =
    match t.nodes.(leaf).kind with
    | Leaf_node { fifo; _ } -> Bfifo.bits fifo
    | Interior _ -> invalid_arg "Hier.queue_bits: not a leaf"
  
  let node_by_name t name =
    match Hashtbl.find_opt t.by_name name with
    | Some id -> t.nodes.(id)
    | None -> raise Not_found
  
  let departed_bits t ~node = t.departed_bits.((node_by_name t node).id)
  let ref_time t ~node = t.tn.((node_by_name t node).id)
  
  let node_virtual_time t ~node =
    let n = node_by_name t node in
    (policy_of n).Sched_intf.virtual_time ~now:(node_now t n)
  
  let link_busy t = t.link_busy
  let drops t = t.drops
  
  (* -- Observability ------------------------------------------------------- *)
  
  let compose_leaf_cb f g =
    if f == nop_leaf_cb then g else fun pkt ~leaf now -> f pkt ~leaf now; g pkt ~leaf now
  
  let add_depart_hook t f = t.on_depart <- compose_leaf_cb t.on_depart f
  let add_drop_hook t f = t.on_drop <- compose_leaf_cb t.on_drop f
  let add_transmit_start_hook t f = t.on_transmit_start <- compose_leaf_cb t.on_transmit_start f
  let root_name t = t.nodes.(t.root).name
  let node_name t id = t.nodes.(id).name
  
  let iter_interior t f =
    Array.iter
      (fun n ->
        match n.kind with
        | Leaf_node _ -> ()
        | Interior { policy } ->
          f ~id:n.id ~name:n.name ~level:n.level ~children:n.children ~policy)
      t.nodes
  
  let node_count t = Array.length t.nodes
  
  let leaf_path t ~leaf =
    match t.nodes.(leaf).kind with
    | Leaf_node _ -> Array.copy t.paths.(leaf)
    | Interior _ -> invalid_arg "Hier.leaf_path: not a leaf"
  
  let set_node_observer t ~node observer =
    let n = node_by_name t node in
    (policy_of n).Sched_intf.set_observer observer
end

(* ---- random scenarios: tree + interleaved injections and leaf churn ---- *)

type op =
  | Inject of int * float (* leaf index, size_bits *)
  | Close of int * Sched.Sched_intf.close_policy
  | Reopen of int

type scenario = {
  spec : CT.t;
  leaves : string list;
  ops : (float * op) list; (* (time, op), schedule order *)
  root_ref : bool;
}

let scenario_gen rng =
  let budget = ref 40 in
  let fresh = ref 0 in
  let rec gen ~depth rate =
    decr budget;
    let name =
      let id = !fresh in
      incr fresh;
      Printf.sprintf "n%d" id
    in
    let leaf () =
      let cap =
        if Random.State.int rng 6 = 0 then Some (1.0 +. Random.State.float rng 6.0)
        else None
      in
      CT.leaf ?queue_capacity_bits:cap name ~rate
    in
    if depth >= 4 || !budget <= 0 || (depth > 0 && Random.State.int rng 3 = 0) then
      leaf ()
    else begin
      let k =
        let k = min (1 + Random.State.int rng 6) (max 1 !budget) in
        if depth = 0 then max 2 k else k
      in
      let weights = Array.init k (fun _ -> 0.2 +. Random.State.float rng 0.8) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let scale = 0.999 *. rate /. total in
      CT.node name ~rate
        (List.init k (fun i -> gen ~depth:(depth + 1) (weights.(i) *. scale)))
    end
  in
  let spec = gen ~depth:0 1.0 in
  let leaves = List.map fst (CT.leaves spec) in
  let n_leaves = List.length leaves in
  let n_ops = 1 + Random.State.int rng 140 in
  let ops =
    List.init n_ops (fun _ ->
        let at = Random.State.float rng 12.0 in
        let l = Random.State.int rng n_leaves in
        let op =
          match Random.State.int rng 10 with
          | 0 -> Close (l, if Random.State.bool rng then `Drain else `Drop)
          | 1 -> Reopen l
          | _ -> Inject (l, 0.1 +. Random.State.float rng 1.9)
        in
        (at, op))
  in
  { spec; leaves; ops; root_ref = Random.State.int rng 4 = 0 }

let print_op = function
  | Inject (l, z) -> Printf.sprintf "inj(%d,%h)" l z
  | Close (l, `Drain) -> Printf.sprintf "close_drain(%d)" l
  | Close (l, `Drop) -> Printf.sprintf "close_drop(%d)" l
  | Reopen l -> Printf.sprintf "reopen(%d)" l

let print_scenario s =
  Format.asprintf "root_ref=%b@ %a@ ops=[%s]" s.root_ref CT.pp s.spec
    (String.concat "; "
       (List.map (fun (t, o) -> Printf.sprintf "(%h,%s)" t (print_op o)) s.ops))

let rec node_names spec =
  CT.name spec :: List.concat_map node_names (CT.children spec)

let rec interior_names spec =
  if CT.is_leaf spec then []
  else CT.name spec :: List.concat_map interior_names (CT.children spec)

(* Everything observable through the public surface, exact floats. A churn
   op applied in an invalid lifecycle state raises [Invalid_argument] in
   both planes; the count of rejected ops is part of the observation, so a
   divergence in accept/reject shows up even when traces agree. *)
type observed = {
  o_departs : (string * int * float) list;
  o_drop_log : (string * int * float) list;
  o_drops : int;
  o_rejected : int;
  o_clocks : (string * float * float) list;
  o_vtimes : (string * float) list;
}

let run_observed s ~mk ~leaf_id ~apply ~observe =
  let sim = Sim.create () in
  let dep = ref [] and drp = ref [] and rejected = ref 0 in
  let on_depart pkt ~leaf t = dep := (leaf, pkt.Net.Packet.seq, t) :: !dep in
  let on_drop pkt ~leaf t = drp := (leaf, pkt.Net.Packet.seq, t) :: !drp in
  let root_clock = if s.root_ref then `Reference_time else `Real_time in
  let h = mk sim ~root_clock ~on_depart ~on_drop in
  let ids = Array.of_list (List.map (leaf_id h) s.leaves) in
  List.iter
    (fun (at, op) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             try apply h ids op with Invalid_argument _ -> incr rejected)))
    s.ops;
  Sim.run sim;
  let drops, clocks, vtimes = observe h in
  {
    o_departs = List.rev !dep;
    o_drop_log = List.rev !drp;
    o_drops = drops;
    o_rejected = !rejected;
    o_clocks = clocks;
    o_vtimes = vtimes;
  }

let replay_boxed s =
  run_observed s
    ~mk:(fun sim ~root_clock ~on_depart ~on_drop ->
      Bhier.create ~sim ~spec:s.spec
        ~make_policy:(Bhier.uniform wf2q_plus)
        ~root_clock ~on_depart ~on_drop ())
    ~leaf_id:Bhier.leaf_id
    ~apply:(fun h ids op ->
      match op with
      | Inject (l, size_bits) -> ignore (Bhier.inject h ~leaf:ids.(l) ~size_bits)
      | Close (l, policy) -> Bhier.close_leaf h ~leaf:ids.(l) ~policy
      | Reopen l -> Bhier.reopen_leaf h ~leaf:ids.(l))
    ~observe:(fun h ->
      ( Bhier.drops h,
        List.map
          (fun n -> (n, Bhier.departed_bits h ~node:n, Bhier.ref_time h ~node:n))
          (node_names s.spec),
        List.map
          (fun n -> (n, Bhier.node_virtual_time h ~node:n))
          (interior_names s.spec) ))

let replay_generic s =
  run_observed s
    ~mk:(fun sim ~root_clock ~on_depart ~on_drop ->
      HG.create ~sim ~spec:s.spec
        ~make_policy:(HG.uniform wf2q_plus)
        ~root_clock ~on_depart ~on_drop ())
    ~leaf_id:HG.leaf_id
    ~apply:(fun h ids op ->
      match op with
      | Inject (l, size_bits) -> ignore (HG.inject h ~leaf:ids.(l) ~size_bits)
      | Close (l, policy) -> HG.close_leaf h ~leaf:ids.(l) ~policy
      | Reopen l -> HG.reopen_leaf h ~leaf:ids.(l))
    ~observe:(fun h ->
      ( HG.drops h,
        List.map
          (fun n -> (n, HG.departed_bits h ~node:n, HG.ref_time h ~node:n))
          (node_names s.spec),
        List.map (fun n -> (n, HG.node_virtual_time h ~node:n)) (interior_names s.spec)
      ))

let replay_flat s =
  run_observed s
    ~mk:(fun sim ~root_clock ~on_depart ~on_drop ->
      HF.create ~sim ~spec:s.spec ~root_clock ~on_depart ~on_drop ())
    ~leaf_id:HF.leaf_id
    ~apply:(fun h ids op ->
      match op with
      | Inject (l, size_bits) -> ignore (HF.inject h ~leaf:ids.(l) ~size_bits)
      | Close (l, policy) -> HF.close_leaf h ~leaf:ids.(l) ~policy
      | Reopen l -> HF.reopen_leaf h ~leaf:ids.(l))
    ~observe:(fun h ->
      ( HF.drops h,
        List.map
          (fun n -> (n, HF.departed_bits h ~node:n, HF.ref_time h ~node:n))
          (node_names s.spec),
        List.map (fun n -> (n, HF.node_virtual_time h ~node:n)) (interior_names s.spec)
      ))

let replay_subtree ~shards s =
  let engine = ref None in
  let r =
    run_observed s
      ~mk:(fun sim ~root_clock ~on_depart ~on_drop ->
        let t =
          ST.create ~sim ~spec:s.spec ~root_clock ~on_depart ~on_drop ~shards
            ~workers:0 ~epoch:1 ()
        in
        engine := Some t;
        t)
      ~leaf_id:ST.leaf_id
      ~apply:(fun h ids op ->
        match op with
        | Inject (l, size_bits) -> ignore (ST.inject h ~leaf:ids.(l) ~size_bits)
        | Close (l, policy) -> ST.close_leaf h ~leaf:ids.(l) ~policy
        | Reopen l -> ST.reopen_leaf h ~leaf:ids.(l))
      ~observe:(fun h ->
        ( ST.drops h,
          List.map
            (fun n -> (n, ST.departed_bits h ~node:n, ST.ref_time h ~node:n))
            (node_names s.spec),
          List.map (fun n -> (n, ST.node_virtual_time h ~node:n)) (interior_names s.spec)
        ))
  in
  Option.iter ST.shutdown !engine;
  r

(* ---- 400 scenarios: every pooled engine equals the boxed oracle ---- *)

let prop_pooled_equals_boxed =
  Q.Test.make ~count:400
    ~name:"pooled plane replays the boxed plane byte-for-byte (generic/flat/subtree)"
    (Q.make scenario_gen ~print:print_scenario)
    (fun s ->
      let oracle = replay_boxed s in
      replay_generic s = oracle
      && replay_flat s = oracle
      && replay_subtree ~shards:2 s = oracle)

let () =
  let seeded = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x9001ed; 41 |]) in
  Alcotest.run "pool_differential"
    [ ("boxed-vs-pooled", [ seeded prop_pooled_equals_boxed ]) ]
