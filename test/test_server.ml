(* Standalone one-level server: the paper's Fig. 2 worked example and basic
   server behaviours, across disciplines. *)

module Sim = Engine.Simulator
module Server = Hpfq.Server

let feq = Alcotest.float 1e-6

(* Fig. 2 setup: unit link, unit packets; session 0 has rate 0.5 and sends
   11 packets at t=0; sessions 1..10 have rate 0.05 and send 1 each. *)
let run_fig2 factory =
  let sim = Sim.create () in
  let departures = ref [] in
  let server =
    Server.create ~sim ~rate:1.0
      ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
      ~on_depart:(fun pkt time -> departures := (pkt.Net.Packet.flow, time) :: !departures)
      ()
  in
  let s1 = Server.add_session server ~rate:0.5 () in
  let others = List.init 10 (fun _ -> Server.add_session server ~rate:0.05 ()) in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 11 do
           ignore (Server.inject server ~session:s1 ~size_bits:1.0)
         done;
         List.iter
           (fun s -> ignore (Server.inject server ~session:s ~size_bits:1.0))
           others));
  Sim.run sim;
  List.rev !departures

let session1_departure_times departures =
  List.filter_map (fun (flow, t) -> if flow = 0 then Some t else None) departures

let test_fig2_wfq () =
  let departures = run_fig2 Hpfq.Disciplines.wfq in
  Alcotest.(check int) "all packets served" 21 (List.length departures);
  (* WFQ bursts session 1: its first 10 packets depart back-to-back *)
  let first10 = List.filteri (fun i _ -> i < 10) departures in
  List.iter
    (fun (flow, _) -> Alcotest.(check int) "burst is session 1" 0 flow)
    first10;
  let s1_times = session1_departure_times departures in
  List.iteri
    (fun i t ->
      if i < 10 then Alcotest.check feq (Printf.sprintf "p1^%d at %d" (i + 1) (i + 1))
          (float_of_int (i + 1)) t)
    s1_times;
  (* the 11th packet waits for everyone else: departs last, at t=21 *)
  Alcotest.check feq "p1^11 last" 21.0 (List.nth s1_times 10)

let check_interleaved name departures =
  Alcotest.(check int) (name ^ ": all packets served") 21 (List.length departures);
  let s1_times = session1_departure_times departures in
  (* SEFF interleaves: session 1 departs at 1, 3, 5, ..., 19 then 21 — one
     packet every 2 time units, exactly the GPS pacing (paper Fig. 2). *)
  List.iteri
    (fun i t ->
      let expected = if i < 10 then (2.0 *. float_of_int i) +. 1.0 else 21.0 in
      Alcotest.check feq
        (Printf.sprintf "%s: p1^%d departure" name (i + 1))
        expected t)
    s1_times

let test_fig2_wf2q () = check_interleaved "WF2Q" (run_fig2 Hpfq.Disciplines.wf2q)
let test_fig2_wf2q_plus () = check_interleaved "WF2Q+" (run_fig2 Hpfq.Disciplines.wf2q_plus)

(* Work conservation: any discipline must keep the link busy while packets
   remain, so 21 unit packets injected at t=0 all depart by t=21. *)
let test_fig2_work_conserving_all () =
  List.iter
    (fun factory ->
      let departures = run_fig2 factory in
      let kind = factory.Sched.Sched_intf.kind in
      Alcotest.(check int) (kind ^ " serves all") 21 (List.length departures);
      let last = List.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 departures in
      Alcotest.check feq (kind ^ " finishes at 21") 21.0 last)
    Hpfq.Disciplines.all

(* A 50% session served alongside a greedy competitor must get >= its
   guaranteed share over a long busy period, under every PFQ discipline. *)
let test_rate_guarantee () =
  List.iter
    (fun factory ->
      let sim = Sim.create () in
      let server =
        Server.create ~sim ~rate:1.0 ~policy:(factory.Sched.Sched_intf.make ~rate:1.0) ()
      in
      let a = Server.add_session server ~rate:0.5 () in
      let b = Server.add_session server ~rate:0.5 () in
      ignore
        (Sim.schedule sim ~at:0.0 (fun () ->
             for _ = 1 to 100 do
               ignore (Server.inject server ~session:a ~size_bits:1.0)
             done;
             for _ = 1 to 1000 do
               ignore (Server.inject server ~session:b ~size_bits:1.0)
             done));
      Sim.run ~until:100.0 sim;
      (* over [0,100] session a is continuously backlogged (100 packets at
         rate >= .5 takes <= 200s); it must have >= 0.5*100 - slack bits *)
      let served = Server.departed_bits server ~session:a in
      let kind = factory.Sched.Sched_intf.kind in
      if kind <> "FIFO" then
        Alcotest.(check bool)
          (kind ^ " honours guaranteed rate (got " ^ string_of_float served ^ ")")
          true
          (served >= 49.0))
    (List.filter
       (fun f -> f.Sched.Sched_intf.kind <> "FIFO")
       Hpfq.Disciplines.all)

(* Drop-tail accounting via the server. *)
let test_server_drops () =
  let sim = Sim.create () in
  let drops = ref 0 in
  let server =
    Server.create ~sim ~rate:1.0
      ~policy:(Hpfq.Disciplines.wf2q_plus.Sched.Sched_intf.make ~rate:1.0)
      ~on_drop:(fun _ _ -> incr drops)
      ()
  in
  let s = Server.add_session server ~rate:1.0 ~queue_capacity_bits:3.5 () in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 5 do
           ignore (Server.inject server ~session:s ~size_bits:1.0)
         done));
  Sim.run sim;
  (* capacity 3.5 bits: packets 1-3 fit; 4 and 5 dropped... but packet 1 is
     committed to the link immediately, freeing queue space only at t=1. At
     t=0 the fifo holds p1 (until selected, it is popped at selection) —
     selection happens during the first inject, so p1 leaves the fifo
     immediately and p2..p4 fit. Exactly one drop. *)
  Alcotest.(check int) "drop count" 1 !drops

(* Empty-system idle periods: the server restarts cleanly after draining. *)
let test_idle_restart () =
  List.iter
    (fun factory ->
      let sim = Sim.create () in
      let departures = ref [] in
      let server =
        Server.create ~sim ~rate:1.0
          ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
          ~on_depart:(fun pkt t -> departures := (pkt.Net.Packet.flow, t) :: !departures)
          ()
      in
      let a = Server.add_session server ~rate:0.5 () in
      let b = Server.add_session server ~rate:0.5 () in
      ignore (Sim.schedule sim ~at:0.0 (fun () -> ignore (Server.inject server ~session:a ~size_bits:1.0)));
      ignore (Sim.schedule sim ~at:10.0 (fun () -> ignore (Server.inject server ~session:b ~size_bits:1.0)));
      Sim.run sim;
      let kind = factory.Sched.Sched_intf.kind in
      Alcotest.(check int) (kind ^ " both served") 2 (List.length !departures);
      match List.rev !departures with
      | [ (_, t1); (_, t2) ] ->
        Alcotest.check feq (kind ^ " first departure") 1.0 t1;
        Alcotest.check feq (kind ^ " second departure") 11.0 t2
      | _ -> Alcotest.fail "expected two departures")
    Hpfq.Disciplines.all

let () =
  Alcotest.run "server"
    [
      ( "fig2",
        [
          Alcotest.test_case "WFQ bursts" `Quick test_fig2_wfq;
          Alcotest.test_case "WF2Q interleaves" `Quick test_fig2_wf2q;
          Alcotest.test_case "WF2Q+ interleaves" `Quick test_fig2_wf2q_plus;
          Alcotest.test_case "all disciplines work-conserving" `Quick
            test_fig2_work_conserving_all;
        ] );
      ( "server",
        [
          Alcotest.test_case "rate guarantee" `Quick test_rate_guarantee;
          Alcotest.test_case "drop accounting" `Quick test_server_drops;
          Alcotest.test_case "idle restart" `Quick test_idle_restart;
        ] );
    ]
