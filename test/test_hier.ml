(* H-PFQ hierarchical server: pseudocode faithfulness, bandwidth
   distribution (paper §2.2 example), and the WFI effect on delay (§3.1). *)

module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree

let feq = Alcotest.float 1e-6

let wf2q_plus = Hpfq.Disciplines.wf2q_plus
let wfq = Hpfq.Disciplines.wfq

(* A flat hierarchy must behave exactly like the standalone server: same
   departure times for the same workload. *)
let test_flat_tree_equals_standalone () =
  let spec =
    CT.node "link" ~rate:1.0
      [ CT.leaf "a" ~rate:0.5; CT.leaf "b" ~rate:0.3; CT.leaf "c" ~rate:0.2 ]
  in
  let run_hier () =
    let sim = Sim.create () in
    let log = ref [] in
    let h =
      Hier.create ~sim ~spec ~make_policy:(Hier.uniform wf2q_plus)
        ~on_depart:(fun _ ~leaf t -> log := (leaf, t) :: !log)
        ()
    in
    let a = Hier.leaf_id h "a" and b = Hier.leaf_id h "b" and c = Hier.leaf_id h "c" in
    ignore
      (Sim.schedule sim ~at:0.0 (fun () ->
           for _ = 1 to 5 do
             ignore (Hier.inject h ~leaf:a ~size_bits:1.0);
             ignore (Hier.inject h ~leaf:b ~size_bits:1.0);
             ignore (Hier.inject h ~leaf:c ~size_bits:1.0)
           done));
    Sim.run sim;
    List.rev !log
  in
  let run_server () =
    let sim = Sim.create () in
    let log = ref [] in
    let names = [| "a"; "b"; "c" |] in
    let server =
      Hpfq.Server.create ~sim ~rate:1.0
        ~policy:(wf2q_plus.Sched.Sched_intf.make ~rate:1.0)
        ~on_depart:(fun pkt t -> log := (names.(pkt.Net.Packet.flow), t) :: !log)
        ()
    in
    let a = Hpfq.Server.add_session server ~rate:0.5 () in
    let b = Hpfq.Server.add_session server ~rate:0.3 () in
    let c = Hpfq.Server.add_session server ~rate:0.2 () in
    ignore
      (Sim.schedule sim ~at:0.0 (fun () ->
           for _ = 1 to 5 do
             ignore (Hpfq.Server.inject server ~session:a ~size_bits:1.0);
             ignore (Hpfq.Server.inject server ~session:b ~size_bits:1.0);
             ignore (Hpfq.Server.inject server ~session:c ~size_bits:1.0)
           done));
    Sim.run sim;
    List.rev !log
  in
  let hier_log = run_hier () and server_log = run_server () in
  Alcotest.(check (list (pair string (float 1e-9))))
    "flat H-PFQ = standalone server" server_log hier_log

(* §2.2 example: root {A: 0.8 {A1: 0.75, A2: 0.05}, B: 0.2}. With A1 idle,
   A2 inherits all of A's share: W_A2 ~ 0.8t, W_B ~ 0.2t. *)
let section22_spec =
  CT.node "link" ~rate:1.0
    [
      CT.node "A" ~rate:0.8 [ CT.leaf "A1" ~rate:0.75; CT.leaf "A2" ~rate:0.05 ];
      CT.leaf "B" ~rate:0.2;
    ]

let test_excess_follows_hierarchy () =
  let sim = Sim.create () in
  let h = Hier.create ~sim ~spec:section22_spec ~make_policy:(Hier.uniform wf2q_plus) () in
  let a2 = Hier.leaf_id h "A2" and b = Hier.leaf_id h "B" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 200 do
           ignore (Hier.inject h ~leaf:a2 ~size_bits:1.0);
           ignore (Hier.inject h ~leaf:b ~size_bits:1.0)
         done));
  Sim.run ~until:100.0 sim;
  let w_a2 = Hier.departed_bits h ~node:"A2" and w_b = Hier.departed_bits h ~node:"B" in
  (* A1 idle: A2 receives A's whole 80% share, not 0.05/(0.05+0.2) of it *)
  Alcotest.(check bool) "A2 near 80" true (Float.abs (w_a2 -. 80.0) <= 2.0);
  Alcotest.(check bool) "B near 20" true (Float.abs (w_b -. 20.0) <= 2.0)

(* Same tree, A1 now also backlogged: shares revert to 75/5/20. *)
let test_shares_with_all_backlogged () =
  let sim = Sim.create () in
  let h = Hier.create ~sim ~spec:section22_spec ~make_policy:(Hier.uniform wf2q_plus) () in
  let a1 = Hier.leaf_id h "A1" and a2 = Hier.leaf_id h "A2" and b = Hier.leaf_id h "B" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 200 do
           ignore (Hier.inject h ~leaf:a1 ~size_bits:1.0);
           ignore (Hier.inject h ~leaf:a2 ~size_bits:1.0);
           ignore (Hier.inject h ~leaf:b ~size_bits:1.0)
         done));
  Sim.run ~until:100.0 sim;
  Alcotest.(check bool) "A1 ~75" true
    (Float.abs (Hier.departed_bits h ~node:"A1" -. 75.0) <= 2.0);
  Alcotest.(check bool) "A2 ~5" true
    (Float.abs (Hier.departed_bits h ~node:"A2" -. 5.0) <= 2.0);
  Alcotest.(check bool) "B ~20" true
    (Float.abs (Hier.departed_bits h ~node:"B" -. 20.0) <= 2.0);
  Alcotest.(check (float 2.0)) "A = A1+A2 ~80" 80.0 (Hier.departed_bits h ~node:"A")

(* The paper's motivating failure (§3.1): inside agency A1 (50%), a
   best-effort burst under H-WFQ makes the next real-time packet wait ~N
   packet times; under H-WF2Q+ it does not. *)
let burst_then_realtime make_policy =
  let spec =
    CT.node "link" ~rate:1.0
      (CT.node "A1" ~rate:0.5 [ CT.leaf "RT" ~rate:0.3; CT.leaf "BE" ~rate:0.2 ]
      :: List.init 10 (fun i -> CT.leaf (Printf.sprintf "bg%d" i) ~rate:0.05))
  in
  let sim = Sim.create () in
  let rt_delay = ref 0.0 in
  let h =
    Hier.create ~sim ~spec ~make_policy
      ~on_depart:(fun pkt ~leaf t ->
        if leaf = "RT" then rt_delay := t -. pkt.Net.Packet.arrival)
      ()
  in
  let be = Hier.leaf_id h "BE" and rt = Hier.leaf_id h "RT" in
  let bgs = List.init 10 (fun i -> Hier.leaf_id h (Printf.sprintf "bg%d" i)) in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         (* BE bursts; background sessions keep their queues full *)
         for _ = 1 to 30 do
           ignore (Hier.inject h ~leaf:be ~size_bits:1.0)
         done;
         List.iter
           (fun bg ->
             for _ = 1 to 30 do
               ignore (Hier.inject h ~leaf:bg ~size_bits:1.0)
             done)
           bgs));
  (* Under H-WFQ, agency A1 runs ~10 packets ahead of its fluid schedule
     during [0,10] (BE's burst); the punishment phase follows, when A1 must
     wait for everyone else to catch up. A real-time packet arriving right
     then — to an EMPTY RT queue — inherits the agency's debt. *)
  ignore (Sim.schedule sim ~at:10.2 (fun () -> ignore (Hier.inject h ~leaf:rt ~size_bits:1.0)));
  Sim.run sim;
  !rt_delay

let test_wfi_effect_on_hierarchy_delay () =
  let d_hwfq = burst_then_realtime (Hier.uniform wfq) in
  let d_hwf2qp = burst_then_realtime (Hier.uniform wf2q_plus) in
  (* H-WF2Q+ delay bound for RT (Cor. 2): sigma/r_i + L/r_A1 + L/r_link
     = 1/0.3 + 1/0.5 + 1 = 6.33; H-WFQ should be noticeably worse *)
  Alcotest.(check bool)
    (Printf.sprintf "H-WF2Q+ within bound (%.3f)" d_hwf2qp)
    true
    (d_hwf2qp <= 6.34);
  Alcotest.(check bool)
    (Printf.sprintf "H-WFQ worse than H-WF2Q+ (%.3f vs %.3f)" d_hwfq d_hwf2qp)
    true
    (d_hwfq > d_hwf2qp +. 1.0)

(* Work conservation in a deep tree: the link never idles while any queue
   is backlogged, so total work = elapsed time during the busy period. *)
let test_hier_work_conserving () =
  let spec =
    CT.node "link" ~rate:1.0
      [
        CT.node "x" ~rate:0.6
          [ CT.node "x1" ~rate:0.4 [ CT.leaf "x1a" ~rate:0.2; CT.leaf "x1b" ~rate:0.2 ];
            CT.leaf "x2" ~rate:0.2 ];
        CT.leaf "y" ~rate:0.4;
      ]
  in
  let sim = Sim.create () in
  let h = Hier.create ~sim ~spec ~make_policy:(Hier.uniform wf2q_plus) () in
  let leaves = List.map snd (Hier.leaf_ids h) in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         List.iter
           (fun leaf ->
             for _ = 1 to 25 do
               ignore (Hier.inject h ~leaf ~size_bits:1.0)
             done)
           leaves));
  Sim.run ~until:50.0 sim;
  Alcotest.check feq "100 bits in 100s... 50 bits by t=50" 50.0
    (Hier.departed_bits h ~node:"link")

(* Leaf drops honour queue capacity. *)
let test_hier_leaf_drops () =
  let spec =
    CT.node "link" ~rate:1.0
      [ CT.leaf "small" ~rate:0.5 ~queue_capacity_bits:2.5; CT.leaf "big" ~rate:0.5 ]
  in
  let sim = Sim.create () in
  let h = Hier.create ~sim ~spec ~make_policy:(Hier.uniform wf2q_plus) () in
  let small = Hier.leaf_id h "small" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 5 do
           ignore (Hier.inject h ~leaf:small ~size_bits:1.0)
         done));
  Sim.run sim;
  (* Per §4.2 the committed packet stays in the leaf queue until the link
     finishes it, so p1+p2 occupy the 2.5-bit queue and p3..p5 drop. *)
  Alcotest.(check int) "three drops" 3 (Hier.drops h)

let test_invalid_tree_rejected () =
  let bad = CT.node "link" ~rate:1.0 [ CT.leaf "a" ~rate:0.9; CT.leaf "b" ~rate:0.9 ] in
  Alcotest.(check bool) "overcommitted tree rejected" true
    (try
       let sim = Sim.create () in
       ignore (Hier.create ~sim ~spec:bad ~make_policy:(Hier.uniform wf2q_plus) ());
       false
     with Invalid_argument _ -> true)

let test_leaf_lookup () =
  let sim = Sim.create () in
  let h = Hier.create ~sim ~spec:section22_spec ~make_policy:(Hier.uniform wf2q_plus) () in
  Alcotest.(check string) "leaf name roundtrip" "A2"
    (Hier.leaf_name h (Hier.leaf_id h "A2"));
  Alcotest.(check int) "three leaves" 3 (List.length (Hier.leaf_ids h));
  Alcotest.(check bool) "interior node is not a leaf" true
    (try
       ignore (Hier.leaf_id h "A");
       false
     with Invalid_argument msg ->
       (* the error must name the node and its kind *)
       let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       contains msg "\"A\"" && contains msg "interior");
  Alcotest.(check bool) "unknown name is Not_found" true
    (try
       ignore (Hier.leaf_id h "nope");
       false
     with Not_found -> true)

(* Mixed policies: WFQ at the root, WF2Q+ below — exercises heterogeneous
   composition. *)
let test_mixed_policies_run () =
  let make_policy ~level ~name:_ ~rate =
    if level = 0 then wfq.Sched.Sched_intf.make ~rate
    else wf2q_plus.Sched.Sched_intf.make ~rate
  in
  let sim = Sim.create () in
  let h = Hier.create ~sim ~spec:section22_spec ~make_policy () in
  let a2 = Hier.leaf_id h "A2" and b = Hier.leaf_id h "B" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 50 do
           ignore (Hier.inject h ~leaf:a2 ~size_bits:1.0);
           ignore (Hier.inject h ~leaf:b ~size_bits:1.0)
         done));
  Sim.run sim;
  Alcotest.check feq "everything served" 100.0 (Hier.departed_bits h ~node:"link")

(* Reference-time vs real-time root clock both serve everything. *)
let test_root_clock_modes () =
  List.iter
    (fun root_clock ->
      let sim = Sim.create () in
      let h =
        Hier.create ~sim ~spec:section22_spec ~make_policy:(Hier.uniform wf2q_plus)
          ~root_clock ()
      in
      let b = Hier.leaf_id h "B" in
      ignore (Sim.schedule sim ~at:0.0 (fun () -> ignore (Hier.inject h ~leaf:b ~size_bits:1.0)));
      ignore (Sim.schedule sim ~at:10.0 (fun () -> ignore (Hier.inject h ~leaf:b ~size_bits:1.0)));
      Sim.run sim;
      Alcotest.check feq "both served" 2.0 (Hier.departed_bits h ~node:"B"))
    [ `Real_time; `Reference_time ]

let () =
  Alcotest.run "hier"
    [
      ( "structure",
        [
          Alcotest.test_case "flat tree = standalone" `Quick test_flat_tree_equals_standalone;
          Alcotest.test_case "invalid tree rejected" `Quick test_invalid_tree_rejected;
          Alcotest.test_case "leaf lookup" `Quick test_leaf_lookup;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "excess follows hierarchy" `Quick test_excess_follows_hierarchy;
          Alcotest.test_case "all backlogged shares" `Quick test_shares_with_all_backlogged;
          Alcotest.test_case "work conserving" `Quick test_hier_work_conserving;
        ] );
      ( "delay",
        [
          Alcotest.test_case "WFI effect (H-WFQ vs H-WF2Q+)" `Quick
            test_wfi_effect_on_hierarchy_delay;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "leaf drops" `Quick test_hier_leaf_drops;
          Alcotest.test_case "mixed policies" `Quick test_mixed_policies_run;
          Alcotest.test_case "root clock modes" `Quick test_root_clock_modes;
        ] );
    ]
