(* Exact GPS virtual-time tracker against hand-computed fluid scenarios. *)

module G = Sched.Gps_clock

let feq = Alcotest.float 1e-9

(* Two equal-rate sessions, both arrive at t=0 with unit packets on a
   unit-rate server: V slope 1 while both backlogged. *)
let test_two_equal_sessions () =
  let g = G.create ~rate:1.0 in
  let s0 = G.add_session g ~rate:0.5 and s1 = G.add_session g ~rate:0.5 in
  let st0, f0 = G.on_arrival g ~now:0.0 ~session:s0 ~size_bits:1.0 in
  let st1, f1 = G.on_arrival g ~now:0.0 ~session:s1 ~size_bits:1.0 in
  Alcotest.check feq "s0 start" 0.0 st0;
  Alcotest.check feq "s0 finish" 2.0 f0;
  Alcotest.check feq "s1 start" 0.0 st1;
  Alcotest.check feq "s1 finish" 2.0 f1;
  (* both backlogged: sum of shares = 1, slope 1 *)
  Alcotest.check feq "V(1)" 1.0 (G.virtual_time g ~now:1.0);
  (* both retire at V=2 (t=2); fluid empty -> V resets *)
  Alcotest.check feq "V resets after drain" 0.0 (G.virtual_time g ~now:3.0);
  Alcotest.(check int) "epoch advanced" 1 (G.epoch g ~now:3.0)

(* One of two sessions backlogged: it gets the whole link, so V advances at
   rate r/r_1 = 2. *)
let test_single_backlogged_slope () =
  let g = G.create ~rate:1.0 in
  let s0 = G.add_session g ~rate:0.5 and _s1 = G.add_session g ~rate:0.5 in
  let _ = G.on_arrival g ~now:0.0 ~session:s0 ~size_bits:4.0 in
  (* virtual span = 4/0.5 = 8; real drain time = 4/1 = 4; slope 2 *)
  Alcotest.check feq "V(1) with lone session" 2.0 (G.virtual_time g ~now:1.0);
  Alcotest.(check bool) "still backlogged" true (G.gps_backlogged g ~now:3.9 ~session:s0);
  Alcotest.(check bool) "drained" false (G.gps_backlogged g ~now:4.1 ~session:s0)

(* The Fig. 2 scenario's fluid side: session 1 (rate .5) keeps the fluid
   system busy to t=21. *)
let test_fig2_fluid_departures () =
  let g = G.create ~rate:1.0 in
  let s1 = G.add_session g ~rate:0.5 in
  let others = List.init 10 (fun _ -> G.add_session g ~rate:0.05) in
  for _ = 1 to 11 do
    ignore (G.on_arrival g ~now:0.0 ~session:s1 ~size_bits:1.0)
  done;
  List.iter (fun s -> ignore (G.on_arrival g ~now:0.0 ~session:s ~size_bits:1.0)) others;
  (* All backlogged, slope 1. Others' virtual finish = 1/0.05 = 20, reached
     at t=20; session 1's last virtual finish = 22, reached at t=21 (slope
     doubles once alone). *)
  Alcotest.(check bool) "busy at 20.9" true (G.busy g ~now:20.9);
  Alcotest.check feq "V just before drain" 21.8 (G.virtual_time g ~now:20.9);
  Alcotest.(check bool) "empty at 21.1" false (G.busy g ~now:21.1)

(* Stamps within a session chain: F_{k-1} carries into S_k (eq. 6). *)
let test_stamp_chaining () =
  let g = G.create ~rate:1.0 in
  let s = G.add_session g ~rate:0.25 and s' = G.add_session g ~rate:0.75 in
  let _ = G.on_arrival g ~now:0.0 ~session:s' ~size_bits:100.0 in
  let st1, f1 = G.on_arrival g ~now:0.0 ~session:s ~size_bits:1.0 in
  let st2, f2 = G.on_arrival g ~now:0.0 ~session:s ~size_bits:1.0 in
  Alcotest.check feq "S1" 0.0 st1;
  Alcotest.check feq "F1 = L/r_i" 4.0 f1;
  Alcotest.check feq "S2 = F1" 4.0 st2;
  Alcotest.check feq "F2" 8.0 f2

(* A late arrival during a busy period stamps S = V(a) > 0. *)
let test_late_arrival_uses_v () =
  let g = G.create ~rate:1.0 in
  let s0 = G.add_session g ~rate:0.5 and s1 = G.add_session g ~rate:0.5 in
  let _ = G.on_arrival g ~now:0.0 ~session:s0 ~size_bits:10.0 in
  (* alone: slope 2, so V(2) = 4 *)
  let st, _f = G.on_arrival g ~now:2.0 ~session:s1 ~size_bits:1.0 in
  Alcotest.check feq "late S = V(a)" 4.0 st

(* After the system drains, old finish tags must not leak into the next
   busy period (epoch reset). *)
let test_epoch_reset_clears_tags () =
  let g = G.create ~rate:1.0 in
  let s0 = G.add_session g ~rate:1.0 in
  let _ = G.on_arrival g ~now:0.0 ~session:s0 ~size_bits:5.0 in
  Alcotest.check feq "V mid-burst" 3.0 (G.virtual_time g ~now:3.0);
  let st, f = G.on_arrival g ~now:100.0 ~session:s0 ~size_bits:5.0 in
  Alcotest.check feq "fresh busy period starts at V=0" 0.0 st;
  Alcotest.check feq "fresh finish" 5.0 f

let () =
  Alcotest.run "gps_clock"
    [
      ( "fluid",
        [
          Alcotest.test_case "two equal sessions" `Quick test_two_equal_sessions;
          Alcotest.test_case "single-backlogged slope" `Quick test_single_backlogged_slope;
          Alcotest.test_case "fig2 fluid departures" `Quick test_fig2_fluid_departures;
          Alcotest.test_case "stamp chaining" `Quick test_stamp_chaining;
          Alcotest.test_case "late arrival uses V" `Quick test_late_arrival_uses_v;
          Alcotest.test_case "epoch reset" `Quick test_epoch_reset_clears_tags;
        ] );
    ]
