(* Class-tree configuration DSL. *)

module CT = Hpfq.Class_tree

let sample =
  CT.node "root" ~rate:10.0
    [
      CT.node "a" ~rate:6.0 [ CT.leaf "a1" ~rate:2.0; CT.leaf "a2" ~rate:4.0 ];
      CT.leaf "b" ~rate:4.0;
    ]

let test_accessors () =
  Alcotest.(check string) "name" "root" (CT.name sample);
  Alcotest.(check (float 1e-9)) "rate" 10.0 (CT.rate sample);
  Alcotest.(check int) "children" 2 (List.length (CT.children sample));
  Alcotest.(check bool) "leaf check" false (CT.is_leaf sample);
  Alcotest.(check int) "depth" 3 (CT.depth sample);
  Alcotest.(check int) "node count" 5 (CT.count_nodes sample);
  Alcotest.(check (list (pair string (float 1e-9)))) "leaves in order"
    [ ("a1", 2.0); ("a2", 4.0); ("b", 4.0) ]
    (CT.leaves sample)

let test_find_path () =
  (match CT.find_path sample "a2" with
  | Some path ->
    Alcotest.(check (list string)) "path root->a2" [ "root"; "a"; "a2" ]
      (List.map CT.name path)
  | None -> Alcotest.fail "a2 not found");
  Alcotest.(check bool) "missing node" true (CT.find_path sample "zz" = None);
  match CT.find_path sample "root" with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "root path should be singleton"

let test_node_share () =
  let t =
    CT.node_share "half" ~share:0.5 ~parent_rate:10.0 (fun rate ->
        [ CT.leaf "x" ~rate:(rate /. 2.0); CT.leaf "y" ~rate:(rate /. 2.0) ])
  in
  Alcotest.(check (float 1e-9)) "derived rate" 5.0 (CT.rate t);
  Alcotest.(check (float 1e-9)) "child rate" 2.5 (CT.rate (List.hd (CT.children t)))

let test_validate_catches_errors () =
  let check_invalid name tree =
    match CT.validate tree with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (name ^ " accepted")
  in
  check_invalid "overcommit"
    (CT.node "r" ~rate:1.0 [ CT.leaf "a" ~rate:0.7; CT.leaf "b" ~rate:0.7 ]);
  check_invalid "duplicate names"
    (CT.node "r" ~rate:1.0 [ CT.leaf "a" ~rate:0.4; CT.leaf "a" ~rate:0.4 ]);
  check_invalid "non-positive rate"
    (CT.node "r" ~rate:1.0 [ CT.leaf "a" ~rate:0.0 ]);
  check_invalid "childless interior" (CT.node "r" ~rate:1.0 []);
  check_invalid "bad queue capacity"
    (CT.node "r" ~rate:1.0 [ CT.leaf "a" ~rate:0.5 ~queue_capacity_bits:(-1.0) ]);
  match CT.validate sample with
  | Ok () -> ()
  | Error es -> Alcotest.fail (String.concat ";" es)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_pp_smoke () =
  let rendered = Format.asprintf "%a" CT.pp sample in
  Alcotest.(check bool) "mentions every node" true
    (List.for_all (fun n -> contains ~needle:n rendered) [ "root"; "a1"; "a2"; "b" ])

let () =
  Alcotest.run "class_tree"
    [
      ( "tree",
        [
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "find_path" `Quick test_find_path;
          Alcotest.test_case "node_share" `Quick test_node_share;
          Alcotest.test_case "validation" `Quick test_validate_catches_errors;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
