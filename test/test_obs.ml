(* Tests for the observability layer (lib/obs): the golden Fig. 2 trace,
   the disabled-observer guarantees (records nothing, perturbs nothing),
   ring-buffer overflow semantics, live metrics against the server's own
   ground truth, and the JSONL/CSV/report exporters. *)

module Event = Obs.Event
module Recorder = Obs.Recorder
module Sink = Obs.Sink
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module F2 = Experiments.Fig2_walkthrough
module Json = Bench_kit.Json

let feq = Alcotest.(float 1e-9)

(* -- golden Fig. 2 trace -------------------------------------------------- *)

(* WF2Q+ on the paper's Fig. 2 scenario: session 1 (phi = 0.5) finishes its
   11 packets at the odd instants 1,3,...,21, perfectly interleaved with the
   ten phi = 0.05 sessions — the SEFF service order of the figure. The trace
   must reproduce that schedule event by event. *)
let golden_completions =
  (* (session, seq, finish) in completion order *)
  [
    (0, 1, 1.0); (1, 1, 2.0); (0, 2, 3.0); (2, 1, 4.0); (0, 3, 5.0);
    (3, 1, 6.0); (0, 4, 7.0); (4, 1, 8.0); (0, 5, 9.0); (5, 1, 10.0);
    (0, 6, 11.0); (6, 1, 12.0); (0, 7, 13.0); (7, 1, 14.0); (0, 8, 15.0);
    (8, 1, 16.0); (0, 9, 17.0); (9, 1, 18.0); (0, 10, 19.0); (10, 1, 20.0);
    (0, 11, 21.0);
  ]

let run_golden = lazy (F2.run_traced Hpfq.Disciplines.wf2q_plus)

let count_kind events k =
  List.length (List.filter (fun e -> e.Event.kind = k) events)

let test_fig2_golden_completions () =
  let completions, _ = Lazy.force run_golden in
  Alcotest.(check int) "21 packets" 21 (List.length completions);
  List.iter2
    (fun (s, q, f) c ->
      Alcotest.(check int) "session" s c.F2.session;
      Alcotest.(check int) "seq" q c.F2.seq;
      Alcotest.check feq "finish" f c.F2.finish)
    golden_completions completions;
  Alcotest.(check (list (float 1e-9)))
    "session-1 finishes are the odd instants"
    [ 1.; 3.; 5.; 7.; 9.; 11.; 13.; 15.; 17.; 19.; 21. ]
    (F2.session1_finishes completions)

let test_fig2_golden_events () =
  let _, trace = Lazy.force run_golden in
  let events = Trace.events trace in
  Alcotest.(check int) "total events" 116 (List.length events);
  List.iter
    (fun (k, n) -> Alcotest.(check int) (Event.kind_to_string k) n (count_kind events k))
    [
      (Event.Arrive, 21); (Event.Backlog, 11); (Event.Requeue, 10);
      (Event.Idle, 11); (Event.Select, 21); (Event.Transmit_start, 21);
      (Event.Depart, 21); (Event.Drop, 0);
    ];
  (* the select sequence IS the Fig. 2 service order, and each select's
     vtime is the post-dated V = k+1 after the k-th unit packet *)
  let selects = List.filter (fun e -> e.Event.kind = Event.Select) events in
  List.iteri
    (fun k e ->
      let (golden_session, _, _) = List.nth golden_completions k in
      Alcotest.(check int) "select session" golden_session e.Event.session;
      Alcotest.check feq "select time" (float_of_int k) e.Event.time;
      Alcotest.check feq "select vtime" (float_of_int (k + 1)) e.Event.vtime)
    selects;
  (* link events: node encodes the session "leaf" (1 + session), session is
     -1 and vtime is nan — a link has no virtual clock *)
  let departs = List.filter (fun e -> e.Event.kind = Event.Depart) events in
  List.iteri
    (fun k e ->
      let (golden_session, _, golden_finish) = List.nth golden_completions k in
      Alcotest.(check int) "depart leaf node" (1 + golden_session) e.Event.node;
      Alcotest.(check int) "depart session" (-1) e.Event.session;
      Alcotest.check feq "depart time" golden_finish e.Event.time;
      Alcotest.(check bool) "depart vtime is nan" true (Float.is_nan e.Event.vtime))
    departs

let test_fig2_metrics_and_names () =
  let _, trace = Lazy.force run_golden in
  let m = Trace.metrics trace in
  let server = Metrics.node m 0 in
  Alcotest.(check int) "server arrivals" 21 server.Metrics.arrivals;
  Alcotest.(check int) "server selects" 21 server.Metrics.selects;
  Alcotest.check feq "server W(0,t)" 21.0 server.Metrics.served_bits;
  Alcotest.(check int) "server busy periods" 1 server.Metrics.busy_periods;
  Alcotest.check feq "vtime watermark low" 0.0 server.Metrics.vtime_min;
  Alcotest.check feq "vtime watermark high" 21.0 server.Metrics.vtime_max;
  (* per-session leaves: s1 moved 11 bits, everyone else 1 *)
  Alcotest.check feq "s1 served" 11.0 (Metrics.node m 1).Metrics.served_bits;
  for s = 2 to 11 do
    Alcotest.check feq "phi=0.05 session served" 1.0
      (Metrics.node m s).Metrics.served_bits
  done;
  let names = Trace.names trace in
  Alcotest.(check string) "server label" "fig2-link" (names.Sink.node_label 0);
  Alcotest.(check string) "leaf label" "s1" (names.Sink.node_label 1);
  Alcotest.(check string) "session label via server node" "s11"
    (names.Sink.session_label ~node:0 ~session:10);
  let scheduled, fired, cancelled = Trace.sim_counters trace in
  Alcotest.(check int) "sim scheduled" 22 scheduled;
  Alcotest.(check int) "sim fired" 22 fired;
  Alcotest.(check int) "sim cancelled" 0 cancelled

let test_sim_report () =
  let _, trace = Lazy.force run_golden in
  let r = Trace.sim_report trace in
  Alcotest.(check (list string))
    "columns" [ "metric"; "value" ]
    (Stats.Report.columns r);
  let assoc =
    List.filter_map
      (function [ k; v ] -> Some (k, v) | _ -> None)
      (Stats.Report.rows r)
  in
  Alcotest.(check (option string)) "scheduled" (Some "22")
    (List.assoc_opt "scheduled" assoc);
  Alcotest.(check (option string)) "fired" (Some "22")
    (List.assoc_opt "fired" assoc);
  Alcotest.(check (option string))
    "backend"
    (Some (Engine.Simulator.backend_name (Engine.Simulator.default_backend ())))
    (List.assoc_opt "backend" assoc);
  Alcotest.(check (option string)) "run drained" (Some "0")
    (List.assoc_opt "pending" assoc);
  Alcotest.(check (option string)) "no garbage retained" (Some "0")
    (List.assoc_opt "cancelled_in_set" assoc);
  Alcotest.(check bool) "capacity rows present" true
    (List.mem_assoc "set_capacity" assoc && List.mem_assoc "pool_capacity" assoc)

(* -- disabled observers --------------------------------------------------- *)

(* Installing an observer must not perturb scheduling: the traced run's
   completions equal the untraced baseline's (golden list above, which
   matches EXPERIMENTS.md's untraced Fig. 2 anchors). Removing one must
   restore the exact untraced hot path: a policy that had an observer
   installed and removed makes the same decisions as one that never did. *)
let drive_selects policy =
  let open Sched.Sched_intf in
  List.iter (fun rate -> ignore (policy.add_session ~rate)) [ 0.5; 0.25; 0.25 ];
  for s = 0 to 2 do
    policy.arrive ~now:0.0 ~session:s ~size_bits:1.0;
    policy.backlog ~now:0.0 ~session:s ~head_bits:1.0
  done;
  let order = ref [] in
  let now = ref 0.0 in
  for _ = 1 to 12 do
    (match policy.select ~now:!now with
    | None -> ()
    | Some s ->
      order := s :: !order;
      now := !now +. 1.0;
      policy.arrive ~now:!now ~session:s ~size_bits:1.0;
      policy.requeue ~now:!now ~session:s ~head_bits:1.0)
  done;
  List.rev !order

let test_removed_observer_restores_schedule () =
  let open Sched.Sched_intf in
  let baseline = drive_selects (Hpfq.Disciplines.wf2q_plus.make ~rate:1.0) in
  let policy = Hpfq.Disciplines.wf2q_plus.make ~rate:1.0 in
  policy.set_observer (Some null_observer);
  policy.set_observer None;
  Alcotest.(check (list int))
    "installed-then-removed observer leaves the schedule untouched" baseline
    (drive_selects policy)

let test_detached_trace_records_no_scheduler_events () =
  let sim = Engine.Simulator.create () in
  let server =
    Hpfq.Server.create ~sim ~rate:1.0
      ~policy:(Hpfq.Disciplines.wf2q_plus.make ~rate:1.0)
      ~on_depart:(fun _ _ -> ())
      ()
  in
  for _ = 1 to 3 do
    ignore (Hpfq.Server.add_session server ~rate:0.25 ())
  done;
  let trace = Trace.attach_server server in
  Trace.detach trace;
  ignore
    (Engine.Simulator.schedule sim ~at:0.0 (fun () ->
         for s = 0 to 2 do
           ignore (Hpfq.Server.inject server ~session:s ~size_bits:1.0)
         done));
  Engine.Simulator.run sim;
  (* scheduler observers are gone; only composed link hooks may still fire *)
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "event %s is link-level" (Event.kind_to_string e.Event.kind))
        true
        (Event.is_link_level e.Event.kind))
    (Trace.events trace);
  Alcotest.(check int) "no selects counted" 0 (Metrics.node (Trace.metrics trace) 0).Metrics.selects

(* -- ring buffer overflow semantics --------------------------------------- *)

let fill recorder n =
  for i = 0 to n - 1 do
    Recorder.record recorder ~kind:Event.Arrive ~node:0 ~session:i
      ~time:(float_of_int i) ~vtime:0.0 ~bits:1.0
  done

let sessions recorder = List.map (fun e -> e.Event.session) (Recorder.to_list recorder)

let test_ring_drop_oldest () =
  let r = Recorder.create ~capacity:4 ~on_full:Recorder.Drop_oldest () in
  fill r 6;
  Alcotest.(check int) "length" 4 (Recorder.length r);
  Alcotest.(check int) "dropped" 2 (Recorder.dropped r);
  Alcotest.(check (list int)) "newest survive, oldest first" [ 2; 3; 4; 5 ] (sessions r);
  Alcotest.(check int) "get oldest" 2 (Recorder.get r 0).Event.session;
  Recorder.clear r;
  Alcotest.(check int) "cleared length" 0 (Recorder.length r);
  Alcotest.(check int) "cleared dropped" 0 (Recorder.dropped r)

let test_ring_drop_newest () =
  let r = Recorder.create ~capacity:4 ~on_full:Recorder.Drop_newest () in
  fill r 6;
  Alcotest.(check int) "length" 4 (Recorder.length r);
  Alcotest.(check int) "dropped" 2 (Recorder.dropped r);
  Alcotest.(check (list int)) "oldest survive" [ 0; 1; 2; 3 ] (sessions r)

let test_ring_grow () =
  let r = Recorder.create ~capacity:4 ~on_full:Recorder.Grow () in
  fill r 100;
  Alcotest.(check int) "length" 100 (Recorder.length r);
  Alcotest.(check int) "dropped" 0 (Recorder.dropped r);
  Alcotest.(check bool) "capacity grew" true (Recorder.capacity r >= 100);
  Alcotest.(check int) "order preserved across growth" 99 (Recorder.get r 99).Event.session;
  (match Recorder.get r 100 with
  | _ -> Alcotest.fail "get past the end should raise"
  | exception Invalid_argument _ -> ())

let test_memory_sink_and_drain () =
  let r = Recorder.create ~capacity:8 () in
  fill r 5;
  let sink, contents = Sink.memory () in
  Recorder.drain r sink;
  Alcotest.(check int) "drained everything" 5 (List.length (contents ()));
  Alcotest.(check int) "drain clears the ring" 0 (Recorder.length r);
  (* the null sink accepts anything *)
  fill r 3;
  Recorder.drain r Sink.null;
  Alcotest.(check int) "null drain also clears" 0 (Recorder.length r)

(* -- metrics vs the server's own ground truth ----------------------------- *)

(* Fig. 3 hierarchy under saturating load: every node's served_bits counter
   (credited along leaf-to-root paths at each depart) must equal the
   hierarchy's own W_n(0,t) accounting, node by node. *)
let test_hier_metrics_match_departed_bits () =
  let module H = Experiments.Paper_hierarchies in
  let sim = Engine.Simulator.create () in
  let h =
    Hpfq.Hier.create ~sim ~spec:H.fig3
      ~make_policy:(Hpfq.Hier.uniform Hpfq.Disciplines.wf2q_plus)
      ()
  in
  let trace = Trace.attach_hier h in
  List.iter
    (fun (_, leaf) ->
      ignore
        (Traffic.Source.greedy ~sim
           ~emit:(fun ~size_bits -> ignore (Hpfq.Hier.inject h ~leaf ~size_bits))
           ~packet_bits:H.fig3_packet_bits ~backlog_packets:8 ~stop_at:0.05 ()))
    (Hpfq.Hier.leaf_ids h);
  Engine.Simulator.run ~until:0.1 sim;
  let m = Trace.metrics trace in
  let total_served = ref 0.0 in
  for id = 0 to Hpfq.Hier.node_count h - 1 do
    let name = Hpfq.Hier.node_name h id in
    let node = Metrics.node m id in
    Alcotest.check (Alcotest.float 1e-6)
      (Printf.sprintf "W_n for %s" name)
      (Hpfq.Hier.departed_bits h ~node:name)
      node.Metrics.served_bits;
    if node.Metrics.served_bits > 0.0 then total_served := !total_served +. 1.0
  done;
  Alcotest.(check bool) "several nodes actually served traffic" true (!total_served > 3.0)

(* -- exporters ------------------------------------------------------------ *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let with_temp_file suffix f =
  let path = Filename.temp_file "test_obs" suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_jsonl_parseback () =
  let _, trace = Lazy.force run_golden in
  with_temp_file ".jsonl" (fun path ->
      Trace.write_jsonl trace ~path;
      let lines = read_lines path in
      Alcotest.(check int) "one line per event" 116 (List.length lines);
      List.iter
        (fun line ->
          let j = Json.of_string line in
          let get k = match Json.member k j with
            | Some v -> v
            | None -> Alcotest.failf "record missing %S: %s" k line
          in
          let ev = match get "ev" with
            | Json.Str s -> s
            | _ -> Alcotest.failf "ev is not a string: %s" line
          in
          let kind = match Event.kind_of_string ev with
            | Some k -> k
            | None -> Alcotest.failf "unknown event kind %S" ev
          in
          (match Json.to_float (get "t") with
          | Some t -> Alcotest.(check bool) "time in range" true (t >= 0.0 && t <= 21.0)
          | None -> Alcotest.failf "t is not a number: %s" line);
          if Event.is_link_level kind then begin
            Alcotest.(check bool) "link session is null" true (get "session" = Json.Null);
            Alcotest.(check bool) "link v is null" true (get "v" = Json.Null)
          end
          else begin
            (match get "session" with
            | Json.Str _ -> ()
            | _ -> Alcotest.failf "scheduler session is not a label: %s" line);
            match Json.to_float (get "v") with
            | Some _ -> ()
            | None -> Alcotest.failf "scheduler v is not a number: %s" line
          end)
        lines;
      Alcotest.(check int) "write keeps the ring" 116
        (Recorder.length (Trace.recorder trace)))

let test_csv_and_reports () =
  let _, trace = Lazy.force run_golden in
  with_temp_file ".csv" (fun path ->
      Trace.write_csv trace ~path;
      match read_lines path with
      | header :: rows ->
        Alcotest.(check string) "csv header" (String.concat "," Sink.csv_header) header;
        Alcotest.(check int) "csv rows" 116 (List.length rows)
      | [] -> Alcotest.fail "empty csv");
  (* the same trace through the unified Stats.Report shape *)
  let ev_report = Trace.events_report trace in
  Alcotest.(check (list string)) "events report columns" Sink.csv_header
    (Stats.Report.columns ev_report);
  Alcotest.(check int) "events report rows" 116
    (List.length (Stats.Report.rows ev_report));
  let m_report = Trace.metrics_report trace in
  Alcotest.(check int) "one metrics row per node" 12
    (List.length (Stats.Report.rows m_report));
  with_temp_file ".csv" (fun path ->
      Stats.Report.to_csv m_report ~path;
      Alcotest.(check int) "report csv = header + rows" 13
        (List.length (read_lines path)))

let () =
  Alcotest.run "obs"
    [
      ( "fig2-golden",
        [
          Alcotest.test_case "completions" `Quick test_fig2_golden_completions;
          Alcotest.test_case "event stream" `Quick test_fig2_golden_events;
          Alcotest.test_case "metrics and names" `Quick test_fig2_metrics_and_names;
          Alcotest.test_case "sim report" `Quick test_sim_report;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "removed observer restores schedule" `Quick
            test_removed_observer_restores_schedule;
          Alcotest.test_case "detached trace records no scheduler events" `Quick
            test_detached_trace_records_no_scheduler_events;
        ] );
      ( "ring",
        [
          Alcotest.test_case "drop oldest" `Quick test_ring_drop_oldest;
          Alcotest.test_case "drop newest" `Quick test_ring_drop_newest;
          Alcotest.test_case "grow" `Quick test_ring_grow;
          Alcotest.test_case "memory sink and drain" `Quick test_memory_sink_and_drain;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "hier served bits match departed bits" `Quick
            test_hier_metrics_match_departed_bits;
        ] );
      ( "export",
        [
          Alcotest.test_case "jsonl parse-back" `Quick test_jsonl_parseback;
          Alcotest.test_case "csv and reports" `Quick test_csv_and_reports;
        ] );
    ]
