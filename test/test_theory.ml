(* Theory module: closed-form bounds from Theorems 1-4 and Corollaries 1-2. *)

module T = Hpfq.Theory
module CT = Hpfq.Class_tree

let feq = Alcotest.float 1e-9

let test_bwfi_formula () =
  (* equal packet sizes: alpha = L_max *)
  Alcotest.check feq "equal sizes" 100.0
    (T.bwfi_wf2q ~l_i_max:100.0 ~l_max:100.0 ~r_i:0.3 ~r:1.0);
  (* smaller own packets: alpha = L_i + (L - L_i) r_i/r *)
  Alcotest.check feq "mixed sizes" (50.0 +. (50.0 *. 0.2))
    (T.bwfi_wf2q ~l_i_max:50.0 ~l_max:100.0 ~r_i:0.2 ~r:1.0)

let test_twfi_conversion () =
  Alcotest.check feq "alpha / r_i" 4.0 (T.twfi_of_bwfi ~bwfi:2.0 ~r_i:0.5)

let test_standalone_delay_bound () =
  Alcotest.check feq "sigma/r + L/r" (10.0 +. 0.1)
    (T.delay_bound_standalone_wf2q ~sigma:5.0 ~r_i:0.5 ~l_max:0.1 ~r:1.0)

let tree =
  CT.node "root" ~rate:1.0
    [
      CT.node "mid" ~rate:0.5
        [ CT.leaf "leaf" ~rate:0.25; CT.leaf "other" ~rate:0.25 ];
      CT.leaf "rest" ~rate:0.5;
    ]

let test_path_rates () =
  match T.path_rates ~tree ~leaf:"leaf" with
  | Ok rates ->
    Alcotest.(check (list (float 1e-9))) "leaf to root" [ 0.25; 0.5; 1.0 ] rates
  | Error e -> Alcotest.fail e

let test_hier_bwfi_theorem1 () =
  (* alpha = L at every level: Theorem 1 gives
     sum_h (r_i / r_{p^h}) alpha_{p^h} = L*(1 + .25/.5) = with L=1:
     h=0 (leaf, alpha_leaf within mid): r_i/r_leaf * alpha = 1*1
     h=1 (mid within root): (0.25/0.5)*1 = 0.5 -> total 1.5 *)
  match T.hier_bwfi ~tree ~leaf:"leaf" ~alpha_of:(fun ~node:_ ~rate:_ ~parent_rate:_ -> 1.0) with
  | Ok alpha -> Alcotest.check feq "weighted sum over path" 1.5 alpha
  | Error e -> Alcotest.fail e

let test_hier_delay_bound_cor2 () =
  (* sigma/r_i + L/r_leaf + L/r_mid (root excluded... Cor. 2 sums h=0..H-1
     over the node rates on the path below the root): with L=1:
     4/0.25 + 1/0.25 + 1/0.5 = 16 + 4 + 2 = 22 *)
  match T.hier_delay_bound ~tree ~leaf:"leaf" ~sigma:4.0 ~l_max:1.0 with
  | Ok bound -> Alcotest.check feq "Cor.2" 22.0 bound
  | Error e -> Alcotest.fail e

let test_cor1_dominates_cor2 () =
  (* Corollary 1 (WFI-based) is the looser bound *)
  let c1 = Result.get_ok (T.hier_delay_bound_via_wfi ~tree ~leaf:"leaf" ~sigma:4.0 ~l_max:1.0) in
  let c2 = Result.get_ok (T.hier_delay_bound ~tree ~leaf:"leaf" ~sigma:4.0 ~l_max:1.0) in
  Alcotest.(check bool) (Printf.sprintf "Cor1 %.3f >= Cor2 %.3f" c1 c2) true (c1 >= c2 -. 1e-9)

let test_errors () =
  (match T.hier_delay_bound ~tree ~leaf:"nope" ~sigma:1.0 ~l_max:1.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing leaf accepted");
  match T.hier_delay_bound ~tree ~leaf:"mid" ~sigma:1.0 ~l_max:1.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "interior node accepted as leaf"

let test_wfq_worst_case_grows () =
  let w n = T.bwfi_wfq_worst_case ~n ~l_max:1.0 ~r_i:0.5 ~r:1.0 in
  Alcotest.(check bool) "monotone in N" true (w 10 < w 20 && w 20 < w 40);
  Alcotest.(check bool) "linear order" true (w 40 -. w 20 > 0.9 *. (w 20 -. w 10) *. 2.0 -. 1e-9)

(* Cross-check Theorem 1 against the paper's Corollary 2 special case:
   with alpha_of = Theorem 4's formula and equal packet sizes,
   alpha_{p^h} = L, so hier_bwfi / r_i = sum L / r_{p^h}. *)
let test_theorem1_cor2_consistency () =
  let l = 1.0 in
  let alpha_of ~node:_ ~rate ~parent_rate =
    T.bwfi_wf2q ~l_i_max:l ~l_max:l ~r_i:rate ~r:parent_rate
  in
  let alpha = Result.get_ok (T.hier_bwfi ~tree ~leaf:"leaf" ~alpha_of) in
  let via_cor2 =
    Result.get_ok (T.hier_delay_bound ~tree ~leaf:"leaf" ~sigma:0.0 ~l_max:l)
  in
  Alcotest.check feq "alpha/r_i = sum L/r_ph" via_cor2 (alpha /. 0.25)

let () =
  Alcotest.run "theory"
    [
      ( "formulas",
        [
          Alcotest.test_case "B-WFI (Thm 4)" `Quick test_bwfi_formula;
          Alcotest.test_case "T-WFI conversion" `Quick test_twfi_conversion;
          Alcotest.test_case "standalone bound" `Quick test_standalone_delay_bound;
          Alcotest.test_case "WFQ worst case grows" `Quick test_wfq_worst_case_grows;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "path rates" `Quick test_path_rates;
          Alcotest.test_case "Theorem 1" `Quick test_hier_bwfi_theorem1;
          Alcotest.test_case "Corollary 2" `Quick test_hier_delay_bound_cor2;
          Alcotest.test_case "Cor1 dominates Cor2" `Quick test_cor1_dominates_cor2;
          Alcotest.test_case "Thm1/Cor2 consistency" `Quick test_theorem1_cor2_consistency;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
