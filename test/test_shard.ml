(* The sharded multi-port device, bottom up:

   - Spsc: FIFO order, bounded capacity, cross-domain blocking handoff;
   - Flow_table: pure and stable — the same (flow, geometry) always maps
     to the same link/leaf/shard, whole links move atomically between
     shards, every in-range output is hit;
   - Device: the lockstep differential. Random link counts, workloads
     and worker/shard geometries must produce exactly equal per-link
     departure traces, stamps, drop counts and hashes — -j1 vs -jK, and
     both vs the plain sequential per-link oracle [run_link_reference];
   - merged reports keep their shape (per-link rows + device totals). *)

module Q = QCheck

(* ---- Spsc ---- *)

let test_spsc_fifo_and_capacity () =
  let q = Shard.Spsc.create ~capacity:4 in
  Alcotest.(check int) "rounded to a power of two" 4 (Shard.Spsc.capacity q);
  Alcotest.(check bool) "push 4" true
    (List.for_all (fun v -> Shard.Spsc.try_push q v) [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "5th rejected: full" false (Shard.Spsc.try_push q 5);
  Alcotest.(check int) "length" 4 (Shard.Spsc.length q);
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4 ]
    (List.init 4 (fun _ -> Option.get (Shard.Spsc.try_pop q)));
  Alcotest.(check (option int)) "empty" None (Shard.Spsc.try_pop q);
  (match Shard.Spsc.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected")

let test_spsc_cross_domain_blocking () =
  (* a tiny mailbox forces both blocking paths: the producer fills it and
     must sleep until the consumer drains; the consumer outruns it and
     must sleep until more arrives. The order of everything received must
     still be exactly the order sent. *)
  let q = Shard.Spsc.create ~capacity:2 in
  let n = 10_000 in
  let consumer =
    Domain.spawn (fun () ->
        let acc = ref [] in
        let rec go () =
          match Shard.Spsc.pop q with
          | -1 -> List.rev !acc
          | v ->
            acc := v :: !acc;
            go ()
        in
        go ())
  in
  for i = 0 to n - 1 do
    Shard.Spsc.push q i
  done;
  Shard.Spsc.push q (-1);
  let received = Domain.join consumer in
  Alcotest.(check int) "all received" n (List.length received);
  Alcotest.(check bool) "in order" true
    (List.for_all2 ( = ) received (List.init n (fun i -> i)))

(* ---- Flow_table ---- *)

let geometry_gen =
  Q.Gen.(
    triple (int_range 1 64) (* links *) (int_range 1 8) (* shards *)
      (int_range 0 4096) (* flow *))

let prop_flow_table_stable_and_in_range =
  Q.Test.make ~count:500 ~name:"flow_table: pure, in range, composition holds"
    (Q.make geometry_gen) (fun (links, shards, flow) ->
      let link = Shard.Flow_table.link_of_flow ~links flow in
      let shard = Shard.Flow_table.shard_of_flow ~links ~shards flow in
      link >= 0 && link < links && shard >= 0 && shard < shards
      (* pure: asking twice is identical *)
      && Shard.Flow_table.link_of_flow ~links flow = link
      (* a flow's shard is its link's shard: re-sharding moves whole links *)
      && Shard.Flow_table.shard_of_link ~links ~shards link = shard)

let prop_same_flow_same_shard_across_worker_counts =
  (* the satellite property: for a fixed links count, the (flow -> link)
     map cannot depend on the shard/worker count at all *)
  Q.Test.make ~count:300 ~name:"flow_table: link assignment ignores shards"
    (Q.make Q.Gen.(pair (int_range 1 64) (int_range 0 4096)))
    (fun (links, flow) ->
      let link = Shard.Flow_table.link_of_flow ~links flow in
      List.for_all
        (fun shards ->
          Shard.Flow_table.shard_of_flow ~links ~shards flow
          = Shard.Flow_table.shard_of_link ~links ~shards link)
        [ 1; 2; 3; 5; 8 ])

let test_flow_table_covers_all_shards () =
  (* block partition: with shards <= links every shard owns >= 1 link *)
  List.iter
    (fun (links, shards) ->
      let owners =
        List.sort_uniq compare
          (List.init links (fun link ->
               Shard.Flow_table.shard_of_link ~links ~shards link))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "links=%d shards=%d" links shards)
        (List.init shards (fun s -> s))
        owners)
    [ (1, 1); (4, 4); (16, 3); (64, 8); (1024, 7) ]

let test_flow_table_rejects_bad_geometry () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid geometry must be rejected"
  in
  invalid (fun () -> Shard.Flow_table.link_of_flow ~links:0 3);
  invalid (fun () -> Shard.Flow_table.link_of_flow ~links:4 (-1));
  invalid (fun () -> Shard.Flow_table.leaf_of_flow ~leaves:0 3);
  invalid (fun () -> Shard.Flow_table.shard_of_link ~links:4 ~shards:2 4);
  invalid (fun () -> Shard.Flow_table.shard_of_link ~links:4 ~shards:0 1)

(* ---- Device lockstep differential ---- *)

let device ~workers ~shards ~links ~rounds ~seed =
  let workload = { (Shard.Device.default_workload ~rounds) with seed } in
  Shard.Device.create ~workers ~shards ~workload ~record_traces:true ~links ()

let check_links_equal ~what (a : Shard.Device.link_result array)
    (b : Shard.Device.link_result array) =
  if Array.length a <> Array.length b then
    Q.Test.fail_reportf "%s: link counts differ" what;
  Array.iteri
    (fun i (x : Shard.Device.link_result) ->
      let y = b.(i) in
      if
        x.Shard.Device.departed_pkts <> y.Shard.Device.departed_pkts
        || x.Shard.Device.departed_bits <> y.Shard.Device.departed_bits
        || x.Shard.Device.drops <> y.Shard.Device.drops
        || x.Shard.Device.events <> y.Shard.Device.events
        || x.Shard.Device.final_time <> y.Shard.Device.final_time
        || x.Shard.Device.trace_hash <> y.Shard.Device.trace_hash
        || x.Shard.Device.trace <> y.Shard.Device.trace
      then
        Q.Test.fail_reportf "%s: link %d diverges (pkts %d/%d, hash %s/%s)"
          what i x.Shard.Device.departed_pkts y.Shard.Device.departed_pkts
          (Shard.Device.hash_hex x.Shard.Device.trace_hash)
          (Shard.Device.hash_hex y.Shard.Device.trace_hash))
    a;
  true

let lockstep_gen =
  Q.Gen.(
    let* links = int_range 1 12 in
    let* workers = int_range 2 4 in
    let* shards = int_range 1 6 in
    let* rounds = int_range 1 25 in
    let* seed = int64 in
    return (links, workers, shards, rounds, seed))

let prop_device_lockstep_across_geometries =
  Q.Test.make ~count:12
    ~name:"device: -j1 trace == -jK trace == sequential oracle (random geometry)"
    (Q.make lockstep_gen) (fun (links, workers, shards, rounds, seed) ->
      let r1 = Shard.Device.run (device ~workers:1 ~shards:1 ~links ~rounds ~seed) in
      let rk = Shard.Device.run (device ~workers ~shards ~links ~rounds ~seed) in
      ignore (check_links_equal ~what:"-j1 vs -jK" r1.Shard.Device.per_link rk.Shard.Device.per_link);
      if r1.Shard.Device.device_hash <> rk.Shard.Device.device_hash then
        Q.Test.fail_reportf "device hash diverges across worker counts";
      (* every link against the no-pool, no-mailbox sequential replay *)
      let t = device ~workers ~shards ~links ~rounds ~seed in
      let oracle =
        Array.init links (fun link -> Shard.Device.run_link_reference t ~link)
      in
      check_links_equal ~what:"-jK vs oracle" rk.Shard.Device.per_link oracle)

let test_device_shards_exceed_workers_and_links () =
  (* more shards than workers (sequential multi-mailbox drain) and more
     shards than links (some shards own nothing) must both still match *)
  let r1 = Shard.Device.run (device ~workers:1 ~shards:1 ~links:3 ~rounds:12 ~seed:5L) in
  let r2 = Shard.Device.run (device ~workers:2 ~shards:5 ~links:3 ~rounds:12 ~seed:5L) in
  Alcotest.(check bool) "device hash equal" true
    (r1.Shard.Device.device_hash = r2.Shard.Device.device_hash);
  Alcotest.(check int) "pkts equal" r1.Shard.Device.total_pkts r2.Shard.Device.total_pkts

let test_device_overload_drops_deterministic () =
  let workload =
    { (Shard.Device.default_workload ~rounds:30) with
      Shard.Device.overload = 3.0; seed = 11L }
  in
  let run workers =
    Shard.Device.run (Shard.Device.create ~workers ~workload ~links:5 ())
  in
  let a = run 1 and b = run 3 in
  Alcotest.(check bool) "drops happen under 3x overload" true (a.Shard.Device.total_drops > 0);
  Alcotest.(check int) "drop count identical across -j" a.Shard.Device.total_drops
    b.Shard.Device.total_drops;
  Alcotest.(check bool) "hash identical" true
    (a.Shard.Device.device_hash = b.Shard.Device.device_hash)

let test_device_rejects_bad_config () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid device config must be rejected"
  in
  invalid (fun () -> Shard.Device.create ~links:0 ());
  invalid (fun () -> Shard.Device.create ~workers:0 ~links:1 ());
  invalid (fun () -> Shard.Device.create ~shards:0 ~links:1 ());
  invalid (fun () ->
      Shard.Device.create
        ~workload:{ (Shard.Device.default_workload ~rounds:1) with Shard.Device.overload = 0.0 }
        ~links:1 ())

(* ---- merged reports ---- *)

let test_reports_shape () =
  let workload = Shard.Device.default_workload ~rounds:10 in
  let t = Shard.Device.create ~workers:2 ~workload ~observe:true ~links:4 () in
  let r = Shard.Device.run t in
  let rep = Shard.Device.report r in
  let rows = Stats.Report.rows rep in
  Alcotest.(check int) "per-link rows + device total" 5 (List.length rows);
  (match List.rev rows with
  | total :: _ -> (
    Alcotest.(check string) "total row tag" "device" (List.hd total);
    match (List.nth total 2, r.Shard.Device.total_pkts) with
    | cell, pkts -> Alcotest.(check string) "total pkts" (string_of_int pkts) cell)
  | [] -> Alcotest.fail "empty report");
  (* merged sim report: per-sim occupancy plus aggregate totals *)
  let sim_rows = Stats.Report.rows (Shard.Device.sim_report r) in
  let key row = List.hd row in
  Alcotest.(check bool) "has totals" true
    (List.exists (fun row -> key row = "pending/total") sim_rows);
  Alcotest.(check bool) "has per-sim suffixed rows" true
    (List.exists (fun row -> key row = "pending#3") sim_rows);
  (* all links drained: device-wide pending is 0 *)
  (match List.find_opt (fun row -> key row = "pending/total") sim_rows with
  | Some [ _; v ] -> Alcotest.(check string) "drained" "0" v
  | _ -> Alcotest.fail "pending/total row malformed");
  (* merged metrics: per-link node rows + device total *)
  match Shard.Device.metrics_report r with
  | None -> Alcotest.fail "observe:true must yield metrics"
  | Some m ->
    let mrows = Stats.Report.rows m in
    Alcotest.(check string) "link column first" "link" (List.hd (Stats.Report.columns m));
    Alcotest.(check bool) "one row per node per link + total" true
      (List.length mrows > 4);
    (match List.rev mrows with
    | total :: _ -> Alcotest.(check string) "metrics total tag" "device" (List.hd total)
    | [] -> Alcotest.fail "empty metrics report")

let test_metrics_none_without_observe () =
  let t = Shard.Device.create ~workload:(Shard.Device.default_workload ~rounds:3) ~links:2 () in
  match Shard.Device.metrics_report (Shard.Device.run t) with
  | None -> ()
  | Some _ -> Alcotest.fail "metrics_report must be None without observe"

let qcheck rand t = QCheck_alcotest.to_alcotest ~rand t

let () =
  let rand = Random.State.make [| 0x5a4d |] in
  Alcotest.run "shard"
    [
      ( "spsc",
        [
          ("fifo order and bounded capacity", `Quick, test_spsc_fifo_and_capacity);
          ("cross-domain blocking handoff", `Quick, test_spsc_cross_domain_blocking);
        ] );
      ( "flow_table",
        [
          qcheck rand prop_flow_table_stable_and_in_range;
          qcheck rand prop_same_flow_same_shard_across_worker_counts;
          ("block partition covers every shard", `Quick, test_flow_table_covers_all_shards);
          ("invalid geometry rejected", `Quick, test_flow_table_rejects_bad_geometry);
        ] );
      ( "device",
        [
          qcheck rand prop_device_lockstep_across_geometries;
          ("shards > workers and shards > links", `Quick, test_device_shards_exceed_workers_and_links);
          ("overload drops deterministic across -j", `Quick, test_device_overload_drops_deterministic);
          ("invalid config rejected", `Quick, test_device_rejects_bad_config);
        ] );
      ( "reports",
        [
          ("merged report shapes", `Quick, test_reports_shape);
          ("no metrics without observe", `Quick, test_metrics_none_without_observe);
        ] );
    ]
