(* Burst-drained execution and the trace layer.

   The burst-drain contract (Server/Hier/Hier_flat [burst_max]): departure
   order, times and every public clock are *bit-identical* at every cap —
   a departure only runs inline when it would have been the very next
   event anyway. Property-tested here against the per-packet reference on
   random trees with churn, then end-to-end through Netgraph.Pipeline.

   The trace layer: lossless CSV (%.17g round-trip, byte-stable re-save),
   the HPFQTRC2 binary format, format sniffing, malformed-input
   diagnostics, internet-mix determinism, and batched replay grouping. *)

module Q = QCheck
module Sim = Engine.Simulator
module HE = Hpfq.Hier_engine
module CT = Hpfq.Class_tree
module Trace = Traffic.Trace

let wf2q_plus = Hpfq.Disciplines.wf2q_plus

let with_temp_file f =
  let path = Filename.temp_file "hpfq_trace" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- CSV: lossless floats, byte-stable re-save, diagnostics ---- *)

(* sorted upfront: save writes in time order, so load returns this order *)
let awkward_events =
  List.sort compare
    [
      { Trace.time = 0.1; leaf = "a"; size_bits = 1.0 /. 3.0 };
      { Trace.time = Float.pi *. 1e-7; leaf = "b"; size_bits = 320.0 };
      { Trace.time = 1.0 +. epsilon_float; leaf = "a"; size_bits = 0x1.fffffffffffffp+10 };
      { Trace.time = 2.0; leaf = "c/with odd-name?"; size_bits = 1e-300 };
      { Trace.time = 7.300000000000001; leaf = "b"; size_bits = 12_000.0 };
    ]

let test_csv_roundtrip () =
  with_temp_file (fun path ->
      Trace.save ~path awkward_events;
      let loaded = Trace.load ~path in
      Alcotest.(check bool) "floats survive exactly" true (loaded = awkward_events))

let test_csv_byte_stable () =
  with_temp_file (fun p1 ->
      with_temp_file (fun p2 ->
          Trace.save ~path:p1 awkward_events;
          Trace.save ~path:p2 (Trace.load ~path:p1);
          Alcotest.(check string) "save . load = identity on bytes"
            (read_file p1) (read_file p2)))

let write_lines path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (fun l -> output_string oc (l ^ "\n")) lines)

let contains_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
  scan 0

let expect_failure_mentioning ~parts f =
  match f () with
  | _ -> Alcotest.failf "expected Failure mentioning %s" (String.concat ", " parts)
  | exception Failure msg ->
    List.iter
      (fun part ->
        if not (contains_substring ~needle:part msg) then
          Alcotest.failf "message %S lacks %S" msg part)
      parts

let test_csv_malformed () =
  with_temp_file (fun path ->
      write_lines path [ "time,leaf,size_bits"; "0.5,a,100"; "0.7,b,oops" ];
      expect_failure_mentioning ~parts:[ "line 3"; "size_bits"; "oops" ] (fun () ->
          Trace.load ~path));
  with_temp_file (fun path ->
      write_lines path [ "time,leaf,size_bits"; "nope,a,100" ];
      expect_failure_mentioning ~parts:[ "line 2"; "time"; "nope" ] (fun () ->
          Trace.load ~path));
  with_temp_file (fun path ->
      write_lines path [ "time,leaf,size_bits"; "0.5,a" ];
      expect_failure_mentioning ~parts:[ "line 2"; "expected 3 fields" ] (fun () ->
          Trace.load ~path));
  with_temp_file (fun path ->
      write_lines path [ "when,who,how_big" ];
      expect_failure_mentioning ~parts:[ "line 1"; "bad header" ] (fun () ->
          Trace.load ~path))

(* ---- binary v2: bit-exact round-trip, sniffing, diagnostics ---- *)

let test_binary_roundtrip () =
  with_temp_file (fun path ->
      Trace.save_binary ~path awkward_events;
      Alcotest.(check bool) "bit-exact round-trip" true
        (Trace.load_binary ~path = awkward_events))

let test_load_any_sniffs () =
  with_temp_file (fun path ->
      Trace.save_binary ~path awkward_events;
      Alcotest.(check bool) "binary sniffed" true (Trace.load_any ~path = awkward_events));
  with_temp_file (fun path ->
      Trace.save ~path awkward_events;
      Alcotest.(check bool) "csv sniffed" true (Trace.load_any ~path = awkward_events))

let test_binary_malformed () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "HPFQTRC9________";
      close_out oc;
      expect_failure_mentioning ~parts:[ "bad magic" ] (fun () ->
          Trace.load_binary ~path));
  with_temp_file (fun path ->
      Trace.save_binary ~path awkward_events;
      (* drop the last byte: the record section length no longer matches *)
      let bytes = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub bytes 0 (String.length bytes - 1));
      close_out oc;
      expect_failure_mentioning ~parts:[ "record section" ] (fun () ->
          Trace.load_binary ~path))

(* ---- internet mix: deterministic in the seed ---- *)

let test_internet_mix_deterministic () =
  let gen seed =
    Trace.internet_mix ~seed ~leaves:[ "a"; "b"; "c"; "d" ] ~duration:2.0
      ~mean_pkts_per_leaf:32.0 ()
  in
  Alcotest.(check bool) "same seed, same trace" true (gen 7L = gen 7L);
  Alcotest.(check bool) "different seed, different trace" false (gen 7L = gen 8L);
  let t = gen 7L in
  Alcotest.(check bool) "non-empty" true (t <> []);
  Alcotest.(check bool) "time-ordered" true
    (List.sort compare (List.map (fun e -> e.Trace.time) t)
    = List.map (fun e -> e.Trace.time) t);
  List.iter
    (fun e ->
      if e.Trace.size_bits < 320.0 || e.Trace.size_bits > 12_000.0 then
        Alcotest.failf "size %g outside the mix bounds" e.Trace.size_bits)
    t

(* ---- lockstep: burst-drained replay = per-packet replay ---- *)

(* Random trees (depth <= 5, fan-out <= 8, node budget 48) with random
   arrivals and leaf close/reopen churn, mirroring test_hier_flat's
   generator; the property replays each scenario per-packet (burst 1) and
   at each larger cap, requiring the exact same departure log, drops and
   final clock — on both engines. *)

type scenario = {
  spec : CT.t;
  leaves : string list;
  packets : (float * int * float) list; (* (time, leaf index, size_bits) *)
  churn : (float * int * bool * float) list;
      (* (close time, leaf index, drop?, reopen delay) *)
}

let scenario_gen rng =
  let budget = ref 48 in
  let fresh = ref 0 in
  let rec gen ~depth rate =
    decr budget;
    let name =
      let id = !fresh in
      incr fresh;
      Printf.sprintf "n%d" id
    in
    let leaf () =
      let cap =
        if Random.State.int rng 6 = 0 then Some (1.0 +. Random.State.float rng 6.0)
        else None
      in
      CT.leaf ?queue_capacity_bits:cap name ~rate
    in
    if depth >= 5 || !budget <= 0 || (depth > 0 && Random.State.int rng 3 = 0) then
      leaf ()
    else begin
      let k = min (1 + Random.State.int rng 8) (max 1 !budget) in
      let weights = Array.init k (fun _ -> 0.2 +. Random.State.float rng 0.8) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let scale = 0.999 *. rate /. total in
      CT.node name ~rate
        (List.init k (fun i -> gen ~depth:(depth + 1) (weights.(i) *. scale)))
    end
  in
  let spec = gen ~depth:0 1.0 in
  let leaves = List.map fst (CT.leaves spec) in
  let n_leaves = List.length leaves in
  let n_packets = 1 + Random.State.int rng 120 in
  let packets =
    List.init n_packets (fun _ ->
        ( Random.State.float rng 12.0,
          Random.State.int rng n_leaves,
          0.1 +. Random.State.float rng 1.9 ))
  in
  let churn =
    List.init (Random.State.int rng 4) (fun _ ->
        ( Random.State.float rng 10.0,
          Random.State.int rng n_leaves,
          Random.State.bool rng,
          0.2 +. Random.State.float rng 4.0 ))
  in
  { spec; leaves; packets; churn }

let print_scenario s =
  Format.asprintf "%a@ packets=[%s]@ churn=[%s]" CT.pp s.spec
    (String.concat "; "
       (List.map (fun (t, l, z) -> Printf.sprintf "(%h,%d,%h)" t l z) s.packets))
    (String.concat "; "
       (List.map
          (fun (t, l, d, r) -> Printf.sprintf "(%h,%d,%b,%h)" t l d r)
          s.churn))

let replay engine ~burst s =
  let sim = Sim.create () in
  let log = ref [] in
  let on_depart pkt ~leaf t = log := (leaf, pkt.Net.Packet.seq, t) :: !log in
  let h =
    HE.create ~sim ~spec:s.spec ~factory:wf2q_plus ~engine ~on_depart
      ~burst_max:burst ()
  in
  let ids = Array.of_list (List.map (HE.leaf_id h) s.leaves) in
  List.iter
    (fun (at, leaf, size) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             (* the leaf may be closed by churn at this instant; a rejected
                arrival is part of the scenario, identically in every run *)
             try ignore (HE.inject h ~leaf:ids.(leaf) ~size_bits:size)
             with Invalid_argument _ -> ())))
    s.packets;
  List.iter
    (fun (at, leaf, drop, reopen_after) ->
      let policy = if drop then `Drop else `Drain in
      ignore
        (Sim.schedule sim ~at (fun () ->
             try HE.close_leaf h ~leaf:ids.(leaf) ~policy
             with Invalid_argument _ -> ()));
      ignore
        (Sim.schedule sim ~at:(at +. reopen_after) (fun () ->
             try HE.reopen_leaf h ~leaf:ids.(leaf)
             with Invalid_argument _ -> ())))
    s.churn;
  Sim.run sim;
  (List.rev !log, HE.drops h, HE.departed_bits h ~node:(HE.root_name h), Sim.now sim)

let bursts = [ 2; 8; 64; max_int ]

let prop_burst_lockstep engine name =
  Q.Test.make ~count:400 ~name
    (Q.make scenario_gen ~print:print_scenario)
    (fun s ->
      let reference = replay engine ~burst:1 s in
      List.for_all (fun burst -> replay engine ~burst s = reference) bursts)

(* ---- batched trace replay = per-event trace replay ---- *)

(* A trace with deliberate timestamp collisions across leaves: grouped
   scheduling must reproduce the per-event departure log exactly. *)
let test_batched_replay_grouping () =
  let trace =
    Trace.internet_mix ~seed:11L ~leaves:[ "a1"; "a2"; "b1"; "b2"; "b3" ]
      ~duration:1.0 ~mean_pkts_per_leaf:40.0 ()
  in
  let trace =
    (* collide timestamps: duplicate every 3rd event onto another leaf *)
    List.concat
      (List.mapi
         (fun i e ->
           if i mod 3 = 0 then [ e; { e with Trace.leaf = "b1" } ] else [ e ])
         trace)
  in
  let spec =
    CT.node "link" ~rate:20_000.0
      [
        CT.node "A" ~rate:12_000.0
          [ CT.leaf "a1" ~rate:8_000.0; CT.leaf "a2" ~rate:4_000.0 ];
        CT.node "B" ~rate:8_000.0
          [
            CT.leaf "b1" ~rate:4_000.0;
            CT.leaf "b2" ~rate:2_000.0;
            CT.leaf "b3" ~rate:2_000.0;
          ];
      ]
  in
  let run batched =
    let sim = Sim.create () in
    let log = ref [] in
    let h =
      HE.create ~sim ~spec ~factory:wf2q_plus
        ~on_depart:(fun pkt ~leaf t -> log := (leaf, pkt.Net.Packet.seq, t) :: !log)
        ~burst_max:8 ()
    in
    let emit_for ~leaf =
      let id = HE.leaf_id h leaf in
      Some (fun ~size_bits -> ignore (HE.inject h ~leaf:id ~size_bits))
    in
    let n = Trace.replay ~batched ~sim ~emit_for trace in
    Sim.run sim;
    (n, List.rev !log)
  in
  let n1, per_event = run false in
  let n2, grouped = run true in
  Alcotest.(check int) "same arrivals scheduled" n1 n2;
  Alcotest.(check bool) "identical departure logs" true (per_event = grouped)

(* ---- pipeline: end-to-end delays identical at burst_max > 1 ---- *)

let test_pipeline_burst_invariance () =
  let hop_spec name =
    CT.node name ~rate:1.0
      [ CT.leaf (name ^ "/flow") ~rate:0.4; CT.leaf (name ^ "/cross") ~rate:0.6 ]
  in
  let run burst_max =
    let sim = Sim.create () in
    let deliveries = ref [] in
    let hops = List.init 3 (fun k -> (Printf.sprintf "h%d" k, hop_spec (Printf.sprintf "h%d" k))) in
    let p =
      Netgraph.Pipeline.create ~sim ~hops
        ~make_policy:(Hpfq.Hier.uniform wf2q_plus)
        ~propagation_delay:0.01
        ~on_deliver:(fun ~flow pkt ~injected ~delivered ->
          deliveries := (flow, pkt.Net.Packet.seq, injected, delivered) :: !deliveries)
        ~burst_max ()
    in
    Netgraph.Pipeline.add_flow p ~name:"f"
      ~route:(List.init 3 (fun k -> Printf.sprintf "h%d/flow" k));
    (* the guaranteed flow plus saturating cross traffic at every hop *)
    for i = 0 to 19 do
      ignore
        (Sim.schedule sim ~at:(0.37 *. float_of_int i) (fun () ->
             Netgraph.Pipeline.inject p ~flow:"f" ~size_bits:1.0))
    done;
    List.iteri
      (fun k _ ->
        let server = Netgraph.Pipeline.hop_server p (Printf.sprintf "h%d" k) in
        let leaf = Hpfq.Hier.leaf_id server (Printf.sprintf "h%d/cross" k) in
        ignore
          (Sim.schedule sim ~at:0.0 (fun () ->
               for _ = 1 to 40 do
                 ignore (Hpfq.Hier.inject server ~leaf ~size_bits:1.0)
               done)))
      hops;
    Sim.run ~until:60.0 sim;
    List.rev !deliveries
  in
  let reference = run 1 in
  Alcotest.(check int) "all packets delivered" 20 (List.length reference);
  List.iter
    (fun burst ->
      Alcotest.(check bool)
        (Printf.sprintf "burst_max=%d delivers identically" burst)
        true
        (run burst = reference))
    [ 2; 4; 64 ]

let () =
  let seeded = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xf1a7; 42 |]) in
  Alcotest.run "replay"
    [
      ( "trace_csv",
        [
          Alcotest.test_case "lossless roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "byte-stable re-save" `Quick test_csv_byte_stable;
          Alcotest.test_case "malformed diagnostics" `Quick test_csv_malformed;
        ] );
      ( "trace_binary",
        [
          Alcotest.test_case "bit-exact roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "load_any sniffs format" `Quick test_load_any_sniffs;
          Alcotest.test_case "malformed diagnostics" `Quick test_binary_malformed;
        ] );
      ( "internet_mix",
        [
          Alcotest.test_case "deterministic in seed" `Quick
            test_internet_mix_deterministic;
        ] );
      ( "lockstep",
        [
          seeded
            (prop_burst_lockstep `Flat
               "flat: burst-drained replay = per-packet replay");
          seeded
            (prop_burst_lockstep `Generic
               "generic: burst-drained replay = per-packet replay");
        ] );
      ( "replay",
        [
          Alcotest.test_case "batched grouping = per-event" `Quick
            test_batched_replay_grouping;
          Alcotest.test_case "pipeline delays burst-invariant" `Quick
            test_pipeline_burst_invariance;
        ] );
    ]
