(* Traffic sources: arrival patterns, rates, leaky-bucket conformance. *)

module Sim = Engine.Simulator
module Src = Traffic.Source

let collect_arrivals f =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let emit ~size_bits = arrivals := (Sim.now sim, size_bits) :: !arrivals in
  let handle = f sim emit in
  Sim.run ~until:10.0 sim;
  (List.rev !arrivals, handle)

let test_cbr_spacing () =
  let arrivals, _ =
    collect_arrivals (fun sim emit ->
        Src.cbr ~sim ~emit ~rate:2.0 ~packet_bits:1.0 ~start:0.5 ~stop_at:3.0 ())
  in
  (* one packet every 0.5s from 0.5 to 3.0 inclusive: 0.5,1.0,...,3.0 *)
  Alcotest.(check int) "count" 6 (List.length arrivals);
  List.iteri
    (fun k (t, _) ->
      Alcotest.(check (float 1e-9)) "spacing" (0.5 +. (0.5 *. float_of_int k)) t)
    arrivals

let test_on_off_duty_cycle () =
  let arrivals, _ =
    collect_arrivals (fun sim emit ->
        Src.on_off ~sim ~emit ~peak_rate:10.0 ~packet_bits:1.0 ~on_duration:0.5
          ~off_duration:0.5 ~start:0.0 ~stop_at:2.9 ())
  in
  (* periods [0,0.5), [1,1.5), [2,2.5): 5 packets each at 0.1 spacing *)
  Alcotest.(check int) "three bursts of five" 15 (List.length arrivals);
  List.iter
    (fun (t, _) ->
      let phase = Float.rem t 1.0 in
      Alcotest.(check bool) "inside on-phase" true (phase < 0.5 -. 1e-9 || phase < 0.5))
    arrivals;
  Alcotest.(check bool) "nothing in off-phase" true
    (List.for_all (fun (t, _) -> Float.rem t 1.0 < 0.5) arrivals)

let test_poisson_mean_rate () =
  let arrivals, _ =
    collect_arrivals (fun sim emit ->
        Src.poisson ~sim ~emit ~rng:(Engine.Rng.create 3L) ~mean_rate:100.0
          ~packet_bits:1.0 ~stop_at:10.0 ())
  in
  let n = List.length arrivals in
  (* ~1000 arrivals expected; 3 sigma ~ 95 *)
  Alcotest.(check bool) (Printf.sprintf "poisson count %d near 1000" n) true
    (n > 880 && n < 1120)

let test_packet_train_shape () =
  let arrivals, _ =
    collect_arrivals (fun sim emit ->
        Src.packet_train ~sim ~emit ~burst_packets:3 ~packet_bits:1.0
          ~intra_spacing:0.01 ~inter_burst:1.0 ~start:0.0 ~stop_at:2.5 ())
  in
  Alcotest.(check int) "three bursts" 9 (List.length arrivals);
  (* packets 0-2 at 0, 0.01, 0.02; 3-5 at 1.0 ... *)
  let times = List.map fst arrivals in
  Alcotest.(check (float 1e-9)) "burst 2 start" 1.0 (List.nth times 3);
  Alcotest.(check (float 1e-9)) "burst 2 second packet" 1.01 (List.nth times 4)

let test_stop_handle () =
  let sim = Sim.create () in
  let count = ref 0 in
  let emit ~size_bits:_ = incr count in
  let handle = Src.cbr ~sim ~emit ~rate:1.0 ~packet_bits:1.0 () in
  ignore (Sim.schedule sim ~at:3.5 (fun () -> Src.stop handle));
  Sim.run ~until:10.0 sim;
  Alcotest.(check int) "stopped after 4 packets (t=0..3)" 4 !count

let test_leaky_bucket_conformance () =
  (* arrivals must satisfy A(t1,t2) <= sigma + rho (t2-t1) for all windows *)
  let sigma = 5.0 and rho = 2.0 in
  let arrivals, _ =
    collect_arrivals (fun sim emit ->
        Src.leaky_bucket_greedy ~sim ~emit ~sigma_bits:sigma ~rho ~packet_bits:1.0
          ~stop_at:9.0 ())
  in
  let times = Array.of_list (List.map fst arrivals) in
  let n = Array.length times in
  Alcotest.(check bool) "emits a burst then paces" true (n > 10);
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let bits = float_of_int (j - i + 1) in
      let span = times.(j) -. times.(i) in
      if bits > sigma +. (rho *. span) +. 1e-9 then ok := false
    done
  done;
  Alcotest.(check bool) "conforms to (sigma, rho)" true !ok;
  (* and it is greedy: the initial burst is exactly floor(sigma) packets *)
  let at_zero = List.length (List.filter (fun (t, _) -> t = 0.0) arrivals) in
  Alcotest.(check int) "initial burst" 5 at_zero

let test_leaky_bucket_small_sigma () =
  let arrivals, _ =
    collect_arrivals (fun sim emit ->
        Src.leaky_bucket_greedy ~sim ~emit ~sigma_bits:0.25 ~rho:1.0 ~packet_bits:1.0
          ~stop_at:5.0 ())
  in
  match arrivals with
  | (t, _) :: _ ->
    Alcotest.(check (float 1e-9)) "first packet waits for tokens" 0.75 t
  | [] -> Alcotest.fail "no arrivals"

let test_greedy_tops_up () =
  let arrivals, _ =
    collect_arrivals (fun sim emit ->
        Src.greedy ~sim ~emit ~packet_bits:1.0 ~backlog_packets:10 ~top_up_every:1.0
          ~stop_at:2.5 ())
  in
  Alcotest.(check int) "three dumps" 30 (List.length arrivals)

let () =
  Alcotest.run "traffic"
    [
      ( "sources",
        [
          Alcotest.test_case "cbr spacing" `Quick test_cbr_spacing;
          Alcotest.test_case "on/off duty cycle" `Quick test_on_off_duty_cycle;
          Alcotest.test_case "poisson mean rate" `Quick test_poisson_mean_rate;
          Alcotest.test_case "packet train shape" `Quick test_packet_train_shape;
          Alcotest.test_case "stop handle" `Quick test_stop_handle;
          Alcotest.test_case "greedy top-up" `Quick test_greedy_tops_up;
        ] );
      ( "leaky-bucket",
        [
          Alcotest.test_case "conformance" `Quick test_leaky_bucket_conformance;
          Alcotest.test_case "small sigma" `Quick test_leaky_bucket_small_sigma;
        ] );
    ]
