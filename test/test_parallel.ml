(* The multicore sweep runner's contracts, each tested directly:

   - Pool.map is observationally a pure [Array.init] for any worker
     count — same values, same order, exceptions propagated;
   - Rng.for_task derives stable per-index streams: order- and
     worker-independent (unlike [split], which advances the parent),
     pairwise distinct, parent left untouched;
   - sweeps are bit-identical across -j1 / -j4 / -j8 and equal to the
     pre-pool sequential formulation (the determinism contract on real
     workloads);
   - workers read a pre-spawn config snapshot, so a concurrent
     [set_default_backend] cannot split one sweep across two backends. *)

module Pool = Parallel.Pool
module Rng = Engine.Rng
module Sim = Engine.Simulator
module Q = QCheck

(* ---- Pool.map as Array.init ---- *)

let test_map_matches_sequential () =
  let f i = (i * i) + 7 in
  let expected = Array.init 23 f in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      Alcotest.(check (array int))
        (Printf.sprintf "map at -j%d" jobs)
        expected
        (Pool.map pool ~tasks:23 ~f))
    [ 1; 4; 7 ]

let test_map_reduce_merges_in_index_order () =
  let pool = Pool.create ~jobs:4 () in
  let collected =
    Pool.map_reduce pool ~tasks:17 ~f:(fun i -> i) ~merge:(fun acc v -> v :: acc) ~init:[]
  in
  Alcotest.(check (list int))
    "merge sees results in task-index order"
    (List.init 17 (fun i -> i))
    (List.rev collected)

let test_map_list () =
  let pool = Pool.create ~jobs:3 () in
  let xs = [ "a"; "bb"; "ccc"; "dddd"; "eeeee" ] in
  Alcotest.(check (list int))
    "map_list = List.map" (List.map String.length xs)
    (Pool.map_list pool ~f:String.length xs)

exception Task_boom of int

let test_exception_propagates () =
  let pool = Pool.create ~jobs:4 () in
  Alcotest.check_raises "worker exception reaches the caller" (Task_boom 5)
    (fun () ->
      ignore (Pool.map pool ~tasks:16 ~f:(fun i -> if i = 5 then raise (Task_boom 5) else i)))

let test_edge_cases () =
  let pool = Pool.create ~jobs:4 () in
  Alcotest.(check (array int)) "tasks=0 is empty" [||] (Pool.map pool ~tasks:0 ~f:(fun i -> i));
  Alcotest.(check (array int))
    "more workers than tasks" [| 0; 1 |]
    (Pool.map (Pool.create ~jobs:16 ()) ~tasks:2 ~f:(fun i -> i));
  (match Pool.create ~jobs:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Pool.create ~jobs:0 must be rejected");
  match Pool.map pool ~tasks:(-1) ~f:(fun i -> i) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative task count must be rejected"

(* ---- Rng.for_task ---- *)

let draws n rng = List.init n (fun _ -> Rng.next_int64 rng)

let test_for_task_leaves_parent_untouched () =
  let a = Rng.create 42L and b = Rng.create 42L in
  ignore (Rng.for_task a 0);
  ignore (Rng.for_task a 999);
  Alcotest.(check (list int64))
    "parent stream unchanged by child derivation" (draws 4 b) (draws 4 a)

let test_for_task_order_insensitive () =
  let child_streams order =
    let t = Rng.create 7L in
    let tbl = Hashtbl.create 8 in
    List.iter (fun i -> Hashtbl.replace tbl i (draws 4 (Rng.for_task t i))) order;
    List.map (fun i -> Hashtbl.find tbl i) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list (list int64)))
    "derivation order is immaterial"
    (child_streams [ 0; 1; 2; 3 ])
    (child_streams [ 3; 1; 0; 2 ])

let test_for_task_children_distinct () =
  let t = Rng.create 1L in
  let firsts = List.init 256 (fun i -> Rng.next_int64 (Rng.for_task t i)) in
  let uniq = List.sort_uniq Int64.compare firsts in
  Alcotest.(check int) "256 children, 256 distinct first draws" 256 (List.length uniq)

let test_for_task_negative_rejected () =
  match Rng.for_task (Rng.create 0L) (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "for_task must reject negative indices"

let prop_for_task_deterministic_and_distinct =
  Q.Test.make ~count:200 ~name:"for_task: deterministic; distinct i<>j"
    Q.(triple int64 small_nat small_nat)
    (fun (seed, i, j) ->
      let stream k = draws 8 (Rng.for_task (Rng.create seed) k) in
      stream i = stream i && (i = j || stream i <> stream j))

(* Adjacent task streams must not be visibly correlated: a crude smoke
   check that the mean pairwise sample correlation across neighbouring
   children stays near zero (SplitMix64's double-mix breaks the lattice
   structure of the raw child seeds). *)
let test_for_task_correlation_smoke () =
  let t = Rng.create 12345L in
  let n = 512 in
  let series i =
    let rng = Rng.for_task t i in
    Array.init n (fun _ -> Rng.uniform rng)
  in
  let correlation xs ys =
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean xs and my = mean ys in
    let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
    Array.iteri
      (fun k x ->
        let dx = x -. mx and dy = ys.(k) -. my in
        cov := !cov +. (dx *. dy);
        vx := !vx +. (dx *. dx);
        vy := !vy +. (dy *. dy))
      xs;
    !cov /. sqrt (!vx *. !vy)
  in
  for i = 0 to 7 do
    let c = correlation (series i) (series (i + 1)) in
    if Float.abs c > 0.1 then
      Alcotest.failf "children %d and %d correlate at %.3f" i (i + 1) c
  done

(* ---- sweep determinism across worker counts ---- *)

let wfi_fingerprint (m : Experiments.Wfi_probe.measurement) =
  Printf.sprintf "%s|%d|%.17g|%.17g|%.17g" m.discipline m.n m.measured_twfi
    m.wf2q_plus_bound m.probe_delay

let test_wfi_sweep_deterministic_across_jobs () =
  let factories = Hpfq.Disciplines.[ wf2q_plus; wfq ] and ns = [ 4; 8 ] in
  (* the pre-pool formulation: nested sequential loops over private sims *)
  let legacy =
    List.concat_map
      (fun factory ->
        List.map (fun n -> wfi_fingerprint (Experiments.Wfi_probe.measure ~factory ~n ())) ns)
      factories
  in
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      let swept =
        List.map wfi_fingerprint (Experiments.Wfi_probe.sweep_grid ~pool ~factories ~ns ())
      in
      Alcotest.(check (list string))
        (Printf.sprintf "wfi sweep at -j%d = sequential" jobs)
        legacy swept)
    [ 1; 4; 8 ]

let delay_fingerprint (r : Experiments.Delay_experiment.result) =
  Printf.sprintf "%s|%d|%d|%.17g|%.17g|%.17g|%.17g" r.discipline r.rt_packets r.drops
    (Stats.Delay_stats.max_delay r.delays)
    (Stats.Delay_stats.mean r.delays)
    (Stats.Delay_stats.stddev r.delays)
    r.link_utilization

let test_delay_sweep_deterministic_across_jobs () =
  let run jobs =
    let pool = Pool.create ~jobs () in
    List.map delay_fingerprint
      (Experiments.Delay_experiment.run_sweep ~pool
         ~factories:Hpfq.Disciplines.[ wf2q_plus; wfq ]
         ~scenario:Experiments.Delay_experiment.S2_overloaded_poisson ~horizon:1.0
         ~seed:3L ~replications:2 ())
  in
  let reference = run 1 in
  Alcotest.(check (list string)) "delay sweep at -j8 = -j1" reference (run 8);
  Alcotest.(check int) "grid size = disciplines x replications" 4 (List.length reference)

(* ---- Persistent pools: spawn once, submit many rounds ---- *)

let test_persistent_reuse_many_rounds () =
  let p = Pool.Persistent.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.Persistent.shutdown p)
    (fun () ->
      for round = 1 to 50 do
        let got = Pool.Persistent.map p ~tasks:round ~f:(fun i -> i * round) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          (Array.init round (fun i -> i * round))
          got
      done)

let test_persistent_submit_await_overlaps_caller () =
  let p = Pool.Persistent.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.Persistent.shutdown p)
    (fun () ->
      let round = Pool.Persistent.submit p ~tasks:8 ~f:(fun i -> i + 1) in
      (* the caller stays free between submit and await *)
      let own = List.init 100 (fun i -> i) |> List.fold_left ( + ) 0 in
      Alcotest.(check int) "caller work" 4950 own;
      Alcotest.(check (array int))
        "awaited results" (Array.init 8 (fun i -> i + 1))
        (Pool.Persistent.await round))

let test_persistent_exception_then_reuse () =
  let p = Pool.Persistent.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.Persistent.shutdown p)
    (fun () ->
      (match Pool.Persistent.map p ~tasks:8 ~f:(fun i -> if i = 3 then raise (Task_boom 3) else i) with
      | exception Task_boom 3 -> ()
      | _ -> Alcotest.fail "expected Task_boom");
      (* the pool survives a failed round *)
      Alcotest.(check (array int))
        "next round is clean" (Array.init 4 (fun i -> i))
        (Pool.Persistent.map p ~tasks:4 ~f:(fun i -> i)))

let test_persistent_one_outstanding_round () =
  let p = Pool.Persistent.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.Persistent.shutdown p)
    (fun () ->
      let r = Pool.Persistent.submit p ~tasks:2 ~f:(fun i -> i) in
      (match Pool.Persistent.submit p ~tasks:2 ~f:(fun i -> i) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "second outstanding submit must be rejected");
      ignore (Pool.Persistent.await r))

let test_persistent_zero_domains_sequential () =
  let p = Pool.Persistent.create ~domains:0 () in
  Fun.protect
    ~finally:(fun () -> Pool.Persistent.shutdown p)
    (fun () ->
      Alcotest.(check (array int))
        "map runs in the caller" (Array.init 5 (fun i -> i * 2))
        (Pool.Persistent.map p ~tasks:5 ~f:(fun i -> i * 2));
      match Pool.Persistent.submit p ~tasks:1 ~f:(fun i -> i) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "submit on a zero-domain pool must be rejected")

let test_persistent_shutdown_idempotent () =
  let p = Pool.Persistent.create ~domains:2 () in
  ignore (Pool.Persistent.map p ~tasks:4 ~f:(fun i -> i));
  Pool.Persistent.shutdown p;
  Pool.Persistent.shutdown p;
  match Pool.Persistent.map p ~tasks:1 ~f:(fun i -> i) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "map after shutdown must be rejected"

let test_forkjoin_map_still_matches_sequential () =
  (* Pool.map now delegates to a scoped Persistent pool; its contract is
     unchanged *)
  let pool = Pool.create ~jobs:5 () in
  Alcotest.(check (array int))
    "delegated map" (Array.init 31 (fun i -> i * 3))
    (Pool.map pool ~tasks:31 ~f:(fun i -> i * 3))

(* ---- config snapshot isolates workers from default mutation ---- *)

let other = function Sim.Slot_heap -> Sim.Calendar | Sim.Calendar -> Sim.Slot_heap

let test_workers_do_not_observe_default_mutation () =
  let saved = Sim.default_backend () in
  Fun.protect
    ~finally:(fun () -> Sim.set_default_backend saved)
    (fun () ->
      let pinned = other saved in
      Sim.set_default_backend pinned;
      let config = Sim.snapshot_config () in
      let pool = Pool.create ~jobs:4 () in
      let backends =
        Pool.map pool ~tasks:16 ~f:(fun i ->
            (* one task races a default flip against everyone else — the
               snapshot, not the live default, must decide the backend *)
            if i = 0 then Sim.set_default_backend (other pinned);
            let sim = Sim.create_configured config in
            (Sim.stats sim).Sim.stat_backend)
      in
      Array.iteri
        (fun i b ->
          Alcotest.(check string)
            (Printf.sprintf "task %d pinned to the snapshot" i)
            (Sim.backend_name pinned) (Sim.backend_name b))
        backends)

let suite =
  [
    ("map matches sequential at -j1/-j4/-j7", `Quick, test_map_matches_sequential);
    ("map_reduce merges in index order", `Quick, test_map_reduce_merges_in_index_order);
    ("map_list mirrors List.map", `Quick, test_map_list);
    ("worker exceptions propagate", `Quick, test_exception_propagates);
    ("edge cases: empty, oversubscribed, invalid", `Quick, test_edge_cases);
    ("for_task leaves parent untouched", `Quick, test_for_task_leaves_parent_untouched);
    ("for_task is order-insensitive", `Quick, test_for_task_order_insensitive);
    ("for_task children pairwise distinct", `Quick, test_for_task_children_distinct);
    ("for_task rejects negative index", `Quick, test_for_task_negative_rejected);
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0x9a11e1 |])
      prop_for_task_deterministic_and_distinct;
    ("for_task adjacent streams uncorrelated", `Quick, test_for_task_correlation_smoke);
    ("persistent: 50 rounds on one pool", `Quick, test_persistent_reuse_many_rounds);
    ("persistent: submit/await overlaps caller", `Quick, test_persistent_submit_await_overlaps_caller);
    ("persistent: failed round then reuse", `Quick, test_persistent_exception_then_reuse);
    ("persistent: one outstanding round", `Quick, test_persistent_one_outstanding_round);
    ("persistent: zero domains is sequential", `Quick, test_persistent_zero_domains_sequential);
    ("persistent: shutdown is idempotent and final", `Quick, test_persistent_shutdown_idempotent);
    ("fork-join map delegates unchanged", `Quick, test_forkjoin_map_still_matches_sequential);
    ("wfi sweep bit-identical across -j", `Slow, test_wfi_sweep_deterministic_across_jobs);
    ("delay sweep bit-identical across -j", `Slow, test_delay_sweep_deterministic_across_jobs);
    ( "config snapshot shields workers from default mutation",
      `Quick,
      test_workers_do_not_observe_default_mutation );
  ]

let () = Alcotest.run "parallel" [ ("pool", suite) ]
