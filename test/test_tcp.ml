(* TCP Reno model: growth, loss recovery, adaptation. The "network" in
   these tests is a simple rate-limited queue implemented on the simulator,
   so each mechanism can be checked in isolation. *)

module Sim = Engine.Simulator
module Tcp = Tcp.Tcp_reno

(* A bottleneck that serializes segments at [rate] with a [capacity]-bits
   drop-tail queue, delivering to the connection's receiver. *)
let bottleneck sim ~rate ~capacity =
  let q = Queue.create () in
  let bits = ref 0.0 in
  let busy = ref false in
  let tcp = ref None in
  let drops = ref 0 in
  let rec pump () =
    if (not !busy) && not (Queue.is_empty q) then begin
      busy := true;
      let mark, size = Queue.pop q in
      bits := !bits -. size;
      ignore
        (Sim.schedule_after sim ~delay:(size /. rate) (fun () ->
             busy := false;
             Tcp.on_segment_delivered (Option.get !tcp) ~mark;
             pump ()))
    end
  in
  let send ~mark ~size_bits =
    if !bits +. size_bits > capacity then begin
      incr drops;
      `Dropped
    end
    else begin
      Queue.push (mark, size_bits) q;
      bits := !bits +. size_bits;
      pump ();
      `Queued
    end
  in
  (send, tcp, drops)

let run ~rate ~capacity ~horizon =
  let sim = Sim.create () in
  let send, tcp_ref, drops = bottleneck sim ~rate ~capacity in
  let tcp = Tcp.create ~sim ~send ~segment_bits:1000.0 ~ack_delay:0.001 () in
  tcp_ref := Some tcp;
  Sim.run ~until:horizon sim;
  (tcp, !drops)

let test_slow_start_growth () =
  (* ample capacity: no losses, cwnd grows exponentially then linearly *)
  let tcp, drops = run ~rate:1.0e6 ~capacity:1.0e9 ~horizon:0.5 in
  Alcotest.(check int) "no drops" 0 drops;
  Alcotest.(check bool) "delivered plenty" true (Tcp.delivered_segments tcp > 100);
  Alcotest.(check int) "no timeouts" 0 (Tcp.timeouts tcp)

let test_throughput_matches_bottleneck () =
  let rate = 2.0e6 in
  let tcp, _ = run ~rate ~capacity:16000.0 ~horizon:5.0 in
  let goodput = float_of_int (Tcp.delivered_segments tcp) *. 1000.0 /. 5.0 in
  Alcotest.(check bool)
    (Printf.sprintf "goodput %.0f ~ bottleneck %.0f" goodput rate)
    true
    (goodput > 0.85 *. rate && goodput <= 1.01 *. rate)

let test_loss_recovery_without_timeout () =
  (* finite queue forces periodic drops; NewReno + early retransmit should
     recover via dupacks, not RTO *)
  let tcp, drops = run ~rate:1.0e6 ~capacity:8000.0 ~horizon:5.0 in
  Alcotest.(check bool) "drops occurred" true (drops > 0);
  Alcotest.(check bool) "retransmitted" true (Tcp.retransmits tcp > 0);
  Alcotest.(check bool)
    (Printf.sprintf "few timeouts (%d)" (Tcp.timeouts tcp))
    true
    (Tcp.timeouts tcp <= 2);
  (* every drop eventually repaired: receiver got a contiguous prefix *)
  Alcotest.(check bool) "progress" true (Tcp.delivered_segments tcp > 1000)

let test_cwnd_halves_on_loss () =
  let sim = Sim.create () in
  let send_ok = ref true in
  let tcp = ref None in
  let send ~mark ~size_bits:_ =
    if !send_ok then begin
      ignore
        (Sim.schedule_after sim ~delay:0.01 (fun () ->
             Tcp.on_segment_delivered (Option.get !tcp) ~mark));
      `Queued
    end
    else `Dropped
  in
  let t = Tcp.create ~sim ~send ~segment_bits:1000.0 ~ack_delay:0.001 () in
  tcp := Some t;
  (* let it grow, then force one loss *)
  Sim.run ~until:0.3 sim;
  let cwnd_before = Tcp.cwnd t in
  send_ok := false;
  ignore (Sim.schedule sim ~at:0.31 (fun () -> send_ok := true));
  Sim.run ~until:1.0 sim;
  Alcotest.(check bool)
    (Printf.sprintf "cwnd dropped (%.1f -> %.1f)" cwnd_before (Tcp.ssthresh t))
    true
    (Tcp.ssthresh t < cwnd_before)

let test_rto_fires_when_everything_lost () =
  let sim = Sim.create () in
  let tcp = ref None in
  (* black hole: everything dropped *)
  let send ~mark:_ ~size_bits:_ = `Dropped in
  let t = Tcp.create ~sim ~send ~segment_bits:1000.0 () in
  tcp := Some t;
  Sim.run ~until:3.0 sim;
  Alcotest.(check bool) "timeouts fired" true (Tcp.timeouts t >= 2);
  Alcotest.(check (float 0.01)) "cwnd back to 1" 1.0 (Tcp.cwnd t)

let test_two_flows_share_bottleneck () =
  (* two connections through one bottleneck (FIFO): AIMD drives them toward
     an even split *)
  let sim = Sim.create () in
  let q = Queue.create () in
  let bits = ref 0.0 in
  let busy = ref false in
  let conns = Hashtbl.create 2 in
  let rate = 2.0e6 in
  let rec pump () =
    if (not !busy) && not (Queue.is_empty q) then begin
      busy := true;
      let owner, mark, size = Queue.pop q in
      bits := !bits -. size;
      ignore
        (Sim.schedule_after sim ~delay:(size /. rate) (fun () ->
             busy := false;
             Tcp.on_segment_delivered (Hashtbl.find conns owner) ~mark;
             pump ()))
    end
  in
  let send owner ~mark ~size_bits =
    if !bits +. size_bits > 12000.0 then `Dropped
    else begin
      Queue.push (owner, mark, size_bits) q;
      bits := !bits +. size_bits;
      pump ();
      `Queued
    end
  in
  Hashtbl.replace conns 0 (Tcp.create ~sim ~send:(send 0) ~segment_bits:1000.0 ~ack_delay:0.001 ());
  Hashtbl.replace conns 1
    (Tcp.create ~sim ~send:(send 1) ~segment_bits:1000.0 ~ack_delay:0.0013 ~start:0.05 ());
  Sim.run ~until:10.0 sim;
  let d0 = Tcp.delivered_segments (Hashtbl.find conns 0) in
  let d1 = Tcp.delivered_segments (Hashtbl.find conns 1) in
  let total = float_of_int (d0 + d1) *. 1000.0 /. 10.0 in
  Alcotest.(check bool)
    (Printf.sprintf "bottleneck saturated (%.0f bps)" total)
    true (total > 0.8 *. rate);
  (* Reno is RTT-biased through a FIFO bottleneck; only gross starvation
     would indicate a bug *)
  Alcotest.(check bool)
    (Printf.sprintf "no starvation (%d vs %d)" d0 d1)
    true
    (float_of_int (min d0 d1) /. float_of_int (max d0 d1) > 0.1)

let () =
  Alcotest.run "tcp"
    [
      ( "mechanisms",
        [
          Alcotest.test_case "slow start growth" `Quick test_slow_start_growth;
          Alcotest.test_case "throughput = bottleneck" `Quick test_throughput_matches_bottleneck;
          Alcotest.test_case "dupack recovery" `Quick test_loss_recovery_without_timeout;
          Alcotest.test_case "cwnd halves on loss" `Quick test_cwnd_halves_on_loss;
          Alcotest.test_case "RTO on black hole" `Quick test_rto_fires_when_everything_lost;
          Alcotest.test_case "two flows share" `Quick test_two_flows_share_bottleneck;
        ] );
    ]
