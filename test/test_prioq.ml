(* Priority-queue substrates: ordering, decrease/increase-key, invariants. *)

let check_sorted name xs =
  let rec ok = function
    | a :: (b :: _ as rest) -> a <= b && ok rest
    | _ -> true
  in
  Alcotest.(check bool) (name ^ " sorted") true (ok xs)

module BH = Prioq.Binary_heap

let bh_create () = BH.create ~cmp:compare ~dummy:0 ()

let test_bh_basic () =
  let h = bh_create () in
  Alcotest.(check bool) "empty" true (BH.is_empty h);
  List.iter (BH.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (BH.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (BH.peek h);
  Alcotest.(check bool) "invariant" true (BH.check_invariant h);
  check_sorted "binary heap" (BH.to_sorted_list h);
  Alcotest.(check int) "non-destructive to_sorted_list" 7 (BH.length h)

let test_bh_pop_order () =
  let h = bh_create () in
  let input = List.init 200 (fun i -> (i * 7919) mod 557) in
  List.iter (BH.push h) input;
  let rec drain acc = match BH.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  let out = drain [] in
  Alcotest.(check (list int)) "pop = sort" (List.sort compare input) out

let test_bh_clear () =
  let h = bh_create () in
  List.iter (BH.push h) [ 3; 1; 2 ];
  BH.clear h;
  Alcotest.(check bool) "cleared" true (BH.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (BH.pop h)

let test_bh_exn () =
  let h = bh_create () in
  Alcotest.check_raises "peek_exn" Not_found (fun () -> ignore (BH.peek_exn h));
  Alcotest.check_raises "pop_exn" Not_found (fun () -> ignore (BH.pop_exn h))

module IH = Prioq.Indexed_heap

let test_ih_basic () =
  let h = IH.create 4 in
  IH.add h ~key:0 ~prio:5.0;
  IH.add h ~key:7 ~prio:1.0; (* beyond initial capacity: must grow *)
  IH.add h ~key:3 ~prio:3.0;
  Alcotest.(check (option int)) "min key" (Some 7) (IH.min_key h);
  Alcotest.(check (option (pair int (float 1e-12)))) "min binding" (Some (7, 1.0))
    (IH.min_binding h);
  Alcotest.(check bool) "mem" true (IH.mem h 3);
  Alcotest.(check bool) "not mem" false (IH.mem h 2);
  Alcotest.(check bool) "invariant" true (IH.check_invariant h)

let test_ih_update_both_directions () =
  let h = IH.create 8 in
  List.iteri (fun i p -> IH.add h ~key:i ~prio:p) [ 5.0; 4.0; 3.0; 2.0; 1.0 ];
  Alcotest.(check (option int)) "initial min" (Some 4) (IH.min_key h);
  IH.update h ~key:4 ~prio:10.0; (* increase-key *)
  Alcotest.(check (option int)) "after increase" (Some 3) (IH.min_key h);
  IH.update h ~key:0 ~prio:0.5; (* decrease-key *)
  Alcotest.(check (option int)) "after decrease" (Some 0) (IH.min_key h);
  Alcotest.(check bool) "invariant" true (IH.check_invariant h)

let test_ih_remove () =
  let h = IH.create 8 in
  List.iteri (fun i p -> IH.add h ~key:i ~prio:p) [ 3.0; 1.0; 2.0 ];
  IH.remove h 1;
  Alcotest.(check bool) "removed" false (IH.mem h 1);
  Alcotest.(check (option int)) "new min" (Some 2) (IH.min_key h);
  IH.remove h 1; (* no-op *)
  Alcotest.(check int) "length" 2 (IH.length h);
  Alcotest.(check bool) "invariant" true (IH.check_invariant h)

let test_ih_pop_min_drain () =
  let h = IH.create 16 in
  let prios = [ 9.0; 2.0; 7.0; 2.0; 5.0; 0.1 ] in
  List.iteri (fun i p -> IH.add h ~key:i ~prio:p) prios;
  let rec drain acc =
    match IH.pop_min h with None -> List.rev acc | Some (_, p) -> drain (p :: acc)
  in
  check_sorted "indexed heap drain" (drain []);
  Alcotest.(check bool) "empty after drain" true (IH.is_empty h)

let test_ih_ties_deterministic () =
  let h = IH.create 8 in
  List.iter (fun k -> IH.add h ~key:k ~prio:1.0) [ 5; 2; 9; 0 ];
  Alcotest.(check (option int)) "smallest key wins ties" (Some 0) (IH.min_key h)

let test_ih_add_duplicate_rejected () =
  let h = IH.create 4 in
  IH.add h ~key:1 ~prio:1.0;
  Alcotest.check_raises "duplicate add"
    (Invalid_argument "Indexed_heap.add: key present") (fun () ->
      IH.add h ~key:1 ~prio:2.0)

module IH4 = Prioq.Indexed_heap4

(* ---- model-based qcheck: both indexed heaps against a sorted-assoc
   reference.  The model is a plain association list; the expected minimum
   is the lexicographically smallest (prio, key) pair, matching the
   deterministic tie-break both heaps implement. ---- *)

module type INDEXED_HEAP = sig
  type t

  val create : int -> t
  val length : t -> int
  val mem : t -> int -> bool
  val add : t -> key:int -> prio:float -> unit
  val update : t -> key:int -> prio:float -> unit
  val remove : t -> int -> unit
  val min_binding : t -> (int * float) option
  val pop_min : t -> (int * float) option
  val check_invariant : t -> bool
end

type heap_op = Add of int * float | Update of int * float | Remove of int | Pop

let heap_op_gen =
  let open QCheck.Gen in
  let key = int_bound 15 in
  let prio = float_bound_inclusive 100.0 in
  frequency
    [
      (4, map2 (fun k p -> Add (k, p)) key prio);
      (3, map2 (fun k p -> Update (k, p)) key prio);
      (2, map (fun k -> Remove k) key);
      (2, return Pop);
    ]

let heap_op_print = function
  | Add (k, p) -> Printf.sprintf "Add(%d,%g)" k p
  | Update (k, p) -> Printf.sprintf "Update(%d,%g)" k p
  | Remove k -> Printf.sprintf "Remove %d" k
  | Pop -> "Pop"

let heap_ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map heap_op_print ops))
    QCheck.Gen.(list_size (int_range 1 200) heap_op_gen)

let model_min model =
  List.fold_left
    (fun acc (k, p) ->
      match acc with
      | None -> Some (k, p)
      | Some (bk, bp) -> if p < bp || (p = bp && k < bk) then Some (k, p) else acc)
    None model

let model_apply op model =
  match op with
  | Add (k, p) -> (k, p) :: List.remove_assoc k model
  | Update (k, p) ->
    if List.mem_assoc k model then (k, p) :: List.remove_assoc k model else model
  | Remove k -> List.remove_assoc k model
  | Pop -> (
    match model_min model with
    | None -> model
    | Some (k, _) -> List.remove_assoc k model)

let prop_heap_matches_model (type h) (module H : INDEXED_HEAP with type t = h) name =
  QCheck.Test.make ~count:300 ~name:(name ^ " matches sorted-assoc model")
    heap_ops_arb
    (fun ops ->
      let h = H.create 4 in
      let model = ref [] in
      List.for_all
        (fun op ->
          (match op with
          | Add (k, p) ->
            if H.mem h k then H.update h ~key:k ~prio:p else H.add h ~key:k ~prio:p
          | Update (k, p) -> if H.mem h k then H.update h ~key:k ~prio:p
          | Remove k -> H.remove h k
          | Pop -> ignore (H.pop_min h));
          model := model_apply op !model;
          H.check_invariant h
          && H.length h = List.length !model
          && H.min_binding h = model_min !model
          && List.for_all
               (fun k -> H.mem h k = List.mem_assoc k !model)
               (List.init 16 Fun.id))
        ops)

(* Randomized 100k-op trace driving the binary and 4-ary heaps in lockstep:
   their (prio, key) ordering is defined to be identical, so every pop and
   every min must agree exactly. *)
let test_binary_vs_4ary_trace () =
  let rng = Random.State.make [| 0x5EED |] in
  let ih = IH.create 16 and ih4 = IH4.create 16 in
  let n_keys = 256 in
  for step = 1 to 100_000 do
    let k = Random.State.int rng n_keys in
    let p = Random.State.float rng 1000.0 in
    (match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      if IH.mem ih k then begin
        IH.update ih ~key:k ~prio:p;
        IH4.update ih4 ~key:k ~prio:p
      end
      else begin
        IH.add ih ~key:k ~prio:p;
        IH4.add ih4 ~key:k ~prio:p
      end
    | 4 | 5 ->
      IH.remove ih k;
      IH4.remove ih4 k
    | 6 | 7 ->
      let a = IH.pop_min ih and b = IH4.pop_min ih4 in
      if a <> b then Alcotest.failf "pop mismatch at step %d" step
    | _ ->
      IH.add_or_update ih ~key:k ~prio:p;
      IH4.add_or_update ih4 ~key:k ~prio:p);
    if IH.min_binding ih <> IH4.min_binding ih4 then
      Alcotest.failf "min mismatch at step %d" step;
    if IH.length ih <> IH4.length ih4 then
      Alcotest.failf "length mismatch at step %d" step
  done;
  Alcotest.(check bool) "invariants after trace" true
    (IH.check_invariant ih && IH4.check_invariant ih4);
  let rec drain n =
    let a = IH.pop_min ih and b = IH4.pop_min ih4 in
    if a <> b then Alcotest.fail "drain mismatch";
    if a = None then n else drain (n + 1)
  in
  ignore (drain 0);
  Alcotest.(check bool) "both drained" true (IH.is_empty ih && IH4.is_empty ih4)

let test_ih4_unsafe_accessors () =
  let h = IH4.create 4 in
  Alcotest.(check int) "empty min_key_unsafe" (-1) (IH4.min_key_unsafe h);
  Alcotest.(check bool) "empty min_prio_unsafe is nan" true
    (Float.is_nan (IH4.min_prio_unsafe h));
  IH4.add h ~key:3 ~prio:2.5;
  IH4.add h ~key:1 ~prio:7.0;
  Alcotest.(check int) "min_key_unsafe" 3 (IH4.min_key_unsafe h);
  Alcotest.(check (float 1e-12)) "min_prio_unsafe" 2.5 (IH4.min_prio_unsafe h);
  IH4.drop_min h;
  Alcotest.(check int) "after drop_min" 1 (IH4.min_key_unsafe h);
  IH4.drop_min h;
  IH4.drop_min h; (* no-op on empty *)
  Alcotest.(check bool) "empty again" true (IH4.is_empty h)

module PH = Prioq.Pairing_heap

let test_ph_basic () =
  let h = PH.create ~cmp:compare in
  List.iter (PH.push h) [ 4; 2; 8; 1 ];
  Alcotest.(check (option int)) "peek" (Some 1) (PH.peek h);
  check_sorted "pairing heap" (PH.to_sorted_list h)

let test_ph_meld () =
  let a = PH.create ~cmp:compare and b = PH.create ~cmp:compare in
  List.iter (PH.push a) [ 5; 3 ];
  List.iter (PH.push b) [ 4; 1 ];
  PH.meld a b;
  Alcotest.(check int) "melded size" 4 (PH.length a);
  Alcotest.(check int) "src emptied" 0 (PH.length b);
  Alcotest.(check (option int)) "melded min" (Some 1) (PH.pop a)

let test_ph_pop_order () =
  let h = PH.create ~cmp:compare in
  let input = List.init 300 (fun i -> (i * 2654435761) mod 1009) in
  List.iter (PH.push h) input;
  let rec drain acc = match PH.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "pop = sort" (List.sort compare input) (drain [])

let () =
  Alcotest.run "prioq"
    [
      ( "binary_heap",
        [
          Alcotest.test_case "basic" `Quick test_bh_basic;
          Alcotest.test_case "pop order" `Quick test_bh_pop_order;
          Alcotest.test_case "clear" `Quick test_bh_clear;
          Alcotest.test_case "exceptions" `Quick test_bh_exn;
        ] );
      ( "indexed_heap",
        [
          Alcotest.test_case "basic" `Quick test_ih_basic;
          Alcotest.test_case "update both directions" `Quick test_ih_update_both_directions;
          Alcotest.test_case "remove" `Quick test_ih_remove;
          Alcotest.test_case "pop_min drain" `Quick test_ih_pop_min_drain;
          Alcotest.test_case "deterministic ties" `Quick test_ih_ties_deterministic;
          Alcotest.test_case "duplicate add rejected" `Quick test_ih_add_duplicate_rejected;
        ] );
      ( "indexed_heap_model",
        [
          QCheck_alcotest.to_alcotest
            (prop_heap_matches_model (module Prioq.Indexed_heap) "binary indexed heap");
          QCheck_alcotest.to_alcotest
            (prop_heap_matches_model (module Prioq.Indexed_heap4) "4-ary indexed heap");
          Alcotest.test_case "binary vs 4-ary 100k-op trace" `Quick
            test_binary_vs_4ary_trace;
          Alcotest.test_case "4-ary unsafe accessors" `Quick test_ih4_unsafe_accessors;
        ] );
      ( "pairing_heap",
        [
          Alcotest.test_case "basic" `Quick test_ph_basic;
          Alcotest.test_case "meld" `Quick test_ph_meld;
          Alcotest.test_case "pop order" `Quick test_ph_pop_order;
        ] );
    ]
