(* Priority-queue substrates: ordering, decrease/increase-key, invariants. *)

let check_sorted name xs =
  let rec ok = function
    | a :: (b :: _ as rest) -> a <= b && ok rest
    | _ -> true
  in
  Alcotest.(check bool) (name ^ " sorted") true (ok xs)

module BH = Prioq.Binary_heap

let bh_create () = BH.create ~cmp:compare ~dummy:0 ()

let test_bh_basic () =
  let h = bh_create () in
  Alcotest.(check bool) "empty" true (BH.is_empty h);
  List.iter (BH.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (BH.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (BH.peek h);
  Alcotest.(check bool) "invariant" true (BH.check_invariant h);
  check_sorted "binary heap" (BH.to_sorted_list h);
  Alcotest.(check int) "non-destructive to_sorted_list" 7 (BH.length h)

let test_bh_pop_order () =
  let h = bh_create () in
  let input = List.init 200 (fun i -> (i * 7919) mod 557) in
  List.iter (BH.push h) input;
  let rec drain acc = match BH.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  let out = drain [] in
  Alcotest.(check (list int)) "pop = sort" (List.sort compare input) out

let test_bh_clear () =
  let h = bh_create () in
  List.iter (BH.push h) [ 3; 1; 2 ];
  BH.clear h;
  Alcotest.(check bool) "cleared" true (BH.is_empty h);
  Alcotest.(check (option int)) "pop empty" None (BH.pop h)

let test_bh_exn () =
  let h = bh_create () in
  Alcotest.check_raises "peek_exn" Not_found (fun () -> ignore (BH.peek_exn h));
  Alcotest.check_raises "pop_exn" Not_found (fun () -> ignore (BH.pop_exn h))

module IH = Prioq.Indexed_heap

let test_ih_basic () =
  let h = IH.create 4 in
  IH.add h ~key:0 ~prio:5.0;
  IH.add h ~key:7 ~prio:1.0; (* beyond initial capacity: must grow *)
  IH.add h ~key:3 ~prio:3.0;
  Alcotest.(check (option int)) "min key" (Some 7) (IH.min_key h);
  Alcotest.(check (option (pair int (float 1e-12)))) "min binding" (Some (7, 1.0))
    (IH.min_binding h);
  Alcotest.(check bool) "mem" true (IH.mem h 3);
  Alcotest.(check bool) "not mem" false (IH.mem h 2);
  Alcotest.(check bool) "invariant" true (IH.check_invariant h)

let test_ih_update_both_directions () =
  let h = IH.create 8 in
  List.iteri (fun i p -> IH.add h ~key:i ~prio:p) [ 5.0; 4.0; 3.0; 2.0; 1.0 ];
  Alcotest.(check (option int)) "initial min" (Some 4) (IH.min_key h);
  IH.update h ~key:4 ~prio:10.0; (* increase-key *)
  Alcotest.(check (option int)) "after increase" (Some 3) (IH.min_key h);
  IH.update h ~key:0 ~prio:0.5; (* decrease-key *)
  Alcotest.(check (option int)) "after decrease" (Some 0) (IH.min_key h);
  Alcotest.(check bool) "invariant" true (IH.check_invariant h)

let test_ih_remove () =
  let h = IH.create 8 in
  List.iteri (fun i p -> IH.add h ~key:i ~prio:p) [ 3.0; 1.0; 2.0 ];
  IH.remove h 1;
  Alcotest.(check bool) "removed" false (IH.mem h 1);
  Alcotest.(check (option int)) "new min" (Some 2) (IH.min_key h);
  IH.remove h 1; (* no-op *)
  Alcotest.(check int) "length" 2 (IH.length h);
  Alcotest.(check bool) "invariant" true (IH.check_invariant h)

let test_ih_pop_min_drain () =
  let h = IH.create 16 in
  let prios = [ 9.0; 2.0; 7.0; 2.0; 5.0; 0.1 ] in
  List.iteri (fun i p -> IH.add h ~key:i ~prio:p) prios;
  let rec drain acc =
    match IH.pop_min h with None -> List.rev acc | Some (_, p) -> drain (p :: acc)
  in
  check_sorted "indexed heap drain" (drain []);
  Alcotest.(check bool) "empty after drain" true (IH.is_empty h)

let test_ih_ties_deterministic () =
  let h = IH.create 8 in
  List.iter (fun k -> IH.add h ~key:k ~prio:1.0) [ 5; 2; 9; 0 ];
  Alcotest.(check (option int)) "smallest key wins ties" (Some 0) (IH.min_key h)

let test_ih_add_duplicate_rejected () =
  let h = IH.create 4 in
  IH.add h ~key:1 ~prio:1.0;
  Alcotest.check_raises "duplicate add"
    (Invalid_argument "Indexed_heap.add: key present") (fun () ->
      IH.add h ~key:1 ~prio:2.0)

module PH = Prioq.Pairing_heap

let test_ph_basic () =
  let h = PH.create ~cmp:compare in
  List.iter (PH.push h) [ 4; 2; 8; 1 ];
  Alcotest.(check (option int)) "peek" (Some 1) (PH.peek h);
  check_sorted "pairing heap" (PH.to_sorted_list h)

let test_ph_meld () =
  let a = PH.create ~cmp:compare and b = PH.create ~cmp:compare in
  List.iter (PH.push a) [ 5; 3 ];
  List.iter (PH.push b) [ 4; 1 ];
  PH.meld a b;
  Alcotest.(check int) "melded size" 4 (PH.length a);
  Alcotest.(check int) "src emptied" 0 (PH.length b);
  Alcotest.(check (option int)) "melded min" (Some 1) (PH.pop a)

let test_ph_pop_order () =
  let h = PH.create ~cmp:compare in
  let input = List.init 300 (fun i -> (i * 2654435761) mod 1009) in
  List.iter (PH.push h) input;
  let rec drain acc = match PH.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "pop = sort" (List.sort compare input) (drain [])

let () =
  Alcotest.run "prioq"
    [
      ( "binary_heap",
        [
          Alcotest.test_case "basic" `Quick test_bh_basic;
          Alcotest.test_case "pop order" `Quick test_bh_pop_order;
          Alcotest.test_case "clear" `Quick test_bh_clear;
          Alcotest.test_case "exceptions" `Quick test_bh_exn;
        ] );
      ( "indexed_heap",
        [
          Alcotest.test_case "basic" `Quick test_ih_basic;
          Alcotest.test_case "update both directions" `Quick test_ih_update_both_directions;
          Alcotest.test_case "remove" `Quick test_ih_remove;
          Alcotest.test_case "pop_min drain" `Quick test_ih_pop_min_drain;
          Alcotest.test_case "deterministic ties" `Quick test_ih_ties_deterministic;
          Alcotest.test_case "duplicate add rejected" `Quick test_ih_add_duplicate_rejected;
        ] );
      ( "pairing_heap",
        [
          Alcotest.test_case "basic" `Quick test_ph_basic;
          Alcotest.test_case "meld" `Quick test_ph_meld;
          Alcotest.test_case "pop order" `Quick test_ph_pop_order;
        ] );
    ]
