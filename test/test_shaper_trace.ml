(* Token-bucket shaper and trace capture/replay. *)

module Sim = Engine.Simulator
module Shaper = Traffic.Shaper
module Trace = Traffic.Trace

let test_shaper_passthrough_when_conforming () =
  let sim = Sim.create () in
  let out = ref [] in
  let emit ~size_bits = out := (Sim.now sim, size_bits) :: !out in
  let shaper = Shaper.create ~sim ~sigma_bits:10.0 ~rho:1.0 ~emit in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         Shaper.offer shaper ~size_bits:3.0;
         Shaper.offer shaper ~size_bits:3.0));
  Sim.run sim;
  (* 6 bits <= sigma: both released instantly *)
  Alcotest.(check int) "both out" 2 (List.length !out);
  List.iter (fun (t, _) -> Alcotest.(check (float 1e-9)) "immediate" 0.0 t) !out;
  Alcotest.(check int) "released counter" 2 (Shaper.released shaper)

let test_shaper_delays_burst () =
  let sim = Sim.create () in
  let out = ref [] in
  let emit ~size_bits = out := (Sim.now sim, size_bits) :: !out in
  let shaper = Shaper.create ~sim ~sigma_bits:2.0 ~rho:2.0 ~emit in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 4 do
           Shaper.offer shaper ~size_bits:2.0
         done));
  Sim.run sim;
  let times = List.rev_map fst !out in
  (* bucket holds exactly one packet: first at 0, then one per 2/2 = 1 s *)
  Alcotest.(check (list (float 1e-9))) "paced releases" [ 0.0; 1.0; 2.0; 3.0 ] times

let test_shaper_output_conforms () =
  let sim = Sim.create () in
  let out = ref [] in
  let emit ~size_bits = out := (Sim.now sim, size_bits) :: !out in
  let sigma = 5.0 and rho = 3.0 in
  let shaper = Shaper.create ~sim ~sigma_bits:sigma ~rho ~emit in
  let rng = Engine.Rng.create 17L in
  (* hostile arrivals: random bursts far above rho *)
  for k = 0 to 40 do
    let at = float_of_int k *. 0.13 in
    ignore
      (Sim.schedule sim ~at (fun () ->
           for _ = 1 to 1 + Engine.Rng.int rng 4 do
             Shaper.offer shaper ~size_bits:(0.5 +. Engine.Rng.float rng 2.0)
           done))
  done;
  Sim.run sim;
  let events = Array.of_list (List.rev !out) in
  let n = Array.length events in
  Alcotest.(check bool) "traffic flowed" true (n > 40);
  let ok = ref true in
  for i = 0 to n - 1 do
    let bits = ref 0.0 in
    for j = i to n - 1 do
      let tj, sj = events.(j) in
      bits := !bits +. sj;
      let ti, _ = events.(i) in
      if !bits > sigma +. (rho *. (tj -. ti)) +. 1e-6 then ok := false
    done
  done;
  Alcotest.(check bool) "output is (sigma, rho)-conformant" true !ok;
  Alcotest.(check int) "queue drained" 0 (Shaper.queue_length shaper);
  Alcotest.(check (float 1e-9)) "backlog zero" 0.0 (Shaper.backlog_bits shaper)

let test_shaper_oversized_rejected () =
  let sim = Sim.create () in
  let shaper = Shaper.create ~sim ~sigma_bits:1.0 ~rho:1.0 ~emit:(fun ~size_bits:_ -> ()) in
  Alcotest.(check bool) "oversize rejected" true
    (try
       Shaper.offer shaper ~size_bits:2.0;
       false
     with Invalid_argument _ -> true)

let sample_events =
  [
    { Trace.time = 0.5; leaf = "a"; size_bits = 100.0 };
    { Trace.time = 0.25; leaf = "b"; size_bits = 50.0 };
    { Trace.time = 1.5; leaf = "a"; size_bits = 200.0 };
  ]

let test_trace_roundtrip () =
  let path = Filename.temp_file "hpfq_trace" ".csv" in
  Trace.save ~path sample_events;
  let loaded = Trace.load ~path in
  Sys.remove path;
  Alcotest.(check int) "count" 3 (List.length loaded);
  (* saved in time order *)
  Alcotest.(check (list string)) "time-ordered leaves" [ "b"; "a"; "a" ]
    (List.map (fun e -> e.Trace.leaf) loaded);
  Alcotest.(check (float 1e-9)) "sizes survive" 50.0
    (List.hd loaded).Trace.size_bits

let test_trace_replay () =
  let sim = Sim.create () in
  let got = ref [] in
  let emit_for ~leaf =
    if String.equal leaf "a" then
      Some (fun ~size_bits -> got := (Sim.now sim, size_bits) :: !got)
    else None (* "b" unmapped: skipped *)
  in
  let scheduled = Trace.replay ~sim ~emit_for sample_events in
  Sim.run sim;
  Alcotest.(check int) "scheduled only mapped leaves" 2 scheduled;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "events fire at recorded times"
    [ (0.5, 100.0); (1.5, 200.0) ]
    (List.rev !got)

let test_record_then_replay_identical () =
  (* record a CBR source, then replay the dump: the replayed arrivals are
     the originals *)
  let sim = Sim.create () in
  let wrap, dump = Trace.recorder ~sim in
  let sink = ref [] in
  let emit = wrap ~leaf:"x" (fun ~size_bits -> sink := size_bits :: !sink) in
  ignore
    (Traffic.Source.cbr ~sim ~emit ~rate:2.0 ~packet_bits:1.0 ~stop_at:3.0 ());
  Sim.run sim;
  let recorded = dump () in
  Alcotest.(check int) "recorded everything" (List.length !sink) (List.length recorded);
  let sim2 = Sim.create () in
  let replayed = ref [] in
  let emit_for ~leaf:_ =
    Some (fun ~size_bits -> replayed := (Sim.now sim2, size_bits) :: !replayed)
  in
  ignore (Trace.replay ~sim:sim2 ~emit_for recorded);
  Sim.run sim2;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "replay = original schedule"
    (List.map (fun e -> (e.Trace.time, e.Trace.size_bits)) recorded)
    (List.rev !replayed)

let () =
  Alcotest.run "shaper_trace"
    [
      ( "shaper",
        [
          Alcotest.test_case "conforming passthrough" `Quick
            test_shaper_passthrough_when_conforming;
          Alcotest.test_case "delays burst" `Quick test_shaper_delays_burst;
          Alcotest.test_case "output conforms" `Quick test_shaper_output_conforms;
          Alcotest.test_case "oversized rejected" `Quick test_shaper_oversized_rejected;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "replay" `Quick test_trace_replay;
          Alcotest.test_case "record then replay" `Quick test_record_then_replay_identical;
        ] );
    ]
