(* Property-based tests (qcheck): invariants that must hold on randomized
   workloads, trees, and operation sequences. *)

module Sim = Engine.Simulator
module Server = Hpfq.Server
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree
module Q = QCheck

(* ---------- generators ---------- *)

(* a workload: per-session packet arrival times/sizes over [0, 10) *)
let workload_gen ~max_sessions =
  let open Q.Gen in
  let* n = int_range 2 max_sessions in
  let* packets =
    list_size (int_range 1 60)
      (let* session = int_range 0 (n - 1) in
       let* at = float_bound_inclusive 10.0 in
       let* size = float_range 0.1 2.0 in
       return (at, session, size))
  in
  return (n, packets)

let workload_arb ~max_sessions =
  Q.make ~print:(fun (n, ps) ->
      Printf.sprintf "n=%d packets=[%s]" n
        (String.concat "; "
           (List.map (fun (t, s, z) -> Printf.sprintf "(%.3f,%d,%.3f)" t s z) ps)))
    (workload_gen ~max_sessions)

let equal_rates n = List.init n (fun _ -> 1.0 /. float_of_int n)

let run_workload factory (n, packets) =
  let sim = Sim.create () in
  let departures = ref [] in
  let server =
    Server.create ~sim ~rate:1.0
      ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
      ~on_depart:(fun pkt t -> departures := (pkt, t) :: !departures)
      ()
  in
  List.iter (fun r -> ignore (Server.add_session server ~rate:r ())) (equal_rates n);
  List.iter
    (fun (at, session, size) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             ignore (Server.inject server ~session ~size_bits:size))))
    packets;
  Sim.run sim;
  (List.rev !departures, server)

(* ---------- properties ---------- *)

(* 1. Completeness: every injected packet departs, exactly once. *)
let prop_all_packets_depart factory =
  Q.Test.make ~count:60
    ~name:(factory.Sched.Sched_intf.kind ^ ": every packet departs once")
    (workload_arb ~max_sessions:5)
    (fun ((_, packets) as w) ->
      let departures, _ = run_workload factory w in
      let uids = List.map (fun (p, _) -> p.Net.Packet.uid) departures in
      List.length departures = List.length packets
      && List.length (List.sort_uniq compare uids) = List.length uids)

(* 2. Per-session FIFO: departures of one session keep arrival order. *)
let prop_session_fifo factory =
  Q.Test.make ~count:60
    ~name:(factory.Sched.Sched_intf.kind ^ ": per-session FIFO order")
    (workload_arb ~max_sessions:5)
    (fun w ->
      let departures, _ = run_workload factory w in
      let last_seq = Hashtbl.create 8 in
      List.for_all
        (fun (p, _) ->
          let prev = Option.value (Hashtbl.find_opt last_seq p.Net.Packet.flow) ~default:0 in
          Hashtbl.replace last_seq p.Net.Packet.flow p.Net.Packet.seq;
          p.Net.Packet.seq > prev)
        departures)

(* 3. Work conservation: the link is busy whenever packets are queued, so
   each departure happens no later than (previous idle point + backlog). We
   check the aggregate form: sum of served bits at any departure equals
   link work with no internal idling (departure spacing >= transmission
   time, and total time = total bits when the system never drains). *)
let prop_work_conserving factory =
  Q.Test.make ~count:60
    ~name:(factory.Sched.Sched_intf.kind ^ ": no idling while backlogged")
    (workload_arb ~max_sessions:5)
    (fun w ->
      let departures, _ = run_workload factory w in
      (* replay: compute the earliest feasible finish of the last packet by
         simulating a single work-conserving queue over all arrivals *)
      let (_, packets) = w in
      let arrivals = List.sort compare (List.map (fun (t, _, z) -> (t, z)) packets) in
      let horizon_work =
        List.fold_left (fun clock (t, z) -> Float.max clock t +. z) 0.0 arrivals
      in
      match List.rev departures with
      | [] -> List.length packets = 0
      | (_, last) :: _ -> Float.abs (last -. horizon_work) < 1e-6)

(* 4. Bandwidth guarantee (B-WFI form): a continuously backlogged session
   receives at least r_i * T - alpha bits under WF2Q+. *)
let prop_wf2q_plus_bandwidth_guarantee =
  Q.Test.make ~count:60 ~name:"WF2Q+: backlogged session gets r_i*T - alpha"
    Q.(pair (Q.make (Q.Gen.int_range 1 8)) (Q.make (Q.Gen.float_range 0.1 0.9)))
    (fun (n_bg, r0) ->
      let sim = Sim.create () in
      let server =
        Server.create ~sim ~rate:1.0 ~policy:(Hpfq.Wf2q_plus.make ~rate:1.0) ()
      in
      let s0 = Server.add_session server ~rate:r0 () in
      let bg_rate = (1.0 -. r0) /. float_of_int n_bg in
      let bgs = List.init n_bg (fun _ -> Server.add_session server ~rate:bg_rate ()) in
      ignore
        (Sim.schedule sim ~at:0.0 (fun () ->
             for _ = 1 to 100 do
               ignore (Server.inject server ~session:s0 ~size_bits:1.0)
             done;
             List.iter
               (fun s ->
                 for _ = 1 to 100 do
                   ignore (Server.inject server ~session:s ~size_bits:1.0)
                 done)
               bgs));
      let horizon = 50.0 in
      Sim.run ~until:horizon sim;
      (* session 0 still backlogged at t=50? it is if r0*50 < 100 *)
      if r0 *. horizon < 99.0 then begin
        let alpha = Hpfq.Theory.bwfi_wf2q ~l_i_max:1.0 ~l_max:1.0 ~r_i:r0 ~r:1.0 in
        Server.departed_bits server ~session:s0 >= (r0 *. horizon) -. alpha -. 1e-6
      end
      else Q.assume_fail ())

(* 5. Flat hierarchy == standalone server, for random workloads. *)
let prop_flat_hier_equals_server =
  Q.Test.make ~count:40 ~name:"flat H-WF2Q+ = standalone WF2Q+ server"
    (workload_arb ~max_sessions:4)
    (fun ((n, packets) as w) ->
      let server_log =
        let departures, _ = run_workload Hpfq.Disciplines.wf2q_plus w in
        List.map (fun (p, t) -> (p.Net.Packet.flow, p.Net.Packet.seq, t)) departures
      in
      let hier_log =
        let sim = Sim.create () in
        let log = ref [] in
        let spec =
          CT.node "link" ~rate:1.0
            (List.mapi
               (fun i r -> CT.leaf (Printf.sprintf "s%d" i) ~rate:r)
               (equal_rates n))
        in
        let h =
          Hier.create ~sim ~spec
            ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus)
            ~on_depart:(fun pkt ~leaf:_ t -> log := (pkt, t) :: !log)
            ()
        in
        let ids = Array.init n (fun i -> Hier.leaf_id h (Printf.sprintf "s%d" i)) in
        let leaf_to_session = Hashtbl.create 8 in
        Array.iteri
          (fun session (leaf : Hier.leaf) ->
            Hashtbl.replace leaf_to_session (leaf :> int) session)
          ids;
        List.iter
          (fun (at, session, size) ->
            ignore
              (Sim.schedule sim ~at (fun () ->
                   ignore (Hier.inject h ~leaf:ids.(session) ~size_bits:size))))
          packets;
        Sim.run sim;
        List.rev_map
          (fun (p, t) ->
            (Hashtbl.find leaf_to_session p.Net.Packet.flow, p.Net.Packet.seq, t))
          !log
      in
      List.length server_log = List.length hier_log
      && List.for_all2
           (fun (f1, s1, t1) (f2, s2, t2) ->
             f1 = f2 && s1 = s2 && Float.abs (t1 -. t2) < 1e-9)
           server_log hier_log)

(* 5b. Per-session stamping (eqs. 28-29) vs per-packet stamping (eqs. 6-7):
   the two are NOT packet-for-packet identical. When a packet reaches the
   head of a still-backlogged queue, per-packet stamping froze its start tag
   at S = max(F_prev, V(arrival)) back when it arrived, while per-session
   stamping computes S = F_prev at requeue time; whenever eq. 27's min-S
   jump drove V past F_prev in between, the two assign different tags and
   SEFF's argmin-F can transpose the service order. One transposition per
   competing session can accumulate before the orders reconcile, so a
   packet's departure may shift by up to (N-1) max-size transmissions —
   NOT just one. (An earlier version of this test asserted a 1*l_max
   tolerance and failed on ~2/25 seeds; replaying 6000 random workloads
   found true divergences up to 4.18 with N <= 5 and l_max = 2.0, within
   the (N-1)*l_max = 8.0 bound checked here.) *)
let prop_stamping_equivalence =
  Q.Test.make ~count:60 ~name:"WF2Q+ per-session ~ per-packet stamps"
    (workload_arb ~max_sessions:5)
    (fun ((n, _) as w) ->
      let log factory =
        let departures, _ = run_workload factory w in
        List.map (fun (p, t) -> ((p.Net.Packet.flow, p.Net.Packet.seq), t)) departures
        |> List.sort compare
      in
      let a = log Hpfq.Disciplines.wf2q_plus in
      let b = log Hpfq.Disciplines.wf2q_plus_per_packet in
      let l_max_service = 2.0 in (* sizes drawn from [0.1, 2.0], unit rate *)
      let tolerance = float_of_int (n - 1) *. l_max_service in
      List.length a = List.length b
      && List.for_all2
           (fun (k1, t1) (k2, t2) -> k1 = k2 && Float.abs (t1 -. t2) <= tolerance +. 1e-9)
           a b)

(* 6. Fluid H-GPS conservation on random two-level trees. *)
let prop_hgps_conservation =
  let gen =
    let open Q.Gen in
    let* shares = list_size (int_range 2 5) (float_range 0.1 1.0) in
    let* packets =
      list_size (int_range 1 40)
        (let* leaf = int_range 0 (List.length shares - 1) in
         let* at = float_bound_inclusive 5.0 in
         let* size = float_range 0.1 2.0 in
         return (at, leaf, size))
    in
    return (shares, packets)
  in
  Q.Test.make ~count:60 ~name:"H-GPS fluid: conservation + guarantees"
    (Q.make gen)
    (fun (shares, packets) ->
      let total_share = List.fold_left ( +. ) 0.0 shares in
      let leaves =
        List.mapi
          (fun i s -> CT.leaf (Printf.sprintf "l%d" i) ~rate:(s /. total_share))
          shares
      in
      let spec = CT.node "root" ~rate:1.0 leaves in
      let fluid = Fluid.Hgps.create ~spec () in
      let sorted = List.sort compare packets in
      let injected = ref 0.0 in
      List.iter
        (fun (at, leaf, size) ->
          let id = Fluid.Hgps.leaf_id fluid (Printf.sprintf "l%d" leaf) in
          ignore (Fluid.Hgps.arrive fluid ~at ~leaf:id ~size_bits:size);
          injected := !injected +. size)
        sorted;
      Fluid.Hgps.advance fluid ~to_:100.0;
      let root_served = Fluid.Hgps.served_bits fluid ~node:"root" in
      let leaf_sum =
        List.fold_left
          (fun acc i ->
            acc +. Fluid.Hgps.served_bits fluid ~node:(Printf.sprintf "l%d" i))
          0.0
          (List.init (List.length shares) Fun.id)
      in
      Float.abs (root_served -. !injected) < 1e-3
      && Float.abs (root_served -. leaf_sum) < 1e-3)

(* 7. Indexed heap vs model under random operation sequences. *)
let prop_indexed_heap_model =
  let op_gen =
    let open Q.Gen in
    let* code = int_range 0 3 in
    let* key = int_range 0 15 in
    let* prio = float_range 0.0 100.0 in
    return (code, key, prio)
  in
  Q.Test.make ~count:200 ~name:"indexed heap matches a model"
    (Q.make Q.Gen.(list_size (int_range 1 200) op_gen))
    (fun ops ->
      let h = Prioq.Indexed_heap.create 4 in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (code, key, prio) ->
          match code with
          | 0 ->
            if not (Hashtbl.mem model key) then begin
              Prioq.Indexed_heap.add h ~key ~prio;
              Hashtbl.replace model key prio
            end
          | 1 ->
            if Hashtbl.mem model key then begin
              Prioq.Indexed_heap.update h ~key ~prio;
              Hashtbl.replace model key prio
            end
          | 2 ->
            Prioq.Indexed_heap.remove h key;
            Hashtbl.remove model key
          | _ -> (
            match Prioq.Indexed_heap.min_binding h with
            | None -> if Hashtbl.length model <> 0 then ok := false
            | Some (k, p) ->
              let best =
                Hashtbl.fold
                  (fun k' p' acc ->
                    match acc with
                    | None -> Some (k', p')
                    | Some (bk, bp) ->
                      if p' < bp || (p' = bp && k' < bk) then Some (k', p')
                      else acc)
                  model None
              in
              (match best with
              | Some (bk, bp) -> if bk <> k || bp <> p then ok := false
              | None -> ok := false)))
        ops;
      !ok && Prioq.Indexed_heap.check_invariant h
      && Prioq.Indexed_heap.length h = Hashtbl.length model)

(* 8. Delay bound under adversarial cross traffic for random (sigma, rho). *)
let prop_wf2q_plus_delay_bound =
  Q.Test.make ~count:30 ~name:"WF2Q+: leaky-bucket delay bound (Thm 4.3)"
    Q.(pair (Q.make (Q.Gen.float_range 0.15 0.6)) (Q.make (Q.Gen.int_range 1 5)))
    (fun (r0, sigma_pkts) ->
      let sigma = float_of_int sigma_pkts in
      let sim = Sim.create () in
      let max_delay = ref 0.0 in
      let server = ref None in
      let srv =
        Server.create ~sim ~rate:1.0
          ~policy:(Hpfq.Wf2q_plus.make ~rate:1.0)
          ~on_depart:(fun pkt t ->
            if pkt.Net.Packet.flow = 0 then
              max_delay := Float.max !max_delay (t -. pkt.Net.Packet.arrival))
          ()
      in
      server := Some srv;
      ignore (Server.add_session srv ~rate:r0 ());
      let nbg = 4 in
      let bg_rate = (1.0 -. r0) /. float_of_int nbg in
      let bgs = List.init nbg (fun _ -> Server.add_session srv ~rate:bg_rate ()) in
      let emit ~size_bits = ignore (Server.inject srv ~session:0 ~size_bits) in
      ignore
        (Traffic.Source.leaky_bucket_greedy ~sim ~emit ~sigma_bits:sigma ~rho:r0
           ~packet_bits:1.0 ~stop_at:40.0 ());
      ignore
        (Sim.schedule sim ~at:0.0 (fun () ->
             List.iter
               (fun s ->
                 for _ = 1 to 60 do
                   ignore (Server.inject srv ~session:s ~size_bits:1.0)
                 done)
               bgs));
      Sim.run ~until:60.0 sim;
      let bound =
        Hpfq.Theory.delay_bound_standalone_wf2q ~sigma ~r_i:r0 ~l_max:1.0 ~r:1.0
      in
      !max_delay <= bound +. 1e-9)

(* Pinned generator seed: `dune runtest` must be reproducible, and the
   tolerance analysis above is an argument about the property, not a
   promise about every seed's worst case — exploratory fuzzing belongs in
   a manual `QCHECK_SEED=... dune exec` run, not in CI. *)
let suite =
  List.map
    (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eff; 27; 28 |]))
    ([
       prop_wf2q_plus_bandwidth_guarantee;
       prop_flat_hier_equals_server;
       prop_stamping_equivalence;
       prop_hgps_conservation;
       prop_indexed_heap_model;
       prop_wf2q_plus_delay_bound;
     ]
    @ List.concat_map
        (fun factory ->
          [
            prop_all_packets_depart factory;
            prop_session_fifo factory;
            prop_work_conserving factory;
          ])
        Hpfq.Disciplines.all)

let () = Alcotest.run "properties" [ ("qcheck", suite) ]
