(* Packet_pool handle lifecycle: generation staleness, freelist reuse and
   double-free detection (mirroring test_lifecycle.ml's session-pool
   coverage), plus multi-Domain uid uniqueness for the boxed Packet.make
   counter. *)

module P = Net.Packet_pool

let alloc pool ?(flow = 0) ?(seq = 1) ?(bits = 100.0) () =
  P.alloc pool ~flow ~seq ~size_bits:bits ~arrival:0.0

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

let test_field_reads () =
  let pool = P.create () in
  let h = P.alloc pool ~mark:3 ~flow:7 ~seq:42 ~size_bits:1500.0 ~arrival:2.5 in
  Alcotest.(check int) "flow" 7 (P.flow pool h);
  Alcotest.(check int) "seq" 42 (P.seq pool h);
  Alcotest.(check int) "mark" 3 (P.mark pool h);
  Alcotest.(check (float 0.0)) "size" 1500.0 (P.size_bits pool h);
  Alcotest.(check (float 0.0)) "arrival" 2.5 (P.arrival pool h);
  Alcotest.(check bool) "live" true (P.live pool h);
  Alcotest.(check int) "live_count" 1 (P.live_count pool)

let test_rejects_empty () =
  let pool = P.create () in
  Alcotest.(check bool) "zero size rejected" true
    (raises_invalid (fun () -> ignore (alloc pool ~bits:0.0 ())))

let test_generation_staleness () =
  let pool = P.create () in
  let h = alloc pool ~seq:1 () in
  P.free pool h;
  Alcotest.(check bool) "stale after free" false (P.live pool h);
  Alcotest.(check bool) "read raises" true
    (raises_invalid (fun () -> ignore (P.seq pool h)));
  (* the recycled slot's new allocation is a distinct handle *)
  let h' = alloc pool ~seq:2 () in
  Alcotest.(check int) "slot recycled" (P.slot_of h) (P.slot_of h');
  Alcotest.(check bool) "generation bumped" true
    (P.generation_of h' > P.generation_of h);
  Alcotest.(check bool) "handles differ" true (h <> h');
  Alcotest.(check bool) "old handle still stale" false (P.live pool h);
  Alcotest.(check int) "new handle reads fresh fields" 2 (P.seq pool h')

let test_double_free () =
  let pool = P.create () in
  let h = alloc pool () in
  P.free pool h;
  Alcotest.(check bool) "double free raises" true
    (raises_invalid (fun () -> P.free pool h));
  Alcotest.(check bool) "free of none raises" true
    (raises_invalid (fun () -> P.free pool P.none))

let test_freelist_reuse_order () =
  (* free in one order, realloc: slots come back LIFO off the freelist and
     the arena does not grow while free slots remain *)
  let pool = P.create ~initial_capacity:4 () in
  let hs = Array.init 4 (fun i -> alloc pool ~seq:i ()) in
  let cap = P.capacity pool in
  Array.iter (P.free pool) hs;
  Alcotest.(check int) "all freed" 0 (P.live_count pool);
  let hs' = Array.init 4 (fun i -> alloc pool ~seq:(10 + i) ()) in
  Alcotest.(check int) "capacity unchanged" cap (P.capacity pool);
  Alcotest.(check int) "all live again" 4 (P.live_count pool);
  Array.iter
    (fun h -> Alcotest.(check bool) "fresh handle live" true (P.live pool h))
    hs';
  Array.iter
    (fun h -> Alcotest.(check bool) "old handle stale" false (P.live pool h))
    hs

let test_growth_preserves_live () =
  let pool = P.create ~initial_capacity:2 () in
  let hs = List.init 100 (fun i -> alloc pool ~seq:i ()) in
  Alcotest.(check bool) "arena grew" true (P.capacity pool >= 100);
  List.iteri
    (fun i h -> Alcotest.(check int) (Printf.sprintf "seq %d" i) i (P.seq pool h))
    hs

let test_to_packet_boundary () =
  let pool = P.create () in
  let h = P.alloc pool ~mark:1 ~flow:3 ~seq:9 ~size_bits:64.0 ~arrival:1.5 in
  let p = P.to_packet pool h in
  Alcotest.(check int) "uid is the handle" h p.Net.Packet.uid;
  Alcotest.(check int) "flow" 3 p.Net.Packet.flow;
  Alcotest.(check int) "seq" 9 p.Net.Packet.seq;
  Alcotest.(check int) "mark" 1 p.Net.Packet.mark;
  Alcotest.(check (float 0.0)) "size" 64.0 p.Net.Packet.size_bits;
  Alcotest.(check (float 0.0)) "arrival" 1.5 p.Net.Packet.arrival

(* Packet.make's uid counter is shared process state; worker Domains mint
   packets concurrently (e.g. the shard device), so uids must stay unique
   across Domains — the counter is an Atomic, not a plain ref. *)
let test_multi_domain_uid_unique () =
  let domains = 4 and per_domain = 5_000 in
  let mint () =
    Array.init per_domain (fun i ->
        (Net.Packet.make ~flow:0 ~seq:i ~size_bits:1.0 ~arrival:0.0 ()).Net.Packet.uid)
  in
  let spawned = List.init (domains - 1) (fun _ -> Domain.spawn mint) in
  let mine = mint () in
  let all = mine :: List.map Domain.join spawned in
  let tbl = Hashtbl.create (domains * per_domain) in
  let dups = ref 0 in
  List.iter
    (Array.iter (fun uid ->
         if Hashtbl.mem tbl uid then incr dups else Hashtbl.add tbl uid ()))
    all;
  Alcotest.(check int) "no duplicate uids across domains" 0 !dups;
  Alcotest.(check int) "all uids minted" (domains * per_domain) (Hashtbl.length tbl)

let () =
  Alcotest.run "packet_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "field reads" `Quick test_field_reads;
          Alcotest.test_case "rejects empty" `Quick test_rejects_empty;
          Alcotest.test_case "generation staleness" `Quick test_generation_staleness;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "freelist reuse" `Quick test_freelist_reuse_order;
          Alcotest.test_case "growth preserves live" `Quick test_growth_preserves_live;
          Alcotest.test_case "to_packet boundary" `Quick test_to_packet_boundary;
        ] );
      ( "uid",
        [
          Alcotest.test_case "multi-domain uniqueness" `Quick
            test_multi_domain_uid_unique;
        ] );
    ]
