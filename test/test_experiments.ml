(* Integration tests over the experiment harness: shortened versions of the
   paper's runs, checking the qualitative results the paper reports. *)

module E = Experiments

let test_fig2_reproduces_paper () =
  let r = E.Fig2_walkthrough.run () in
  (* GPS finish times: 2k for p1^k (k<=10), 21 for p1^11 *)
  let gps_s1 = E.Fig2_walkthrough.session1_finishes r.gps in
  List.iteri
    (fun i t ->
      let expected = if i < 10 then 2.0 *. float_of_int (i + 1) else 21.0 in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "gps p1^%d" (i + 1)) expected t)
    gps_s1;
  (* WFQ runs session 1 N/2 packets ahead; WF2Q/WF2Q+ stay under 1 *)
  let lead name = E.Fig2_walkthrough.max_service_lead (List.assoc name r.packet) in
  Alcotest.(check (float 1e-6)) "WFQ lead = 5" 5.0 (lead "WFQ");
  Alcotest.(check bool) "WF2Q lead < 1" true (lead "WF2Q" < 1.0);
  Alcotest.(check bool) "WF2Q+ lead < 1" true (lead "WF2Q+" < 1.0)

let test_delay_experiment_ordering () =
  let run factory =
    E.Delay_experiment.run ~factory ~scenario:E.Delay_experiment.S1_constant_and_trains
      ~horizon:4.0 ()
  in
  let wf2qp = run Hpfq.Disciplines.wf2q_plus in
  let wfq = run Hpfq.Disciplines.wfq in
  let max_of r = Stats.Delay_stats.max_delay r.E.Delay_experiment.delays in
  (* the paper's headline: H-WF2Q+ respects the Cor.2 bound; H-WFQ is worse *)
  Alcotest.(check bool) "H-WF2Q+ within Cor.2 bound" true
    (max_of wf2qp <= E.Delay_experiment.rt1_delay_bound);
  Alcotest.(check bool)
    (Printf.sprintf "H-WFQ worse (%.4f vs %.4f)" (max_of wfq) (max_of wf2qp))
    true
    (max_of wfq > max_of wf2qp);
  Alcotest.(check bool) "RT-1 packets flowed" true (wf2qp.E.Delay_experiment.rt_packets > 100);
  Alcotest.(check bool) "high utilisation" true (wf2qp.E.Delay_experiment.link_utilization > 0.8)

let test_delay_scenarios_differ () =
  let run scenario =
    E.Delay_experiment.run ~factory:Hpfq.Disciplines.wf2q_plus ~scenario ~horizon:4.0 ()
  in
  let s1 = run E.Delay_experiment.S1_constant_and_trains in
  let s2 = run E.Delay_experiment.S2_overloaded_poisson in
  (* without the CS trains RT-1's worst case drops substantially *)
  Alcotest.(check bool) "S2 max < S1 max" true
    (Stats.Delay_stats.max_delay s2.delays < Stats.Delay_stats.max_delay s1.delays)

let test_wfi_probe_shapes () =
  let wfq = E.Wfi_probe.sweep ~factory:Hpfq.Disciplines.wfq ~ns:[ 4; 16; 64 ] () in
  (match wfq with
  | [ a; b; c ] ->
    Alcotest.(check (float 1e-6)) "WFQ N=4" 3.0 a.measured_twfi;
    Alcotest.(check (float 1e-6)) "WFQ N=16" 15.0 b.measured_twfi;
    Alcotest.(check (float 1e-6)) "WFQ N=64" 63.0 c.measured_twfi
  | _ -> Alcotest.fail "sweep size");
  List.iter
    (fun (m : E.Wfi_probe.measurement) ->
      Alcotest.(check bool)
        (Printf.sprintf "WF2Q+ probe within bound at N=%d" m.n)
        true
        (m.measured_twfi <= m.wf2q_plus_bound +. 1e-9))
    (E.Wfi_probe.sweep ~factory:Hpfq.Disciplines.wf2q_plus ~ns:[ 4; 16; 64 ] ())

let test_paper_hierarchies_valid () =
  List.iter
    (fun (name, tree) ->
      match Hpfq.Class_tree.validate tree with
      | Ok () -> ()
      | Error errors ->
        Alcotest.fail (name ^ ": " ^ String.concat "; " errors))
    [
      ("fig1", E.Paper_hierarchies.fig1 ~link_rate:1.0e8);
      ("fig3", E.Paper_hierarchies.fig3);
      ("fig8", E.Paper_hierarchies.fig8);
    ];
  (* stated numbers *)
  Alcotest.(check (float 1e3)) "RT-1 = 9 Mbps" 9.0e6 E.Paper_hierarchies.rt1_rate;
  Alcotest.(check int) "fig3 has 22 leaves" 22
    (List.length (Hpfq.Class_tree.leaves E.Paper_hierarchies.fig3));
  Alcotest.(check int) "fig8 depth 5" 5 (Hpfq.Class_tree.depth E.Paper_hierarchies.fig8)

let test_link_sharing_short () =
  (* a 2-second cut of Fig 9: TCP sessions reach their guaranteed shares *)
  let r = E.Link_sharing.run ~horizon:2.0 () in
  let interval =
    List.find
      (fun i -> i.E.Link_sharing.t0 = 0.5)
      r.E.Link_sharing.intervals
  in
  List.iter
    (fun (row : E.Link_sharing.interval_row) ->
      let rel = Float.abs (row.measured -. row.ideal) /. row.ideal in
      Alcotest.(check bool)
        (Printf.sprintf "%s tracks ideal (%.2f vs %.2f)" row.leaf (row.measured /. 1e6)
           (row.ideal /. 1e6))
        true (rel < 0.2))
    interval.E.Link_sharing.rows;
  (* no TCP should be starved or timing out persistently *)
  List.iter
    (fun (leaf, _, timeouts) ->
      Alcotest.(check bool) (leaf ^ " few timeouts") true (timeouts <= 2))
    r.E.Link_sharing.tcp_stats

let () =
  Alcotest.run "experiments"
    [
      ( "paper",
        [
          Alcotest.test_case "fig2 reproduces" `Quick test_fig2_reproduces_paper;
          Alcotest.test_case "delay ordering" `Quick test_delay_experiment_ordering;
          Alcotest.test_case "scenarios differ" `Quick test_delay_scenarios_differ;
          Alcotest.test_case "wfi probe shapes" `Quick test_wfi_probe_shapes;
          Alcotest.test_case "hierarchies valid" `Quick test_paper_hierarchies_valid;
          Alcotest.test_case "link sharing (short)" `Slow test_link_sharing_short;
        ] );
    ]
