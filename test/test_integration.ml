(* Cross-module integration scenarios that mirror deployment patterns:
   shaping hostile traffic into a guaranteed class, mixed packet sizes
   against Theorem 4's exact WFI formula, and hierarchy introspection. *)

module Sim = Engine.Simulator
module Hier = Hpfq.Hier
module CT = Hpfq.Class_tree

(* A hostile (non-conformant) source shaped by a token bucket before a
   guaranteed class: the post-shaper stream is (sigma, rho)-conformant, so
   Theorem 4(3)'s bound applies from the shaper's output onward. *)
let test_shaper_restores_delay_bound () =
  let sim = Sim.create () in
  let sigma = 4.0 and rho = 0.3 in
  let max_delay = ref 0.0 in
  let spec =
    CT.node "link" ~rate:1.0
      [ CT.leaf "guarded" ~rate:rho; CT.leaf "bulk" ~rate:(1.0 -. rho) ]
  in
  (* measure delay from SHAPER OUTPUT to departure: stamp via arrival time *)
  let h =
    Hier.create ~sim ~spec ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus)
      ~on_depart:(fun pkt ~leaf t ->
        if String.equal leaf "guarded" then
          max_delay := Float.max !max_delay (t -. pkt.Net.Packet.arrival))
      ()
  in
  let guarded = Hier.leaf_id h "guarded" and bulk = Hier.leaf_id h "bulk" in
  let shaper =
    Traffic.Shaper.create ~sim ~sigma_bits:sigma ~rho
      ~emit:(fun ~size_bits -> ignore (Hier.inject h ~leaf:guarded ~size_bits))
  in
  (* hostile: 3x the reserved rate, bursty *)
  ignore
    (Traffic.Source.poisson ~sim
       ~emit:(fun ~size_bits -> Traffic.Shaper.offer shaper ~size_bits)
       ~rng:(Engine.Rng.create 5L) ~mean_rate:(3.0 *. rho) ~packet_bits:1.0
       ~stop_at:100.0 ());
  ignore
    (Traffic.Source.greedy ~sim
       ~emit:(fun ~size_bits -> ignore (Hier.inject h ~leaf:bulk ~size_bits))
       ~packet_bits:1.0 ~backlog_packets:64 ~top_up_every:30.0 ~stop_at:100.0 ());
  Sim.run ~until:200.0 sim;
  let bound =
    Hpfq.Theory.delay_bound_standalone_wf2q ~sigma ~r_i:rho ~l_max:1.0 ~r:1.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "shaped traffic within Thm 4.3 bound (%.3f <= %.3f)" !max_delay bound)
    true
    (!max_delay > 0.0 && !max_delay <= bound +. 1e-9);
  (* and the shaper really was needed: it held traffic back *)
  Alcotest.(check bool) "shaper released plenty" true (Traffic.Shaper.released shaper > 50)

(* Mixed packet sizes: Theorem 4(2) gives
   alpha_i = L_i,max + (L_max - L_i,max) r_i/r. A session with SMALL packets
   competing against big-packet sessions must still meet its (tighter)
   T-WFI-derived delay bound. *)
let test_mixed_sizes_wfi_bound () =
  let sim = Sim.create () in
  let r0 = 0.25 in
  let l_small = 0.5 and l_big = 2.0 in
  let max_extra = ref 0.0 in
  let server = ref None in
  let srv =
    Hpfq.Server.create ~sim ~rate:1.0 ~policy:(Hpfq.Wf2q_plus.make ~rate:1.0)
      ~on_depart:(fun pkt t ->
        if pkt.Net.Packet.flow = 0 then begin
          let srv = Option.get !server in
          ignore srv;
          (* T-WFI form of eq. 10: d - a <= Q(a)/r_i + alpha/r_i; with sparse
             arrivals Q(a) = own size *)
          let extra = t -. pkt.Net.Packet.arrival -. (l_small /. r0) in
          max_extra := Float.max !max_extra extra
        end)
      ()
  in
  server := Some srv;
  ignore (Hpfq.Server.add_session srv ~rate:r0 ());
  let bgs = List.init 3 (fun _ -> Hpfq.Server.add_session srv ~rate:0.25 ()) in
  (* sparse small-packet session: every packet meets an empty own queue *)
  ignore
    (Traffic.Source.cbr ~sim
       ~emit:(fun ~size_bits -> ignore (Hpfq.Server.inject srv ~session:0 ~size_bits))
       ~rate:(r0 /. 4.0) ~packet_bits:l_small ~stop_at:80.0 ());
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         List.iter
           (fun s ->
             for _ = 1 to 60 do
               ignore (Hpfq.Server.inject srv ~session:s ~size_bits:l_big)
             done)
           bgs));
  Sim.run ~until:120.0 sim;
  let alpha = Hpfq.Theory.bwfi_wf2q ~l_i_max:l_small ~l_max:l_big ~r_i:r0 ~r:1.0 in
  let twfi = Hpfq.Theory.twfi_of_bwfi ~bwfi:alpha ~r_i:r0 in
  (* alpha = 0.5 + 1.5*0.25 = 0.875 -> T-WFI = 3.5 *)
  Alcotest.(check (float 1e-9)) "Thm 4.2 mixed-size alpha" 0.875 alpha;
  Alcotest.(check bool)
    (Printf.sprintf "measured extra wait %.3f <= T-WFI %.3f" !max_extra twfi)
    true
    (!max_extra <= twfi +. 1e-9)

(* Hierarchy introspection stays coherent while running. *)
let test_hier_introspection () =
  let sim = Sim.create () in
  let spec =
    CT.node "link" ~rate:1.0
      [ CT.node "mid" ~rate:0.6 [ CT.leaf "x" ~rate:0.6 ]; CT.leaf "y" ~rate:0.4 ]
  in
  let h = Hier.create ~sim ~spec ~make_policy:(Hier.uniform Hpfq.Disciplines.wf2q_plus) () in
  let x = Hier.leaf_id h "x" in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 6 do
           ignore (Hier.inject h ~leaf:x ~size_bits:3.0)
         done));
  Sim.run sim;
  (* mid committed 6 packets of 3 bits at rate 0.6: T_mid = 18/0.6 = 30 *)
  Alcotest.(check (float 1e-6)) "reference time = W/r" 30.0 (Hier.ref_time h ~node:"mid");
  Alcotest.(check (float 1e-6)) "W_mid" 18.0 (Hier.departed_bits h ~node:"mid");
  Alcotest.(check bool) "interior virtual time advanced" true
    (Hier.node_virtual_time h ~node:"mid" > 0.0);
  Alcotest.(check bool) "link idle at end" false (Hier.link_busy h);
  Alcotest.(check (float 1e-9)) "x queue drained" 0.0 (Hier.queue_bits h ~leaf:x)

(* Deterministic replay: identical seeds give identical experiment results. *)
let test_experiment_determinism () =
  let run () =
    let r =
      Experiments.Delay_experiment.run ~factory:Hpfq.Disciplines.wf2q_plus
        ~scenario:Experiments.Delay_experiment.S2_overloaded_poisson ~horizon:3.0
        ~seed:42L ()
    in
    ( Stats.Delay_stats.count r.delays,
      Stats.Delay_stats.max_delay r.delays,
      Stats.Delay_stats.mean r.delays )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b)

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "shaper restores delay bound" `Quick
            test_shaper_restores_delay_bound;
          Alcotest.test_case "mixed sizes WFI bound" `Quick test_mixed_sizes_wfi_bound;
          Alcotest.test_case "hier introspection" `Quick test_hier_introspection;
          Alcotest.test_case "experiment determinism" `Quick test_experiment_determinism;
        ] );
    ]
