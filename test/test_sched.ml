(* One-level disciplines: per-policy behaviours beyond the shared Fig. 2
   checks in test_server.ml. *)

module Sim = Engine.Simulator
module Server = Hpfq.Server

let feq = Alcotest.float 1e-6

(* Drive a server with a script of (time, session, size) injections;
   returns departures as (session, time). *)
let run_script ~factory ~rates script =
  let sim = Sim.create () in
  let log = ref [] in
  let server =
    Server.create ~sim ~rate:1.0
      ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
      ~on_depart:(fun pkt t -> log := (pkt.Net.Packet.flow, t) :: !log)
      ()
  in
  List.iter (fun r -> ignore (Server.add_session server ~rate:r ())) rates;
  List.iter
    (fun (at, session, size) ->
      ignore
        (Sim.schedule sim ~at (fun () ->
             ignore (Server.inject server ~session ~size_bits:size))))
    script;
  Sim.run sim;
  List.rev !log

(* SCFQ's self-clock: a newly active session's stamps chain from the
   in-service packet's finish tag, so it cannot be starved forever. *)
let test_scfq_newly_active_session () =
  let script =
    List.init 20 (fun k -> (0.0, 0, 1.0) |> fun (_, s, z) -> (float_of_int k *. 0.0, s, z))
    @ [ (5.0, 1, 1.0) ]
  in
  let log = run_script ~factory:Hpfq.Disciplines.scfq ~rates:[ 0.5; 0.5 ] script in
  let d1 = List.assoc 1 (List.map (fun (s, t) -> (s, t)) (List.filter (fun (s, _) -> s = 1) log)) in
  (* session 1's lone packet must depart within a couple of packet times *)
  Alcotest.(check bool) "no starvation" true (d1 <= 8.0)

(* Virtual Clock punishes a session that over-sent in the past: after a
   burst beyond its rate, a competitor arriving later wins. *)
let test_virtual_clock_punishes_oversender () =
  let script =
    List.init 10 (fun _ -> (0.0, 0, 1.0)) @ [ (6.0, 1, 1.0) ]
  in
  let log = run_script ~factory:Hpfq.Disciplines.virtual_clock ~rates:[ 0.5; 0.5 ] script in
  (* session 0's stamps ran to 20 while real time is 6; session 1 stamps at
     max(6,0)+2=8 < remaining session-0 stamps -> jumps the queue *)
  let t1 = List.assoc 1 log in
  Alcotest.(check bool) "late arrival overtakes over-sender" true (t1 <= 8.0)

(* DRR distributes bytes, not packets: with equal rates but different
   packet sizes, byte totals stay close. *)
let test_drr_byte_fairness () =
  let sim = Sim.create () in
  (* quantum sized for the unit packets of this test *)
  let factory = Sched.Round_robin.drr ~frame_bits:8.0 () in
  let server =
    Server.create ~sim ~rate:1.0 ~policy:(factory.Sched.Sched_intf.make ~rate:1.0) ()
  in
  let a = Server.add_session server ~rate:0.5 () in
  let b = Server.add_session server ~rate:0.5 () in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 400 do
           ignore (Server.inject server ~session:a ~size_bits:3.0)
         done;
         for _ = 1 to 1200 do
           ignore (Server.inject server ~session:b ~size_bits:1.0)
         done));
  Sim.run ~until:600.0 sim;
  let wa = Server.departed_bits server ~session:a in
  let wb = Server.departed_bits server ~session:b in
  Alcotest.(check bool)
    (Printf.sprintf "byte-fair split (a=%g b=%g)" wa wb)
    true
    (Float.abs (wa -. wb) <= 70.0)

(* WRR serves packet counts proportional to weights, so with unequal
   packet sizes it is byte-unfair — the known WRR failure mode. *)
let test_wrr_packet_bias () =
  let sim = Sim.create () in
  let factory = Hpfq.Disciplines.wrr in
  let server =
    Server.create ~sim ~rate:1.0 ~policy:(factory.Sched.Sched_intf.make ~rate:1.0) ()
  in
  let a = Server.add_session server ~rate:0.5 () in
  let b = Server.add_session server ~rate:0.5 () in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 200 do
           ignore (Server.inject server ~session:a ~size_bits:4.0);
           ignore (Server.inject server ~session:b ~size_bits:1.0)
         done));
  Sim.run ~until:500.0 sim;
  let wa = Server.departed_bits server ~session:a in
  let wb = Server.departed_bits server ~session:b in
  Alcotest.(check bool)
    (Printf.sprintf "big packets win under WRR (a=%g b=%g)" wa wb)
    true
    (wa >= 3.0 *. wb)

(* FIFO is arrival-ordered regardless of rates. *)
let test_fifo_order () =
  let log =
    run_script ~factory:Hpfq.Disciplines.fifo ~rates:[ 0.9; 0.1 ]
      [ (0.0, 1, 1.0); (0.0, 0, 1.0); (0.0, 1, 1.0) ]
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "pure arrival order"
    [ (1, 1.0); (0, 2.0); (1, 3.0) ]
    log

(* SFF vs SEFF on the two-session burst pattern: WFQ lets the heavy session
   finish k packets by time k; WF2Q paces it at the GPS rate. *)
let test_sff_vs_seff_pacing () =
  let script = List.init 6 (fun _ -> (0.0, 0, 1.0)) @ [ (0.0, 1, 1.0) ] in
  let wfq = run_script ~factory:Hpfq.Disciplines.wfq ~rates:[ 0.5; 0.5 ] script in
  let wf2q = run_script ~factory:Hpfq.Disciplines.wf2q ~rates:[ 0.5; 0.5 ] script in
  let t_of session log = List.assoc session log in
  (* under WFQ session 1's single packet waits behind... session 0's first 2
     packets (F=2,4 vs F=2); under WF2Q it is served second *)
  Alcotest.(check bool) "WF2Q interleaves competitor earlier" true
    (t_of 1 wf2q <= t_of 1 wfq);
  Alcotest.check feq "WF2Q competitor at t=2" 2.0 (t_of 1 wf2q)

(* Idle sessions must not affect others (PFQ family): removing an idle
   session's registration changes nothing. *)
let test_idle_sessions_harmless () =
  List.iter
    (fun factory ->
      let with_idle =
        run_script ~factory ~rates:[ 0.25; 0.25; 0.5 ]
          [ (0.0, 0, 1.0); (0.0, 1, 1.0); (1.0, 0, 1.0) ]
      in
      let expected_work = 3.0 in
      let total = float_of_int (List.length with_idle) in
      Alcotest.check feq
        (factory.Sched.Sched_intf.kind ^ ": all served")
        expected_work total)
    Hpfq.Disciplines.pfq

(* Virtual time introspection is monotone across a busy period. *)
let test_virtual_time_monotone () =
  List.iter
    (fun factory ->
      let sim = Sim.create () in
      let policy = factory.Sched.Sched_intf.make ~rate:1.0 in
      let server = Server.create ~sim ~rate:1.0 ~policy () in
      let a = Server.add_session server ~rate:0.5 () in
      let b = Server.add_session server ~rate:0.5 () in
      let last = ref neg_infinity in
      let ok = ref true in
      for k = 0 to 20 do
        let at = float_of_int k *. 0.7 in
        ignore
          (Sim.schedule sim ~at (fun () ->
               ignore (Server.inject server ~session:(if k mod 2 = 0 then a else b) ~size_bits:1.0);
               let v = policy.Sched.Sched_intf.virtual_time ~now:(Sim.now sim) in
               if v < !last -. 1e-9 then ok := false;
               last := v))
      done;
      Sim.run sim;
      Alcotest.(check bool)
        (factory.Sched.Sched_intf.kind ^ ": virtual time monotone during busy period")
        true !ok)
    [ Hpfq.Disciplines.wf2q_plus; Hpfq.Disciplines.wfq; Hpfq.Disciplines.wf2q ]

let () =
  Alcotest.run "sched"
    [
      ( "policies",
        [
          Alcotest.test_case "SCFQ no starvation" `Quick test_scfq_newly_active_session;
          Alcotest.test_case "VirtualClock punishes over-sender" `Quick
            test_virtual_clock_punishes_oversender;
          Alcotest.test_case "DRR byte fairness" `Quick test_drr_byte_fairness;
          Alcotest.test_case "WRR packet bias" `Quick test_wrr_packet_bias;
          Alcotest.test_case "FIFO order" `Quick test_fifo_order;
          Alcotest.test_case "SFF vs SEFF pacing" `Quick test_sff_vs_seff_pacing;
          Alcotest.test_case "idle sessions harmless" `Quick test_idle_sessions_harmless;
          Alcotest.test_case "virtual time monotone" `Quick test_virtual_time_monotone;
        ] );
    ]
