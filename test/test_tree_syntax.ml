(* Tree-config syntax: parsing, rendering, roundtrips, error reporting. *)

module TS = Hpfq.Tree_syntax
module CT = Hpfq.Class_tree

let sample_text =
  "link 44.44M {\n\
  \  N-2 22.22M {\n\
  \    N-1 11.11M { RT-1 9M [512K]; BE-1 2.11M };\n\
  \    CS-1 1.111M # per-user train source\n\
  \  };\n\
  \  PS-1 2.222M\n\
   }"

let test_parse_sample () =
  match TS.parse sample_text with
  | Error e -> Alcotest.fail e
  | Ok tree ->
    Alcotest.(check string) "root name" "link" (CT.name tree);
    Alcotest.(check (float 1.0)) "root rate" 44.44e6 (CT.rate tree);
    Alcotest.(check int) "node count" 7 (CT.count_nodes tree);
    (match CT.find_path tree "RT-1" with
    | Some path ->
      Alcotest.(check (list string)) "path" [ "link"; "N-2"; "N-1"; "RT-1" ]
        (List.map CT.name path);
      let rt = List.nth path 3 in
      Alcotest.(check (float 1.0)) "RT-1 rate" 9.0e6 (CT.rate rt);
      (match rt with
      | CT.Leaf { queue_capacity_bits = Some cap; _ } ->
        Alcotest.(check (float 1.0)) "queue cap" 512.0e3 cap
      | _ -> Alcotest.fail "RT-1 should be a capped leaf")
    | None -> Alcotest.fail "RT-1 missing")

let test_rate_suffixes () =
  match TS.parse "r 2G { a 1.5G; b 500M { c 250M; d 250000K } }" with
  | Error e -> Alcotest.fail e
  | Ok tree ->
    Alcotest.(check (float 1.0)) "G suffix" 2.0e9 (CT.rate tree);
    Alcotest.(check (list (pair string (float 1.0)))) "leaves"
      [ ("a", 1.5e9); ("c", 250.0e6); ("d", 250.0e6) ]
      (CT.leaves tree)

let test_roundtrip () =
  let tree = Result.get_ok (TS.parse sample_text) in
  let reparsed = Result.get_ok (TS.parse (TS.to_string tree)) in
  let rec equal a b =
    String.equal (CT.name a) (CT.name b)
    && Float.abs (CT.rate a -. CT.rate b) < 1e-6
    && List.length (CT.children a) = List.length (CT.children b)
    && List.for_all2 equal (CT.children a) (CT.children b)
  in
  Alcotest.(check bool) "parse . to_string = id" true (equal tree reparsed)

let test_roundtrip_paper_trees () =
  List.iter
    (fun tree ->
      let text = TS.to_string tree in
      match TS.parse text with
      | Ok reparsed ->
        Alcotest.(check int) "same node count" (CT.count_nodes tree)
          (CT.count_nodes reparsed)
      | Error e -> Alcotest.fail e)
    [ Experiments.Paper_hierarchies.fig3; Experiments.Paper_hierarchies.fig8 ]

let expect_error name text =
  match TS.parse text with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (name ^ ": accepted")

let test_errors () =
  expect_error "missing rate" "link { a 1 }";
  expect_error "unterminated brace" "link 1 { a 0.5";
  expect_error "trailing garbage" "link 1 { a 1 } extra 2";
  expect_error "overcommitted (validation)" "link 1 { a 0.7; b 0.7 }";
  expect_error "cap on interior" "link 1 [5] { a 1 }";
  expect_error "bad char" "link 1 { a@b 1 }";
  expect_error "empty" "";
  expect_error "missing semicolon" "link 1 { a 0.5 b 0.5 }"

let test_parse_file () =
  let path = Filename.temp_file "hpfq_tree" ".cfg" in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc sample_text);
  (match TS.parse_file path with
  | Ok tree -> Alcotest.(check string) "from file" "link" (CT.name tree)
  | Error e -> Alcotest.fail e);
  Sys.remove path;
  match TS.parse_file "/nonexistent/hpfq.cfg" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_parsed_tree_runs () =
  (* a parsed tree drives a real server *)
  let tree = Result.get_ok (TS.parse "link 10M { gold 6M; silver 4M }") in
  let sim = Engine.Simulator.create () in
  let h =
    Hpfq.Hier.create ~sim ~spec:tree
      ~make_policy:(Hpfq.Hier.uniform Hpfq.Disciplines.wf2q_plus) ()
  in
  let gold = Hpfq.Hier.leaf_id h "gold" in
  ignore
    (Engine.Simulator.schedule sim ~at:0.0 (fun () ->
         ignore (Hpfq.Hier.inject h ~leaf:gold ~size_bits:1.0e4)));
  Engine.Simulator.run sim;
  Alcotest.(check (float 1e-6)) "served" 1.0e4 (Hpfq.Hier.departed_bits h ~node:"gold")

let () =
  Alcotest.run "tree_syntax"
    [
      ( "parser",
        [
          Alcotest.test_case "sample" `Quick test_parse_sample;
          Alcotest.test_case "rate suffixes" `Quick test_rate_suffixes;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "paper trees roundtrip" `Quick test_roundtrip_paper_trees;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "file IO" `Quick test_parse_file;
          Alcotest.test_case "parsed tree runs" `Quick test_parsed_tree_runs;
        ] );
    ]
