type flow = {
  name : string;
  route : (int * Hpfq.Hier.leaf) array; (* (hop index, leaf) per hop *)
  pending_origins : float Queue.t; (* injection times of packets in flight *)
  mutable delivered : int;
}

type hop = { name : string; spec : Hpfq.Class_tree.t; server : Hpfq.Hier.t }

type t = {
  sim : Engine.Simulator.t;
  mutable hops : hop array;
  propagation_delay : float;
  flows : (string, flow) Hashtbl.t;
  (* (hop index, leaf) -> flow, for routing departures *)
  routing : (int * Hpfq.Hier.leaf, flow) Hashtbl.t;
  on_deliver : flow:string -> Net.Packet.t -> injected:float -> delivered:float -> unit;
}

let create ~sim ~hops ~make_policy ?(propagation_delay = 0.001)
    ?(on_deliver = fun ~flow:_ _ ~injected:_ ~delivered:_ -> ()) ?burst_max () =
  if hops = [] then invalid_arg "Pipeline.create: no hops";
  let t =
    {
      sim;
      hops = [||];
      propagation_delay;
      flows = Hashtbl.create 8;
      routing = Hashtbl.create 16;
      on_deliver;
    }
  in
  (* Departures are observed through the handle hook: flow id and size are
     read from the hop's pool while the handle is still live (it is recycled
     as soon as the hook returns), and captured BY VALUE in the forwarding
     closure — the handle itself must never outlive the callback. A boxed
     packet is materialised only for the end-of-route [on_deliver]. *)
  let rec build index (name, spec) =
    let server = Hpfq.Hier.create ~sim ~spec ~make_policy ?burst_max () in
    let pool = Hpfq.Hier.pool server in
    Hpfq.Hier.add_depart_handle_hook server (fun h ~leaf:_ time ->
        hop_departure t index pool h time);
    { name; spec; server }
  and hop_departure t index pool h time =
    match
      Hashtbl.find_opt t.routing
        (index, Hpfq.Hier.unsafe_leaf_of_int (Net.Packet_pool.flow pool h))
    with
    | None -> () (* leaf not owned by a pipeline flow: local traffic *)
    | Some flow ->
      if index + 1 < Array.length t.hops then begin
        (* forward to the next hop after the propagation delay *)
        let _, next_leaf = flow.route.(index + 1) in
        let size_bits = Net.Packet_pool.size_bits pool h in
        ignore
          (Engine.Simulator.schedule_after t.sim ~delay:t.propagation_delay (fun () ->
               ignore
                 (Hpfq.Hier.inject t.hops.(index + 1).server ~leaf:next_leaf ~size_bits)))
      end
      else begin
        let injected = Queue.pop flow.pending_origins in
        flow.delivered <- flow.delivered + 1;
        t.on_deliver ~flow:flow.name (Net.Packet_pool.to_packet pool h) ~injected
          ~delivered:time
      end
  in
  let hop_array = Array.of_list (List.mapi build hops) in
  t.hops <- hop_array;
  t

let add_flow t ~name ~route =
  if Hashtbl.mem t.flows name then invalid_arg "Pipeline.add_flow: duplicate flow";
  if List.length route <> Array.length t.hops then
    invalid_arg "Pipeline.add_flow: route length must equal the number of hops";
  let resolved =
    Array.of_list
      (List.mapi
         (fun index leaf_name ->
           let leaf = Hpfq.Hier.leaf_id t.hops.(index).server leaf_name in
           if Hashtbl.mem t.routing (index, leaf) then
             invalid_arg
               (Printf.sprintf "Pipeline.add_flow: leaf %s of hop %s already routed"
                  leaf_name t.hops.(index).name);
           (index, leaf))
         route)
  in
  let flow = { name; route = resolved; pending_origins = Queue.create (); delivered = 0 } in
  Array.iter (fun key -> Hashtbl.replace t.routing key flow) resolved;
  Hashtbl.replace t.flows name flow

let find_flow t name =
  match Hashtbl.find_opt t.flows name with
  | Some flow -> flow
  | None -> invalid_arg ("Pipeline: unknown flow " ^ name)

let inject t ~flow ~size_bits =
  let flow = find_flow t flow in
  Queue.push (Engine.Simulator.now t.sim) flow.pending_origins;
  let _, first_leaf = flow.route.(0) in
  ignore (Hpfq.Hier.inject t.hops.(0).server ~leaf:first_leaf ~size_bits)

let delivered t ~flow = (find_flow t flow).delivered
let in_flight t ~flow = Queue.length (find_flow t flow).pending_origins

let hop_server t name =
  match Array.find_opt (fun hop -> String.equal hop.name name) t.hops with
  | Some hop -> hop.server
  | None -> invalid_arg ("Pipeline: unknown hop " ^ name)

let end_to_end_bound t ~flow ~sigma ~l_max =
  let flow = find_flow t flow in
  let n_hops = Array.length t.hops in
  let rec total index acc =
    if index >= n_hops then Ok acc
    else
      let hop = t.hops.(index) in
      let _, leaf = flow.route.(index) in
      let leaf_name = Hpfq.Hier.leaf_name hop.server leaf in
      let hop_sigma = if index = 0 then sigma else 0.0 in
      match
        Hpfq.Theory.hier_delay_bound ~tree:hop.spec ~leaf:leaf_name ~sigma:hop_sigma
          ~l_max
      with
      | Error _ as e -> e
      | Ok bound -> total (index + 1) (acc +. bound)
  in
  Result.map
    (fun hop_sum -> hop_sum +. (float_of_int (n_hops - 1) *. t.propagation_delay))
    (total 0 0.0)
