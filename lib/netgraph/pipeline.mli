(** Multi-hop networks of H-PFQ servers.

    The paper's delay results are per-node; end-to-end guarantees follow by
    composing them across a path of switches (§1 cites the Parekh–Gallager
    end-to-end analysis). This module wires several {!Hpfq.Hier} servers in
    sequence: a packet departing hop k's link is re-injected, after a fixed
    propagation delay, into a designated leaf of hop k+1; the last hop
    delivers to the flow's sink with its end-to-end delay.

    Each flow follows a static route (one leaf name per hop). Per-flow FIFO
    order is preserved end to end (FIFO leaf queues, in-order links), which
    is what lets the end-to-end delay of each packet be matched to its
    original injection time. *)

type t

val create :
  sim:Engine.Simulator.t ->
  hops:(string * Hpfq.Class_tree.t) list ->
  make_policy:(level:int -> name:string -> rate:float -> Sched.Sched_intf.t) ->
  ?propagation_delay:float ->
  ?on_deliver:(flow:string -> Net.Packet.t -> injected:float -> delivered:float -> unit) ->
  ?burst_max:int ->
  unit ->
  t
(** [hops] are (server name, class tree) in path order; every server uses
    [make_policy] for its interior nodes. [propagation_delay] (default
    1 ms) applies between consecutive hops. [burst_max] (default 1) is
    each hop's burst-drain cap (see {!Hpfq.Server.create}); departure and
    delivery times are bit-identical at every setting. *)

val add_flow : t -> name:string -> route:string list -> unit
(** [route] names the leaf the flow occupies at each hop (one per hop, in
    order). Each leaf may carry at most one flow.
    @raise Invalid_argument on length mismatch or leaf reuse. *)

val inject : t -> flow:string -> size_bits:float -> unit
(** A flow packet enters the first hop at the current simulation time. *)

val delivered : t -> flow:string -> int
val in_flight : t -> flow:string -> int
val hop_server : t -> string -> Hpfq.Hier.t
(** Access a hop's server by name (for stats and introspection). *)

val end_to_end_bound :
  t -> flow:string -> sigma:float -> l_max:float -> (float, string) result
(** Conservative end-to-end bound: the flow's Corollary-2 bound at the
    first hop plus, for each later hop, the hop's bound with the burst
    term already absorbed upstream (σ = 0), plus propagation delays.
    Valid because a (σ,ρ)-flow leaving a bounded-delay hop is
    (σ + ρ·D, ρ)-constrained; substituting gives the telescoped form. *)
