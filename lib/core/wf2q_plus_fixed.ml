open Sched

(* Fixed-point WF2Q+: the SoA layout of Wf2q_plus with every virtual-time
   field carried as integer ticks (2^shift per vtime-second) and the heaps
   swapped for the int-priority Indexed_heap_int. The two quantization
   points — session rate -> ticks-per-bit, packet size -> whole bits —
   both happen at the interface; past them all stamp arithmetic (eqs.
   27-29) is exact integer addition and every comparison is an exact
   machine compare, so there is no Float_cmp slack and no accumulated
   rounding (DESIGN.md §13). *)
type state = {
  shift : int;
  server_ipb : int;                 (* server ticks per bit: 2^shift / R *)
  mutable ipb : int array;          (* per-session ticks per bit *)
  mutable starts : int array;       (* S_i ticks *)
  mutable finishes : int array;     (* F_i ticks *)
  mutable head_bits : int array;    (* head size, whole bits *)
  mutable backlogged : Bytes.t;
  pool : Session_pool.t;
  eligible : Prioq.Indexed_heap_int.t; (* S_i <= V, keyed by F_i *)
  waiting : Prioq.Indexed_heap_int.t;  (* S_i >  V, keyed by S_i *)
  mutable v : int;                  (* V in ticks, post-dated as in RESTART-NODE *)
  mutable v_time : float;           (* server-time stamp of [v] (real seconds) *)
  mutable backlogged_count : int;
  mutable observer : Sched_intf.observer option;
}

type t = state

(* The V(t)+τ term of eq. 27, in ticks. Real elapsed time is the one
   inherently-float input; it is converted to ticks here, once per
   operation. When the engine is driven back-to-back (now = v_time, the
   reference-time pattern of Server/Hier), the elapsed term is exactly 0
   and linear_v is the exact integer [v]. *)
let linear_v t ~now = t.v + Fixed.of_float ~shift:t.shift (now -. t.v_time)

let to_vtime t ticks = Fixed.to_float ~shift:t.shift ticks

let bits_of_float size_bits =
  if size_bits < 0.0 then invalid_arg "Wf2q_plus_fixed: negative size";
  int_of_float (Float.round size_bits)

let check_session t session =
  if not (Session_pool.is_live t.pool session) then
    invalid_arg "Wf2q_plus_fixed: unknown session"

let ensure_capacity t slot =
  let cap = Array.length t.ipb in
  if slot >= cap then begin
    let cap' = max 16 (max (slot + 1) (2 * cap)) in
    let grow a =
      let b = Array.make cap' 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    t.ipb <- grow t.ipb;
    t.starts <- grow t.starts;
    t.finishes <- grow t.finishes;
    t.head_bits <- grow t.head_bits;
    let b = Bytes.make cap' '\000' in
    Bytes.blit t.backlogged 0 b 0 cap;
    t.backlogged <- b
  end

let place t session =
  if t.starts.(session) <= t.v then
    Prioq.Indexed_heap_int.add t.eligible ~key:session ~prio:t.finishes.(session)
  else Prioq.Indexed_heap_int.add t.waiting ~key:session ~prio:t.starts.(session)

let promote t ~threshold =
  let continue = ref true in
  while !continue && not (Prioq.Indexed_heap_int.is_empty t.waiting) do
    let start = Prioq.Indexed_heap_int.min_prio_unsafe t.waiting in
    if start <= threshold then begin
      let session = Prioq.Indexed_heap_int.min_key_unsafe t.waiting in
      Prioq.Indexed_heap_int.drop_min t.waiting;
      Prioq.Indexed_heap_int.add t.eligible ~key:session ~prio:t.finishes.(session)
    end
    else continue := false
  done

let create ?(shift = Fixed.default_shift) ~rate () =
  if rate <= 0.0 then invalid_arg "Wf2q_plus_fixed.create: rate must be positive";
  if shift < 1 || shift > 40 then invalid_arg "Wf2q_plus_fixed.create: bad shift";
  {
    shift;
    server_ipb = Fixed.ticks_per_bit ~shift ~rate;
    ipb = [||];
    starts = [||];
    finishes = [||];
    head_bits = [||];
    backlogged = Bytes.create 0;
    pool = Session_pool.create ~name:"Wf2q_plus_fixed" ();
    eligible = Prioq.Indexed_heap_int.create 16;
    waiting = Prioq.Indexed_heap_int.create 16;
    v = 0;
    v_time = 0.0;
    backlogged_count = 0;
    observer = None;
  }

let shift t = t.shift
let v_ticks t = t.v

let policy t =
  let open_session ~rate =
    if rate <= 0.0 then invalid_arg "Wf2q_plus_fixed.open_session: rate must be positive";
    let slot = Session_pool.alloc t.pool in
    ensure_capacity t slot;
    (* the ONE quantization of this session's rate *)
    t.ipb.(slot) <- Fixed.ticks_per_bit ~shift:t.shift ~rate;
    t.starts.(slot) <- 0;
    t.finishes.(slot) <- 0;
    t.head_bits.(slot) <- 0;
    Bytes.set t.backlogged slot '\000';
    Session_pool.handle t.pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve t.pool h in
    if Bytes.get t.backlogged slot <> '\000' then begin
      match policy with
      | `Drain -> Session_pool.mark_draining t.pool slot
      | `Drop ->
        Prioq.Indexed_heap_int.remove t.eligible slot;
        Prioq.Indexed_heap_int.remove t.waiting slot;
        Bytes.set t.backlogged slot '\000';
        t.backlogged_count <- t.backlogged_count - 1;
        Session_pool.free t.pool slot
    end
    else Session_pool.free t.pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  let arrive ~now ~session ~size_bits =
    match t.observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_arrive ~now ~vtime:(to_vtime t (linear_v t ~now)) ~session ~size_bits
  in
  let backlog ~now ~session ~head_bits =
    check_session t session;
    if Bytes.get t.backlogged session <> '\000' then
      invalid_arg "Wf2q_plus_fixed: backlog of backlogged session";
    let bits = bits_of_float head_bits in
    (* eq. 28, empty-queue branch: S = max(F, V(now)) *)
    let start = max t.finishes.(session) (linear_v t ~now) in
    t.starts.(session) <- start;
    t.finishes.(session) <- start + (bits * t.ipb.(session));
    t.head_bits.(session) <- bits;
    Bytes.set t.backlogged session '\001';
    t.backlogged_count <- t.backlogged_count + 1;
    place t session;
    match t.observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_backlog ~now ~vtime:(to_vtime t (linear_v t ~now)) ~session ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    check_session t session;
    let bits = bits_of_float head_bits in
    (* eq. 28, busy branch: S = F *)
    let start = t.finishes.(session) in
    let finish = start + (bits * t.ipb.(session)) in
    t.starts.(session) <- start;
    t.finishes.(session) <- finish;
    t.head_bits.(session) <- bits;
    if Prioq.Indexed_heap_int.mem t.eligible session then
      if start <= t.v then
        Prioq.Indexed_heap_int.update t.eligible ~key:session ~prio:finish
      else begin
        Prioq.Indexed_heap_int.remove t.eligible session;
        Prioq.Indexed_heap_int.add t.waiting ~key:session ~prio:start
      end
    else begin
      Prioq.Indexed_heap_int.remove t.waiting session;
      place t session
    end;
    match t.observer with
    | None -> ()
    | Some o ->
      o.Sched_intf.on_requeue ~now ~vtime:(to_vtime t (linear_v t ~now)) ~session ~head_bits
  in
  let set_idle ~now ~session =
    check_session t session;
    if Bytes.get t.backlogged session = '\000' then
      invalid_arg "Wf2q_plus_fixed: set_idle of idle session";
    Bytes.set t.backlogged session '\000';
    t.backlogged_count <- t.backlogged_count - 1;
    Prioq.Indexed_heap_int.remove t.eligible session;
    Prioq.Indexed_heap_int.remove t.waiting session;
    if Session_pool.is_draining t.pool session then Session_pool.free t.pool session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:(to_vtime t (linear_v t ~now)) ~session
  in
  let select ~now =
    if t.backlogged_count = 0 then None
    else begin
      (* eq. 27: threshold = max(V(t)+τ, min S) — exact int max. *)
      let lin = linear_v t ~now in
      let threshold =
        if
          Prioq.Indexed_heap_int.is_empty t.eligible
          && not (Prioq.Indexed_heap_int.is_empty t.waiting)
        then max lin (Prioq.Indexed_heap_int.min_prio_unsafe t.waiting)
        else lin
      in
      promote t ~threshold;
      let session = Prioq.Indexed_heap_int.min_key_unsafe t.eligible in
      if session < 0 then None (* unreachable: threshold >= min S guarantees a candidate *)
      else begin
        (* RESTART-NODE lines 12-13: post-date V (in exact ticks) and its
           real-time stamp to the committed packet's completion. *)
        let service_ticks = t.head_bits.(session) * t.server_ipb in
        t.v <- threshold + service_ticks;
        t.v_time <- now +. to_vtime t service_ticks;
        (match t.observer with
        | None -> ()
        | Some o -> o.Sched_intf.on_select ~now ~vtime:(to_vtime t t.v) ~session);
        Some session
      end
    end
  in
  {
    Sched_intf.name = "WF2Q+fx";
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve t.pool h);
    live_sessions = (fun () -> Session_pool.live_count t.pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now -> to_vtime t (linear_v t ~now));
    backlogged_count = (fun () -> t.backlogged_count);
    set_observer = (fun o -> t.observer <- o);
  }

let make ~rate = policy (create ~rate ())
let factory = { Sched_intf.kind = "WF2Q+fx"; make }
