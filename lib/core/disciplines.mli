(** Registry of every one-level discipline in the repository.

    Benches and the CLI iterate over {!all} to compare the paper's WF²Q+
    against each baseline under identical workloads. *)

val wf2q_plus : Sched.Sched_intf.factory

(** WF²Q+ on integer-tick virtual time ({!Wf2q_plus_fixed}): exact stamp
    arithmetic, no epsilon comparisons, zero long-horizon drift. *)
val wf2q_plus_fixed : Sched.Sched_intf.factory

(** The eq. 6-7 per-packet-stamp ablation of WF²Q+ ({!Wf2q_plus_stamped}). *)
val wf2q_plus_per_packet : Sched.Sched_intf.factory

val wfq : Sched.Sched_intf.factory
val wf2q : Sched.Sched_intf.factory
val scfq : Sched.Sched_intf.factory
val sfq : Sched.Sched_intf.factory
val virtual_clock : Sched.Sched_intf.factory
val drr : Sched.Sched_intf.factory
val wrr : Sched.Sched_intf.factory
val fifo : Sched.Sched_intf.factory

val all : Sched.Sched_intf.factory list
(** Every discipline, WF²Q+ first. *)

val pfq : Sched.Sched_intf.factory list
(** The PFQ family only (virtual-time based, rate-guaranteeing):
    WF²Q+, WFQ, WF²Q, SCFQ, SFQ. *)

val find : string -> Sched.Sched_intf.factory option
(** Lookup by [kind] string, case-insensitive. *)
