open Sched

type session = {
  rate : float;
  stamps : (float * float) Queue.t; (* per-packet (S, F), stamped at arrival *)
  mutable last_finish : float;      (* F of the session's newest packet *)
  mutable backlogged : bool;
}

type state = {
  server_rate : float;
  sessions : session Vec.t;
  pool : Session_pool.t;
  eligible : Prioq.Indexed_heap4.t; (* head S <= V, keyed by head F *)
  waiting : Prioq.Indexed_heap4.t;  (* keyed by head S *)
  mutable v : float;
  mutable v_time : float;
  mutable backlogged_count : int;
  mutable observer : Sched_intf.observer option;
}

let linear_v t ~now = t.v +. (now -. t.v_time)

let head_stamps t session =
  let s = Vec.get t.sessions session in
  match Queue.peek_opt s.stamps with
  | Some stamps -> stamps
  | None -> invalid_arg "Wf2q_plus_stamped: session has no stamped packet"

let place t session =
  let start, finish = head_stamps t session in
  if Float_cmp.le_with_slack start t.v then
    Prioq.Indexed_heap4.add t.eligible ~key:session ~prio:finish
  else Prioq.Indexed_heap4.add t.waiting ~key:session ~prio:start

let promote t ~threshold =
  let continue = ref true in
  while !continue do
    match Prioq.Indexed_heap4.min_binding t.waiting with
    | Some (session, start) when Float_cmp.le_with_slack start threshold ->
      ignore (Prioq.Indexed_heap4.pop_min t.waiting);
      let _, finish = head_stamps t session in
      Prioq.Indexed_heap4.add t.eligible ~key:session ~prio:finish
    | Some _ | None -> continue := false
  done

let make ~rate =
  if rate <= 0.0 then invalid_arg "Wf2q_plus_stamped.make: rate must be positive";
  let t =
    {
      server_rate = rate;
      sessions = Vec.create ();
      pool = Session_pool.create ~name:"Wf2q_plus_stamped" ();
      eligible = Prioq.Indexed_heap4.create 16;
      waiting = Prioq.Indexed_heap4.create 16;
      v = 0.0;
      v_time = 0.0;
      backlogged_count = 0;
      observer = None;
    }
  in
  let open_session ~rate =
    if rate <= 0.0 then invalid_arg "Wf2q_plus_stamped.open_session: bad rate";
    let slot = Session_pool.alloc t.pool in
    let fresh = { rate; stamps = Queue.create (); last_finish = 0.0; backlogged = false } in
    if slot = Vec.length t.sessions then ignore (Vec.push t.sessions fresh)
    else Vec.set t.sessions slot fresh;
    Session_pool.handle t.pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve t.pool h in
    let s = Vec.get t.sessions slot in
    if s.backlogged then begin
      match policy with
      | `Drain -> Session_pool.mark_draining t.pool slot
      | `Drop ->
        Prioq.Indexed_heap4.remove t.eligible slot;
        Prioq.Indexed_heap4.remove t.waiting slot;
        Queue.clear s.stamps;
        s.backlogged <- false;
        t.backlogged_count <- t.backlogged_count - 1;
        Session_pool.free t.pool slot
    end
    else Session_pool.free t.pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  (* eq. 6-7: stamp at arrival time with the current virtual time *)
  let arrive ~now ~session ~size_bits =
    let s = Vec.get t.sessions session in
    let start = Float.max s.last_finish (linear_v t ~now) in
    let finish = start +. (size_bits /. s.rate) in
    s.last_finish <- finish;
    Queue.push (start, finish) s.stamps;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_arrive ~now ~vtime:(linear_v t ~now) ~session ~size_bits
  in
  let backlog ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    if s.backlogged then invalid_arg "Wf2q_plus_stamped: backlog of backlogged session";
    s.backlogged <- true;
    t.backlogged_count <- t.backlogged_count + 1;
    place t session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_backlog ~now ~vtime:(linear_v t ~now) ~session ~head_bits
  in
  let remove_from_heaps session =
    Prioq.Indexed_heap4.remove t.eligible session;
    Prioq.Indexed_heap4.remove t.waiting session
  in
  let requeue ~now ~session ~head_bits =
    ignore (Queue.pop (Vec.get t.sessions session).stamps);
    remove_from_heaps session;
    place t session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_requeue ~now ~vtime:(linear_v t ~now) ~session ~head_bits
  in
  let set_idle ~now ~session =
    let s = Vec.get t.sessions session in
    ignore (Queue.pop s.stamps);
    remove_from_heaps session;
    s.backlogged <- false;
    t.backlogged_count <- t.backlogged_count - 1;
    if Session_pool.is_draining t.pool session then Session_pool.free t.pool session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:(linear_v t ~now) ~session
  in
  let select ~now =
    if t.backlogged_count = 0 then None
    else begin
      let lin = linear_v t ~now in
      let threshold =
        if Prioq.Indexed_heap4.is_empty t.eligible then
          match Prioq.Indexed_heap4.min_prio t.waiting with
          | Some smin -> Float.max lin smin
          | None -> lin
        else lin
      in
      promote t ~threshold;
      match Prioq.Indexed_heap4.min_key t.eligible with
      | None -> None
      | Some session ->
        let s = Vec.get t.sessions session in
        let head_bits =
          match Queue.peek_opt s.stamps with
          | Some (start, finish) -> (finish -. start) *. s.rate
          | None -> 0.0
        in
        let service = head_bits /. t.server_rate in
        t.v <- threshold +. service;
        t.v_time <- now +. service;
        (match t.observer with
        | None -> ()
        | Some o -> o.Sched_intf.on_select ~now ~vtime:t.v ~session);
        Some session
    end
  in
  {
    Sched_intf.name = "WF2Q+pp";
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve t.pool h);
    live_sessions = (fun () -> Session_pool.live_count t.pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now -> linear_v t ~now);
    backlogged_count = (fun () -> t.backlogged_count);
    set_observer = (fun o -> t.observer <- o);
  }

let factory = { Sched_intf.kind = "WF2Q+pp"; make }
