open Sched

type session = {
  rate : float;
  mutable start : float;  (* S_i: virtual start of the head packet *)
  mutable finish : float; (* F_i: virtual finish of the head packet *)
  mutable head_bits : float;
  mutable backlogged : bool;
}

type state = {
  server_rate : float;
  sessions : session Vec.t;
  eligible : Prioq.Indexed_heap.t; (* S_i <= V, keyed by F_i *)
  waiting : Prioq.Indexed_heap.t;  (* S_i >  V, keyed by S_i *)
  mutable v : float;               (* V, post-dated to the last selection's completion *)
  mutable v_time : float;          (* server time of that completion *)
  mutable backlogged_count : int;
}

let le_with_slack a b = a <= b +. (1e-9 *. (1.0 +. Float.abs b))

(* The V(t)+τ term of eq. 27. [v] is post-dated to [v_time], the completion
   of the last committed packet; V is linear (slope 1) through that span and
   across any idle gap that follows, so V(now) interpolates in both
   directions: backwards for an arrival landing mid-transmission
   (now < v_time), forwards across idle time (now > v_time). Clamping the
   backward case at [v] would inflate eq. 28's S = max(F, V(a)) stamps and
   leak guaranteed bandwidth (caught by the Thm 4.3 property test). *)
let linear_v t ~now = t.v +. (now -. t.v_time)

let place t session =
  let s = Vec.get t.sessions session in
  if le_with_slack s.start t.v then
    Prioq.Indexed_heap.add t.eligible ~key:session ~prio:s.finish
  else Prioq.Indexed_heap.add t.waiting ~key:session ~prio:s.start

let promote t ~threshold =
  let continue = ref true in
  while !continue do
    match Prioq.Indexed_heap.min_binding t.waiting with
    | Some (session, start) when le_with_slack start threshold ->
      ignore (Prioq.Indexed_heap.pop_min t.waiting);
      let s = Vec.get t.sessions session in
      Prioq.Indexed_heap.add t.eligible ~key:session ~prio:s.finish
    | Some _ | None -> continue := false
  done

let make ~rate =
  if rate <= 0.0 then invalid_arg "Wf2q_plus.make: rate must be positive";
  let t =
    {
      server_rate = rate;
      sessions = Vec.create ();
      eligible = Prioq.Indexed_heap.create 16;
      waiting = Prioq.Indexed_heap.create 16;
      v = 0.0;
      v_time = 0.0;
      backlogged_count = 0;
    }
  in
  let add_session ~rate =
    if rate <= 0.0 then invalid_arg "Wf2q_plus.add_session: rate must be positive";
    Vec.push t.sessions
      { rate; start = 0.0; finish = 0.0; head_bits = 0.0; backlogged = false }
  in
  let arrive ~now:_ ~session:_ ~size_bits:_ = () in
  let backlog ~now ~session ~head_bits =
    let s = Vec.get t.sessions session in
    if s.backlogged then invalid_arg "Wf2q_plus: backlog of backlogged session";
    (* eq. 28, empty-queue branch: S = max(F, V(now)) *)
    s.start <- Float.max s.finish (linear_v t ~now);
    s.finish <- s.start +. (head_bits /. s.rate);
    s.head_bits <- head_bits;
    s.backlogged <- true;
    t.backlogged_count <- t.backlogged_count + 1;
    place t session
  in
  let requeue ~now:_ ~session ~head_bits =
    let s = Vec.get t.sessions session in
    (* eq. 28, busy branch: S = F *)
    s.start <- s.finish;
    s.finish <- s.start +. (head_bits /. s.rate);
    s.head_bits <- head_bits;
    Prioq.Indexed_heap.remove t.eligible session;
    Prioq.Indexed_heap.remove t.waiting session;
    place t session
  in
  let set_idle ~now:_ ~session =
    let s = Vec.get t.sessions session in
    if not s.backlogged then invalid_arg "Wf2q_plus: set_idle of idle session";
    s.backlogged <- false;
    t.backlogged_count <- t.backlogged_count - 1;
    Prioq.Indexed_heap.remove t.eligible session;
    Prioq.Indexed_heap.remove t.waiting session
  in
  let select ~now =
    if t.backlogged_count = 0 then None
    else begin
      (* eq. 27: threshold = max(V(t)+τ, min S). When the eligible set is
         non-empty some S is already <= V, so min S <= V and the max is just
         the linear term. *)
      let lin = linear_v t ~now in
      let threshold =
        if Prioq.Indexed_heap.is_empty t.eligible then
          match Prioq.Indexed_heap.min_prio t.waiting with
          | Some smin -> Float.max lin smin
          | None -> lin
        else lin
      in
      promote t ~threshold;
      match Prioq.Indexed_heap.min_key t.eligible with
      | None -> None (* unreachable: threshold >= min S guarantees a candidate *)
      | Some session ->
        let s = Vec.get t.sessions session in
        let service = s.head_bits /. t.server_rate in
        (* RESTART-NODE lines 12-13: post-date V and its timestamp to the
           completion of the packet just committed. *)
        t.v <- threshold +. service;
        t.v_time <- now +. service;
        Some session
    end
  in
  {
    Sched_intf.name = "WF2Q+";
    add_session;
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now -> linear_v t ~now);
    backlogged_count = (fun () -> t.backlogged_count);
  }

let factory = { Sched_intf.kind = "WF2Q+"; make }
