open Sched

(* Session state lives in a struct-of-arrays layout rather than an array of
   records: a mixed int/float record boxes every float field, so each stamp
   update (`s.start <- ...`) allocates a fresh boxed float on the minor
   heap and every read chases a pointer. With one plain [float array] per
   field the floats are unboxed, stamp updates are in-place stores, and
   [select]/[promote] walk contiguous memory. The per-session fields are
   indexed by the session id handed out by [add_session]. *)
type state = {
  server_rate : float;
  mutable rates : float array;      (* r_i *)
  mutable starts : float array;     (* S_i: virtual start of the head packet *)
  mutable finishes : float array;   (* F_i: virtual finish of the head packet *)
  mutable head_bits : float array;
  mutable backlogged : Bytes.t;     (* '\001' when backlogged *)
  pool : Session_pool.t;            (* slot lifecycle: freelist + generations *)
  eligible : Prioq.Indexed_heap4.t; (* S_i <= V, keyed by F_i *)
  waiting : Prioq.Indexed_heap4.t;  (* S_i >  V, keyed by S_i *)
  vv : float array;                 (* [|V; server time of V|]: V is post-dated to the
                                       last selection's completion and timestamped with
                                       that completion; a float array keeps both unboxed
                                       (mutable floats in this mixed record would box on
                                       every store). *)
  mutable backlogged_count : int;
  mutable observer : Sched_intf.observer option;
}

(* The V(t)+τ term of eq. 27. [v] is post-dated to [v_time], the completion
   of the last committed packet; V is linear (slope 1) through that span and
   across any idle gap that follows, so V(now) interpolates in both
   directions: backwards for an arrival landing mid-transmission
   (now < v_time), forwards across idle time (now > v_time). Clamping the
   backward case at [v] would inflate eq. 28's S = max(F, V(a)) stamps and
   leak guaranteed bandwidth (caught by the Thm 4.3 property test). *)
let linear_v t ~now = t.vv.(0) +. (now -. t.vv.(1))

(* Local max: [Stdlib.Float.max] is a cross-module call that boxes both
   arguments and the result without flambda. Identical to [Float.max] for
   the non-NaN, non-negative stamps used here (ties return the first
   argument in both). *)
let[@inline] fmax (x : float) y = if y > x then y else x

let check_session t session =
  if not (Session_pool.is_live t.pool session) then
    invalid_arg "Wf2q_plus: unknown session"

let ensure_capacity t slot =
  let cap = Array.length t.rates in
  if slot >= cap then begin
    let cap' = max 16 (max (slot + 1) (2 * cap)) in
    let grow a =
      let b = Array.make cap' 0.0 in
      Array.blit a 0 b 0 cap;
      b
    in
    t.rates <- grow t.rates;
    t.starts <- grow t.starts;
    t.finishes <- grow t.finishes;
    t.head_bits <- grow t.head_bits;
    let b = Bytes.make cap' '\000' in
    Bytes.blit t.backlogged 0 b 0 cap;
    t.backlogged <- b
  end

let place t session =
  if Float_cmp.le_with_slack t.starts.(session) t.vv.(0) then
    Prioq.Indexed_heap4.add t.eligible ~key:session ~prio:t.finishes.(session)
  else Prioq.Indexed_heap4.add t.waiting ~key:session ~prio:t.starts.(session)

let promote t ~threshold =
  let continue = ref true in
  while !continue && not (Prioq.Indexed_heap4.is_empty t.waiting) do
    let start = Prioq.Indexed_heap4.min_prio_unsafe t.waiting in
    if Float_cmp.le_with_slack start threshold then begin
      let session = Prioq.Indexed_heap4.min_key_unsafe t.waiting in
      Prioq.Indexed_heap4.drop_min t.waiting;
      Prioq.Indexed_heap4.add t.eligible ~key:session ~prio:t.finishes.(session)
    end
    else continue := false
  done

let make ~rate =
  if rate <= 0.0 then invalid_arg "Wf2q_plus.make: rate must be positive";
  let t =
    {
      server_rate = rate;
      rates = [||];
      starts = [||];
      finishes = [||];
      head_bits = [||];
      backlogged = Bytes.create 0;
      pool = Session_pool.create ~name:"Wf2q_plus" ();
      eligible = Prioq.Indexed_heap4.create 16;
      waiting = Prioq.Indexed_heap4.create 16;
      vv = [| 0.0; 0.0 |];
      backlogged_count = 0;
      observer = None;
    }
  in
  (* Lifecycle: slots come from the pool's freelist; a recycled slot is
     re-initialised to fresh-session state (F = 0, so the first backlog
     stamps S = max(0, V) = V — exactly a brand-new session). *)
  let open_session ~rate =
    if rate <= 0.0 then invalid_arg "Wf2q_plus.open_session: rate must be positive";
    let slot = Session_pool.alloc t.pool in
    ensure_capacity t slot;
    t.rates.(slot) <- rate;
    t.starts.(slot) <- 0.0;
    t.finishes.(slot) <- 0.0;
    t.head_bits.(slot) <- 0.0;
    Bytes.set t.backlogged slot '\000';
    Session_pool.handle t.pool slot
  in
  let close_session ~now:_ ~policy h =
    let slot = Session_pool.resolve t.pool h in
    if Bytes.get t.backlogged slot <> '\000' then begin
      match policy with
      | `Drain ->
        (* keep scheduling; set_idle frees the slot when the queue empties *)
        Session_pool.mark_draining t.pool slot
      | `Drop ->
        Prioq.Indexed_heap4.remove t.eligible slot;
        Prioq.Indexed_heap4.remove t.waiting slot;
        Bytes.set t.backlogged slot '\000';
        t.backlogged_count <- t.backlogged_count - 1;
        Session_pool.free t.pool slot
    end
    else Session_pool.free t.pool slot
  in
  let add_session ~rate = Session_handle.slot (open_session ~rate) in
  let arrive ~now ~session ~size_bits =
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_arrive ~now ~vtime:(linear_v t ~now) ~session ~size_bits
  in
  let backlog ~now ~session ~head_bits =
    check_session t session;
    if Bytes.get t.backlogged session <> '\000' then
      invalid_arg "Wf2q_plus: backlog of backlogged session";
    (* eq. 28, empty-queue branch: S = max(F, V(now)) *)
    let start = fmax t.finishes.(session) (linear_v t ~now) in
    t.starts.(session) <- start;
    t.finishes.(session) <- start +. (head_bits /. t.rates.(session));
    t.head_bits.(session) <- head_bits;
    Bytes.set t.backlogged session '\001';
    t.backlogged_count <- t.backlogged_count + 1;
    place t session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_backlog ~now ~vtime:(linear_v t ~now) ~session ~head_bits
  in
  let requeue ~now ~session ~head_bits =
    check_session t session;
    (* eq. 28, busy branch: S = F *)
    let start = t.finishes.(session) in
    let finish = start +. (head_bits /. t.rates.(session)) in
    t.starts.(session) <- start;
    t.finishes.(session) <- finish;
    t.head_bits.(session) <- head_bits;
    (* The requeued session usually sits in the eligible set (it was just
       selected from there); when it stays eligible an in-place increase-key
       replaces the remove+add pair. *)
    if Prioq.Indexed_heap4.mem t.eligible session then
      if Float_cmp.le_with_slack start t.vv.(0) then
        Prioq.Indexed_heap4.update t.eligible ~key:session ~prio:finish
      else begin
        Prioq.Indexed_heap4.remove t.eligible session;
        Prioq.Indexed_heap4.add t.waiting ~key:session ~prio:start
      end
    else begin
      Prioq.Indexed_heap4.remove t.waiting session;
      place t session
    end;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_requeue ~now ~vtime:(linear_v t ~now) ~session ~head_bits
  in
  let set_idle ~now ~session =
    check_session t session;
    if Bytes.get t.backlogged session = '\000' then
      invalid_arg "Wf2q_plus: set_idle of idle session";
    Bytes.set t.backlogged session '\000';
    t.backlogged_count <- t.backlogged_count - 1;
    Prioq.Indexed_heap4.remove t.eligible session;
    Prioq.Indexed_heap4.remove t.waiting session;
    if Session_pool.is_draining t.pool session then Session_pool.free t.pool session;
    match t.observer with
    | None -> ()
    | Some o -> o.Sched_intf.on_idle ~now ~vtime:(linear_v t ~now) ~session
  in
  let select ~now =
    if t.backlogged_count = 0 then None
    else begin
      (* eq. 27: threshold = max(V(t)+τ, min S). When the eligible set is
         non-empty some S is already <= V, so min S <= V and the max is just
         the linear term. *)
      let lin = linear_v t ~now in
      let threshold =
        if
          Prioq.Indexed_heap4.is_empty t.eligible
          && not (Prioq.Indexed_heap4.is_empty t.waiting)
        then fmax lin (Prioq.Indexed_heap4.min_prio_unsafe t.waiting)
        else lin
      in
      promote t ~threshold;
      let session = Prioq.Indexed_heap4.min_key_unsafe t.eligible in
      if session < 0 then None (* unreachable: threshold >= min S guarantees a candidate *)
      else begin
        let service = t.head_bits.(session) /. t.server_rate in
        (* RESTART-NODE lines 12-13: post-date V and its timestamp to the
           completion of the packet just committed. *)
        t.vv.(0) <- threshold +. service;
        t.vv.(1) <- now +. service;
        (match t.observer with
        | None -> ()
        | Some o -> o.Sched_intf.on_select ~now ~vtime:t.vv.(0) ~session);
        Some session
      end
    end
  in
  {
    Sched_intf.name = "WF2Q+";
    add_session;
    open_session;
    close_session;
    session_of_handle = (fun h -> Session_pool.resolve t.pool h);
    live_sessions = (fun () -> Session_pool.live_count t.pool);
    arrive;
    backlog;
    requeue;
    set_idle;
    select;
    virtual_time = (fun ~now -> linear_v t ~now);
    backlogged_count = (fun () -> t.backlogged_count);
    set_observer = (fun o -> t.observer <- o);
  }

let factory = { Sched_intf.kind = "WF2Q+"; make }
