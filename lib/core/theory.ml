let bwfi_wf2q ~l_i_max ~l_max ~r_i ~r = l_i_max +. ((l_max -. l_i_max) *. r_i /. r)

let twfi_of_bwfi ~bwfi ~r_i = bwfi /. r_i

let bwfi_wfq_worst_case ~n ~l_max ~r_i ~r =
  l_max +. (float_of_int n /. 2.0 *. l_max *. r_i /. r)

let delay_bound_standalone_wf2q ~sigma ~r_i ~l_max ~r = (sigma /. r_i) +. (l_max /. r)

type node_alpha = { node : string; alpha : float; rate : float }

let path_to_leaf ~tree ~leaf =
  match Class_tree.find_path tree leaf with
  | None -> Error (Printf.sprintf "no node named %S" leaf)
  | Some path ->
    let target = List.nth path (List.length path - 1) in
    if not (Class_tree.is_leaf target) then
      Error (Printf.sprintf "%S is not a leaf" leaf)
    else Ok path

let path_rates ~tree ~leaf =
  (* root-to-leaf order reversed: leaf = p^0 first, root = p^H last *)
  Result.map
    (fun path -> List.rev_map Class_tree.rate path)
    (path_to_leaf ~tree ~leaf)

let hier_bwfi ~tree ~leaf ~alpha_of =
  match path_to_leaf ~tree ~leaf with
  | Error _ as e -> e
  | Ok path ->
    (* path is root..leaf; pair each non-root node with its parent's rate *)
    let rec walk parent_rate acc = function
      | [] -> acc
      | node :: rest ->
        let rate = Class_tree.rate node in
        let alpha = alpha_of ~node:(Class_tree.name node) ~rate ~parent_rate in
        walk rate ((rate, alpha) :: acc) rest
    in
    (match path with
    | [] -> Error "empty path"
    | root :: rest ->
      let terms = walk (Class_tree.rate root) [] rest in
      (* terms is leaf-first: [(r_{p^0}, α_{p^0}); (r_{p^1}, α_{p^1}); ...] *)
      let r_i = match terms with (r, _) :: _ -> r | [] -> Class_tree.rate root in
      Ok (List.fold_left (fun acc (r_h, alpha_h) -> acc +. (r_i /. r_h *. alpha_h)) 0.0 terms))

let sum_lmax_over_path ~tree ~leaf ~l_max =
  match path_to_leaf ~tree ~leaf with
  | Error _ as e -> e
  | Ok path ->
    (* Corollary 2 sums L_max/r_{p^h(i)} for h = 0..H-1, i.e. every node on
       the path except the root. *)
    (match path with
    | [] -> Error "empty path"
    | _root :: rest ->
      Ok (List.fold_left (fun acc node -> acc +. (l_max /. Class_tree.rate node)) 0.0 rest))

let hier_delay_bound ~tree ~leaf ~sigma ~l_max =
  match path_to_leaf ~tree ~leaf with
  | Error _ as e -> e
  | Ok path ->
    let r_i = Class_tree.rate (List.nth path (List.length path - 1)) in
    Result.map (fun s -> (sigma /. r_i) +. s) (sum_lmax_over_path ~tree ~leaf ~l_max)

let hier_delay_bound_via_wfi ~tree ~leaf ~sigma ~l_max =
  match path_to_leaf ~tree ~leaf with
  | Error _ as e -> e
  | Ok path ->
    let r_i = Class_tree.rate (List.nth path (List.length path - 1)) in
    let alpha_of ~node:_ ~rate ~parent_rate =
      bwfi_wf2q ~l_i_max:l_max ~l_max ~r_i:rate ~r:parent_rate
    in
    Result.map
      (fun alpha ->
        (* Corollary 1: σ/r_i + Σ α_{p^h}/r_{p^h}; recover the per-level sum
           from Theorem 1's α_{i,H-PFQ} = Σ (r_i/r_{p^h}) α_{p^h} by noting
           both sums share the same terms scaled by r_i. *)
        (sigma /. r_i) +. (alpha /. r_i))
      (hier_bwfi ~tree ~leaf ~alpha_of)

let epoch_lag_bound ~epoch ~l_max ~rate =
  if epoch < 1 then invalid_arg "Theory.epoch_lag_bound: epoch must be >= 1";
  if l_max <= 0.0 then invalid_arg "Theory.epoch_lag_bound: l_max must be positive";
  if rate <= 0.0 then invalid_arg "Theory.epoch_lag_bound: rate must be positive";
  float_of_int (epoch - 1) *. l_max /. rate
