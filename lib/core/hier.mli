(** H-PFQ: a hierarchical packet server assembled from one-level PFQ
    building blocks (paper §4, pseudocode ARRIVE / RESTART-NODE /
    RESET-PATH).

    Every interior node of a {!Class_tree.t} runs its own one-level policy
    over its children; leaves own physical FIFO queues. Logical queues hold
    only a reference to the packet at the head of each subtree; the packet
    itself stays in its leaf queue until the link transmits it. Each node is
    driven in its own {e reference time} [T_n(t) = W_n(0,t)/r_n] (§4.1),
    post-dated per service exactly as lines 12–13 of RESTART-NODE post-date
    the node clocks.

    Instantiating every node with {!Wf2q_plus} gives H-WF²Q+; with
    {!Sched.Gps_based.wfq} gives the H-WFQ the paper compares against; any
    mix is allowed (e.g. a different discipline per level).

    The [root_clock] option selects what "now" means for the root node's
    policy: [`Real_time] (default) passes simulation time, matching the
    standalone WF²Q+ definition of §3.4 where V advances with real time τ;
    [`Reference_time] passes the stored post-dated T_R, matching the
    pseudocode to the letter. The two coincide whenever the server is busy
    (paper eq. 32) and differ only across idle gaps; a bench quantifies the
    difference.

    Packets live in a per-hierarchy {!Net.Packet_pool}; logical queues and
    the wire hold immediate int handles, and a boxed {!Net.Packet.t} is
    materialised only inside the boxed hook wrappers. Handle hooks see the
    raw handle, valid for the duration of the callback. *)

type t

type leaf = private int
(** A validated leaf identity. Values come from {!leaf_id}/{!leaf_ids}
    (or, for code that persists raw node ids, {!unsafe_leaf_of_int}); the
    underlying node id is recovered with [(l :> int)]. Keeping the type
    abstract stops arbitrary ints — session slots, node ids of interior
    nodes, hashes — from being passed where a leaf is required. *)

val create :
  sim:Engine.Simulator.t ->
  spec:Class_tree.t ->
  make_policy:(level:int -> name:string -> rate:float -> Sched.Sched_intf.t) ->
  ?root_clock:[ `Real_time | `Reference_time ] ->
  ?on_depart:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?burst_max:int ->
  unit ->
  t
(** The root of [spec] is the physical link; its rate is the link rate.
    [make_policy] is called once per interior node ([level] 0 = root).

    [burst_max] (default 1) bounds how many consecutive departures one
    simulator event may execute while the link stays backlogged; departure
    times, stamps and callback order are bit-identical at every setting
    (see {!Server.create}).
    @raise Invalid_argument if [spec] fails {!Class_tree.validate} or
    [burst_max < 1]. *)

val set_burst_max : t -> int -> unit
(** Change the burst cap; takes effect from the next drain activation.
    @raise Invalid_argument if the argument is [< 1]. *)

val burst_max : t -> int

val uniform : Sched.Sched_intf.factory -> level:int -> name:string -> rate:float -> Sched.Sched_intf.t
(** Use one discipline at every node:
    [create ~make_policy:(uniform Wf2q_plus.factory) ...]. *)

val leaf_id : t -> string -> leaf
(** @raise Not_found if no node has that name.
    @raise Invalid_argument if the name belongs to an interior node. *)

val leaf_name : t -> leaf -> string
val leaf_ids : t -> (string * leaf) list

val unsafe_leaf_of_int : int -> leaf
(** Escape hatch for code that stores raw node ids (e.g. a packet's [flow]
    field, which is its leaf's node id). The int is NOT validated — prefer
    {!leaf_id}. *)

val pool : t -> Net.Packet_pool.t
(** The hierarchy's packet arena (to read fields of a handle inside a
    [_handle_] hook, or to materialise a boxed view). *)

val inject : ?mark:int -> t -> leaf:leaf -> size_bits:float -> Net.Packet_pool.handle
(** A packet arrives at the leaf at the current simulation time. Its [flow]
    field is the leaf id; [mark] is a free-form tag (e.g. a TCP sequence
    number) carried through to the departure callback. Returns the packet's
    pool handle; if the queue was full the drop callback has already fired
    and the handle is already recycled (stale).
    @raise Invalid_argument if the leaf is closed or closing. *)

val inject_many :
  ?mark:int -> t -> leaf:leaf -> size_bits:float -> count:int -> unit
(** [count] packets of [size_bits] arrive back-to-back at the leaf, stamped
    with one clock read. Bit-identical to [count] calls of {!inject} (the
    clock cannot move during injection); only per-packet lookup and stamp
    overhead is amortized.
    @raise Invalid_argument if the leaf is closed or [count] is negative. *)

val close_leaf : t -> leaf:leaf -> policy:Sched.Sched_intf.close_policy -> unit
(** Close a leaf class, deterministically in every state: an idle leaf's
    parent slot frees immediately; a backlogged leaf either keeps its
    schedule place until its queue empties ([`Drain]) or has its queued
    packets handed to the drop callback now ([`Drop]) — with one
    exception: a head packet already committed to the wire always finishes
    transmitting, and the close completes at its departure. A [`Drop]
    close retracts the leaf's committed head from every ancestor's logical
    queue and re-runs the RESTART-NODE cascade, so ancestor schedules stay
    consistent.
    @raise Invalid_argument if not a leaf, or already closed/closing. *)

val reopen_leaf : ?rate:float -> t -> leaf:leaf -> unit
(** Re-open a closed leaf (the class tree's shape is fixed at {!create};
    lifecycle is close + reopen in place). The leaf rejoins its parent as
    a fresh session — new handle generation, stamps reset — optionally
    with a new [rate].
    @raise Invalid_argument if the leaf is open or still draining. *)

val leaf_state : t -> leaf:leaf -> [ `Open | `Closing | `Closed ]
(** [`Closing] covers both a draining leaf and a [`Drop] close waiting on
    the wire packet. *)

val queue_bits : t -> leaf:leaf -> float
val departed_bits : t -> node:string -> float
(** Cumulative W_n(0, now) for any named node (leaf or interior). *)

val ref_time : t -> node:string -> float
(** The node's (post-dated) reference time T_n; root only meaningful under
    [`Reference_time]. *)

val node_virtual_time : t -> node:string -> float
(** Virtual time of the named interior node's policy (introspection). *)

val link_busy : t -> bool
val drops : t -> int

(** {2 Observability}

    The tracing layer ([lib/obs]) attaches to a hierarchy through these: the
    packet-level hooks see link events, and [iter_interior] exposes every
    node's policy so a per-node {!Sched.Sched_intf.observer} can be
    installed. All hooks compose with (run after) the callbacks given at
    creation; with none installed the hot path is unchanged. *)

val add_depart_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
(** Append a departure callback (fires when the last bit leaves the link).
    Materialises a boxed packet per departure. *)

val add_drop_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
(** Append a drop callback. *)

val add_transmit_start_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
(** Append a callback fired when a packet's first bit goes onto the link. *)

val add_depart_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit
(** Allocation-free {!add_depart_hook}: the callback receives the pool
    handle, valid for the duration of the call only. *)

val add_drop_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val add_transmit_start_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val root_name : t -> string

val node_name : t -> int -> string
(** Name of any node id (leaves included; total over ids handed out). *)

val node_count : t -> int
(** Total nodes (interior + leaves); ids are [0 .. node_count - 1]. *)

val leaf_path : t -> leaf:leaf -> int array
(** The precomputed leaf→root path of node ids (leaf first, root last) — the
    walk [complete_transmission] credits W_n along; exposed so tracing can
    credit the same way without re-deriving parents.
    @raise Invalid_argument if [leaf] is interior. *)

val iter_interior :
  t ->
  (id:int ->
  name:string ->
  level:int ->
  children:int array ->
  policy:Sched.Sched_intf.t ->
  unit) ->
  unit
(** Visit every interior node in id (preorder) order. [children.(s)] is the
    node id behind the policy's session index [s]. *)

val set_node_observer : t -> node:string -> Sched.Sched_intf.observer option -> unit
(** Install or remove an observer on the named interior node's policy.
    @raise Not_found if no such node.
    @raise Invalid_argument if the node is a leaf. *)
