open Sched

type session = {
  rate : float;
  fifo : Net.Fifo.t;
  handle : Session_handle.t; (* the policy's handle for this incarnation *)
  mutable next_seq : int;
  mutable has_head : bool;   (* a packet of ours is registered with the policy *)
  mutable in_service : bool; (* our head is currently on the link *)
  mutable closing : Sched_intf.close_policy option; (* Some = close requested *)
  departed_bits : float array; (* 1-element: a mutable float field in this
                                  mixed record would box on every store *)
}

(* The hot path moves [Net.Packet_pool.handle]s (immediate ints); hooks are
   handle-based internally, and the boxed [Net.Packet.t] view is
   materialised only inside the compat wrappers that [add_depart_hook]
   etc. install — a server with no boxed hooks never builds a box. *)
type t = {
  sim : Engine.Simulator.t;
  rate : float;
  policy : Sched_intf.t;
  pool : Net.Packet_pool.t;
  sessions : session Vec.t;
  mutable on_depart : Net.Packet_pool.handle -> float -> unit;
  mutable on_drop : Net.Packet_pool.handle -> float -> unit;
  mutable on_transmit_start : Net.Packet_pool.handle -> float -> unit;
  mutable busy : bool;
  departed_total : float array; (* 1-element, same unboxing trick *)
  (* Completion-event state. Only one transmission commitment can exist at
     a time ([busy] blocks re-entry until its completion runs), so the
     scheduled callback is preallocated once and reads the committed
     session/handle from these slots — no per-packet closure. *)
  mutable ev_session : int;
  mutable ev_handle : Net.Packet_pool.handle;
  mutable ev_cb : unit -> unit;
  (* Burst-drain state. While a drain activation is running ([in_batch]),
     [start_transmission] records its commitment into the [batch_*] slots
     instead of scheduling a completion event; the drain loop then decides
     whether to execute that completion inline or fall back to an event. *)
  mutable burst_max : int;
  mutable in_batch : bool;
  mutable batch_has : bool;
  mutable batch_session : int;
  mutable batch_pkt : Net.Packet_pool.handle;
  batch_due : float array; (* 1-element: written once per departed packet *)
}

let nop2 _ _ = ()

(* Sentinel for "no completion callback installed yet". A named top-level
   function, NOT [ignore]: referencing an external like [ignore] as a value
   eta-expands to a fresh closure at each use site, so [t.ev_cb == ignore]
   would never be true and the real callback would never be installed. *)
let nop_unit () = ()

let create ~sim ~rate ~policy ?on_depart ?on_drop ?(burst_max = 1) () =
  if rate <= 0.0 then invalid_arg "Server.create: rate must be positive";
  if burst_max < 1 then invalid_arg "Server.create: burst_max must be >= 1";
  let pool = Net.Packet_pool.create () in
  let t =
    {
      sim;
      rate;
      policy;
      pool;
      sessions = Vec.create ();
      on_depart = nop2;
      on_drop = nop2;
      on_transmit_start = nop2;
      busy = false;
      departed_total = [| 0.0 |];
      ev_session = -1;
      ev_handle = Net.Packet_pool.none;
      ev_cb = nop_unit;
      burst_max;
      in_batch = false;
      batch_has = false;
      batch_session = -1;
      batch_pkt = Net.Packet_pool.none;
      batch_due = [| 0.0 |];
    }
  in
  (match on_depart with
  | None -> ()
  | Some f -> t.on_depart <- (fun h now -> f (Net.Packet_pool.to_packet pool h) now));
  (match on_drop with
  | None -> ()
  | Some f -> t.on_drop <- (fun h now -> f (Net.Packet_pool.to_packet pool h) now));
  t

let pool t = t.pool

let set_burst_max t n =
  if n < 1 then invalid_arg "Server.set_burst_max: burst_max must be >= 1";
  t.burst_max <- n

let burst_max t = t.burst_max

(* Hook setters compose with (run after) whatever is installed, so tracing
   can piggyback on a server whose owner already registered callbacks.
   The boxed variants materialise the packet per hook invocation; the
   [_handle_] variants are allocation-free. *)
let compose2 f g = if f == nop2 then g else fun a b -> f a b; g a b
let add_depart_handle_hook t f = t.on_depart <- compose2 t.on_depart f
let add_drop_handle_hook t f = t.on_drop <- compose2 t.on_drop f
let add_transmit_start_handle_hook t f =
  t.on_transmit_start <- compose2 t.on_transmit_start f

let boxed t f = fun h now -> f (Net.Packet_pool.to_packet t.pool h) now
let add_depart_hook t f = add_depart_handle_hook t (boxed t f)
let add_drop_hook t f = add_drop_handle_hook t (boxed t f)
let add_transmit_start_hook t f = add_transmit_start_handle_hook t (boxed t f)

let open_session t ~rate ?queue_capacity_bits () =
  let handle = t.policy.Sched_intf.open_session ~rate in
  let slot = t.policy.Sched_intf.session_of_handle handle in
  let fifo = Net.Fifo.create ?capacity_bits:queue_capacity_bits ~pool:t.pool () in
  let fresh =
    {
      rate;
      fifo;
      handle;
      next_seq = 1;
      has_head = false;
      in_service = false;
      closing = None;
      departed_bits = [| 0.0 |];
    }
  in
  (* The policy may hand back a recycled slot; mirror its slot table. *)
  if slot = Vec.length t.sessions then ignore (Vec.push t.sessions fresh)
  else Vec.set t.sessions slot fresh;
  handle

let add_session t ~rate ?queue_capacity_bits () =
  t.policy.Sched_intf.session_of_handle (open_session t ~rate ?queue_capacity_bits ())

let drop_queue t s =
  let now = Engine.Simulator.now t.sim in
  while not (Net.Fifo.is_empty s.fifo) do
    let h = Net.Fifo.pop_exn s.fifo in
    t.on_drop h now;
    Net.Packet_pool.free t.pool h
  done

(* Close semantics (deterministic in every state):
   - idle session: the policy slot is freed immediately;
   - backlogged, [`Drain]: no new injections; the queue keeps its place in
     the schedule and the slot frees when it empties;
   - backlogged, [`Drop]: queued packets are handed to [on_drop] and the
     policy forgets the session now — except that a packet already
     committed to the link is never recalled: the close completes at its
     transmission-complete event. *)
let close_session t ~policy h =
  let slot = t.policy.Sched_intf.session_of_handle h in
  let s = Vec.get t.sessions slot in
  if s.closing <> None then invalid_arg "Server.close_session: already closing";
  let now = Engine.Simulator.now t.sim in
  if s.in_service then begin
    s.closing <- Some policy;
    match policy with
    | `Drain -> t.policy.Sched_intf.close_session ~now ~policy h
    | `Drop -> () (* deferred to [complete]: the policy still holds the head *)
  end
  else if s.has_head then begin
    s.closing <- Some policy;
    (match policy with `Drain -> () | `Drop -> drop_queue t s; s.has_head <- false);
    t.policy.Sched_intf.close_session ~now ~policy h
  end
  else begin
    s.closing <- Some policy;
    t.policy.Sched_intf.close_session ~now ~policy h
  end

let rec start_transmission t =
  if not t.busy then begin
    let now = Engine.Simulator.now t.sim in
    match t.policy.Sched_intf.select ~now with
    | None -> ()
    | Some session ->
      let s = Vec.get t.sessions session in
      if Net.Fifo.is_empty s.fifo then
        invalid_arg "Server: policy selected an empty session";
      let pkt = Net.Fifo.peek_exn s.fifo in
      Net.Fifo.drop_head s.fifo;
      s.in_service <- true;
      t.busy <- true;
      t.on_transmit_start pkt now;
      let duration = Net.Packet_pool.size_bits t.pool pkt /. t.rate in
      (* [now +. duration] is the exact float [schedule_after ~delay]
         computes — the two paths must agree bit-for-bit on fire times. *)
      let due = now +. duration in
      if t.in_batch then begin
        t.batch_has <- true;
        t.batch_session <- session;
        t.batch_pkt <- pkt;
        t.batch_due.(0) <- due
      end
      else begin
        t.ev_session <- session;
        t.ev_handle <- pkt;
        (* installed on first use: [create] runs before [drain] is in
           scope; one closure per server for the whole run *)
        if t.ev_cb == nop_unit then
          t.ev_cb <- (fun () -> drain t t.ev_session t.ev_handle);
        ignore (Engine.Simulator.schedule t.sim ~at:due t.ev_cb)
      end
  end

(* One event activation drains up to [burst_max] consecutive departures.
   Each [complete] may commit at most one follow-up transmission (recorded
   via the [batch_*] slots); the next departure runs inline only when it
   would have been the very next event anyway: within the burst cap, not
   past the horizon of the enclosing [run ~until] ([<=]: an event exactly
   at the horizon fires), and strictly before the earliest pending event
   (at equal times the pending event carries the smaller schedule seq and
   wins the FIFO tie-break, so it must fire first). *)
and drain t session pkt =
  let sim = t.sim in
  let steps = ref 1 in
  let session = ref session in
  let pkt = ref pkt in
  let continue = ref true in
  while !continue do
    t.in_batch <- true;
    t.batch_has <- false;
    complete t !session !pkt;
    t.in_batch <- false;
    if not t.batch_has then continue := false
    else begin
      let due = t.batch_due.(0) in
      if
        !steps < t.burst_max
        && due <= Engine.Simulator.run_horizon sim
        && due < Engine.Simulator.peek_time sim
      then begin
        Engine.Simulator.advance_clock sim ~to_:due;
        incr steps;
        session := t.batch_session;
        pkt := t.batch_pkt
      end
      else begin
        t.ev_session <- t.batch_session;
        t.ev_handle <- t.batch_pkt;
        ignore (Engine.Simulator.schedule sim ~at:due t.ev_cb);
        continue := false
      end
    end
  done

and complete t session pkt =
  let now = Engine.Simulator.now t.sim in
  let s = Vec.get t.sessions session in
  let size_bits = Net.Packet_pool.size_bits t.pool pkt in
  s.in_service <- false;
  s.departed_bits.(0) <- s.departed_bits.(0) +. size_bits;
  t.departed_total.(0) <- t.departed_total.(0) +. size_bits;
  t.busy <- false;
  (match s.closing with
  | Some `Drop ->
    (* close was deferred while this packet held the link: discard the
       rest of the queue and finish the close now *)
    drop_queue t s;
    s.has_head <- false;
    t.policy.Sched_intf.set_idle ~now ~session;
    t.policy.Sched_intf.close_session ~now ~policy:`Drop s.handle
  | Some `Drain | None ->
    if Net.Fifo.is_empty s.fifo then begin
      s.has_head <- false;
      t.policy.Sched_intf.set_idle ~now ~session
    end
    else
      t.policy.Sched_intf.requeue ~now ~session
        ~head_bits:(Net.Packet_pool.size_bits t.pool (Net.Fifo.peek_exn s.fifo)));
  t.on_depart pkt now;
  Net.Packet_pool.free t.pool pkt;
  start_transmission t

let inject t ~session ~size_bits =
  let now = Engine.Simulator.now t.sim in
  let s = Vec.get t.sessions session in
  if s.closing <> None then invalid_arg "Server.inject: session is closed";
  let pkt =
    Net.Packet_pool.alloc t.pool ~flow:session ~seq:s.next_seq ~size_bits
      ~arrival:now
  in
  s.next_seq <- s.next_seq + 1;
  if not (Net.Fifo.push s.fifo pkt) then begin
    t.on_drop pkt now;
    Net.Packet_pool.free t.pool pkt;
    pkt
  end
  else begin
    t.policy.Sched_intf.arrive ~now ~session ~size_bits;
    if not s.has_head then begin
      s.has_head <- true;
      t.policy.Sched_intf.backlog ~now ~session ~head_bits:size_bits
    end;
    start_transmission t;
    pkt
  end

let inject_handle t ~handle ~size_bits =
  inject t ~session:(t.policy.Sched_intf.session_of_handle handle) ~size_bits

(* Batched arrival: [count] same-size packets stamped with a single [now]
   read (the clock cannot move during injection, so the stamps are
   bit-identical to [count] separate injects), and the transmission chain
   kicked once at the end instead of per packet. *)
let inject_batch t ~session ~size_bits ~count =
  if count < 0 then invalid_arg "Server.inject_batch: negative count";
  let now = Engine.Simulator.now t.sim in
  let s = Vec.get t.sessions session in
  if s.closing <> None then invalid_arg "Server.inject_batch: session is closed";
  for _ = 1 to count do
    let pkt =
      Net.Packet_pool.alloc t.pool ~flow:session ~seq:s.next_seq ~size_bits
        ~arrival:now
    in
    s.next_seq <- s.next_seq + 1;
    if not (Net.Fifo.push s.fifo pkt) then begin
      t.on_drop pkt now;
      Net.Packet_pool.free t.pool pkt
    end
    else begin
      t.policy.Sched_intf.arrive ~now ~session ~size_bits;
      if not s.has_head then begin
        s.has_head <- true;
        t.policy.Sched_intf.backlog ~now ~session ~head_bits:size_bits
      end
    end
  done;
  if count > 0 then start_transmission t

let queue_bits t ~session = Net.Fifo.bits (Vec.get t.sessions session).fifo
let session_count t = Vec.length t.sessions
let live_sessions t = t.policy.Sched_intf.live_sessions ()
let busy t = t.busy
let policy t = t.policy
let departed_bits t ~session = (Vec.get t.sessions session).departed_bits.(0)
let departed_bits_total t = t.departed_total.(0)
