open Sched

type session = {
  rate : float;
  fifo : Net.Fifo.t;
  handle : Session_handle.t; (* the policy's handle for this incarnation *)
  mutable next_seq : int;
  mutable has_head : bool;   (* a packet of ours is registered with the policy *)
  mutable in_service : bool; (* our head is currently on the link *)
  mutable closing : Sched_intf.close_policy option; (* Some = close requested *)
  departed_bits : float array; (* 1-element: a mutable float field in this
                                  mixed record would box on every store *)
}

type t = {
  sim : Engine.Simulator.t;
  rate : float;
  policy : Sched_intf.t;
  sessions : session Vec.t;
  mutable on_depart : Net.Packet.t -> float -> unit;
  mutable on_drop : Net.Packet.t -> float -> unit;
  mutable on_transmit_start : Net.Packet.t -> float -> unit;
  mutable busy : bool;
  departed_total : float array; (* 1-element, same unboxing trick *)
  (* Burst-drain state. While a drain activation is running ([in_batch]),
     [start_transmission] records its commitment into the [batch_*] slots
     instead of scheduling a completion event; the drain loop then decides
     whether to execute that completion inline or fall back to an event.
     Only one commitment can exist per completion ([busy] blocks
     re-entry), so a single slot suffices. *)
  mutable burst_max : int;
  mutable in_batch : bool;
  mutable batch_has : bool;
  mutable batch_session : int;
  mutable batch_pkt : Net.Packet.t;
  batch_due : float array; (* 1-element: written once per departed packet *)
}

let nop2 _ _ = ()

let create ~sim ~rate ~policy ?on_depart ?on_drop ?(burst_max = 1) () =
  let on_depart = Option.value on_depart ~default:nop2 in
  let on_drop = Option.value on_drop ~default:nop2 in
  if rate <= 0.0 then invalid_arg "Server.create: rate must be positive";
  if burst_max < 1 then invalid_arg "Server.create: burst_max must be >= 1";
  {
    sim;
    rate;
    policy;
    sessions = Vec.create ();
    on_depart;
    on_drop;
    on_transmit_start = nop2;
    busy = false;
    departed_total = [| 0.0 |];
    burst_max;
    in_batch = false;
    batch_has = false;
    batch_session = -1;
    (* placeholder until the first batched commitment overwrites it *)
    batch_pkt = Net.Packet.make ~flow:0 ~seq:0 ~size_bits:1.0 ~arrival:0.0 ();
    batch_due = [| 0.0 |];
  }

let set_burst_max t n =
  if n < 1 then invalid_arg "Server.set_burst_max: burst_max must be >= 1";
  t.burst_max <- n

let burst_max t = t.burst_max

(* Hook setters compose with (run after) whatever is installed, so tracing
   can piggyback on a server whose owner already registered callbacks. *)
let compose2 f g = if f == nop2 then g else fun a b -> f a b; g a b
let add_depart_hook t f = t.on_depart <- compose2 t.on_depart f
let add_drop_hook t f = t.on_drop <- compose2 t.on_drop f
let add_transmit_start_hook t f = t.on_transmit_start <- compose2 t.on_transmit_start f

let open_session t ~rate ?queue_capacity_bits () =
  let handle = t.policy.Sched_intf.open_session ~rate in
  let slot = t.policy.Sched_intf.session_of_handle handle in
  let fifo = Net.Fifo.create ?capacity_bits:queue_capacity_bits () in
  let fresh =
    {
      rate;
      fifo;
      handle;
      next_seq = 1;
      has_head = false;
      in_service = false;
      closing = None;
      departed_bits = [| 0.0 |];
    }
  in
  (* The policy may hand back a recycled slot; mirror its slot table. *)
  if slot = Vec.length t.sessions then ignore (Vec.push t.sessions fresh)
  else Vec.set t.sessions slot fresh;
  handle

let add_session t ~rate ?queue_capacity_bits () =
  t.policy.Sched_intf.session_of_handle (open_session t ~rate ?queue_capacity_bits ())

let drop_queue t s =
  let now = Engine.Simulator.now t.sim in
  while not (Net.Fifo.is_empty s.fifo) do
    let pkt = Net.Fifo.peek_exn s.fifo in
    Net.Fifo.drop_head s.fifo;
    t.on_drop pkt now
  done

(* Close semantics (deterministic in every state):
   - idle session: the policy slot is freed immediately;
   - backlogged, [`Drain]: no new injections; the queue keeps its place in
     the schedule and the slot frees when it empties;
   - backlogged, [`Drop]: queued packets are handed to [on_drop] and the
     policy forgets the session now — except that a packet already
     committed to the link is never recalled: the close completes at its
     transmission-complete event. *)
let close_session t ~policy h =
  let slot = t.policy.Sched_intf.session_of_handle h in
  let s = Vec.get t.sessions slot in
  if s.closing <> None then invalid_arg "Server.close_session: already closing";
  let now = Engine.Simulator.now t.sim in
  if s.in_service then begin
    s.closing <- Some policy;
    match policy with
    | `Drain -> t.policy.Sched_intf.close_session ~now ~policy h
    | `Drop -> () (* deferred to [complete]: the policy still holds the head *)
  end
  else if s.has_head then begin
    s.closing <- Some policy;
    (match policy with `Drain -> () | `Drop -> drop_queue t s; s.has_head <- false);
    t.policy.Sched_intf.close_session ~now ~policy h
  end
  else begin
    s.closing <- Some policy;
    t.policy.Sched_intf.close_session ~now ~policy h
  end

let rec start_transmission t =
  if not t.busy then begin
    let now = Engine.Simulator.now t.sim in
    match t.policy.Sched_intf.select ~now with
    | None -> ()
    | Some session ->
      let s = Vec.get t.sessions session in
      if Net.Fifo.is_empty s.fifo then
        invalid_arg "Server: policy selected an empty session";
      let pkt = Net.Fifo.peek_exn s.fifo in
      Net.Fifo.drop_head s.fifo;
      s.in_service <- true;
      t.busy <- true;
      t.on_transmit_start pkt now;
      let duration = pkt.Net.Packet.size_bits /. t.rate in
      (* [now +. duration] is the exact float [schedule_after ~delay]
         computes — the two paths must agree bit-for-bit on fire times. *)
      let due = now +. duration in
      if t.in_batch then begin
        t.batch_has <- true;
        t.batch_session <- session;
        t.batch_pkt <- pkt;
        t.batch_due.(0) <- due
      end
      else
        ignore
          (Engine.Simulator.schedule t.sim ~at:due (fun () ->
               drain t session pkt))
  end

(* One event activation drains up to [burst_max] consecutive departures.
   Each [complete] may commit at most one follow-up transmission (recorded
   via the [batch_*] slots); the next departure runs inline only when it
   would have been the very next event anyway: within the burst cap, not
   past the horizon of the enclosing [run ~until] ([<=]: an event exactly
   at the horizon fires), and strictly before the earliest pending event
   (at equal times the pending event carries the smaller schedule seq and
   wins the FIFO tie-break, so it must fire first). *)
and drain t session pkt =
  let sim = t.sim in
  let steps = ref 1 in
  let session = ref session in
  let pkt = ref pkt in
  let continue = ref true in
  while !continue do
    t.in_batch <- true;
    t.batch_has <- false;
    complete t !session !pkt;
    t.in_batch <- false;
    if not t.batch_has then continue := false
    else begin
      let due = t.batch_due.(0) in
      if
        !steps < t.burst_max
        && due <= Engine.Simulator.run_horizon sim
        && due < Engine.Simulator.peek_time sim
      then begin
        Engine.Simulator.advance_clock sim ~to_:due;
        incr steps;
        session := t.batch_session;
        pkt := t.batch_pkt
      end
      else begin
        let ns = t.batch_session and np = t.batch_pkt in
        ignore (Engine.Simulator.schedule sim ~at:due (fun () -> drain t ns np));
        continue := false
      end
    end
  done

and complete t session pkt =
  let now = Engine.Simulator.now t.sim in
  let s = Vec.get t.sessions session in
  s.in_service <- false;
  s.departed_bits.(0) <- s.departed_bits.(0) +. pkt.Net.Packet.size_bits;
  t.departed_total.(0) <- t.departed_total.(0) +. pkt.Net.Packet.size_bits;
  t.busy <- false;
  (match s.closing with
  | Some `Drop ->
    (* close was deferred while this packet held the link: discard the
       rest of the queue and finish the close now *)
    drop_queue t s;
    s.has_head <- false;
    t.policy.Sched_intf.set_idle ~now ~session;
    t.policy.Sched_intf.close_session ~now ~policy:`Drop s.handle
  | Some `Drain | None ->
    if Net.Fifo.is_empty s.fifo then begin
      s.has_head <- false;
      t.policy.Sched_intf.set_idle ~now ~session
    end
    else
      t.policy.Sched_intf.requeue ~now ~session
        ~head_bits:(Net.Fifo.peek_exn s.fifo).Net.Packet.size_bits);
  t.on_depart pkt now;
  start_transmission t

let inject t ~session ~size_bits =
  let now = Engine.Simulator.now t.sim in
  let s = Vec.get t.sessions session in
  if s.closing <> None then invalid_arg "Server.inject: session is closed";
  let pkt =
    Net.Packet.make ~flow:session ~seq:s.next_seq ~size_bits ~arrival:now ()
  in
  s.next_seq <- s.next_seq + 1;
  if not (Net.Fifo.push s.fifo pkt) then begin
    t.on_drop pkt now;
    pkt
  end
  else begin
    t.policy.Sched_intf.arrive ~now ~session ~size_bits;
    if not s.has_head then begin
      s.has_head <- true;
      t.policy.Sched_intf.backlog ~now ~session ~head_bits:size_bits
    end;
    start_transmission t;
    pkt
  end

let inject_handle t ~handle ~size_bits =
  inject t ~session:(t.policy.Sched_intf.session_of_handle handle) ~size_bits

(* Batched arrival: [count] same-size packets stamped with a single [now]
   read (the clock cannot move during injection, so the stamps are
   bit-identical to [count] separate injects), and the transmission chain
   kicked once at the end instead of per packet. *)
let inject_batch t ~session ~size_bits ~count =
  if count < 0 then invalid_arg "Server.inject_batch: negative count";
  let now = Engine.Simulator.now t.sim in
  let s = Vec.get t.sessions session in
  if s.closing <> None then invalid_arg "Server.inject_batch: session is closed";
  for _ = 1 to count do
    let pkt =
      Net.Packet.make ~flow:session ~seq:s.next_seq ~size_bits ~arrival:now ()
    in
    s.next_seq <- s.next_seq + 1;
    if not (Net.Fifo.push s.fifo pkt) then t.on_drop pkt now
    else begin
      t.policy.Sched_intf.arrive ~now ~session ~size_bits;
      if not s.has_head then begin
        s.has_head <- true;
        t.policy.Sched_intf.backlog ~now ~session ~head_bits:size_bits
      end
    end
  done;
  if count > 0 then start_transmission t

let queue_bits t ~session = Net.Fifo.bits (Vec.get t.sessions session).fifo
let session_count t = Vec.length t.sessions
let live_sessions t = t.policy.Sched_intf.live_sessions ()
let busy t = t.busy
let policy t = t.policy
let departed_bits t ~session = (Vec.get t.sessions session).departed_bits.(0)
let departed_bits_total t = t.departed_total.(0)
