type token =
  | Name of string
  | Rate of float
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi

exception Syntax_error of string

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '/' || c = '-'

let is_digit c = (c >= '0' && c <= '9') || c = '.'

(* A bare word is a rate iff it parses as FLOAT with an optional K/M/G
   suffix; otherwise it is a name. "9M" is a rate; "N-1" and "RT-1" are
   names (the '-' cannot appear in a rate). *)
let classify word =
  let n = String.length word in
  let body, multiplier =
    match word.[n - 1] with
    | 'K' | 'k' -> (String.sub word 0 (n - 1), 1.0e3)
    | 'M' | 'm' -> (String.sub word 0 (n - 1), 1.0e6)
    | 'G' | 'g' -> (String.sub word 0 (n - 1), 1.0e9)
    | _ -> (word, 1.0)
  in
  if body <> "" && String.for_all is_digit body then
    match float_of_string_opt body with
    | Some f -> Rate (f *. multiplier)
    | None -> Name word
  else Name word

let tokenize input =
  let tokens = ref [] in
  let i = ref 0 in
  let n = String.length input in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '{' then (tokens := Lbrace :: !tokens; incr i)
    else if c = '}' then (tokens := Rbrace :: !tokens; incr i)
    else if c = '[' then (tokens := Lbracket :: !tokens; incr i)
    else if c = ']' then (tokens := Rbracket :: !tokens; incr i)
    else if c = ';' then (tokens := Semi :: !tokens; incr i)
    else if c = '#' then
      (* comment to end of line *)
      while !i < n && input.[!i] <> '\n' do incr i done
    else if is_name_char c then begin
      let start = !i in
      while !i < n && is_name_char input.[!i] do incr i done;
      tokens := classify (String.sub input start (!i - start)) :: !tokens
    end
    else
      raise (Syntax_error (Printf.sprintf "unexpected character %C at offset %d" c !i))
  done;
  List.rev !tokens

let describe = function
  | Name s -> Printf.sprintf "name %S" s
  | Rate r -> Printf.sprintf "rate %g" r
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semi -> "';'"

(* recursive descent over the token list *)
let rec parse_node tokens =
  match tokens with
  | Name name :: Rate rate :: rest ->
    let capacity, rest =
      match rest with
      | Lbracket :: Rate cap :: Rbracket :: rest -> (Some cap, rest)
      | Lbracket :: t :: _ ->
        raise (Syntax_error ("expected a rate inside [...], got " ^ describe t))
      | rest -> (None, rest)
    in
    (match rest with
    | Lbrace :: rest ->
      if capacity <> None then
        raise (Syntax_error ("interior node " ^ name ^ " cannot carry a queue capacity"));
      let children, rest = parse_children rest [] in
      (Class_tree.node name ~rate children, rest)
    | rest -> (Class_tree.leaf name ~rate ?queue_capacity_bits:capacity, rest))
  | Name name :: t :: _ ->
    raise (Syntax_error ("expected a rate after " ^ name ^ ", got " ^ describe t))
  | t :: _ -> raise (Syntax_error ("expected a node name, got " ^ describe t))
  | [] -> raise (Syntax_error "unexpected end of input")

and parse_children tokens acc =
  let child, rest = parse_node tokens in
  match rest with
  | Semi :: rest -> parse_children rest (child :: acc)
  | Rbrace :: rest -> (List.rev (child :: acc), rest)
  | t :: _ -> raise (Syntax_error ("expected ';' or '}', got " ^ describe t))
  | [] -> raise (Syntax_error "unterminated '{'")

let parse input =
  match
    let tokens = tokenize input in
    let tree, rest = parse_node tokens in
    match rest with
    | [] -> tree
    | t :: _ -> raise (Syntax_error ("trailing input: " ^ describe t))
  with
  | tree -> (
    match Class_tree.validate tree with
    | Ok () -> Ok tree
    | Error errors -> Error ("invalid tree: " ^ String.concat "; " errors))
  | exception Syntax_error msg -> Error msg

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let rate_to_string r =
  if r >= 1.0e9 && Float.rem r 1.0e6 = 0.0 then Printf.sprintf "%gG" (r /. 1.0e9)
  else if r >= 1.0e6 then Printf.sprintf "%gM" (r /. 1.0e6)
  else if r >= 1.0e3 then Printf.sprintf "%gK" (r /. 1.0e3)
  else Printf.sprintf "%g" r

let to_string tree =
  let buffer = Buffer.create 256 in
  let rec render indent node =
    Buffer.add_string buffer indent;
    Buffer.add_string buffer (Class_tree.name node);
    Buffer.add_char buffer ' ';
    Buffer.add_string buffer (rate_to_string (Class_tree.rate node));
    (match node with
    | Class_tree.Leaf { queue_capacity_bits = Some cap; _ } ->
      Buffer.add_string buffer (Printf.sprintf " [%s]" (rate_to_string cap))
    | Class_tree.Leaf _ -> ()
    | Class_tree.Node { children; _ } ->
      Buffer.add_string buffer " {\n";
      List.iteri
        (fun i child ->
          if i > 0 then Buffer.add_string buffer ";\n";
          render (indent ^ "  ") child)
        children;
      Buffer.add_char buffer '\n';
      Buffer.add_string buffer indent;
      Buffer.add_char buffer '}')
  in
  render "" tree;
  Buffer.contents buffer
