(* The subtree-sharded engine lives in [Shard.Subtree], a library layered
   above this one, so it is reached through a record of closures installed
   by an explicit [Shard.Subtree.register ()] call (registration by
   module-initialisation side effect would be fragile under native linking,
   which can drop unreferenced modules). *)
type subtree_ops = {
  st_kind_name : string;
  st_set_burst_max : int -> unit;
  st_burst_max : unit -> int;
  st_leaf_id : string -> Hier.leaf;
  st_leaf_name : Hier.leaf -> string;
  st_leaf_ids : unit -> (string * Hier.leaf) list;
  st_inject : mark:int -> leaf:Hier.leaf -> size_bits:float -> Net.Packet_pool.handle;
  st_inject_many : mark:int -> leaf:Hier.leaf -> size_bits:float -> count:int -> unit;
  st_close_leaf : leaf:Hier.leaf -> policy:Sched.Sched_intf.close_policy -> unit;
  st_reopen_leaf : rate:float option -> leaf:Hier.leaf -> unit;
  st_leaf_state : leaf:Hier.leaf -> [ `Open | `Closing | `Closed ];
  st_queue_bits : leaf:Hier.leaf -> float;
  st_departed_bits : node:string -> float;
  st_ref_time : node:string -> float;
  st_node_virtual_time : node:string -> float;
  st_link_busy : unit -> bool;
  st_drops : unit -> int;
  st_add_depart_hook : (Net.Packet.t -> leaf:string -> float -> unit) -> unit;
  st_add_drop_hook : (Net.Packet.t -> leaf:string -> float -> unit) -> unit;
  st_add_transmit_start_hook : (Net.Packet.t -> leaf:string -> float -> unit) -> unit;
  st_add_depart_handle_hook :
    (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit;
  st_add_drop_handle_hook :
    (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit;
  st_add_transmit_start_handle_hook :
    (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit;
  st_pool : unit -> Net.Packet_pool.t;
  st_root_name : unit -> string;
  st_node_name : int -> string;
  st_node_count : unit -> int;
  st_leaf_path : leaf:Hier.leaf -> int array;
}

type t =
  | Generic of Hier.t
  | Flat of Hier_flat.t
  | Subtree_sharded of subtree_ops

type choice = [ `Generic | `Flat | `Auto | `Subtree ]

type subtree_builder =
  sim:Engine.Simulator.t ->
  spec:Class_tree.t ->
  root_clock:[ `Real_time | `Reference_time ] ->
  on_depart:(Net.Packet.t -> leaf:string -> float -> unit) option ->
  on_drop:(Net.Packet.t -> leaf:string -> float -> unit) option ->
  burst_max:int ->
  shards:int option ->
  workers:int option ->
  epoch:int ->
  mailbox_capacity:int option ->
  subtree_ops

let subtree_builder : subtree_builder option ref = ref None
let set_subtree_builder b = subtree_builder := Some b

(* process-wide fallback for the [`Subtree] knobs, same situation as the
   simulator's default event-set backend: the experiment drivers build
   their engines internally, so a CLI like [--epoch 8] cannot thread the
   value through every signature — it sets the default instead. *)
type subtree_config = {
  sc_shards : int option;
  sc_workers : int option;
  sc_epoch : int;
  sc_mailbox_capacity : int option;
}

let subtree_config =
  ref { sc_shards = None; sc_workers = None; sc_epoch = 1; sc_mailbox_capacity = None }

let set_default_subtree_config ?shards ?workers ?(epoch = 1) ?mailbox_capacity () =
  if epoch < 1 then
    invalid_arg "Hier_engine.set_default_subtree_config: epoch must be >= 1";
  subtree_config :=
    {
      sc_shards = shards;
      sc_workers = workers;
      sc_epoch = epoch;
      sc_mailbox_capacity = mailbox_capacity;
    }

let choice_of_string = function
  | "generic" -> Ok `Generic
  | "flat" -> Ok `Flat
  | "auto" -> Ok `Auto
  | "subtree" -> Ok `Subtree
  | s ->
    Error
      (Printf.sprintf "unknown hier engine %S (expected generic|flat|auto|subtree)" s)

let choice_to_string = function
  | `Generic -> "generic"
  | `Flat -> "flat"
  | `Auto -> "auto"
  | `Subtree -> "subtree"

let create ~sim ~spec ~factory ?(engine = `Auto) ?(root_clock = `Real_time)
    ?on_depart ?on_drop ?(burst_max = 1) ?shards ?workers ?epoch
    ?mailbox_capacity () =
  let flat_ok = factory.Sched.Sched_intf.kind = Wf2q_plus.factory.Sched.Sched_intf.kind in
  let engine =
    match engine with
    | `Generic -> `Generic
    | `Flat ->
      if not flat_ok then
        invalid_arg
          (Printf.sprintf
             "Hier_engine.create: flat engine only implements WF2Q+, not %s"
             factory.Sched.Sched_intf.kind);
      `Flat
    | `Subtree ->
      if not flat_ok then
        invalid_arg
          (Printf.sprintf
             "Hier_engine.create: subtree engine only implements WF2Q+, not %s"
             factory.Sched.Sched_intf.kind);
      `Subtree
    | `Auto -> if flat_ok then `Flat else `Generic
  in
  match engine with
  | `Flat ->
    Flat
      (Hier_flat.create ~sim ~spec ~root_clock ?on_depart ?on_drop ~burst_max ())
  | `Subtree -> (
    match !subtree_builder with
    | None ->
      invalid_arg
        "Hier_engine.create: subtree engine not registered (call \
         Shard.Subtree.register () first)"
    | Some build ->
      let c = !subtree_config in
      let shards = match shards with Some _ -> shards | None -> c.sc_shards in
      let workers = match workers with Some _ -> workers | None -> c.sc_workers in
      let epoch = match epoch with Some e -> e | None -> c.sc_epoch in
      let mailbox_capacity =
        match mailbox_capacity with
        | Some _ -> mailbox_capacity
        | None -> c.sc_mailbox_capacity
      in
      Subtree_sharded
        (build ~sim ~spec ~root_clock ~on_depart ~on_drop ~burst_max ~shards
           ~workers ~epoch ~mailbox_capacity))
  | `Generic ->
    Generic
      (Hier.create ~sim ~spec ~make_policy:(Hier.uniform factory) ~root_clock
         ?on_depart ?on_drop ~burst_max ())

let kind = function
  | Generic _ -> `Generic
  | Flat _ -> `Flat
  | Subtree_sharded _ -> `Subtree

let kind_name t =
  match t with
  | Generic _ -> "generic"
  | Flat _ -> "flat"
  | Subtree_sharded ops -> ops.st_kind_name

let generic = function Generic h -> Some h | _ -> None
let flat = function Flat h -> Some h | _ -> None

let leaf_id = function
  | Generic h -> Hier.leaf_id h
  | Flat h -> Hier_flat.leaf_id h
  | Subtree_sharded ops -> ops.st_leaf_id

let leaf_name = function
  | Generic h -> Hier.leaf_name h
  | Flat h -> Hier_flat.leaf_name h
  | Subtree_sharded ops -> ops.st_leaf_name

let leaf_ids = function
  | Generic h -> Hier.leaf_ids h
  | Flat h -> Hier_flat.leaf_ids h
  | Subtree_sharded ops -> ops.st_leaf_ids ()

let inject ?(mark = 0) t ~leaf ~size_bits =
  match t with
  | Generic h -> Hier.inject ~mark h ~leaf ~size_bits
  | Flat h -> Hier_flat.inject ~mark h ~leaf ~size_bits
  | Subtree_sharded ops -> ops.st_inject ~mark ~leaf ~size_bits

let inject_many ?(mark = 0) t ~leaf ~size_bits ~count =
  match t with
  | Flat h -> Hier_flat.inject_many ~mark h ~leaf ~size_bits ~count
  | Generic h -> Hier.inject_many ~mark h ~leaf ~size_bits ~count
  | Subtree_sharded ops -> ops.st_inject_many ~mark ~leaf ~size_bits ~count

let set_burst_max t n =
  match t with
  | Generic h -> Hier.set_burst_max h n
  | Flat h -> Hier_flat.set_burst_max h n
  | Subtree_sharded ops -> ops.st_set_burst_max n

let burst_max = function
  | Generic h -> Hier.burst_max h
  | Flat h -> Hier_flat.burst_max h
  | Subtree_sharded ops -> ops.st_burst_max ()

let queue_bits t ~leaf =
  match t with
  | Generic h -> Hier.queue_bits h ~leaf
  | Flat h -> Hier_flat.queue_bits h ~leaf
  | Subtree_sharded ops -> ops.st_queue_bits ~leaf

let departed_bits t ~node =
  match t with
  | Generic h -> Hier.departed_bits h ~node
  | Flat h -> Hier_flat.departed_bits h ~node
  | Subtree_sharded ops -> ops.st_departed_bits ~node

let ref_time t ~node =
  match t with
  | Generic h -> Hier.ref_time h ~node
  | Flat h -> Hier_flat.ref_time h ~node
  | Subtree_sharded ops -> ops.st_ref_time ~node

let node_virtual_time t ~node =
  match t with
  | Generic h -> Hier.node_virtual_time h ~node
  | Flat h -> Hier_flat.node_virtual_time h ~node
  | Subtree_sharded ops -> ops.st_node_virtual_time ~node

let link_busy = function
  | Generic h -> Hier.link_busy h
  | Flat h -> Hier_flat.link_busy h
  | Subtree_sharded ops -> ops.st_link_busy ()

let drops = function
  | Generic h -> Hier.drops h
  | Flat h -> Hier_flat.drops h
  | Subtree_sharded ops -> ops.st_drops ()

let add_depart_hook t f =
  match t with
  | Generic h -> Hier.add_depart_hook h f
  | Flat h -> Hier_flat.add_depart_hook h f
  | Subtree_sharded ops -> ops.st_add_depart_hook f

let add_drop_hook t f =
  match t with
  | Generic h -> Hier.add_drop_hook h f
  | Flat h -> Hier_flat.add_drop_hook h f
  | Subtree_sharded ops -> ops.st_add_drop_hook f

let add_transmit_start_hook t f =
  match t with
  | Generic h -> Hier.add_transmit_start_hook h f
  | Flat h -> Hier_flat.add_transmit_start_hook h f
  | Subtree_sharded ops -> ops.st_add_transmit_start_hook f

let add_depart_handle_hook t f =
  match t with
  | Generic h -> Hier.add_depart_handle_hook h f
  | Flat h -> Hier_flat.add_depart_handle_hook h f
  | Subtree_sharded ops -> ops.st_add_depart_handle_hook f

let add_drop_handle_hook t f =
  match t with
  | Generic h -> Hier.add_drop_handle_hook h f
  | Flat h -> Hier_flat.add_drop_handle_hook h f
  | Subtree_sharded ops -> ops.st_add_drop_handle_hook f

let add_transmit_start_handle_hook t f =
  match t with
  | Generic h -> Hier.add_transmit_start_handle_hook h f
  | Flat h -> Hier_flat.add_transmit_start_handle_hook h f
  | Subtree_sharded ops -> ops.st_add_transmit_start_handle_hook f

let pool = function
  | Generic h -> Hier.pool h
  | Flat h -> Hier_flat.pool h
  | Subtree_sharded ops -> ops.st_pool ()

let root_name = function
  | Generic h -> Hier.root_name h
  | Flat h -> Hier_flat.root_name h
  | Subtree_sharded ops -> ops.st_root_name ()

let node_name = function
  | Generic h -> Hier.node_name h
  | Flat h -> Hier_flat.node_name h
  | Subtree_sharded ops -> ops.st_node_name

let node_count = function
  | Generic h -> Hier.node_count h
  | Flat h -> Hier_flat.node_count h
  | Subtree_sharded ops -> ops.st_node_count ()

let leaf_path t ~leaf =
  match t with
  | Generic h -> Hier.leaf_path h ~leaf
  | Flat h -> Hier_flat.leaf_path h ~leaf
  | Subtree_sharded ops -> ops.st_leaf_path ~leaf

let close_leaf t ~leaf ~policy =
  match t with
  | Generic h -> Hier.close_leaf h ~leaf ~policy
  | Flat h -> Hier_flat.close_leaf h ~leaf ~policy
  | Subtree_sharded ops -> ops.st_close_leaf ~leaf ~policy

let reopen_leaf ?rate t ~leaf =
  match t with
  | Generic h -> Hier.reopen_leaf ?rate h ~leaf
  | Flat h -> Hier_flat.reopen_leaf ?rate h ~leaf
  | Subtree_sharded ops -> ops.st_reopen_leaf ~rate ~leaf

let leaf_state t ~leaf =
  match t with
  | Generic h -> Hier.leaf_state h ~leaf
  | Flat h -> Hier_flat.leaf_state h ~leaf
  | Subtree_sharded ops -> ops.st_leaf_state ~leaf
