type t =
  | Generic of Hier.t
  | Flat of Hier_flat.t

type choice = [ `Generic | `Flat | `Auto ]

let choice_of_string = function
  | "generic" -> Ok `Generic
  | "flat" -> Ok `Flat
  | "auto" -> Ok `Auto
  | s -> Error (Printf.sprintf "unknown hier engine %S (expected generic|flat|auto)" s)

let choice_to_string = function
  | `Generic -> "generic"
  | `Flat -> "flat"
  | `Auto -> "auto"

let create ~sim ~spec ~factory ?(engine = `Auto) ?root_clock ?on_depart ?on_drop
    ?burst_max () =
  let flat_ok = factory.Sched.Sched_intf.kind = Wf2q_plus.factory.Sched.Sched_intf.kind in
  let engine =
    match engine with
    | `Generic -> `Generic
    | `Flat ->
      if not flat_ok then
        invalid_arg
          (Printf.sprintf
             "Hier_engine.create: flat engine only implements WF2Q+, not %s"
             factory.Sched.Sched_intf.kind);
      `Flat
    | `Auto -> if flat_ok then `Flat else `Generic
  in
  match engine with
  | `Flat ->
    Flat (Hier_flat.create ~sim ~spec ?root_clock ?on_depart ?on_drop ?burst_max ())
  | `Generic ->
    Generic
      (Hier.create ~sim ~spec ~make_policy:(Hier.uniform factory) ?root_clock ?on_depart
         ?on_drop ?burst_max ())

let kind = function Generic _ -> `Generic | Flat _ -> `Flat
let kind_name t = match t with Generic _ -> "generic" | Flat _ -> "flat"
let generic = function Generic h -> Some h | Flat _ -> None
let flat = function Flat h -> Some h | Generic _ -> None

let leaf_id = function Generic h -> Hier.leaf_id h | Flat h -> Hier_flat.leaf_id h
let leaf_name = function Generic h -> Hier.leaf_name h | Flat h -> Hier_flat.leaf_name h
let leaf_ids = function Generic h -> Hier.leaf_ids h | Flat h -> Hier_flat.leaf_ids h

let inject ?mark t ~leaf ~size_bits =
  match t with
  | Generic h -> Hier.inject ?mark h ~leaf ~size_bits
  | Flat h -> Hier_flat.inject ?mark h ~leaf ~size_bits

let inject_many ?mark t ~leaf ~size_bits ~count =
  match t with
  | Flat h -> Hier_flat.inject_many ?mark h ~leaf ~size_bits ~count
  | Generic h -> Hier.inject_many ?mark h ~leaf ~size_bits ~count

let set_burst_max t n =
  match t with
  | Generic h -> Hier.set_burst_max h n
  | Flat h -> Hier_flat.set_burst_max h n

let burst_max = function
  | Generic h -> Hier.burst_max h
  | Flat h -> Hier_flat.burst_max h

let queue_bits t ~leaf =
  match t with
  | Generic h -> Hier.queue_bits h ~leaf
  | Flat h -> Hier_flat.queue_bits h ~leaf

let departed_bits t ~node =
  match t with
  | Generic h -> Hier.departed_bits h ~node
  | Flat h -> Hier_flat.departed_bits h ~node

let ref_time t ~node =
  match t with
  | Generic h -> Hier.ref_time h ~node
  | Flat h -> Hier_flat.ref_time h ~node

let node_virtual_time t ~node =
  match t with
  | Generic h -> Hier.node_virtual_time h ~node
  | Flat h -> Hier_flat.node_virtual_time h ~node

let link_busy = function Generic h -> Hier.link_busy h | Flat h -> Hier_flat.link_busy h
let drops = function Generic h -> Hier.drops h | Flat h -> Hier_flat.drops h

let add_depart_hook t f =
  match t with
  | Generic h -> Hier.add_depart_hook h f
  | Flat h -> Hier_flat.add_depart_hook h f

let add_drop_hook t f =
  match t with
  | Generic h -> Hier.add_drop_hook h f
  | Flat h -> Hier_flat.add_drop_hook h f

let add_transmit_start_hook t f =
  match t with
  | Generic h -> Hier.add_transmit_start_hook h f
  | Flat h -> Hier_flat.add_transmit_start_hook h f

let root_name = function Generic h -> Hier.root_name h | Flat h -> Hier_flat.root_name h
let node_name = function Generic h -> Hier.node_name h | Flat h -> Hier_flat.node_name h

let node_count = function
  | Generic h -> Hier.node_count h
  | Flat h -> Hier_flat.node_count h

let leaf_path t ~leaf =
  match t with
  | Generic h -> Hier.leaf_path h ~leaf
  | Flat h -> Hier_flat.leaf_path h ~leaf

let close_leaf t ~leaf ~policy =
  match t with
  | Generic h -> Hier.close_leaf h ~leaf ~policy
  | Flat h -> Hier_flat.close_leaf h ~leaf ~policy

let reopen_leaf ?rate t ~leaf =
  match t with
  | Generic h -> Hier.reopen_leaf ?rate h ~leaf
  | Flat h -> Hier_flat.reopen_leaf ?rate h ~leaf

let leaf_state t ~leaf =
  match t with
  | Generic h -> Hier.leaf_state h ~leaf
  | Flat h -> Hier_flat.leaf_state h ~leaf
