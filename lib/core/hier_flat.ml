open Sched
module Ih = Prioq.Indexed_heap4

let log_src = Logs.Src.create "hpfq.hier_flat" ~doc:"Flattened H-WF2Q+ server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* The monomorphic H-WF2Q+ fast path. Same algorithm as [Hier] instantiated
   with [Wf2q_plus] at every interior node — ARRIVE / RESTART-NODE /
   RESET-PATH over eq. 27/28/29 — but with the generic composition overhead
   flattened away:

   - every per-node field ([tn], [departed_bits], [busy], [active_child],
     the logical-head index, parent, rate) is a plain array indexed by node
     id, so nothing is boxed and the leaf-to-root walks touch contiguous
     memory instead of chasing record pointers;
   - the per-(node,session) WF2Q+ state (S_i, F_i, head bits, backlogged
     flag, session rate) lives in one arena per field, indexed by
     [sbase.(node) + slot] — the whole hierarchy's scheduler state is six
     float arrays and a byte string;
   - every WF2Q+ operation is a direct static call on those arrays (no
     [Sched_intf.t] record of closures, no labeled-float boxing at closure
     boundaries, inlinable by the compiler);
   - each leaf's leaf-to-root path is precomputed at [create], so the W_n
     credit walk and RESET-PATH are array iterations, not recursion.

   Float semantics are kept bit-identical to [Wf2q_plus] (same operation
   order, same [Float_cmp] slack, same [Indexed_heap4] tie-breaking), so the
   generic and flat engines agree exactly — enforced by the qcheck lockstep
   differential in test/test_hier_flat.ml. *)

type t = {
  sim : Engine.Simulator.t;
  pool : Net.Packet_pool.t; (* every packet in this hierarchy lives here *)
  n_nodes : int;
  root : int;
  root_real : bool; (* root policy runs on simulation time (`Real_time) *)
  (* -- static topology, indexed by node id (preorder, root = 0) -- *)
  parent : int array; (* -1 at the root *)
  rate : float array;
  level : int array;
  session_in_parent : int array; (* slot in the parent's policy, -1 at root *)
  children_off : int array; (* interior -> offset into child_ids *)
  children_len : int array; (* 0 for leaves *)
  child_ids : int array; (* all children, grouped per interior node *)
  names : string array;
  by_name : (string, int) Hashtbl.t;
  leaf_list : (string * int) list;
  (* precomputed leaf-to-root paths: leaf's nodes at
     path_nodes.(path_off.(leaf) .. path_off.(leaf) + path_len.(leaf) - 1),
     ordered leaf first, root last *)
  path_off : int array;
  path_len : int array;
  path_nodes : int array;
  (* -- per-node dynamic state -- *)
  tn : float array; (* reference time T_n, post-dated *)
  departed_bits : float array; (* W_n(0, now) *)
  busy : Bytes.t; (* '\001' while the node is in its parent's system *)
  active_child : int array; (* node id, -1 when none *)
  logical : int array; (* leaf id owning this subtree's head packet, -1 *)
  logical_bits : float array; (* size of that head packet *)
  (* -- per-leaf physical queues -- *)
  fifos : Net.Fifo.t array; (* shared dummy at interior slots *)
  next_seq : int array;
  (* per-leaf lifecycle: '\000' open, '\001' draining, '\002' `Drop close
     deferred behind the wire packet, '\003' closed. Slots are re-initialised
     in place on reopen (the topology is fixed), mirroring [Hier]'s
     close/reopen semantics exactly so the lockstep differential holds
     under churn. *)
  lifecycle : Bytes.t;
  (* -- per-node WF2Q+ policy state (interior nodes only) -- *)
  v : float array; (* V, post-dated to the last selection's completion *)
  v_time : float array; (* server time of that completion *)
  backlogged_count : int array;
  eligible : Ih.t array; (* S_i <= V, keyed by F_i; dummy at leaves *)
  waiting : Ih.t array; (* S_i >  V, keyed by S_i; dummy at leaves *)
  observers : Sched_intf.observer option array;
  (* -- per-(node,session) arena, indexed by sbase.(node) + slot -- *)
  sbase : int array;
  s_rate : float array;
  s_start : float array; (* S_i of the head packet *)
  s_finish : float array; (* F_i of the head packet *)
  s_head : float array;
  s_backlogged : Bytes.t;
  (* server time of the event being processed, refreshed at every entry
     point (inject / completion / accessor). [node_now] reads it for the
     real-time root instead of calling [Simulator.now] per operation — the
     cross-module call returns a boxed float, and the restart cascade asks
     for the root clock several times per packet. One-element float array
     so stores stay unboxed. *)
  now_cache : float array;
  (* -- link state -- *)
  (* Hooks are handle-based internally; boxed [Net.Packet.t] views are
     materialised only inside the compat wrappers installed by
     [add_depart_hook] and friends. *)
  mutable on_depart : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable on_drop : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable on_transmit_start : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable link_busy : bool;
  mutable drops : int;
  mutable in_flight_leaf : int; (* the wire packet is that leaf's fifo head *)
  mutable complete_cb : unit -> unit;
  (* Burst-drain state (see Server): while a drain activation runs
     ([in_batch]), [start_transmission] records its commitment here
     instead of scheduling the completion event — [in_flight_leaf] already
     identifies the committed packet, so only the due time needs a slot. *)
  mutable burst_max : int;
  mutable in_batch : bool;
  mutable batch_has : bool;
  mutable batch_due : float;
}

let nop_leaf_cb _ ~leaf:_ _ = ()

let[@inline] node_now t n =
  if n = t.root && t.root_real then Array.unsafe_get t.now_cache 0 else t.tn.(n)

(* -- The WF2Q+ building block, monomorphized over the arenas -------------- *)
(* Each function mirrors its [Wf2q_plus] counterpart line for line; [node]
   selects the one-level server, [slot] its session (the child's index in
   the node's child list). *)

let[@inline] linear_v t node ~now = t.v.(node) +. (now -. t.v_time.(node))

(* [Float.max] is an external call whose float arguments box without
   flambda. Bit-identical for this code's value domain (no NaNs, no mixed
   signed zeros; ties return the first argument in both). *)
let[@inline] fmax (x : float) y = if y > x then y else x

let[@inline] place t node slot =
  let i = t.sbase.(node) + slot in
  if Float_cmp.le_with_slack t.s_start.(i) t.v.(node) then
    Ih.add t.eligible.(node) ~key:slot ~prio:t.s_finish.(i)
  else Ih.add t.waiting.(node) ~key:slot ~prio:t.s_start.(i)

(* Without flambda every float argument to a non-inlined call is boxed on
   the minor heap, so none of the hot operations below takes a float: each
   reads its operands — the child's committed head size, the node clock —
   from the arenas, and [child] (the child node id) stands in for both the
   session slot ([session_in_parent]) and the head size ([logical_bits],
   written by the caller before the call). Observer stamps are computed
   only inside the [Some] branch, so the untraced path allocates nothing
   beyond the heap operations themselves. *)

let p_backlog t node ~child =
  let slot = t.session_in_parent.(child) in
  let head_bits = t.logical_bits.(child) in
  let now = node_now t node in
  let i = t.sbase.(node) + slot in
  (* eq. 28, empty-queue branch: S = max(F, V(now)) *)
  let start = fmax t.s_finish.(i) (linear_v t node ~now) in
  t.s_start.(i) <- start;
  t.s_finish.(i) <- start +. (head_bits /. t.s_rate.(i));
  t.s_head.(i) <- head_bits;
  Bytes.set t.s_backlogged i '\001';
  t.backlogged_count.(node) <- t.backlogged_count.(node) + 1;
  place t node slot;
  match t.observers.(node) with
  | None -> ()
  | Some o ->
    o.Sched_intf.on_backlog ~now ~vtime:(linear_v t node ~now) ~session:slot ~head_bits

let p_requeue t node ~child =
  let slot = t.session_in_parent.(child) in
  let head_bits = t.logical_bits.(child) in
  let i = t.sbase.(node) + slot in
  (* eq. 28, busy branch: S = F *)
  let start = t.s_finish.(i) in
  let finish = start +. (head_bits /. t.s_rate.(i)) in
  t.s_start.(i) <- start;
  t.s_finish.(i) <- finish;
  t.s_head.(i) <- head_bits;
  let e = t.eligible.(node) in
  if Ih.mem e slot then
    if Float_cmp.le_with_slack start t.v.(node) then Ih.update e ~key:slot ~prio:finish
    else begin
      Ih.remove e slot;
      Ih.add t.waiting.(node) ~key:slot ~prio:start
    end
  else begin
    Ih.remove t.waiting.(node) slot;
    place t node slot
  end;
  match t.observers.(node) with
  | None -> ()
  | Some o ->
    let now = node_now t node in
    o.Sched_intf.on_requeue ~now ~vtime:(linear_v t node ~now) ~session:slot ~head_bits

let p_set_idle t node ~child =
  let slot = t.session_in_parent.(child) in
  Bytes.set t.s_backlogged (t.sbase.(node) + slot) '\000';
  t.backlogged_count.(node) <- t.backlogged_count.(node) - 1;
  Ih.remove t.eligible.(node) slot;
  Ih.remove t.waiting.(node) slot;
  match t.observers.(node) with
  | None -> ()
  | Some o ->
    let now = node_now t node in
    o.Sched_intf.on_idle ~now ~vtime:(linear_v t node ~now) ~session:slot

(* Returns the selected slot, or -1 when no session is backlogged. *)
let p_select t node =
  if t.backlogged_count.(node) = 0 then -1
  else begin
    let now = node_now t node in
    (* eq. 27: threshold = max(V(t)+τ, min S); when the eligible set is
       non-empty some S is already <= V, so the max is the linear term. *)
    let lin = linear_v t node ~now in
    let e = t.eligible.(node) and w = t.waiting.(node) in
    let threshold =
      if Ih.is_empty e && not (Ih.is_empty w) then
        fmax lin (Ih.min_prio_unsafe w)
      else lin
    in
    (* promote: move every waiting session with S <= threshold; the loop is
       inlined here so [threshold] never crosses a call boundary *)
    let base = t.sbase.(node) in
    let continue = ref true in
    while !continue && not (Ih.is_empty w) do
      let start = Ih.min_prio_unsafe w in
      if Float_cmp.le_with_slack start threshold then begin
        let slot = Ih.min_key_unsafe w in
        Ih.drop_min w;
        Ih.add e ~key:slot ~prio:t.s_finish.(base + slot)
      end
      else continue := false
    done;
    let slot = Ih.min_key_unsafe e in
    if slot >= 0 then begin
      let service = t.s_head.(base + slot) /. t.rate.(node) in
      (* RESTART-NODE lines 12-13: post-date V and its timestamp to the
         completion of the packet just committed. *)
      t.v.(node) <- threshold +. service;
      t.v_time.(node) <- now +. service;
      match t.observers.(node) with
      | None -> slot
      | Some o ->
        o.Sched_intf.on_select ~now ~vtime:t.v.(node) ~session:slot;
        slot
    end
    else slot
  end

(* -- The three pseudocode procedures, over flat arrays ------------------- *)

let drop_leaf_queue t leaf =
  let now = Engine.Simulator.now t.sim in
  let fifo = t.fifos.(leaf) in
  let name = t.names.(leaf) in
  while not (Net.Fifo.is_empty fifo) do
    let p = Net.Fifo.pop_exn fifo in
    t.drops <- t.drops + 1;
    t.on_drop p ~leaf:name now;
    Net.Packet_pool.free t.pool p
  done

let rec restart_node t n =
  let slot = p_select t n in
  if slot >= 0 then begin
    let child = t.child_ids.(t.children_off.(n) + slot) in
    let leaf = t.logical.(child) in
    if leaf < 0 then
      invalid_arg "Hier_flat: policy selected a child with empty logical queue";
    let bits = t.logical_bits.(child) in
    t.active_child.(n) <- child;
    t.logical.(n) <- leaf;
    t.logical_bits.(n) <- bits;
    (* RESTART-NODE line 13: post-date this node's reference clock *)
    t.tn.(n) <- t.tn.(n) +. (bits /. t.rate.(n));
    let was_busy = Bytes.unsafe_get t.busy n <> '\000' in
    Bytes.unsafe_set t.busy n '\001';
    if n = t.root then start_transmission t
    else begin
      let q = t.parent.(n) in
      (* the committed head is a fresh logical packet in the parent's
         system — an observer-only event, nothing to update *)
      (match t.observers.(q) with
      | None -> ()
      | Some o ->
        let q_now = node_now t q in
        o.Sched_intf.on_arrive ~now:q_now
          ~vtime:(linear_v t q ~now:q_now)
          ~session:t.session_in_parent.(n) ~size_bits:bits);
      if was_busy then
        (* line 8: s_n <- f_n *)
        p_requeue t q ~child:n
      else
        (* line 9: s_n <- max(f_n, V_q) *)
        p_backlog t q ~child:n;
      (* line 17: keep restarting upward while the parent has no head *)
      if t.logical.(q) < 0 then restart_node t q
    end
  end
  else begin
    t.active_child.(n) <- -1;
    let was_busy = Bytes.unsafe_get t.busy n <> '\000' in
    Bytes.unsafe_set t.busy n '\000';
    if n <> t.root && was_busy then begin
      let q = t.parent.(n) in
      p_set_idle t q ~child:n;
      if t.logical.(q) < 0 then restart_node t q
    end
  end

and start_transmission t =
  if not t.link_busy then begin
    let leaf = t.logical.(t.root) in
    if leaf >= 0 then begin
      let pkt = Net.Fifo.peek_exn t.fifos.(leaf) in
      t.link_busy <- true;
      (* the wire packet stays at its leaf's fifo head until RESET-PATH pops
         it, so remembering the leaf id is enough — no option allocation *)
      t.in_flight_leaf <- leaf;
      if t.on_transmit_start != nop_leaf_cb then
        t.on_transmit_start pkt ~leaf:t.names.(leaf) (Engine.Simulator.now t.sim);
      let duration = Net.Packet_pool.size_bits t.pool pkt /. t.rate.(t.root) in
      (* [now +. duration] is the exact float [schedule_after ~delay]
         computes — batched and per-packet fire times must agree bitwise. *)
      let due = Engine.Simulator.now t.sim +. duration in
      if t.in_batch then begin
        t.batch_has <- true;
        t.batch_due <- due
      end
      else ignore (Engine.Simulator.schedule t.sim ~at:due t.complete_cb)
    end
  end

(* One event activation drains up to [burst_max] consecutive departures.
   The next departure runs inline only when it would have been the very
   next event anyway: within the burst cap, not past the horizon of the
   enclosing [run ~until] ([<=]: an event exactly at the horizon fires),
   and strictly before the earliest pending event (at equal times the
   pending event carries the smaller schedule seq and wins the FIFO
   tie-break, so it must fire first). [complete_transmission] refreshes
   [now_cache] at entry, so the cascade sees the advanced clock. *)
and drain t leaf0 =
  let sim = t.sim in
  let steps = ref 1 in
  let leaf = ref leaf0 in
  let continue = ref true in
  while !continue do
    t.in_batch <- true;
    t.batch_has <- false;
    complete_transmission t (Net.Fifo.peek_exn t.fifos.(!leaf));
    t.in_batch <- false;
    if not t.batch_has then continue := false
    else begin
      let due = t.batch_due in
      if
        !steps < t.burst_max
        && due <= Engine.Simulator.run_horizon sim
        && due < Engine.Simulator.peek_time sim
      then begin
        Engine.Simulator.advance_clock sim ~to_:due;
        incr steps;
        let l = t.in_flight_leaf in
        if l < 0 then invalid_arg "Hier_flat: drain lost the in-flight leaf";
        t.in_flight_leaf <- -1;
        leaf := l
      end
      else begin
        ignore (Engine.Simulator.schedule sim ~at:due t.complete_cb);
        continue := false
      end
    end
  done

and complete_transmission t pkt =
  t.link_busy <- false;
  let now = Engine.Simulator.now t.sim in
  Array.unsafe_set t.now_cache 0 now;
  let leaf = Net.Packet_pool.flow t.pool pkt in
  let bits = Net.Packet_pool.size_bits t.pool pkt in
  (* account W_n along the precomputed leaf-to-root path *)
  let off = t.path_off.(leaf) and len = t.path_len.(leaf) in
  for k = 0 to len - 1 do
    let n = t.path_nodes.(off + k) in
    t.departed_bits.(n) <- t.departed_bits.(n) +. bits
  done;
  t.on_depart pkt ~leaf:t.names.(leaf) now;
  reset_path t leaf;
  (* the handle outlives RESET-PATH (which pops it from the leaf fifo) and
     every callback; only now is the slot safe to recycle *)
  Net.Packet_pool.free t.pool pkt

(* RESET-PATH: clear the logical queues down the transmitted packet's path
   (it IS the active path — every logical head on it is this packet),
   dequeue at the leaf, then restart upward. *)
and reset_path t leaf =
  let off = t.path_off.(leaf) and len = t.path_len.(leaf) in
  for k = len - 1 downto 0 do
    let n = t.path_nodes.(off + k) in
    t.logical.(n) <- -1;
    t.active_child.(n) <- -1
  done;
  let fifo = t.fifos.(leaf) in
  Net.Fifo.drop_head fifo;
  let q = t.parent.(leaf) in
  (match Bytes.get t.lifecycle leaf with
  | '\002' ->
    (* a `Drop close was deferred while this leaf's head held the wire:
       discard the rest of the queue and finish the close now *)
    drop_leaf_queue t leaf;
    p_set_idle t q ~child:leaf;
    Bytes.set t.lifecycle leaf '\003'
  | state ->
    if not (Net.Fifo.is_empty fifo) then begin
      let next = Net.Fifo.peek_exn fifo in
      t.logical.(leaf) <- leaf;
      t.logical_bits.(leaf) <- Net.Packet_pool.size_bits t.pool next;
      p_requeue t q ~child:leaf
    end
    else begin
      p_set_idle t q ~child:leaf;
      if state = '\001' then Bytes.set t.lifecycle leaf '\003'
    end);
  restart_node t q

(* -- Construction --------------------------------------------------------- *)

let create ~sim ~spec ?(root_clock = `Real_time) ?on_depart ?on_drop
    ?(burst_max = 1) () =
  if burst_max < 1 then invalid_arg "Hier_flat.create: burst_max must be >= 1";
  (match Class_tree.validate spec with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Hier_flat.create: invalid tree: " ^ String.concat "; " errors));
  (match spec with
  | Class_tree.Leaf _ -> invalid_arg "Hier_flat.create: root must be an interior node"
  | Class_tree.Node _ -> ());
  let n_nodes = Class_tree.count_nodes spec in
  let parent = Array.make n_nodes (-1) in
  let rate = Array.make n_nodes 0.0 in
  let level = Array.make n_nodes 0 in
  let session_in_parent = Array.make n_nodes (-1) in
  let children_off = Array.make n_nodes 0 in
  let children_len = Array.make n_nodes 0 in
  let names = Array.make n_nodes "" in
  let by_name = Hashtbl.create 16 in
  let is_leaf = Array.make n_nodes false in
  let capacity = Array.make n_nodes None in
  (* preorder ids, same assignment as [Hier.create] so the two engines agree
     on node numbering (handy for cross-validation and tooling) *)
  let counter = ref 0 in
  let leaf_list = ref [] in
  let rec number ~lvl ~par s =
    let id = !counter in
    incr counter;
    names.(id) <- Class_tree.name s;
    rate.(id) <- Class_tree.rate s;
    level.(id) <- lvl;
    parent.(id) <- par;
    Hashtbl.replace by_name names.(id) id;
    (match s with
    | Class_tree.Leaf { queue_capacity_bits; _ } ->
      is_leaf.(id) <- true;
      capacity.(id) <- queue_capacity_bits;
      leaf_list := (names.(id), id) :: !leaf_list
    | Class_tree.Node _ -> ());
    List.iter (fun c -> ignore (number ~lvl:(lvl + 1) ~par:id c)) (Class_tree.children s);
    id
  in
  let root = number ~lvl:0 ~par:(-1) spec in
  (* children tables: recover each node's child ids (contiguous in preorder
     numbering only per subtree, so collect from the parent array) *)
  let kids = Array.make n_nodes [] in
  for id = n_nodes - 1 downto 1 do
    kids.(parent.(id)) <- id :: kids.(parent.(id))
  done;
  let total_children = n_nodes - 1 in
  let child_ids = Array.make (max 1 total_children) (-1) in
  let next_off = ref 0 in
  for id = 0 to n_nodes - 1 do
    let cs = kids.(id) in
    children_off.(id) <- !next_off;
    List.iteri
      (fun slot c ->
        child_ids.(!next_off + slot) <- c;
        session_in_parent.(c) <- slot)
      cs;
    children_len.(id) <- List.length cs;
    next_off := !next_off + children_len.(id)
  done;
  (* session arenas: slot ranges per interior node *)
  let sbase = Array.make n_nodes 0 in
  let total_sessions = ref 0 in
  for id = 0 to n_nodes - 1 do
    sbase.(id) <- !total_sessions;
    total_sessions := !total_sessions + children_len.(id)
  done;
  let total_sessions = !total_sessions in
  let s_rate = Array.make (max 1 total_sessions) 0.0 in
  for id = 1 to n_nodes - 1 do
    s_rate.(sbase.(parent.(id)) + session_in_parent.(id)) <- rate.(id)
  done;
  (* leaf-to-root paths, flattened *)
  let path_off = Array.make n_nodes 0 in
  let path_len = Array.make n_nodes 0 in
  let total_path = ref 0 in
  for id = 0 to n_nodes - 1 do
    if is_leaf.(id) then begin
      path_off.(id) <- !total_path;
      path_len.(id) <- level.(id) + 1;
      total_path := !total_path + path_len.(id)
    end
  done;
  let path_nodes = Array.make (max 1 !total_path) (-1) in
  for id = 0 to n_nodes - 1 do
    if is_leaf.(id) then begin
      let n = ref id in
      for k = 0 to path_len.(id) - 1 do
        path_nodes.(path_off.(id) + k) <- !n;
        n := parent.(!n)
      done
    end
  done;
  let pool = Net.Packet_pool.create () in
  let dummy_fifo = Net.Fifo.create ~pool () in
  let dummy_heap = Ih.create 1 in
  let fifos =
    Array.init n_nodes (fun id ->
        if is_leaf.(id) then Net.Fifo.create ?capacity_bits:capacity.(id) ~pool ()
        else dummy_fifo)
  in
  let eligible =
    Array.init n_nodes (fun id ->
        if is_leaf.(id) then dummy_heap else Ih.create (max 1 children_len.(id)))
  in
  let waiting =
    Array.init n_nodes (fun id ->
        if is_leaf.(id) then dummy_heap else Ih.create (max 1 children_len.(id)))
  in
  let t =
    {
      sim;
      pool;
      n_nodes;
      root;
      root_real = (root_clock = `Real_time);
      parent;
      rate;
      level;
      session_in_parent;
      children_off;
      children_len;
      child_ids;
      names;
      by_name;
      leaf_list = List.rev !leaf_list;
      path_off;
      path_len;
      path_nodes;
      tn = Array.make n_nodes 0.0;
      departed_bits = Array.make n_nodes 0.0;
      busy = Bytes.make n_nodes '\000';
      active_child = Array.make n_nodes (-1);
      logical = Array.make n_nodes (-1);
      logical_bits = Array.make n_nodes 0.0;
      fifos;
      next_seq = Array.make n_nodes 1;
      lifecycle = Bytes.make n_nodes '\000';
      v = Array.make n_nodes 0.0;
      v_time = Array.make n_nodes 0.0;
      backlogged_count = Array.make n_nodes 0;
      eligible;
      waiting;
      observers = Array.make n_nodes None;
      sbase;
      s_rate;
      s_start = Array.make (max 1 total_sessions) 0.0;
      s_finish = Array.make (max 1 total_sessions) 0.0;
      s_head = Array.make (max 1 total_sessions) 0.0;
      s_backlogged = Bytes.make (max 1 total_sessions) '\000';
      now_cache = [| 0.0 |];
      on_depart = nop_leaf_cb;
      on_drop = nop_leaf_cb;
      on_transmit_start = nop_leaf_cb;
      link_busy = false;
      drops = 0;
      in_flight_leaf = -1;
      complete_cb = ignore;
      burst_max;
      in_batch = false;
      batch_has = false;
      batch_due = 0.0;
    }
  in
  (match on_depart with
  | None -> ()
  | Some f ->
    t.on_depart <-
      (fun h ~leaf now -> f (Net.Packet_pool.to_packet pool h) ~leaf now));
  (match on_drop with
  | None -> ()
  | Some f ->
    t.on_drop <-
      (fun h ~leaf now -> f (Net.Packet_pool.to_packet pool h) ~leaf now));
  t.complete_cb <-
    (fun () ->
      let leaf = t.in_flight_leaf in
      if leaf < 0 then
        invalid_arg "Hier_flat: transmission completed with nothing in flight";
      t.in_flight_leaf <- -1;
      drain t leaf);
  Log.info (fun m ->
      m "created flat H-WF2Q+ server: %d nodes, %d leaves, root rate %a" n_nodes
        (List.length t.leaf_list) Engine.Units.pp_rate rate.(root));
  t

(* -- Public operations ---------------------------------------------------- *)

let node_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None -> raise Not_found

let leaf_id t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id when t.children_len.(id) = 0 -> Hier.unsafe_leaf_of_int id
  | Some id ->
    invalid_arg
      (Printf.sprintf "Hier_flat.leaf_id: %S is an interior node, not a leaf" t.names.(id))
  | None -> raise Not_found

let leaf_name t (id : Hier.leaf) = t.names.((id :> int))
let leaf_ids t = List.map (fun (nm, id) -> (nm, Hier.unsafe_leaf_of_int id)) t.leaf_list

let inject_at t ~mark ~leaf ~size_bits ~now =
  if t.children_len.(leaf) <> 0 then invalid_arg "Hier_flat.inject: not a leaf";
  if Bytes.get t.lifecycle leaf <> '\000' then
    invalid_arg "Hier_flat.inject: leaf is closed";
  let pkt =
    Net.Packet_pool.alloc t.pool ~mark ~flow:leaf ~seq:t.next_seq.(leaf) ~size_bits
      ~arrival:now
  in
  t.next_seq.(leaf) <- t.next_seq.(leaf) + 1;
  if not (Net.Fifo.push t.fifos.(leaf) pkt) then begin
    t.drops <- t.drops + 1;
    Log.debug (fun m ->
        m "drop at leaf %s: %g bits, queue %g bits full" t.names.(leaf) size_bits
          (Net.Fifo.bits t.fifos.(leaf)));
    t.on_drop pkt ~leaf:t.names.(leaf) now;
    Net.Packet_pool.free t.pool pkt;
    pkt
  end
  else begin
    let q = t.parent.(leaf) in
    (match t.observers.(q) with
    | None -> ()
    | Some o ->
      let q_now = node_now t q in
      o.Sched_intf.on_arrive ~now:q_now
        ~vtime:(linear_v t q ~now:q_now)
        ~session:t.session_in_parent.(leaf) ~size_bits);
    (* ARRIVE lines 2-3: nothing more to do when the subtree has a head *)
    if t.logical.(leaf) < 0 then begin
      t.logical.(leaf) <- leaf;
      t.logical_bits.(leaf) <- size_bits;
      p_backlog t q ~child:leaf;
      if Bytes.get t.busy q = '\000' then restart_node t q
    end;
    pkt
  end

let inject_one t ~mark ~leaf ~size_bits =
  let now = Engine.Simulator.now t.sim in
  Array.unsafe_set t.now_cache 0 now;
  inject_at t ~mark ~leaf ~size_bits ~now

let inject ?(mark = 0) t ~(leaf : Hier.leaf) ~size_bits =
  inject_one t ~mark ~leaf:(leaf :> int) ~size_bits

let inject_many ?(mark = 0) t ~(leaf : Hier.leaf) ~size_bits ~count =
  (* batched arrivals stamped with one clock read (the clock cannot move
     during injection, so stamps match [count] separate injects bitwise);
     after the first packet the leaf has a head, so each further packet is
     one fifo push + one (observer-only) arrive *)
  if count < 0 then invalid_arg "Hier_flat.inject_many: negative count";
  let leaf = (leaf :> int) in
  if count > 0 then begin
    let now = Engine.Simulator.now t.sim in
    Array.unsafe_set t.now_cache 0 now;
    for _ = 1 to count do
      ignore (inject_at t ~mark ~leaf ~size_bits ~now)
    done
  end

(* -- Leaf lifecycle ------------------------------------------------------ *)

let leaf_state t ~(leaf : Hier.leaf) =
  match Bytes.get t.lifecycle (leaf :> int) with
  | '\000' -> `Open
  | '\001' | '\002' -> `Closing
  | _ -> `Closed

(* CLOSE-LEAF, the array mirror of [Hier.close_leaf]: the committed-chain
   retract walks the parent links clearing every ancestor whose logical
   head is this leaf's committed packet ([logical] stores the owning leaf
   id, so the physical-equality test of the generic engine becomes an int
   compare), then removes the slot from the parent's heaps with no
   observer event — exactly what [Wf2q_plus.close_session `Drop] does —
   and lets the restart cascade repair the cleared ancestors. *)
let close_leaf t ~(leaf : Hier.leaf) ~policy =
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Hier_flat.close_leaf: not a leaf";
  if Bytes.get t.lifecycle leaf <> '\000' then
    invalid_arg "Hier_flat.close_leaf: leaf already closed or closing";
  Array.unsafe_set t.now_cache 0 (Engine.Simulator.now t.sim);
  let q = t.parent.(leaf) in
  if t.logical.(leaf) < 0 then
    (* idle leaf: nothing is scheduled anywhere on its path *)
    Bytes.set t.lifecycle leaf '\003'
  else
    match policy with
    | `Drain -> Bytes.set t.lifecycle leaf '\001'
    | `Drop ->
      if t.link_busy && t.in_flight_leaf = leaf then
        (* the wire packet is never recalled; RESET-PATH completes the
           close at its departure *)
        Bytes.set t.lifecycle leaf '\002'
      else begin
        drop_leaf_queue t leaf;
        t.logical.(leaf) <- -1;
        let m = ref q in
        let walking = ref true in
        while !walking do
          if t.logical.(!m) = leaf then begin
            t.logical.(!m) <- -1;
            t.active_child.(!m) <- -1;
            if !m = t.root then walking := false else m := t.parent.(!m)
          end
          else walking := false
        done;
        let slot = t.session_in_parent.(leaf) in
        let i = t.sbase.(q) + slot in
        if Bytes.get t.s_backlogged i <> '\000' then begin
          Ih.remove t.eligible.(q) slot;
          Ih.remove t.waiting.(q) slot;
          Bytes.set t.s_backlogged i '\000';
          t.backlogged_count.(q) <- t.backlogged_count.(q) - 1
        end;
        Bytes.set t.lifecycle leaf '\003';
        if t.logical.(q) < 0 then restart_node t q
      end

let reopen_leaf ?rate t ~(leaf : Hier.leaf) =
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Hier_flat.reopen_leaf: not a leaf";
  (match Bytes.get t.lifecycle leaf with
  | '\003' -> ()
  | '\000' -> invalid_arg "Hier_flat.reopen_leaf: leaf is open"
  | _ -> invalid_arg "Hier_flat.reopen_leaf: close still in progress");
  let q = t.parent.(leaf) in
  let i = t.sbase.(q) + t.session_in_parent.(leaf) in
  (match rate with
  | Some r ->
    if r <= 0.0 then invalid_arg "Hier_flat.reopen_leaf: rate must be positive";
    t.rate.(leaf) <- r;
    t.s_rate.(i) <- r
  | None -> ());
  (* fresh-session stamps, matching [Wf2q_plus.open_session] on a recycled
     slot: F = 0, so the first backlog stamps S = max(0, V) = V *)
  t.s_start.(i) <- 0.0;
  t.s_finish.(i) <- 0.0;
  t.s_head.(i) <- 0.0;
  Bytes.set t.s_backlogged i '\000';
  Bytes.set t.lifecycle leaf '\000'

let queue_bits t ~(leaf : Hier.leaf) =
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Hier_flat.queue_bits: not a leaf";
  Net.Fifo.bits t.fifos.(leaf)

let departed_bits t ~node = t.departed_bits.(node_by_name t node)
let ref_time t ~node = t.tn.(node_by_name t node)

let node_virtual_time t ~node =
  let id = node_by_name t node in
  if t.children_len.(id) = 0 then
    invalid_arg "Hier_flat.node_virtual_time: leaf has no policy";
  Array.unsafe_set t.now_cache 0 (Engine.Simulator.now t.sim);
  linear_v t id ~now:(node_now t id)

let link_busy t = t.link_busy
let drops t = t.drops

let set_burst_max t n =
  if n < 1 then invalid_arg "Hier_flat.set_burst_max: burst_max must be >= 1";
  t.burst_max <- n

let burst_max t = t.burst_max

(* -- Observability -------------------------------------------------------- *)

let compose_leaf_cb f g =
  if f == nop_leaf_cb then g
  else fun pkt ~leaf now ->
    f pkt ~leaf now;
    g pkt ~leaf now

let add_depart_handle_hook t f = t.on_depart <- compose_leaf_cb t.on_depart f
let add_drop_handle_hook t f = t.on_drop <- compose_leaf_cb t.on_drop f

let add_transmit_start_handle_hook t f =
  t.on_transmit_start <- compose_leaf_cb t.on_transmit_start f

(* Boxed compat wrappers: materialise a [Net.Packet.t] per event. *)
let boxed t f = fun h ~leaf now -> f (Net.Packet_pool.to_packet t.pool h) ~leaf now
let add_depart_hook t f = add_depart_handle_hook t (boxed t f)
let add_drop_hook t f = add_drop_handle_hook t (boxed t f)
let add_transmit_start_hook t f = add_transmit_start_handle_hook t (boxed t f)

let pool t = t.pool

let root_name t = t.names.(t.root)
let node_name t id = t.names.(id)
let node_count t = t.n_nodes

let leaf_path t ~(leaf : Hier.leaf) =
  let leaf = (leaf :> int) in
  if t.children_len.(leaf) <> 0 then invalid_arg "Hier_flat.leaf_path: not a leaf";
  Array.sub t.path_nodes t.path_off.(leaf) t.path_len.(leaf)

let iter_interior t f =
  for id = 0 to t.n_nodes - 1 do
    if t.children_len.(id) > 0 then
      f ~id ~name:t.names.(id) ~level:t.level.(id)
        ~children:(Array.sub t.child_ids t.children_off.(id) t.children_len.(id))
  done

let set_node_observer_id t ~node observer =
  if node < 0 || node >= t.n_nodes || t.children_len.(node) = 0 then
    invalid_arg "Hier_flat.set_node_observer_id: not an interior node";
  t.observers.(node) <- observer

let set_node_observer t ~node observer =
  let id = node_by_name t node in
  if t.children_len.(id) = 0 then
    invalid_arg "Hier_flat.set_node_observer: leaf has no policy";
  t.observers.(id) <- observer
