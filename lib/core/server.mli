(** Standalone one-level packet server: couples a scheduling policy to real
    per-session FIFO queues and a transmitting link inside a discrete-event
    simulation.

    This is the packaging of a {!Sched.Sched_intf.t} building block as a
    complete router output port: packets are injected per session, queued,
    selected by the policy, serialised onto the link at the server rate, and
    handed to the departure callback. Used directly by the one-level
    experiments (Fig. 2, WFI measurements) and as the reference semantics
    the hierarchical server must reduce to on a one-level tree.

    Packets live in a per-server {!Net.Packet_pool}; the engine moves
    immediate int handles and allocates no boxes on the hot path. Boxed
    {!Net.Packet.t} views are materialised only inside the boxed hook
    wrappers; the [_handle_] hook variants observe raw handles (valid
    during the callback — a departed/dropped packet's handle is recycled
    as soon as its callbacks return). *)

type t

val create :
  sim:Engine.Simulator.t ->
  rate:float ->
  policy:Sched.Sched_intf.t ->
  ?on_depart:(Net.Packet.t -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> float -> unit) ->
  ?burst_max:int ->
  unit ->
  t
(** [rate] is the link rate in bits/second. [on_depart pkt time] fires when
    the last bit of [pkt] leaves the link.

    [burst_max] (default 1) bounds how many consecutive departures one
    simulator event may execute while the link stays backlogged: at 1 every
    packet costs one event (the classic per-packet loop); larger values
    amortize event-set traffic over bursts. Departure times, stamps and
    callback order are bit-identical at every setting — a departure only
    runs inline when it would have been the very next event anyway.
    @raise Invalid_argument if [burst_max < 1]. *)

val set_burst_max : t -> int -> unit
(** Change the burst cap; takes effect from the next drain activation.
    @raise Invalid_argument if the argument is [< 1]. *)

val burst_max : t -> int

val open_session :
  t -> rate:float -> ?queue_capacity_bits:float -> unit -> Sched.Session_handle.t
(** Open a session with guaranteed rate [r_i], any time — the server may
    already be transmitting. Returns a generation-tagged handle (see
    {!Sched.Session_pool}); resolving it after close raises
    [Stale_handle]. *)

val close_session :
  t -> policy:Sched.Sched_intf.close_policy -> Sched.Session_handle.t -> unit
(** Close a session deterministically in every state: idle sessions free
    immediately; a backlogged session either keeps its schedule place
    until empty ([`Drain]) or hands its queued packets to the drop
    callback now ([`Drop]) — except the packet already committed to the
    link, which always finishes transmitting (the close completes at its
    departure).
    @raise Sched.Session_pool.Stale_handle on a stale handle.
    @raise Invalid_argument if the session is already closing. *)

val add_session : t -> rate:float -> ?queue_capacity_bits:float -> unit -> int
(** Register a session with guaranteed rate [r_i]; returns its index.
    @deprecated [open_session]'s handle is the supported identity; this
    int-returning alias remains for the static pre-lifecycle drivers. *)

val pool : t -> Net.Packet_pool.t
(** The server's packet arena (to read fields of a handle inside a
    [_handle_] hook, or to materialise a boxed view). *)

val inject : t -> session:int -> size_bits:float -> Net.Packet_pool.handle
(** A packet of [size_bits] arrives on [session] at the current simulation
    time. Returns its pool handle. If the queue was full the drop callback
    has already fired and the handle is already recycled (stale).
    @raise Invalid_argument if the session is closed or closing. *)

val inject_handle :
  t -> handle:Sched.Session_handle.t -> size_bits:float -> Net.Packet_pool.handle
(** Handle-taking {!inject}.
    @raise Sched.Session_pool.Stale_handle on a stale handle. *)

val inject_batch : t -> session:int -> size_bits:float -> count:int -> unit
(** [count] packets of [size_bits] arrive back-to-back on [session] at the
    current simulation time, stamped with one clock read and kicking the
    transmission chain once. Per-packet drop callbacks still fire for
    packets the queue rejects.
    @raise Invalid_argument if the session is closed or [count] is
    negative. *)

val queue_bits : t -> session:int -> float
(** Current backlog Q_i(t) of the session, excluding any packet already
    committed to the link. *)

val busy : t -> bool
val policy : t -> Sched.Sched_intf.t

val session_count : t -> int
(** Slots ever created (including closed ones awaiting reuse). *)

val live_sessions : t -> int
(** Currently open (live or draining) sessions. *)

val add_depart_hook : t -> (Net.Packet.t -> float -> unit) -> unit
(** Append a departure callback, composed after any existing ones (including
    the [on_depart] given at creation). Used by the tracing layer.
    Materialises a boxed packet per departure. *)

val add_drop_hook : t -> (Net.Packet.t -> float -> unit) -> unit
(** Append a drop callback; same composition rule as {!add_depart_hook}. *)

val add_transmit_start_hook : t -> (Net.Packet.t -> float -> unit) -> unit
(** Append a callback fired when a packet's first bit goes onto the link
    (i.e. right after the policy selected it and the server committed). *)

val add_depart_handle_hook : t -> (Net.Packet_pool.handle -> float -> unit) -> unit
(** Allocation-free {!add_depart_hook}: the callback receives the pool
    handle, valid for the duration of the call only. *)

val add_drop_handle_hook : t -> (Net.Packet_pool.handle -> float -> unit) -> unit
val add_transmit_start_handle_hook :
  t -> (Net.Packet_pool.handle -> float -> unit) -> unit

val departed_bits : t -> session:int -> float
(** Cumulative W_i(0, now): bits of the session fully transmitted. *)

val departed_bits_total : t -> float
