open Sched

let log_src = Logs.Src.create "hpfq.hier" ~doc:"H-PFQ hierarchical server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type leaf = int

type kind =
  | Leaf_node of { fifo : Net.Fifo.t; mutable next_seq : int }
  | Interior of { policy : Sched_intf.t }

(* Leaf lifecycle: [`Draining] keeps its schedule place until the queue
   empties; [`Drop_pending] is a `Drop close requested while the leaf's
   head was on the wire — it completes at that packet's departure. *)
type lifecycle = [ `Open | `Draining | `Drop_pending | `Closed ]

(* [logical] holds the pool handle of the packet at the head of this
   subtree's logical queue, or [Net.Packet_pool.none]. A handle is an
   immediate int, so committing a head up the tree (RESTART-NODE line 12)
   is an int store — the option cell the boxed plane allocated per commit
   is gone. *)
type node = {
  id : int;
  name : string;
  mutable rate : float;
  level : int;
  parent : int; (* -1 for root *)
  mutable children : int array;
  kind : kind;
  mutable session_in_parent : int;
  mutable handle_in_parent : Session_handle.t;
  mutable lifecycle : lifecycle;
  mutable busy : bool;
  mutable logical : Net.Packet_pool.handle; (* Q_n: head of this subtree *)
  mutable active_child : int;               (* node id, -1 when none *)
}

type t = {
  sim : Engine.Simulator.t;
  pool : Net.Packet_pool.t; (* every packet in this hierarchy lives here *)
  nodes : node array;
  (* Per-node reference clocks T_n and work counters W_n live in plain
     float arrays indexed by node id, not in the (mixed) node records:
     both are written on every packet along the whole leaf-to-root path,
     and mutable floats in a mixed record would box on each store. *)
  tn : float array;                         (* reference time T_n, post-dated *)
  departed_bits : float array;              (* W_n(0, now) *)
  (* Each leaf's leaf-to-root path (leaf first, root last), precomputed at
     create: the W_n credit walk in [complete_transmission] runs once per
     transmitted packet, and an array iteration beats re-deriving the path
     by parent-chasing recursion every time. Interior ids hold [||]. *)
  paths : int array array;
  root : int;
  by_name : (string, int) Hashtbl.t;
  leaf_list : (string * int) list;
  root_clock : [ `Real_time | `Reference_time ];
  (* Hooks are handle-based internally; the boxed [Net.Packet.t] view is
     materialised only inside the compat wrappers installed by
     [add_depart_hook] and friends. *)
  mutable on_depart : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable on_drop : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable on_transmit_start : Net.Packet_pool.handle -> leaf:string -> float -> unit;
  mutable link_busy : bool;
  mutable drops : int;
  (* The single packet on the wire (the link serves one packet at a time),
     plus a preallocated completion callback so steady-state transmission
     scheduling allocates nothing per packet. *)
  mutable in_flight : Net.Packet_pool.handle;
  mutable complete_cb : unit -> unit;
  (* Burst-drain state (see Server): while a drain activation runs
     ([in_batch]), [start_transmission] records its commitment here
     instead of scheduling the completion event — [in_flight] already
     carries the committed packet, so only the due time needs a slot. *)
  mutable burst_max : int;
  mutable in_batch : bool;
  mutable batch_has : bool;
  mutable batch_due : float;
}

let uniform factory ~level:_ ~name:_ ~rate = factory.Sched_intf.make ~rate

let nop_leaf_cb _ ~leaf:_ _ = ()

let is_root t n = n.id = t.root

(* "now" as seen by node [n]'s own policy: its reference time, except that
   the root may run on real time (see .mli). *)
let node_now t n =
  if is_root t n && t.root_clock = `Real_time then Engine.Simulator.now t.sim
  else t.tn.(n.id)

let policy_of n =
  match n.kind with
  | Interior { policy } -> policy
  | Leaf_node _ -> invalid_arg "Hier: leaf has no policy"

let no_pkt = Net.Packet_pool.none

(* -- The three pseudocode procedures ------------------------------------ *)

let rec restart_node t n =
  let policy = policy_of n in
  let now = node_now t n in
  match policy.Sched_intf.select ~now with
  | Some session ->
    let child = t.nodes.(n.children.(session)) in
    let pkt = child.logical in
    if pkt < 0 then
      invalid_arg "Hier: policy selected a child with empty logical queue";
    n.active_child <- child.id;
    n.logical <- pkt;
    let bits = Net.Packet_pool.size_bits t.pool pkt in
    (* RESTART-NODE line 13: post-date this node's reference clock *)
    t.tn.(n.id) <- t.tn.(n.id) +. (bits /. n.rate);
    let was_busy = n.busy in
    n.busy <- true;
    if is_root t n then start_transmission t
    else begin
      let q = t.nodes.(n.parent) in
      let q_now = node_now t q in
      (* the committed head is a fresh logical packet in the parent's system *)
      (policy_of q).Sched_intf.arrive ~now:q_now ~session:n.session_in_parent ~size_bits:bits;
      if was_busy then
        (* line 8: s_n <- f_n *)
        (policy_of q).Sched_intf.requeue ~now:q_now ~session:n.session_in_parent ~head_bits:bits
      else
        (* line 9: s_n <- max(f_n, V_q) *)
        (policy_of q).Sched_intf.backlog ~now:q_now ~session:n.session_in_parent ~head_bits:bits;
      (* line 17: keep restarting upward while the parent has no head *)
      if q.logical < 0 then restart_node t q
    end
  | None ->
    n.active_child <- -1;
    let was_busy = n.busy in
    n.busy <- false;
    if not (is_root t n) then begin
      let q = t.nodes.(n.parent) in
      if was_busy then
        (policy_of q).Sched_intf.set_idle ~now:(node_now t q) ~session:n.session_in_parent;
      if was_busy && q.logical < 0 then restart_node t q
    end

and start_transmission t =
  if not t.link_busy then begin
    let root = t.nodes.(t.root) in
    let pkt = root.logical in
    if pkt >= 0 then begin
      t.link_busy <- true;
      t.in_flight <- pkt;
      if t.on_transmit_start != nop_leaf_cb then
        t.on_transmit_start pkt
          ~leaf:t.nodes.(Net.Packet_pool.flow t.pool pkt).name
          (Engine.Simulator.now t.sim);
      let duration = Net.Packet_pool.size_bits t.pool pkt /. root.rate in
      (* [now +. duration] is the exact float [schedule_after ~delay]
         computes — batched and per-packet fire times must agree bitwise. *)
      let due = Engine.Simulator.now t.sim +. duration in
      if t.in_batch then begin
        t.batch_has <- true;
        t.batch_due <- due
      end
      else ignore (Engine.Simulator.schedule t.sim ~at:due t.complete_cb)
    end
  end

(* One event activation drains up to [burst_max] consecutive departures.
   The next departure runs inline only when it would have been the very
   next event anyway: within the burst cap, not past the horizon of the
   enclosing [run ~until] ([<=]: an event exactly at the horizon fires),
   and strictly before the earliest pending event (at equal times the
   pending event carries the smaller schedule seq and wins the FIFO
   tie-break, so it must fire first). *)
and drain t pkt0 =
  let sim = t.sim in
  let steps = ref 1 in
  let pkt = ref pkt0 in
  let continue = ref true in
  while !continue do
    t.in_batch <- true;
    t.batch_has <- false;
    complete_transmission t !pkt;
    t.in_batch <- false;
    if not t.batch_has then continue := false
    else begin
      let due = t.batch_due in
      if
        !steps < t.burst_max
        && due <= Engine.Simulator.run_horizon sim
        && due < Engine.Simulator.peek_time sim
      then begin
        Engine.Simulator.advance_clock sim ~to_:due;
        incr steps;
        if t.in_flight < 0 then invalid_arg "Hier: drain lost the in-flight packet";
        pkt := t.in_flight;
        t.in_flight <- no_pkt
      end
      else begin
        ignore (Engine.Simulator.schedule sim ~at:due t.complete_cb);
        continue := false
      end
    end
  done

and complete_transmission t pkt =
  t.link_busy <- false;
  let now = Engine.Simulator.now t.sim in
  (* account W_n along the transmitted packet's precomputed leaf-to-root path *)
  let leaf = t.nodes.(Net.Packet_pool.flow t.pool pkt) in
  let path = t.paths.(leaf.id) in
  let bits = Net.Packet_pool.size_bits t.pool pkt in
  for k = 0 to Array.length path - 1 do
    t.departed_bits.(path.(k)) <- t.departed_bits.(path.(k)) +. bits
  done;
  t.on_depart pkt ~leaf:leaf.name now;
  reset_path t;
  (* the departed packet's cell recycles only after its callbacks fired
     and RESET-PATH dequeued it from the leaf ring *)
  Net.Packet_pool.free t.pool pkt

(* RESET-PATH: walk down the active path clearing logical queues, dequeue
   the transmitted packet at its leaf, then restart upward. *)
and reset_path t =
  let rec descend n =
    n.logical <- no_pkt;
    match n.kind with
    | Interior _ ->
      let c = n.active_child in
      n.active_child <- -1;
      if c < 0 then invalid_arg "Hier: reset_path lost the active child";
      descend t.nodes.(c)
    | Leaf_node { fifo; _ } ->
      if Net.Fifo.is_empty fifo then
        invalid_arg "Hier: transmitted packet missing from its leaf queue";
      Net.Fifo.drop_head fifo;
      let q = t.nodes.(n.parent) in
      let q_now = node_now t q in
      (match n.lifecycle with
      | `Drop_pending ->
        (* a `Drop close was deferred while this leaf's head held the wire:
           discard the rest of the queue and finish the close now *)
        drop_queue t n fifo;
        (policy_of q).Sched_intf.set_idle ~now:q_now ~session:n.session_in_parent;
        (policy_of q).Sched_intf.close_session ~now:q_now ~policy:`Drop
          n.handle_in_parent;
        n.lifecycle <- `Closed
      | `Open | `Draining | `Closed ->
        if not (Net.Fifo.is_empty fifo) then begin
          let next = Net.Fifo.peek_exn fifo in
          n.logical <- next;
          (policy_of q).Sched_intf.requeue ~now:q_now ~session:n.session_in_parent
            ~head_bits:(Net.Packet_pool.size_bits t.pool next)
        end
        else begin
          (* a draining leaf's pool slot frees inside the policy's set_idle *)
          (policy_of q).Sched_intf.set_idle ~now:q_now ~session:n.session_in_parent;
          if n.lifecycle = `Draining then n.lifecycle <- `Closed
        end);
      restart_node t q
  in
  descend t.nodes.(t.root)

and drop_queue t n fifo =
  let now = Engine.Simulator.now t.sim in
  while not (Net.Fifo.is_empty fifo) do
    let p = Net.Fifo.pop_exn fifo in
    t.drops <- t.drops + 1;
    t.on_drop p ~leaf:n.name now;
    Net.Packet_pool.free t.pool p
  done

let create ~sim ~spec ~make_policy ?(root_clock = `Real_time) ?on_depart ?on_drop
    ?(burst_max = 1) () =
  if burst_max < 1 then invalid_arg "Hier.create: burst_max must be >= 1";
  (match Class_tree.validate spec with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Hier.create: invalid tree: " ^ String.concat "; " errors));
  let pool = Net.Packet_pool.create () in
  let nodes = ref [] in
  let counter = ref 0 in
  let by_name = Hashtbl.create 16 in
  let leaf_list = ref [] in
  let rec build ~level ~parent spec =
    let id = !counter in
    incr counter;
    let name = Class_tree.name spec and rate = Class_tree.rate spec in
    let kind =
      match spec with
      | Class_tree.Leaf { queue_capacity_bits; _ } ->
        leaf_list := (name, id) :: !leaf_list;
        Leaf_node
          {
            fifo = Net.Fifo.create ?capacity_bits:queue_capacity_bits ~pool ();
            next_seq = 1;
          }
      | Class_tree.Node _ -> Interior { policy = make_policy ~level ~name ~rate }
    in
    let n =
      {
        id;
        name;
        rate;
        level;
        parent;
        children = [||];
        kind;
        session_in_parent = -1;
        handle_in_parent = Session_handle.of_int_unsafe (-1);
        lifecycle = `Open;
        busy = false;
        logical = no_pkt;
        active_child = -1;
      }
    in
    nodes := n :: !nodes;
    Hashtbl.replace by_name name id;
    let child_ids =
      List.map (fun c -> (build ~level:(level + 1) ~parent:id c).id) (Class_tree.children spec)
    in
    n.children <- Array.of_list child_ids;
    n
  in
  let root_node = build ~level:0 ~parent:(-1) spec in
  let arr = Array.make !counter root_node in
  List.iter (fun n -> arr.(n.id) <- n) !nodes;
  (* register each child as a session of its parent's policy *)
  Array.iter
    (fun n ->
      match n.kind with
      | Interior { policy } ->
        Array.iter
          (fun cid ->
            let child = arr.(cid) in
            let h = policy.Sched_intf.open_session ~rate:child.rate in
            child.handle_in_parent <- h;
            child.session_in_parent <- policy.Sched_intf.session_of_handle h)
          n.children
      | Leaf_node _ -> ())
    arr;
  Log.info (fun m ->
      m "created H-PFQ server: %d nodes, %d leaves, root rate %a" !counter
        (List.length !leaf_list) Engine.Units.pp_rate root_node.rate);
  let paths = Array.make !counter [||] in
  Array.iter
    (fun n ->
      match n.kind with
      | Interior _ -> ()
      | Leaf_node _ ->
        let path = Array.make (n.level + 1) n.id in
        let m = ref n in
        for k = 0 to n.level do
          path.(k) <- !m.id;
          if !m.parent >= 0 then m := arr.(!m.parent)
        done;
        paths.(n.id) <- path)
    arr;
  let t =
    {
      sim;
      pool;
      nodes = arr;
      tn = Array.make !counter 0.0;
      departed_bits = Array.make !counter 0.0;
      paths;
      root = root_node.id;
      by_name;
      leaf_list = List.rev !leaf_list;
      root_clock;
      on_depart = nop_leaf_cb;
      on_drop = nop_leaf_cb;
      on_transmit_start = nop_leaf_cb;
      link_busy = false;
      drops = 0;
      in_flight = no_pkt;
      complete_cb = ignore;
      burst_max;
      in_batch = false;
      batch_has = false;
      batch_due = 0.0;
    }
  in
  (match on_depart with
  | None -> ()
  | Some f ->
    t.on_depart <-
      (fun h ~leaf now -> f (Net.Packet_pool.to_packet pool h) ~leaf now));
  (match on_drop with
  | None -> ()
  | Some f ->
    t.on_drop <- (fun h ~leaf now -> f (Net.Packet_pool.to_packet pool h) ~leaf now));
  t.complete_cb <-
    (fun () ->
      let pkt = t.in_flight in
      if pkt < 0 then
        invalid_arg "Hier: transmission completed with nothing in flight";
      t.in_flight <- no_pkt;
      drain t pkt);
  t

(* -- Public operations --------------------------------------------------- *)

let pool t = t.pool

let leaf_id t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> (
    match t.nodes.(id).kind with
    | Leaf_node _ -> id
    | Interior _ ->
      invalid_arg
        (Printf.sprintf "Hier.leaf_id: %S is an interior node, not a leaf" name))
  | None -> raise Not_found

let leaf_name t id = t.nodes.(id).name
let leaf_ids t = t.leaf_list
let unsafe_leaf_of_int (id : int) : leaf = id

(* -- Leaf lifecycle ------------------------------------------------------ *)

let leaf_state t ~leaf =
  match t.nodes.(leaf).lifecycle with
  | `Open -> `Open
  | `Draining | `Drop_pending -> `Closing
  | `Closed -> `Closed

(* CLOSE-LEAF. The subtle case is [`Drop] of a backlogged leaf whose head
   has already been committed up the tree: the head's handle may sit in
   the logical queue of every ancestor on the path (the chain built by
   RESTART-NODE line 12). Retract deterministically:

   + the packet on the wire is never recalled — that close defers to the
     packet's departure (handled by RESET-PATH);
   + otherwise, erase the committed chain top-down-stopping ancestors keep
     their heads (the walk stops at the first ancestor that committed a
     different packet), close the parent's session (which removes it from
     the parent's eligible/waiting structures), and RESTART the parent:
     the normal restart cascade re-selects a head at every cleared
     ancestor, issuing requeue/set_idle upward exactly as RESET-PATH does
     after a departure. *)
let close_leaf t ~leaf ~policy =
  let n = t.nodes.(leaf) in
  let fifo =
    match n.kind with
    | Leaf_node { fifo; _ } -> fifo
    | Interior _ -> invalid_arg "Hier.close_leaf: not a leaf"
  in
  (match n.lifecycle with
  | `Open -> ()
  | `Draining | `Drop_pending | `Closed ->
    invalid_arg "Hier.close_leaf: leaf already closed or closing");
  let q = t.nodes.(n.parent) in
  let qp = policy_of q in
  let q_now = node_now t q in
  let pkt = n.logical in
  if pkt < 0 then begin
    (* idle leaf: the parent's slot frees immediately *)
    qp.Sched_intf.close_session ~now:q_now ~policy n.handle_in_parent;
    n.lifecycle <- `Closed
  end
  else
    match policy with
    | `Drain ->
      qp.Sched_intf.close_session ~now:q_now ~policy:`Drain n.handle_in_parent;
      n.lifecycle <- `Draining
    | `Drop ->
      (* handle equality replaces the boxed plane's physical equality: a
         handle names one allocation, so [=] is exact identity *)
      let on_wire = t.link_busy && t.in_flight = pkt in
      if on_wire then n.lifecycle <- `Drop_pending
      else begin
        drop_queue t n fifo;
        n.logical <- no_pkt;
        (* erase the committed chain: every ancestor whose logical head IS
           this packet committed it via RESTART-NODE *)
        let rec clear_up m =
          if m.logical = pkt then begin
            m.logical <- no_pkt;
            m.active_child <- -1;
            if not (is_root t m) then clear_up t.nodes.(m.parent)
          end
        in
        clear_up q;
        qp.Sched_intf.close_session ~now:q_now ~policy:`Drop n.handle_in_parent;
        n.lifecycle <- `Closed;
        (* if the parent lost its committed head, the restart cascade
           repairs it and every cleared ancestor above it *)
        if q.logical < 0 then restart_node t q
      end

let reopen_leaf ?rate t ~leaf =
  let n = t.nodes.(leaf) in
  (match n.kind with
  | Leaf_node _ -> ()
  | Interior _ -> invalid_arg "Hier.reopen_leaf: not a leaf");
  (match n.lifecycle with
  | `Closed -> ()
  | `Open -> invalid_arg "Hier.reopen_leaf: leaf is open"
  | `Draining | `Drop_pending -> invalid_arg "Hier.reopen_leaf: close still in progress");
  (match rate with
  | Some r ->
    if r <= 0.0 then invalid_arg "Hier.reopen_leaf: rate must be positive";
    n.rate <- r
  | None -> ());
  let q = t.nodes.(n.parent) in
  let qp = policy_of q in
  let h = qp.Sched_intf.open_session ~rate:n.rate in
  let slot = qp.Sched_intf.session_of_handle h in
  (* the policy may hand back any free slot (or, without recycling, a brand
     new one); keep the parent's slot -> child map in sync *)
  if slot >= Array.length q.children then begin
    let grown = Array.make (slot + 1) (-1) in
    Array.blit q.children 0 grown 0 (Array.length q.children);
    q.children <- grown
  end;
  q.children.(slot) <- n.id;
  n.session_in_parent <- slot;
  n.handle_in_parent <- h;
  n.lifecycle <- `Open

let inject ?(mark = 0) t ~leaf ~size_bits =
  let n = t.nodes.(leaf) in
  match n.kind with
  | Interior _ -> invalid_arg "Hier.inject: not a leaf"
  | Leaf_node _ when n.lifecycle <> `Open ->
    invalid_arg "Hier.inject: leaf is closed"
  | Leaf_node l ->
    let now = Engine.Simulator.now t.sim in
    let pkt =
      Net.Packet_pool.alloc ~mark t.pool ~flow:leaf ~seq:l.next_seq ~size_bits
        ~arrival:now
    in
    l.next_seq <- l.next_seq + 1;
    if not (Net.Fifo.push l.fifo pkt) then begin
      t.drops <- t.drops + 1;
      Log.debug (fun m ->
          m "drop at leaf %s: %g bits, queue %g bits full" n.name size_bits
            (Net.Fifo.bits l.fifo));
      t.on_drop pkt ~leaf:n.name now;
      Net.Packet_pool.free t.pool pkt;
      pkt
    end
    else begin
      let q = t.nodes.(n.parent) in
      let q_now = node_now t q in
      (policy_of q).Sched_intf.arrive ~now:q_now ~session:n.session_in_parent ~size_bits;
      if n.logical < 0 then begin
        (* ARRIVE lines 2-3: otherwise the subtree already has a head *)
        n.logical <- pkt;
        (policy_of q).Sched_intf.backlog ~now:q_now ~session:n.session_in_parent
          ~head_bits:size_bits;
        if not q.busy then restart_node t q
      end;
      pkt
    end

(* Batched arrival: [count] same-size packets stamped with a single clock
   read. The clock cannot move during injection, so the result is
   bit-identical to [count] separate injects — only the per-packet lookup
   and stamp overhead is hoisted. *)
let inject_many ?(mark = 0) t ~leaf ~size_bits ~count =
  if count < 0 then invalid_arg "Hier.inject_many: negative count";
  let n = t.nodes.(leaf) in
  match n.kind with
  | Interior _ -> invalid_arg "Hier.inject_many: not a leaf"
  | Leaf_node _ when n.lifecycle <> `Open ->
    invalid_arg "Hier.inject_many: leaf is closed"
  | Leaf_node l ->
    let now = Engine.Simulator.now t.sim in
    for _ = 1 to count do
      let pkt =
        Net.Packet_pool.alloc ~mark t.pool ~flow:leaf ~seq:l.next_seq ~size_bits
          ~arrival:now
      in
      l.next_seq <- l.next_seq + 1;
      if not (Net.Fifo.push l.fifo pkt) then begin
        t.drops <- t.drops + 1;
        t.on_drop pkt ~leaf:n.name now;
        Net.Packet_pool.free t.pool pkt
      end
      else begin
        let q = t.nodes.(n.parent) in
        let q_now = node_now t q in
        (policy_of q).Sched_intf.arrive ~now:q_now ~session:n.session_in_parent
          ~size_bits;
        if n.logical < 0 then begin
          n.logical <- pkt;
          (policy_of q).Sched_intf.backlog ~now:q_now ~session:n.session_in_parent
            ~head_bits:size_bits;
          if not q.busy then restart_node t q
        end
      end
    done

let set_burst_max t n =
  if n < 1 then invalid_arg "Hier.set_burst_max: burst_max must be >= 1";
  t.burst_max <- n

let burst_max t = t.burst_max

let queue_bits t ~leaf =
  match t.nodes.(leaf).kind with
  | Leaf_node { fifo; _ } -> Net.Fifo.bits fifo
  | Interior _ -> invalid_arg "Hier.queue_bits: not a leaf"

let node_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> t.nodes.(id)
  | None -> raise Not_found

let departed_bits t ~node = t.departed_bits.((node_by_name t node).id)
let ref_time t ~node = t.tn.((node_by_name t node).id)

let node_virtual_time t ~node =
  let n = node_by_name t node in
  (policy_of n).Sched_intf.virtual_time ~now:(node_now t n)

let link_busy t = t.link_busy
let drops t = t.drops

(* -- Observability ------------------------------------------------------- *)

let compose_leaf_cb f g =
  if f == nop_leaf_cb then g else fun pkt ~leaf now -> f pkt ~leaf now; g pkt ~leaf now

let add_depart_handle_hook t f = t.on_depart <- compose_leaf_cb t.on_depart f
let add_drop_handle_hook t f = t.on_drop <- compose_leaf_cb t.on_drop f
let add_transmit_start_handle_hook t f =
  t.on_transmit_start <- compose_leaf_cb t.on_transmit_start f

let boxed t f =
  fun h ~leaf now -> f (Net.Packet_pool.to_packet t.pool h) ~leaf now

let add_depart_hook t f = add_depart_handle_hook t (boxed t f)
let add_drop_hook t f = add_drop_handle_hook t (boxed t f)
let add_transmit_start_hook t f = add_transmit_start_handle_hook t (boxed t f)
let root_name t = t.nodes.(t.root).name
let node_name t id = t.nodes.(id).name

let iter_interior t f =
  Array.iter
    (fun n ->
      match n.kind with
      | Leaf_node _ -> ()
      | Interior { policy } ->
        f ~id:n.id ~name:n.name ~level:n.level ~children:n.children ~policy)
    t.nodes

let node_count t = Array.length t.nodes

let leaf_path t ~leaf =
  match t.nodes.(leaf).kind with
  | Leaf_node _ -> Array.copy t.paths.(leaf)
  | Interior _ -> invalid_arg "Hier.leaf_path: not a leaf"

let set_node_observer t ~node observer =
  let n = node_by_name t node in
  (policy_of n).Sched_intf.set_observer observer
