(** H-WF²Q+ fast path: the {!Hier} algorithm monomorphized over
    {!Wf2q_plus}, with every piece of state flattened into unboxed arrays.

    Same semantics as
    [Hier.create ~make_policy:(Hier.uniform Wf2q_plus.factory)] — the ARRIVE
    / RESTART-NODE / RESET-PATH procedures of paper §4 over eq. 27/28/29
    one-level nodes, identical {!Sched.Float_cmp} slack and
    {!Prioq.Indexed_heap4} tie-breaking — so the two engines produce
    bit-identical departure orders and clocks (enforced by the qcheck
    lockstep differential in the test suite). What changes is the machine
    shape: per-node fields are struct-of-arrays indexed by node id,
    per-(node,session) WF²Q+ stamps live in arena arrays indexed by
    [session_base.(node) + slot], leaf→root paths are precomputed, and every
    policy operation is a direct static call instead of a
    {!Sched.Sched_intf.t} closure — no boxed floats at call boundaries, no
    per-call observer record chasing.

    Use this engine for WF²Q+-at-every-node trees (the paper's headline
    system); mixed-discipline hierarchies still go through the generic
    {!Hier}. The {!Hier_engine} facade picks automatically.

    Node ids are assigned in the same preorder as {!Hier.create}, so ids,
    names, and per-node counters line up across engines.

    Packets live in a per-hierarchy {!Net.Packet_pool}; the engine moves
    immediate int handles and a boxed {!Net.Packet.t} is materialised only
    inside the boxed hook wrappers. *)

type t

val create :
  sim:Engine.Simulator.t ->
  spec:Class_tree.t ->
  ?root_clock:[ `Real_time | `Reference_time ] ->
  ?on_depart:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?burst_max:int ->
  unit ->
  t
(** Every interior node runs WF²Q+ over its children; [root_clock] has the
    same meaning as in {!Hier.create}, [burst_max] (default 1) as in
    {!Server.create} — departure times, stamps and callback order are
    bit-identical at every setting.
    @raise Invalid_argument if [spec] fails {!Class_tree.validate}, its
    root is a leaf, or [burst_max < 1]. *)

val set_burst_max : t -> int -> unit
(** Change the burst cap; takes effect from the next drain activation.
    @raise Invalid_argument if the argument is [< 1]. *)

val burst_max : t -> int

val leaf_id : t -> string -> Hier.leaf
(** Leaf identities share {!Hier.leaf}, so code written against one engine
    (or the {!Hier_engine} facade) type-checks against the other.
    @raise Not_found if no node has that name.
    @raise Invalid_argument if the name belongs to an interior node. *)

val leaf_name : t -> Hier.leaf -> string
val leaf_ids : t -> (string * Hier.leaf) list

val pool : t -> Net.Packet_pool.t
(** The hierarchy's packet arena (to read fields of a handle inside a
    [_handle_] hook, or to materialise a boxed view). *)

val inject : ?mark:int -> t -> leaf:Hier.leaf -> size_bits:float -> Net.Packet_pool.handle
(** Same contract as {!Hier.inject}: returns the packet's pool handle; if
    the queue was full the drop callback has already fired and the handle
    is already recycled (stale).
    @raise Invalid_argument if the leaf is closed or closing. *)

val inject_many : ?mark:int -> t -> leaf:Hier.leaf -> size_bits:float -> count:int -> unit
(** [count] same-size packets arrive back to back at the current simulation
    time. After the first packet the subtree already has a logical head, so
    each further packet is one FIFO push plus one (observer-only) arrive —
    the batched form of the common backlog-building loop. *)

val close_leaf : t -> leaf:Hier.leaf -> policy:Sched.Sched_intf.close_policy -> unit
(** Same contract as {!Hier.close_leaf}: idle leaves close immediately,
    [`Drain] keeps the schedule place until the queue empties, [`Drop]
    hands queued packets to the drop callback and retracts the committed
    head from every ancestor (the wire packet, if it is this leaf's,
    always finishes and completes the close at departure). *)

val reopen_leaf : ?rate:float -> t -> leaf:Hier.leaf -> unit
(** Same contract as {!Hier.reopen_leaf}: re-opens a closed leaf in place
    with fresh WF²Q+ stamps, optionally at a new [rate]. *)

val leaf_state : t -> leaf:Hier.leaf -> [ `Open | `Closing | `Closed ]

val queue_bits : t -> leaf:Hier.leaf -> float
val departed_bits : t -> node:string -> float
val ref_time : t -> node:string -> float

val node_virtual_time : t -> node:string -> float
(** @raise Invalid_argument if the named node is a leaf. *)

val link_busy : t -> bool
val drops : t -> int

(** {2 Observability}

    Mirrors {!Hier}: packet-level hooks at the link, a per-node
    {!Sched.Sched_intf.observer} slot at each interior node. With no
    observer installed the per-operation cost is one array load and a
    branch. *)

val add_depart_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
(** Materialises a boxed packet per departure; prefer the [_handle_]
    variant on hot paths. *)

val add_drop_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
val add_transmit_start_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit

val add_depart_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit
(** Allocation-free {!add_depart_hook}: the callback receives the pool
    handle, valid for the duration of the call only. *)

val add_drop_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val add_transmit_start_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val root_name : t -> string
val node_name : t -> int -> string
val node_count : t -> int

val leaf_path : t -> leaf:Hier.leaf -> int array
(** The precomputed leaf→root path (leaf first, root last).
    @raise Invalid_argument if [leaf] is interior. *)

val iter_interior :
  t -> (id:int -> name:string -> level:int -> children:int array -> unit) -> unit
(** Visit every interior node in id (preorder) order. [children.(s)] is the
    node id behind session slot [s]. Unlike {!Hier.iter_interior} there is
    no [policy] argument — install observers via {!set_node_observer_id}. *)

val set_node_observer : t -> node:string -> Sched.Sched_intf.observer option -> unit
(** @raise Not_found if no such node.
    @raise Invalid_argument if the node is a leaf. *)

val set_node_observer_id : t -> node:int -> Sched.Sched_intf.observer option -> unit
(** Same, by node id (as handed to {!iter_interior}). *)
