(** Link-sharing class hierarchies (the trees of paper Figs. 1, 3, 8).

    A spec is a value describing the tree: interior nodes carry a name and a
    guaranteed rate; leaves additionally may bound their physical queue.
    Rates are absolute (bits/second); the paper's shares [φ_n] are recovered
    as [rate(n)/rate(parent n)]. The paper assumes
    [Σ_{m ∈ child(n)} φ_m = φ_n]; {!validate} enforces the corresponding
    rate identity (children sum to at most the parent, within tolerance). *)

type t =
  | Leaf of { name : string; rate : float; queue_capacity_bits : float option }
  | Node of { name : string; rate : float; children : t list }

val leaf : ?queue_capacity_bits:float -> string -> rate:float -> t
val node : string -> rate:float -> t list -> t

val node_share : string -> share:float -> parent_rate:float -> (float -> t list) -> t
(** Convenience for writing trees the way the paper labels them (share of
    parent): [node_share name ~share ~parent_rate children] creates a node
    of rate [share *. parent_rate] and passes that rate to [children]. *)

val name : t -> string
val rate : t -> float
val children : t -> t list
val is_leaf : t -> bool

val with_queue_caps : float -> t -> t
(** [with_queue_caps bits t] bounds every leaf's physical queue to [bits]
    (overwriting any existing cap). Used where a tree is replicated many
    times — e.g. once per output link of a sharded device — and unbounded
    queues under overload would be a memory bug rather than a modeling
    choice.
    @raise Invalid_argument if [bits <= 0]. *)

val validate : t -> (unit, string list) result
(** Checks: positive rates; unique names; interior nodes have ≥1 child;
    child rates sum to ≤ parent rate (tolerance 1e-6 relative). *)

val leaves : t -> (string * float) list
(** Leaf names with rates, left-to-right. *)

val depth : t -> int
(** 1 for a bare leaf; a one-level server (root + leaves) has depth 2. *)

val count_nodes : t -> int

val find_path : t -> string -> t list option
(** Path from the root to the named node, inclusive; [None] if absent. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering with rates and shares. *)
