let wf2q_plus = Wf2q_plus.factory
let wf2q_plus_fixed = Wf2q_plus_fixed.factory
let wf2q_plus_per_packet = Wf2q_plus_stamped.factory
let wfq = Sched.Gps_based.wfq
let wf2q = Sched.Gps_based.wf2q
let scfq = Sched.Self_clocked.scfq
let sfq = Sched.Self_clocked.sfq
let virtual_clock = Sched.Virtual_clock.factory
let drr = Sched.Round_robin.drr ()
let wrr = Sched.Round_robin.wrr ()
let fifo = Sched.Fifo_sched.factory

let all =
  [
    wf2q_plus; wf2q_plus_fixed; wf2q_plus_per_packet; wfq; wf2q; scfq; sfq;
    virtual_clock; drr; wrr; fifo;
  ]
let pfq = [ wf2q_plus; wf2q_plus_fixed; wf2q_plus_per_packet; wfq; wf2q; scfq; sfq ]

let find kind =
  let kind = String.lowercase_ascii kind in
  List.find_opt
    (fun f -> String.lowercase_ascii f.Sched.Sched_intf.kind = kind)
    all
