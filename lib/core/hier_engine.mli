(** Engine selection facade over the two H-PFQ implementations.

    [`Generic] is {!Hier} — any {!Sched.Sched_intf.factory} at every node,
    the audited reference. [`Flat] is {!Hier_flat} — the monomorphic WF²Q+
    fast path. [`Auto] (the default) picks flat when the requested factory
    is WF²Q+ and generic otherwise, so WF²Q+-only trees (the paper's
    headline system) get the fast engine without callers caring.

    Both engines are driven through the shared subset of their surfaces
    below; use {!generic}/{!flat} to reach engine-specific APIs (e.g.
    per-node observers through {!Obs}' attach functions). *)

(** The [`Subtree] engine ({!Shard.Subtree}, the subtree-sharded epoch
    engine) lives in a library layered above this one, so the facade holds
    it as a record of closures built by a registered constructor — see
    {!set_subtree_builder}. *)
type subtree_ops = {
  st_kind_name : string;
  st_set_burst_max : int -> unit;
  st_burst_max : unit -> int;
  st_leaf_id : string -> Hier.leaf;
  st_leaf_name : Hier.leaf -> string;
  st_leaf_ids : unit -> (string * Hier.leaf) list;
  st_inject : mark:int -> leaf:Hier.leaf -> size_bits:float -> Net.Packet_pool.handle;
  st_inject_many : mark:int -> leaf:Hier.leaf -> size_bits:float -> count:int -> unit;
  st_close_leaf : leaf:Hier.leaf -> policy:Sched.Sched_intf.close_policy -> unit;
  st_reopen_leaf : rate:float option -> leaf:Hier.leaf -> unit;
  st_leaf_state : leaf:Hier.leaf -> [ `Open | `Closing | `Closed ];
  st_queue_bits : leaf:Hier.leaf -> float;
  st_departed_bits : node:string -> float;
  st_ref_time : node:string -> float;
  st_node_virtual_time : node:string -> float;
  st_link_busy : unit -> bool;
  st_drops : unit -> int;
  st_add_depart_hook : (Net.Packet.t -> leaf:string -> float -> unit) -> unit;
  st_add_drop_hook : (Net.Packet.t -> leaf:string -> float -> unit) -> unit;
  st_add_transmit_start_hook : (Net.Packet.t -> leaf:string -> float -> unit) -> unit;
  st_add_depart_handle_hook :
    (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit;
  st_add_drop_handle_hook :
    (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit;
  st_add_transmit_start_handle_hook :
    (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit;
  st_pool : unit -> Net.Packet_pool.t;
  st_root_name : unit -> string;
  st_node_name : int -> string;
  st_node_count : unit -> int;
  st_leaf_path : leaf:Hier.leaf -> int array;
}

type t =
  | Generic of Hier.t
  | Flat of Hier_flat.t
  | Subtree_sharded of subtree_ops

type choice = [ `Generic | `Flat | `Auto | `Subtree ]

val choice_of_string : string -> (choice, string) result
(** Parses ["generic" | "flat" | "auto" | "subtree"] (the [--hier-engine]
    CLI values). *)

val choice_to_string : choice -> string

type subtree_builder =
  sim:Engine.Simulator.t ->
  spec:Class_tree.t ->
  root_clock:[ `Real_time | `Reference_time ] ->
  on_depart:(Net.Packet.t -> leaf:string -> float -> unit) option ->
  on_drop:(Net.Packet.t -> leaf:string -> float -> unit) option ->
  burst_max:int ->
  shards:int option ->
  workers:int option ->
  epoch:int ->
  mailbox_capacity:int option ->
  subtree_ops

val set_subtree_builder : subtree_builder -> unit
(** Install the [`Subtree] constructor. Called by [Shard.Subtree.register];
    executables wanting [--hier-engine subtree] run that registration once
    at startup (explicit registration keeps the wiring robust under native
    linking, which may drop unreferenced modules). *)

val set_default_subtree_config :
  ?shards:int -> ?workers:int -> ?epoch:int -> ?mailbox_capacity:int -> unit -> unit
(** Process-wide fallback for the [`Subtree] knobs, used by {!create} when
    the corresponding optional argument is omitted (same pattern as the
    simulator's default event-set backend: experiment drivers build their
    engines internally, so the CLI sets the default rather than threading a
    parameter through every signature). Initial default: [epoch = 1], the
    rest unset. @raise Invalid_argument if [epoch < 1]. *)

val create :
  sim:Engine.Simulator.t ->
  spec:Class_tree.t ->
  factory:Sched.Sched_intf.factory ->
  ?engine:choice ->
  ?root_clock:[ `Real_time | `Reference_time ] ->
  ?on_depart:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?burst_max:int ->
  ?shards:int ->
  ?workers:int ->
  ?epoch:int ->
  ?mailbox_capacity:int ->
  unit ->
  t
(** Uniform [factory] at every interior node (mixed-discipline trees must
    use {!Hier.create} directly — they are generic-only). [burst_max]
    (default 1) is the burst-drain cap, forwarded to the chosen engine;
    departure times, stamps and callback order are bit-identical at every
    setting (see {!Server.create}). [shards], [workers], [epoch] and
    [mailbox_capacity] configure the [`Subtree] engine and are ignored by
    the others; when omitted they fall back to
    {!set_default_subtree_config} (initially [epoch = 1]); see
    [Shard.Subtree.create] for their meaning.
    @raise Invalid_argument if [`Flat] or [`Subtree] is forced with a
    non-WF²Q+ factory, [`Subtree] is requested with no registered builder,
    [spec] is invalid, or [burst_max < 1]. *)

val set_burst_max : t -> int -> unit
(** Change the burst cap; takes effect from the next drain activation.
    @raise Invalid_argument if the argument is [< 1]. *)

val burst_max : t -> int

val kind : t -> [ `Generic | `Flat | `Subtree ]

val kind_name : t -> string
(** ["generic"], ["flat"], or the subtree engine's self-description
    (shards/epoch/workers). *)

val generic : t -> Hier.t option
val flat : t -> Hier_flat.t option

(** {2 Shared surface} — each delegates to the engine's function of the
    same name; see {!Hier} for contracts. *)

val leaf_id : t -> string -> Hier.leaf
val leaf_name : t -> Hier.leaf -> string
val leaf_ids : t -> (string * Hier.leaf) list
val pool : t -> Net.Packet_pool.t
(** The engine's packet arena (to read fields of a handle inside a
    [_handle_] hook). *)

val inject : ?mark:int -> t -> leaf:Hier.leaf -> size_bits:float -> Net.Packet_pool.handle
(** Returns the packet's pool handle; stale already if the queue dropped
    it (the drop callback has fired). *)

val inject_many : ?mark:int -> t -> leaf:Hier.leaf -> size_bits:float -> count:int -> unit
(** Batched arrivals stamped with one clock read — the [enqueue_batch]
    API; bit-identical to [count] separate {!inject} calls. *)

val close_leaf : t -> leaf:Hier.leaf -> policy:Sched.Sched_intf.close_policy -> unit
(** Close a leaf class on either engine; see {!Hier.close_leaf}. *)

val reopen_leaf : ?rate:float -> t -> leaf:Hier.leaf -> unit
(** Re-open a closed leaf; see {!Hier.reopen_leaf}. *)

val leaf_state : t -> leaf:Hier.leaf -> [ `Open | `Closing | `Closed ]

val queue_bits : t -> leaf:Hier.leaf -> float
val departed_bits : t -> node:string -> float
val ref_time : t -> node:string -> float
val node_virtual_time : t -> node:string -> float
val link_busy : t -> bool
val drops : t -> int
val add_depart_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
val add_drop_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
val add_transmit_start_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit

val add_depart_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit
(** Allocation-free hook variants: the callback sees the pool handle, valid
    for the duration of the call only. *)

val add_drop_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val add_transmit_start_handle_hook :
  t -> (Net.Packet_pool.handle -> leaf:string -> float -> unit) -> unit

val root_name : t -> string
val node_name : t -> int -> string
val node_count : t -> int
val leaf_path : t -> leaf:Hier.leaf -> int array
