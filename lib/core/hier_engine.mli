(** Engine selection facade over the two H-PFQ implementations.

    [`Generic] is {!Hier} — any {!Sched.Sched_intf.factory} at every node,
    the audited reference. [`Flat] is {!Hier_flat} — the monomorphic WF²Q+
    fast path. [`Auto] (the default) picks flat when the requested factory
    is WF²Q+ and generic otherwise, so WF²Q+-only trees (the paper's
    headline system) get the fast engine without callers caring.

    Both engines are driven through the shared subset of their surfaces
    below; use {!generic}/{!flat} to reach engine-specific APIs (e.g.
    per-node observers through {!Obs}' attach functions). *)

type t =
  | Generic of Hier.t
  | Flat of Hier_flat.t

type choice = [ `Generic | `Flat | `Auto ]

val choice_of_string : string -> (choice, string) result
(** Parses ["generic" | "flat" | "auto"] (the [--hier-engine] CLI values). *)

val choice_to_string : choice -> string

val create :
  sim:Engine.Simulator.t ->
  spec:Class_tree.t ->
  factory:Sched.Sched_intf.factory ->
  ?engine:choice ->
  ?root_clock:[ `Real_time | `Reference_time ] ->
  ?on_depart:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?burst_max:int ->
  unit ->
  t
(** Uniform [factory] at every interior node (mixed-discipline trees must
    use {!Hier.create} directly — they are generic-only). [burst_max]
    (default 1) is the burst-drain cap, forwarded to the chosen engine;
    departure times, stamps and callback order are bit-identical at every
    setting (see {!Server.create}).
    @raise Invalid_argument if [`Flat] is forced with a non-WF²Q+ factory,
    [spec] is invalid, or [burst_max < 1]. *)

val set_burst_max : t -> int -> unit
(** Change the burst cap; takes effect from the next drain activation.
    @raise Invalid_argument if the argument is [< 1]. *)

val burst_max : t -> int

val kind : t -> [ `Generic | `Flat ]
val kind_name : t -> string

val generic : t -> Hier.t option
val flat : t -> Hier_flat.t option

(** {2 Shared surface} — each delegates to the engine's function of the
    same name; see {!Hier} for contracts. *)

val leaf_id : t -> string -> Hier.leaf
val leaf_name : t -> Hier.leaf -> string
val leaf_ids : t -> (string * Hier.leaf) list
val inject : ?mark:int -> t -> leaf:Hier.leaf -> size_bits:float -> Net.Packet.t

val inject_many : ?mark:int -> t -> leaf:Hier.leaf -> size_bits:float -> count:int -> unit
(** Batched arrivals stamped with one clock read — the [enqueue_batch]
    API; bit-identical to [count] separate {!inject} calls. *)

val close_leaf : t -> leaf:Hier.leaf -> policy:Sched.Sched_intf.close_policy -> unit
(** Close a leaf class on either engine; see {!Hier.close_leaf}. *)

val reopen_leaf : ?rate:float -> t -> leaf:Hier.leaf -> unit
(** Re-open a closed leaf; see {!Hier.reopen_leaf}. *)

val leaf_state : t -> leaf:Hier.leaf -> [ `Open | `Closing | `Closed ]

val queue_bits : t -> leaf:Hier.leaf -> float
val departed_bits : t -> node:string -> float
val ref_time : t -> node:string -> float
val node_virtual_time : t -> node:string -> float
val link_busy : t -> bool
val drops : t -> int
val add_depart_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
val add_drop_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
val add_transmit_start_hook : t -> (Net.Packet.t -> leaf:string -> float -> unit) -> unit
val root_name : t -> string
val node_name : t -> int -> string
val node_count : t -> int
val leaf_path : t -> leaf:Hier.leaf -> int array
