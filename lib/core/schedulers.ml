open Sched

let kinds () = List.map (fun f -> f.Sched_intf.kind) Disciplines.all

let make ?observer ?(initial_sessions = [||]) ~rate factory =
  if rate <= 0.0 then invalid_arg "Schedulers.make: rate must be positive";
  let t = factory.Sched_intf.make ~rate in
  (match observer with None -> () | Some _ -> t.Sched_intf.set_observer observer);
  let handles =
    Array.map (fun r -> t.Sched_intf.open_session ~rate:r) initial_sessions
  in
  (t, handles)

let of_kind ?observer ?initial_sessions ~rate kind =
  match Disciplines.find kind with
  | Some f -> make ?observer ?initial_sessions ~rate f
  | None ->
    invalid_arg
      (Printf.sprintf "Schedulers.of_kind: unknown discipline %S (known: %s)" kind
         (String.concat ", " (kinds ())))

let server ~sim ?observer ?(initial_sessions = [||]) ?on_depart ?on_drop ~rate factory
    () =
  let policy, _ = make ?observer ~rate factory in
  let srv = Server.create ~sim ~rate ~policy ?on_depart ?on_drop () in
  let handles =
    Array.map (fun r -> Server.open_session srv ~rate:r ()) initial_sessions
  in
  (srv, handles)

let hier ~sim ~spec ?(factory = Disciplines.wf2q_plus) ?engine ?root_clock ?on_depart
    ?on_drop () =
  Hier_engine.create ~sim ~spec ~factory ?engine ?root_clock ?on_depart ?on_drop ()
