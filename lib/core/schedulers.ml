open Sched

let kinds () = List.map (fun f -> f.Sched_intf.kind) Disciplines.all

(* [initial_sessions] are *guaranteed* rates: a sum beyond the link rate
   cannot be honoured, and the GPS-exact disciplines would quietly run
   their fluid clock at slope < 1. Reject it here, before any session
   opens, so a bad spec cannot half-construct. *)
let check_admissible ~rate initial_sessions =
  let sum = Array.fold_left ( +. ) 0.0 initial_sessions in
  if sum > rate then
    invalid_arg
      (Printf.sprintf
         "Schedulers: initial session rates sum to %g, exceeding the link rate %g"
         sum rate)

let make ?observer ?(initial_sessions = [||]) ~rate factory =
  if rate <= 0.0 then invalid_arg "Schedulers.make: rate must be positive";
  check_admissible ~rate initial_sessions;
  let t = factory.Sched_intf.make ~rate in
  (match observer with None -> () | Some _ -> t.Sched_intf.set_observer observer);
  let handles =
    Array.map (fun r -> t.Sched_intf.open_session ~rate:r) initial_sessions
  in
  (t, handles)

let of_kind ?observer ?initial_sessions ~rate kind =
  match Disciplines.find kind with
  | Some f -> make ?observer ?initial_sessions ~rate f
  | None ->
    invalid_arg
      (Printf.sprintf "Schedulers.of_kind: unknown discipline %S (known: %s)" kind
         (String.concat ", " (kinds ())))

let server ~sim ?observer ?(initial_sessions = [||]) ?on_depart ?on_drop ~rate factory
    () =
  check_admissible ~rate initial_sessions;
  let policy, _ = make ?observer ~rate factory in
  let srv = Server.create ~sim ~rate ~policy ?on_depart ?on_drop () in
  let handles =
    Array.map (fun r -> Server.open_session srv ~rate:r ()) initial_sessions
  in
  (srv, handles)

let hier ~sim ~spec ?(factory = Disciplines.wf2q_plus) ?engine ?root_clock ?on_depart
    ?on_drop ?burst_max ?shards ?workers ?epoch ?mailbox_capacity () =
  Hier_engine.create ~sim ~spec ~factory ?engine ?root_clock ?on_depart ?on_drop
    ?burst_max ?shards ?workers ?epoch ?mailbox_capacity ()
