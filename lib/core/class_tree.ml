type t =
  | Leaf of { name : string; rate : float; queue_capacity_bits : float option }
  | Node of { name : string; rate : float; children : t list }

let leaf ?queue_capacity_bits name ~rate = Leaf { name; rate; queue_capacity_bits }
let node name ~rate children = Node { name; rate; children }

let node_share name ~share ~parent_rate make_children =
  let rate = share *. parent_rate in
  Node { name; rate; children = make_children rate }

let name = function Leaf { name; _ } | Node { name; _ } -> name
let rate = function Leaf { rate; _ } | Node { rate; _ } -> rate
let children = function Leaf _ -> [] | Node { children; _ } -> children
let is_leaf = function Leaf _ -> true | Node _ -> false

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let seen = Hashtbl.create 16 in
  let rec walk t =
    let n = name t and r = rate t in
    if Hashtbl.mem seen n then err "duplicate node name %S" n;
    Hashtbl.replace seen n ();
    if r <= 0.0 then err "node %S has non-positive rate %g" n r;
    match t with
    | Leaf { queue_capacity_bits = Some c; _ } when c <= 0.0 ->
      err "leaf %S has non-positive queue capacity %g" n c
    | Leaf _ -> ()
    | Node { children = []; _ } -> err "interior node %S has no children" n
    | Node { children; rate = node_rate; _ } ->
      let child_sum = List.fold_left (fun acc c -> acc +. rate c) 0.0 children in
      if child_sum > node_rate *. (1.0 +. 1e-6) then
        err "children of %S reserve %g > node rate %g" n child_sum node_rate;
      List.iter walk children
  in
  walk t;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let with_queue_caps bits t =
  if bits <= 0.0 then
    invalid_arg
      (Printf.sprintf "Class_tree.with_queue_caps: capacity must be positive, got %g" bits);
  let rec cap = function
    | Leaf l -> Leaf { l with queue_capacity_bits = Some bits }
    | Node n -> Node { n with children = List.map cap n.children }
  in
  cap t

let leaves t =
  let rec walk acc = function
    | Leaf { name; rate; _ } -> (name, rate) :: acc
    | Node { children; _ } -> List.fold_left walk acc children
  in
  List.rev (walk [] t)

let rec depth = function
  | Leaf _ -> 1
  | Node { children; _ } ->
    1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children

let rec count_nodes = function
  | Leaf _ -> 1
  | Node { children; _ } ->
    List.fold_left (fun acc c -> acc + count_nodes c) 1 children

let find_path t target =
  let rec walk path t =
    let path = t :: path in
    if String.equal (name t) target then Some (List.rev path)
    else
      List.fold_left
        (fun found c -> match found with Some _ -> found | None -> walk path c)
        None (children t)
  in
  walk [] t

let pp fmt t =
  let rec walk indent parent_rate t =
    let share = rate t /. parent_rate in
    Format.fprintf fmt "%s%s %s (%a, share %.3g)@."
      indent
      (if is_leaf t then "leaf" else "node")
      (name t) Engine.Units.pp_rate (rate t) share;
    List.iter (walk (indent ^ "  ") (rate t)) (children t)
  in
  walk "" (rate t) t
