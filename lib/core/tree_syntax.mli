(** Textual syntax for class hierarchies, for config files and the CLI.

    Grammar (whitespace-insensitive):
    {v
      tree  ::= node
      node  ::= NAME RATE cap? body?
      body  ::= '{' node (';' node)* '}'
      cap   ::= '[' RATE ']'                  (leaf queue capacity, bits)
      RATE  ::= FLOAT ('' | 'K' | 'M' | 'G')  (bits per second)
      NAME  ::= [A-Za-z0-9_./-]+
    v}

    Example:
    {v
      link 44.44M {
        N-2 22.22M {
          N-1 11.11M { RT-1 9M [512K]; BE-1 2.11M };
          CS-1 1.111M
        };
        PS-1 2.222M
      }
    v} *)

val parse : string -> (Class_tree.t, string) result
(** Parse and {!Class_tree.validate}; the error carries position context. *)

val parse_file : string -> (Class_tree.t, string) result

val to_string : Class_tree.t -> string
(** Render in the same syntax, indented; [parse (to_string t)] yields a
    tree equal to [t] (rates within float-printing precision). *)
