(** WF²Q+ on fixed-point virtual time (scaled-integer ticks).

    Same algorithm as {!Wf2q_plus} — eq. 27's
    [V(t+τ) = max(V(t)+τ, min S)], eq. 28's two stamping branches, SEFF
    selection with RESTART-NODE post-dating — but every virtual-time
    quantity is an integer count of ticks, [2^shift] ticks per
    vtime-second (see {!Sched.Fixed}):

    - each session's inverse rate is quantized {e once} at [open_session]
      to an integer ticks-per-bit; stamp updates are then exact integer
      adds, so the engine never accumulates per-packet rounding — a float
      engine's [Σ L/r] drifts with the horizon, this one is bit-stable
      forever (within the [2^(62-shift)]-vtime-second overflow horizon);
    - eligibility ([S ≤ V]) and min-F comparisons are exact int compares:
      no {!Sched.Float_cmp} slack anywhere on the hot path;
    - packet sizes are rounded to whole bits at the interface (the driving
      protocol carries float bits for historical reasons).

    Floats survive only at two boundaries: real time [now] (interpolated
    into ticks across idle gaps) and the observer/stats edge, where tick
    counts convert back to float vtime so the [lib/obs] schemas are
    unchanged.

    The generic float engine remains the cross-checked reference; the
    differential test drives both on dyadic-rate traces where their
    departure orders must agree exactly. *)

type t

val create : ?shift:int -> rate:float -> unit -> t
(** [create ~rate ()] builds an engine for a server of [rate] bits per
    second of server time, with [2^shift] ticks per vtime-second
    (default {!Sched.Fixed.default_shift}).
    @raise Invalid_argument if [rate <= 0]. *)

val policy : t -> Sched.Sched_intf.t
(** The engine as a one-level building block (name ["WF2Q+fx"]). *)

val shift : t -> int

val v_ticks : t -> int
(** Raw fixed-point virtual time, for drift instrumentation: the soak
    harness compares this (exact) accumulator against a closed-form
    integer recomputation and against the float reference engine. *)

val make : rate:float -> Sched.Sched_intf.t
(** [create] + [policy] with the default shift. *)

val factory : Sched.Sched_intf.factory
