(** The unified scheduler-construction surface.

    Historically each discipline grew its own entry point — [Wf2q_plus.make],
    [Sched.Gps_based.wfq], [Sched.Round_robin.drr ()], [Hier.create],
    [Hier_flat.create] — with drifting signatures. This module is the one
    front door: every constructor takes the same labelled arguments
    ([~rate], [?observer], [?initial_sessions]) and returns the policy
    together with the generation-tagged handles of any sessions opened at
    construction. The per-discipline factories and [create] functions remain
    as the plumbing underneath (and for code that needs a discipline's
    extended surface, e.g. {!Wf2q_plus_fixed.v_ticks}), but are deprecated
    as the default way to build a scheduler.

    Sessions opened later go through {!Sched.Sched_intf.open_session} /
    [close_session] on the returned policy — see {!Sched.Session_pool} for
    the arena/generation semantics. *)

val kinds : unit -> string list
(** Registered discipline kinds, in {!Disciplines.all} order
    (e.g. ["WF2Q+"; "WF2Q+fx"; ...]). *)

val make :
  ?observer:Sched.Sched_intf.observer ->
  ?initial_sessions:float array ->
  rate:float ->
  Sched.Sched_intf.factory ->
  Sched.Sched_intf.t * Sched.Session_handle.t array
(** [make ~rate factory] builds a standalone one-level policy serving at
    [rate] bits/second. [initial_sessions] gives the guaranteed rates of
    sessions to open immediately; [handles.(i)] is the handle of the
    session opened with [initial_sessions.(i)] (slots are dense from 0 on a
    fresh policy). [observer] is installed before any session opens.
    @raise Invalid_argument if [rate] or any session rate is non-positive,
    or if the session rates sum to more than [rate] — they are guaranteed
    rates and an oversubscribed link cannot honour them. Nothing is
    constructed when the check fails. *)

val of_kind :
  ?observer:Sched.Sched_intf.observer ->
  ?initial_sessions:float array ->
  rate:float ->
  string ->
  Sched.Sched_intf.t * Sched.Session_handle.t array
(** {!make} by case-insensitive kind name ({!Disciplines.find}).
    @raise Invalid_argument on an unknown kind. *)

val server :
  sim:Engine.Simulator.t ->
  ?observer:Sched.Sched_intf.observer ->
  ?initial_sessions:float array ->
  ?on_depart:(Net.Packet.t -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> float -> unit) ->
  rate:float ->
  Sched.Sched_intf.factory ->
  unit ->
  Server.t * Sched.Session_handle.t array
(** A complete one-level output port: {!make} plus {!Server.create} around
    it, with [initial_sessions] opened through the server (so the server's
    per-session queues exist). *)

val hier :
  sim:Engine.Simulator.t ->
  spec:Class_tree.t ->
  ?factory:Sched.Sched_intf.factory ->
  ?engine:Hier_engine.choice ->
  ?root_clock:[ `Real_time | `Reference_time ] ->
  ?on_depart:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?on_drop:(Net.Packet.t -> leaf:string -> float -> unit) ->
  ?burst_max:int ->
  ?shards:int ->
  ?workers:int ->
  ?epoch:int ->
  ?mailbox_capacity:int ->
  unit ->
  Hier_engine.t
(** A hierarchical server over [spec] with a uniform discipline at every
    interior node (default WF²Q+, giving H-WF²Q+ on the fast flat engine
    via [`Auto]). Delegates to {!Hier_engine.create}; mixed-discipline
    trees still call {!Hier.create} directly. Leaf lifecycle (close /
    reopen) is on the returned engine: {!Hier_engine.close_leaf}.
    [shards]/[workers]/[epoch]/[mailbox_capacity] configure the [`Subtree]
    engine (see {!Hier_engine.create}) and are ignored by the others. *)
