(** WF²Q+ — the paper's core contribution (§3.4).

    A Smallest-Eligible-virtual-Finish-time-First (SEFF) scheduler driven by
    the low-complexity virtual-time function of eq. 27:

    {v V(t+τ) = max( V(t)+τ , min_{i∈B̂(t)} S_i ) v}

    together with per-session start/finish stamps (eqs. 28–29): a packet
    reaching the head of a previously-empty session queue stamps
    [S_i = max(F_i, V(now))]; one reaching the head of a continuously
    backlogged queue stamps [S_i = F_i]; in both cases
    [F_i = S_i + L/r_i].

    Implementation: backlogged sessions are split into an {e eligible} set
    ([S_i ≤ V], an indexed heap keyed by [F_i]) and a {e waiting} set (keyed
    by [S_i]). [select]:

    + advances [V] by the server time elapsed since the last selection
      (the [V(t)+τ] term — zero when driven in reference time, where the
      τ advance is folded into the per-service [L/r] step),
    + lifts [V] to [min S] when no session is eligible (the max-with-min
      term, which both caps the WFI of newly backlogged sessions and makes
      SEFF work-conserving),
    + migrates newly eligible sessions, pops the smallest finish time, and
      post-dates [V] and its timestamp by [L_selected/r] exactly as lines
      12–13 of RESTART-NODE do.

    Every operation is O(log N). Properties (Theorem 4): work-conserving;
    B-WFI [α_i = L_i,max + (L_max−L_i,max)·r_i/r]; delay bound
    [σ_i/r_i + L_max/r] for a [(σ_i, r_i)]-leaky-bucket session. The test
    suite checks all three empirically. *)

val make : rate:float -> Sched.Sched_intf.t
(** @deprecated Build through {!Schedulers.make} (the unified [~rate] /
    [?observer] / [?initial_sessions] surface); [make] remains as its
    plumbing. *)

val factory : Sched.Sched_intf.factory
