(** Analytical bounds from the paper, §3.2–§3.4.

    These calculators turn a {!Class_tree.t} plus packet-size assumptions
    into the numbers the theorems promise; the test-suite and the bench
    harness compare measured behaviour against them. Quantities follow the
    paper's notation: B-WFI [α] in bits, T-WFI [𝒜 = α/r_i] in seconds. *)

val bwfi_wf2q : l_i_max:float -> l_max:float -> r_i:float -> r:float -> float
(** Theorem 3(2)/4(2): [α_i = L_i,max + (L_max − L_i,max)·r_i/r]. Applies to
    both WF²Q and WF²Q+. *)

val twfi_of_bwfi : bwfi:float -> r_i:float -> float
(** [𝒜_{i,s} = α_{i,s}/r_i] (equivalence shown below eq. 15). *)

val bwfi_wfq_worst_case : n:int -> l_max:float -> r_i:float -> r:float -> float
(** The WFQ discrepancy demonstrated in §3.1: a session can be served up to
    ~N/2 packets ahead of GPS, so sessions sharing the server can be starved
    for about [N·L_max/2 / r] seconds; expressed as bits at rate [r_i] plus
    the packet in service. This is the {e order} of WFQ's WFI (it "grows
    proportionally to the number of queues"), used to size expectations in
    benches, not a tight constant. *)

val delay_bound_standalone_wf2q :
  sigma:float -> r_i:float -> l_max:float -> r:float -> float
(** Theorem 3(3)/4(3): [σ_i/r_i + L_max/r] for a [(σ_i, r_i)]-constrained
    session on a standalone WF²Q(+) server. *)

(** Per-node B-WFI assumptions used when composing bounds over a tree. *)
type node_alpha = { node : string; alpha : float; rate : float }

val hier_bwfi :
  tree:Class_tree.t -> leaf:string -> alpha_of:(node:string -> rate:float -> parent_rate:float -> float) ->
  (float, string) result
(** Theorem 1: [α_{i,H-PFQ} = Σ_{h=0}^{H-1} (φ_i/φ_{p^h(i)}) · α_{p^h(i)}]
    where [alpha_of] supplies the B-WFI guaranteed to the logical queue at
    each node on the leaf-to-root path (the leaf itself at [h = 0] up to the
    root's child at [h = H−1]). Rates are absolute, so
    [φ_i/φ_{p^h(i)} = r_i/r_{p^h(i)}]. *)

val hier_delay_bound :
  tree:Class_tree.t -> leaf:string -> sigma:float -> l_max:float -> (float, string) result
(** Corollary 2 for H-WF²Q+ with [L_max = L_i,max]:
    [σ_i/r_i + Σ_{h=0}^{H-1} L_max/r_{p^h(i)}]. *)

val hier_delay_bound_via_wfi :
  tree:Class_tree.t -> leaf:string -> sigma:float -> l_max:float -> (float, string) result
(** Corollary 1 (looser): [σ_i/r_i + Σ_h α_{p^h(i)}/r_{p^h(i)}] with the
    WF²Q+ per-node [α] of Theorem 4. Dominates {!hier_delay_bound}; exposed
    so tests can check the ordering of the two bounds. *)

val path_rates : tree:Class_tree.t -> leaf:string -> (float list, string) result
(** Rates [r_{p^0(i)} … r_{p^H(i)}] from the leaf up to and including the
    root; building block for custom bounds. *)

val epoch_lag_bound : epoch:int -> l_max:float -> rate:float -> float
(** [(epoch − 1) · L_max / rate]: per-session service lag of the
    subtree-sharded engine's epoch-batched root sync ([Shard.Subtree],
    [epoch = k]) against the sequential H-WF²Q+ schedule.

    Derivation, in the paper's service-lag algebra: with epoch [k] the
    engine integrates a staged arrival at latest [k−1] link departures
    after the sequential schedule saw it (the in-flight packet blocks both
    schedules, the sync fires before the root's next selection), so every
    eq. 28 stamp on the packet's path shifts by at most the real time those
    departures occupy — at most [k−1] maximal packets' worth of link time —
    and a session guaranteed rate [rate] converts that shift into at most
    [(k−1) · L_max / rate] of service lag. At [k = 1] the bound is [0]:
    the engine is bit-identical to the sequential schedule. Asserted
    against measured per-packet departure-time lag on random trees in
    test/test_subtree.ml.
    @raise Invalid_argument if [epoch < 1], [l_max <= 0] or [rate <= 0]. *)
