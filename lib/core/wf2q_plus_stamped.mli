(** WF²Q+ with {e per-packet} virtual time stamps — the ablation of the
    paper's eq. 28–29 simplification.

    The original WFQ/WF²Q definition (eqs. 6–7) stamps every packet at its
    {e arrival}: [S_i^k = max(F_i^{k−1}, V(a_i^k))], [F_i^k = S_i^k + L/r_i]
    — which in a real implementation means carrying timestamps per packet
    ("stamping the values in the header", as §3.4 notes, unacceptable for
    ATM-size packets). WF²Q+ replaces this with one [(S_i, F_i)] pair per
    session, updated when a packet reaches the head of its queue.

    This module keeps the WF²Q+ virtual-time function (eq. 27) but uses the
    per-packet stamping, so the pair ({!Wf2q_plus}, this) isolates exactly
    the stamping design decision. For FIFO session queues the two schedules
    coincide except for occasional transpositions of adjacent services
    (arrival stamping lifts S to V(a) when eq. 27's V has overtaken the
    session's previous finish tag; head stamping chains S = F regardless);
    a qcheck property verifies every packet departs within one max-packet
    transmission time of its departure under {!Wf2q_plus}. *)

val make : rate:float -> Sched.Sched_intf.t
(** @deprecated Prefer the unified constructor surface in
    [Hpfq.Schedulers]; this per-discipline entry point remains as its
    plumbing. *)

val factory : Sched.Sched_intf.factory
