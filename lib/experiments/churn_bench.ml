(* Session-churn benchmark (bench id "churn") and the virtual-time soak
   harness.

   The churn grid answers the lifecycle tentpole's scaling question: with
   10^5-10^6 sessions open on one policy, how many open/close events per
   second does the arena/freelist path sustain while the scheduler keeps
   serving? Each cell ramps N sessions up, then runs a steady churn loop
   — pick a random session, make it backlogged, close it `Drop (heap
   removal + slot free), open a replacement (slot reuse + fresh stamps) —
   on both the fixed-point engine (the headline) and the float reference.

   The soak harness quantifies eq. 27-29 drift: a continuously backlogged
   session whose per-service virtual-time increment is non-dyadic
   (rate 0.3, so L/r has no finite binary representation). The float
   engine folds [n] rounded additions into V; the fixed engine adds exact
   integer ticks. Drift is measured against the exact value of
   [n * step] — for the float engine via an FMA-compensated product (the
   accumulated-sum error, isolated from the one rounding in the
   reference), for the fixed engine as an integer difference that is
   provably zero. *)

module Json = Bench_kit.Json
module Intf = Sched.Sched_intf

(* -- churn grid ---------------------------------------------------------- *)

type row = {
  engine : string;
  sessions : int;
  ramp_opens_per_sec : float;
  churn_events_per_sec : float;
  minor_words_per_event : float;
  live_after : int;
}

let engines = [ Hpfq.Disciplines.wf2q_plus_fixed; Hpfq.Disciplines.wf2q_plus ]
let headline_engine = Hpfq.Disciplines.wf2q_plus_fixed.Intf.kind
let default_floor = 1.0e5
let session_grid ~quick = if quick then [ 10_000 ] else [ 100_000; 1_000_000 ]
let headline_sessions ~quick = List.fold_left max 0 (session_grid ~quick)
let churn_iters ~quick = if quick then 20_000 else 200_000

let measure ~factory ~sessions ~iters () =
  let policy, _ = Hpfq.Schedulers.make ~rate:1.0 factory in
  let r = 1.0 /. float_of_int sessions in
  let handles = Array.make sessions (Sched.Session_handle.of_int_unsafe 0) in
  let t0 = Unix.gettimeofday () in
  for i = 0 to sessions - 1 do
    handles.(i) <- policy.Intf.open_session ~rate:r
  done;
  let ramp_wall = Unix.gettimeofday () -. t0 in
  let rng = Engine.Rng.create 0x5EEDL in
  let now = ref 0.0 in
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    let idx = Engine.Rng.int rng sessions in
    let h = handles.(idx) in
    (* close under backlog: the expensive path (heap removal + retract) *)
    let s = policy.Intf.session_of_handle h in
    policy.Intf.backlog ~now:!now ~session:s ~head_bits:1.0;
    policy.Intf.close_session ~now:!now ~policy:`Drop h;
    handles.(idx) <- policy.Intf.open_session ~rate:r;
    now := !now +. 1e-6
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. m0 in
  let events = 2 * iters in
  {
    engine = factory.Intf.kind;
    sessions;
    ramp_opens_per_sec = float_of_int sessions /. ramp_wall;
    churn_events_per_sec = float_of_int events /. wall;
    minor_words_per_event = minor /. float_of_int events;
    live_after = policy.Intf.live_sessions ();
  }

(* -- JSON report --------------------------------------------------------- *)

let row_json r =
  Json.Obj
    [
      ("engine", Json.Str r.engine);
      ("sessions", Json.Num (float_of_int r.sessions));
      ("ramp_opens_per_sec", Json.Num r.ramp_opens_per_sec);
      ("churn_events_per_sec", Json.Num r.churn_events_per_sec);
      ("minor_words_per_event", Json.Num r.minor_words_per_event);
      ("live_after", Json.Num (float_of_int r.live_after));
    ]

let json_of_run ~quick rows =
  let hs = headline_sessions ~quick in
  let headline =
    match
      List.find_opt (fun r -> r.engine = headline_engine && r.sessions = hs) rows
    with
    | Some r ->
      Json.Obj
        [
          ("workload", Json.Str "idle-open/backlog/close-drop/reopen churn");
          ("engine", Json.Str r.engine);
          ("sessions", Json.Num (float_of_int r.sessions));
          ("churn_events_per_sec", Json.Num r.churn_events_per_sec);
          ("floor_events_per_sec", Json.Num default_floor);
        ]
    | None -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-churn-v1");
      ("bench", Json.Str "churn");
      ("quick", Json.Bool quick);
      ("headline", headline);
      ("rows", Json.Arr (List.map row_json rows));
    ]

let required_keys = [ "schema"; "headline"; "rows" ]

let required_row_keys =
  [
    "engine";
    "sessions";
    "ramp_opens_per_sec";
    "churn_events_per_sec";
    "minor_words_per_event";
    "live_after";
  ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "rows" json with
    | Some rows -> (
      match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "rows entries" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let run ?(quick = false) ?(out = "BENCH_churn.json") () =
  Printf.printf
    "\n================ CHURN: session lifecycle at 10^5-10^6 sessions \
     ================\n%!";
  let iters = churn_iters ~quick in
  let rows =
    List.concat_map
      (fun sessions ->
        List.map (fun factory -> measure ~factory ~sessions ~iters ()) engines)
      (session_grid ~quick)
  in
  Printf.printf "%-10s %10s %16s %18s %12s %10s\n" "engine" "sessions" "ramp opens/s"
    "churn events/s" "words/event" "live";
  List.iter
    (fun r ->
      Printf.printf "%-10s %10d %16.0f %18.0f %12.3f %10d\n" r.engine r.sessions
        r.ramp_opens_per_sec r.churn_events_per_sec r.minor_words_per_event
        r.live_after)
    rows;
  List.iter
    (fun r ->
      if r.live_after <> r.sessions then
        failwith
          (Printf.sprintf "Churn_bench.run: %s at %d sessions ended with %d live"
             r.engine r.sessions r.live_after))
    rows;
  let json = json_of_run ~quick rows in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith
      ("Churn_bench.run: emitted JSON is missing keys: " ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out;
  rows

(* -- regression guard ----------------------------------------------------- *)

let headline_of_report json =
  match Json.member "headline" json with
  | None -> Error "report has no \"headline\" object"
  | Some h -> (
    match Json.member "churn_events_per_sec" h with
    | None -> Error "headline has no \"churn_events_per_sec\" field"
    | Some v -> (
      match Json.to_float v with
      | Some f when f > 0.0 -> Ok f
      | _ -> Error "headline \"churn_events_per_sec\" is not a positive number"))

type guard_result = {
  baseline_eps : float;
  fresh_eps : float;
  perf_ratio : float;
  floor : float;
  tol : float;
  within : bool;
}

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match float_of_string_opt s with Some t when t >= 0.0 -> t | _ -> default)
  | None -> default

(* The floor is the ISSUE's absolute acceptance number (>= 1e5 open/close
   events/s at 10^6 open sessions); the tolerance guards relative
   regressions against the committed baseline, with the usual 20% slack
   for end-to-end wall-clock noise. Both relax via env on shared CI. *)
let guard ?(baseline = "BENCH_churn.json") ?tol ?floor ?sessions ?iters () =
  let tol = match tol with Some t -> t | None -> env_float "HPFQ_CHURN_TOL" 0.2 in
  let floor =
    match floor with Some f -> f | None -> env_float "HPFQ_CHURN_FLOOR" default_floor
  in
  if not (Sys.file_exists baseline) then
    Error (Printf.sprintf "baseline %s not found (run `bench churn` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json -> headline_of_report json
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok baseline_eps ->
      let sessions =
        match sessions with Some n -> n | None -> headline_sessions ~quick:false
      in
      let iters = match iters with Some n -> n | None -> churn_iters ~quick:false in
      let fresh =
        measure ~factory:Hpfq.Disciplines.wf2q_plus_fixed ~sessions ~iters ()
      in
      let fresh_eps = fresh.churn_events_per_sec in
      Ok
        {
          baseline_eps;
          fresh_eps;
          perf_ratio = fresh_eps /. baseline_eps;
          floor;
          tol;
          within = fresh_eps /. baseline_eps >= 1.0 -. tol && fresh_eps >= floor;
        }

(* -- virtual-time soak ---------------------------------------------------- *)

type soak_result = {
  s_engine : string;
  s_packets : int;
  s_v_end : float;  (** virtual time after the run *)
  s_drift : float;  (** signed error of V vs exact [n * step] *)
  s_exact : bool;  (** drift known exactly zero (integer-domain check) *)
}

let soak_rate = 0.3 (* L/r = 10/3: no finite binary representation *)

(* Both engines are driven in reference time: the caller's clock mirrors
   the engine's post-dated [v_time] via the same float operations the
   engine performs, so the eq. 27 linear term contributes exactly zero
   and V advances purely by the per-service increment — isolating the
   accumulation behaviour the soak is after. *)
let soak_float ~packets =
  let p = Hpfq.Wf2q_plus.make ~rate:soak_rate in
  let h = p.Intf.open_session ~rate:soak_rate in
  let s = p.Intf.session_of_handle h in
  p.Intf.backlog ~now:0.0 ~session:s ~head_bits:1.0;
  let step = 1.0 /. soak_rate in
  let now = ref 0.0 in
  for _ = 1 to packets do
    (match p.Intf.select ~now:!now with
    | Some _ -> ()
    | None -> failwith "soak: select returned None on a backlogged engine");
    now := !now +. step;
    p.Intf.requeue ~now:!now ~session:s ~head_bits:1.0
  done;
  let v_end = p.Intf.virtual_time ~now:!now in
  (* exact n*step via an FMA-compensated product: [prod + err] is the
     double-double value of the real product, so [(v - prod) - err] is
     the accumulated-sum error alone *)
  let n = float_of_int packets in
  let prod = n *. step in
  let err = Float.fma n step (-.prod) in
  { s_engine = "WF2Q+"; s_packets = packets; s_v_end = v_end;
    s_drift = (v_end -. prod) -. err; s_exact = false }

let soak_fixed ~packets =
  let eng = Hpfq.Wf2q_plus_fixed.create ~rate:soak_rate () in
  let p = Hpfq.Wf2q_plus_fixed.policy eng in
  let shift = Hpfq.Wf2q_plus_fixed.shift eng in
  let h = p.Intf.open_session ~rate:soak_rate in
  let s = p.Intf.session_of_handle h in
  p.Intf.backlog ~now:0.0 ~session:s ~head_bits:1.0;
  let service_ticks = Sched.Fixed.ticks_per_bit ~shift ~rate:soak_rate in
  let step = Sched.Fixed.to_float ~shift service_ticks in
  let now = ref 0.0 in
  for _ = 1 to packets do
    (match p.Intf.select ~now:!now with
    | Some _ -> ()
    | None -> failwith "soak: select returned None on a backlogged engine");
    now := !now +. step;
    p.Intf.requeue ~now:!now ~session:s ~head_bits:1.0
  done;
  (* integer-domain drift: provably-exact check, no float round-trip *)
  let drift_ticks = Hpfq.Wf2q_plus_fixed.v_ticks eng - (packets * service_ticks) in
  {
    s_engine = "WF2Q+fx";
    s_packets = packets;
    s_v_end = p.Intf.virtual_time ~now:!now;
    s_drift = Sched.Fixed.to_float ~shift drift_ticks;
    s_exact = drift_ticks = 0;
  }

let soak ?(packets = 10_000_000) () = [ soak_fixed ~packets; soak_float ~packets ]
