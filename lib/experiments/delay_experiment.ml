module H = Paper_hierarchies
module Sim = Engine.Simulator
module HE = Hpfq.Hier_engine

type scenario = S1_constant_and_trains | S2_overloaded_poisson | S3_overload_and_trains

let scenario_name = function
  | S1_constant_and_trains -> "S1 (constant + trains)"
  | S2_overloaded_poisson -> "S2 (overloaded poisson)"
  | S3_overload_and_trains -> "S3 (overload + trains)"

type result = {
  discipline : string;
  scenario : scenario;
  delays : Stats.Delay_stats.t;
  lag : Stats.Service_curve.t;
  rt_packets : int;
  drops : int;
  link_utilization : float;
}

let rt1_delay_bound =
  match
    Hpfq.Theory.hier_delay_bound ~tree:H.fig3 ~leaf:"RT-1" ~sigma:H.rt1_sigma_bits
      ~l_max:H.fig3_packet_bits
  with
  | Ok bound -> bound
  | Error msg -> invalid_arg msg

let run ?config ?rng ?engine ~factory ~scenario ?(horizon = 10.0) ?(seed = 1L) () =
  let sim =
    match config with
    | Some c -> Sim.create_configured c
    | None -> Sim.create ()
  in
  let rng = match rng with Some r -> r | None -> Engine.Rng.create seed in
  let delays = Stats.Delay_stats.create () in
  let lag = Stats.Service_curve.create () in
  let rt_packets = ref 0 in
  let served_bits = ref 0.0 in
  let hier = ref None in
  let on_depart pkt ~leaf t =
    served_bits := !served_bits +. pkt.Net.Packet.size_bits;
    if String.equal leaf "RT-1" then begin
      incr rt_packets;
      Stats.Delay_stats.record delays ~time:t ~delay:(t -. pkt.Net.Packet.arrival);
      Stats.Service_curve.on_service lag ~time:t ~units:1.0
    end
  in
  let h = HE.create ~sim ~spec:H.fig3 ~factory ?engine ~on_depart () in
  hier := Some h;
  let emit_to name =
    let leaf = HE.leaf_id h name in
    fun ~size_bits -> ignore (HE.inject h ~leaf ~size_bits)
  in
  let pkt = H.fig3_packet_bits in
  (* RT-1: deterministic on/off from 200 ms, 25/75 duty, 4x peak; arrivals
     also recorded on the service-lag curve *)
  let rt_emit =
    let raw = emit_to "RT-1" in
    fun ~size_bits ->
      Stats.Service_curve.on_arrival lag ~time:(Sim.now sim) ~units:1.0;
      raw ~size_bits
  in
  ignore
    (Traffic.Source.on_off ~sim ~emit:rt_emit ~peak_rate:(4.0 *. H.rt1_rate)
       ~packet_bits:pkt ~on_duration:0.025 ~off_duration:0.075 ~start:0.2
       ~stop_at:horizon ());
  (* BE-1: continuously backlogged *)
  ignore
    (Traffic.Source.greedy ~sim ~emit:(emit_to "BE-1") ~packet_bits:pkt
       ~backlog_packets:64 ~top_up_every:0.25 ~stop_at:horizon ());
  (* PS-n: constant-rate at guaranteed rate (S1) or Poisson at 1.5x (S2,S3) *)
  for i = 1 to 10 do
    let emit = emit_to (Printf.sprintf "PS-%d" i) in
    match scenario with
    | S1_constant_and_trains ->
      (* the paper: "constant rate sessions with identical start times" —
         the simultaneous arrivals are part of the workload *)
      ignore
        (Traffic.Source.cbr ~sim ~emit ~rate:H.ps_rate ~packet_bits:pkt ~start:0.0
           ~stop_at:horizon ())
    | S2_overloaded_poisson | S3_overload_and_trains ->
      ignore
        (Traffic.Source.poisson ~sim ~emit ~rng:(Engine.Rng.split rng)
           ~mean_rate:(1.5 *. H.ps_rate) ~packet_bits:pkt ~stop_at:horizon ())
  done;
  (* CS-n: multiplexed packet trains, ~193 ms apart, staggered *)
  (match scenario with
  | S2_overloaded_poisson -> ()
  | S1_constant_and_trains | S3_overload_and_trains ->
    for i = 1 to 10 do
      let emit = emit_to (Printf.sprintf "CS-%d" i) in
      ignore
        (Traffic.Source.packet_train ~sim ~emit ~burst_packets:3 ~packet_bits:pkt
           ~intra_spacing:(pkt /. H.fig3_link_rate)
           ~inter_burst:0.193
           ~start:(0.0193 *. float_of_int i)
           ~stop_at:horizon ())
    done);
  Sim.run ~until:horizon sim;
  {
    discipline = factory.Sched.Sched_intf.kind;
    scenario;
    delays;
    lag;
    rt_packets = !rt_packets;
    drops = HE.drops h;
    link_utilization = !served_bits /. (H.fig3_link_rate *. horizon);
  }

(* Discipline × replication sweep, the Figs. 4-7 grid. Task (f, k) runs
   replication k of discipline f on a private simulator; its arrival
   randomness comes from [Rng.for_task base k] — keyed by the replication
   index, not the flat task index, so every discipline replays the same k
   arrival streams (paired comparison) and the streams don't shift when a
   discipline is added to the grid. The backend config is snapshotted
   before the workers spawn; results come back in grid order, bit-identical
   for any worker count. *)
let run_sweep ?pool ?engine ~factories ~scenario ?horizon ?(seed = 1L) ?(replications = 1)
    () =
  if replications < 1 then
    invalid_arg "Delay_experiment.run_sweep: replications must be >= 1";
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let config = Sim.snapshot_config () in
  let base = Engine.Rng.create seed in
  let grid =
    Array.of_list
      (List.concat_map
         (fun factory -> List.init replications (fun k -> (factory, k)))
         factories)
  in
  Array.to_list
    (Parallel.Pool.map pool ~tasks:(Array.length grid) ~f:(fun i ->
         let factory, k = grid.(i) in
         run ~config ~rng:(Engine.Rng.for_task base k) ?engine ~factory ~scenario
           ?horizon ()))

let summary_row r =
  let ms = Engine.Units.seconds_to_ms in
  Printf.sprintf "%-12s %-26s pkts=%-5d max=%7.3fms mean=%7.3fms p99=%7.3fms lag_max=%5.1fpkt"
    r.discipline (scenario_name r.scenario) r.rt_packets
    (ms (Stats.Delay_stats.max_delay r.delays))
    (ms (Stats.Delay_stats.mean r.delays))
    (ms (Stats.Delay_stats.percentile r.delays 99.0))
    (Stats.Service_curve.max_lag r.lag)
