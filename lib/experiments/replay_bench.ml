(* Trace-replay benchmark (bench id "replay").

   One synthetic "internet mix" trace (heavy-tailed sizes, on/off bursts
   superposed on Poisson background — Traffic.Trace.internet_mix) replayed
   through the same H-WF2Q+ hierarchy at every rung of a burst_max ladder:
   1 (the classic per-packet event loop), 2, 8, 64 and unbounded. Arrivals
   are pre-scheduled from the trace — per-event at burst_max 1, grouped by
   timestamp (Trace.replay ~batched:true) above it — so the ladder measures
   the end-to-end cost of event-set traffic that burst-draining amortizes.

   Every rung must produce the identical departure sequence: the run folds
   (flow, seq, time) of each departure into an order-sensitive hash and
   refuses to write a report if any rung disagrees — the determinism
   contract (bit-identical schedules at every burst_max) enforced on the
   real workload, not just the property tests. [guard] re-measures the
   per-packet and batched rungs against the committed BENCH_replay.json:
   wall-clock within HPFQ_REPLAY_TOL of baseline, batched/per-packet
   speedup at least HPFQ_REPLAY_RATIO, and the fresh hash equal to the
   committed one (hash equality has no tolerance knob — the trace and the
   schedule are machine-independent). *)

module Perf = Bench_kit.Perf
module Json = Bench_kit.Json
module Trace = Traffic.Trace

type workload = {
  depth : int;
  fanout : int;
  seed : int64;
  duration : float;
  mean_pkts_per_leaf : float;
  headroom : float; (* link rate / offered load *)
}

let full_workload =
  {
    depth = 2;
    fanout = 32 (* 1024 leaves *);
    seed = 0x7e9157a11L;
    duration = 1.0;
    mean_pkts_per_leaf = 100.0;
    headroom = 1.25;
  }

let quick_workload =
  { full_workload with fanout = 8 (* 64 leaves *); mean_pkts_per_leaf = 16.0 }

let workload ~quick = if quick then quick_workload else full_workload

(* The ladder's batched rung used for the headline speedup. *)
let batched_burst = 64
let ladder = [ 1; 2; 8; batched_burst; max_int ]

let burst_label burst = if burst = max_int then "inf" else string_of_int burst

(* Rate-1 spec; the real link rate is applied by scaling after the trace's
   offered load is known, keeping per-node shares identical. *)
let rec scale_rates factor spec =
  let open Hpfq.Class_tree in
  if is_leaf spec then leaf (name spec) ~rate:(rate spec *. factor)
  else node (name spec) ~rate:(rate spec *. factor)
         (List.map (scale_rates factor) (children spec))

let setup w =
  let unit_spec =
    Perf.uniform_spec ~depth:w.depth ~fanout:w.fanout ~name:"root" ~rate:1.0
  in
  let leaves = List.map fst (Hpfq.Class_tree.leaves unit_spec) in
  let trace =
    Trace.internet_mix ~seed:w.seed ~leaves ~duration:w.duration
      ~mean_pkts_per_leaf:w.mean_pkts_per_leaf ()
  in
  let total_bits =
    List.fold_left (fun acc e -> acc +. e.Trace.size_bits) 0.0 trace
  in
  let rate = w.headroom *. total_bits /. w.duration in
  (scale_rates rate unit_spec, trace)

(* -- order-sensitive departure hash -------------------------------------- *)

let golden = 0x9E3779B97F4A7C15L

let fold_hash h k = Engine.Rng.mix64 (Int64.add (Int64.mul h golden) k)

let depart_key ~flow ~seq ~time =
  Engine.Rng.mix64
    (Int64.logxor
       (Int64.of_int ((flow * 0x3779) + seq))
       (Int64.bits_of_float time))

type row = {
  burst : int;
  arrivals : int;
  departures : int;
  pkts_per_sec : float;
  minor_words_per_pkt : float;
  depart_hash : string;
}

let measure ?config ?(engine = `Auto) ~spec ~trace ~burst () =
  let sim =
    match config with
    | Some c -> Engine.Simulator.create_configured c
    | None -> Engine.Simulator.create ()
  in
  let departures = ref 0 in
  let hash = ref golden in
  let hier =
    Hpfq.Hier_engine.create ~sim ~spec ~factory:Hpfq.Disciplines.wf2q_plus
      ~engine ~burst_max:burst ()
  in
  (* handle hook: flow/seq are pool reads, no packet record per departure *)
  let pool = Hpfq.Hier_engine.pool hier in
  Hpfq.Hier_engine.add_depart_handle_hook hier (fun h ~leaf:_ time ->
      incr departures;
      hash :=
        fold_hash !hash
          (depart_key ~flow:(Net.Packet_pool.flow pool h)
             ~seq:(Net.Packet_pool.seq pool h) ~time));
  let leaf_ids = Hashtbl.create 256 in
  List.iter
    (fun (name, id) -> Hashtbl.replace leaf_ids name id)
    (Hpfq.Hier_engine.leaf_ids hier);
  let emit_for ~leaf =
    match Hashtbl.find_opt leaf_ids leaf with
    | None -> None
    | Some id ->
      Some
        (fun ~size_bits -> ignore (Hpfq.Hier_engine.inject hier ~leaf:id ~size_bits))
  in
  let arrivals = Trace.replay ~batched:(burst > 1) ~sim ~emit_for trace in
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Engine.Simulator.run sim;
  let wall = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. m0 in
  let pkts = float_of_int !departures in
  {
    burst;
    arrivals;
    departures = !departures;
    pkts_per_sec = pkts /. wall;
    minor_words_per_pkt = minor /. Float.max 1.0 pkts;
    depart_hash = Printf.sprintf "%016Lx" !hash;
  }

(* -- JSON report --------------------------------------------------------- *)

let row_json r =
  Json.Obj
    [
      ("burst_max", Json.Num (if r.burst = max_int then -1.0 else float_of_int r.burst));
      ("burst_label", Json.Str (burst_label r.burst));
      ("arrivals", Json.Num (float_of_int r.arrivals));
      ("departures", Json.Num (float_of_int r.departures));
      ("pkts_per_sec", Json.Num r.pkts_per_sec);
      ("minor_words_per_pkt", Json.Num r.minor_words_per_pkt);
      ("depart_hash", Json.Str r.depart_hash);
    ]

let find_row rows burst = List.find_opt (fun r -> r.burst = burst) rows

let json_of_run ~quick ~w rows =
  let headline =
    match (find_row rows 1, find_row rows batched_burst) with
    | Some per_pkt, Some batched ->
      Json.Obj
        [
          ("workload", Json.Str "internet_mix_replay");
          ("burst_max", Json.Num (float_of_int batched_burst));
          ("per_packet_pkts_per_sec", Json.Num per_pkt.pkts_per_sec);
          ("batched_pkts_per_sec", Json.Num batched.pkts_per_sec);
          ("speedup", Json.Num (batched.pkts_per_sec /. per_pkt.pkts_per_sec));
          ("batched_minor_words_per_pkt", Json.Num batched.minor_words_per_pkt);
          ("depart_hash", Json.Str batched.depart_hash);
        ]
    | _ -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-replay-v1");
      ("bench", Json.Str "replay");
      ("quick", Json.Bool quick);
      ( "workload",
        Json.Obj
          [
            ("generator", Json.Str "internet_mix");
            ("seed", Json.Num (Int64.to_float w.seed));
            ("leaves", Json.Num (float_of_int w.fanout ** float_of_int w.depth));
            ("depth", Json.Num (float_of_int w.depth));
            ("fanout", Json.Num (float_of_int w.fanout));
            ("duration", Json.Num w.duration);
            ("mean_pkts_per_leaf", Json.Num w.mean_pkts_per_leaf);
            ("headroom", Json.Num w.headroom);
          ] );
      ("headline", headline);
      ("rows", Json.Arr (List.map row_json rows));
    ]

let required_keys = [ "schema"; "workload"; "headline"; "rows" ]
let required_row_keys = [ "burst_max"; "pkts_per_sec"; "depart_hash" ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "rows" json with
    | Some rows -> (
      match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "rows entries" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let check_hashes rows =
  match rows with
  | [] -> Ok ()
  | first :: rest -> (
    match
      List.find_opt
        (fun r ->
          r.depart_hash <> first.depart_hash
          || r.departures <> first.departures)
        rest
    with
    | None -> Ok ()
    | Some bad ->
      Error
        (Printf.sprintf
           "burst_max %s departed %d packets with hash %s; burst_max %s \
            departed %d with hash %s"
           (burst_label first.burst) first.departures first.depart_hash
           (burst_label bad.burst) bad.departures bad.depart_hash))

let run ?(quick = false) ?(out = "BENCH_replay.json") () =
  Printf.printf
    "\n================ REPLAY: internet-mix trace, burst_max ladder \
     ================\n%!";
  let w = workload ~quick in
  let config = Engine.Simulator.snapshot_config () in
  let spec, trace = setup w in
  Printf.printf "trace: %d arrivals over %d leaves, %.3gs horizon\n%!"
    (List.length trace)
    (List.length (Hpfq.Class_tree.leaves spec))
    w.duration;
  (* the ladder runs sequentially on purpose: rungs share the machine the
     same way, so the speedup column is internally consistent *)
  let rows = List.map (fun burst -> measure ~config ~spec ~trace ~burst ()) ladder in
  Printf.printf "%10s %10s %10s %16s %12s  %s\n" "burst_max" "arrivals"
    "departs" "pkts/sec" "words/pkt" "depart_hash";
  List.iter
    (fun r ->
      Printf.printf "%10s %10d %10d %16.0f %12.2f  %s\n" (burst_label r.burst)
        r.arrivals r.departures r.pkts_per_sec r.minor_words_per_pkt
        r.depart_hash)
    rows;
  (match check_hashes rows with
  | Ok () -> ()
  | Error msg ->
    failwith ("Replay_bench.run: determinism violated across the ladder: " ^ msg));
  let json = json_of_run ~quick ~w rows in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith
      ("Replay_bench.run: emitted JSON is missing keys: "
      ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out;
  rows

(* -- regression guard ----------------------------------------------------- *)

let headline_of_report json =
  match Json.member "headline" json with
  | None -> Error "report has no \"headline\" object"
  | Some h -> (
    match (Json.member "batched_pkts_per_sec" h, Json.member "depart_hash" h) with
    | Some pps, Some hash -> (
      match (Json.to_float pps, hash) with
      | Some f, Json.Str s when f > 0.0 -> Ok (f, s)
      | _ -> Error "headline \"batched_pkts_per_sec\"/\"depart_hash\" malformed")
    | _ ->
      Error "headline lacks \"batched_pkts_per_sec\" or \"depart_hash\" fields")

(* Committed allocation ceiling: the batched headline's minor
   words/packet, when the baseline carries it (older baselines do not). *)
let headline_words_of_report json =
  match Json.member "headline" json with
  | None -> None
  | Some h -> (
    match Json.member "batched_minor_words_per_pkt" h with
    | None -> None
    | Some v -> (
      match Json.to_float v with Some w when w > 0.0 -> Some w | _ -> None))

type guard_result = {
  baseline_pps : float;
  fresh_pps : float;
  perf_ratio : float;
  speedup : float; (* fresh batched / fresh per-packet *)
  hash_ok : bool; (* fresh batched hash = committed hash *)
  baseline_words : float option;
  fresh_words : float;
  tol : float;
  min_speedup : float;
  words_tol : float;
  words_within : bool;
  within : bool;
}

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match float_of_string_opt s with Some t when t >= 0.0 -> t | _ -> default)
  | None -> default

let guard ?(baseline = "BENCH_replay.json") ?tol ?min_speedup ?words_tol
    ?(quick = false) () =
  let tol = match tol with Some t -> t | None -> env_float "HPFQ_REPLAY_TOL" 0.2 in
  let min_speedup =
    match min_speedup with
    | Some r -> r
    | None -> env_float "HPFQ_REPLAY_RATIO" 1.0
  in
  let words_tol =
    match words_tol with
    | Some t -> t
    | None -> env_float "HPFQ_WORDS_TOL" 0.1
  in
  if not (Sys.file_exists baseline) then
    Error (Printf.sprintf "baseline %s not found (run `bench replay` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json ->
        Result.map
          (fun hd -> (hd, headline_words_of_report json))
          (headline_of_report json)
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok ((baseline_pps, baseline_hash), baseline_words) ->
      let spec, trace = setup (workload ~quick) in
      (* Each rung is best-of-3: machine interference only slows a replay
         down, and the batched/per-packet speedup of this workload (~1.1x)
         sits close enough to the floor that single samples gate on noise.
         Hash and words are identical across samples (determinism). *)
      let best ~burst =
        let first = measure ~spec ~trace ~burst () in
        List.fold_left
          (fun acc () ->
            let r = measure ~spec ~trace ~burst () in
            if r.pkts_per_sec > acc.pkts_per_sec then r else acc)
          first [ (); () ]
      in
      let per_pkt = best ~burst:1 in
      let batched = best ~burst:batched_burst in
      let fresh_pps = batched.pkts_per_sec in
      let speedup = batched.pkts_per_sec /. per_pkt.pkts_per_sec in
      let hash_ok =
        String.equal batched.depart_hash baseline_hash
        && String.equal per_pkt.depart_hash baseline_hash
      in
      let words_within =
        match baseline_words with
        | None -> true
        | Some b -> batched.minor_words_per_pkt <= b *. (1.0 +. words_tol)
      in
      Ok
        {
          baseline_pps;
          fresh_pps;
          perf_ratio = fresh_pps /. baseline_pps;
          speedup;
          hash_ok;
          baseline_words;
          fresh_words = batched.minor_words_per_pkt;
          tol;
          min_speedup;
          words_tol;
          words_within;
          within =
            hash_ok
            && fresh_pps /. baseline_pps >= 1.0 -. tol
            && speedup >= min_speedup && words_within;
        }
