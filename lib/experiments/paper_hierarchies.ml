module CT = Hpfq.Class_tree

let mbps = Engine.Units.mbps

(* -- Fig. 1 -------------------------------------------------------------- *)

let fig1 ~link_rate =
  let a1 = 0.5 *. link_rate in
  CT.node "link" ~rate:link_rate
    (CT.node "A1" ~rate:a1
       [
         CT.leaf "A1-best-effort" ~rate:(0.2 *. a1);
         CT.leaf "A1-real-time" ~rate:(0.8 *. a1);
       ]
    :: List.init 10 (fun i ->
           CT.leaf (Printf.sprintf "A%d" (i + 2)) ~rate:(0.05 *. link_rate)))

(* -- Fig. 3 -------------------------------------------------------------- *)

let fig3_link_rate = mbps 44.44
let fig3_packet_bits = 65536.0 (* 8 KB *)

let n2_rate = fig3_link_rate /. 2.0
let n1_rate = n2_rate /. 2.0
let rt1_rate = 0.81 *. n1_rate (* = 9.0 Mbps, as the paper states *)
let be1_rate = n1_rate -. rt1_rate
let cs_rate = n2_rate /. 2.0 /. 10.0 (* ten CS leaves beside N-1 under N-2 *)
let ps_rate = fig3_link_rate /. 2.0 /. 10.0 (* ten PS leaves beside N-2 at the root *)

(* RT-1 sends at 4x its sustained rate for 25 ms of every 100 ms: the excess
   above the sustained rate accumulated over one on-period. *)
let rt1_sigma_bits = (4.0 -. 1.0) *. rt1_rate *. 0.025

(* CS-n sit directly beside N-1 under N-2, and PS-n directly beside N-2 at
   the root, so the servers on RT-1's root path have 11 sessions each — the
   configuration in which WFQ's session-count-proportional WFI hurts a
   hierarchical server (and the reason Fig. 4's H-WFQ spikes exist). *)
let fig3 =
  CT.node "N-R" ~rate:fig3_link_rate
    (CT.node "N-2" ~rate:n2_rate
       (CT.node "N-1" ~rate:n1_rate
          [ CT.leaf "RT-1" ~rate:rt1_rate; CT.leaf "BE-1" ~rate:be1_rate ]
       :: List.init 10 (fun i ->
              CT.leaf (Printf.sprintf "CS-%d" (i + 1)) ~rate:cs_rate))
    :: List.init 10 (fun i ->
           CT.leaf (Printf.sprintf "PS-%d" (i + 1)) ~rate:ps_rate))

(* -- Fig. 8 -------------------------------------------------------------- *)

let fig8_link_rate = mbps 40.0

let fig8 =
  CT.node "link" ~rate:fig8_link_rate
    [
      CT.leaf "TCP-1" ~rate:(mbps 4.0) ~queue_capacity_bits:(4.0 *. 65536.0);
      CT.leaf "OnOff-1" ~rate:(mbps 8.0);
      CT.node "N-A" ~rate:(mbps 28.0)
        [
          CT.leaf "TCP-5" ~rate:(mbps 6.0) ~queue_capacity_bits:(4.0 *. 65536.0);
          CT.leaf "OnOff-2" ~rate:(mbps 6.0);
          CT.node "N-B" ~rate:(mbps 16.0)
            [
              CT.leaf "TCP-8" ~rate:(mbps 5.0) ~queue_capacity_bits:(4.0 *. 65536.0);
              CT.leaf "OnOff-3" ~rate:(mbps 5.0);
              CT.node "N-C" ~rate:(mbps 6.0)
                [
                  CT.leaf "TCP-10" ~rate:(mbps 2.0)
                    ~queue_capacity_bits:(4.0 *. 65536.0);
                  CT.leaf "TCP-11" ~rate:(mbps 2.0)
                    ~queue_capacity_bits:(4.0 *. 65536.0);
                  CT.leaf "OnOff-4" ~rate:(mbps 2.0);
                ];
            ];
        ];
    ]

let fig8_tcp_leaves = [ "TCP-1"; "TCP-5"; "TCP-8"; "TCP-10"; "TCP-11" ]

(* Active on/off sources send at exactly their class bandwidth (Fig. 8(b)
   gives each source a bandwidth): their queues stay empty and they fall
   silent the instant a window closes. Windows follow the §5.2 narrative. *)
let fig8_onoff_schedule =
  [
    ("OnOff-1", mbps 8.0, [ (0.0, 5.25); (6.0, 6.75); (7.5, 8.25); (9.0, 10.0) ]);
    ("OnOff-2", mbps 6.0, [ (0.0, 5.0) ]);
    ("OnOff-3", mbps 5.0, [ (0.0, 5.0); (8.0, 10.0) ]);
    ("OnOff-4", mbps 2.0, [ (5.0, 8.0) ]);
  ]

let fig8_horizon = 10.0
