module Sim = Engine.Simulator
module Server = Hpfq.Server

type measurement = {
  discipline : string;
  n : int;
  measured_twfi : float;
  wf2q_plus_bound : float;
  probe_delay : float;
}

let r0 = 0.5
let packet_bits = 1.0

let measure ?config ~factory ~n () =
  if n < 1 then invalid_arg "Wfi_probe.measure: n must be >= 1";
  let sim =
    match config with
    | Some c -> Sim.create_configured c
    | None -> Sim.create ()
  in
  let probe_delay = ref nan in
  let probe_sent = ref false in
  let session0_departures = ref 0 in
  let server = ref None in
  let on_depart pkt t =
    let srv = Option.get !server in
    if pkt.Net.Packet.flow = 0 then
      if !probe_sent then begin
        if Float.is_nan !probe_delay then probe_delay := t -. pkt.Net.Packet.arrival
      end
      else begin
        incr session0_departures;
        (* queue drained: fire the probe into the empty queue right now *)
        if !session0_departures = n && Server.queue_bits srv ~session:0 = 0.0 then begin
          probe_sent := true;
          ignore (Server.inject srv ~session:0 ~size_bits:packet_bits)
        end
      end
  in
  let srv =
    Server.create ~sim ~rate:1.0 ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
      ~on_depart ()
  in
  server := Some srv;
  let s0 = Server.add_session srv ~rate:r0 () in
  assert (s0 = 0);
  let bg_rate = (1.0 -. r0) /. float_of_int n in
  let bgs = List.init n (fun _ -> Server.add_session srv ~rate:bg_rate ()) in
  ignore
    (Sim.schedule sim ~at:0.0 (fun () ->
         (* session 0's head-start burst *)
         for _ = 1 to n do
           ignore (Server.inject srv ~session:s0 ~size_bits:packet_bits)
         done;
         (* background sessions stay backlogged well past the probe *)
         List.iter
           (fun s ->
             for _ = 1 to 6 * n do
               ignore (Server.inject srv ~session:s ~size_bits:packet_bits)
             done)
           bgs));
  Sim.run sim;
  if Float.is_nan !probe_delay then invalid_arg "Wfi_probe: probe never departed";
  {
    discipline = factory.Sched.Sched_intf.kind;
    n;
    measured_twfi = !probe_delay -. (packet_bits /. r0);
    wf2q_plus_bound =
      Hpfq.Theory.twfi_of_bwfi
        ~bwfi:
          (Hpfq.Theory.bwfi_wf2q ~l_i_max:packet_bits ~l_max:packet_bits ~r_i:r0
             ~r:1.0)
        ~r_i:r0;
    probe_delay = !probe_delay;
  }

(* The sweep grid is the pool's canonical workload: every (discipline, N)
   cell builds its own private simulator from a config snapshotted before
   the workers spawn, so the grid runs on any number of domains and the
   result list is bit-identical to the sequential one (cells are
   RNG-free; index order does the rest). *)
let sweep_grid ?pool ~factories ~ns () =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let config = Sim.snapshot_config () in
  let grid =
    Array.of_list
      (List.concat_map (fun factory -> List.map (fun n -> (factory, n)) ns) factories)
  in
  Array.to_list
    (Parallel.Pool.map pool ~tasks:(Array.length grid) ~f:(fun i ->
         let factory, n = grid.(i) in
         measure ~config ~factory ~n ()))

let sweep ?pool ~factory ~ns () = sweep_grid ?pool ~factories:[ factory ] ~ns ()
