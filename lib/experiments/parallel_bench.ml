(* Multicore scaling suite (bench id "parallel").

   Runs the same wfi sweep grid — the paper's discipline × session-count
   evaluation grid, every cell a private simulator — under pools of 1, 2,
   4 and 8 workers, and reports wall clock and speedup vs -j1. Two claims
   are on the line:

   - *determinism*: every rung of the ladder must produce bit-identical
     results to the -j1 run (the suite serializes all measurements and
     fails hard on any diff — this is the pool's contract, checked on the
     real workload, not a toy);
   - *scaling*: speedup at -j J should approach min(J, cores). Speedup is
     machine-relative, so the report records [cores]
     (Domain.recommended_domain_count) and the guard scales its floor by
     it: on a 1-core container the floor degrades to "parallel dispatch
     must not cost anything", while an 8-core machine is held to the real
     3x-at-j8 target.

   Results go to BENCH_parallel.json (same machine-readable role as
   BENCH_hotpath.json); [guard] re-measures and enforces the floors,
   loosened by HPFQ_PARALLEL_TOL. *)

module Json = Bench_kit.Json

type row = {
  jobs : int;
  wall_s : float;
  speedup : float; (* wall(-j1) / wall(-jN), >= 1 when parallelism helps *)
  floor : float; (* cores-aware expected speedup at this rung *)
}

let jobs_ladder = [ 1; 2; 4; 8 ]

(* The acceptance targets at full core budget: 1.7x at -j2, 3x at -j8
   (sub-linear — domains share the allocator and memory bandwidth, and
   the grid has a serial tail). Between the anchors, interpolate; past
   the machine's cores, oversubscription can't add speedup, so the floor
   is taken at min(jobs, cores). *)
let expected_floor ~cores ~jobs =
  let eff = float_of_int (min jobs (max 1 cores)) in
  if eff <= 1.0 then 1.0
  else if eff <= 2.0 then 1.0 +. ((eff -. 1.0) *. 0.7)
  else if eff <= 4.0 then 1.7 +. ((eff -. 2.0) /. 2.0 *. 0.7)
  else if eff <= 8.0 then 2.4 +. ((eff -. 4.0) /. 4.0 *. 0.6)
  else 3.0

let grid ~quick =
  if quick then (Hpfq.Disciplines.[ wf2q_plus; wfq ], [ 8; 16; 24 ])
  else (Hpfq.Disciplines.pfq, [ 4; 8; 16; 24; 32; 48; 64 ])

let fingerprint (m : Wfi_probe.measurement) =
  Printf.sprintf "%s|%d|%.17g|%.17g|%.17g" m.discipline m.n m.measured_twfi
    m.wf2q_plus_bound m.probe_delay

let sweep_wall ~factories ~ns ~jobs =
  let pool = Parallel.Pool.create ~jobs () in
  let t0 = Unix.gettimeofday () in
  let ms = Wfi_probe.sweep_grid ~pool ~factories ~ns () in
  let wall = Unix.gettimeofday () -. t0 in
  (wall, List.map fingerprint ms)

(* Best-of-[runs] wall clock per rung: scaling benches report the least
   contended measurement, not the mean, because interference only ever
   adds time. *)
let measure ?(quick = false) () =
  let factories, ns = grid ~quick in
  let runs = if quick then 1 else 3 in
  let cores = Parallel.Pool.cores () in
  let reference = ref None in
  let rows =
    List.map
      (fun jobs ->
        let walls_and_prints =
          List.init runs (fun _ -> sweep_wall ~factories ~ns ~jobs)
        in
        let wall =
          List.fold_left (fun acc (w, _) -> Float.min acc w) infinity walls_and_prints
        in
        let prints = snd (List.hd walls_and_prints) in
        (match !reference with
        | None -> reference := Some prints
        | Some ref_prints ->
          if not (List.equal String.equal ref_prints prints) then
            failwith
              (Printf.sprintf
                 "Parallel_bench: sweep at -j%d diverged from the -j1 \
                  reference — the pool's determinism contract is broken"
                 jobs));
        (jobs, wall))
      jobs_ladder
  in
  let t1 = match rows with (1, w) :: _ -> w | _ -> assert false in
  ( cores,
    List.length (fst (grid ~quick)) * List.length (snd (grid ~quick)),
    List.map
      (fun (jobs, wall) ->
        { jobs; wall_s = wall; speedup = t1 /. wall; floor = expected_floor ~cores ~jobs })
      rows )

(* -- JSON report --------------------------------------------------------- *)

let json_of_run ~quick ~cores ~tasks rows =
  let row_json r =
    Json.Obj
      [
        ("jobs", Json.Num (float_of_int r.jobs));
        ("wall_s", Json.Num r.wall_s);
        ("speedup", Json.Num r.speedup);
        ("expected_floor", Json.Num r.floor);
      ]
  in
  let headline =
    match List.find_opt (fun r -> r.jobs = 8) rows with
    | Some r ->
      Json.Obj
        [
          ("workload", Json.Str "wfi_sweep_grid_j8");
          ("speedup", Json.Num r.speedup);
          ("expected_floor", Json.Num r.floor);
          ("cores", Json.Num (float_of_int cores));
        ]
    | None -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-parallel-v1");
      ("bench", Json.Str "parallel");
      ("quick", Json.Bool quick);
      ("cores", Json.Num (float_of_int cores));
      ("workload", Json.Str "wfi_sweep_grid");
      ("tasks", Json.Num (float_of_int tasks));
      ("headline", headline);
      ("rows", Json.Arr (List.map row_json rows));
    ]

let required_keys = [ "schema"; "cores"; "rows" ]
let required_row_keys = [ "jobs"; "wall_s"; "speedup"; "expected_floor" ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "rows" json with
    | Some rows -> (
      match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "rows entries" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let run ?(quick = false) ?(out = "BENCH_parallel.json") () =
  Printf.printf
    "\n================ PARALLEL: wfi sweep scaling vs -j ================\n%!";
  let cores, tasks, rows = measure ~quick () in
  Printf.printf "cores=%d, grid=%d tasks, determinism cross-checked per rung\n"
    cores tasks;
  Printf.printf "%6s %12s %10s %14s\n" "jobs" "wall (s)" "speedup" "floor (cores)";
  List.iter
    (fun r ->
      Printf.printf "%6d %12.3f %9.2fx %13.2fx\n" r.jobs r.wall_s r.speedup r.floor)
    rows;
  let json = json_of_run ~quick ~cores ~tasks rows in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith
      ("Parallel_bench.run: emitted JSON is missing keys: "
      ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out;
  rows

(* -- scaling guard -------------------------------------------------------- *)

type guard_row = {
  g_jobs : int;
  g_speedup : float;
  g_floor : float;
  g_enforced : bool;
  g_ok : bool;
}

type guard_result = {
  g_cores : int;
  g_tol : float;
  g_rows : guard_row list;
  g_within : bool;
}

let default_guard_tol () =
  match Sys.getenv_opt "HPFQ_PARALLEL_TOL" with
  | Some s -> (
    match float_of_string_opt s with Some t when t >= 0.0 && t < 1.0 -> t | _ -> 0.25)
  | None -> 0.25

(* Unlike the perf/events guards this one does not diff a committed
   number: speedup is a property of the host (core count, contention),
   so the committed BENCH_parallel.json documents one machine while the
   guard holds the *cores-scaled floor* on whatever machine it runs on.
   The baseline file is still required and schema-checked so a PR cannot
   silently drop the report. *)
let guard ?(baseline = "BENCH_parallel.json") ?tol ?quick () =
  let tol = match tol with Some t -> t | None -> default_guard_tol () in
  if not (Sys.file_exists baseline) then
    Error
      (Printf.sprintf "baseline %s not found (run `bench parallel` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json -> (
        match validate json with
        | Ok () -> Ok ()
        | Error missing ->
          Error ("missing keys: " ^ String.concat ", " missing))
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok () ->
      let quick =
        (* a 1-core host can only verify "fan-out costs nothing", which
           the quick grid already shows; spend the full grid only where
           real scaling is measurable *)
        match quick with Some q -> q | None -> Parallel.Pool.cores () < 2
      in
      let cores, _tasks, rows = measure ~quick () in
      (* Rungs that oversubscribe the host (jobs > cores) are reported but
         not gated: on a time-sliced core, extra domains cost real wall
         clock (GC coordination, allocator contention), and that cost is a
         runtime/OS property, not a pool regression. Every rung within the
         core budget must clear its tolerance-scaled floor. *)
      let g_rows =
        List.map
          (fun r ->
            let floor = r.floor *. (1.0 -. tol) in
            { g_jobs = r.jobs; g_speedup = r.speedup; g_floor = floor;
              g_enforced = r.jobs <= max 1 cores;
              g_ok = r.speedup >= floor })
          rows
      in
      Ok
        {
          g_cores = cores;
          g_tol = tol;
          g_rows;
          g_within = List.for_all (fun g -> (not g.g_enforced) || g.g_ok) g_rows;
        }
