(** The §5.2 link-sharing experiment (Figs. 8–9): five long-lived TCP
    sessions at different depths of the Fig. 8 hierarchy, with one on/off
    source per level toggling per the paper's schedule.

    Two runs over the same schedule:
    - {e packet}: H-PFQ ({!Hpfq.Hier}) with real {!Tcp.Tcp_reno} sources
      adapting through queue drops (Fig. 9(a));
    - {e fluid ideal}: {!Fluid.Hgps} with TCP leaves modelled as
      persistently backlogged (Fig. 9(b)'s "ideal" curves).

    Bandwidth is measured the paper's way: exponential averaging over 50 ms
    windows. *)

type series = (float * float) list
(** [(time, bits-per-second)]. *)

type interval_row = { leaf : string; measured : float; ideal : float }

type interval = {
  label : string;
  t0 : float;
  t1 : float;
  rows : interval_row list; (* one per measured TCP session *)
}

type result = {
  discipline : string;
  measured : (string * series) list; (** per TCP leaf, packet system *)
  ideal : (string * series) list;    (** per TCP leaf, fluid H-GPS *)
  intervals : interval list;         (** steady-state averages per phase *)
  tcp_stats : (string * int * int) list; (** leaf, retransmits, timeouts *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?engine:Hpfq.Hier_engine.choice ->
  ?factory:Sched.Sched_intf.factory ->
  ?horizon:float ->
  ?seed:int64 ->
  unit ->
  result
(** Defaults: WF²Q+, {!Paper_hierarchies.fig8_horizon}, seed 1. The
    packet run and the fluid ideal are independent; with a [pool] of two
    or more workers they run on separate domains (the result is identical
    either way — both halves are deterministic). [engine] selects the
    hierarchy engine (default [`Auto]). *)

val run_grid :
  ?pool:Parallel.Pool.t ->
  ?engine:Hpfq.Hier_engine.choice ->
  factories:Sched.Sched_intf.factory list ->
  ?horizon:float ->
  unit ->
  result list
(** One full run per discipline, fanned out on [pool] (default:
    sequential), results in [factories] order for any worker count. *)

val summary : Format.formatter -> result -> unit
(** Per-interval table: measured vs ideal bandwidth for each TCP session
    (the numeric content of Fig. 9). *)
