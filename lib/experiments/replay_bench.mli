(** Trace-replay benchmark backing `dune exec bench/main.exe -- replay`.

    Replays one synthetic internet-mix trace (see
    {!Traffic.Trace.internet_mix}) through the same H-WF²Q+ hierarchy at
    every rung of a burst_max ladder (1, 2, 8, 64, unbounded), checks the
    departure hash is identical on every rung — the burst-drain
    determinism contract on a realistic workload — and writes
    BENCH_replay.json with the batched-vs-per-packet speedup headline. *)

type row = {
  burst : int;  (** burst_max for this rung ([max_int] = unbounded) *)
  arrivals : int;
  departures : int;
  pkts_per_sec : float;
  minor_words_per_pkt : float;
  depart_hash : string;  (** order-sensitive hash of (flow, seq, time) *)
}

val batched_burst : int
(** The ladder rung the headline speedup compares against burst 1 (64). *)

val scale_rates : float -> Hpfq.Class_tree.t -> Hpfq.Class_tree.t
(** Multiply every node's rate by a factor, preserving relative shares —
    how a unit-rate spec is sized to a trace's offered load. *)

val measure :
  ?config:Engine.Simulator.config ->
  ?engine:Hpfq.Hier_engine.choice ->
  spec:Hpfq.Class_tree.t ->
  trace:Traffic.Trace.event list ->
  burst:int ->
  unit ->
  row
(** Replay [trace] through one H-WF²Q+ hierarchy built from [spec] at the
    given burst cap and drain it to completion: arrivals are pre-scheduled
    (per-event at burst 1, grouped by timestamp above it), trace events
    naming leaves absent from [spec] are skipped, and the row carries the
    departure count, throughput and order-sensitive departure hash. The
    hash is a pure function of ([spec], [trace]) — identical at every
    [burst] and on every machine. *)

val run : ?quick:bool -> ?out:string -> unit -> row list
(** Run the ladder and write the JSON report to [out] (default
    ["BENCH_replay.json"]). [quick] shrinks the trace to smoke-test size.
    @raise Failure if any rung's departure hash or count disagrees with
    the others, or the emitted report fails {!validate}. *)

val required_keys : string list
val required_row_keys : string list

val validate : Bench_kit.Json.t -> (unit, string list) result
(** Check a parsed report for the required top-level and per-row keys. *)

val headline_of_report : Bench_kit.Json.t -> (float * string, string) result
(** Extract [(headline.batched_pkts_per_sec, headline.depart_hash)]. *)

val headline_words_of_report : Bench_kit.Json.t -> float option
(** Extract [headline.batched_minor_words_per_pkt] when the report
    carries it (reports written before the allocation tier do not). *)

type guard_result = {
  baseline_pps : float;  (** batched headline recorded in the baseline *)
  fresh_pps : float;  (** batched headline measured just now *)
  perf_ratio : float;  (** [fresh_pps /. baseline_pps] *)
  speedup : float;  (** fresh batched / fresh per-packet *)
  hash_ok : bool;  (** both fresh hashes equal the committed one *)
  baseline_words : float option;
      (** committed batched minor words/packet, when present *)
  fresh_words : float;  (** fresh batched minor words/packet *)
  tol : float;  (** relative slowdown tolerated (HPFQ_REPLAY_TOL) *)
  min_speedup : float;  (** speedup floor (HPFQ_REPLAY_RATIO) *)
  words_tol : float;  (** allocation growth tolerated (HPFQ_WORDS_TOL) *)
  words_within : bool;
      (** [fresh_words <= baseline_words * (1 + words_tol)] (vacuous when
          the baseline has no words key) *)
  within : bool;  (** [hash_ok] and all ratio/ceiling gates passed *)
}

val guard :
  ?baseline:string ->
  ?tol:float ->
  ?min_speedup:float ->
  ?words_tol:float ->
  ?quick:bool ->
  unit ->
  (guard_result, string) result
(** Regression gate: re-measure the per-packet and batched rungs on the
    full workload ([quick] swaps in the smoke-test trace — the baseline
    must then come from a quick run too, or the hash gate fires) and
    compare against [baseline] (default ["BENCH_replay.json"]). Fails when the batched throughput drops more
    than [tol] (HPFQ_REPLAY_TOL, default 0.2) below the committed number,
    when the batched/per-packet speedup is under [min_speedup]
    (HPFQ_REPLAY_RATIO, default 1.0 — batching must never lose), when
    the fresh batched allocation rate exceeds the committed
    [headline.batched_minor_words_per_pkt] by more than [words_tol]
    ([HPFQ_WORDS_TOL], default 0.1), or — with no tolerance knob — when
    either fresh departure hash differs from the committed one. [Error]
    means the baseline is missing or unreadable, not a gate failure. *)
