(* Subtree-sharded hierarchy suite (bench id "hiershard").

   The shard suite ("shard") scales N *independent* per-link hierarchies;
   this one scales ONE giant hierarchy: the root's child subtrees
   partitioned over Shard.Subtree shards, the root's WF2Q+ run in epochs.
   Two claims, guarded differently:

   - *exactness at epoch 1*: every epoch = 1 rung must produce the same
     departure hash as the sequential Hier_flat reference, at any shard
     or worker count — binding on every host, even single-core;
   - *worker invariance at epoch > 1*: with the partition fixed, the
     schedule (hence the hash) must not depend on the worker count;
   - *throughput*: epoch-batched rungs within the host's core budget
     should stay near the sequential reference (the root sync is the
     sequential section, so this is a no-regression floor, not a linear
     speedup curve). Oversubscribed rungs are reported, not gated. *)

module Json = Bench_kit.Json
module ST = Shard.Subtree
module HF = Hpfq.Hier_flat
module CT = Hpfq.Class_tree

type row = {
  shards : int;
  epoch : int;
  workers : int;
  wall_s : float;
  pkts : int;
  pkts_per_sec : float;
  ratio_vs_flat : float;  (** pkts_per_sec / the Hier_flat reference's *)
  depart_hash : int64;
  exact : bool;  (** epoch = 1: hash must equal the flat reference *)
}

let shards_ladder () = [ 1; 4; 16 ]
let epoch_ladder () = [ 1; 8; 64 ]

(* -- workload: one wide hierarchy, overloaded burst arrivals ------------- *)

let root_children = 16
let leaves_per_child = 4

let spec () =
  let sub i =
    let r = 0.999 /. float_of_int root_children in
    CT.node (Printf.sprintf "sub%d" i) ~rate:r
      (List.init leaves_per_child (fun j ->
           CT.leaf
             (Printf.sprintf "sub%d/leaf%d" i j)
             ~rate:(0.999 *. r /. float_of_int leaves_per_child)))
  in
  CT.node "root" ~rate:1.0 (List.init root_children sub)

(* (time, leaf index, size_bits, count) bursts; offered load ~1.5x the
   link so arrivals land while the link transmits — the staging path is
   what the epoch rungs measure. Deterministic in the seed. *)
let program ~quick =
  let target = if quick then 20_000 else 200_000 in
  let burst = 4 in
  let n_leaves = root_children * leaves_per_child in
  let rng = Random.State.make [| 0x415; 0x3aed |] in
  let size = 1.0 in
  let duration =
    (* total_bits / (overload * rate), overload = 1.5 *)
    float_of_int target *. size /. 1.5
  in
  List.init (target / burst) (fun _ ->
      ( Random.State.float rng duration,
        Random.State.int rng n_leaves,
        size,
        burst ))

let fnv_prime = 0x100000001b3L
let fold_hash h v = Int64.mul (Int64.logxor h v) fnv_prime

let hash_depart h pkt ~leaf t =
  let open Net.Packet in
  let x = fold_hash h (Int64.of_int (Hashtbl.hash leaf)) in
  let x = fold_hash x (Int64.of_int pkt.seq) in
  fold_hash x (Int64.bits_of_float t)

let run_flat ~spec ~program =
  let sim = Engine.Simulator.create () in
  let pkts = ref 0 and hash = ref 0xcbf29ce484222325L in
  let h =
    HF.create ~sim ~spec
      ~on_depart:(fun pkt ~leaf t ->
        incr pkts;
        hash := hash_depart !hash pkt ~leaf t)
      ()
  in
  let ids =
    Array.of_list (List.map (fun (name, _) -> HF.leaf_id h name) (CT.leaves spec))
  in
  List.iter
    (fun (at, leaf, size_bits, count) ->
      ignore
        (Engine.Simulator.schedule sim ~at (fun () ->
             HF.inject_many h ~leaf:ids.(leaf) ~size_bits ~count)))
    program;
  let t0 = Unix.gettimeofday () in
  Engine.Simulator.run sim;
  (Unix.gettimeofday () -. t0, !pkts, !hash)

let run_cell ~spec ~program ~shards ~epoch ~workers =
  let sim = Engine.Simulator.create () in
  let pkts = ref 0 and hash = ref 0xcbf29ce484222325L in
  let t =
    ST.create ~sim ~spec ~shards ~workers ~epoch
      ~on_depart:(fun pkt ~leaf t ->
        incr pkts;
        hash := hash_depart !hash pkt ~leaf t)
      ()
  in
  let ids =
    Array.of_list (List.map (fun (name, _) -> ST.leaf_id t name) (CT.leaves spec))
  in
  List.iter
    (fun (at, leaf, size_bits, count) ->
      ignore
        (Engine.Simulator.schedule sim ~at (fun () ->
             ST.inject_many t ~leaf:ids.(leaf) ~size_bits ~count)))
    program;
  let t0 = Unix.gettimeofday () in
  Engine.Simulator.run sim;
  let wall = Unix.gettimeofday () -. t0 in
  ST.shutdown t;
  (wall, !pkts, !hash)

let measure ?(quick = false) () =
  let cores = Parallel.Pool.cores () in
  let spec = spec () in
  let program = program ~quick in
  let flat_wall, flat_pkts, flat_hash = run_flat ~spec ~program in
  let flat_pps = float_of_int flat_pkts /. flat_wall in
  let rows =
    List.concat_map
      (fun shards ->
        List.map
          (fun epoch ->
            let workers =
              if epoch = 1 then 0 else max 0 (min shards (cores - 1))
            in
            let wall, pkts, hash = run_cell ~spec ~program ~shards ~epoch ~workers in
            if epoch = 1 && hash <> flat_hash then
              failwith
                (Printf.sprintf
                   "Hiershard_bench: shards=%d epoch=1 departure hash %s \
                    diverged from the Hier_flat reference %s — the exactness \
                    contract is broken"
                   shards
                   (Shard.Device.hash_hex hash)
                   (Shard.Device.hash_hex flat_hash));
            if epoch > 1 && workers > 0 then begin
              (* worker invariance: the same cell flushed inline *)
              let _, pkts0, hash0 =
                run_cell ~spec ~program ~shards ~epoch ~workers:0
              in
              if pkts0 <> pkts || hash0 <> hash then
                failwith
                  (Printf.sprintf
                     "Hiershard_bench: shards=%d epoch=%d not worker-invariant \
                      (hash %s with %d workers vs %s inline)"
                     shards epoch
                     (Shard.Device.hash_hex hash)
                     workers
                     (Shard.Device.hash_hex hash0))
            end;
            let pps = float_of_int pkts /. wall in
            {
              shards;
              epoch;
              workers;
              wall_s = wall;
              pkts;
              pkts_per_sec = pps;
              ratio_vs_flat = pps /. flat_pps;
              depart_hash = hash;
              exact = epoch = 1;
            })
          (epoch_ladder ()))
      (shards_ladder ())
  in
  (cores, flat_pps, Shard.Device.hash_hex flat_hash, rows)

(* -- JSON report --------------------------------------------------------- *)

let json_of_run ~quick ~cores ~flat_pps ~flat_hash rows =
  let row_json r =
    Json.Obj
      [
        ("shards", Json.Num (float_of_int r.shards));
        ("epoch", Json.Num (float_of_int r.epoch));
        ("workers", Json.Num (float_of_int r.workers));
        ("wall_s", Json.Num r.wall_s);
        ("pkts", Json.Num (float_of_int r.pkts));
        ("pkts_per_sec", Json.Num r.pkts_per_sec);
        ("ratio_vs_flat", Json.Num r.ratio_vs_flat);
        ("depart_hash", Json.Str (Shard.Device.hash_hex r.depart_hash));
        ("exact", Json.Bool r.exact);
      ]
  in
  let headline =
    let best =
      List.fold_left
        (fun acc r ->
          match acc with
          | Some b when b.ratio_vs_flat >= r.ratio_vs_flat -> acc
          | _ -> Some r)
        None
        (List.filter (fun r -> r.epoch > 1) rows)
    in
    match best with
    | Some r ->
      Json.Obj
        [
          ( "workload",
            Json.Str
              (Printf.sprintf "hiershard_s%d_e%d_w%d" r.shards r.epoch r.workers)
          );
          ("pkts_per_sec", Json.Num r.pkts_per_sec);
          ("ratio_vs_flat", Json.Num r.ratio_vs_flat);
          ("cores", Json.Num (float_of_int cores));
        ]
    | None -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-hiershard-v1");
      ("bench", Json.Str "hiershard");
      ("quick", Json.Bool quick);
      ("cores", Json.Num (float_of_int cores));
      ( "workload",
        Json.Str
          (Printf.sprintf "one_tree_%dx%d_overload1.5" root_children
             leaves_per_child) );
      ("flat_pkts_per_sec", Json.Num flat_pps);
      ("flat_depart_hash", Json.Str flat_hash);
      ("headline", headline);
      ("rows", Json.Arr (List.map row_json rows));
    ]

let required_keys =
  [ "schema"; "cores"; "flat_pkts_per_sec"; "flat_depart_hash"; "rows" ]

let required_row_keys =
  [ "shards"; "epoch"; "workers"; "pkts_per_sec"; "ratio_vs_flat"; "depart_hash" ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "rows" json with
    | Some rows -> (
      match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "rows entries" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let run ?(quick = false) ?(out = "BENCH_hiershard.json") () =
  Printf.printf
    "\n================ HIERSHARD: one tree, subtree shards x epoch ================\n%!";
  let cores, flat_pps, flat_hash, rows = measure ~quick () in
  Printf.printf "cores=%d, Hier_flat reference %.0f pkts/s, hash %s\n" cores
    flat_pps flat_hash;
  Printf.printf "%7s %6s %8s %12s %14s %8s %6s  %s\n" "shards" "epoch" "workers"
    "wall (s)" "pkts/s" "ratio" "exact" "depart_hash";
  List.iter
    (fun r ->
      Printf.printf "%7d %6d %8d %12.3f %14.0f %7.2fx %6b  %s\n" r.shards
        r.epoch r.workers r.wall_s r.pkts_per_sec r.ratio_vs_flat r.exact
        (Shard.Device.hash_hex r.depart_hash))
    rows;
  let json = json_of_run ~quick ~cores ~flat_pps ~flat_hash rows in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith
      ("Hiershard_bench.run: emitted JSON is missing keys: "
      ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out;
  rows

(* -- guard ---------------------------------------------------------------- *)

type guard_row = {
  g_shards : int;
  g_epoch : int;
  g_workers : int;
  g_ratio : float;
  g_floor : float;
  g_enforced : bool;
  g_ok : bool;
}

type guard_result = {
  g_cores : int;
  g_tol : float;
  g_rows : guard_row list;
  g_within : bool;
}

let default_guard_tol () =
  match Sys.getenv_opt "HPFQ_HIERSHARD_TOL" with
  | Some s -> (
    match float_of_string_opt s with Some t when t >= 0.0 && t < 1.0 -> t | _ -> 0.35)
  | None -> 0.35

let guard ?(baseline = "BENCH_hiershard.json") ?tol ?quick () =
  let tol = match tol with Some t -> t | None -> default_guard_tol () in
  if not (Sys.file_exists baseline) then
    Error
      (Printf.sprintf "baseline %s not found (run `bench hiershard` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json -> (
        match validate json with
        | Ok () -> Ok ()
        | Error missing -> Error ("missing keys: " ^ String.concat ", " missing))
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok () ->
      (* exactness and worker invariance are checked inside [measure] on
         every host; a 1-core host can verify only those, so it runs the
         quick grid *)
      let quick =
        match quick with Some q -> q | None -> Parallel.Pool.cores () < 2
      in
      let cores, _, _, rows = measure ~quick () in
      let g_rows =
        List.map
          (fun r ->
            let floor = 1.0 -. tol in
            {
              g_shards = r.shards;
              g_epoch = r.epoch;
              g_workers = r.workers;
              g_ratio = r.ratio_vs_flat;
              g_floor = floor;
              (* coordinator + workers must fit the host's cores for the
                 throughput floor to mean anything *)
              g_enforced = r.workers + 1 <= max 1 cores;
              g_ok = r.ratio_vs_flat >= floor;
            })
          rows
      in
      Ok
        {
          g_cores = cores;
          g_tol = tol;
          g_rows;
          g_within = List.for_all (fun g -> (not g.g_enforced) || g.g_ok) g_rows;
        }
