(** The class hierarchies used by the paper's experiments, reconstructed.

    The paper states the load-bearing parameters (RT-1's 0.81 share of its
    parent = 9 Mbps, 8 KB packets, the on/off duty cycles, CS trains ~193 ms
    apart, which sessions sit at which level) but not every leaf's rate; the
    remaining values are fixed here so that every stated number holds and
    ratios stay clean. See EXPERIMENTS.md for the full derivation. *)

(** {1 Fig. 1 — the link-sharing example of the introduction} *)

val fig1 : link_rate:float -> Hpfq.Class_tree.t
(** 11 agencies; A1 owns 50% split into best-effort (20% of A1) and
    real-time subclasses. *)

(** {1 Fig. 3 — delay experiment hierarchy (§5.1)} *)

val fig3_link_rate : float
(** 44.44 Mbps (≈T3): makes RT-1's stated numbers exact
    (9 Mbps = 0.81 × 11.11 Mbps, N-1 = ½ N-2, N-2 = ½ link). *)

val fig3_packet_bits : float
(** 8 KB = 65536 bits, the paper's uniform packet size. *)

val fig3 : Hpfq.Class_tree.t
(** {v
    N-R 44.44 Mbps
    ├─ N-2 22.22 (0.5)
    │   ├─ N-1 11.11 (0.5)
    │   │   ├─ RT-1 9.0  (0.81)       measured real-time session
    │   │   └─ BE-1 2.11 (0.19)       greedy best-effort
    │   └─ CS-1..CS-10 1.111 each     packet-train sources
    └─ PS-1..PS-10 2.222 each         constant-rate / Poisson sources
    v}
    CS-n and PS-n are direct siblings of RT-1's ancestors, so the one-level
    servers on RT-1's path each schedule 11 sessions — the regime where
    WFQ's WFI (∝ session count) degrades the hierarchy's delay. *)

val rt1_rate : float
val rt1_sigma_bits : float
(** Burstiness of RT-1's on/off pattern: peak×on_duration worth of bits
    beyond the sustained rate; used for delay-bound comparisons. *)

val ps_rate : float
val cs_rate : float

(** {1 Fig. 8 — link-sharing hierarchy with TCP and on/off sources (§5.2)} *)

val fig8_link_rate : float
(** 40 Mbps. *)

val fig8 : Hpfq.Class_tree.t
(** Four levels; one on/off source per level; TCP-1 at level 1, TCP-5 at 2,
    TCP-8 at 3, TCP-10/11 at 4 — the five sessions §5.2 examines. *)

val fig8_tcp_leaves : string list
(** ["TCP-1"; "TCP-5"; "TCP-8"; "TCP-10"; "TCP-11"]. *)

val fig8_onoff_schedule : (string * float * (float * float) list) list
(** [(leaf, peak_rate, active_windows)]: the §5.2 narrative's toggle times —
    source 4 active on [5.0,8.0]; sources 2–3 active until 5.0 (3 again from
    8.0); source 1 idle on (5.25,6.0), (6.75,7.5), (8.25,9.0). Seconds. *)

val fig8_horizon : float
(** 10 s of simulated time. *)
