(** Hierarchy engine A/B benchmark backing `dune exec bench/main.exe -- hier`.

    Measures end-to-end saturated throughput of the generic H-PFQ server
    ({!Hpfq.Hier}) against the flattened monomorphic engine
    ({!Hpfq.Hier_flat}) — same H-WF2Q+ algorithm, bit-identical schedules
    — on the paper's Fig. 3 topology and balanced trees of depth 2/4/6 up
    to 4096 leaves, then writes a machine-readable report
    (BENCH_hier.json) with per-topology flat/generic speedups and a
    Fig. 3 headline. *)

type engine_kind = Generic | Flat

val engine_name : engine_kind -> string

type row = {
  topology : string;
  leaves : int;
  engine : engine_kind;
  pkts_per_sec : float;  (** saturated steady-state departures/second *)
  minor_words_per_pkt : float;  (** GC minor words per departed packet *)
}

val run : ?pool:Parallel.Pool.t -> ?quick:bool -> ?out:string -> unit -> row list
(** Run the full grid (topology × both engines), print a table plus
    speedups, and write the JSON report to [out] (default
    ["BENCH_hier.json"]). [quick] shrinks the grid and packet budget to
    smoke-test levels. [pool] fans the cells across domains (concurrent
    cells contend, so parallel numbers are only comparable at the same
    [-j]; baselines and {!guard} measure sequentially).
    @raise Failure if the emitted report fails {!validate}. *)

val required_keys : string list
val required_row_keys : string list

val validate : Bench_kit.Json.t -> (unit, string list) result

val headline_of_report : Bench_kit.Json.t -> (float, string) result
(** Extract [headline.flat_pkts_per_sec] from a parsed report. *)

val headline_words_of_report : Bench_kit.Json.t -> float option
(** Extract [headline.flat_minor_words_per_pkt] when the report carries
    it (reports written before the allocation tier do not). *)

type guard_result = {
  baseline_pps : float;  (** flat headline recorded in the baseline file *)
  fresh_pps : float;  (** flat Fig. 3 headline measured just now *)
  perf_ratio : float;  (** [fresh_pps /. baseline_pps] *)
  speedup : float;  (** fresh flat/generic ratio on Fig. 3 *)
  flat_words : float;  (** fresh flat minor words/packet *)
  generic_words : float;  (** fresh generic minor words/packet *)
  baseline_flat_words : float option;
      (** committed flat minor words/packet, when present *)
  tol : float;  (** relative slowdown tolerated vs the baseline *)
  min_speedup : float;  (** floor on [speedup] *)
  words_tol : float;  (** relative allocation growth tolerated *)
  words_within : bool;
      (** [flat_words <= baseline_flat_words * (1 + words_tol)] (vacuous
          when the baseline has no words key) *)
  within : bool;
      (** [perf_ratio >= 1 - tol && speedup >= min_speedup
          && words_within] *)
}

val guard :
  ?baseline:string ->
  ?tol:float ->
  ?min_speedup:float ->
  ?words_tol:float ->
  ?target_pkts:int ->
  unit ->
  (guard_result, string) result
(** Regression gate, mirroring [Events.guard]: re-measure the Fig. 3
    headline on both engines and compare the flat number against the
    committed [baseline] (default ["BENCH_hier.json"]). [tol] defaults to
    [HPFQ_HIER_TOL] or 0.2; [min_speedup] to [HPFQ_HIER_RATIO] or 1.0 —
    the flat engine must never fall behind the generic one. The committed
    [headline.flat_minor_words_per_pkt] is additionally a hard allocation
    ceiling with band [words_tol] ([HPFQ_WORDS_TOL], default 0.1).
    [Error] means the baseline is missing or unreadable, not a perf
    failure. *)
