(** Subtree-sharded hierarchy suite (bench id "hiershard").

    Runs ONE wide H-WF²Q+ hierarchy — 16 root-child subtrees of 4 leaves
    — through {!Shard.Subtree} across a shards × epoch grid under an
    overloaded burst workload, against a sequential {!Hpfq.Hier_flat}
    reference. Two contracts are binding on every host, even single-core:
    every [epoch = 1] rung's departure hash must equal the flat
    reference's, and every [epoch > 1] rung must be worker-count
    invariant (the same cell re-run with inline flushes must hash
    identically) — {!measure} raises [Failure] on either divergence.

    Results go to [BENCH_hiershard.json]; {!guard} re-measures and holds
    every rung whose coordinator + workers fit the host's cores to a
    no-regression throughput floor vs the flat reference, loosened by
    [HPFQ_HIERSHARD_TOL] (default 0.35). The root sync is the sequential
    section, so the floor is "sharding must not cost more than the
    tolerance", not a linear speedup curve. *)

type row = {
  shards : int;
  epoch : int;
  workers : int;  (** 0 at [epoch = 1]; min(shards, cores-1) otherwise *)
  wall_s : float;
  pkts : int;
  pkts_per_sec : float;
  ratio_vs_flat : float;  (** pkts_per_sec / the Hier_flat reference's *)
  depart_hash : int64;
  exact : bool;  (** [epoch = 1]: hash checked equal to the reference *)
}

val shards_ladder : unit -> int list
(** [[1; 4; 16]] — 16 is one shard per root child. *)

val epoch_ladder : unit -> int list
(** [[1; 8; 64]]. *)

val measure : ?quick:bool -> unit -> int * float * string * row list
(** [(cores, flat_pkts_per_sec, flat_depart_hash_hex, rows)]. Raises
    [Failure] if any epoch = 1 rung diverges from the flat reference or
    any epoch > 1 rung is not worker-invariant. *)

val validate : Bench_kit.Json.t -> (unit, string list) result
(** Schema check for an emitted/committed report: [Error missing_keys]. *)

val run : ?quick:bool -> ?out:string -> unit -> row list
(** Print the table, write the JSON report to [out] (default
    [BENCH_hiershard.json]), validate its schema. *)

type guard_row = {
  g_shards : int;
  g_epoch : int;
  g_workers : int;
  g_ratio : float;
  g_floor : float;  (** [1 - tol] *)
  g_enforced : bool;  (** coordinator + workers fit the host's cores *)
  g_ok : bool;
}

type guard_result = {
  g_cores : int;
  g_tol : float;
  g_rows : guard_row list;
  g_within : bool;
}

val guard :
  ?baseline:string -> ?tol:float -> ?quick:bool -> unit -> (guard_result, string) result
(** Re-measure (quick by default on hosts with fewer than 2 cores, where
    only the exactness half is meaningful) and hold every within-budget
    rung to the no-regression floor. The committed baseline must exist
    and parse so a PR cannot silently drop the report; the hash contracts
    are enforced by [measure] itself regardless of the baseline. *)
