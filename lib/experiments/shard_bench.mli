(** Multi-port device scaling suite (bench id "shard").

    Runs {!Shard.Device} — N independent H-WF²Q+ links sharded over
    worker domains behind the batched ingress router — across a jobs
    ladder and a links grid, and reports aggregate packet throughput and
    speedup vs the 1-worker run. Every rung's [device_hash] must equal
    the 1-worker hash for the same grid point (the device's determinism
    contract, checked on the real workload); any diff fails the suite
    hard.

    Results go to [BENCH_shard.json]; {!guard} re-measures and holds the
    cores-scaled speedup floor (shared with the parallel suite:
    {!Parallel_bench.expected_floor}), loosened by [HPFQ_SHARD_TOL]. *)

type row = {
  links : int;
  jobs : int;
  rounds : int;
  wall_s : float;
  pkts : int;  (** total departed packets, device-wide *)
  pkts_per_sec : float;
  speedup : float;  (** wall(-j1) / wall(-jN) at the same [links] *)
  floor : float;  (** cores-aware expected speedup at this rung *)
  device_hash : int64;
}

val jobs_ladder : unit -> int list
(** [1; 2; 4; 8] plus the host's core count, deduplicated, ascending. *)

val links_grid : quick:bool -> int list
(** [[64; 256; 1024]], or [[16]] under [--quick]. *)

val measure : ?quick:bool -> unit -> int * row list
(** [(cores, rows)]. Best-of-runs wall clock per rung; raises [Failure]
    if any rung's device hash diverges from the 1-worker reference. *)

val validate : Bench_kit.Json.t -> (unit, string list) result
(** Schema check for an emitted/committed report: [Error missing_keys]. *)

val run : ?quick:bool -> ?out:string -> unit -> row list
(** Print the table, write the JSON report to [out] (default
    [BENCH_shard.json]), validate its schema. *)

type guard_row = {
  g_links : int;
  g_jobs : int;
  g_speedup : float;
  g_floor : float;  (** tolerance-scaled *)
  g_enforced : bool;  (** rungs oversubscribing the host are reported only *)
  g_ok : bool;
}

type guard_result = {
  g_cores : int;
  g_tol : float;
  g_rows : guard_row list;
  g_within : bool;
}

val guard :
  ?baseline:string -> ?tol:float -> ?quick:bool -> unit -> (guard_result, string) result
(** Re-measure and hold every within-core-budget rung to
    [expected_floor * (1 - tol)] (tol from [HPFQ_SHARD_TOL], default
    0.25). Like the parallel guard, the committed baseline documents one
    machine while the floor is scaled to the host's cores — but the file
    must exist and parse, so a PR cannot silently drop the report.
    [quick] defaults to true on hosts with fewer than 2 cores, where
    only the determinism half of the contract is measurable. *)
