(* Multi-port device scaling suite (bench id "shard").

   The parallel suite ("parallel") scales a fork-join sweep of
   independent experiment cells; this one scales the steady-state
   production engine: one device, N links, bounded mailboxes, persistent
   workers. Same two claims, same guard philosophy:

   - *determinism*: every (links, jobs) cell must produce the same
     device hash as the 1-worker run of that cell — the hash folds every
     link's order-sensitive departure trace, so a single reordered or
     re-stamped packet anywhere in the device fails the suite;
   - *scaling*: aggregate pkts/s at -j J should approach min(J, cores)
     times the 1-worker run. The floor is the parallel suite's
     cores-aware curve, so the two suites stay comparable. *)

module Json = Bench_kit.Json

type row = {
  links : int;
  jobs : int;
  rounds : int;
  wall_s : float;
  pkts : int;
  pkts_per_sec : float;
  speedup : float;
  floor : float;
  device_hash : int64;
}

let jobs_ladder () =
  List.sort_uniq compare (1 :: 2 :: 4 :: 8 :: [ Parallel.Pool.cores () ])

let links_grid ~quick = if quick then [ 16 ] else [ 64; 256; 1024 ]

(* Size rounds so every grid point offers about the same total packet
   count — wall clock then measures throughput, not workload size. *)
let rounds_for ~quick ~links =
  let target = if quick then 20_000 else 200_000 in
  let w = Shard.Device.default_workload ~rounds:1 in
  let per_round = links * w.Shard.Device.flows_per_link * (w.Shard.Device.burst_max / 2) in
  max 10 (target / max 1 per_round)

let run_cell ~links ~jobs ~rounds =
  let workload = Shard.Device.default_workload ~rounds in
  let t = Shard.Device.create ~workers:jobs ~workload ~links () in
  let r = Shard.Device.run t in
  (r.Shard.Device.wall_s, r.Shard.Device.total_pkts, r.Shard.Device.device_hash)

(* Best-of-[runs] wall clock per rung (interference only ever adds
   time); hash and pkts are checked equal across the runs for free. *)
let measure ?(quick = false) () =
  let cores = Parallel.Pool.cores () in
  let runs = if quick then 1 else 2 in
  let rows =
    List.concat_map
      (fun links ->
        let rounds = rounds_for ~quick ~links in
        let reference = ref None in
        List.map
          (fun jobs ->
            let cells = List.init runs (fun _ -> run_cell ~links ~jobs ~rounds) in
            let wall =
              List.fold_left (fun acc (w, _, _) -> Float.min acc w) infinity cells
            in
            let _, pkts, hash = List.hd cells in
            List.iter
              (fun (_, p, h) ->
                if p <> pkts || h <> hash then
                  failwith
                    (Printf.sprintf
                       "Shard_bench: links=%d -j%d not reproducible across runs"
                       links jobs))
              cells;
            (match !reference with
            | None -> reference := Some (pkts, hash)
            | Some (ref_pkts, ref_hash) ->
              if pkts <> ref_pkts || hash <> ref_hash then
                failwith
                  (Printf.sprintf
                     "Shard_bench: links=%d -j%d diverged from the -j1 \
                      reference (hash %s vs %s) — the device's determinism \
                      contract is broken"
                     links jobs
                     (Shard.Device.hash_hex hash)
                     (Shard.Device.hash_hex ref_hash)));
            (links, jobs, rounds, wall, pkts, hash))
          (jobs_ladder ()))
      (links_grid ~quick)
  in
  let wall_j1 ~links =
    match
      List.find_opt (fun (l, j, _, _, _, _) -> l = links && j = 1) rows
    with
    | Some (_, _, _, w, _, _) -> w
    | None -> assert false
  in
  ( cores,
    List.map
      (fun (links, jobs, rounds, wall_s, pkts, device_hash) ->
        {
          links;
          jobs;
          rounds;
          wall_s;
          pkts;
          pkts_per_sec = float_of_int pkts /. wall_s;
          speedup = wall_j1 ~links /. wall_s;
          floor = Parallel_bench.expected_floor ~cores ~jobs;
          device_hash;
        })
      rows )

(* -- JSON report --------------------------------------------------------- *)

let json_of_run ~quick ~cores rows =
  let row_json r =
    Json.Obj
      [
        ("links", Json.Num (float_of_int r.links));
        ("jobs", Json.Num (float_of_int r.jobs));
        ("rounds", Json.Num (float_of_int r.rounds));
        ("wall_s", Json.Num r.wall_s);
        ("pkts", Json.Num (float_of_int r.pkts));
        ("pkts_per_sec", Json.Num r.pkts_per_sec);
        ("speedup", Json.Num r.speedup);
        ("expected_floor", Json.Num r.floor);
        ("device_hash", Json.Str (Shard.Device.hash_hex r.device_hash));
      ]
  in
  let headline =
    let best =
      List.filter (fun r -> r.jobs <= cores) rows
      |> List.fold_left
           (fun acc r ->
             match acc with
             | Some b when b.speedup >= r.speedup -> acc
             | _ -> Some r)
           None
    in
    match best with
    | Some r ->
      Json.Obj
        [
          ("workload", Json.Str (Printf.sprintf "device_%dlinks_j%d" r.links r.jobs));
          ("pkts_per_sec", Json.Num r.pkts_per_sec);
          ("speedup", Json.Num r.speedup);
          ("expected_floor", Json.Num r.floor);
          ("cores", Json.Num (float_of_int cores));
        ]
    | None -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-shard-v1");
      ("bench", Json.Str "shard");
      ("quick", Json.Bool quick);
      ("cores", Json.Num (float_of_int cores));
      ("workload", Json.Str "shard_device");
      ("headline", headline);
      ("rows", Json.Arr (List.map row_json rows));
    ]

let required_keys = [ "schema"; "cores"; "rows" ]

let required_row_keys =
  [ "links"; "jobs"; "pkts_per_sec"; "speedup"; "expected_floor"; "device_hash" ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "rows" json with
    | Some rows -> (
      match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "rows entries" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let run ?(quick = false) ?(out = "BENCH_shard.json") () =
  Printf.printf
    "\n================ SHARD: multi-port device scaling vs -j ================\n%!";
  let cores, rows = measure ~quick () in
  Printf.printf "cores=%d, device hash cross-checked per rung\n" cores;
  Printf.printf "%7s %5s %7s %12s %14s %9s %8s  %s\n" "links" "jobs" "rounds"
    "wall (s)" "pkts/s" "speedup" "floor" "device_hash";
  List.iter
    (fun r ->
      Printf.printf "%7d %5d %7d %12.3f %14.0f %8.2fx %7.2fx  %s\n" r.links
        r.jobs r.rounds r.wall_s r.pkts_per_sec r.speedup r.floor
        (Shard.Device.hash_hex r.device_hash))
    rows;
  let json = json_of_run ~quick ~cores rows in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith
      ("Shard_bench.run: emitted JSON is missing keys: " ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out;
  rows

(* -- scaling guard -------------------------------------------------------- *)

type guard_row = {
  g_links : int;
  g_jobs : int;
  g_speedup : float;
  g_floor : float;
  g_enforced : bool;
  g_ok : bool;
}

type guard_result = {
  g_cores : int;
  g_tol : float;
  g_rows : guard_row list;
  g_within : bool;
}

let default_guard_tol () =
  match Sys.getenv_opt "HPFQ_SHARD_TOL" with
  | Some s -> (
    match float_of_string_opt s with Some t when t >= 0.0 && t < 1.0 -> t | _ -> 0.25)
  | None -> 0.25

let guard ?(baseline = "BENCH_shard.json") ?tol ?quick () =
  let tol = match tol with Some t -> t | None -> default_guard_tol () in
  if not (Sys.file_exists baseline) then
    Error (Printf.sprintf "baseline %s not found (run `bench shard` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json -> (
        match validate json with
        | Ok () -> Ok ()
        | Error missing -> Error ("missing keys: " ^ String.concat ", " missing))
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok () ->
      let quick =
        (* a 1-core host can only verify determinism and that sharding
           costs nothing; spend the full grid where scaling is real *)
        match quick with Some q -> q | None -> Parallel.Pool.cores () < 2
      in
      let cores, rows = measure ~quick () in
      (* jobs > cores rungs are reported, not gated — oversubscription
         cost is a host property, not a device regression *)
      let g_rows =
        List.map
          (fun r ->
            let floor = r.floor *. (1.0 -. tol) in
            {
              g_links = r.links;
              g_jobs = r.jobs;
              g_speedup = r.speedup;
              g_floor = floor;
              g_enforced = r.jobs <= max 1 cores;
              g_ok = r.speedup >= floor;
            })
          rows
      in
      Ok
        {
          g_cores = cores;
          g_tol = tol;
          g_rows;
          g_within = List.for_all (fun g -> (not g.g_enforced) || g.g_ok) g_rows;
        }
