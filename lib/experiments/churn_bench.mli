(** Session-churn benchmark ([bench churn]) and virtual-time soak harness.

    The churn grid sizes the session-lifecycle machinery: 10⁵–10⁶
    sessions open on one policy, then a steady loop of
    backlog → [close_session ~policy:`Drop] → [open_session] (slot reuse
    through the arena freelist, generation bump per reopen). The headline
    is the fixed-point engine's churn events/second at the largest grid
    point; the acceptance floor is 10⁵ events/s.

    The soak harness drives one continuously backlogged session at a
    non-dyadic rate and measures how far each engine's virtual time
    drifts from the exact accumulated service (eqs. 27–29): the float
    engine picks up one rounding per packet, the fixed-point engine adds
    exact integer ticks and is checked for {e zero} drift in the integer
    domain. *)

type row = {
  engine : string;
  sessions : int;  (** concurrent open sessions during the churn loop *)
  ramp_opens_per_sec : float;  (** cold-start open rate (empty → full) *)
  churn_events_per_sec : float;  (** open+close events/s at steady state *)
  minor_words_per_event : float;
  live_after : int;  (** must equal [sessions]: every close was repaid *)
}

val run : ?quick:bool -> ?out:string -> unit -> row list
(** Run the grid (engines {WF²Q+fx, WF²Q+} × sessions {10⁵, 10⁶};
    [~quick:true] shrinks to 10⁴ sessions and a shorter loop), print a
    table and write the JSON report (schema ["hpfq-bench-churn-v1"]) to
    [out] (default [BENCH_churn.json]).
    @raise Failure if a cell leaks or loses sessions, or the emitted JSON
    fails {!validate}. *)

val validate : Bench_kit.Json.t -> (unit, string list) result
(** Check a report for the required top-level and per-row keys; [Error]
    lists what is missing. *)

val headline_of_report : Bench_kit.Json.t -> (float, string) result
(** Extract the headline churn-events/s figure from a report. *)

type guard_result = {
  baseline_eps : float;  (** headline events/s from the baseline file *)
  fresh_eps : float;  (** freshly measured headline events/s *)
  perf_ratio : float;  (** fresh / baseline *)
  floor : float;  (** absolute events/s floor in force *)
  tol : float;  (** relative tolerance in force *)
  within : bool;  (** [perf_ratio >= 1 - tol] and [fresh_eps >= floor] *)
}

val guard :
  ?baseline:string ->
  ?tol:float ->
  ?floor:float ->
  ?sessions:int ->
  ?iters:int ->
  unit ->
  (guard_result, string) result
(** Re-measure the headline cell and compare against the committed
    baseline report (default [BENCH_churn.json]). [tol] defaults to
    [HPFQ_CHURN_TOL] (else 0.2); [floor] to [HPFQ_CHURN_FLOOR] (else
    1e5); [sessions]/[iters] shrink the fresh measurement for smoke
    tests. [Error] means the baseline could not be read or parsed. *)

type soak_result = {
  s_engine : string;
  s_packets : int;
  s_v_end : float;  (** virtual time after the run *)
  s_drift : float;  (** signed error of V vs exact [n * step] *)
  s_exact : bool;  (** drift known exactly zero (integer-domain check) *)
}

val soak : ?packets:int -> unit -> soak_result list
(** Long-horizon drift measurement at rate 0.3 (default 10⁷ packets;
    [HPFQ_SOAK]-gated callers pass 10⁹). Returns one result per engine,
    fixed-point first. The fixed-point result has [s_exact = true] and
    [s_drift = 0.] by construction; the float result's [s_drift] is the
    engine's accumulated rounding error, measurably non-zero. *)
