type completion = { session : int; seq : int; finish : float }

type result = {
  gps : completion list;
  packet : (string * completion list) list;
}

let session_rates = 0.5 :: List.init 10 (fun _ -> 0.05)

let run_fluid () =
  let finishes = ref [] in
  let g =
    Fluid.Gps.create ~rate:1.0 ~session_rates
      ~on_packet_finish:(fun pkt t ->
        finishes :=
          { session = pkt.Net.Packet.flow; seq = pkt.Net.Packet.seq; finish = t }
          :: !finishes)
      ()
  in
  for _ = 1 to 11 do
    ignore (Fluid.Gps.arrive g ~at:0.0 ~session:0 ~size_bits:1.0)
  done;
  for s = 1 to 10 do
    ignore (Fluid.Gps.arrive g ~at:0.0 ~session:s ~size_bits:1.0)
  done;
  Fluid.Gps.advance g ~to_:30.0;
  List.sort (fun a b -> compare (a.finish, a.session, a.seq) (b.finish, b.session, b.seq)) !finishes

let run_packet factory =
  let sim = Engine.Simulator.create () in
  let finishes = ref [] in
  let server =
    Hpfq.Server.create ~sim ~rate:1.0
      ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
      ~on_depart:(fun pkt t ->
        finishes :=
          { session = pkt.Net.Packet.flow; seq = pkt.Net.Packet.seq; finish = t }
          :: !finishes)
      ()
  in
  List.iter (fun r -> ignore (Hpfq.Server.add_session server ~rate:r ())) session_rates;
  ignore
    (Engine.Simulator.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 11 do
           ignore (Hpfq.Server.inject server ~session:0 ~size_bits:1.0)
         done;
         for s = 1 to 10 do
           ignore (Hpfq.Server.inject server ~session:s ~size_bits:1.0)
         done));
  Engine.Simulator.run sim;
  List.rev !finishes

let run_traced factory =
  let sim = Engine.Simulator.create () in
  let finishes = ref [] in
  let server =
    Hpfq.Server.create ~sim ~rate:1.0
      ~policy:(factory.Sched.Sched_intf.make ~rate:1.0)
      ~on_depart:(fun pkt t ->
        finishes :=
          { session = pkt.Net.Packet.flow; seq = pkt.Net.Packet.seq; finish = t }
          :: !finishes)
      ()
  in
  List.iter (fun r -> ignore (Hpfq.Server.add_session server ~rate:r ())) session_rates;
  let session_names =
    Array.init (List.length session_rates) (fun i -> Printf.sprintf "s%d" (i + 1))
  in
  let trace = Obs.Trace.attach_server ~name:"fig2-link" ~session_names server in
  Obs.Trace.attach_sim trace sim;
  ignore
    (Engine.Simulator.schedule sim ~at:0.0 (fun () ->
         for _ = 1 to 11 do
           ignore (Hpfq.Server.inject server ~session:0 ~size_bits:1.0)
         done;
         for s = 1 to 10 do
           ignore (Hpfq.Server.inject server ~session:s ~size_bits:1.0)
         done));
  Engine.Simulator.run sim;
  (List.rev !finishes, trace)

let run () =
  let disciplines =
    [
      Hpfq.Disciplines.wfq;
      Hpfq.Disciplines.wf2q;
      Hpfq.Disciplines.wf2q_plus;
      Hpfq.Disciplines.scfq;
    ]
  in
  {
    gps = run_fluid ();
    packet =
      List.map
        (fun f -> (f.Sched.Sched_intf.kind, run_packet f))
        disciplines;
  }

let session1_finishes completions =
  List.filter_map (fun c -> if c.session = 0 then Some (c.seq, c.finish) else None)
    completions
  |> List.sort compare |> List.map snd

(* Max over time of W_i^packet(0,t) − W_i^GPS(0,t) for session [i]: how many
   bits ahead of the fluid schedule the discipline let the session run. The
   paper's §3.1 point: ~N/2 packets for WFQ, < 1 packet for WF2Q/WF2Q+. *)
let max_service_lead ?(session = 0) completions =
  let g = Fluid.Gps.create ~rate:1.0 ~session_rates () in
  for _ = 1 to 11 do
    ignore (Fluid.Gps.arrive g ~at:0.0 ~session:0 ~size_bits:1.0)
  done;
  for s = 1 to 10 do
    ignore (Fluid.Gps.arrive g ~at:0.0 ~session:s ~size_bits:1.0)
  done;
  let finishes =
    List.filter (fun c -> c.session = session) completions
    |> List.sort (fun a b -> compare a.finish b.finish)
  in
  let lead = ref 0.0 in
  List.iteri
    (fun k c ->
      Fluid.Gps.advance g ~to_:c.finish;
      let packet_service = float_of_int (k + 1) in
      let fluid_service = Fluid.Gps.served_bits g ~session in
      lead := Float.max !lead (packet_service -. fluid_service))
    finishes;
  !lead

let render fmt { gps; packet } =
  let line name completions =
    Format.fprintf fmt "%-6s|" name;
    List.iter
      (fun c ->
        if c.session = 0 then Format.fprintf fmt " s1#%-2d" c.seq
        else Format.fprintf fmt " s%-4d" (c.session + 1))
      completions;
    Format.fprintf fmt "@."
  in
  Format.fprintf fmt "Service order (left to right in completion order):@.";
  line "GPS" gps;
  List.iter (fun (name, completions) -> line name completions) packet;
  Format.fprintf fmt "@.Session-1 finish times:@.";
  Format.fprintf fmt "  %-6s %s@." "GPS"
    (String.concat " " (List.map (Printf.sprintf "%.3g") (session1_finishes gps)));
  List.iter
    (fun (name, completions) ->
      Format.fprintf fmt "  %-6s %s@." name
        (String.concat " "
           (List.map (Printf.sprintf "%.3g") (session1_finishes completions))))
    packet;
  ignore gps;
  Format.fprintf fmt "@.Max session-1 service lead over GPS (packets):@.";
  List.iter
    (fun (name, completions) ->
      Format.fprintf fmt "  %-6s %.3f@." name (max_service_lead completions))
    packet
