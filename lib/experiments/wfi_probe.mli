(** Empirical Worst-case Fair Index measurement (the Theorem 3/4 check, and
    the paper's claim that WFQ's WFI "grows proportionally to the number of
    queues" while WF²Q+'s does not).

    Construction (a scaled Fig. 2): session 0 owns half the unit link; [n]
    background sessions share the other half. Session 0 bursts [n] unit
    packets at t = 0 — under WFQ they are all served back-to-back, putting
    session 0 maximally ahead of its fluid schedule. The instant session 0's
    queue drains, a {e probe} packet arrives at the (now empty) queue. Per
    Definition 1 its delay must satisfy
    [d − a ≤ Q(a)/r_0 + A_{0,s}] with [Q(a) = L], so the measured T-WFI is
    [d − a − L/r_0]. *)

type measurement = {
  discipline : string;
  n : int;                  (** background sessions *)
  measured_twfi : float;    (** seconds *)
  wf2q_plus_bound : float;  (** Theorem 4's T-WFI, same workload *)
  probe_delay : float;
}

val measure :
  ?config:Engine.Simulator.config ->
  factory:Sched.Sched_intf.factory ->
  n:int ->
  unit ->
  measurement
(** One probe run on a private simulator. [config] pins the event-set
    backend (parallel sweeps pass a pre-spawn snapshot); without it the
    process default is read, as before. *)

val sweep :
  ?pool:Parallel.Pool.t ->
  factory:Sched.Sched_intf.factory ->
  ns:int list ->
  unit ->
  measurement list
(** The N-sweep for one discipline; [{!sweep_grid}] with one factory. *)

val sweep_grid :
  ?pool:Parallel.Pool.t ->
  factories:Sched.Sched_intf.factory list ->
  ns:int list ->
  unit ->
  measurement list
(** The discipline × N grid, in row-major (factory-outer) order. Cells
    fan out on [pool] (default: sequential); each builds its own
    simulator from a {!Engine.Simulator.snapshot_config} taken before any
    worker spawns, and the result order is the grid order regardless of
    worker count — the output is bit-identical for any [-j]. *)
