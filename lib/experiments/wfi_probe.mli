(** Empirical Worst-case Fair Index measurement (the Theorem 3/4 check, and
    the paper's claim that WFQ's WFI "grows proportionally to the number of
    queues" while WF²Q+'s does not).

    Construction (a scaled Fig. 2): session 0 owns half the unit link; [n]
    background sessions share the other half. Session 0 bursts [n] unit
    packets at t = 0 — under WFQ they are all served back-to-back, putting
    session 0 maximally ahead of its fluid schedule. The instant session 0's
    queue drains, a {e probe} packet arrives at the (now empty) queue. Per
    Definition 1 its delay must satisfy
    [d − a ≤ Q(a)/r_0 + A_{0,s}] with [Q(a) = L], so the measured T-WFI is
    [d − a − L/r_0]. *)

type measurement = {
  discipline : string;
  n : int;                  (** background sessions *)
  measured_twfi : float;    (** seconds *)
  wf2q_plus_bound : float;  (** Theorem 4's T-WFI, same workload *)
  probe_delay : float;
}

val measure : factory:Sched.Sched_intf.factory -> n:int -> measurement

val sweep : factory:Sched.Sched_intf.factory -> ns:int list -> measurement list
