(* Hierarchy engine A/B benchmark (bench id "hier").

   The generic H-PFQ server (Hpfq.Hier) composes boxed one-level policies
   behind first-class function records; the flattened engine
   (Hpfq.Hier_flat) runs the same H-WF2Q+ algorithm over unboxed arrays
   with direct static calls — bit-identical schedules (the lockstep
   property test proves it), different constant factors. This suite
   measures both engines end to end — saturated steady state, every leaf
   at a two-packet backlog — on the paper's Fig. 3 topology and on
   balanced trees of depth 2/4/6 up to 4096 leaves, then writes
   BENCH_hier.json with per-topology flat/generic speedups and a Fig. 3
   headline; [guard] re-measures the headline against the committed file,
   mirroring Events.guard. *)

module H = Paper_hierarchies
module Perf = Bench_kit.Perf
module Json = Bench_kit.Json

type engine_kind = Generic | Flat

let engine_name = function Generic -> "generic" | Flat -> "flat"
let engine_choice = function Generic -> `Generic | Flat -> `Flat

type row = {
  topology : string;
  leaves : int;
  engine : engine_kind;
  pkts_per_sec : float;
  minor_words_per_pkt : float;
}

(* Each cell: (label, spec, pkt_bits). Fig. 3 runs with the paper's 8 KB
   packets at its real rates; balanced trees use rate 1 and 1-bit packets
   so the horizon equals the departure count. *)
let balanced ~depth ~fanout =
  ( Printf.sprintf "balanced_d%d_f%d" depth fanout,
    Perf.uniform_spec ~depth ~fanout ~name:"root" ~rate:1.0,
    1.0 )

let topologies ~quick =
  if quick then [ ("fig3", H.fig3, H.fig3_packet_bits); balanced ~depth:2 ~fanout:4 ]
  else
    [
      ("fig3", H.fig3, H.fig3_packet_bits);
      balanced ~depth:2 ~fanout:8 (* 64 leaves *);
      balanced ~depth:2 ~fanout:64 (* 4096 leaves *);
      balanced ~depth:4 ~fanout:4 (* 256 leaves *);
      balanced ~depth:4 ~fanout:8 (* 4096 leaves *);
      balanced ~depth:6 ~fanout:2 (* 64 leaves *);
      balanced ~depth:6 ~fanout:4 (* 4096 leaves *);
    ]

let headline_topology = "fig3"
let default_target_pkts ~quick = if quick then 500 else 100_000

let measure ?config ~spec ~pkt_bits ~engine ~target_pkts ~topology () =
  let n_leaves, pps, words =
    Perf.hier_throughput_spec ?config ~engine:(engine_choice engine) ~spec
      ~factory:Hpfq.Disciplines.wf2q_plus ~pkt_bits ~target_pkts ()
  in
  {
    topology;
    leaves = int_of_float n_leaves;
    engine;
    pkts_per_sec = pps;
    minor_words_per_pkt = words;
  }

(* -- JSON report --------------------------------------------------------- *)

let row_json r =
  Json.Obj
    [
      ("topology", Json.Str r.topology);
      ("leaves", Json.Num (float_of_int r.leaves));
      ("engine", Json.Str (engine_name r.engine));
      ("pkts_per_sec", Json.Num r.pkts_per_sec);
      ("minor_words_per_pkt", Json.Num r.minor_words_per_pkt);
    ]

let find_row rows ~topology ~engine =
  List.find_opt (fun r -> r.topology = topology && r.engine = engine) rows

let speedups rows =
  List.filter_map
    (fun topology ->
      match
        (find_row rows ~topology ~engine:Flat, find_row rows ~topology ~engine:Generic)
      with
      | Some f, Some g -> Some (topology, f, g, f.pkts_per_sec /. g.pkts_per_sec)
      | _ -> None)
    (List.sort_uniq compare (List.map (fun r -> r.topology) rows))

let json_of_run ~quick rows =
  let headline =
    match
      ( find_row rows ~topology:headline_topology ~engine:Flat,
        find_row rows ~topology:headline_topology ~engine:Generic )
    with
    | Some f, Some g ->
      Json.Obj
        [
          ("workload", Json.Str "fig3_saturated");
          ("flat_pkts_per_sec", Json.Num f.pkts_per_sec);
          ("generic_pkts_per_sec", Json.Num g.pkts_per_sec);
          ("speedup", Json.Num (f.pkts_per_sec /. g.pkts_per_sec));
          ("flat_minor_words_per_pkt", Json.Num f.minor_words_per_pkt);
          ("generic_minor_words_per_pkt", Json.Num g.minor_words_per_pkt);
        ]
    | _ -> Json.Null
  in
  Json.Obj
    [
      ("schema", Json.Str "hpfq-bench-hier-v1");
      ("bench", Json.Str "hier");
      ("quick", Json.Bool quick);
      ("headline", headline);
      ("rows", Json.Arr (List.map row_json rows));
      ( "speedups",
        Json.Arr
          (List.map
             (fun (topology, f, _, ratio) ->
               Json.Obj
                 [
                   ("topology", Json.Str topology);
                   ("leaves", Json.Num (float_of_int f.leaves));
                   ("flat_over_generic", Json.Num ratio);
                 ])
             (speedups rows)) );
    ]

let required_keys = [ "schema"; "headline"; "rows"; "speedups" ]

let required_row_keys =
  [ "topology"; "leaves"; "engine"; "pkts_per_sec"; "minor_words_per_pkt" ]

let validate json =
  let missing =
    List.filter (fun k -> Json.member k json = None) required_keys
    @
    match Json.member "rows" json with
    | Some rows -> (
      match Json.to_list rows with
      | Some (row :: _) ->
        List.filter (fun k -> Json.member k row = None) required_row_keys
      | Some [] | None -> [ "rows entries" ])
    | None -> []
  in
  if missing = [] then Ok () else Error missing

let run ?pool ?(quick = false) ?(out = "BENCH_hier.json") () =
  Printf.printf
    "\n================ HIER: H-WF2Q+ engine A/B, generic vs flat \
     ================\n%!";
  (* topology × engine cells are independent full-stack simulations, so
     they fan out on [pool] — with the usual caveat: concurrent cells
     contend for the machine, so parallel numbers are only comparable at
     the same -j; the committed baseline and [guard] run sequentially *)
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let config = Engine.Simulator.snapshot_config () in
  let target_pkts = default_target_pkts ~quick in
  let grid =
    List.concat_map
      (fun (topology, spec, pkt_bits) ->
        List.map
          (fun engine -> (topology, spec, pkt_bits, engine))
          [ Generic; Flat ])
      (topologies ~quick)
  in
  let rows =
    Parallel.Pool.map_list pool
      ~f:(fun (topology, spec, pkt_bits, engine) ->
        measure ~config ~spec ~pkt_bits ~engine ~target_pkts ~topology ())
      grid
  in
  Printf.printf "%-18s %8s %10s %16s %12s\n" "topology" "leaves" "engine"
    "pkts/sec" "words/pkt";
  List.iter
    (fun r ->
      Printf.printf "%-18s %8d %10s %16.0f %12.3f\n" r.topology r.leaves
        (engine_name r.engine) r.pkts_per_sec r.minor_words_per_pkt)
    rows;
  Printf.printf "\n%-18s %8s %22s\n" "topology" "leaves" "flat/generic speedup";
  List.iter
    (fun (topology, f, _, ratio) ->
      Printf.printf "%-18s %8d %22.2fx\n" topology f.leaves ratio)
    (speedups rows);
  let json = json_of_run ~quick rows in
  Json.to_file out json;
  (match validate json with
  | Ok () -> ()
  | Error missing ->
    failwith
      ("Hier_bench.run: emitted JSON is missing keys: " ^ String.concat ", " missing));
  Printf.printf "\nwrote %s\n%!" out;
  rows

(* -- regression guard ----------------------------------------------------- *)

let headline_of_report json =
  match Json.member "headline" json with
  | None -> Error "report has no \"headline\" object"
  | Some h -> (
    match Json.member "flat_pkts_per_sec" h with
    | None -> Error "headline has no \"flat_pkts_per_sec\" field"
    | Some v -> (
      match Json.to_float v with
      | Some f when f > 0.0 -> Ok f
      | _ -> Error "headline \"flat_pkts_per_sec\" is not a positive number"))

(* Committed allocation ceiling: the flat headline's minor words/packet,
   when the baseline carries it (older baselines do not). *)
let headline_words_of_report json =
  match Json.member "headline" json with
  | None -> None
  | Some h -> (
    match Json.member "flat_minor_words_per_pkt" h with
    | None -> None
    | Some v -> (
      match Json.to_float v with Some w when w > 0.0 -> Some w | _ -> None))

type guard_result = {
  baseline_pps : float;
  fresh_pps : float;
  perf_ratio : float;
  speedup : float; (* fresh flat / fresh generic on Fig. 3 *)
  flat_words : float;
  generic_words : float;
  baseline_flat_words : float option;
  tol : float;
  min_speedup : float;
  words_tol : float;
  words_within : bool;
  within : bool;
}

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match float_of_string_opt s with Some t when t >= 0.0 -> t | _ -> default)
  | None -> default

(* End-to-end hierarchy runs are noisier than the one-level policy cycle,
   so the default tolerance matches Events.guard's 20%. HPFQ_HIER_RATIO
   is the floor on the fresh flat/generic speedup — default 1.0: the flat
   engine must never be slower than the generic walk. The measured margin
   on Fig. 3 is modest (~1.1x, rising to ~1.3x on deep trees) because the
   generic path shares the same SoA per-node core and most of the
   per-packet cycle is simulator/fifo/heap work common to both engines;
   the flat engine's decisive win is allocation (~1.6x fewer minor words
   per packet). CI relaxes both knobs on shared runners. *)
let guard ?(baseline = "BENCH_hier.json") ?tol ?min_speedup ?words_tol
    ?target_pkts () =
  let tol = match tol with Some t -> t | None -> env_float "HPFQ_HIER_TOL" 0.2 in
  let min_speedup =
    match min_speedup with
    | Some r -> r
    | None -> env_float "HPFQ_HIER_RATIO" 1.0
  in
  let words_tol =
    match words_tol with
    | Some t -> t
    | None -> env_float "HPFQ_WORDS_TOL" 0.1
  in
  if not (Sys.file_exists baseline) then
    Error (Printf.sprintf "baseline %s not found (run `bench hier` first)" baseline)
  else
    let parsed =
      match Json.of_file baseline with
      | json ->
        Result.map
          (fun pps -> (pps, headline_words_of_report json))
          (headline_of_report json)
      | exception Json.Parse_error msg -> Error msg
      | exception Sys_error msg -> Error msg
    in
    match parsed with
    | Error e -> Error (Printf.sprintf "%s: %s" baseline e)
    | Ok (baseline_pps, baseline_flat_words) ->
      let target_pkts =
        match target_pkts with
        | Some t -> t
        | None -> default_target_pkts ~quick:false
      in
      let flat =
        measure ~spec:H.fig3 ~pkt_bits:H.fig3_packet_bits ~engine:Flat
          ~target_pkts ~topology:headline_topology ()
      in
      let generic =
        measure ~spec:H.fig3 ~pkt_bits:H.fig3_packet_bits ~engine:Generic
          ~target_pkts ~topology:headline_topology ()
      in
      let fresh_pps = flat.pkts_per_sec in
      let speedup = flat.pkts_per_sec /. generic.pkts_per_sec in
      let words_within =
        match baseline_flat_words with
        | None -> true
        | Some b -> flat.minor_words_per_pkt <= b *. (1.0 +. words_tol)
      in
      Ok
        {
          baseline_pps;
          fresh_pps;
          perf_ratio = fresh_pps /. baseline_pps;
          speedup;
          flat_words = flat.minor_words_per_pkt;
          generic_words = generic.minor_words_per_pkt;
          baseline_flat_words;
          tol;
          min_speedup;
          words_tol;
          words_within;
          within =
            fresh_pps /. baseline_pps >= 1.0 -. tol
            && speedup >= min_speedup && words_within;
        }
