(** The §5.1 delay experiments (Figs. 4–7): RT-1's packet delay under a
    hierarchical scheduler built from a given one-level discipline, for the
    paper's three traffic scenarios.

    Fig. 3 hierarchy ({!Paper_hierarchies.fig3}); RT-1 is a deterministic
    on/off source (25 ms on / 75 ms off from t = 200 ms) at 4× duty so its
    average equals its 9 Mbps guarantee; BE-1 is continuously backlogged;
    the background is:

    - {b Scenario 1} (Fig. 4): PS-n constant-rate at their guaranteed rates,
      CS-n packet trains on;
    - {b Scenario 2} (Fig. 6): PS-n Poisson at 1.5× guaranteed (persistent
      overload), CS-n off;
    - {b Scenario 3} (Fig. 7): overloaded Poisson {e and} CS-n on. *)

type scenario = S1_constant_and_trains | S2_overloaded_poisson | S3_overload_and_trains

val scenario_name : scenario -> string

type result = {
  discipline : string;
  scenario : scenario;
  delays : Stats.Delay_stats.t;      (** RT-1 per-packet delay *)
  lag : Stats.Service_curve.t;       (** RT-1 arrivals vs service, packets *)
  rt_packets : int;
  drops : int;
  link_utilization : float;          (** fraction of horizon the link was busy *)
}

val run :
  ?config:Engine.Simulator.config ->
  ?rng:Engine.Rng.t ->
  ?engine:Hpfq.Hier_engine.choice ->
  factory:Sched.Sched_intf.factory ->
  scenario:scenario ->
  ?horizon:float ->
  ?seed:int64 ->
  unit ->
  result
(** Default [horizon] 10 s, [seed] 1. Deterministic given both. [config]
    pins the event-set backend (parallel sweeps pass a pre-spawn
    snapshot); [rng] overrides the seed-derived generator — {!run_sweep}
    passes stable per-replication streams derived with
    {!Engine.Rng.for_task}. [engine] selects the hierarchy engine
    (default [`Auto]: flat for WF²Q+, generic otherwise). *)

val run_sweep :
  ?pool:Parallel.Pool.t ->
  ?engine:Hpfq.Hier_engine.choice ->
  factories:Sched.Sched_intf.factory list ->
  scenario:scenario ->
  ?horizon:float ->
  ?seed:int64 ->
  ?replications:int ->
  unit ->
  result list
(** The discipline × replication grid (replication-inner order), fanned
    out on [pool] (default: sequential). Replication [k] of {e every}
    discipline draws from [Rng.for_task (Rng.create seed) k], so the
    disciplines face identical arrival streams and the output is
    bit-identical for any worker count. *)

val rt1_delay_bound : float
(** Corollary 2's bound for RT-1 in the Fig. 3 tree (uses
    {!Paper_hierarchies.rt1_sigma_bits}). *)

val summary_row : result -> string
(** One formatted line: discipline, scenario, max/mean/p99 delay (ms),
    max service lag (packets). *)
