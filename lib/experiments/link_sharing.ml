module H = Paper_hierarchies
module Sim = Engine.Simulator
module HE = Hpfq.Hier_engine

type series = (float * float) list
type interval_row = { leaf : string; measured : float; ideal : float }

type interval = {
  label : string;
  t0 : float;
  t1 : float;
  rows : interval_row list;
}

type result = {
  discipline : string;
  measured : (string * series) list;
  ideal : (string * series) list;
  intervals : interval list;
  tcp_stats : (string * int * int) list;
}

(* Phase boundaries implied by the on/off schedule. *)
let breakpoints = [ 0.5; 5.0; 5.25; 6.0; 6.75; 7.5; 8.0; 8.25; 9.0; 10.0 ]

let run_packet ?config ?engine ~factory ~horizon () =
  let sim =
    match config with
    | Some c -> Sim.create_configured c
    | None -> Sim.create ()
  in
  let meters =
    List.map (fun leaf -> (leaf, Stats.Bandwidth_meter.create ())) H.fig8_tcp_leaves
  in
  let tcps = Hashtbl.create 8 in
  let on_depart pkt ~leaf t =
    (match List.assoc_opt leaf meters with
    | Some meter -> Stats.Bandwidth_meter.add meter ~time:t ~bits:pkt.Net.Packet.size_bits
    | None -> ());
    match Hashtbl.find_opt tcps leaf with
    | Some tcp -> Tcp.Tcp_reno.on_segment_delivered tcp ~mark:pkt.Net.Packet.mark
    | None -> ()
  in
  let h = HE.create ~sim ~spec:H.fig8 ~factory ?engine ~on_depart () in
  (* TCP connections on the measured leaves *)
  List.iter
    (fun leaf_name ->
      let leaf = HE.leaf_id h leaf_name in
      let send ~mark ~size_bits =
        let before = HE.drops h in
        ignore (HE.inject ~mark h ~leaf ~size_bits);
        if HE.drops h > before then `Dropped else `Queued
      in
      let tcp =
        Tcp.Tcp_reno.create ~sim ~send ~segment_bits:H.fig3_packet_bits
          ~ack_delay:0.002 ()
      in
      Hashtbl.replace tcps leaf_name tcp)
    H.fig8_tcp_leaves;
  (* on/off background per schedule: CBR inside each active window *)
  List.iter
    (fun (leaf_name, peak, windows) ->
      let leaf = HE.leaf_id h leaf_name in
      let emit ~size_bits = ignore (HE.inject h ~leaf ~size_bits) in
      List.iter
        (fun (w0, w1) ->
          ignore
            (Traffic.Source.cbr ~sim ~emit ~rate:peak ~packet_bits:H.fig3_packet_bits
               ~start:w0 ~stop_at:(Float.min w1 horizon) ()))
        windows)
    H.fig8_onoff_schedule;
  Sim.run ~until:horizon sim;
  let measured =
    List.map
      (fun (leaf, meter) -> (leaf, Stats.Bandwidth_meter.series meter ~until:horizon))
      meters
  in
  let stats =
    List.map
      (fun leaf ->
        let tcp = Hashtbl.find tcps leaf in
        (leaf, Tcp.Tcp_reno.retransmits tcp, Tcp.Tcp_reno.timeouts tcp))
      H.fig8_tcp_leaves
  in
  (measured, stats)

let run_fluid ~horizon =
  let fluid = Fluid.Hgps.create ~spec:H.fig8 () in
  (* TCP leaves are persistently backlogged in the ideal system; on/off
     sources are fed the same CBR arrival trains as the packet run *)
  List.iter
    (fun leaf ->
      Fluid.Hgps.set_persistent fluid ~at:0.0 ~leaf:(Fluid.Hgps.leaf_id fluid leaf) true)
    H.fig8_tcp_leaves;
  let arrivals =
    List.concat_map
      (fun (leaf, peak, windows) ->
        let gap = H.fig3_packet_bits /. peak in
        List.concat_map
          (fun (w0, w1) ->
            let n = max 0 (int_of_float ((Float.min w1 horizon -. w0) /. gap)) in
            List.init n (fun k -> (w0 +. (float_of_int k *. gap), leaf)))
          windows)
      H.fig8_onoff_schedule
    |> List.sort compare
  in
  (* sample cumulative service on a 50 ms grid, interleaving arrivals *)
  let dt = 0.05 in
  let steps = int_of_float (horizon /. dt) in
  let arrays =
    List.map (fun leaf -> (leaf, Array.make (steps + 1) 0.0)) H.fig8_tcp_leaves
  in
  let remaining = ref arrivals in
  for k = 0 to steps do
    let t = float_of_int k *. dt in
    let rec apply () =
      match !remaining with
      | (at, leaf) :: rest when at <= t ->
        ignore
          (Fluid.Hgps.arrive fluid ~at ~leaf:(Fluid.Hgps.leaf_id fluid leaf)
             ~size_bits:H.fig3_packet_bits);
        remaining := rest;
        apply ()
      | _ -> ()
    in
    apply ();
    Fluid.Hgps.advance fluid ~to_:t;
    List.iter
      (fun (leaf, arr) -> arr.(k) <- Fluid.Hgps.served_bits fluid ~node:leaf)
      arrays
  done;
  List.map
    (fun (leaf, arr) ->
      let series =
        List.init steps (fun k ->
            (float_of_int (k + 1) *. dt, (arr.(k + 1) -. arr.(k)) /. dt))
      in
      (leaf, series))
    arrays

let average_over series ~t0 ~t1 =
  let points = List.filter (fun (t, _) -> t > t0 && t <= t1) series in
  match points with
  | [] -> 0.0
  | _ ->
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 points
    /. float_of_int (List.length points)

let run ?pool ?engine ?(factory = Hpfq.Disciplines.wf2q_plus) ?(horizon = H.fig8_horizon)
    ?seed:_ () =
  (* the packet system and the fluid ideal share nothing — they are the
     two natural tasks of this experiment, so a 2-worker pool halves its
     wall clock; both halves are deterministic, so fan-out is free *)
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let config = Sim.snapshot_config () in
  let halves =
    Parallel.Pool.map pool ~tasks:2 ~f:(fun i ->
        if i = 0 then `Packet (run_packet ~config ?engine ~factory ~horizon ())
        else `Fluid (run_fluid ~horizon))
  in
  let measured, tcp_stats =
    match halves.(0) with `Packet p -> p | `Fluid _ -> assert false
  in
  let ideal = match halves.(1) with `Fluid f -> f | `Packet _ -> assert false in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  let intervals =
    List.map
      (fun (t0, t1) ->
        let rows =
          List.map
            (fun leaf ->
              {
                leaf;
                measured = average_over (List.assoc leaf measured) ~t0 ~t1;
                ideal = average_over (List.assoc leaf ideal) ~t0 ~t1;
              })
            H.fig8_tcp_leaves
        in
        { label = Printf.sprintf "[%.2f,%.2f]s" t0 t1; t0; t1; rows })
      (pairs breakpoints)
  in
  { discipline = factory.Sched.Sched_intf.kind; measured; ideal; intervals; tcp_stats }

(* Scenario grid: one full run per discipline. Tasks run their two halves
   inline (a sequential inner pool) — the outer grid is the better unit of
   fan-out since cells outnumber the halves. *)
let run_grid ?pool ?engine ~factories ?horizon () =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create ~jobs:1 () in
  let inner = Parallel.Pool.create ~jobs:1 () in
  Parallel.Pool.map_list pool
    ~f:(fun factory -> run ~pool:inner ?engine ~factory ?horizon ())
    factories

let summary fmt r =
  Format.fprintf fmt "Link sharing under H-%s vs ideal H-GPS (Mbps):@." r.discipline;
  Format.fprintf fmt "%-14s" "interval";
  List.iter (fun leaf -> Format.fprintf fmt " %14s" leaf) H.fig8_tcp_leaves;
  Format.fprintf fmt "@.";
  List.iter
    (fun interval ->
      Format.fprintf fmt "%-14s" interval.label;
      List.iter
        (fun (row : interval_row) ->
          Format.fprintf fmt " %6.2f/%-7.2f" (row.measured /. 1e6) (row.ideal /. 1e6))
        interval.rows;
      Format.fprintf fmt "@.")
    r.intervals;
  Format.fprintf fmt "(each cell: measured/ideal)@.";
  Format.fprintf fmt "TCP health:";
  List.iter
    (fun (leaf, retx, to_) -> Format.fprintf fmt " %s retx=%d timeouts=%d;" leaf retx to_)
    r.tcp_stats;
  Format.fprintf fmt "@."
