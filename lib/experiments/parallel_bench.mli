(** Multicore scaling suite backing `dune exec bench/main.exe -- parallel`.

    Runs the wfi discipline × session-count sweep grid under
    {!Parallel.Pool}s of 1/2/4/8 workers, cross-checks that every rung
    produces bit-identical measurements to the [-j1] reference (the
    pool's determinism contract, enforced on a real workload), and
    writes wall-clock / speedup rows to [BENCH_parallel.json] together
    with the host's core count — speedup is a property of the machine,
    so the number only means something next to [cores]. *)

type row = {
  jobs : int;
  wall_s : float;  (** best-of-runs wall clock for the whole grid *)
  speedup : float;  (** [wall(-j1) /. wall(-jN)] *)
  floor : float;  (** cores-aware expected speedup, see {!expected_floor} *)
}

val jobs_ladder : int list
(** [[1; 2; 4; 8]]. *)

val expected_floor : cores:int -> jobs:int -> float
(** The speedup a healthy pool should reach at [-j jobs] on a host with
    [cores] cores: 1.7x at an effective 2 workers, 3x at 8 (linear
    between the anchors), where effective = [min jobs cores] —
    oversubscribing a small host is expected to buy nothing, not
    punished. *)

val run : ?quick:bool -> ?out:string -> unit -> row list
(** Measure the ladder (best of 3 runs per rung; [quick] shrinks the grid
    and runs once), print the table, write the JSON report.
    @raise Failure if any rung's results diverge from the [-j1] reference
    or the emitted report fails {!validate}. *)

val required_keys : string list
val required_row_keys : string list
val validate : Bench_kit.Json.t -> (unit, string list) result

type guard_row = {
  g_jobs : int;
  g_speedup : float;
  g_floor : float;  (** tolerance-scaled floor this rung must clear *)
  g_enforced : bool;
      (** false on rungs that oversubscribe the host ([jobs > cores]) —
          reported for context but not gated, since extra domains on a
          time-sliced core cost wall clock for runtime reasons the pool
          can't control *)
  g_ok : bool;
}

type guard_result = {
  g_cores : int;
  g_tol : float;
  g_rows : guard_row list;
  g_within : bool;  (** every {e enforced} rung cleared its floor *)
}

val guard :
  ?baseline:string -> ?tol:float -> ?quick:bool -> unit -> (guard_result, string) result
(** Scaling gate. Requires a committed, schema-valid [baseline] (default
    ["BENCH_parallel.json"]) so the report cannot be silently dropped,
    then re-measures the ladder and checks each rung with
    [jobs <= cores] against [(1 - tol) * expected_floor ~cores ~jobs]
    {e for the host it runs on} — a 1-core CI container effectively only
    re-verifies determinism and the [-j1] path, while an 8-core machine
    is held to the 3x target; oversubscribed rungs are reported as
    context. [tol]
    defaults to [HPFQ_PARALLEL_TOL] or 0.25 (speedups are noisier than
    throughput). [quick] defaults to true on hosts with fewer than 2
    cores. [Error] means the baseline is missing or unreadable, not a
    scaling failure. *)
