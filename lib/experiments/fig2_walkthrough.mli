(** The Fig. 2 worked example: service order of GPS vs WFQ vs WF²Q vs WF²Q+.

    Eleven sessions share a unit-rate link with unit packets; session 1
    (φ = 0.5) sends 11 back-to-back packets at t = 0, the ten others
    (φ = 0.05 each) one packet each. GPS interleaves; WFQ bursts session 1's
    first ten packets; the SEFF disciplines track GPS within one packet. *)

type completion = { session : int; seq : int; finish : float }

type result = {
  gps : completion list; (* fluid finish times *)
  packet : (string * completion list) list; (* per packet discipline *)
}

val run : unit -> result
(** Disciplines compared: WFQ, WF²Q, WF²Q+, SCFQ. *)

val run_traced : Sched.Sched_intf.factory -> completion list * Obs.Trace.t
(** Run the same scenario under one discipline with the observability layer
    attached: every scheduler operation, link event, and per-session metric
    of the walkthrough ends up in the returned trace. Sessions are labelled
    [s1 … s11] ([s1] is the φ = 0.5 burst session). The golden-trace test
    pins this trace for WF²Q+. *)

val session1_finishes : completion list -> float list
(** Finish times of session 1's packets, in sequence order. *)

val max_service_lead : ?session:int -> completion list -> float
(** Max over time of W_i(packet) − W_i(GPS) for the given session (default
    session 0/"session 1"): how far ahead of its fluid schedule the
    discipline ran the session — the paper's measure of WFQ's inaccuracy
    (≈ N/2 packets for WFQ, < 1 for WF²Q/WF²Q+). *)

val render : Format.formatter -> result -> unit
(** Timelines, one row per discipline (matches the layout of Fig. 2). *)
