type t = { hgps : Hgps.t; leaf_ids : int array }

let session_name i = Printf.sprintf "session-%d" i

let create ~rate ~session_rates ?on_packet_finish () =
  let leaves =
    List.mapi (fun i r -> Hpfq.Class_tree.leaf (session_name i) ~rate:r) session_rates
  in
  let spec = Hpfq.Class_tree.node "link" ~rate leaves in
  (* translate leaf node ids back to session indices in the callback *)
  let session_of_leaf = ref [||] in
  let on_packet_finish =
    Option.map
      (fun f pkt time ->
        let session = !session_of_leaf.(pkt.Net.Packet.flow) in
        f { pkt with Net.Packet.flow = session } time)
      on_packet_finish
  in
  let hgps = Hgps.create ~spec ?on_packet_finish () in
  let n = List.length session_rates in
  let leaf_ids = Array.init n (fun i -> Hgps.leaf_id hgps (session_name i)) in
  let max_leaf = Array.fold_left max 0 leaf_ids in
  let table = Array.make (max_leaf + 1) (-1) in
  Array.iteri (fun session leaf -> table.(leaf) <- session) leaf_ids;
  session_of_leaf := table;
  { hgps; leaf_ids }

let arrive t ~at ~session ~size_bits =
  Hgps.arrive t.hgps ~at ~leaf:t.leaf_ids.(session) ~size_bits

let advance t ~to_ = Hgps.advance t.hgps ~to_
let now t = Hgps.now t.hgps
let served_bits t ~session = Hgps.served_bits t.hgps ~node:(session_name session)
let total_served_bits t = Hgps.served_bits t.hgps ~node:"link"
let backlog_bits t ~session = Hgps.backlog_bits t.hgps ~leaf:t.leaf_ids.(session)

let set_persistent t ~at ~session on =
  Hgps.set_persistent t.hgps ~at ~leaf:t.leaf_ids.(session) on

let busy t = Hgps.busy t.hgps
