(** Exact fluid Hierarchical GPS server (paper §2.2).

    The hypothetical reference system: traffic is infinitely divisible and
    at every instant the link's capacity flows down the class tree, each
    backlogged node splitting its allocation among its backlogged children
    in proportion to their rates (eq. 8). Packet algorithms are judged by
    how closely they track this system; Fig. 9(b)'s "ideal" curves are its
    output.

    The implementation advances time in closed form between {e epochs} —
    instants where the backlogged set changes (an arrival, a leaf draining
    empty, or an on/off toggle). Between epochs every allocation is
    constant, so service integrates linearly and each packet's fluid finish
    time is computed exactly (no time-stepping error).

    Leaves operate in one of two modes:
    - {e packet mode}: backlog is fed by [arrive] and drains to zero;
      [on_packet_finish] fires as cumulative service crosses each packet
      boundary — this is how GPS/H-GPS finish orders (Fig. 2) are obtained;
    - {e persistent mode}: the leaf is always backlogged (models greedy
      sources such as long-lived TCPs for ideal link-sharing curves). *)

type t

val create :
  spec:Hpfq.Class_tree.t ->
  ?on_packet_finish:(Net.Packet.t -> float -> unit) ->
  unit ->
  t
(** @raise Invalid_argument if [spec] fails validation. *)

val now : t -> float
val advance : t -> to_:float -> unit
(** Integrate the fluid system up to the given time (monotone). *)

val leaf_id : t -> string -> int
val arrive : t -> at:float -> leaf:int -> size_bits:float -> Net.Packet.t
(** Advance to [at], then add a packet's worth of fluid to the leaf. *)

val arrive_packet : t -> at:float -> Net.Packet.t -> unit
(** Same, for an existing packet (shared with a packet-system run so finish
    times can be joined by uid). *)

val set_persistent : t -> at:float -> leaf:int -> bool -> unit
(** Toggle persistent (always-backlogged) mode. Entering persistent mode
    suspends packet-boundary tracking; leaving it clears the leaf. *)

val served_bits : t -> node:string -> float
(** Cumulative fluid service W_n(0, now) of any named node. *)

val backlog_bits : t -> leaf:int -> float
val current_rate : t -> node:string -> float
(** Instantaneous allocation of the named node at [now] (0 if idle). *)

val busy : t -> bool
