(** One-level fluid GPS (paper §2.1): a {!Hgps} over a flat tree, with a
    session-indexed API convenient for walkthroughs and tests (Fig. 2's GPS
    timeline, V_GPS cross-checks, fairness properties eqs. 1–3). *)

type t

val create : rate:float -> session_rates:float list -> ?on_packet_finish:(Net.Packet.t -> float -> unit) -> unit -> t
(** Sessions are numbered 0.. in list order.
    @raise Invalid_argument if rates don't fit the server rate. *)

val arrive : t -> at:float -> session:int -> size_bits:float -> Net.Packet.t
val advance : t -> to_:float -> unit
val now : t -> float
val served_bits : t -> session:int -> float
val total_served_bits : t -> float
val backlog_bits : t -> session:int -> float
val set_persistent : t -> at:float -> session:int -> bool -> unit
val busy : t -> bool
