type leaf_state = {
  mutable backlog : float;
  mutable persistent : bool;
  (* (packet, cumulative served bits at which it completes) in FIFO order *)
  boundaries : (Net.Packet.t * float) Queue.t;
  mutable arrived_bits : float;
  mutable next_seq : int;
}

type node = {
  id : int;
  name : string;
  rate : float;
  parent : int;
  mutable children : int array;
  leaf : leaf_state option; (* None for interior nodes *)
  mutable served : float;   (* W_n(0, now) *)
  mutable alloc : float;    (* instantaneous allocation, recomputed per epoch *)
}

type t = {
  nodes : node array;
  root : int;
  by_name : (string, int) Hashtbl.t;
  on_packet_finish : Net.Packet.t -> float -> unit;
  mutable now : float;
}

let eps_bits = 1e-6

let create ~spec ?(on_packet_finish = fun _ _ -> ()) () =
  (match Hpfq.Class_tree.validate spec with
  | Ok () -> ()
  | Error errors ->
    invalid_arg ("Hgps.create: invalid tree: " ^ String.concat "; " errors));
  let acc = ref [] in
  let counter = ref 0 in
  let by_name = Hashtbl.create 16 in
  let rec build ~parent spec =
    let id = !counter in
    incr counter;
    let leaf =
      if Hpfq.Class_tree.is_leaf spec then
        Some
          {
            backlog = 0.0;
            persistent = false;
            boundaries = Queue.create ();
            arrived_bits = 0.0;
            next_seq = 1;
          }
      else None
    in
    let n =
      {
        id;
        name = Hpfq.Class_tree.name spec;
        rate = Hpfq.Class_tree.rate spec;
        parent;
        children = [||];
        leaf;
        served = 0.0;
        alloc = 0.0;
      }
    in
    acc := n :: !acc;
    Hashtbl.replace by_name n.name id;
    let child_ids =
      List.map (fun c -> (build ~parent:id c).id) (Hpfq.Class_tree.children spec)
    in
    n.children <- Array.of_list child_ids;
    n
  in
  let root = build ~parent:(-1) spec in
  let nodes = Array.make !counter root in
  List.iter (fun n -> nodes.(n.id) <- n) !acc;
  { nodes; root = root.id; by_name; on_packet_finish; now = 0.0 }

let leaf_backlogged l = l.persistent || l.backlog > eps_bits

(* Is the subtree rooted at [n] backlogged? *)
let rec subtree_backlogged t n =
  match n.leaf with
  | Some l -> leaf_backlogged l
  | None ->
    Array.exists (fun c -> subtree_backlogged t t.nodes.(c)) n.children

(* Recompute every node's instantaneous allocation (eq. 8 applied top-down):
   a backlogged node's allocation splits among backlogged children in
   proportion to their rates. *)
let recompute_allocations t =
  let rec assign n amount =
    n.alloc <- amount;
    if Array.length n.children > 0 then begin
      let backlogged_rate_sum = ref 0.0 in
      Array.iter
        (fun c ->
          let child = t.nodes.(c) in
          if subtree_backlogged t child then
            backlogged_rate_sum := !backlogged_rate_sum +. child.rate)
        n.children;
      Array.iter
        (fun c ->
          let child = t.nodes.(c) in
          let share =
            if !backlogged_rate_sum > 0.0 && subtree_backlogged t child then
              amount *. child.rate /. !backlogged_rate_sum
            else 0.0
          in
          assign child share)
        n.children
    end
  in
  let root = t.nodes.(t.root) in
  let amount = if subtree_backlogged t root then root.rate else 0.0 in
  assign root amount

(* Largest dt we may integrate before some packet-mode leaf drains dry. *)
let time_to_next_drain t =
  Array.fold_left
    (fun acc n ->
      match n.leaf with
      | Some l when (not l.persistent) && l.backlog > eps_bits && n.alloc > 0.0 ->
        Float.min acc (l.backlog /. n.alloc)
      | Some _ | None -> acc)
    infinity t.nodes

let integrate t dt =
  Array.iter
    (fun n ->
      if n.alloc > 0.0 then begin
        let served_before = n.served in
        n.served <- n.served +. (n.alloc *. dt);
        match n.leaf with
        | None -> ()
        | Some l ->
          if not l.persistent then begin
            l.backlog <- Float.max 0.0 (l.backlog -. (n.alloc *. dt));
            if l.backlog <= eps_bits then l.backlog <- 0.0;
            (* fire finish callbacks for boundaries crossed in this span *)
            let continue = ref true in
            while !continue do
              match Queue.peek_opt l.boundaries with
              | Some (pkt, boundary) when boundary <= n.served +. eps_bits ->
                ignore (Queue.pop l.boundaries);
                let finish_time = t.now +. ((boundary -. served_before) /. n.alloc) in
                t.on_packet_finish pkt finish_time
              | Some _ | None -> continue := false
            done
          end
      end)
    t.nodes;
  t.now <- t.now +. dt

let advance t ~to_ =
  if to_ < t.now -. 1e-12 then invalid_arg "Hgps.advance: time went backwards";
  while to_ -. t.now > 1e-15 do
    recompute_allocations t;
    (* time_to_next_drain is strictly positive: drained leaves (backlog
       <= eps) do not count as backlogged, so the loop always progresses *)
    let dt = Float.min (time_to_next_drain t) (to_ -. t.now) in
    integrate t dt
  done;
  t.now <- Float.max t.now to_

let now t = t.now

let leaf_id t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id when t.nodes.(id).leaf <> None -> id
  | Some _ | None -> raise Not_found

let arrive_packet t ~at pkt =
  advance t ~to_:at;
  let n = t.nodes.(pkt.Net.Packet.flow) in
  match n.leaf with
  | None -> invalid_arg "Hgps.arrive_packet: not a leaf"
  | Some l ->
    if l.persistent then invalid_arg "Hgps.arrive_packet: leaf is persistent";
    l.backlog <- l.backlog +. pkt.Net.Packet.size_bits;
    l.arrived_bits <- l.arrived_bits +. pkt.Net.Packet.size_bits;
    Queue.push (pkt, n.served +. l.backlog) l.boundaries

let arrive t ~at ~leaf ~size_bits =
  let n = t.nodes.(leaf) in
  match n.leaf with
  | None -> invalid_arg "Hgps.arrive: not a leaf"
  | Some l ->
    let pkt =
      Net.Packet.make ~flow:leaf ~seq:l.next_seq ~size_bits ~arrival:at ()
    in
    l.next_seq <- l.next_seq + 1;
    arrive_packet t ~at pkt;
    pkt

let set_persistent t ~at ~leaf on =
  advance t ~to_:at;
  let n = t.nodes.(leaf) in
  match n.leaf with
  | None -> invalid_arg "Hgps.set_persistent: not a leaf"
  | Some l ->
    l.persistent <- on;
    if not on then begin
      l.backlog <- 0.0;
      Queue.clear l.boundaries
    end

let node_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> t.nodes.(id)
  | None -> raise Not_found

let served_bits t ~node = (node_by_name t node).served

let backlog_bits t ~leaf =
  match t.nodes.(leaf).leaf with
  | Some l -> l.backlog
  | None -> invalid_arg "Hgps.backlog_bits: not a leaf"

let current_rate t ~node =
  recompute_allocations t;
  (node_by_name t node).alloc

let busy t = subtree_backlogged t t.nodes.(t.root)
