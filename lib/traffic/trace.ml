type event = { time : float; leaf : string; size_bits : float }

let compare_event a b = compare (a.time, a.leaf, a.size_bits) (b.time, b.leaf, b.size_bits)

let save ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "time,leaf,size_bits\n";
      List.iter
        (fun e -> Printf.fprintf oc "%.9f,%s,%.9g\n" e.time e.leaf e.size_bits)
        (List.stable_sort compare_event events))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      (try
         let header = input_line ic in
         if not (String.equal header "time,leaf,size_bits") then
           failwith ("Trace.load: bad header in " ^ path);
         while true do
           let line = input_line ic in
           match String.split_on_char ',' line with
           | [ time; leaf; size ] ->
             events :=
               { time = float_of_string time; leaf; size_bits = float_of_string size }
               :: !events
           | _ -> failwith ("Trace.load: malformed line: " ^ line)
         done
       with End_of_file -> ());
      List.rev !events)

let recorder ~sim =
  let events = ref [] in
  let wrap ~leaf emit ~size_bits =
    events := { time = Engine.Simulator.now sim; leaf; size_bits } :: !events;
    emit ~size_bits
  in
  let dump () = List.stable_sort compare_event (List.rev !events) in
  (wrap, dump)

let replay ~sim ~emit_for events =
  List.fold_left
    (fun count e ->
      match emit_for ~leaf:e.leaf with
      | None -> count
      | Some emit ->
        ignore
          (Engine.Simulator.schedule sim ~at:e.time (fun () ->
               emit ~size_bits:e.size_bits));
        count + 1)
    0 events
