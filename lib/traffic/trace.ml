type event = { time : float; leaf : string; size_bits : float }

let compare_event a b = compare (a.time, a.leaf, a.size_bits) (b.time, b.leaf, b.size_bits)

(* %.17g prints the shortest-or-full decimal that parses back to the exact
   same float, so save -> load -> save is byte-stable. *)
let save ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "time,leaf,size_bits\n";
      List.iter
        (fun e -> Printf.fprintf oc "%.17g,%s,%.17g\n" e.time e.leaf e.size_bits)
        (List.stable_sort compare_event events))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let events = ref [] in
      let line_no = ref 1 in
      let field name line raw =
        match float_of_string_opt raw with
        | Some v -> v
        | None ->
          failwith
            (Printf.sprintf "Trace.load: %s, line %d: bad %s field %S in %S"
               path !line_no name raw line)
      in
      (try
         let header = input_line ic in
         if not (String.equal header "time,leaf,size_bits") then
           failwith
             (Printf.sprintf "Trace.load: %s, line 1: bad header %S" path header);
         while true do
           let line = input_line ic in
           incr line_no;
           (match String.split_on_char ',' line with
           | [ time; leaf; size ] ->
             events :=
               {
                 time = field "time" line time;
                 leaf;
                 size_bits = field "size_bits" line size;
               }
               :: !events
           | fields ->
             failwith
               (Printf.sprintf
                  "Trace.load: %s, line %d: expected 3 fields \
                   (time,leaf,size_bits), got %d in %S"
                  path !line_no (List.length fields) line))
         done
       with End_of_file -> ());
      List.rev !events)

(* ---- binary format (v2) ------------------------------------------------ *)

(* Fixed-record layout, little-endian throughout:

     magic   "HPFQTRC2"                      8 bytes
     L       leaf-table entries              u32
     N       records                         u32
     L x     leaf name: u16 length + bytes   variable
     N x     f64 time | u32 leaf | f64 size  20 bytes each

   The record section is a flat array of 20-byte cells — seekable /
   mmap-friendly — with leaf names factored into the header table so a
   million-packet trace does not repeat a thousand flow names. *)

let binary_magic = "HPFQTRC2"
let record_bytes = 20

let save_binary ~path events =
  let events = List.stable_sort compare_event events in
  let leaf_index = Hashtbl.create 64 in
  let leaves = ref [] in
  let n_leaves = ref 0 in
  List.iter
    (fun e ->
      if not (Hashtbl.mem leaf_index e.leaf) then begin
        Hashtbl.add leaf_index e.leaf !n_leaves;
        leaves := e.leaf :: !leaves;
        incr n_leaves
      end)
    events;
  let leaves = List.rev !leaves in
  let n = List.length events in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc binary_magic;
      let b4 = Bytes.create 4 in
      let put_u32 v =
        Bytes.set_int32_le b4 0 (Int32.of_int v);
        output_bytes oc b4
      in
      put_u32 !n_leaves;
      put_u32 n;
      let b2 = Bytes.create 2 in
      List.iter
        (fun name ->
          if String.length name > 0xFFFF then
            invalid_arg ("Trace.save_binary: leaf name too long: " ^ name);
          Bytes.set_uint16_le b2 0 (String.length name);
          output_bytes oc b2;
          output_string oc name)
        leaves;
      let rec_buf = Bytes.create record_bytes in
      List.iter
        (fun e ->
          Bytes.set_int64_le rec_buf 0 (Int64.bits_of_float e.time);
          Bytes.set_int32_le rec_buf 8
            (Int32.of_int (Hashtbl.find leaf_index e.leaf));
          Bytes.set_int64_le rec_buf 12 (Int64.bits_of_float e.size_bits);
          output_bytes oc rec_buf)
        events)

let load_binary ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail fmt =
        Printf.ksprintf (fun m -> failwith ("Trace.load_binary: " ^ path ^ ": " ^ m)) fmt
      in
      let len = in_channel_length ic in
      if len < 16 then fail "truncated header (%d bytes)" len;
      let magic = really_input_string ic 8 in
      if not (String.equal magic binary_magic) then
        fail "bad magic %S (expected %S)" magic binary_magic;
      let b4 = Bytes.create 4 in
      let get_u32 what =
        really_input ic b4 0 4;
        let v = Int32.to_int (Bytes.get_int32_le b4 0) in
        if v < 0 then fail "negative %s count" what;
        v
      in
      let n_leaves = get_u32 "leaf" in
      let n = get_u32 "record" in
      let b2 = Bytes.create 2 in
      let leaves =
        Array.init n_leaves (fun _ ->
            really_input ic b2 0 2;
            let l = Bytes.get_uint16_le b2 0 in
            really_input_string ic l)
      in
      let remaining = len - pos_in ic in
      if remaining <> n * record_bytes then
        fail "record section is %d bytes, expected %d (%d records of %d)"
          remaining (n * record_bytes) n record_bytes;
      let rec_buf = Bytes.create record_bytes in
      let events = ref [] in
      for _ = 1 to n do
        really_input ic rec_buf 0 record_bytes;
        let time = Int64.float_of_bits (Bytes.get_int64_le rec_buf 0) in
        let leaf_idx = Int32.to_int (Bytes.get_int32_le rec_buf 8) in
        if leaf_idx < 0 || leaf_idx >= n_leaves then
          fail "record references leaf %d of %d" leaf_idx n_leaves;
        let size_bits = Int64.float_of_bits (Bytes.get_int64_le rec_buf 12) in
        events := { time; leaf = leaves.(leaf_idx); size_bits } :: !events
      done;
      List.rev !events)

let load_any ~path =
  let ic = open_in_bin path in
  let is_binary =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        in_channel_length ic >= 8
        && String.equal (really_input_string ic 8) binary_magic)
  in
  if is_binary then load_binary ~path else load ~path

(* ---- synthetic "internet mix" workload --------------------------------- *)

(* Heavy-tailed sizes: a spike of minimum-size packets (TCP acks) over a
   bounded Pareto body — the classic bimodal-with-tail internet mix. *)
let mix_size rng =
  let min_bits = 320.0 (* 40 B *) and max_bits = 12_000.0 (* 1500 B *) in
  if Engine.Rng.uniform rng < 0.3 then min_bits
  else begin
    (* bounded Pareto, alpha = 1.2: inverse CDF over [min, max] *)
    let alpha = 1.2 in
    let u = Engine.Rng.uniform rng in
    let ratio = (min_bits /. max_bits) ** alpha in
    let x = min_bits /. ((1.0 -. (u *. (1.0 -. ratio))) ** (1.0 /. alpha)) in
    Float.min x max_bits
  end

let internet_mix ~seed ~leaves ~duration ?(mean_pkts_per_leaf = 64.0) () =
  if duration <= 0.0 then invalid_arg "Trace.internet_mix: duration must be positive";
  if mean_pkts_per_leaf <= 0.0 then
    invalid_arg "Trace.internet_mix: mean_pkts_per_leaf must be positive";
  let root = Engine.Rng.create seed in
  let events = ref [] in
  List.iteri
    (fun i leaf ->
      let rng = Engine.Rng.for_task root i in
      let emit time = events := { time; leaf; size_bits = mix_size rng } :: !events in
      if Engine.Rng.uniform rng < 0.6 then begin
        (* Poisson background flow *)
        let gap = duration /. mean_pkts_per_leaf in
        let t = ref (Engine.Rng.exponential rng ~mean:gap) in
        while !t < duration do
          emit !t;
          t := !t +. Engine.Rng.exponential rng ~mean:gap
        done
      end
      else begin
        (* on/off burst flow: same mean packet count concentrated into ON
           periods covering ~a quarter of the horizon, so bursts run at
           roughly 4x the background intensity *)
        let on_mean = duration /. 8.0 and off_mean = 3.0 *. duration /. 8.0 in
        let burst_gap = duration /. (4.0 *. mean_pkts_per_leaf) in
        let t = ref (Engine.Rng.exponential rng ~mean:off_mean) in
        while !t < duration do
          let on_end =
            Float.min duration (!t +. Engine.Rng.exponential rng ~mean:on_mean)
          in
          t := !t +. Engine.Rng.exponential rng ~mean:burst_gap;
          while !t < on_end do
            emit !t;
            t := !t +. Engine.Rng.exponential rng ~mean:burst_gap
          done;
          t := on_end +. Engine.Rng.exponential rng ~mean:off_mean
        done
      end)
    leaves;
  List.stable_sort compare_event !events

(* ---- capture / replay -------------------------------------------------- *)

let recorder ~sim =
  let events = ref [] in
  let wrap ~leaf emit ~size_bits =
    events := { time = Engine.Simulator.now sim; leaf; size_bits } :: !events;
    emit ~size_bits
  in
  let dump () = List.stable_sort compare_event (List.rev !events) in
  (wrap, dump)

let replay ?(batched = false) ~sim ~emit_for events =
  if not batched then
    List.fold_left
      (fun count e ->
        match emit_for ~leaf:e.leaf with
        | None -> count
        | Some emit ->
          ignore
            (Engine.Simulator.schedule sim ~at:e.time (fun () ->
                 emit ~size_bits:e.size_bits));
          count + 1)
      0 events
  else begin
    (* One event per run of equal timestamps. Equivalent to per-event
       scheduling when the trace is installed before the run starts: setup
       seqs precede every runtime seq, so all arrivals at time T fire
       before any other event at T either way, and grouping preserves
       their relative order. *)
    let scheduled = ref 0 in
    let rec take_run time acc = function
      | e :: rest when e.time = time -> take_run time (e :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let rec loop = function
      | [] -> ()
      | e :: _ as evs ->
        let run, rest = take_run e.time [] evs in
        let actions =
          List.filter_map
            (fun ev ->
              match emit_for ~leaf:ev.leaf with
              | None -> None
              | Some emit -> Some (emit, ev.size_bits))
            run
        in
        (match actions with
        | [] -> ()
        | acts ->
          scheduled := !scheduled + List.length acts;
          ignore
            (Engine.Simulator.schedule sim ~at:e.time (fun () ->
                 List.iter (fun (emit, size_bits) -> emit ~size_bits) acts)));
        loop rest
    in
    loop events;
    !scheduled
  end
