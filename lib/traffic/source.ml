type emit = size_bits:float -> unit
type handle = { mutable stopped : bool }

let stop h = h.stopped <- true

let make_handle () = { stopped = false }

(* Schedule [action] at [at] unless the handle is stopped or [at] exceeds
   the optional horizon. *)
let schedule sim handle ?stop_at ~at action =
  let within_horizon = match stop_at with None -> true | Some h -> at <= h in
  if within_horizon then
    ignore
      (Engine.Simulator.schedule sim ~at (fun () ->
           if not handle.stopped then action ()))

let cbr ~sim ~emit ~rate ~packet_bits ?(start = 0.0) ?stop_at () =
  if rate <= 0.0 then invalid_arg "Source.cbr: rate must be positive";
  let handle = make_handle () in
  let interval = packet_bits /. rate in
  let rec tick at () =
    emit ~size_bits:packet_bits;
    schedule sim handle ?stop_at ~at:(at +. interval) (tick (at +. interval))
  in
  schedule sim handle ?stop_at ~at:start (tick start);
  handle

let on_off ~sim ~emit ~peak_rate ~packet_bits ~on_duration ~off_duration
    ?(start = 0.0) ?stop_at () =
  if peak_rate <= 0.0 then invalid_arg "Source.on_off: rate must be positive";
  if on_duration <= 0.0 || off_duration < 0.0 then
    invalid_arg "Source.on_off: bad durations";
  let handle = make_handle () in
  let interval = packet_bits /. peak_rate in
  let period = on_duration +. off_duration in
  (* [burst_start] is the beginning of the current on-phase *)
  let rec tick burst_start at () =
    emit ~size_bits:packet_bits;
    let next = at +. interval in
    if next -. burst_start < on_duration then
      schedule sim handle ?stop_at ~at:next (tick burst_start next)
    else
      let next_burst = burst_start +. period in
      schedule sim handle ?stop_at ~at:next_burst (tick next_burst next_burst)
  in
  schedule sim handle ?stop_at ~at:start (tick start start);
  handle

let poisson ~sim ~emit ~rng ~mean_rate ~packet_bits ?(start = 0.0) ?stop_at () =
  if mean_rate <= 0.0 then invalid_arg "Source.poisson: rate must be positive";
  let handle = make_handle () in
  let mean_gap = packet_bits /. mean_rate in
  let rec tick at () =
    emit ~size_bits:packet_bits;
    let next = at +. Engine.Rng.exponential rng ~mean:mean_gap in
    schedule sim handle ?stop_at ~at:next (tick next)
  in
  let first = start +. Engine.Rng.exponential rng ~mean:mean_gap in
  schedule sim handle ?stop_at ~at:first (tick first);
  handle

let packet_train ~sim ~emit ?rng ~burst_packets ~packet_bits ~intra_spacing
    ~inter_burst ?(start = 0.0) ?stop_at () =
  if burst_packets <= 0 then invalid_arg "Source.packet_train: empty burst";
  if inter_burst <= 0.0 then invalid_arg "Source.packet_train: bad burst gap";
  let handle = make_handle () in
  let jitter () =
    match rng with
    | None -> 0.0
    | Some rng -> (Engine.Rng.uniform rng -. 0.5) *. 0.4 *. inter_burst
  in
  let rec burst burst_start () =
    let rec packet k () =
      emit ~size_bits:packet_bits;
      if k + 1 < burst_packets then
        schedule sim handle ?stop_at
          ~at:(burst_start +. (float_of_int (k + 1) *. intra_spacing))
          (packet (k + 1))
    in
    packet 0 ();
    let next = burst_start +. inter_burst +. jitter () in
    schedule sim handle ?stop_at ~at:next (burst next)
  in
  schedule sim handle ?stop_at ~at:start (burst start);
  handle

let greedy ~sim ~emit ~packet_bits ~backlog_packets ?(start = 0.0)
    ?(top_up_every = 0.25) ?stop_at () =
  if backlog_packets <= 0 then invalid_arg "Source.greedy: empty backlog";
  let handle = make_handle () in
  let rec dump at () =
    for _ = 1 to backlog_packets do
      emit ~size_bits:packet_bits
    done;
    schedule sim handle ?stop_at ~at:(at +. top_up_every) (dump (at +. top_up_every))
  in
  schedule sim handle ?stop_at ~at:start (dump start);
  handle

let leaky_bucket_greedy ~sim ~emit ~sigma_bits ~rho ~packet_bits ?(start = 0.0)
    ?stop_at () =
  if rho <= 0.0 then invalid_arg "Source.leaky_bucket_greedy: rho must be positive";
  let handle = make_handle () in
  let burst = int_of_float (sigma_bits /. packet_bits) in
  let interval = packet_bits /. rho in
  let rec steady at () =
    emit ~size_bits:packet_bits;
    schedule sim handle ?stop_at ~at:(at +. interval) (steady (at +. interval))
  in
  if burst >= 1 then
    schedule sim handle ?stop_at ~at:start (fun () ->
        for _ = 1 to burst do
          emit ~size_bits:packet_bits
        done;
        (* the bucket refills one packet's worth every [interval] *)
        schedule sim handle ?stop_at ~at:(start +. interval) (steady (start +. interval)))
  else begin
    (* σ < L: the first packet conforms once the bucket has accumulated L *)
    let first = start +. ((packet_bits -. sigma_bits) /. rho) in
    schedule sim handle ?stop_at ~at:first (steady first)
  end;
  handle
