(** Arrival-trace capture and replay.

    A trace is a time-ordered list of (time, leaf, size) arrival events —
    the portable form of a workload. Traces let experiments be driven by
    captured production traffic (or by another simulator's output) instead
    of synthetic sources, and make any stochastic run replayable
    bit-for-bit without its generator.

    Two on-disk formats:
    - CSV ([time,leaf,size_bits] per line), human-readable and friendly to
      external tools. Floats are written with [%.17g], so save → load →
      save is byte-stable.
    - Binary v2 (magic ["HPFQTRC2"]): a leaf-name table followed by flat
      20-byte fixed records (f64 time, u32 leaf index, f64 size, all
      little-endian) — compact and seekable for million-packet replay
      workloads. Bit-exact round-trip by construction. *)

type event = { time : float; leaf : string; size_bits : float }

val save : path:string -> event list -> unit
(** Write CSV. Events need not be sorted; they are written in time order. *)

val load : path:string -> event list
(** Read CSV.
    @raise Failure on malformed input; the message names the file, line
    number and offending field. *)

val save_binary : path:string -> event list -> unit
(** Write the binary v2 format. Events need not be sorted; they are
    written in time order. *)

val load_binary : path:string -> event list
(** Read the binary v2 format.
    @raise Failure on bad magic, truncation, or out-of-range leaf
    references. *)

val load_any : path:string -> event list
(** Sniff the first 8 bytes: binary v2 if they match its magic, CSV
    otherwise. *)

val internet_mix :
  seed:int64 ->
  leaves:string list ->
  duration:float ->
  ?mean_pkts_per_leaf:float ->
  unit ->
  event list
(** Synthetic "internet mix" workload over the given leaves: every leaf is
    an independent flow (stable per-index {!Engine.Rng.for_task} streams,
    so the trace is a pure function of [seed]), 60% Poisson background and
    40% on/off bursts (exponential ON/OFF periods, ~4x intensity inside
    bursts), with bimodal heavy-tailed sizes — a 30% spike of 320-bit acks
    over a bounded-Pareto body (alpha 1.2, 320..12000 bits).
    [mean_pkts_per_leaf] (default 64) sets the expected packets per leaf
    over [duration]. Returns the events in time order. *)

val recorder :
  sim:Engine.Simulator.t ->
  (leaf:string -> Source.emit -> Source.emit) * (unit -> event list)
(** [let wrap, dump = recorder ~sim in ...] — [wrap ~leaf emit] is an emit
    that records (simulation time, leaf, size) before forwarding to [emit].
    [dump ()] returns the events recorded so far in time order. Intended
    use: interpose on each leaf's emit, run, dump, {!save}. *)

val replay :
  ?batched:bool ->
  sim:Engine.Simulator.t ->
  emit_for:(leaf:string -> Source.emit option) ->
  event list ->
  int
(** Schedule every event on the simulator; events whose leaf has no emit
    are skipped. Returns the number of arrivals scheduled.

    With [batched] (default false), each run of consecutive equal-time
    events becomes one simulator event that applies the arrivals
    back-to-back — fewer event-set operations, identical outcome, provided
    (as in any replay) the trace is installed before the simulation runs:
    setup-scheduled events precede all runtime-scheduled ones in the FIFO
    tie-break, so grouping cannot reorder anything. *)
