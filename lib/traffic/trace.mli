(** Arrival-trace capture and replay.

    A trace is a time-ordered list of (time, leaf, size) arrival events —
    the portable form of a workload. Traces let experiments be driven by
    captured production traffic (or by another simulator's output) instead
    of synthetic sources, and make any stochastic run replayable bit-for-bit
    without its generator. Stored as CSV ([time,leaf,size_bits] per line)
    so external tools can produce and consume them. *)

type event = { time : float; leaf : string; size_bits : float }

val save : path:string -> event list -> unit
(** Events need not be sorted; they are written in time order. *)

val load : path:string -> event list
(** @raise Failure on malformed lines. *)

val recorder :
  sim:Engine.Simulator.t ->
  (leaf:string -> Source.emit -> Source.emit) * (unit -> event list)
(** [let wrap, dump = recorder ~sim in ...] — [wrap ~leaf emit] is an emit
    that records (simulation time, leaf, size) before forwarding to [emit].
    [dump ()] returns the events recorded so far in time order. Intended
    use: interpose on each leaf's emit, run, dump, {!save}. *)

val replay :
  sim:Engine.Simulator.t -> emit_for:(leaf:string -> Source.emit option) -> event list -> int
(** Schedule every event on the simulator; events whose leaf has no emit
    are skipped. Returns the number of events scheduled. *)
