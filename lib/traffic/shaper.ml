type t = {
  sim : Engine.Simulator.t;
  sigma : float;
  rho : float;
  emit : Source.emit;
  queue : float Queue.t;
  mutable tokens : float;
  mutable tokens_time : float; (* when [tokens] was computed *)
  mutable release_pending : bool;
  mutable backlog : float;
  mutable released : int;
}

let create ~sim ~sigma_bits ~rho ~emit =
  if sigma_bits <= 0.0 || rho <= 0.0 then
    invalid_arg "Shaper.create: sigma and rho must be positive";
  {
    sim;
    sigma = sigma_bits;
    rho;
    emit;
    queue = Queue.create ();
    tokens = sigma_bits;
    tokens_time = 0.0;
    release_pending = false;
    backlog = 0.0;
    released = 0;
  }

let refill t =
  let now = Engine.Simulator.now t.sim in
  t.tokens <- Float.min t.sigma (t.tokens +. (t.rho *. (now -. t.tokens_time)));
  t.tokens_time <- now

(* Release every head packet the bucket can pay for; if one remains,
   schedule the next attempt for the exact instant its tokens accrue. *)
let rec drain t =
  refill t;
  match Queue.peek_opt t.queue with
  | None -> ()
  | Some size when size <= t.tokens +. 1e-12 ->
    ignore (Queue.pop t.queue);
    t.tokens <- t.tokens -. size;
    t.backlog <- t.backlog -. size;
    t.released <- t.released + 1;
    t.emit ~size_bits:size;
    drain t
  | Some size ->
    if not t.release_pending then begin
      t.release_pending <- true;
      let wait = (size -. t.tokens) /. t.rho in
      ignore
        (Engine.Simulator.schedule_after t.sim ~delay:wait (fun () ->
             t.release_pending <- false;
             drain t))
    end

let offer t ~size_bits =
  if size_bits > t.sigma then
    invalid_arg "Shaper.offer: packet larger than the bucket can ever hold";
  Queue.push size_bits t.queue;
  t.backlog <- t.backlog +. size_bits;
  drain t

let backlog_bits t = t.backlog
let queue_length t = Queue.length t.queue
let released t = t.released
