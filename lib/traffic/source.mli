(** Traffic source models for the paper's workloads (§5.1).

    A source is wired to a queue by an [emit] callback (typically
    [Hpfq.Hier.inject] partially applied to a leaf); it schedules its own
    arrival events on the simulator. All sources deliver packets of a fixed
    size, as the paper assumes ("all sessions transmit 8 KB packets").

    The paper's background traffic maps as:
    - PS-n (constant rate at guaranteed rate, or 1.5× when overloaded):
      {!cbr} or {!poisson};
    - CS-n (multiplexed packet trains "sent by individual users ... with
      high speed connections"): {!packet_train};
    - RT-1 (deterministic on/off, 25 ms on / 75 ms off): {!on_off};
    - BE-1 (continuously backlogged best-effort): {!greedy};
    - leaky-bucket-constrained real-time sessions: {!leaky_bucket_greedy}. *)

type emit = size_bits:float -> unit

type handle
(** Cancellation token: {!stop} prevents all future arrivals. *)

val stop : handle -> unit

val cbr :
  sim:Engine.Simulator.t -> emit:emit -> rate:float -> packet_bits:float ->
  ?start:float -> ?stop_at:float -> unit -> handle
(** One packet every [packet_bits/rate] seconds, first at [start]
    (default 0). *)

val on_off :
  sim:Engine.Simulator.t -> emit:emit -> peak_rate:float -> packet_bits:float ->
  on_duration:float -> off_duration:float -> ?start:float -> ?stop_at:float ->
  unit -> handle
(** Deterministic on/off: CBR at [peak_rate] for [on_duration], silent for
    [off_duration], repeating. RT-1 is
    [on_duration = 25 ms, off_duration = 75 ms, start = 200 ms]. *)

val poisson :
  sim:Engine.Simulator.t -> emit:emit -> rng:Engine.Rng.t -> mean_rate:float ->
  packet_bits:float -> ?start:float -> ?stop_at:float -> unit -> handle
(** Exponential inter-arrivals with mean [packet_bits/mean_rate]. *)

val packet_train :
  sim:Engine.Simulator.t -> emit:emit -> ?rng:Engine.Rng.t ->
  burst_packets:int -> packet_bits:float -> intra_spacing:float ->
  inter_burst:float -> ?start:float -> ?stop_at:float -> unit -> handle
(** Bursts of [burst_packets] packets [intra_spacing] apart, bursts starting
    every [inter_burst] seconds (jittered ±20% when [rng] is given) — the
    CS-n "packet train" sources. *)

val greedy :
  sim:Engine.Simulator.t -> emit:emit -> packet_bits:float ->
  backlog_packets:int -> ?start:float -> ?top_up_every:float -> ?stop_at:float ->
  unit -> handle
(** Keeps a session persistently backlogged: dumps [backlog_packets]
    immediately, then re-dumps the same amount every [top_up_every] seconds
    (default 0.25 s). Callers should size it so the queue never runs dry. *)

val leaky_bucket_greedy :
  sim:Engine.Simulator.t -> emit:emit -> sigma_bits:float -> rho:float ->
  packet_bits:float -> ?start:float -> ?stop_at:float -> unit -> handle
(** The greediest arrival pattern that conforms to a (σ, ρ) leaky bucket
    (eq. 17): a burst of [⌊σ/L⌋] packets at [start], then one packet every
    [L/ρ] — the worst case traffic used by delay-bound tests. *)
