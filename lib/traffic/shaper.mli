(** (σ, ρ) token-bucket shaper — the admission-side counterpart of the
    leaky-bucket constraint of eq. 17.

    The paper's delay bounds hold only for conformant sessions; a shaper is
    how a real deployment makes arbitrary traffic conformant before it
    enters a guaranteed class. Packets offered to the shaper are released
    downstream in FIFO order, each as soon as the bucket holds its size in
    tokens; the released stream satisfies
    [A(t1,t2) ≤ σ + ρ(t2−t1)] for every interval. *)

type t

val create :
  sim:Engine.Simulator.t -> sigma_bits:float -> rho:float -> emit:Source.emit -> t
(** Tokens accrue at [rho] bits/second up to a cap of [sigma_bits]; the
    bucket starts full. [emit] receives the conformant stream.
    @raise Invalid_argument unless [sigma_bits > 0] and [rho > 0]. *)

val offer : t -> size_bits:float -> unit
(** Queue a packet for shaped release (possibly immediately, in this same
    simulation event). Packets larger than [sigma_bits] can never conform.
    @raise Invalid_argument if [size_bits] exceeds the bucket size. *)

val backlog_bits : t -> float
(** Bits waiting in the shaper. *)

val queue_length : t -> int
val released : t -> int
(** Packets released downstream so far. *)
