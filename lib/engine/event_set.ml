(* The pending-event-set contract every simulator backend implements.

   A backend orders bare slot indices of an Event_pool by the pool's
   (time, seq) key. Cancellation is *not* a backend operation: the
   simulator flips the slot's pool state to [st_cancelled] in O(1) and the
   backend drops cancelled entries lazily — while searching for the next
   live event ([peek_live]/[pop_live] free any cancelled entry standing
   between the current position and the answer) and wholesale under
   [compact], which the simulator triggers whenever cancelled entries
   outnumber live ones so memory stays bounded under cancel churn.

   Two implementations ship:

   - [Slot_heap] — the PR-1 binary heap of slots, O(log n) per
     schedule/extract, no tuning, kept as the cross-checked reference
     (the lockstep qcheck differential in test/test_event_set.ml drives
     both backends through identical op sequences);
   - [Calendar_queue] — a Brown-style bucketed circular calendar,
     amortized O(1) per schedule/extract on the near-future-timer
     distributions discrete event simulation actually produces, the
     default since it wins every churn workload in `bench events`.

   The simulator dispatches over a two-constructor variant rather than a
   first-class module so backend calls stay direct (one predictable
   branch); this module type pins the contract both must satisfy and is
   checked by the [module _ : Event_set.S] ascriptions below each
   implementation's use site in Simulator. *)

module type S = sig
  type t

  val create : Event_pool.t -> t
  (** Empty set over [pool]. The backend keeps the pool handle: ordering
      reads and lazy reclamation ([Event_pool.free] of cancelled slots it
      removes) go through it. *)

  val add : t -> int -> unit
  (** Insert a slot whose pool fields (time, seq, state = live) are
      already set. The slot's time must be >= the time of the last slot
      returned by [pop_live] (the simulator rejects past schedules). *)

  val peek_live : t -> int
  (** Earliest live slot without removing it, or [-1] if none. Cancelled
      entries encountered on the way are removed and freed back to the
      pool. A subsequent [pop_live] with no interleaved [add] is O(1). *)

  val pop_live : t -> int
  (** Remove and return the earliest live slot, or [-1] if none. Frees
      cancelled entries it passes, like [peek_live]. *)

  val size : t -> int
  (** Entries currently held, including not-yet-reclaimed cancelled
      ones. [size t - live] (the simulator tracks [live]) is the garbage
      the next [compact] would reclaim. *)

  val capacity : t -> int
  (** Allocated extent of the ordering structure (heap array length /
      calendar bucket count) — exposed through [Simulator.stats] so
      resize behaviour is observable. *)

  val compact : t -> unit
  (** Drop every cancelled entry and free its slot. *)

  val resizes : t -> int
  (** Internal structural resizes so far (0 for backends that never
      restructure; bucket-array rebuilds for the calendar). *)
end
