(** Deterministic pseudo-random streams (SplitMix64).

    Every stochastic workload in the repository draws from one of these so
    experiments are exactly reproducible from a seed. [split] derives an
    independent stream, letting each traffic source own its own generator
    without cross-contamination when sources are added or reordered. *)

type t

val create : int64 -> t
(** Seeded generator. The same seed always yields the same stream. *)

val split : t -> t
(** Derive an independent child stream (advances the parent). *)

val for_task : t -> int -> t
(** [for_task t i] is the stable child stream for task index [i]: a pure
    function of [t]'s current position and [i] that does {e not} advance
    [t]. Unlike {!split}, deriving children in any order — or from any
    worker domain — yields the same streams, which is what makes parallel
    sweeps bit-identical to sequential ones. Children for distinct
    indices are pairwise independent (SplitMix64 double-mix off the
    golden-gamma lattice).
    @raise Invalid_argument if [i < 0]. *)

val mix64 : int64 -> int64
(** The raw SplitMix64 finalizer: a stateless avalanche permutation of
    the full 64-bit space. Exposed for deterministic hashing jobs that
    must agree across processes and worker counts — e.g. the shard
    router's flow table and departure-trace fingerprints — where
    [Hashtbl.hash]'s truncation and version sensitivity would not do. *)

val next_int64 : t -> int64
val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (Poisson inter-arrivals). *)

val bool : t -> bool
