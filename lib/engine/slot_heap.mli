(** Reference pending-set backend: binary min-heap of pool slots ordered
    by (time, seq). O(log n) schedule/extract. See {!Event_set.S} for the
    contract of each operation. *)

include Event_set.S
