(** Slot-indexed struct-of-arrays storage for pending events.

    The pool owns every event's fields (fire time, FIFO sequence, action,
    lifecycle state, cancellation generation) plus the slot freelist; the
    pending-set backends ({!Slot_heap}, {!Calendar_queue}) order bare slot
    indices over it. The record is exposed so backends read fields with
    plain array loads — this is the simulator hot path. *)

type t = {
  mutable times : float array;  (** unboxed fire times, slot-indexed *)
  mutable seqs : int array;  (** FIFO tie-break (global schedule order) *)
  mutable actions : (unit -> unit) array;
  mutable gens : int array;  (** bumped on {!free}; stale ids don't match *)
  mutable state : Bytes.t;  (** {!st_free} / {!st_live} / {!st_cancelled} *)
  mutable next_free : int array;  (** freelist link, [-1] ends the list *)
  mutable free_head : int;
}

val st_free : char
val st_live : char
val st_cancelled : char

val no_action : unit -> unit
(** Placeholder stored in freed slots so closures are released eagerly. *)

val gen_mask : int
(** Generations occupy the low 31 bits of a packed event id. *)

val create : ?capacity:int -> unit -> t
(** Fresh pool, every slot free (default capacity 16; doubles on demand). *)

val capacity : t -> int
(** Current number of slots (free + in use). *)

val alloc : t -> int
(** Take a slot off the freelist, growing the pool if it is exhausted.
    The caller fills the fields and sets the state. *)

val free : t -> int -> unit
(** Return a slot to the freelist: clears the action, bumps the
    generation (invalidating outstanding ids) and marks it [st_free]. *)

val is_live : t -> int -> bool

val before : t -> int -> int -> bool
(** [(time, seq)] strict order between two slots — the ordering every
    backend must agree on. *)
