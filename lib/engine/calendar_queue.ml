(* Calendar-queue pending-set backend (R. Brown, CACM 1988), adapted to
   the slot pool and to lazy cancellation.

   Time is cut into buckets of [width] seconds; bucket [vb land mask]
   holds every pending event whose "virtual bucket" vb = floor(time /
   width), so the circular bucket array is a calendar: one lap of the
   array is a "year" of nbuckets * width seconds, and a bucket's chain
   mixes events of different years, kept sorted by (time, seq). Dequeue
   scans forward from the current position and takes a bucket's head only
   if it falls inside the year currently being swept (time < (vb + 1) *
   width); when a whole lap finds nothing in-year the next event is far
   away, and a direct search over the bucket heads (each chain is sorted,
   so the global minimum is some head) jumps the scan there. With the
   bucket count and width tracking the population, schedule and extract
   are amortized O(1) — against O(log n) for the slot heap — precisely on
   the near-future-timer distributions a discrete event simulator
   produces.

   Adaptations here:

   - Lazy resize keyed to live-event density: grow (double) when
     occupancy exceeds 2x the bucket count, shrink (halve) when it drops
     under half, both rebuilds re-estimating [width] as ~3x the *median*
     inter-event gap of a bounded sorted sample — median, not mean, so a
     single far-future outlier cannot inflate the width and collapse the
     near future into one bucket. Resizes free any cancelled entries they
     sweep past, so a rebuild doubles as compaction.
   - Lazy cancellation, same protocol as the slot heap: cancel flips pool
     state in O(1) and entries are unlinked + freed when the dequeue scan
     meets them, or wholesale in [compact] (triggered by the simulator
     when cancelled entries outnumber live ones), bounding memory under
     cancel churn.
   - A one-slot found cache making peek-then-pop O(1) (the simulator's
     [run ~until] peeks every event before firing it); any [add]
     invalidates it since a new event may precede the cached minimum.
   - Float safety: the virtual bucket of an event is computed once as
     [int_of_float (time /. width)] and corrected upward so the year
     check [time < (vb + 1) *. width] holds by construction; the
     correction is monotone in time, so bucket order never inverts. The
     quotient is clamped against int overflow for absurd time/width
     ratios; a clamped far-future event simply waits for direct search
     (the found cache keeps that terminating), and the width estimate's
     relative floor keeps the quotient small for every sane workload. *)

type t = {
  pool : Event_pool.t;
  mutable next : int array; (* slot -> successor in its bucket chain, -1 end *)
  mutable buckets : int array; (* bucket -> head slot, -1 empty *)
  mutable nbuckets : int; (* power of two *)
  mutable mask : int;
  mutable width : float; (* seconds per bucket *)
  mutable pos_vb : int; (* virtual bucket the dequeue scan stands on *)
  last_time : float array;
      (* 1 element: last popped time, a lower bound on all entries. A flat
         float array, not a mutable field — float fields of mixed records
         box on every store, and this is written once per pop *)
  mutable size : int; (* entries in buckets, incl. cancelled *)
  mutable found : int; (* cached result of the last search, -1 invalid *)
  mutable found_bucket : int; (* bucket [found] heads *)
  mutable resizes : int;
  mutable scratch : int array; (* rebuild staging *)
  sample : float array; (* width estimation: sorted sample times *)
  gaps : float array; (* width estimation: sample gaps *)
}

let min_buckets = 16
let sample_cap = 64
let vb_clamp = 4.0e15 (* floats count integers exactly to 2^53 ~ 9e15 *)

let create pool =
  {
    pool;
    next = Array.make (Event_pool.capacity pool) (-1);
    buckets = Array.make min_buckets (-1);
    nbuckets = min_buckets;
    mask = min_buckets - 1;
    width = 1.0;
    pos_vb = 0;
    last_time = [| 0.0 |];
    size = 0;
    found = -1;
    found_bucket = -1;
    resizes = 0;
    scratch = [||];
    sample = Array.make sample_cap 0.0;
    gaps = Array.make sample_cap 0.0;
  }

let size t = t.size
let capacity t = t.nbuckets
let resizes t = t.resizes

(* Virtual bucket of [time]: floor(time / width), corrected so that
   time < (vb + 1) * width holds despite rounding (monotone in time). *)
let vb_of t time =
  let q = time /. t.width in
  let q = if q > vb_clamp then vb_clamp else q in
  let vb = int_of_float q in
  if time >= float_of_int (vb + 1) *. t.width then vb + 1 else vb

let ensure_next t slot =
  let n = Array.length t.next in
  if slot >= n then begin
    let next = Array.make (max (2 * n) (slot + 1)) (-1) in
    Array.blit t.next 0 next 0 n;
    t.next <- next
  end

(* Raw sorted insert, no resize trigger (rebuild re-inserts through it).
   [vb_of] is open-coded: calling it would box [time] at the argument
   boundary, and this is the per-schedule hot path. *)
let insert t slot =
  ensure_next t slot;
  let time = t.pool.Event_pool.times.(slot) in
  let q = time /. t.width in
  let q = if q > vb_clamp then vb_clamp else q in
  let vb = int_of_float q in
  let vb = if time >= float_of_int (vb + 1) *. t.width then vb + 1 else vb in
  (* rewind: [run ~until] peeks may have advanced the scan past [now] *)
  if vb < t.pos_vb then t.pos_vb <- vb;
  let b = vb land t.mask in
  let head = t.buckets.(b) in
  if head < 0 || Event_pool.before t.pool slot head then begin
    t.next.(slot) <- head;
    t.buckets.(b) <- slot
  end
  else begin
    let prev = ref head in
    let moving = ref true in
    while !moving do
      let nx = t.next.(!prev) in
      if nx >= 0 && Event_pool.before t.pool nx slot then prev := nx
      else moving := false
    done;
    t.next.(slot) <- t.next.(!prev);
    t.next.(!prev) <- slot
  end;
  t.size <- t.size + 1

(* ~3x the median inter-event gap, scaled from a sorted sample of at most
   [sample_cap] of the [live] staged slots (scratch.(0 .. live-1)). *)
let estimate_width t live =
  if live < 2 then t.width
  else begin
    let k = min live sample_cap in
    let stride = live / k in
    for i = 0 to k - 1 do
      t.sample.(i) <- t.pool.Event_pool.times.(t.scratch.(i * stride))
    done;
    for i = 1 to k - 1 do
      (* insertion sort: k <= 64, allocation-free *)
      let v = t.sample.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.sample.(!j) > v do
        t.sample.(!j + 1) <- t.sample.(!j);
        decr j
      done;
      t.sample.(!j + 1) <- v
    done;
    for i = 0 to k - 2 do
      t.gaps.(i) <- t.sample.(i + 1) -. t.sample.(i)
    done;
    for i = 1 to k - 2 do
      let v = t.gaps.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.gaps.(!j) > v do
        t.gaps.(!j + 1) <- t.gaps.(!j);
        decr j
      done;
      t.gaps.(!j + 1) <- v
    done;
    (* a size-k sample of a size-[live] population understates gaps by
       ~live/k, so scale back up; fall back to the mean when ties push
       the median to zero, and keep the old width when every sampled
       event coincides *)
    let scale = 3.0 *. float_of_int k /. float_of_int live in
    let median = t.gaps.((k - 2) / 2) in
    let est =
      if median > 0.0 then median *. scale
      else begin
        let mean = (t.sample.(k - 1) -. t.sample.(0)) /. float_of_int (k - 1) in
        if mean > 0.0 then mean *. scale else t.width
      end
    in
    (* relative floor: keeps time / width (the virtual bucket) far away
       from integer overflow for any event near the sampled magnitudes *)
    Float.max est (Float.max 1e-300 (Float.abs t.sample.(k - 1) *. 1e-12))
  end

(* Sweep everything out, free cancelled entries, re-estimate the width,
   rebucket the live ones under [nbuckets'] buckets. *)
let rebuild t nbuckets' =
  if Array.length t.scratch < t.size then
    t.scratch <- Array.make (max 64 (max (2 * Array.length t.scratch) t.size)) (-1);
  let live = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let s = ref t.buckets.(b) in
    while !s >= 0 do
      let nx = t.next.(!s) in
      if Event_pool.is_live t.pool !s then begin
        t.scratch.(!live) <- !s;
        incr live
      end
      else Event_pool.free t.pool !s;
      s := nx
    done
  done;
  t.width <- estimate_width t !live;
  if nbuckets' <> t.nbuckets then begin
    t.buckets <- Array.make nbuckets' (-1);
    t.nbuckets <- nbuckets';
    t.mask <- nbuckets' - 1
  end
  else Array.fill t.buckets 0 t.nbuckets (-1);
  t.size <- 0;
  t.found <- -1;
  (* every entry's time is >= last_time, so this can only round down *)
  t.pos_vb <- vb_of t t.last_time.(0);
  t.resizes <- t.resizes + 1;
  for i = 0 to !live - 1 do
    insert t t.scratch.(i)
  done

let add t slot =
  t.found <- -1;
  insert t slot;
  if t.size > 2 * t.nbuckets then rebuild t (2 * t.nbuckets)

(* Global minimum: min over bucket heads (chains are sorted). Frees
   cancelled minima it uncovers so the result, if any, is live. *)
let direct_min t =
  let best = ref (-1) in
  let best_bucket = ref (-1) in
  let searching = ref true in
  while !searching do
    best := -1;
    for b = 0 to t.nbuckets - 1 do
      let h = t.buckets.(b) in
      if h >= 0 && (!best < 0 || Event_pool.before t.pool h !best) then begin
        best := h;
        best_bucket := b
      end
    done;
    if !best < 0 || Event_pool.is_live t.pool !best then searching := false
    else begin
      t.buckets.(!best_bucket) <- t.next.(!best);
      t.size <- t.size - 1;
      Event_pool.free t.pool !best
    end
  done;
  (!best, !best_bucket)

let find_live t =
  if t.found >= 0 && Event_pool.is_live t.pool t.found then t.found
  else begin
    t.found <- -1;
    let result = ref (-2) in
    let scanned = ref 0 in
    while !result = -2 do
      if t.size = 0 then result := -1
      else begin
        let b = t.pos_vb land t.mask in
        let head = t.buckets.(b) in
        if
          head >= 0
          && t.pool.Event_pool.times.(head)
             < float_of_int (t.pos_vb + 1) *. t.width
        then
          if Event_pool.is_live t.pool head then begin
            result := head;
            t.found_bucket <- b
          end
          else begin
            (* cancelled entry inside the current year: reclaim, re-check *)
            t.buckets.(b) <- t.next.(head);
            t.size <- t.size - 1;
            Event_pool.free t.pool head
          end
        else begin
          t.pos_vb <- t.pos_vb + 1;
          incr scanned;
          if !scanned > t.nbuckets then begin
            (* a full lap in-year found nothing: jump to the global min *)
            let m, bm = direct_min t in
            if m < 0 then result := -1
            else begin
              result := m;
              t.found_bucket <- bm;
              let v = t.pool.Event_pool.times.(m) in
              let vb = vb_of t v in
              (* resume the scan at the min's year when the mapping is
                 exact (it isn't for clamped far-future outliers) *)
              if v < float_of_int (vb + 1) *. t.width && vb land t.mask = bm
              then t.pos_vb <- vb
            end
          end
        end
      end
    done;
    if !result >= 0 then t.found <- !result;
    !result
  end

let peek_live = find_live

let pop_live t =
  let s = find_live t in
  if s >= 0 then begin
    (* the found slot always heads its bucket *)
    t.buckets.(t.found_bucket) <- t.next.(s);
    t.size <- t.size - 1;
    t.last_time.(0) <- t.pool.Event_pool.times.(s);
    t.found <- -1;
    if t.nbuckets > min_buckets && t.size < t.nbuckets / 2 then begin
      (* shrink in one jump so a drained queue doesn't rebuild per pop *)
      let n' = ref t.nbuckets in
      while !n' > min_buckets && t.size < !n' / 2 do
        n' := !n' / 2
      done;
      rebuild t !n'
    end
  end;
  s

let compact t =
  for b = 0 to t.nbuckets - 1 do
    let rec skip s =
      if s >= 0 && not (Event_pool.is_live t.pool s) then begin
        let nx = t.next.(s) in
        Event_pool.free t.pool s;
        t.size <- t.size - 1;
        skip nx
      end
      else s
    in
    let head = skip t.buckets.(b) in
    t.buckets.(b) <- head;
    if head >= 0 then begin
      let prev = ref head in
      while t.next.(!prev) >= 0 do
        let nx = skip t.next.(!prev) in
        t.next.(!prev) <- nx;
        if nx >= 0 then prev := nx
      done
    end
  done;
  t.found <- -1
