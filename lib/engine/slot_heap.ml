(* Reference pending-set backend: a binary min-heap of pool slots ordered
   by (time, seq). O(log n) schedule/extract, no tuning knobs, behaviour
   easy to audit — the calendar backend is cross-checked against it by the
   lockstep differential test. Extracted verbatim from the PR-1 simulator;
   only the pool indirection is new. *)

type t = {
  pool : Event_pool.t;
  mutable heap : int array; (* slot indices, heap-ordered *)
  mutable size : int;
}

let create pool = { pool; heap = Array.make 16 (-1); size = 0 }
let size t = t.size
let capacity t = Array.length t.heap
let resizes _ = 0

let add t slot =
  let n = Array.length t.heap in
  if t.size = n then begin
    let heap = Array.make (2 * n) (-1) in
    Array.blit t.heap 0 heap 0 n;
    t.heap <- heap
  end;
  (* hole sift-up: slide ancestors down, write [slot] once *)
  let heap = t.heap in
  let pool = t.pool in
  let i = ref t.size in
  t.size <- t.size + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = Array.unsafe_get heap parent in
    if Event_pool.before pool slot p then begin
      Array.unsafe_set heap !i p;
      i := parent
    end
    else moving := false
  done;
  Array.unsafe_set heap !i slot

(* Sift the slot at heap position [i] down to its place. *)
let sift_down t i =
  let heap = t.heap in
  let pool = t.pool in
  let size = t.size in
  let slot = Array.unsafe_get heap i in
  let i = ref i in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= size then moving := false
    else begin
      let r = l + 1 in
      let best =
        if
          r < size
          && Event_pool.before pool (Array.unsafe_get heap r) (Array.unsafe_get heap l)
        then r
        else l
      in
      let b = Array.unsafe_get heap best in
      if Event_pool.before pool b slot then begin
        Array.unsafe_set heap !i b;
        i := best
      end
      else moving := false
    end
  done;
  Array.unsafe_set heap !i slot

(* Remove the heap minimum (caller checks non-empty). *)
let pop t =
  let top = t.heap.(0) in
  let last = t.size - 1 in
  t.size <- last;
  if last > 0 then begin
    t.heap.(0) <- t.heap.(last);
    sift_down t 0
  end;
  t.heap.(last) <- -1;
  top

(* Pop-and-free cancelled tops until a live one surfaces. *)
let peek_live t =
  let result = ref (-2) in
  while !result = -2 do
    if t.size = 0 then result := -1
    else begin
      let top = t.heap.(0) in
      if Event_pool.is_live t.pool top then result := top
      else begin
        ignore (pop t);
        Event_pool.free t.pool top
      end
    end
  done;
  !result

let pop_live t =
  let slot = peek_live t in
  if slot >= 0 then ignore (pop t);
  slot

(* Drop every cancelled slot and rebuild bottom-up (Floyd heapify, O(n)). *)
let compact t =
  let heap = t.heap in
  let j = ref 0 in
  for i = 0 to t.size - 1 do
    let slot = heap.(i) in
    if Event_pool.is_live t.pool slot then begin
      heap.(!j) <- slot;
      incr j
    end
    else Event_pool.free t.pool slot
  done;
  for i = !j to t.size - 1 do
    heap.(i) <- -1
  done;
  t.size <- !j;
  for i = (!j / 2) - 1 downto 0 do
    sift_down t i
  done
