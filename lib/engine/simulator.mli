(** Discrete-event simulation core (the NETSIM substitute).

    A simulator owns a virtual clock and a pending-event set. Events fire in
    non-decreasing time order; events scheduled for the same instant fire in
    the order they were scheduled (FIFO tie-break by sequence number), which
    keeps runs deterministic. Event handlers may schedule and cancel further
    events freely. *)

type t

type event_id
(** Handle for cancellation. *)

val create : unit -> t

val now : t -> float
(** Current virtual time in seconds. Starts at [0.]. *)

val schedule : t -> at:float -> (unit -> unit) -> event_id
(** Schedule a callback at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> event_id
(** Schedule relative to [now]. Negative delays are rejected. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; no-op if it already fired or was cancelled. *)

val pending : t -> int
(** Number of not-yet-fired, not-cancelled events. *)

val step : t -> bool
(** Fire the earliest pending event. Returns [false] if none remain. *)

val run : ?until:float -> t -> unit
(** Drain the event set; with [~until] stop once the next event would fire
    strictly after that time (the clock is then advanced to [until]). *)

val events_processed : t -> int
(** Total events fired so far (monitoring / tests). *)

(** {2 Observability}

    A probe sees the event loop's lifecycle: every schedule, fire, and
    effective cancel (stale cancels are invisible, as they change nothing).
    Probes power the tracing layer's real-time axis; [None] (the default)
    costs one branch per operation and allocates nothing. *)

type probe = {
  on_schedule : at:float -> now:float -> unit;
  (** An event was scheduled for absolute time [at] while the clock read
      [now]. *)
  on_fire : at:float -> unit;
  (** An event is about to fire; the clock has already advanced to [at]. *)
  on_cancel : at:float -> now:float -> unit;
  (** A live event destined for [at] was cancelled at [now]. *)
}

val set_probe : t -> probe option -> unit
(** Install or remove the probe. Replaces any previous probe. *)
