(** Discrete-event simulation core (the NETSIM substitute).

    A simulator owns a virtual clock and a pending-event set. Events fire in
    non-decreasing time order; events scheduled for the same instant fire in
    the order they were scheduled (FIFO tie-break by sequence number), which
    keeps runs deterministic. Event handlers may schedule and cancel further
    events freely.

    The pending set is pluggable ({!backend}): a binary slot heap (O(log n)
    per operation, the audited reference) or a Brown-style calendar queue
    (amortized O(1) on timer-churn workloads, the default). Both preserve
    the same fire order, clock behaviour and trace output; `bench events`
    A/Bs them and a lockstep differential test pins their equivalence. *)

type t

type event_id
(** Handle for cancellation. *)

val stale_id : event_id
(** An id that matches no event, past or future: {!cancel} on it is always
    a no-op. Useful as the initial value of a pre-sized id array. *)

(** {2 Pending-set backends} *)

type backend =
  | Slot_heap  (** binary heap of event slots: O(log n), no tuning *)
  | Calendar  (** bucketed calendar queue: amortized O(1), adaptive width *)

val backend_name : backend -> string
(** ["heap"] / ["calendar"]. *)

val backend_of_string : string -> (backend, string) result
(** Accepts ["heap"]/["slot-heap"]/["binary"] and
    ["calendar"]/["calendar-queue"]/["cq"], case-insensitively. *)

val default_backend : unit -> backend
(** Backend used by {!create} when none is passed. Seeded from the
    [HPFQ_EVENT_SET] environment variable ("heap" or "calendar"; invalid
    values warn on stderr), otherwise {!Calendar}. *)

val set_default_backend : backend -> unit
(** Override the process-wide default — the hook behind CLI knobs, so a
    driver can A/B every simulator an experiment creates internally.
    Domain-safe (the default lives in an [Atomic]), but parallel sweeps
    must not rely on that: see {!snapshot_config}. *)

type config = { cfg_backend : backend }
(** Every process-wide mutable default consulted by {!create}, flattened
    into an immutable snapshot. Parallel sweeps call {!snapshot_config}
    {e once, before spawning workers}, and each task builds its private
    simulator with {!create_configured} — workers never read the live
    process defaults, so a concurrent {!set_default_backend} cannot split
    one sweep across two backends. *)

val snapshot_config : unit -> config
(** Read the process-wide defaults once. *)

val create_configured : config -> t
(** [create ~backend:config.cfg_backend ()]. *)

val create : ?backend:backend -> unit -> t
(** New simulator at time [0.] with an empty pending set.
    [backend] defaults to {!default_backend}[ ()]. *)

val backend : t -> backend
(** The backend this simulator was created with. *)

val now : t -> float
(** Current virtual time in seconds. Starts at [0.]. *)

val schedule : t -> at:float -> (unit -> unit) -> event_id
(** Schedule a callback at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> event_id
(** Schedule relative to [now]. Negative delays are rejected. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; no-op if it already fired or was cancelled. *)

val pending : t -> int
(** Number of not-yet-fired, not-cancelled events. *)

(** {2 Burst-drain support}

    A handler that knows its next k actions (e.g. a backlogged link whose
    next departures are already determined) may execute them inline in one
    activation instead of scheduling k events, provided the observable
    outcome is identical. These three primitives carry the safety
    conditions: never act past the earliest pending event ({!peek_time}),
    never act past the horizon of an enclosing [run ~until]
    ({!run_horizon}), and move the clock explicitly ({!advance_clock}) so
    [now] reads during the inlined work match what the scheduled events
    would have seen. *)

val peek_time : t -> float
(** Fire time of the earliest live pending event, or [infinity] when the
    pending set is empty. Does not advance the clock. *)

val advance_clock : t -> to_:float -> unit
(** Move the clock forward to [to_] without firing anything.
    @raise Invalid_argument if [to_] is before [now] or strictly past
    {!peek_time} (skipping a pending event would reorder history). *)

val run_horizon : t -> float
(** The [until] horizon of the innermost {!run} currently draining this
    simulator, or [infinity] when none is active (including [run] without
    [~until]). Burst-draining handlers must not act strictly past it. *)

val step : t -> bool
(** Fire the earliest pending event. Returns [false] if none remain. *)

val run : ?until:float -> t -> unit
(** Drain the event set; with [~until] stop once the next event would fire
    strictly after that time (the clock is then advanced to [until]).
    An event scheduled exactly at the horizon fires. *)

val events_processed : t -> int
(** Total events fired so far (monitoring / tests). *)

(** {2 Occupancy and structure statistics}

    Snapshot of the pending set's internals, surfaced so compaction and
    resize behaviour is observable in traces (see [Obs.Trace.sim_report]). *)

type stats = {
  stat_backend : backend;
  live : int;  (** pending and not cancelled (= {!pending}) *)
  cancelled_in_set : int;
      (** cancelled entries still occupying the structure: garbage the
          next compaction reclaims; kept below the live count *)
  set_capacity : int;
      (** allocated extent of the ordering structure (heap array length /
          calendar bucket count) *)
  pool_capacity : int;  (** event-pool slots (free + in use) *)
  compactions : int;  (** cancelled-entry sweeps triggered so far *)
  resizes : int;  (** backend structural resizes (calendar rebuilds) *)
}

val stats : t -> stats

(** {2 Observability}

    A probe sees the event loop's lifecycle: every schedule, fire, and
    effective cancel (stale cancels are invisible, as they change nothing).
    Probes power the tracing layer's real-time axis; [None] (the default)
    costs one branch per operation and allocates nothing. *)

type probe = {
  on_schedule : at:float -> now:float -> unit;
  (** An event was scheduled for absolute time [at] while the clock read
      [now]. *)
  on_fire : at:float -> unit;
  (** An event is about to fire; the clock has already advanced to [at]. *)
  on_cancel : at:float -> now:float -> unit;
  (** A live event destined for [at] was cancelled at [now]. *)
}

val set_probe : t -> probe option -> unit
(** Install or remove the probe. Replaces any previous probe. *)
