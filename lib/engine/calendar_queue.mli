(** Calendar-queue pending-set backend (Brown-style bucketed circular
    calendar over time): amortized O(1) schedule/extract on near-future
    timer distributions, lazy bucket resize keyed to live-event density,
    lazy cancellation with bounded garbage. The simulator's default; the
    slot heap remains as the cross-checked reference. See {!Event_set.S}
    for the contract of each operation. *)

include Event_set.S
