let bits_of_bytes b = 8.0 *. b
let bytes_of_bits b = b /. 8.0
let bits_of_kilobytes kb = 8.0 *. 1024.0 *. kb
let mbps x = x *. 1.0e6
let kbps x = x *. 1.0e3
let gbps x = x *. 1.0e9
let ms x = x *. 1.0e-3
let us x = x *. 1.0e-6
let seconds_to_ms x = x *. 1.0e3

let transmission_time ~bits ~rate =
  if rate <= 0.0 then invalid_arg "Units.transmission_time: rate must be positive";
  bits /. rate

let pp_time fmt t =
  let a = Float.abs t in
  if a >= 1.0 then Format.fprintf fmt "%.6g s" t
  else if a >= 1.0e-3 then Format.fprintf fmt "%.6g ms" (t *. 1.0e3)
  else Format.fprintf fmt "%.6g us" (t *. 1.0e6)

let pp_rate fmt r =
  let a = Float.abs r in
  if a >= 1.0e9 then Format.fprintf fmt "%.6g Gbps" (r /. 1.0e9)
  else if a >= 1.0e6 then Format.fprintf fmt "%.6g Mbps" (r /. 1.0e6)
  else if a >= 1.0e3 then Format.fprintf fmt "%.6g Kbps" (r /. 1.0e3)
  else Format.fprintf fmt "%.6g bps" r
