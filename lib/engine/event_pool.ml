(* Slot-indexed struct-of-arrays storage for pending events, shared by
   every pending-set backend (see Event_set). The pool owns the event
   *fields* — fire time, FIFO sequence, action closure, lifecycle state,
   cancellation generation — while a backend owns only an ordering
   structure over slot indices. Keeping the fields here means a backend
   compares two events with two array loads and no per-event record ever
   exists; keeping the freelist here means slot reuse (and therefore
   generation bumping, which is what makes stale cancels safe) has a
   single owner no matter which backend is plugged in. *)

type t = {
  mutable times : float array; (* unboxed fire times *)
  mutable seqs : int array; (* FIFO tie-break, global schedule order *)
  mutable actions : (unit -> unit) array;
  mutable gens : int array; (* bumped on free; stale ids don't match *)
  mutable state : Bytes.t;
  mutable next_free : int array; (* freelist link, -1 ends the list *)
  mutable free_head : int;
}

let st_free = '\000'
let st_live = '\001'
let st_cancelled = '\002'
let no_action = ignore

(* Generations live in the low 31 bits of a packed event id (see
   Simulator.pack); the mask is shared so pool and packer agree. *)
let gen_mask = 0x7FFFFFFF

let create ?(capacity = 16) () =
  let cap = max 2 capacity in
  let next_free = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    times = Array.make cap 0.0;
    seqs = Array.make cap 0;
    actions = Array.make cap no_action;
    gens = Array.make cap 0;
    state = Bytes.make cap st_free;
    next_free;
    free_head = 0;
  }

let capacity t = Array.length t.times

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let grow_f a = let b = Array.make cap' 0.0 in Array.blit a 0 b 0 cap; b in
  let grow_i a = let b = Array.make cap' 0 in Array.blit a 0 b 0 cap; b in
  t.times <- grow_f t.times;
  t.seqs <- grow_i t.seqs;
  t.gens <- grow_i t.gens;
  let actions = Array.make cap' no_action in
  Array.blit t.actions 0 actions 0 cap;
  t.actions <- actions;
  let state = Bytes.make cap' st_free in
  Bytes.blit t.state 0 state 0 cap;
  t.state <- state;
  let next_free = Array.make cap' (-1) in
  Array.blit t.next_free 0 next_free 0 cap;
  (* thread the new slots onto the freelist *)
  for i = cap to cap' - 1 do
    next_free.(i) <- (if i = cap' - 1 then t.free_head else i + 1)
  done;
  t.next_free <- next_free;
  t.free_head <- cap

let alloc t =
  if t.free_head < 0 then grow t;
  let slot = t.free_head in
  t.free_head <- t.next_free.(slot);
  slot

let free t slot =
  Bytes.set t.state slot st_free;
  t.actions.(slot) <- no_action; (* release the closure *)
  t.gens.(slot) <- (t.gens.(slot) + 1) land gen_mask; (* invalidate old ids *)
  t.next_free.(slot) <- t.free_head;
  t.free_head <- slot

let is_live t slot = Bytes.get t.state slot = st_live

(* (time, seq) strict order: the tie-break makes same-instant events fire
   in schedule order, which keeps runs deterministic. *)
let before t a b =
  let ta = t.times.(a) and tb = t.times.(b) in
  ta < tb || (ta = tb && t.seqs.(a) < t.seqs.(b))
