(** Unit conventions and conversions used throughout the repository.

    Internally everything is SI: time in {e seconds}, sizes in {e bits},
    rates in {e bits per second}. These helpers exist so experiment code can
    be written in the paper's units (Mbps, ms, KB packets) without sprinkling
    magic constants. *)

val bits_of_bytes : float -> float
val bytes_of_bits : float -> float
val bits_of_kilobytes : float -> float
val mbps : float -> float
(** [mbps x] is [x] megabits/second expressed in bits/second. *)

val kbps : float -> float
val gbps : float -> float
val ms : float -> float
(** [ms x] is [x] milliseconds expressed in seconds. *)

val us : float -> float
val seconds_to_ms : float -> float

val transmission_time : bits:float -> rate:float -> float
(** Time to serialise [bits] onto a link of [rate] bits/second. *)

val pp_time : Format.formatter -> float -> unit
(** Render a time with an adaptive unit (s / ms / µs). *)

val pp_rate : Format.formatter -> float -> unit
(** Render a rate with an adaptive unit (bps / Kbps / Mbps / Gbps). *)
