type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix64 = mix

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

(* Stable per-task derivation for parallel sweeps. [split] advances the
   parent, so which child a task gets depends on how many splits happened
   before it — under a work pool that is worker-count- and order-dependent,
   and the sequential and parallel draws diverge. [for_task] instead lands
   [i+1] steps down the parent's gamma lattice *without advancing it* and
   double-mixes: child [i] is a pure function of (parent position, i).
   A single mix would make child 0's state collide with the parent's next
   output; the second mix keeps the child state stream disjoint from the
   parent's output stream. *)
let for_task t i =
  if i < 0 then invalid_arg "Rng.for_task: task index must be >= 0";
  let lattice = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  create (mix (mix lattice))

(* 53 random bits -> [0,1). *)
let uniform t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound =
  if bound <= 0.0 then invalid_arg "Rng.float: bound must be positive";
  uniform t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (uniform t *. float_of_int bound)

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. uniform t in
  -.mean *. log u

let bool t = Int64.logand (next_int64 t) 1L = 1L
