(* Pooled event loop over a pluggable pending-event set.

   Events live in a struct-of-arrays pool ([Event_pool]) indexed by slot:
   fire times stay unboxed, freed slots recycle through a freelist, and a
   steady schedule/fire workload allocates nothing per event beyond the
   caller's closure. An [event_id] packs (slot, generation); the
   generation bumps every time a slot is freed, so a cancel holding a
   stale id (event already fired, or slot since reused) is detected and
   ignored instead of killing an unrelated event.

   The *order* over pending slots is a backend behind the [Event_set.S]
   contract — a binary slot heap (the O(log n) reference) or a calendar
   queue (amortized O(1) on timer-churn workloads, the default). Both
   drop cancelled events lazily; when cancelled entries outnumber live
   ones the structure is compacted, bounding memory under cancel-heavy
   workloads such as TCP retransmit-timer churn. `bench events` A/Bs the
   backends and test/test_event_set.ml drives both through identical op
   sequences in lockstep. *)

(* [pack] puts the slot index in bits 31+ of an OCaml int. On a 63-bit
   platform slots up to 2^31 coexist with 31 generation bits; on a 32-bit
   platform every slot would alias slot 0 and stale cancels could kill
   unrelated events — fail loudly at startup instead. *)
let () =
  if Sys.int_size < 63 then
    failwith
      (Printf.sprintf
         "Engine.Simulator: event ids pack (slot, generation) into a 63-bit \
          int; %d-bit platforms are unsupported"
         (Sys.int_size + 1))

type event_id = int

let gen_mask = Event_pool.gen_mask
let pack ~slot ~gen = (slot lsl 31) lor (gen land gen_mask)
let id_slot id = id lsr 31
let id_gen id = id land gen_mask

(* All bits set decodes to a slot index beyond any reachable pool capacity,
   so [cancel] treats it as stale. Lets callers pre-size id arrays without
   an option box. *)
let stale_id : event_id = -1

type probe = {
  on_schedule : at:float -> now:float -> unit;
  on_fire : at:float -> unit;
  on_cancel : at:float -> now:float -> unit;
}

(* ---- pending-set backends ---- *)

type backend = Slot_heap | Calendar

(* Compile-time check that both implementations satisfy the contract. *)
module _ : Event_set.S = Slot_heap
module _ : Event_set.S = Calendar_queue

(* Dispatch over a two-constructor variant keeps backend calls direct
   (one predictable branch) instead of going through a first-class
   module's closure record. *)
type event_set = Heap of Slot_heap.t | Cal of Calendar_queue.t

let backend_name = function Slot_heap -> "heap" | Calendar -> "calendar"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "heap" | "slot-heap" | "slot_heap" | "binary" -> Ok Slot_heap
  | "calendar" | "calendar-queue" | "calendar_queue" | "cq" -> Ok Calendar
  | other ->
    Error
      (Printf.sprintf
         "unknown event-set backend %S (expected \"heap\" or \"calendar\")"
         other)

(* Process-wide default, so drivers (bench, hpfq_sim) can A/B every
   simulator an experiment creates without threading a parameter through
   each one: the HPFQ_EVENT_SET environment variable seeds it, and
   [set_default_backend] backs the CLI knob. An [Atomic] (not a plain
   ref) since parallel sweeps run simulators on multiple domains — but
   the real domain-safety contract is stronger: sweep workers never read
   this at all. They read a [config] snapshotted once, on the parent
   domain, before any worker spawns ([snapshot_config] below), so a
   mid-sweep [set_default_backend] cannot make task 12 run on a
   different backend than task 3. *)
let default_backend_ref =
  Atomic.make
    (match Sys.getenv_opt "HPFQ_EVENT_SET" with
    | None -> Calendar
    | Some s -> (
      match backend_of_string s with
      | Ok b -> b
      | Error msg ->
        Printf.eprintf "warning: HPFQ_EVENT_SET: %s; using calendar\n%!" msg;
        Calendar))

let default_backend () = Atomic.get default_backend_ref
let set_default_backend b = Atomic.set default_backend_ref b

(* Every process-wide mutable default a simulator consults at [create]
   time, flattened into an immutable record. Today that is only the
   event-set backend; new defaults must join this record so the
   snapshot-before-spawn discipline keeps covering them. *)
type config = { cfg_backend : backend }

let snapshot_config () = { cfg_backend = default_backend () }

type t = {
  pool : Event_pool.t;
  es : event_set;
  mutable clock : float;
      (* A mutable float field of a mixed record boxes on every store (one
         per fired event) — but [now] then returns the existing box for
         free, and handlers read the clock more often than the loop writes
         it. A flat 1-element float array inverts the trade: free stores,
         a fresh 2-word box per [now] read — measurably worse (+6
         words/pkt on the hier bench, which reads [now] ~3x per packet). *)
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int; (* pending and not cancelled *)
  mutable compactions : int;
  mutable probe : probe option; (* observability hook; None must stay free *)
  mutable horizon : float;
      (* the [until] of the [run] currently draining this simulator
         (infinity otherwise). Burst-draining handlers consult it so an
         inline departure never crosses a boundary a scheduled event
         would not have crossed. *)
}

let create ?backend () =
  let backend =
    match backend with Some b -> b | None -> Atomic.get default_backend_ref
  in
  let pool = Event_pool.create () in
  let es =
    match backend with
    | Slot_heap -> Heap (Slot_heap.create pool)
    | Calendar -> Cal (Calendar_queue.create pool)
  in
  {
    pool;
    es;
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    live = 0;
    compactions = 0;
    probe = None;
    horizon = infinity;
  }

let create_configured config = create ~backend:config.cfg_backend ()

let backend t = match t.es with Heap _ -> Slot_heap | Cal _ -> Calendar
let now t = t.clock
let run_horizon t = t.horizon

let es_add t slot =
  match t.es with Heap h -> Slot_heap.add h slot | Cal c -> Calendar_queue.add c slot

let es_peek_live t =
  match t.es with
  | Heap h -> Slot_heap.peek_live h
  | Cal c -> Calendar_queue.peek_live c

let es_pop_live t =
  match t.es with
  | Heap h -> Slot_heap.pop_live h
  | Cal c -> Calendar_queue.pop_live c

let es_size t =
  match t.es with Heap h -> Slot_heap.size h | Cal c -> Calendar_queue.size c

let es_capacity t =
  match t.es with
  | Heap h -> Slot_heap.capacity h
  | Cal c -> Calendar_queue.capacity c

let es_compact t =
  match t.es with
  | Heap h -> Slot_heap.compact h
  | Cal c -> Calendar_queue.compact c

let es_resizes t =
  match t.es with
  | Heap h -> Slot_heap.resizes h
  | Cal c -> Calendar_queue.resizes c

(* ---- public API ---- *)

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Simulator.schedule: time %g is before now %g" at t.clock);
  let slot = Event_pool.alloc t.pool in
  let pool = t.pool in
  pool.Event_pool.times.(slot) <- at;
  pool.Event_pool.seqs.(slot) <- t.next_seq;
  pool.Event_pool.actions.(slot) <- action;
  Bytes.set pool.Event_pool.state slot Event_pool.st_live;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  es_add t slot;
  (match t.probe with
  | None -> ()
  | Some p -> p.on_schedule ~at ~now:t.clock);
  pack ~slot ~gen:pool.Event_pool.gens.(slot)

let schedule_after t ~delay action =
  if delay < 0.0 then invalid_arg "Simulator.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

(* Below this occupancy compaction is not worth the sweep. *)
let compact_min_size = 64

let cancel t id =
  let slot = id_slot id in
  let pool = t.pool in
  if
    slot < Event_pool.capacity pool
    && pool.Event_pool.gens.(slot) = id_gen id
    && Event_pool.is_live pool slot
  then begin
    Bytes.set pool.Event_pool.state slot Event_pool.st_cancelled;
    pool.Event_pool.actions.(slot) <- Event_pool.no_action; (* release eagerly *)
    t.live <- t.live - 1;
    (match t.probe with
    | None -> ()
    | Some p -> p.on_cancel ~at:pool.Event_pool.times.(slot) ~now:t.clock);
    (* cancelled-in-structure = size - live; compact once they exceed the
       live population (and the structure is big enough to be worth it) *)
    let size = es_size t in
    if size >= compact_min_size && size - t.live > t.live then begin
      es_compact t;
      t.compactions <- t.compactions + 1
    end
  end

let pending t = t.live

let peek_time t =
  let slot = es_peek_live t in
  if slot < 0 then infinity else t.pool.Event_pool.times.(slot)

(* Burst-draining handlers move the clock themselves between inline
   departures. The two bounds make the motion indistinguishable from
   firing the equivalent scheduled events: never backwards, and never
   past the earliest pending event (which would have fired first). *)
let advance_clock t ~to_ =
  if to_ < t.clock then
    invalid_arg
      (Printf.sprintf "Simulator.advance_clock: time %g is before now %g" to_
         t.clock);
  if to_ > peek_time t then
    invalid_arg
      (Printf.sprintf
         "Simulator.advance_clock: time %g is past the earliest pending event \
          at %g"
         to_ (peek_time t));
  t.clock <- to_

let step t =
  let slot = es_pop_live t in
  if slot < 0 then false
  else begin
    let pool = t.pool in
    t.clock <- pool.Event_pool.times.(slot);
    t.live <- t.live - 1;
    t.fired <- t.fired + 1;
    let action = pool.Event_pool.actions.(slot) in
    (* free before firing: the handler may schedule (reusing this slot)
       or cancel (the bumped generation makes its own id stale) *)
    Event_pool.free pool slot;
    (match t.probe with
    | None -> ()
    | Some p -> p.on_fire ~at:t.clock);
    action ();
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    (* Publish the horizon for the duration of the drain so burst-draining
       handlers stop inlining departures exactly where the per-event loop
       would have stopped firing them. Restore the caller's horizon (nested
       [run]s from handlers are legal) even if a handler raises. *)
    let saved = t.horizon in
    t.horizon <- horizon;
    Fun.protect
      ~finally:(fun () -> t.horizon <- saved)
      (fun () ->
        let continue = ref true in
        while !continue do
          let slot = es_peek_live t in
          if slot < 0 then continue := false
          else if t.pool.Event_pool.times.(slot) <= horizon then
            ignore (step t)
          else continue := false
        done;
        if t.clock < horizon then t.clock <- horizon)

let events_processed t = t.fired
let set_probe t p = t.probe <- p

(* ---- occupancy / structure stats ---- *)

type stats = {
  stat_backend : backend;
  live : int;
  cancelled_in_set : int;
  set_capacity : int;
  pool_capacity : int;
  compactions : int;
  resizes : int;
}

let stats t =
  {
    stat_backend = backend t;
    live = t.live;
    cancelled_in_set = es_size t - t.live;
    set_capacity = es_capacity t;
    pool_capacity = Event_pool.capacity t.pool;
    compactions = t.compactions;
    resizes = es_resizes t;
  }
