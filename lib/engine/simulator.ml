type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type event_id = event

type t = {
  queue : event Prioq.Binary_heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int; (* pending and not cancelled *)
}

let compare_event a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let dummy_event = { time = 0.0; seq = -1; action = ignore; cancelled = true }

let create () =
  {
    queue = Prioq.Binary_heap.create ~cmp:compare_event ~dummy:dummy_event ();
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    live = 0;
  }

let now t = t.clock

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Simulator.schedule: time %g is before now %g" at t.clock);
  let ev = { time = at; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  Prioq.Binary_heap.push t.queue ev;
  ev

let schedule_after t ~delay action =
  if delay < 0.0 then invalid_arg "Simulator.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

(* Pop cancelled events lazily; they stay in the heap until reached. *)
let rec next_live t =
  match Prioq.Binary_heap.pop t.queue with
  | None -> None
  | Some ev -> if ev.cancelled then next_live t else Some ev

let step t =
  match next_live t with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.live <- t.live - 1;
    t.fired <- t.fired + 1;
    ev.action ();
    true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      match Prioq.Binary_heap.peek t.queue with
      | Some ev when ev.cancelled ->
        ignore (Prioq.Binary_heap.pop t.queue)
      | Some ev when ev.time <= horizon -> ignore (step t)
      | Some _ | None ->
        continue := false
    done;
    if t.clock < horizon then t.clock <- horizon

let events_processed t = t.fired
