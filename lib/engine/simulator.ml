(* Pooled event loop. The original implementation allocated a four-field
   record per scheduled event and pushed it through a polymorphic binary
   heap, so every schedule cost a minor-heap record plus heap-internal
   writes, and cancelled events lingered until popped. Here events live in
   a struct-of-arrays pool indexed by slot:

   - [times]/[seqs]/[actions] hold the event fields unboxed (the float
     array keeps fire times unboxed; no per-event record exists);
   - freed slots are threaded through [next_free] as a freelist, so a
     steady schedule/fire workload reuses the same few slots and the
     event loop allocates nothing per event beyond the caller's closure;
   - the pending set is a heap of slot indices ordered by
     (time, sequence) — same FIFO tie-break as before;
   - an [event_id] is an int packing (slot, generation). The generation
     bumps every time a slot is freed, so a cancel holding a stale id
     (event already fired, or slot since reused) is detected and ignored
     instead of killing an unrelated event;
   - cancelled events are dropped lazily, but when they outnumber the
     live events (i.e. exceed half the heap) the heap is compacted in
     place and re-heapified, bounding memory under cancel-heavy
     workloads such as TCP retransmit-timer churn. *)

type event_id = int

(* id = slot in the high bits, generation in the low 31. OCaml ints are
   63-bit here, so slots up to 2^31 fit without collision. *)
let gen_mask = 0x7FFFFFFF
let pack ~slot ~gen = (slot lsl 31) lor (gen land gen_mask)
let id_slot id = id lsr 31
let id_gen id = id land gen_mask

(* Slot states. *)
let st_free = '\000'
let st_live = '\001'
let st_cancelled = '\002'

let no_action = ignore

type probe = {
  on_schedule : at:float -> now:float -> unit;
  on_fire : at:float -> unit;
  on_cancel : at:float -> now:float -> unit;
}

type t = {
  (* event pool, slot-indexed *)
  mutable times : float array;
  mutable seqs : int array;
  mutable actions : (unit -> unit) array;
  mutable gens : int array;
  mutable state : Bytes.t;
  mutable next_free : int array; (* freelist link, -1 ends the list *)
  mutable free_head : int;
  (* pending set: heap of slots ordered by (times.(slot), seqs.(slot)) *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable live : int; (* pending and not cancelled *)
  mutable probe : probe option; (* observability hook; None must stay free *)
}

let initial_capacity = 16

(* Below this heap size compaction is not worth the re-heapify. *)
let compact_min_heap = 64

let create () =
  let cap = initial_capacity in
  let next_free = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    times = Array.make cap 0.0;
    seqs = Array.make cap 0;
    actions = Array.make cap no_action;
    gens = Array.make cap 0;
    state = Bytes.make cap st_free;
    next_free;
    free_head = 0;
    heap = Array.make cap (-1);
    heap_size = 0;
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    live = 0;
    probe = None;
  }

let now t = t.clock

let grow_pool t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let grow_f a = let b = Array.make cap' 0.0 in Array.blit a 0 b 0 cap; b in
  let grow_i ~fill a = let b = Array.make cap' fill in Array.blit a 0 b 0 cap; b in
  t.times <- grow_f t.times;
  t.seqs <- grow_i ~fill:0 t.seqs;
  t.gens <- grow_i ~fill:0 t.gens;
  let actions = Array.make cap' no_action in
  Array.blit t.actions 0 actions 0 cap;
  t.actions <- actions;
  let state = Bytes.make cap' st_free in
  Bytes.blit t.state 0 state 0 cap;
  t.state <- state;
  let next_free = Array.make cap' (-1) in
  Array.blit t.next_free 0 next_free 0 cap;
  (* thread the new slots onto the freelist *)
  for i = cap to cap' - 1 do
    next_free.(i) <- (if i = cap' - 1 then t.free_head else i + 1)
  done;
  t.next_free <- next_free;
  t.free_head <- cap

let alloc_slot t =
  if t.free_head < 0 then grow_pool t;
  let slot = t.free_head in
  t.free_head <- t.next_free.(slot);
  slot

let free_slot t slot =
  Bytes.set t.state slot st_free;
  t.actions.(slot) <- no_action; (* release the closure *)
  t.gens.(slot) <- (t.gens.(slot) + 1) land gen_mask; (* invalidate old ids *)
  t.next_free.(slot) <- t.free_head;
  t.free_head <- slot

(* ---- slot heap, ordered by (time, seq) ---- *)

let slot_before t a b =
  let ta = t.times.(a) and tb = t.times.(b) in
  ta < tb || (ta = tb && t.seqs.(a) < t.seqs.(b))

let heap_push t slot =
  let n = Array.length t.heap in
  if t.heap_size = n then begin
    let heap = Array.make (2 * n) (-1) in
    Array.blit t.heap 0 heap 0 n;
    t.heap <- heap
  end;
  (* hole sift-up: slide ancestors down, write [slot] once *)
  let heap = t.heap in
  let i = ref t.heap_size in
  t.heap_size <- t.heap_size + 1;
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = Array.unsafe_get heap parent in
    if slot_before t slot p then begin
      Array.unsafe_set heap !i p;
      i := parent
    end
    else moving := false
  done;
  Array.unsafe_set heap !i slot

(* Sift the slot at heap position [i] down to its place. *)
let heap_sift_down t i =
  let heap = t.heap in
  let size = t.heap_size in
  let slot = Array.unsafe_get heap i in
  let i = ref i in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= size then moving := false
    else begin
      let r = l + 1 in
      let best =
        if r < size && slot_before t (Array.unsafe_get heap r) (Array.unsafe_get heap l)
        then r
        else l
      in
      let b = Array.unsafe_get heap best in
      if slot_before t b slot then begin
        Array.unsafe_set heap !i b;
        i := best
      end
      else moving := false
    end
  done;
  Array.unsafe_set heap !i slot

(* Remove the heap minimum (caller checks non-empty). *)
let heap_pop t =
  let top = t.heap.(0) in
  let last = t.heap_size - 1 in
  t.heap_size <- last;
  if last > 0 then begin
    t.heap.(0) <- t.heap.(last);
    heap_sift_down t 0
  end;
  t.heap.(last) <- -1;
  top

(* Drop every cancelled slot from the heap and rebuild it bottom-up
   (Floyd heapify, O(n)). Triggered from [cancel] when cancelled entries
   outnumber live ones. *)
let compact t =
  let heap = t.heap in
  let j = ref 0 in
  for i = 0 to t.heap_size - 1 do
    let slot = heap.(i) in
    if Bytes.get t.state slot = st_live then begin
      heap.(!j) <- slot;
      incr j
    end
    else free_slot t slot
  done;
  for i = !j to t.heap_size - 1 do
    heap.(i) <- -1
  done;
  t.heap_size <- !j;
  for i = (!j / 2) - 1 downto 0 do
    heap_sift_down t i
  done

(* ---- public API ---- *)

let schedule t ~at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Simulator.schedule: time %g is before now %g" at t.clock);
  let slot = alloc_slot t in
  t.times.(slot) <- at;
  t.seqs.(slot) <- t.next_seq;
  t.actions.(slot) <- action;
  Bytes.set t.state slot st_live;
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  heap_push t slot;
  (match t.probe with
  | None -> ()
  | Some p -> p.on_schedule ~at ~now:t.clock);
  pack ~slot ~gen:t.gens.(slot)

let schedule_after t ~delay action =
  if delay < 0.0 then invalid_arg "Simulator.schedule_after: negative delay";
  schedule t ~at:(t.clock +. delay) action

let cancel t id =
  let slot = id_slot id in
  if
    slot < Array.length t.times
    && t.gens.(slot) = id_gen id
    && Bytes.get t.state slot = st_live
  then begin
    Bytes.set t.state slot st_cancelled;
    t.actions.(slot) <- no_action; (* release the closure eagerly *)
    t.live <- t.live - 1;
    (match t.probe with
    | None -> ()
    | Some p -> p.on_cancel ~at:t.times.(slot) ~now:t.clock);
    (* cancelled-in-heap = heap_size - live; compact once they exceed
       half the heap (and the heap is big enough to be worth it) *)
    if t.heap_size >= compact_min_heap && t.heap_size - t.live > t.live then
      compact t
  end

let pending t = t.live

(* Pop cancelled events lazily; compaction keeps their number bounded. *)
let rec next_live t =
  if t.heap_size = 0 then -1
  else begin
    let slot = heap_pop t in
    if Bytes.get t.state slot = st_live then slot
    else begin
      free_slot t slot;
      next_live t
    end
  end

let step t =
  let slot = next_live t in
  if slot < 0 then false
  else begin
    t.clock <- t.times.(slot);
    t.live <- t.live - 1;
    t.fired <- t.fired + 1;
    let action = t.actions.(slot) in
    (* free before firing: the handler may schedule (reusing this slot)
       or cancel (the bumped generation makes its own id stale) *)
    free_slot t slot;
    (match t.probe with
    | None -> ()
    | Some p -> p.on_fire ~at:t.clock);
    action ();
    true
  end

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
    let continue = ref true in
    while !continue do
      if t.heap_size = 0 then continue := false
      else begin
        let slot = t.heap.(0) in
        if Bytes.get t.state slot <> st_live then begin
          ignore (heap_pop t);
          free_slot t slot
        end
        else if t.times.(slot) <= horizon then ignore (step t)
        else continue := false
      end
    done;
    if t.clock < horizon then t.clock <- horizon

let events_processed t = t.fired
let set_probe t p = t.probe <- p
