type t = {
  mutable keys : int array;       (* heap slot -> key *)
  mutable prios : float array;    (* heap slot -> priority *)
  mutable pos : int array;        (* key -> heap slot, or -1 *)
  mutable size : int;
}

let create capacity =
  let capacity = max 1 capacity in
  {
    keys = Array.make capacity (-1);
    prios = Array.make capacity nan;
    pos = Array.make capacity (-1);
    size = 0;
  }

let length h = h.size
let is_empty h = h.size = 0

let ensure_key_capacity h key =
  let n = Array.length h.pos in
  if key >= n then begin
    let n' = max (key + 1) (2 * n) in
    let pos = Array.make n' (-1) in
    Array.blit h.pos 0 pos 0 n;
    h.pos <- pos
  end

let ensure_slot_capacity h =
  let n = Array.length h.keys in
  if h.size = n then begin
    let keys = Array.make (2 * n) (-1) in
    let prios = Array.make (2 * n) nan in
    Array.blit h.keys 0 keys 0 n;
    Array.blit h.prios 0 prios 0 n;
    h.keys <- keys;
    h.prios <- prios
  end

let mem h key = key >= 0 && key < Array.length h.pos && h.pos.(key) >= 0

(* [a] before [b]? Smaller priority wins; ties broken by smaller key for
   determinism across runs and platforms. *)
let before h i j =
  let c = compare h.prios.(i) h.prios.(j) in
  if c <> 0 then c < 0 else h.keys.(i) < h.keys.(j)

let swap h i j =
  let ki = h.keys.(i) and kj = h.keys.(j) in
  h.keys.(i) <- kj;
  h.keys.(j) <- ki;
  let p = h.prios.(i) in
  h.prios.(i) <- h.prios.(j);
  h.prios.(j) <- p;
  h.pos.(ki) <- j;
  h.pos.(kj) <- i

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && before h left !smallest then smallest := left;
  if right < h.size && before h right !smallest then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~key ~prio =
  if key < 0 then invalid_arg "Indexed_heap.add: negative key";
  ensure_key_capacity h key;
  if h.pos.(key) >= 0 then invalid_arg "Indexed_heap.add: key present";
  ensure_slot_capacity h;
  let i = h.size in
  h.keys.(i) <- key;
  h.prios.(i) <- prio;
  h.pos.(key) <- i;
  h.size <- h.size + 1;
  sift_up h i

let update h ~key ~prio =
  if not (mem h key) then invalid_arg "Indexed_heap.update: key absent";
  let i = h.pos.(key) in
  h.prios.(i) <- prio;
  sift_up h i;
  sift_down h h.pos.(key)

let add_or_update h ~key ~prio =
  if mem h key then update h ~key ~prio else add h ~key ~prio

let remove_slot h i =
  let last = h.size - 1 in
  let key = h.keys.(i) in
  h.pos.(key) <- -1;
  if i <> last then begin
    let moved = h.keys.(last) in
    h.keys.(i) <- moved;
    h.prios.(i) <- h.prios.(last);
    h.pos.(moved) <- i
  end;
  h.keys.(last) <- -1;
  h.prios.(last) <- nan;
  h.size <- last;
  if i < h.size then begin
    (* The replacement parachuted into slot [i] may violate heap order in
       either direction; fix both on slot [i] itself. If [sift_up] moved
       the replacement away, the element now occupying slot [i] is one of
       its former ancestors, which was already <= everything in [i]'s
       subtree, so the following [sift_down i] is a cheap no-op; if it
       didn't move, [sift_down i] restores the downward invariant. Either
       way there is no need to re-read [pos] to chase the replacement. *)
    sift_up h i;
    sift_down h i
  end

let remove h key = if mem h key then remove_slot h h.pos.(key)

let min_key h = if h.size = 0 then None else Some h.keys.(0)
let min_prio h = if h.size = 0 then None else Some h.prios.(0)

let min_binding h =
  if h.size = 0 then None else Some (h.keys.(0), h.prios.(0))

let pop_min h =
  match min_binding h with
  | None -> None
  | Some binding ->
    remove_slot h 0;
    Some binding

let prio_of h key = if mem h key then Some h.prios.(h.pos.(key)) else None

let iter f h =
  for i = 0 to h.size - 1 do
    f h.keys.(i) h.prios.(i)
  done

let clear h =
  for i = 0 to h.size - 1 do
    h.pos.(h.keys.(i)) <- -1;
    h.keys.(i) <- -1;
    h.prios.(i) <- nan
  done;
  h.size <- 0

let check_invariant h =
  let ok = ref true in
  for i = 1 to h.size - 1 do
    if before h i ((i - 1) / 2) then ok := false
  done;
  for i = 0 to h.size - 1 do
    if h.pos.(h.keys.(i)) <> i then ok := false
  done;
  for key = 0 to Array.length h.pos - 1 do
    let p = h.pos.(key) in
    if p >= 0 && (p >= h.size || h.keys.(p) <> key) then ok := false
  done;
  !ok
