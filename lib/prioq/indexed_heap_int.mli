(** 4-ary indexed min-heap over integer keys with {e integer} priorities —
    the fixed-point twin of {!Indexed_heap4}.

    Same shape, same ordering rule (priority, then key, deterministic), but
    priorities are plain ints (virtual-time ticks), so comparisons are exact
    machine-integer compares with no epsilon slack and the interleaved
    (prio, key) slab is a single unboxed [int array]. On traces whose float
    priorities are exactly representable, {!Indexed_heap4} and this heap
    pop identical sequences — the property the fixed-vs-float differential
    test leans on.

    Priorities must be < [max_int] ([max_int] is the empty-slot sentinel). *)

type t

val create : int -> t
(** [create capacity] handles keys [0 .. capacity-1]; grows on demand. *)

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> key:int -> prio:int -> unit
(** @raise Invalid_argument if [key] is already present or negative. *)

val update : t -> key:int -> prio:int -> unit
(** Change the priority of a present key (either direction).
    @raise Invalid_argument if [key] is absent. *)

val add_or_update : t -> key:int -> prio:int -> unit

val remove : t -> int -> unit
(** Remove [key] if present; no-op otherwise. *)

val min_key : t -> int option
(** Key with smallest priority (ties: smallest key). *)

val min_prio : t -> int option
val min_binding : t -> (int * int) option
val pop_min : t -> (int * int) option

val min_key_unsafe : t -> int
(** Allocation-free [min_key]: the minimum key, or [-1] when empty. *)

val min_prio_unsafe : t -> int
(** Allocation-free [min_prio]: the minimum priority, or [max_int] when
    empty. *)

val drop_min : t -> unit
(** Remove the minimum binding; no-op when empty. *)

val prio_of : t -> int -> int option
val iter : (int -> int -> unit) -> t -> unit
val clear : t -> unit

val check_invariant : t -> bool
(** Heap order + position-table + beyond-size-sentinel consistency. *)
