(** Resizable array-based binary min-heap.

    The ordering is given by the [cmp] function supplied at creation time:
    [cmp a b < 0] means [a] has strictly higher priority (pops first).
    All operations are O(log n) except [peek]/[length], which are O(1). *)

type 'a t

val create : ?initial_capacity:int -> cmp:('a -> 'a -> int) -> dummy:'a -> unit -> 'a t
(** [create ~cmp ~dummy ()] makes an empty heap. [dummy] is a throwaway value
    used to fill unused array slots (never observable). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val peek_exn : 'a t -> 'a
(** @raise Not_found if empty. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Not_found if empty. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: elements in ascending priority order. O(n log n). *)

val iter_unordered : ('a -> unit) -> 'a t -> unit
(** Visit every element in unspecified order. O(n). *)

val check_invariant : 'a t -> bool
(** Heap-order invariant holds (used by tests). *)
