(* Integer-priority port of {!Indexed_heap4} (see that module for the
   layout rationale: 4-ary tree, interleaved (prio, key) slab, iterative
   hole sifts). Differences here are forced by the element type only:

   - the slab is an [int array] — no boxing question arises, and the
     scratch-buffer handoff of the float heap is unnecessary (int
     arguments are immediate), so the sifts take the moving element as
     plain arguments;
   - the empty-slot sentinel pair is (max_int, -1) instead of (nan, -1.),
     which is why priorities must stay below [max_int];
   - comparisons are exact machine-int compares, the point of the whole
     exercise: the fixed-point WF2Q+ engine's eligibility and min-F tests
     carry no epsilon slack.

   Ordering (priority, then key) matches Indexed_heap4 exactly, so on a
   trace whose float priorities are exactly representable the two heaps
   pop identical sequences — the fixed-vs-float differential test in
   test/test_lifecycle.ml depends on this. *)

type t = {
  mutable data : int array;
  (* data.(2i) = priority of heap slot i; data.(2i+1) = its key.
     Slots >= size hold the sentinels (max_int, -1). *)
  mutable pos : int array; (* key -> heap slot, or -1 *)
  mutable size : int;
}

let create capacity =
  let capacity = max 1 capacity in
  let data = Array.make (2 * capacity) max_int in
  for i = 0 to capacity - 1 do
    data.((2 * i) + 1) <- -1
  done;
  { data; pos = Array.make capacity (-1); size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let ensure_key_capacity h key =
  let n = Array.length h.pos in
  if key >= n then begin
    let n' = max (key + 1) (2 * n) in
    let pos = Array.make n' (-1) in
    Array.blit h.pos 0 pos 0 n;
    h.pos <- pos
  end

let ensure_slot_capacity h =
  let n = Array.length h.data / 2 in
  if h.size = n then begin
    let data = Array.make (4 * n) max_int in
    Array.blit h.data 0 data 0 (2 * n);
    for i = n to (2 * n) - 1 do
      data.((2 * i) + 1) <- -1
    done;
    h.data <- data
  end

let mem h key = key >= 0 && key < Array.length h.pos && h.pos.(key) >= 0

(* Indices stay within [0, size) and keys within [0, length pos) by the
   structure's invariants, so the loop bodies use unsafe accesses; the
   public entry points validate keys before calling in. *)

let sift_up h i ~prio ~key =
  let data = h.data and pos = h.pos in
  let i = ref i in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pp = Array.unsafe_get data (2 * parent) in
    let pk = Array.unsafe_get data ((2 * parent) + 1) in
    if prio < pp || (prio = pp && key < pk) then begin
      Array.unsafe_set data (2 * !i) pp;
      Array.unsafe_set data ((2 * !i) + 1) pk;
      Array.unsafe_set pos pk !i;
      i := parent
    end
    else moving := false
  done;
  Array.unsafe_set data (2 * !i) prio;
  Array.unsafe_set data ((2 * !i) + 1) key;
  Array.unsafe_set pos key !i;
  !i

let sift_down h i ~prio ~key =
  let data = h.data and pos = h.pos in
  let size = h.size in
  let i = ref i in
  let moving = ref true in
  while !moving do
    let base = (4 * !i) + 1 in
    if base >= size then moving := false
    else begin
      let last = if base + 3 < size then base + 3 else size - 1 in
      let best = ref base in
      let best_prio = ref (Array.unsafe_get data (2 * base)) in
      let best_key = ref (Array.unsafe_get data ((2 * base) + 1)) in
      for c = base + 1 to last do
        let cp = Array.unsafe_get data (2 * c) in
        let ck = Array.unsafe_get data ((2 * c) + 1) in
        if cp < !best_prio || (cp = !best_prio && ck < !best_key) then begin
          best := c;
          best_prio := cp;
          best_key := ck
        end
      done;
      if !best_prio < prio || (!best_prio = prio && !best_key < key) then begin
        Array.unsafe_set data (2 * !i) !best_prio;
        Array.unsafe_set data ((2 * !i) + 1) !best_key;
        Array.unsafe_set pos !best_key !i;
        i := !best
      end
      else moving := false
    end
  done;
  Array.unsafe_set data (2 * !i) prio;
  Array.unsafe_set data ((2 * !i) + 1) key;
  Array.unsafe_set pos key !i

let add h ~key ~prio =
  if key < 0 then invalid_arg "Indexed_heap_int.add: negative key";
  ensure_key_capacity h key;
  if h.pos.(key) >= 0 then invalid_arg "Indexed_heap_int.add: key present";
  ensure_slot_capacity h;
  let i = h.size in
  h.size <- h.size + 1;
  ignore (sift_up h i ~prio ~key)

let update h ~key ~prio =
  if not (mem h key) then invalid_arg "Indexed_heap_int.update: key absent";
  let i = h.pos.(key) in
  let i = sift_up h i ~prio ~key in
  sift_down h i ~prio ~key

let add_or_update h ~key ~prio =
  if mem h key then update h ~key ~prio else add h ~key ~prio

let remove_slot h i =
  let last = h.size - 1 in
  h.pos.(h.data.((2 * i) + 1)) <- -1;
  h.size <- last;
  if i <> last then begin
    let prio = h.data.(2 * last) and key = h.data.((2 * last) + 1) in
    let i = sift_up h i ~prio ~key in
    sift_down h i ~prio ~key
  end;
  h.data.(2 * last) <- max_int;
  h.data.((2 * last) + 1) <- -1

let remove h key = if mem h key then remove_slot h h.pos.(key)

let min_key h = if h.size = 0 then None else Some h.data.(1)
let min_prio h = if h.size = 0 then None else Some h.data.(0)
let min_binding h = if h.size = 0 then None else Some (h.data.(1), h.data.(0))

(* Slots beyond [size] always hold the (max_int, -1) sentinels, so reading
   slot 0 of an empty heap yields them directly. *)
let min_key_unsafe h = h.data.(1)
let min_prio_unsafe h = h.data.(0)

let drop_min h = if h.size > 0 then remove_slot h 0

let pop_min h =
  match min_binding h with
  | None -> None
  | Some binding ->
    remove_slot h 0;
    Some binding

let prio_of h key = if mem h key then Some h.data.(2 * h.pos.(key)) else None

let iter f h =
  for i = 0 to h.size - 1 do
    f h.data.((2 * i) + 1) h.data.(2 * i)
  done

let clear h =
  for i = 0 to h.size - 1 do
    h.pos.(h.data.((2 * i) + 1)) <- -1;
    h.data.(2 * i) <- max_int;
    h.data.((2 * i) + 1) <- -1
  done;
  h.size <- 0

let check_invariant h =
  let prio i = h.data.(2 * i) and key i = h.data.((2 * i) + 1) in
  let before i j =
    let c = compare (prio i) (prio j) in
    if c <> 0 then c < 0 else key i < key j
  in
  let ok = ref true in
  for i = 1 to h.size - 1 do
    if before i ((i - 1) / 4) then ok := false
  done;
  for i = 0 to h.size - 1 do
    if h.pos.(key i) <> i then ok := false
  done;
  for i = h.size to (Array.length h.data / 2) - 1 do
    if key i <> -1 then ok := false
  done;
  for k = 0 to Array.length h.pos - 1 do
    let p = h.pos.(k) in
    if p >= 0 && (p >= h.size || key p <> k) then ok := false
  done;
  !ok
