type 'a t = {
  cmp : 'a -> 'a -> int;
  dummy : 'a;
  mutable data : 'a array;
  mutable size : int;
}

let create ?(initial_capacity = 16) ~cmp ~dummy () =
  let capacity = max 1 initial_capacity in
  { cmp; dummy; data = Array.make capacity dummy; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let capacity = Array.length h.data in
  let data = Array.make (2 * capacity) h.dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)
let peek_exn h = if h.size = 0 then raise Not_found else h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- h.dummy;
    if h.size > 0 then sift_down h 0;
    Some top
  end

let pop_exn h = match pop h with Some x -> x | None -> raise Not_found

let clear h =
  for i = 0 to h.size - 1 do
    h.data.(i) <- h.dummy
  done;
  h.size <- 0

let to_sorted_list h =
  let copy = { h with data = Array.copy h.data } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let iter_unordered f h =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done

let check_invariant h =
  let ok = ref true in
  for i = 1 to h.size - 1 do
    if h.cmp h.data.((i - 1) / 2) h.data.(i) > 0 then ok := false
  done;
  !ok
