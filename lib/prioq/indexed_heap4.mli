(** 4-ary indexed min-heap over integer keys — the hot-path default for the
    WF²Q+ eligible/waiting session sets.

    Same contract and ordering (priority, then key, deterministic) as
    {!Indexed_heap}; the two agree pop-for-pop on any operation trace, and
    the test suite cross-checks them on randomized traces. Differences are
    purely mechanical: half the tree depth, children contiguous in memory,
    and iterative single-write hole sifts instead of pairwise swaps.

    Priorities must not be NaN (NaN is the internal empty-slot sentinel). *)

type t

val create : int -> t
(** [create capacity] handles keys [0 .. capacity-1]; grows on demand. *)

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> key:int -> prio:float -> unit
(** @raise Invalid_argument if [key] is already present or negative. *)

val update : t -> key:int -> prio:float -> unit
(** Change the priority of a present key (either direction).
    @raise Invalid_argument if [key] is absent. *)

val add_or_update : t -> key:int -> prio:float -> unit

val remove : t -> int -> unit
(** Remove [key] if present; no-op otherwise. *)

val min_key : t -> int option
(** Key with smallest priority (ties: smallest key). *)

val min_prio : t -> float option
val min_binding : t -> (int * float) option
val pop_min : t -> (int * float) option

val min_key_unsafe : t -> int
(** Allocation-free [min_key]: the minimum key, or [-1] when empty. *)

val min_prio_unsafe : t -> float
(** Allocation-free [min_prio]: the minimum priority, or NaN when empty. *)

val drop_min : t -> unit
(** Remove the minimum binding; no-op when empty. *)

val prio_of : t -> int -> float option
val iter : (int -> float -> unit) -> t -> unit
val clear : t -> unit

val check_invariant : t -> bool
(** Heap order + position-table + beyond-size-sentinel consistency. *)
