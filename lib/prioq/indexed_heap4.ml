(* 4-ary indexed min-heap: same contract as {!Indexed_heap}, tuned for the
   scheduler hot path. Rationale:

   - a 4-ary tree halves the depth, so increase-key/sift-down (the common
     direction under the WF2Q+ churn of remove-min + re-add) touches half
     as many levels;
   - each slot's (priority, key) pair is interleaved in one float array
     ([data.(2i)] = priority, [data.(2i+1)] = key), so the four children
     of slot [i] occupy the 64 contiguous bytes [data.(8i+2 .. 8i+9)] —
     one or two cache lines for the whole comparison fan, against four
     with parallel key/priority arrays;
   - sifts are iterative hole-moves: the displaced element is held in
     locals and written back once, instead of pairwise [swap]s that write
     every element twice and bounce through [pos] at each level;
   - the element being sifted enters through the [scratch] buffer rather
     than float function arguments: without flambda every float argument
     to a non-inlined call is boxed on the minor heap, and the sifts are
     far too big to inline.

   Keys are stored as floats; they are validated non-negative and in
   practice are session/node indices, so they are exactly representable
   (any key that indexes the [pos] array is far below 2^53) and float
   comparison of key values coincides with integer comparison. Ordering
   is identical to {!Indexed_heap} (priority, then key), so the two
   structures pop identical sequences on identical op traces — the
   model-based test in test/test_prioq.ml drives both against a reference
   model and against each other. Priorities must not be NaN. *)

type t = {
  mutable data : float array;
  (* data.(2i) = priority of heap slot i; data.(2i+1) = its key.
     Slots >= size hold the sentinels (nan, -1.). *)
  mutable pos : int array; (* key -> heap slot, or -1 *)
  mutable size : int;
  scratch : float array; (* [| prio; key |] handoff into the sifts *)
}

let create capacity =
  let capacity = max 1 capacity in
  let data = Array.make (2 * capacity) nan in
  for i = 0 to capacity - 1 do
    data.((2 * i) + 1) <- -1.0
  done;
  { data; pos = Array.make capacity (-1); size = 0; scratch = [| nan; -1.0 |] }

(* The loop-free entry points below carry [@inline]: without flambda,
   a float argument ([~prio]) or float return crossing a non-inlined call
   boundary is boxed on the minor heap. Inlining the wrappers lets the
   floats flow straight into/out of the arrays; the sift loops themselves
   stay out-of-line (Closure refuses to inline loops) and are reached
   through the [scratch] handoff, which was already allocation-free. *)

let[@inline] length h = h.size
let[@inline] is_empty h = h.size = 0

let ensure_key_capacity h key =
  let n = Array.length h.pos in
  if key >= n then begin
    let n' = max (key + 1) (2 * n) in
    let pos = Array.make n' (-1) in
    Array.blit h.pos 0 pos 0 n;
    h.pos <- pos
  end

let ensure_slot_capacity h =
  let n = Array.length h.data / 2 in
  if h.size = n then begin
    let data = Array.make (4 * n) nan in
    Array.blit h.data 0 data 0 (2 * n);
    for i = n to (2 * n) - 1 do
      data.((2 * i) + 1) <- -1.0
    done;
    h.data <- data
  end

let[@inline] mem h key = key >= 0 && key < Array.length h.pos && h.pos.(key) >= 0

(* Both sifts move the element waiting in [scratch]. Indices stay within
   [0, size) and keys within [0, length pos) by the structure's
   invariants, so the loop bodies use unsafe accesses; the public entry
   points validate keys before calling in. *)

(* Slide ancestors down until (prio, key) fits, then write the held
   element once. [i]'s slot contents are treated as a hole throughout.
   Returns the final slot. *)
let sift_up h i =
  let data = h.data and pos = h.pos in
  let prio = h.scratch.(0) and keyf = h.scratch.(1) in
  let i = ref i in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pp = Array.unsafe_get data (2 * parent) in
    let pk = Array.unsafe_get data ((2 * parent) + 1) in
    if prio < pp || (prio = pp && keyf < pk) then begin
      Array.unsafe_set data (2 * !i) pp;
      Array.unsafe_set data ((2 * !i) + 1) pk;
      Array.unsafe_set pos (int_of_float pk) !i;
      i := parent
    end
    else moving := false
  done;
  Array.unsafe_set data (2 * !i) prio;
  Array.unsafe_set data ((2 * !i) + 1) keyf;
  Array.unsafe_set pos (int_of_float keyf) !i;
  !i

(* Slide the smallest child up into the hole until (prio, key) fits. The
   children of [i] occupy the contiguous slots [4i+1 .. 4i+4], i.e. the 64
   adjacent bytes [data.(8i+2 .. 8i+9)]. *)
let sift_down h i =
  let data = h.data and pos = h.pos in
  let size = h.size in
  let prio = h.scratch.(0) and keyf = h.scratch.(1) in
  let i = ref i in
  let moving = ref true in
  while !moving do
    let base = (4 * !i) + 1 in
    if base >= size then moving := false
    else begin
      let last = if base + 3 < size then base + 3 else size - 1 in
      let best = ref base in
      let best_prio = ref (Array.unsafe_get data (2 * base)) in
      let best_key = ref (Array.unsafe_get data ((2 * base) + 1)) in
      for c = base + 1 to last do
        let cp = Array.unsafe_get data (2 * c) in
        let ck = Array.unsafe_get data ((2 * c) + 1) in
        if cp < !best_prio || (cp = !best_prio && ck < !best_key) then begin
          best := c;
          best_prio := cp;
          best_key := ck
        end
      done;
      if !best_prio < prio || (!best_prio = prio && !best_key < keyf) then begin
        Array.unsafe_set data (2 * !i) !best_prio;
        Array.unsafe_set data ((2 * !i) + 1) !best_key;
        Array.unsafe_set pos (int_of_float !best_key) !i;
        i := !best
      end
      else moving := false
    end
  done;
  Array.unsafe_set data (2 * !i) prio;
  Array.unsafe_set data ((2 * !i) + 1) keyf;
  Array.unsafe_set pos (int_of_float keyf) !i

let[@inline] add h ~key ~prio =
  if key < 0 then invalid_arg "Indexed_heap4.add: negative key";
  ensure_key_capacity h key;
  if h.pos.(key) >= 0 then invalid_arg "Indexed_heap4.add: key present";
  ensure_slot_capacity h;
  let i = h.size in
  h.size <- h.size + 1;
  h.scratch.(0) <- prio;
  h.scratch.(1) <- float_of_int key;
  ignore (sift_up h i)

let[@inline] update h ~key ~prio =
  if not (mem h key) then invalid_arg "Indexed_heap4.update: key absent";
  let i = h.pos.(key) in
  h.scratch.(0) <- prio;
  h.scratch.(1) <- float_of_int key;
  let i = sift_up h i in
  sift_down h i

let add_or_update h ~key ~prio =
  if mem h key then update h ~key ~prio else add h ~key ~prio

let remove_slot h i =
  let last = h.size - 1 in
  h.pos.(int_of_float h.data.((2 * i) + 1)) <- -1;
  h.size <- last;
  if i <> last then begin
    (* Re-insert the former last element at the hole [i]; as in
       {!Indexed_heap.remove_slot}, sift_up-then-sift_down on slot [i]
       fixes both possible violation directions. *)
    h.scratch.(0) <- h.data.(2 * last);
    h.scratch.(1) <- h.data.((2 * last) + 1);
    let i = sift_up h i in
    sift_down h i
  end;
  h.data.(2 * last) <- nan;
  h.data.((2 * last) + 1) <- -1.0

let[@inline] remove h key = if mem h key then remove_slot h h.pos.(key)

let min_key h = if h.size = 0 then None else Some (int_of_float h.data.(1))
let min_prio h = if h.size = 0 then None else Some h.data.(0)

let min_binding h =
  if h.size = 0 then None else Some (int_of_float h.data.(1), h.data.(0))

(* Allocation-free variants for hot paths: slots beyond [size] always hold
   the (nan, -1.) sentinels, so reading slot 0 of an empty heap yields
   them directly. *)
let[@inline] min_key_unsafe h = int_of_float h.data.(1)
let[@inline] min_prio_unsafe h = h.data.(0)

let[@inline] drop_min h = if h.size > 0 then remove_slot h 0

let pop_min h =
  match min_binding h with
  | None -> None
  | Some binding ->
    remove_slot h 0;
    Some binding

let prio_of h key = if mem h key then Some h.data.(2 * h.pos.(key)) else None

let iter f h =
  for i = 0 to h.size - 1 do
    f (int_of_float h.data.((2 * i) + 1)) h.data.(2 * i)
  done

let clear h =
  for i = 0 to h.size - 1 do
    h.pos.(int_of_float h.data.((2 * i) + 1)) <- -1;
    h.data.(2 * i) <- nan;
    h.data.((2 * i) + 1) <- -1.0
  done;
  h.size <- 0

let check_invariant h =
  let prio i = h.data.(2 * i) and key i = int_of_float h.data.((2 * i) + 1) in
  let before i j =
    let c = compare (prio i) (prio j) in
    if c <> 0 then c < 0 else key i < key j
  in
  let ok = ref true in
  for i = 1 to h.size - 1 do
    if before i ((i - 1) / 4) then ok := false
  done;
  for i = 0 to h.size - 1 do
    if h.pos.(key i) <> i then ok := false
  done;
  for i = h.size to (Array.length h.data / 2) - 1 do
    if key i <> -1 then ok := false
  done;
  for k = 0 to Array.length h.pos - 1 do
    let p = h.pos.(k) in
    if p >= 0 && (p >= h.size || key p <> k) then ok := false
  done;
  !ok
