(** Binary min-heap over integer keys with O(log n) priority updates.

    Keys are small non-negative integers (session/child indices). Each key
    appears at most once. Priorities are floats with an integer tie-breaker
    (the key itself) so ordering is deterministic. This is the structure
    backing the eligible/ineligible session sets of the WF²Q+ scheduler:
    [update] supports both decrease-key and increase-key. *)

type t

val create : int -> t
(** [create capacity] handles keys [0 .. capacity-1]; grows on demand. *)

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val add : t -> key:int -> prio:float -> unit
(** @raise Invalid_argument if [key] is already present or negative. *)

val update : t -> key:int -> prio:float -> unit
(** Change the priority of a present key (either direction).
    @raise Invalid_argument if [key] is absent. *)

val add_or_update : t -> key:int -> prio:float -> unit

val remove : t -> int -> unit
(** Remove [key] if present; no-op otherwise. *)

val min_key : t -> int option
(** Key with smallest priority (ties: smallest key). *)

val min_prio : t -> float option
val min_binding : t -> (int * float) option
val pop_min : t -> (int * float) option
val prio_of : t -> int -> float option
val iter : (int -> float -> unit) -> t -> unit
val clear : t -> unit

val check_invariant : t -> bool
(** Heap order + position-table consistency (used by tests). *)
