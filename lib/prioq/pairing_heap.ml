type 'a node = Empty | Node of 'a * 'a node list

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable root : 'a node;
  mutable size : int;
}

let create ~cmp = { cmp; root = Empty; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let meld_nodes cmp a b =
  match (a, b) with
  | Empty, n | n, Empty -> n
  | Node (x, xs), Node (y, ys) ->
    if cmp x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

let push h x =
  h.root <- meld_nodes h.cmp h.root (Node (x, []));
  h.size <- h.size + 1

let peek h = match h.root with Empty -> None | Node (x, _) -> Some x

(* Two-pass pairing: meld children pairwise left-to-right, then fold the
   results right-to-left. This is what gives the amortised O(log n) pop. *)
let rec merge_pairs cmp = function
  | [] -> Empty
  | [ n ] -> n
  | a :: b :: rest -> meld_nodes cmp (meld_nodes cmp a b) (merge_pairs cmp rest)

let pop h =
  match h.root with
  | Empty -> None
  | Node (x, children) ->
    h.root <- merge_pairs h.cmp children;
    h.size <- h.size - 1;
    Some x

let meld dst src =
  dst.root <- meld_nodes dst.cmp dst.root src.root;
  dst.size <- dst.size + src.size;
  src.root <- Empty;
  src.size <- 0

let to_sorted_list h =
  let copy = { h with root = h.root } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let clear h =
  h.root <- Empty;
  h.size <- 0
