(** Pairing heap: O(1) amortised [push]/[meld], O(log n) amortised [pop].

    Provided as an alternative backing store for scheduler ready-sets; the
    complexity bench compares it against {!Binary_heap}. Purely functional
    node structure under a mutable root handle. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val meld : 'a t -> 'a t -> unit
(** [meld dst src] moves all of [src]'s elements into [dst], emptying [src].
    Both heaps must use compatible comparison functions. *)

val to_sorted_list : 'a t -> 'a list
(** Destructive on a copy: elements in ascending order. *)

val clear : 'a t -> unit
