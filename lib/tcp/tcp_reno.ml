type t = {
  sim : Engine.Simulator.t;
  send : mark:int -> size_bits:float -> [ `Queued | `Dropped ];
  segment_bits : float;
  ack_delay : float;
  min_rto : float;
  max_rto : float;
  (* sender *)
  mutable next_seq : int;       (* next new segment index to transmit *)
  mutable highest_acked : int;
  mutable cwnd : float;         (* segments *)
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable rto : float;
  mutable rto_timer : Engine.Simulator.event_id option;
  mutable recover : int;        (* NewReno: highest seq sent when loss was detected *)
  mutable in_recovery : bool;
  mutable retransmits : int;
  mutable timeouts : int;
  (* receiver *)
  mutable expected : int;       (* next in-order segment awaited *)
  out_of_order : (int, unit) Hashtbl.t;
  mutable delivered : int;
  (* Jacobson/Karn RTT estimation *)
  send_times : (int, float) Hashtbl.t; (* first-transmission time per segment *)
  mutable srtt : float;                (* < 0 until the first sample *)
  mutable rttvar : float;
}

let flight t = t.next_seq - 1 - t.highest_acked

let disarm_rto t =
  match t.rto_timer with
  | Some ev ->
    Engine.Simulator.cancel t.sim ev;
    t.rto_timer <- None
  | None -> ()

let rec arm_rto t =
  disarm_rto t;
  t.rto_timer <- Some (Engine.Simulator.schedule_after t.sim ~delay:t.rto (fun () -> on_timeout t))

and on_timeout t =
  t.rto_timer <- None;
  if flight t > 0 then begin
    t.timeouts <- t.timeouts + 1;
    t.ssthresh <- Float.max (float_of_int (flight t) /. 2.0) 2.0;
    t.cwnd <- 1.0;
    t.dupacks <- 0;
    t.recover <- t.next_seq - 1;
    t.in_recovery <- true;
    t.rto <- Float.min (2.0 *. t.rto) t.max_rto; (* exponential backoff, capped *)
    retransmit_first_unacked t;
    arm_rto t
  end

and retransmit_first_unacked t =
  t.retransmits <- t.retransmits + 1;
  (* Karn's algorithm: never sample RTT from a retransmitted segment *)
  Hashtbl.remove t.send_times (t.highest_acked + 1);
  ignore (t.send ~mark:(t.highest_acked + 1) ~size_bits:t.segment_bits)

let try_send t =
  let window = int_of_float t.cwnd in
  let sent_any = ref false in
  while flight t < window do
    Hashtbl.replace t.send_times t.next_seq (Engine.Simulator.now t.sim);
    ignore (t.send ~mark:t.next_seq ~size_bits:t.segment_bits);
    t.next_seq <- t.next_seq + 1;
    sent_any := true
  done;
  if !sent_any && t.rto_timer = None then arm_rto t

(* RFC 6298-style estimator: srtt/rttvar updated per non-retransmitted
   sample; RTO = srtt + 4*rttvar, floored at min_rto. *)
let sample_rtt t ~segment =
  match Hashtbl.find_opt t.send_times segment with
  | None -> ()
  | Some sent_at ->
    let sample = Engine.Simulator.now t.sim -. sent_at in
    if t.srtt < 0.0 then begin
      t.srtt <- sample;
      t.rttvar <- sample /. 2.0
    end
    else begin
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
      t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
    end;
    t.rto <- Float.min t.max_rto (Float.max t.min_rto (t.srtt +. (4.0 *. t.rttvar)))

let forget_sent_up_to t ack =
  for seg = max 1 (ack - 127) to ack do
    Hashtbl.remove t.send_times seg
  done

let on_ack t ack =
  if ack > t.highest_acked then begin
    let newly = float_of_int (ack - t.highest_acked) in
    sample_rtt t ~segment:ack;
    forget_sent_up_to t ack;
    t.highest_acked <- ack;
    t.dupacks <- 0;
    if t.in_recovery && ack < t.recover then
      (* NewReno partial ack: the cumulative ACK exposed the next hole;
         retransmit it now instead of waiting a full RTO per hole *)
      retransmit_first_unacked t
    else begin
      t.in_recovery <- false;
      if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. newly (* slow start *)
      else t.cwnd <- t.cwnd +. (newly /. t.cwnd)           (* congestion avoidance *)
    end;
    if flight t > 0 then arm_rto t else disarm_rto t;
    try_send t
  end
  else if flight t > 0 then begin
    t.dupacks <- t.dupacks + 1;
    (* early retransmit (RFC 5827): lower the dupack threshold when the
       flight is too small to ever produce three duplicates *)
    let dupthresh = max 1 (min 3 (flight t - 1)) in
    if t.dupacks = dupthresh && not t.in_recovery then begin
      (* fast retransmit + NewReno fast recovery (no window inflation) *)
      t.ssthresh <- Float.max (float_of_int (flight t) /. 2.0) 2.0;
      t.cwnd <- t.ssthresh;
      t.recover <- t.next_seq - 1;
      t.in_recovery <- true;
      retransmit_first_unacked t;
      arm_rto t
    end
  end

(* Receiver side: in-order delivery with cumulative ACKs; each delivery
   (in-order or not) triggers an ACK for the highest in-order prefix. *)
let receive t mark =
  if mark = t.expected then begin
    t.expected <- t.expected + 1;
    t.delivered <- t.delivered + 1;
    let continue = ref true in
    while !continue do
      if Hashtbl.mem t.out_of_order t.expected then begin
        Hashtbl.remove t.out_of_order t.expected;
        t.expected <- t.expected + 1;
        t.delivered <- t.delivered + 1
      end
      else continue := false
    done
  end
  else if mark > t.expected then Hashtbl.replace t.out_of_order mark ();
  let ack = t.expected - 1 in
  ignore
    (Engine.Simulator.schedule_after t.sim ~delay:t.ack_delay (fun () -> on_ack t ack))

let on_segment_delivered t ~mark = receive t mark

let create ~sim ~send ?(segment_bits = 65536.0) ?(initial_ssthresh = 64.0)
    ?(ack_delay = 0.005) ?(min_rto = 0.2) ?(max_rto = 1.0) ?(start = 0.0) () =
  let t =
    {
      sim;
      send;
      segment_bits;
      ack_delay;
      min_rto;
      max_rto;
      next_seq = 1;
      highest_acked = 0;
      cwnd = 1.0;
      ssthresh = initial_ssthresh;
      dupacks = 0;
      rto = min_rto;
      rto_timer = None;
      recover = 0;
      in_recovery = false;
      retransmits = 0;
      timeouts = 0;
      expected = 1;
      out_of_order = Hashtbl.create 64;
      delivered = 0;
      send_times = Hashtbl.create 256;
      srtt = -1.0;
      rttvar = 0.0;
    }
  in
  ignore (Engine.Simulator.schedule sim ~at:start (fun () -> try_send t));
  t

let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let highest_acked t = t.highest_acked
let delivered_segments t = t.delivered
let retransmits t = t.retransmits
let timeouts t = t.timeouts
let segment_bits t = t.segment_bits
