(** Compact TCP Reno sender/receiver pair for the link-sharing experiments
    (paper §5.2's "TCP sources").

    The substitution (documented in DESIGN.md): the paper needs long-lived
    rate-adaptive sources that grab available bandwidth and back off on
    loss; this model implements the Reno mechanisms that produce exactly
    that macroscopic behaviour — slow start, congestion avoidance, 3-dupack
    fast retransmit, and RTO with exponential backoff — over a simplified
    path: segments are handed to [send] (normally a bounded leaf queue of an
    {!Hpfq.Hier}); the caller reports each segment's link departure via
    {!on_segment_delivered}; the in-order receiver and the returning ACK
    (after [ack_delay]) live inside this module. A segment rejected by
    [send] (queue overflow) is a loss the sender discovers by dupacks or
    timeout, like a real drop-tail drop.

    Sequence numbers are segment indices starting at 1 and ride in the
    packet [mark] field. *)

type t

val create :
  sim:Engine.Simulator.t ->
  send:(mark:int -> size_bits:float -> [ `Queued | `Dropped ]) ->
  ?segment_bits:float ->
  ?initial_ssthresh:float ->
  ?ack_delay:float ->
  ?min_rto:float ->
  ?max_rto:float ->
  ?start:float ->
  unit ->
  t
(** Defaults: 8 KB segments (65536 bits, the paper's packet size),
    [initial_ssthresh = 64] segments, [ack_delay = 5 ms] (receiver→sender
    latency), [min_rto = 200 ms], [max_rto = 1 s]. The retransmission timer
    follows RFC 6298 (Jacobson estimator, Karn's rule, exponential backoff)
    with early retransmit (RFC 5827) for small flights. The connection
    opens at [start] (default 0) and transmits forever (long-lived flow). *)

val on_segment_delivered : t -> mark:int -> unit
(** Tell the connection one of its segments left the bottleneck link. *)

val cwnd : t -> float
(** Congestion window, segments. *)

val ssthresh : t -> float
val highest_acked : t -> int
(** All segments [<= highest_acked] were cumulatively acknowledged. *)

val delivered_segments : t -> int
(** Segments accepted in order by the receiver. *)

val retransmits : t -> int
val timeouts : t -> int
val segment_bits : t -> float
