(** Pluggable event consumers.

    A sink is where drained trace events go: a JSON-lines stream, a CSV
    stream, an in-memory list, or nowhere. Sinks see events one at a time
    in trace order; name resolution (node/session ids → labels) is injected
    so the storage layer stays purely numeric. *)

type names = {
  node_label : int -> string;
  session_label : node:int -> session:int -> string;
}
(** Label functions applied at emission time. *)

val numeric_names : names
(** Fallback labels: the raw integer ids. *)

type t

val emit : t -> Event.t -> unit
val flush : t -> unit

val null : t
(** Discards everything. *)

val memory : unit -> t * (unit -> Event.t list)
(** Accumulates events; the closure returns them in emission order. *)

val jsonl : ?names:names -> out_channel -> t
(** One compact JSON object per line:
    [{"ev":…,"t":…,"node":…,"session":…,"v":…,"bits":…}].
    Link-level events carry [null] session and [v]. The channel is flushed
    by {!flush}, never closed. *)

val csv : ?names:names -> out_channel -> t
(** Same fields as columns ([event,time,node,session,vtime,bits]); the
    header row is written immediately. Empty cells where JSONL has null. *)

val csv_header : string list
(** The CSV column names (shared with {!Trace.events_report}). *)

val csv_row : names -> Event.t -> string list
(** One event as CSV cells, in {!csv_header} order. *)
