type node = {
  name : string;
  mutable arrivals : int;
  mutable arrived_bits : float;
  mutable selects : int;
  mutable served_pkts : int;
  mutable served_bits : float;
  mutable drops : int;
  mutable backlog : int;
  mutable max_backlog : int;
  mutable busy_periods : int;
  mutable vtime_min : float;
  mutable vtime_max : float;
}

type t = { nodes : node array }

let create ~names =
  {
    nodes =
      Array.map
        (fun name ->
          {
            name;
            arrivals = 0;
            arrived_bits = 0.0;
            selects = 0;
            served_pkts = 0;
            served_bits = 0.0;
            drops = 0;
            backlog = 0;
            max_backlog = 0;
            busy_periods = 0;
            vtime_min = infinity;
            vtime_max = neg_infinity;
          })
        names;
  }

let node t id = t.nodes.(id)
let node_count t = Array.length t.nodes

let note_vtime n v =
  if v < n.vtime_min then n.vtime_min <- v;
  if v > n.vtime_max then n.vtime_max <- v

let on_arrive t ~node ~vtime ~bits =
  let n = t.nodes.(node) in
  n.arrivals <- n.arrivals + 1;
  n.arrived_bits <- n.arrived_bits +. bits;
  note_vtime n vtime

let on_backlog t ~node ~vtime =
  let n = t.nodes.(node) in
  if n.backlog = 0 then n.busy_periods <- n.busy_periods + 1;
  n.backlog <- n.backlog + 1;
  if n.backlog > n.max_backlog then n.max_backlog <- n.backlog;
  note_vtime n vtime

let on_idle t ~node ~vtime =
  let n = t.nodes.(node) in
  n.backlog <- n.backlog - 1;
  note_vtime n vtime

let on_select t ~node ~vtime =
  let n = t.nodes.(node) in
  n.selects <- n.selects + 1;
  note_vtime n vtime

let note_vtime t ~node ~vtime = note_vtime t.nodes.(node) vtime

let credit_served t ~node ~bits =
  let n = t.nodes.(node) in
  n.served_pkts <- n.served_pkts + 1;
  n.served_bits <- n.served_bits +. bits

let on_drop t ~node = t.nodes.(node).drops <- t.nodes.(node).drops + 1

let report ?(name = "node-metrics") t =
  Stats.Report.make ~name
    ~columns:
      [
        "node";
        "arrivals";
        "arrived_bits";
        "selects";
        "served_pkts";
        "served_bits";
        "drops";
        "max_backlog";
        "busy_periods";
        "vtime_min";
        "vtime_max";
      ]
    ~rows:(fun () ->
      let cell = Printf.sprintf "%.9g" in
      Array.to_list
        (Array.map
           (fun n ->
             [
               n.name;
               string_of_int n.arrivals;
               cell n.arrived_bits;
               string_of_int n.selects;
               string_of_int n.served_pkts;
               cell n.served_bits;
               string_of_int n.drops;
               string_of_int n.max_backlog;
               string_of_int n.busy_periods;
               (if n.vtime_min <= n.vtime_max then cell n.vtime_min else "");
               (if n.vtime_min <= n.vtime_max then cell n.vtime_max else "");
             ])
           t.nodes))
