(** The packet-lifecycle event vocabulary of the tracing layer.

    Two families share one record shape:

    - {e scheduler events} ([Arrive] … [Select]) mirror the five
      driving-protocol operations of {!Sched.Sched_intf.t}, one per
      interior node. [node] is the node id, [session] the session index
      within that node's policy, [vtime] the policy's virtual time when the
      operation completed.
    - {e link events} ([Transmit_start], [Depart], [Drop]) come from the
      physical server. [node] is the packet's leaf id, [session] is [-1]
      and [vtime] is [nan] (a link has no virtual clock).

    [time] is always real (simulation) time; [bits] the packet or head size
    involved (0 when not applicable). *)

type kind =
  | Arrive
  | Backlog
  | Requeue
  | Idle
  | Select
  | Transmit_start
  | Depart
  | Drop

type t = {
  kind : kind;
  node : int;
  session : int;
  time : float;
  vtime : float;
  bits : float;
}

val kind_code : kind -> char
(** Dense byte encoding for struct-of-arrays storage. *)

val kind_of_code : char -> kind
(** @raise Invalid_argument on a byte outside the encoding. *)

val kind_to_string : kind -> string
(** Wire name used by the JSONL/CSV exporters (e.g. ["transmit_start"]). *)

val kind_of_string : string -> kind option

val is_link_level : kind -> bool
(** True for [Transmit_start]/[Depart]/[Drop]. *)
