(** Wiring layer: attach a recorder + metrics to a whole scheduling system.

    [attach_hier] installs one {!Sched.Sched_intf.observer} per interior
    node of an H-PFQ server and hooks the link-level callbacks
    (transmit-start / depart / drop), so a single trace sees every
    scheduler operation of every node, stamped with that node's virtual
    time, interleaved with the physical packet lifecycle on the shared real
    time axis. [attach_server] does the same for a standalone one-level
    {!Hpfq.Server}. Metrics are updated live; events accumulate in the
    {!Recorder} ring and are exported on demand.

    Tracing is opt-in per system: nothing here is invoked unless an attach
    function was called, and {!detach} removes the installed observers
    (restoring the exact untraced scheduler hot path; link hooks remain but
    fire into nothing once drained). *)

type t

val attach_hier : ?capacity:int -> ?on_full:Recorder.on_full -> Hpfq.Hier.t -> t
(** Instrument every interior node and the link of the hierarchy.
    [capacity]/[on_full] size the event ring (defaults 65536 events,
    [Drop_oldest]). Node ids in recorded events are the hierarchy's node
    ids; link events carry the packet's leaf id. *)

val attach_hier_flat :
  ?capacity:int -> ?on_full:Recorder.on_full -> Hpfq.Hier_flat.t -> t
(** Same instrumentation for the flat H-WF²Q+ engine: observers land in the
    per-node observer slots, link hooks and W_n crediting reuse the engine's
    precomputed leaf→root paths. Event streams from the two engines on the
    same workload are identical (the lockstep tests rely on this). *)

val attach_engine : ?capacity:int -> ?on_full:Recorder.on_full -> Hpfq.Hier_engine.t -> t
(** Dispatch {!attach_hier} / {!attach_hier_flat} on the facade. *)

val attach_server :
  ?capacity:int ->
  ?on_full:Recorder.on_full ->
  ?name:string ->
  ?session_names:string array ->
  Hpfq.Server.t ->
  t
(** Instrument a standalone server. Call after all [add_session]s: node 0
    is the server itself and node [1 + i] stands for session [i] (the
    "leaf" its link events belong to). [session_names.(i)] labels session
    [i]; defaults to ["s<i>"]. *)

val attach_sim : t -> Engine.Simulator.t -> unit
(** Additionally count event-loop activity (schedules / fires / cancels)
    via the simulator probe. *)

val of_sims : Engine.Simulator.t list -> t
(** A reporting-only trace over existing simulators: installs no
    observers and no probes, just registers the simulators (in list
    order) so {!sim_report} can render their merged occupancy table —
    per-sim stats rows plus the aggregate totals. The shard device uses
    this to merge hundreds of per-link simulators into one report. *)

val sim_counters : t -> int * int * int
(** [(scheduled, fired, cancelled)] since {!attach_sim}. *)

val sim_report : ?name:string -> t -> Stats.Report.t
(** Event-loop activity as a [metric,value] table: the probe counters
    plus, per attached simulator, a live {!Engine.Simulator.stats}
    snapshot (backend, pending, cancelled-in-structure, capacities,
    compactions, resizes). With more than one simulator attached (via
    {!attach_sim} or {!of_sims}), per-sim keys beyond the first carry a
    [#i] suffix and aggregate [<key>/total] rows are appended. Rows are
    computed when the report is written, so take the snapshot at the
    moment of interest. *)

val detach : t -> unit
(** Remove every installed observer and probe. Recorded events and metrics
    remain readable. *)

val recorder : t -> Recorder.t
val metrics : t -> Metrics.t

val names : t -> Sink.names
(** Label functions resolving this system's node/session ids. *)

val events : t -> Event.t list
(** Snapshot of the ring, oldest first. *)

val drain : t -> Sink.t -> unit
(** {!Recorder.drain} with this trace's recorder: emit, flush, clear. *)

val write_jsonl : t -> path:string -> unit
(** Dump the retained events as JSON-lines (ring is kept, not cleared). *)

val write_csv : t -> path:string -> unit

val events_report : ?name:string -> t -> Stats.Report.t
(** The retained events as the shared {!Stats.Report} table shape
    (columns {!Sink.csv_header}). *)

val metrics_report : ?name:string -> t -> Stats.Report.t
