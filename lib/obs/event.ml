type kind =
  | Arrive
  | Backlog
  | Requeue
  | Idle
  | Select
  | Transmit_start
  | Depart
  | Drop

type t = {
  kind : kind;
  node : int;
  session : int;
  time : float;
  vtime : float;
  bits : float;
}

let kind_code = function
  | Arrive -> '\000'
  | Backlog -> '\001'
  | Requeue -> '\002'
  | Idle -> '\003'
  | Select -> '\004'
  | Transmit_start -> '\005'
  | Depart -> '\006'
  | Drop -> '\007'

let kind_of_code = function
  | '\000' -> Arrive
  | '\001' -> Backlog
  | '\002' -> Requeue
  | '\003' -> Idle
  | '\004' -> Select
  | '\005' -> Transmit_start
  | '\006' -> Depart
  | '\007' -> Drop
  | c -> invalid_arg (Printf.sprintf "Event.kind_of_code: %d" (Char.code c))

let kind_to_string = function
  | Arrive -> "arrive"
  | Backlog -> "backlog"
  | Requeue -> "requeue"
  | Idle -> "idle"
  | Select -> "select"
  | Transmit_start -> "transmit_start"
  | Depart -> "depart"
  | Drop -> "drop"

let kind_of_string = function
  | "arrive" -> Some Arrive
  | "backlog" -> Some Backlog
  | "requeue" -> Some Requeue
  | "idle" -> Some Idle
  | "select" -> Some Select
  | "transmit_start" -> Some Transmit_start
  | "depart" -> Some Depart
  | "drop" -> Some Drop
  | _ -> None

let is_link_level = function
  | Transmit_start | Depart | Drop -> true
  | Arrive | Backlog | Requeue | Idle | Select -> false
