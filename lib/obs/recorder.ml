type on_full = Drop_oldest | Drop_newest | Grow

(* Struct-of-arrays ring: one byte + two ints + three unboxed floats per
   event, no per-event record. [record] therefore allocates nothing — the
   enabled-tracing hot path costs a handful of array stores. Event.t
   records only materialise on iteration/export. *)
type t = {
  on_full : on_full;
  mutable kinds : Bytes.t;
  mutable nodes : int array;
  mutable sessions : int array;
  mutable times : float array;
  mutable vtimes : float array;
  mutable bits : float array;
  mutable head : int; (* slot of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
}

let create ?(capacity = 65536) ?(on_full = Drop_oldest) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  {
    on_full;
    kinds = Bytes.create capacity;
    nodes = Array.make capacity 0;
    sessions = Array.make capacity 0;
    times = Array.make capacity 0.0;
    vtimes = Array.make capacity 0.0;
    bits = Array.make capacity 0.0;
    head = 0;
    len = 0;
    dropped = 0;
  }

let length t = t.len
let capacity t = Bytes.length t.kinds
let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

(* Double the arrays, un-ringing into order (oldest at slot 0). *)
let grow t =
  let cap = capacity t in
  let cap' = 2 * cap in
  let kinds = Bytes.create cap' in
  let nodes = Array.make cap' 0 in
  let sessions = Array.make cap' 0 in
  let times = Array.make cap' 0.0 in
  let vtimes = Array.make cap' 0.0 in
  let bits = Array.make cap' 0.0 in
  let first = cap - t.head in
  Bytes.blit t.kinds t.head kinds 0 first;
  Bytes.blit t.kinds 0 kinds first t.head;
  let blit src dst = Array.blit src t.head dst 0 first; Array.blit src 0 dst first t.head in
  blit t.nodes nodes;
  blit t.sessions sessions;
  blit t.times times;
  blit t.vtimes vtimes;
  blit t.bits bits;
  t.kinds <- kinds;
  t.nodes <- nodes;
  t.sessions <- sessions;
  t.times <- times;
  t.vtimes <- vtimes;
  t.bits <- bits;
  t.head <- 0

let record t ~kind ~node ~session ~time ~vtime ~bits =
  let cap = capacity t in
  if t.len = cap then begin
    match t.on_full with
    | Grow -> grow t
    | Drop_oldest ->
      t.head <- (if t.head + 1 = cap then 0 else t.head + 1);
      t.len <- t.len - 1;
      t.dropped <- t.dropped + 1
    | Drop_newest -> t.dropped <- t.dropped + 1
  end;
  if t.len < capacity t then begin
    let cap = capacity t in
    let slot = t.head + t.len in
    let slot = if slot >= cap then slot - cap else slot in
    Bytes.unsafe_set t.kinds slot (Event.kind_code kind);
    Array.unsafe_set t.nodes slot node;
    Array.unsafe_set t.sessions slot session;
    Array.unsafe_set t.times slot time;
    Array.unsafe_set t.vtimes slot vtime;
    Array.unsafe_set t.bits slot bits;
    t.len <- t.len + 1
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Recorder.get: index out of range";
  let cap = capacity t in
  let slot = t.head + i in
  let slot = if slot >= cap then slot - cap else slot in
  {
    Event.kind = Event.kind_of_code (Bytes.get t.kinds slot);
    node = t.nodes.(slot);
    session = t.sessions.(slot);
    time = t.times.(slot);
    vtime = t.vtimes.(slot);
    bits = t.bits.(slot);
  }

let iter t f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := get t i :: !acc
  done;
  !acc

let drain t sink =
  iter t (Sink.emit sink);
  Sink.flush sink;
  clear t
