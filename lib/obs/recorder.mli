(** Allocation-conscious ring buffer of trace events.

    Events live in struct-of-arrays storage (unboxed floats, no per-event
    record), so {!record} allocates nothing and an enabled trace perturbs
    the scheduler hot path as little as possible. {!Event.t} records are
    built only when the buffer is read back ({!iter} / {!to_list} /
    {!drain}). *)

type on_full =
  | Drop_oldest  (** Ring semantics: keep the newest [capacity] events. *)
  | Drop_newest  (** Freeze: keep the first [capacity] events. *)
  | Grow  (** Double the storage; never drops (unbounded memory). *)

type t

val create : ?capacity:int -> ?on_full:on_full -> unit -> t
(** Defaults: [capacity = 65536] events, [on_full = Drop_oldest].
    @raise Invalid_argument if [capacity <= 0]. *)

val record :
  t ->
  kind:Event.kind ->
  node:int ->
  session:int ->
  time:float ->
  vtime:float ->
  bits:float ->
  unit
(** Append an event. Allocation-free except when [on_full = Grow] doubles
    the arrays. *)

val length : t -> int
(** Events currently retained. *)

val capacity : t -> int
val dropped : t -> int
(** Events lost to [Drop_oldest]/[Drop_newest] so far. *)

val get : t -> int -> Event.t
(** [get t i] is the [i]-th oldest retained event.
    @raise Invalid_argument out of range. *)

val iter : t -> (Event.t -> unit) -> unit
(** Oldest first. *)

val to_list : t -> Event.t list
val clear : t -> unit
(** Forget all retained events and reset the drop counter. *)

val drain : t -> Sink.t -> unit
(** Emit every retained event into the sink (oldest first), flush it, then
    {!clear}. *)
