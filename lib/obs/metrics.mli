(** Per-node running counters, updated live as observer callbacks fire.

    One {!node} per scheduler/tree node: arrival and service totals,
    instantaneous and watermark backlog depth (in backlogged {e sessions},
    the unit the one-level policies reason in), busy-period count (idle →
    backlogged transitions of the node as a whole), and virtual-time
    watermarks. Service totals are credited along the departed packet's
    leaf-to-root path, so [served_bits] of a node equals its
    W_n(0,t) — directly comparable to {!Hpfq.Hier.departed_bits}. *)

type node = private {
  name : string;
  mutable arrivals : int;
  mutable arrived_bits : float;
  mutable selects : int;
  mutable served_pkts : int;
  mutable served_bits : float;
  mutable drops : int;
  mutable backlog : int;
  mutable max_backlog : int;
  mutable busy_periods : int;
  mutable vtime_min : float;  (** [infinity] until first observation. *)
  mutable vtime_max : float;  (** [neg_infinity] until first observation. *)
}

type t

val create : names:string array -> t
(** One slot per node, indexed by node id; [names.(id)] labels the rows of
    {!report}. *)

val node : t -> int -> node
val node_count : t -> int
val on_arrive : t -> node:int -> vtime:float -> bits:float -> unit
val on_backlog : t -> node:int -> vtime:float -> unit
val on_idle : t -> node:int -> vtime:float -> unit
val on_select : t -> node:int -> vtime:float -> unit
val note_vtime : t -> node:int -> vtime:float -> unit

val credit_served : t -> node:int -> bits:float -> unit
(** One packet fully transmitted, credited to this node's W_n. *)

val on_drop : t -> node:int -> unit

val report : ?name:string -> t -> Stats.Report.t
(** One row per node — the same {!Stats.Report} shape every instrument in
    [lib/stats] exports. *)
