module Sched_intf = Sched.Sched_intf

type t = {
  recorder : Recorder.t;
  metrics : Metrics.t;
  node_names : string array;
  session_nodes : int array array; (* interior id -> session idx -> child node id *)
  parents : int array;             (* node id -> parent id, -1 at the root *)
  paths : int array array;         (* leaf id -> leaf-to-root path; [||] elsewhere *)
  mutable detach_fns : (unit -> unit) list;
  mutable sims : Engine.Simulator.t list; (* attach order, oldest last *)
  mutable sim_scheduled : int;
  mutable sim_fired : int;
  mutable sim_cancelled : int;
}

let recorder t = t.recorder
let metrics t = t.metrics

let names t =
  let node_label id =
    if id >= 0 && id < Array.length t.node_names then t.node_names.(id)
    else string_of_int id
  in
  {
    Sink.node_label;
    session_label =
      (fun ~node ~session ->
        if node >= 0 && node < Array.length t.session_nodes then begin
          let children = t.session_nodes.(node) in
          if session >= 0 && session < Array.length children then
            node_label children.(session)
          else string_of_int session
        end
        else string_of_int session);
  }

let observer t ~node =
  {
    Sched_intf.on_arrive =
      (fun ~now ~vtime ~session ~size_bits ->
        Recorder.record t.recorder ~kind:Event.Arrive ~node ~session ~time:now ~vtime
          ~bits:size_bits;
        Metrics.on_arrive t.metrics ~node ~vtime ~bits:size_bits);
    on_backlog =
      (fun ~now ~vtime ~session ~head_bits ->
        Recorder.record t.recorder ~kind:Event.Backlog ~node ~session ~time:now ~vtime
          ~bits:head_bits;
        Metrics.on_backlog t.metrics ~node ~vtime);
    on_requeue =
      (fun ~now ~vtime ~session ~head_bits ->
        Recorder.record t.recorder ~kind:Event.Requeue ~node ~session ~time:now ~vtime
          ~bits:head_bits;
        Metrics.note_vtime t.metrics ~node ~vtime);
    on_idle =
      (fun ~now ~vtime ~session ->
        Recorder.record t.recorder ~kind:Event.Idle ~node ~session ~time:now ~vtime
          ~bits:0.0;
        Metrics.on_idle t.metrics ~node ~vtime);
    on_select =
      (fun ~now ~vtime ~session ->
        Recorder.record t.recorder ~kind:Event.Select ~node ~session ~time:now ~vtime
          ~bits:0.0;
        Metrics.on_select t.metrics ~node ~vtime);
  }

let record_link t ~kind ~leaf_node ~time ~bits =
  Recorder.record t.recorder ~kind ~node:leaf_node ~session:(-1) ~time ~vtime:Float.nan
    ~bits

(* Credit W_n up the leaf's path: the precomputed path array when the
   attach function provided one (hierarchies), else a parent walk. *)
let credit_path t ~leaf_node ~bits =
  let path = t.paths.(leaf_node) in
  if Array.length path > 0 then
    for k = 0 to Array.length path - 1 do
      Metrics.credit_served t.metrics ~node:path.(k) ~bits
    done
  else begin
    let node = ref leaf_node in
    while !node >= 0 do
      Metrics.credit_served t.metrics ~node:!node ~bits;
      node := t.parents.(!node)
    done
  end

let make ~recorder ~node_names ~session_nodes ~parents ?paths () =
  let paths =
    match paths with
    | Some p -> p
    | None -> Array.make (Array.length node_names) [||]
  in
  {
    recorder;
    metrics = Metrics.create ~names:node_names;
    node_names;
    session_nodes;
    parents;
    paths;
    detach_fns = [];
    sims = [];
    sim_scheduled = 0;
    sim_fired = 0;
    sim_cancelled = 0;
  }

let attach_hier ?(capacity = 65536) ?(on_full = Recorder.Drop_oldest) h =
  let n = Hpfq.Hier.node_count h in
  let node_names = Array.init n (Hpfq.Hier.node_name h) in
  let session_nodes = Array.make n [||] in
  let parents = Array.make n (-1) in
  Hpfq.Hier.iter_interior h (fun ~id ~name:_ ~level:_ ~children ~policy:_ ->
      session_nodes.(id) <- children;
      Array.iter (fun cid -> parents.(cid) <- id) children);
  let paths = Array.make n [||] in
  List.iter
    (fun (_, (leaf : Hpfq.Hier.leaf)) ->
      paths.((leaf :> int)) <- Hpfq.Hier.leaf_path h ~leaf)
    (Hpfq.Hier.leaf_ids h);
  let t =
    make ~recorder:(Recorder.create ~capacity ~on_full ()) ~node_names ~session_nodes
      ~parents ~paths ()
  in
  Hpfq.Hier.iter_interior h (fun ~id ~name:_ ~level:_ ~children:_ ~policy ->
      policy.Sched_intf.set_observer (Some (observer t ~node:id));
      t.detach_fns <- (fun () -> policy.Sched_intf.set_observer None) :: t.detach_fns);
  (* handle hooks: the tracing layer fires per packet, so it reads the
     pool directly instead of materialising boxed packets *)
  let pool = Hpfq.Hier.pool h in
  Hpfq.Hier.add_transmit_start_handle_hook h (fun p ~leaf:_ time ->
      record_link t ~kind:Event.Transmit_start
        ~leaf_node:(Net.Packet_pool.flow pool p) ~time
        ~bits:(Net.Packet_pool.size_bits pool p));
  Hpfq.Hier.add_depart_handle_hook h (fun p ~leaf:_ time ->
      let leaf_node = Net.Packet_pool.flow pool p in
      let bits = Net.Packet_pool.size_bits pool p in
      record_link t ~kind:Event.Depart ~leaf_node ~time ~bits;
      credit_path t ~leaf_node ~bits);
  Hpfq.Hier.add_drop_handle_hook h (fun p ~leaf:_ time ->
      let leaf_node = Net.Packet_pool.flow pool p in
      record_link t ~kind:Event.Drop ~leaf_node ~time
        ~bits:(Net.Packet_pool.size_bits pool p);
      Metrics.on_drop t.metrics ~node:leaf_node);
  t

let attach_hier_flat ?(capacity = 65536) ?(on_full = Recorder.Drop_oldest) h =
  let n = Hpfq.Hier_flat.node_count h in
  let node_names = Array.init n (Hpfq.Hier_flat.node_name h) in
  let session_nodes = Array.make n [||] in
  let parents = Array.make n (-1) in
  Hpfq.Hier_flat.iter_interior h (fun ~id ~name:_ ~level:_ ~children ->
      session_nodes.(id) <- children;
      Array.iter (fun cid -> parents.(cid) <- id) children);
  let paths = Array.make n [||] in
  List.iter
    (fun (_, (leaf : Hpfq.Hier.leaf)) ->
      paths.((leaf :> int)) <- Hpfq.Hier_flat.leaf_path h ~leaf)
    (Hpfq.Hier_flat.leaf_ids h);
  let t =
    make ~recorder:(Recorder.create ~capacity ~on_full ()) ~node_names ~session_nodes
      ~parents ~paths ()
  in
  Hpfq.Hier_flat.iter_interior h (fun ~id ~name:_ ~level:_ ~children:_ ->
      Hpfq.Hier_flat.set_node_observer_id h ~node:id (Some (observer t ~node:id));
      t.detach_fns <-
        (fun () -> Hpfq.Hier_flat.set_node_observer_id h ~node:id None) :: t.detach_fns);
  let pool = Hpfq.Hier_flat.pool h in
  Hpfq.Hier_flat.add_transmit_start_handle_hook h (fun p ~leaf:_ time ->
      record_link t ~kind:Event.Transmit_start
        ~leaf_node:(Net.Packet_pool.flow pool p) ~time
        ~bits:(Net.Packet_pool.size_bits pool p));
  Hpfq.Hier_flat.add_depart_handle_hook h (fun p ~leaf:_ time ->
      let leaf_node = Net.Packet_pool.flow pool p in
      let bits = Net.Packet_pool.size_bits pool p in
      record_link t ~kind:Event.Depart ~leaf_node ~time ~bits;
      credit_path t ~leaf_node ~bits);
  Hpfq.Hier_flat.add_drop_handle_hook h (fun p ~leaf:_ time ->
      let leaf_node = Net.Packet_pool.flow pool p in
      record_link t ~kind:Event.Drop ~leaf_node ~time
        ~bits:(Net.Packet_pool.size_bits pool p);
      Metrics.on_drop t.metrics ~node:leaf_node);
  t

let attach_engine ?capacity ?on_full e =
  match e with
  | Hpfq.Hier_engine.Generic h -> attach_hier ?capacity ?on_full h
  | Hpfq.Hier_engine.Flat h -> attach_hier_flat ?capacity ?on_full h
  | Hpfq.Hier_engine.Subtree_sharded _ ->
    (* per-node observers would fire on worker domains at epoch > 1; run
       traced experiments on the flat engine instead *)
    invalid_arg "Obs.Trace.attach_engine: the subtree engine is not traceable"

let attach_server ?(capacity = 65536) ?(on_full = Recorder.Drop_oldest)
    ?(name = "server") ?session_names srv =
  let sessions = Hpfq.Server.session_count srv in
  let session_name i =
    match session_names with
    | Some a when i < Array.length a -> a.(i)
    | Some _ | None -> Printf.sprintf "s%d" i
  in
  (* Node id space mirrors a one-level hierarchy: 0 is the server node,
     1 + i stands for session i (the "leaves" link events belong to). *)
  let node_names =
    Array.init (1 + sessions) (fun id -> if id = 0 then name else session_name (id - 1))
  in
  let session_nodes = Array.make (1 + sessions) [||] in
  session_nodes.(0) <- Array.init sessions (fun i -> 1 + i);
  let parents = Array.init (1 + sessions) (fun id -> if id = 0 then -1 else 0) in
  let t =
    make ~recorder:(Recorder.create ~capacity ~on_full ()) ~node_names ~session_nodes
      ~parents ()
  in
  let policy = Hpfq.Server.policy srv in
  policy.Sched_intf.set_observer (Some (observer t ~node:0));
  t.detach_fns <- [ (fun () -> policy.Sched_intf.set_observer None) ];
  let pool = Hpfq.Server.pool srv in
  Hpfq.Server.add_transmit_start_handle_hook srv (fun p time ->
      record_link t ~kind:Event.Transmit_start
        ~leaf_node:(1 + Net.Packet_pool.flow pool p)
        ~time ~bits:(Net.Packet_pool.size_bits pool p));
  Hpfq.Server.add_depart_handle_hook srv (fun p time ->
      let leaf_node = 1 + Net.Packet_pool.flow pool p in
      let bits = Net.Packet_pool.size_bits pool p in
      record_link t ~kind:Event.Depart ~leaf_node ~time ~bits;
      credit_path t ~leaf_node ~bits);
  Hpfq.Server.add_drop_handle_hook srv (fun p time ->
      let leaf_node = 1 + Net.Packet_pool.flow pool p in
      record_link t ~kind:Event.Drop ~leaf_node ~time
        ~bits:(Net.Packet_pool.size_bits pool p);
      Metrics.on_drop t.metrics ~node:leaf_node);
  t

(* A reporting-only trace: no engine, no observers, no probes — just a
   list of simulators for {!sim_report} to snapshot. Used by the shard
   device to merge per-link event-set occupancy into one table. *)
let of_sims sims =
  let t =
    make
      ~recorder:(Recorder.create ~capacity:1 ~on_full:Recorder.Drop_oldest ())
      ~node_names:[||] ~session_nodes:[||] ~parents:[||] ()
  in
  (* [t.sims] holds attach order newest-first; sim_report reverses it *)
  t.sims <- List.rev sims;
  t

let attach_sim t sim =
  t.sims <- sim :: t.sims;
  Engine.Simulator.set_probe sim
    (Some
       {
         Engine.Simulator.on_schedule =
           (fun ~at:_ ~now:_ -> t.sim_scheduled <- t.sim_scheduled + 1);
         on_fire = (fun ~at:_ -> t.sim_fired <- t.sim_fired + 1);
         on_cancel = (fun ~at:_ ~now:_ -> t.sim_cancelled <- t.sim_cancelled + 1);
       });
  t.detach_fns <- (fun () -> Engine.Simulator.set_probe sim None) :: t.detach_fns

let sim_counters t = (t.sim_scheduled, t.sim_fired, t.sim_cancelled)

let sim_report ?(name = "sim-events") t =
  Stats.Report.make ~name ~columns:[ "metric"; "value" ] ~rows:(fun () ->
      let counters =
        [
          [ "scheduled"; string_of_int t.sim_scheduled ];
          [ "fired"; string_of_int t.sim_fired ];
          [ "cancelled"; string_of_int t.sim_cancelled ];
        ]
      in
      let occupancy i sim =
        let st = Engine.Simulator.stats sim in
        (* one attached simulator is the normal case; suffix only beyond *)
        let key k = if i = 0 then k else Printf.sprintf "%s#%d" k i in
        [
          [
            key "backend";
            Engine.Simulator.backend_name st.Engine.Simulator.stat_backend;
          ];
          [ key "pending"; string_of_int st.Engine.Simulator.live ];
          [
            key "cancelled_in_set";
            string_of_int st.Engine.Simulator.cancelled_in_set;
          ];
          [ key "set_capacity"; string_of_int st.Engine.Simulator.set_capacity ];
          [ key "pool_capacity"; string_of_int st.Engine.Simulator.pool_capacity ];
          [ key "compactions"; string_of_int st.Engine.Simulator.compactions ];
          [ key "resizes"; string_of_int st.Engine.Simulator.resizes ];
        ]
      in
      let sims = List.rev t.sims in
      let totals =
        (* one sim needs no totals; a multi-sim trace (shard device) gets
           the device-wide occupancy sums appended *)
        match sims with
        | [] | [ _ ] -> []
        | _ ->
          let stats = List.map Engine.Simulator.stats sims in
          let sum f = List.fold_left (fun a st -> a + f st) 0 stats in
          let backends =
            List.sort_uniq compare
              (List.map
                 (fun st ->
                   Engine.Simulator.backend_name st.Engine.Simulator.stat_backend)
                 stats)
          in
          [
            [ "sims"; string_of_int (List.length sims) ];
            [
              "backend/total";
              (match backends with [ b ] -> b | bs -> String.concat "+" bs);
            ];
            [ "pending/total"; string_of_int (sum (fun st -> st.Engine.Simulator.live)) ];
            [
              "cancelled_in_set/total";
              string_of_int (sum (fun st -> st.Engine.Simulator.cancelled_in_set));
            ];
            [
              "set_capacity/total";
              string_of_int (sum (fun st -> st.Engine.Simulator.set_capacity));
            ];
            [
              "pool_capacity/total";
              string_of_int (sum (fun st -> st.Engine.Simulator.pool_capacity));
            ];
            [
              "compactions/total";
              string_of_int (sum (fun st -> st.Engine.Simulator.compactions));
            ];
            [ "resizes/total"; string_of_int (sum (fun st -> st.Engine.Simulator.resizes)) ];
          ]
      in
      counters @ List.concat (List.mapi occupancy sims) @ totals)

let detach t =
  List.iter (fun f -> f ()) t.detach_fns;
  t.detach_fns <- []

let events t = Recorder.to_list t.recorder
let drain t sink = Recorder.drain t.recorder sink

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_jsonl t ~path =
  with_out path (fun oc ->
      let sink = Sink.jsonl ~names:(names t) oc in
      Recorder.iter t.recorder (Sink.emit sink);
      Sink.flush sink)

let write_csv t ~path =
  with_out path (fun oc ->
      let sink = Sink.csv ~names:(names t) oc in
      Recorder.iter t.recorder (Sink.emit sink);
      Sink.flush sink)

let events_report ?(name = "trace-events") t =
  Stats.Report.make ~name ~columns:Sink.csv_header ~rows:(fun () ->
      let ns = names t in
      let acc = ref [] in
      Recorder.iter t.recorder (fun ev -> acc := Sink.csv_row ns ev :: !acc);
      List.rev !acc)

let metrics_report ?name t = Metrics.report ?name t.metrics
