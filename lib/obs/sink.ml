type names = {
  node_label : int -> string;
  session_label : node:int -> session:int -> string;
}

let numeric_names =
  {
    node_label = string_of_int;
    session_label = (fun ~node:_ ~session -> string_of_int session);
  }

type t = { emit : Event.t -> unit; flush : unit -> unit }

let emit t ev = t.emit ev
let flush t = t.flush ()
let null = { emit = (fun _ -> ()); flush = (fun () -> ()) }

let memory () =
  let acc = ref [] in
  ( { emit = (fun ev -> acc := ev :: !acc); flush = (fun () -> ()) },
    fun () -> List.rev !acc )

let json_of_event names (ev : Event.t) =
  let open Bench_kit.Json in
  let link = Event.is_link_level ev.kind in
  Obj
    [
      ("ev", Str (Event.kind_to_string ev.kind));
      ("t", Num ev.time);
      ("node", Str (names.node_label ev.node));
      ( "session",
        if link then Null else Str (names.session_label ~node:ev.node ~session:ev.session)
      );
      ("v", if link then Null else Num ev.vtime);
      ("bits", Num ev.bits);
    ]

let jsonl ?(names = numeric_names) oc =
  let buf = Buffer.create 256 in
  {
    emit =
      (fun ev ->
        Buffer.clear buf;
        Bench_kit.Json.to_buffer_compact buf (json_of_event names ev);
        Buffer.add_char buf '\n';
        Buffer.output_buffer oc buf);
    flush = (fun () -> Stdlib.flush oc);
  }

let csv_header = [ "event"; "time"; "node"; "session"; "vtime"; "bits" ]

let csv_row names (ev : Event.t) =
  let link = Event.is_link_level ev.kind in
  [
    Event.kind_to_string ev.kind;
    Printf.sprintf "%.9g" ev.time;
    names.node_label ev.node;
    (if link then "" else names.session_label ~node:ev.node ~session:ev.session);
    (if link then "" else Printf.sprintf "%.9g" ev.vtime);
    Printf.sprintf "%.9g" ev.bits;
  ]

let csv ?(names = numeric_names) oc =
  output_string oc (String.concat "," csv_header);
  output_char oc '\n';
  {
    emit =
      (fun ev ->
        output_string oc (String.concat "," (csv_row names ev));
        output_char oc '\n');
    flush = (fun () -> Stdlib.flush oc);
  }
