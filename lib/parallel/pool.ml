(* Fork-join over Domains with a chunked atomic task cursor.

   Determinism comes from indexing, not scheduling: workers race only for
   *which* index they compute, never for where a result goes — slot [i] of
   [results] is written by exactly one domain and read by the caller after
   every worker has been joined (the join is the happens-before edge), so
   the returned array is the same for any worker count or interleaving.

   Chunked claiming ([fetch_and_add next chunk]) is static chunking with a
   work-stealing index: contiguous runs of indices keep per-task atomic
   traffic low, while idle workers keep pulling chunks so a grid whose
   cells vary 100x in cost (e.g. wfi at N=4 vs N=128) still balances. *)

let log_src = Logs.Src.create "hpfq.parallel" ~doc:"Sweep fan-out progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { jobs : int }

let max_jobs = 1024 (* oversubscription guard: a typo like -j 1e6 is a bug *)

let default_jobs () =
  match Sys.getenv_opt "HPFQ_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 && j <= max_jobs -> j
    | _ ->
      Printf.eprintf
        "warning: HPFQ_JOBS=%S is not an integer in 1..%d; running sequential\n%!"
        s max_jobs;
      1)

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 || jobs > max_jobs then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be in 1..%d, got %d" max_jobs jobs);
  { jobs }

let jobs t = t.jobs
let cores () = Domain.recommended_domain_count ()

(* Progress is observability, not synchronization: one mutex serializes the
   Logs call (reporters are not domain-safe) and rate-limits it. Losing the
   race to report is fine — the final task always logs, so a watcher sees
   the sweep finish. *)
type progress = {
  completed : int Atomic.t;
  lock : Mutex.t;
  mutable last_emit : float;
}

let info_enabled () =
  match Logs.Src.level log_src with
  | Some Logs.Info | Some Logs.Debug -> true
  | Some Logs.App | Some Logs.Error | Some Logs.Warning | None -> false

let report progress ~tasks =
  let done_ = 1 + Atomic.fetch_and_add progress.completed 1 in
  if info_enabled () then begin
    Mutex.lock progress.lock;
    let now = Unix.gettimeofday () in
    if done_ = tasks || now -. progress.last_emit >= 0.1 then begin
      progress.last_emit <- now;
      Log.info (fun m -> m "task %d/%d done" done_ tasks)
    end;
    Mutex.unlock progress.lock
  end

let map t ~tasks ~f =
  if tasks < 0 then invalid_arg "Pool.map: negative task count";
  if tasks = 0 then [||]
  else begin
    let results = Array.make tasks None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let progress =
      { completed = Atomic.make 0; lock = Mutex.create (); last_emit = 0.0 }
    in
    let workers = min t.jobs tasks in
    (* ~4 chunks per worker: coarse enough that the cursor is cold, fine
       enough that one expensive tail chunk can still be stolen around *)
    let chunk = max 1 (tasks / (workers * 4)) in
    let worker () =
      let stop = ref false in
      while not !stop do
        let start = Atomic.fetch_and_add next chunk in
        if start >= tasks then stop := true
        else
          let fin = min tasks (start + chunk) in
          let i = ref start in
          while (not !stop) && !i < fin do
            if Atomic.get failure <> None then stop := true
            else begin
              (match f !i with
              | v ->
                results.(!i) <- Some v;
                report progress ~tasks
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (e, bt)));
                stop := true);
              incr i
            end
          done
      done
    in
    if workers = 1 then worker ()
    else begin
      let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains
    end;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* every index was claimed *))
      results
  end

let map_reduce t ~tasks ~f ~merge ~init =
  Array.fold_left merge init (map t ~tasks ~f)

let map_list t ~f xs =
  let arr = Array.of_list xs in
  Array.to_list (map t ~tasks:(Array.length arr) ~f:(fun i -> f arr.(i)))
