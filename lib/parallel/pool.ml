(* Work pool over Domains with a chunked atomic task cursor.

   Determinism comes from indexing, not scheduling: workers race only for
   *which* index they compute, never for where a result goes — slot [i] of
   [results] is written by exactly one domain and read by the caller after
   the round completes (the await is the happens-before edge), so the
   returned array is the same for any worker count or interleaving.

   Chunked claiming ([fetch_and_add next chunk]) is static chunking with a
   work-stealing index: contiguous runs of indices keep per-task atomic
   traffic low, while idle workers keep pulling chunks so a grid whose
   cells vary 100x in cost (e.g. wfi at N=4 vs N=128) still balances.

   Two surfaces share that core. [Persistent] spawns its domains once and
   feeds them rounds of tasks (long-lived shard workers, repeated sweeps);
   the historical fork-join [map] is now a one-round persistent pool —
   same semantics as ever, spawn/join contained within the call. *)

let log_src = Logs.Src.create "hpfq.parallel" ~doc:"Sweep fan-out progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { jobs : int }

let max_jobs = 1024 (* oversubscription guard: a typo like -j 1e6 is a bug *)

let default_jobs () =
  match Sys.getenv_opt "HPFQ_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 && j <= max_jobs -> j
    | _ ->
      Printf.eprintf
        "warning: HPFQ_JOBS=%S is not an integer in 1..%d; running sequential\n%!"
        s max_jobs;
      1)

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 || jobs > max_jobs then
    invalid_arg (Printf.sprintf "Pool.create: jobs must be in 1..%d, got %d" max_jobs jobs);
  { jobs }

let jobs t = t.jobs
let cores () = Domain.recommended_domain_count ()

(* Progress is observability, not synchronization: one mutex serializes the
   Logs call (reporters are not domain-safe) and rate-limits it. Losing the
   race to report is fine — the final task always logs, so a watcher sees
   the sweep finish. *)
type progress = {
  completed : int Atomic.t;
  lock : Mutex.t;
  mutable last_emit : float;
}

let info_enabled () =
  match Logs.Src.level log_src with
  | Some Logs.Info | Some Logs.Debug -> true
  | Some Logs.App | Some Logs.Error | Some Logs.Warning | None -> false

let report progress ~tasks =
  let done_ = 1 + Atomic.fetch_and_add progress.completed 1 in
  if info_enabled () then begin
    Mutex.lock progress.lock;
    let now = Unix.gettimeofday () in
    if done_ = tasks || now -. progress.last_emit >= 0.1 then begin
      progress.last_emit <- now;
      Log.info (fun m -> m "task %d/%d done" done_ tasks)
    end;
    Mutex.unlock progress.lock
  end

(* ---- one round of tasks, executable by any number of domains ---- *)

type round_core = {
  tasks : int;
  chunk : int;
  next : int Atomic.t;
  failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  progress : progress;
  run1 : int -> unit; (* compute task i into its slot; may raise *)
}

let make_round ~tasks ~executors ~run1 =
  {
    tasks;
    (* ~4 chunks per executor: coarse enough that the cursor is cold, fine
       enough that one expensive tail chunk can still be stolen around *)
    chunk = max 1 (tasks / (max 1 executors * 4));
    next = Atomic.make 0;
    failure = Atomic.make None;
    progress = { completed = Atomic.make 0; lock = Mutex.create (); last_emit = 0.0 };
    run1;
  }

(* Claim and run chunks until the cursor is exhausted or a failure is
   posted. Task exceptions are captured into [failure] (first one wins),
   never raised — so this function itself cannot raise, which the
   persistent workers' active-count bookkeeping relies on. *)
let execute_round r =
  let stop = ref false in
  while not !stop do
    let start = Atomic.fetch_and_add r.next r.chunk in
    if start >= r.tasks then stop := true
    else
      let fin = min r.tasks (start + r.chunk) in
      let i = ref start in
      while (not !stop) && !i < fin do
        if Atomic.get r.failure <> None then stop := true
        else begin
          (match r.run1 !i with
          | () -> report r.progress ~tasks:r.tasks
          | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set r.failure None (Some (e, bt)));
            stop := true);
          incr i
        end
      done
  done

let round_finished r =
  Atomic.get r.next >= r.tasks || Atomic.get r.failure <> None

let reraise_failure r =
  match Atomic.get r.failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ---- persistent pool: spawn once, submit many rounds ---- *)

module Persistent = struct
  type state = {
    m : Mutex.t;
    work : Condition.t; (* workers: a newer round was published, or close *)
    settled : Condition.t; (* awaiters/submitters: a worker left a round *)
    mutable current : (int * round_core) option; (* (generation, round) *)
    mutable generation : int;
    mutable active : int; (* worker domains currently inside a round *)
    mutable outstanding : bool; (* a round was submitted and not yet awaited *)
    mutable closed : bool;
  }

  type t = {
    state : state;
    mutable domains : unit Domain.t list; (* emptied by the (joined) shutdown *)
  }

  type 'a round = {
    core : round_core;
    results : 'a option array;
    pool : t;
  }

  (* Each worker remembers the generation it last executed, so republishing
     [current] can never re-run a finished round: a round is replaced only
     after [await] proved every index was claimed and every worker left. *)
  let worker_loop st =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock st.m;
      while
        (not st.closed)
        &&
        match st.current with
        | Some (gen, _) -> gen <= !seen
        | None -> true
      do
        Condition.wait st.work st.m
      done;
      if st.closed then begin
        Mutex.unlock st.m;
        running := false
      end
      else begin
        let gen, r =
          match st.current with Some g -> g | None -> assert false
        in
        st.active <- st.active + 1;
        Mutex.unlock st.m;
        execute_round r;
        (* cannot raise: task exceptions land in r.failure *)
        Mutex.lock st.m;
        st.active <- st.active - 1;
        Condition.broadcast st.settled;
        Mutex.unlock st.m;
        seen := gen
      end
    done

  let domains t = List.length t.domains

  (* A leaked pool must not wedge process exit (domains blocked in
     Condition.wait would keep the runtime from shutting down), so live
     pools sit in one registry drained by a single at_exit hook —
     registered once, not once per pool, since the fork-join [map] below
     creates a pool per call. *)
  let registry_lock = Mutex.create ()
  let registry : t list ref = ref []
  let registry_hooked = ref false

  let unregister t =
    Mutex.lock registry_lock;
    registry := List.filter (fun p -> p != t) !registry;
    Mutex.unlock registry_lock

  let shutdown t =
    let st = t.state in
    Mutex.lock st.m;
    let first = not st.closed in
    st.closed <- true;
    Condition.broadcast st.work;
    Mutex.unlock st.m;
    if first then begin
      List.iter Domain.join t.domains;
      t.domains <- [];
      unregister t
    end

  let register t =
    Mutex.lock registry_lock;
    registry := t :: !registry;
    let hook = not !registry_hooked in
    registry_hooked := true;
    Mutex.unlock registry_lock;
    if hook then
      at_exit (fun () ->
          Mutex.lock registry_lock;
          let live = !registry in
          Mutex.unlock registry_lock;
          List.iter shutdown live)

  let create ?(domains = cores () - 1) () =
    if domains < 0 || domains > max_jobs then
      invalid_arg
        (Printf.sprintf "Pool.Persistent.create: domains must be in 0..%d, got %d"
           max_jobs domains);
    let state =
      {
        m = Mutex.create ();
        work = Condition.create ();
        settled = Condition.create ();
        current = None;
        generation = 0;
        active = 0;
        outstanding = false;
        closed = false;
      }
    in
    let t = { state; domains = [] } in
    t.domains <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop state));
    if domains > 0 then register t;
    t

  let submit t ~tasks ~f =
    if tasks < 0 then invalid_arg "Pool.Persistent.submit: negative task count";
    let st = t.state in
    let results = Array.make tasks None in
    let core =
      make_round ~tasks
        ~executors:(max 1 (List.length t.domains))
        ~run1:(fun i -> results.(i) <- Some (f i))
    in
    Mutex.lock st.m;
    if st.closed then begin
      Mutex.unlock st.m;
      invalid_arg "Pool.Persistent.submit: pool is shut down"
    end;
    if st.outstanding then begin
      Mutex.unlock st.m;
      invalid_arg "Pool.Persistent.submit: previous round not yet awaited"
    end;
    if List.length t.domains = 0 && tasks > 0 then begin
      Mutex.unlock st.m;
      invalid_arg "Pool.Persistent.submit: pool has no worker domains (use map)"
    end;
    st.outstanding <- true;
    if tasks > 0 then begin
      st.generation <- st.generation + 1;
      st.current <- Some (st.generation, core);
      Condition.broadcast st.work
    end;
    Mutex.unlock st.m;
    { core; results; pool = t }

  let collect round =
    reraise_failure round.core;
    Array.map
      (function Some v -> v | None -> assert false (* every index was claimed *))
      round.results

  let await round =
    let st = round.pool.state in
    Mutex.lock st.m;
    while not (round_finished round.core && st.active = 0) do
      Condition.wait st.settled st.m
    done;
    st.outstanding <- false;
    Mutex.unlock st.m;
    collect round

  (* Caller participates: claim chunks alongside the worker domains, then
     await the stragglers. With zero domains this is exactly the
     sequential loop. *)
  let map t ~tasks ~f =
    if tasks < 0 then invalid_arg "Pool.Persistent.map: negative task count";
    if tasks = 0 then [||]
    else begin
      let st = t.state in
      let results = Array.make tasks None in
      let core =
        make_round ~tasks
          ~executors:(1 + List.length t.domains)
          ~run1:(fun i -> results.(i) <- Some (f i))
      in
      Mutex.lock st.m;
      if st.closed then begin
        Mutex.unlock st.m;
        invalid_arg "Pool.Persistent.map: pool is shut down"
      end;
      if st.outstanding then begin
        Mutex.unlock st.m;
        invalid_arg "Pool.Persistent.map: previous round not yet awaited"
      end;
      st.outstanding <- true;
      st.generation <- st.generation + 1;
      st.current <- Some (st.generation, core);
      Condition.broadcast st.work;
      Mutex.unlock st.m;
      execute_round core;
      Mutex.lock st.m;
      while not (round_finished core && st.active = 0) do
        Condition.wait st.settled st.m
      done;
      st.outstanding <- false;
      Mutex.unlock st.m;
      reraise_failure core;
      Array.map (function Some v -> v | None -> assert false) results
    end
end

(* ---- fork-join facade (the historical API) ---- *)

let map t ~tasks ~f =
  if tasks < 0 then invalid_arg "Pool.map: negative task count";
  if tasks = 0 then [||]
  else begin
    let workers = min t.jobs tasks in
    let p = Persistent.create ~domains:(workers - 1) () in
    Fun.protect
      ~finally:(fun () -> Persistent.shutdown p)
      (fun () -> Persistent.map p ~tasks ~f)
  end

let map_reduce t ~tasks ~f ~merge ~init =
  Array.fold_left merge init (map t ~tasks ~f)

let map_list t ~f xs =
  let arr = Array.of_list xs in
  Array.to_list (map t ~tasks:(Array.length arr) ~f:(fun i -> f arr.(i)))
