(** Deterministic fork-join work pool over OCaml 5 domains.

    The paper's whole evaluation is a grid of {e independent} simulation
    runs — disciplines × hierarchies × session counts × seeds — and the
    experiment sweeps and bench grids replay that grid. Each grid cell
    builds its own private {!Engine.Simulator}, so the cells can run on
    separate domains; this module is the one fan-out primitive they all
    share.

    {2 Determinism contract}

    Output is {b bit-identical for any worker count}, provided each task
    [f i] is a function of its index alone (and of state captured before
    {!map} is called):

    - tasks are identified by their index [0 .. tasks-1], claimed from a
      single atomic cursor in contiguous chunks (static chunking with a
      work-stealing index — idle workers keep claiming, so an uneven grid
      still balances);
    - results land in a per-index slot; {!map} returns them in task-index
      order and {!map_reduce} folds them in task-index order, regardless
      of which domain finished first;
    - nothing about the pool leaks into the tasks: no shared RNG (derive
      per-task streams with {!Engine.Rng.for_task}), no shared simulator,
      no worker identity.

    Tasks must not read process-wide mutable defaults (e.g. the
    [HPFQ_EVENT_SET]-seeded event-set backend): snapshot them {e before}
    the call — see {!Engine.Simulator.snapshot_config} — so a concurrent
    mutation cannot make two workers see different configurations
    mid-sweep.

    A pool is a configuration, not a set of live threads: {!map} spawns
    its domains on entry and joins them before it returns (fork-join), so
    no state persists between calls and a [~jobs:1] pool is exactly the
    sequential loop (no domain is ever spawned). Exceptions from tasks
    cancel the remaining work and are re-raised (first failure wins, with
    its backtrace).

    When the per-call spawn/join is the wrong shape — long-lived shard
    workers, a sweep issued round after round — use {!Persistent}, which
    spawns its domains once and feeds them rounds; {!map} is itself a
    one-round persistent pool, so both surfaces share one execution core
    and one determinism contract. *)

type t

val create : ?jobs:int -> unit -> t
(** A pool running at most [jobs] worker domains (including the calling
    one). Defaults to {!default_jobs}[ ()].
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Worker-domain budget this pool was created with. *)

val default_jobs : unit -> int
(** The process default: the [HPFQ_JOBS] environment variable if set to a
    positive integer (invalid values warn on stderr), otherwise [1] —
    sweeps are sequential unless asked. *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()] — the parallelism the host can
    actually deliver; {!map} never spawns more than this many domains
    plus the oversubscription the caller explicitly asked for via
    [jobs]. Recorded in [BENCH_parallel.json] so speedup numbers carry
    their context. *)

val map : t -> tasks:int -> f:(int -> 'a) -> 'a array
(** [map pool ~tasks ~f] computes [[| f 0; f 1; ...; f (tasks-1) |]],
    running tasks on up to [jobs pool] domains. [f] runs at most once per
    index. Re-raises the first task exception after stopping the
    remaining workers (tasks already started still complete their current
    index). *)

val map_reduce :
  t -> tasks:int -> f:(int -> 'a) -> merge:('acc -> 'a -> 'acc) -> init:'acc -> 'acc
(** [map_reduce pool ~tasks ~f ~merge ~init] is
    [Array.fold_left merge init (map pool ~tasks ~f)]: the merge always
    sees results in task-index order, so a non-commutative [merge] is
    safe. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** [map_list pool ~f xs] is [List.map f xs] with the calls fanned out;
    order is preserved. *)

(** {2 Persistent pools}

    Spawn once, submit many rounds. A round is the same unit {!map}
    executes — [tasks] indices claimed off one atomic cursor, results in
    per-index slots, first failure wins — but the worker domains outlive
    it, so consecutive rounds pay no spawn/join latency, and a round can
    be {e submitted} without the caller participating: the caller stays
    free to run its own stage (e.g. a shard router feeding mailboxes)
    concurrently with the workers, then collect at {!Persistent.await}.

    At most one round may be outstanding per pool at a time ({!Persistent.submit}
    before the previous {!Persistent.await} is an [Invalid_argument]) —
    the generation protocol guarantees a worker executes each round at
    most once, and replacement only after the previous round fully
    settled. Pools left un-{!Persistent.shutdown} are closed by an
    [at_exit] hook so leaked worker domains cannot wedge process exit. *)

module Persistent : sig
  type t

  type 'a round
  (** A submitted, not-yet-awaited round producing ['a] results. *)

  val create : ?domains:int -> unit -> t
  (** Spawn [domains] worker domains (default [cores () - 1]; [0] is
      legal and makes {!map} the sequential loop).
      @raise Invalid_argument if [domains] is negative or absurd. *)

  val domains : t -> int
  (** Live worker domains ([0] after {!shutdown}). *)

  val submit : t -> tasks:int -> f:(int -> 'a) -> 'a round
  (** Publish a round to the worker domains and return immediately; the
      caller does not execute tasks. Requires [domains t >= 1] when
      [tasks > 0] (otherwise nothing would ever run it — use {!map}).
      @raise Invalid_argument on negative [tasks], a shut-down pool, or
      an already-outstanding round. *)

  val await : 'a round -> 'a array
  (** Block until every index of the round is computed (or one failed),
      then return results in task-index order, re-raising the first task
      exception if any. The await is the happens-before edge: results
      written by worker domains are safe to read after it. *)

  val map : t -> tasks:int -> f:(int -> 'a) -> 'a array
  (** Submit + participate + await: the calling domain claims chunks
      alongside the workers. Same contract as the top-level {!map}. *)

  val shutdown : t -> unit
  (** Close the pool and join its domains. Idempotent. Must not be
      called with a round outstanding (the round would never finish).
      Subsequent {!submit}/{!map} raise [Invalid_argument]. *)
end

(** {2 Progress}

    Each completed task emits one line on the [hpfq.parallel] {!Logs}
    source at [Info] level, rate-limited to at most one line per 100 ms
    (the final task always reports). Off by default — [Logs]' default
    reporter and level suppress it; drivers opt in by installing a
    reporter and raising the source's level (see [hpfq_sim --progress]). *)

val log_src : Logs.src
