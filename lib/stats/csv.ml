let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write ~path ~header ~rows =
  let width = List.length header in
  with_out path (fun oc ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          if List.length row <> width then invalid_arg "Csv.write: ragged row";
          output_string oc (String.concat "," (List.map (Printf.sprintf "%.9g") row));
          output_char oc '\n')
        rows)

let write_strings ~path ~header ~rows =
  let width = List.length header in
  with_out path (fun oc ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          if List.length row <> width then invalid_arg "Csv.write_strings: ragged row";
          output_string oc (String.concat "," row);
          output_char oc '\n')
        rows)

let write_named_series ~path ~series =
  with_out path (fun oc ->
      output_string oc "series,x,y\n";
      List.iter
        (fun (name, points) ->
          List.iter
            (fun (x, y) -> Printf.fprintf oc "%s,%.9g,%.9g\n" name x y)
            points)
        series)
