type t = {
  mutable arrivals : (float * float) list; (* reversed *)
  mutable services : (float * float) list;
  mutable lags : (float * float) list;
  mutable arrived : float;
  mutable served : float;
  mutable max_lag : float;
}

let create () =
  { arrivals = []; services = []; lags = []; arrived = 0.0; served = 0.0; max_lag = 0.0 }

let note_lag t time =
  let lag = t.arrived -. t.served in
  t.lags <- (time, lag) :: t.lags;
  if lag > t.max_lag then t.max_lag <- lag

let on_arrival t ~time ~units =
  t.arrived <- t.arrived +. units;
  t.arrivals <- (time, t.arrived) :: t.arrivals;
  note_lag t time

let on_service t ~time ~units =
  t.served <- t.served +. units;
  t.services <- (time, t.served) :: t.services;
  note_lag t time

let arrivals t = List.rev t.arrivals
let services t = List.rev t.services
let arrived_total t = t.arrived
let served_total t = t.served
let lag t = t.arrived -. t.served
let max_lag t = t.max_lag
let lag_series t = List.rev t.lags

let report ?(name = "service-curve") t =
  Report.of_named_series ~name
    [ ("arrivals", arrivals t); ("services", services t); ("lag", lag_series t) ]
