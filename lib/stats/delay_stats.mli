(** Per-flow packet-delay recorder (the instrument behind Figs. 4, 6, 7).

    Records [(departure_time, delay)] samples; summary statistics are exact
    (computed from retained samples). *)

type t

val create : unit -> t
val record : t -> time:float -> delay:float -> unit
val count : t -> int
val max_delay : t -> float
(** 0 when empty. *)

val min_delay : t -> float
val mean : t -> float
val stddev : t -> float
val percentile : t -> float -> float
(** [percentile t 99.0]; nearest-rank on the sorted samples.
    @raise Invalid_argument outside [0,100] or when empty. *)

val samples : t -> (float * float) list
(** In recording order. *)

val series_max_over_windows : t -> window:float -> (float * float) list
(** Max delay per [window]-second bin of departure time — the shape plotted
    in the paper's delay figures. *)

val report : ?name:string -> t -> Report.t
(** The samples as a [time,delay] table. *)

val summary_report : ?name:string -> t -> Report.t
(** One-row-per-statistic table: count, mean, stddev, min, max. *)
