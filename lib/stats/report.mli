(** The shared tabular-output shape every measurement instrument exports.

    A report is a named table: column headers plus a thunk producing the
    rows on demand (so building one is free until it is written). Each
    instrument in this library ({!Delay_stats}, {!Histogram},
    {!Service_curve}, {!Bandwidth_meter}) offers a [report] function, and
    the tracing layer's exporters produce the same shape — one sink API for
    everything an experiment might want on disk. *)

type t

val make : name:string -> columns:string list -> rows:(unit -> string list list) -> t
(** [rows] is evaluated lazily, at {!rows}/{!to_csv}/{!to_string} time.
    @raise Invalid_argument if [columns] is empty. *)

val name : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Materialise the rows.
    @raise Invalid_argument if any row length differs from the header. *)

val of_points : name:string -> x:string -> y:string -> (float * float) list -> t
(** Two-column table from an [(x, y)] series; [x]/[y] are the headers. *)

val of_named_series : name:string -> (string * (float * float) list) list -> t
(** Long format ([series,x,y]) from several named series, matching
    {!Csv.write_named_series}. *)

val to_csv : t -> path:string -> unit
(** Overwrite [path] with the table as CSV. *)

val to_string : t -> string
(** The same CSV text in memory (tests, stdout). *)
